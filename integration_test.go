package repro_test

// End-to-end integration tests: every workload through the full public
// pipeline (compile -> profile -> persist -> reload -> analyze), with the
// invariants that tie the stages together checked at each seam.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/hotpath"
	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/workloads"
	iwpp "repro/internal/wpp"
	"repro/wpp"
)

func TestFullPipelineOnAllWorkloads(t *testing.T) {
	for _, w := range workloads.All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := wpp.Compile(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			plain, plainStats, err := prog.Run([]int64{w.Small})
			if err != nil {
				t.Fatal(err)
			}
			profile, err := prog.Profile([]int64{w.Small})
			if err != nil {
				t.Fatal(err)
			}

			// Tracing must not perturb semantics or instruction counts.
			if profile.Result != plain {
				t.Fatalf("traced result %d != plain %d", profile.Result, plain)
			}
			if profile.Stats.Instructions != plainStats.Instructions {
				t.Fatalf("instruction counts differ under tracing")
			}

			// The WPP must round-trip through persistence.
			var buf bytes.Buffer
			if _, err := profile.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := wpp.ReadProfile(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !loaded.Equal(profile) {
				t.Fatal("persisted profile expands differently")
			}

			// Walking the compressed trace covers exactly the events the
			// run reported.
			var walked uint64
			profile.Walk(func(string, uint64) bool { walked++; return true })
			if walked != profile.Stats.PathEvents {
				t.Fatalf("walked %d events, run emitted %d", walked, profile.Stats.PathEvents)
			}

			// Every walked path must regenerate to a block sequence.
			checked := 0
			profile.Walk(func(fn string, id uint64) bool {
				if _, err := profile.PathBlocks(fn, id); err != nil {
					t.Fatalf("path %s:%d: %v", fn, id, err)
				}
				checked++
				return checked < 100
			})

			// Hot subpaths must be found and agree between loaded and
			// in-memory profiles.
			opts := wpp.HotOptions{MinLen: 2, MaxLen: 6, Threshold: 0.01}
			hot, err := profile.HotSubpaths(opts)
			if err != nil {
				t.Fatal(err)
			}
			hotLoaded, err := loaded.HotSubpaths(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(hot) != len(hotLoaded) {
				t.Fatalf("hot subpaths differ after reload: %d vs %d", len(hot), len(hotLoaded))
			}
			if len(hot) == 0 {
				t.Fatal("no hot subpaths at 1% on a loopy workload")
			}
		})
	}
}

func TestRecoveredProfileMatchesExecution(t *testing.T) {
	// The path profile recovered from the grammar must account for every
	// executed instruction, workload by workload.
	for _, name := range []string{"compress", "queens", "sim"} {
		w, err := experiments.WPPForWorkload(name, experiments.Small)
		if err != nil {
			t.Fatal(err)
		}
		prof := hotpath.PathProfile(w)
		var cost, events uint64
		for _, p := range prof {
			cost += p.Cost
			events += p.Count
		}
		if cost != w.Instructions {
			t.Fatalf("%s: profile cost %d != instructions %d", name, cost, w.Instructions)
		}
		if events != w.Events {
			t.Fatalf("%s: profile events %d != trace events %d", name, events, w.Events)
		}
	}
}

func TestDeterministicProfilesAcrossRuns(t *testing.T) {
	w, err := workloads.ByName("game")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := wpp.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.Profile([]int64{w.Small})
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.Profile([]int64{w.Small})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("two runs of a deterministic workload produced different traces")
	}
	// And the serialized artifacts are bit-identical.
	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("serialized WPPs differ across identical runs")
	}
}

func TestConcurrentProfilesAreIndependent(t *testing.T) {
	// Machines share no state: profiling the same program concurrently
	// must produce identical, interference-free traces. Run with -race to
	// get the full benefit.
	w, err := workloads.ByName("lexer")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := wpp.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := prog.Profile([]int64{w.Small})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			p, err := prog.Profile([]int64{w.Small})
			if err != nil {
				errs <- err
				return
			}
			if !p.Equal(reference) {
				errs <- fmt.Errorf("concurrent profile diverged")
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestLargeScalePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping large-scale run in -short mode")
	}
	// One workload at Large scale: several million events through the
	// whole pipeline, verifying size accounting and hot-subpath agreement
	// at scale.
	w, err := workloads.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := wpp.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := prog.Profile([]int64{w.Large})
	if err != nil {
		t.Fatal(err)
	}
	sz := profile.Size()
	if sz.Events < 400_000 {
		t.Fatalf("large run produced only %d events", sz.Events)
	}
	if sz.Factor() < 10 {
		t.Fatalf("large run compressed only %.1fx", sz.Factor())
	}
	hot, err := profile.HotSubpaths(wpp.HotOptions{MinLen: 4, MaxLen: 8, Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 {
		t.Fatal("no hot subpaths at large scale")
	}
}

func TestGrammarAnalysisOracleOnWorkloads(t *testing.T) {
	// Find vs FindByScan on real workload WPPs — the compressed-form
	// analysis must agree exactly with decompress-and-scan.
	for _, name := range []string{"lexer", "sort"} {
		w, err := experiments.WPPForWorkload(name, experiments.Small)
		if err != nil {
			t.Fatal(err)
		}
		opts := hotpath.Options{MinLen: 2, MaxLen: 10, Threshold: 0.005}
		fast, err := hotpath.Find(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := hotpath.FindByScan(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("%s: %d vs %d subpaths", name, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i].Count != slow[i].Count || fast[i].Cost != slow[i].Cost {
				t.Fatalf("%s: subpath %d differs", name, i)
			}
		}
	}
}

func TestRecoveredFuncProfileMatchesGroundTruth(t *testing.T) {
	// The per-function cost profile recovered from the compressed trace
	// must equal the interpreter's directly measured per-function
	// instruction counters, exactly.
	for _, name := range []string{"sort", "hash", "queens", "expr"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := wlc.Compile(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		var b *iwpp.MonoBuilder
		m, err := interp.New(prog, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) { b.Add(e) })})
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, len(prog.Funcs))
		for i, f := range prog.Funcs {
			names[i] = f.Name
		}
		b = iwpp.NewMonoBuilder(names, m.Numberings())
		if _, err := m.Run("main", w.Small); err != nil {
			t.Fatal(err)
		}
		wp := b.Finish(m.Stats().Instructions)

		truth := m.Stats().FuncInstrs
		recovered := make([]uint64, len(prog.Funcs))
		for _, fe := range hotpath.FuncProfile(wp) {
			recovered[fe.Func] = fe.Cost
		}
		for fn := range truth {
			if truth[fn] != recovered[fn] {
				t.Fatalf("%s/%s: ground truth %d instructions, WPP recovers %d",
					name, names[fn], truth[fn], recovered[fn])
			}
		}
	}
}
