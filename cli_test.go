package repro_test

// End-to-end tests of the command-line tools: build each binary once,
// then drive the full tool chain the way a user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every cmd/ binary into a shared temp dir, once per
// test run.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI end-to-end in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range []string{"wlrun", "wpptrace", "wppbuild", "wppstats", "wpphot", "wppbench", "wppdiff"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

const cliProgram = `
func step(x) {
    if x % 2 == 0 { return x / 2; }
    return 3 * x + 1;
}
func main(n) {
    var total = 0;
    var i = 1;
    while i <= n {
        var x = i;
        while x != 1 { x = step(x); total = total + 1; }
        i = i + 1;
    }
    return total;
}`

func TestCLIToolChain(t *testing.T) {
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.wl")
	if err := os.WriteFile(src, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	// wlrun: plain, stats, disassembly, formatting, optimized.
	out := runTool(t, filepath.Join(bin, "wlrun"), "-stats", src, "60")
	if !strings.Contains(out, "result:") || !strings.Contains(out, "instructions:") {
		t.Fatalf("wlrun output:\n%s", out)
	}
	if out := runTool(t, filepath.Join(bin, "wlrun"), "-dis", src); !strings.Contains(out, "func main") {
		t.Fatalf("wlrun -dis output:\n%s", out)
	}
	if out := runTool(t, filepath.Join(bin, "wlrun"), "-fmt", "-O", src); !strings.Contains(out, "func step") {
		t.Fatalf("wlrun -fmt output:\n%s", out)
	}
	plain := runTool(t, filepath.Join(bin, "wlrun"), src, "60")
	optimized := runTool(t, filepath.Join(bin, "wlrun"), "-O", src, "60")
	if plainLine, optLine := firstLine(plain), firstLine(optimized); plainLine != optLine {
		t.Fatalf("optimization changed result: %q vs %q", plainLine, optLine)
	}

	// wpptrace -> raw trace file.
	traceFile := filepath.Join(dir, "prog.wpt")
	out = runTool(t, filepath.Join(bin, "wpptrace"), "-o", traceFile, src, "60")
	if !strings.Contains(out, "events:") {
		t.Fatalf("wpptrace output:\n%s", out)
	}
	if fi, err := os.Stat(traceFile); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}

	// wppbuild from source and from the raw trace.
	wppFile := filepath.Join(dir, "prog.wpp")
	out = runTool(t, filepath.Join(bin, "wppbuild"), "-o", wppFile, src, "60")
	if !strings.Contains(out, "rules:") {
		t.Fatalf("wppbuild output:\n%s", out)
	}
	wppFromTrace := filepath.Join(dir, "fromtrace.wpp")
	runTool(t, filepath.Join(bin, "wppbuild"), "-o", wppFromTrace, "-trace", traceFile)

	// wppbuild from a built-in workload.
	wl := filepath.Join(dir, "workload.wpp")
	runTool(t, filepath.Join(bin, "wppbuild"), "-o", wl, "-workload", "queens", "-scale", "small")

	// wppstats on all artifacts, with every flag.
	out = runTool(t, filepath.Join(bin, "wppstats"), "-dump", "3", "-profile", "3", "-funcs", wppFile)
	for _, want := range []string{"events:", "trace prefix:", "path profile", "function profile"} {
		if !strings.Contains(out, want) {
			t.Fatalf("wppstats output missing %q:\n%s", want, out)
		}
	}
	if out := runTool(t, filepath.Join(bin, "wppstats"), "-dot", wppFile); !strings.Contains(out, "digraph") {
		t.Fatalf("wppstats -dot output:\n%s", out)
	}
	runTool(t, filepath.Join(bin, "wppstats"), wppFromTrace)

	// wpphot: grammar engine and scan engine must report the same count.
	hotG := runTool(t, filepath.Join(bin, "wpphot"), "-min", "2", "-max", "6", "-threshold", "0.02", wppFile)
	hotS := runTool(t, filepath.Join(bin, "wpphot"), "-min", "2", "-max", "6", "-threshold", "0.02", "-scan", wppFile)
	if firstLine(hotG) != firstLine(hotS) {
		t.Fatalf("wpphot engines disagree:\n%s\nvs\n%s", firstLine(hotG), firstLine(hotS))
	}
	if !strings.Contains(hotG, "minimal hot subpaths") {
		t.Fatalf("wpphot output:\n%s", hotG)
	}

	// wppbench, one cheap experiment.
	out = runTool(t, filepath.Join(bin, "wppbench"), "-exp", "a5", "-scale", "small")
	if !strings.Contains(out, "A5") {
		t.Fatalf("wppbench output:\n%s", out)
	}

	// wppdiff: identical artifacts, then diverging ones.
	out = runTool(t, filepath.Join(bin, "wppdiff"), wppFile, wppFile)
	if !strings.Contains(out, "identical") {
		t.Fatalf("wppdiff identical output:\n%s", out)
	}
	other := filepath.Join(dir, "other.wpp")
	runTool(t, filepath.Join(bin, "wppbuild"), "-o", other, src, "61")
	cmd := exec.Command(filepath.Join(bin, "wppdiff"), "-v", wppFile, other)
	diffOut, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("wppdiff of different traces exited 0:\n%s", diffOut)
	}
	if !strings.Contains(string(diffOut), "diverge at event") {
		t.Fatalf("wppdiff output:\n%s", diffOut)
	}

	// wppdiff -spectrum: identical, then differing.
	out = runTool(t, filepath.Join(bin, "wppdiff"), "-spectrum", wppFile, wppFile)
	if !strings.Contains(out, "identical spectra") {
		t.Fatalf("wppdiff -spectrum identical output:\n%s", out)
	}
	cmd = exec.Command(filepath.Join(bin, "wppdiff"), "-spectrum", wppFile, other)
	diffOut, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("wppdiff -spectrum of different traces exited 0:\n%s", diffOut)
	}
	if !strings.Contains(string(diffOut), "paths differ") {
		t.Fatalf("wppdiff -spectrum output:\n%s", diffOut)
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildTools(t)
	// Each tool must fail cleanly on bad input.
	cases := [][]string{
		{filepath.Join(bin, "wlrun"), "/nonexistent.wl"},
		{filepath.Join(bin, "wppstats"), "/nonexistent.wpp"},
		{filepath.Join(bin, "wpphot"), "/nonexistent.wpp"},
		{filepath.Join(bin, "wppbuild"), "-workload", "nope"},
		{filepath.Join(bin, "wppbench"), "-scale", "gigantic"},
	}
	for _, c := range cases {
		if err := exec.Command(c[0], c[1:]...).Run(); err == nil {
			t.Errorf("%v succeeded, want failure", c)
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
