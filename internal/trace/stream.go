package trace

import "io"

// Sink consumes a stream of path events in execution order. The
// interpreter emits through a Sink, and every WPP builder is one; any
// component that accepts events one at a time fits here.
type Sink interface {
	Add(Event)
}

// SinkFunc adapts a plain function to a Sink, for call sites that tee,
// filter, or late-bind the real consumer.
type SinkFunc func(Event)

// Add calls f(e).
func (f SinkFunc) Add(e Event) { f(e) }

// BatchSink is a Sink that can also consume events a slice at a time.
// Producers with events in hand (the interpreter's emission buffer, a
// trace file replay) should prefer AddBatch: it amortizes the per-event
// call overhead and lets builders run their batched fast path. The
// callee must not retain the slice; AddBatch(es) is always equivalent
// to calling Add for each element in order.
type BatchSink interface {
	Sink
	AddBatch(es []Event)
}

// AddBatch appends the whole slice; Buffer is the in-memory BatchSink.
func (b *Buffer) AddBatch(es []Event) { b.Events = append(b.Events, es...) }

// Source streams path events in order without requiring the whole trace
// in memory. Each calls yield for every event until the stream ends or
// yield returns false, and reports how many events were yielded.
// Implementations: Buffer (in-memory slice), ReaderSource (raw trace
// file); the interpreter is the push-side dual, feeding a Sink directly.
type Source interface {
	Each(yield func(Event) bool) (uint64, error)
}

// Each yields the buffered events; Buffer is the in-memory Source.
func (b *Buffer) Each(yield func(Event) bool) (uint64, error) {
	for i, e := range b.Events {
		if !yield(e) {
			return uint64(i + 1), nil
		}
	}
	return uint64(len(b.Events)), nil
}

// ReaderSource adapts a raw trace Reader ("WPT1" stream) to a Source,
// so a recorded trace file replays through the same pipeline as a live
// execution.
type ReaderSource struct {
	r *Reader
}

// NewReaderSource validates the trace magic on rd and returns the
// streaming source.
func NewReaderSource(rd io.Reader) (*ReaderSource, error) {
	r, err := NewReader(rd)
	if err != nil {
		return nil, err
	}
	return &ReaderSource{r: r}, nil
}

// Each streams events until EOF or until yield returns false.
func (s *ReaderSource) Each(yield func(Event) bool) (uint64, error) {
	var n uint64
	for {
		e, err := s.r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		if !yield(e) {
			return n, nil
		}
	}
}

// Copy drains src into dst and reports the number of events moved. It is
// the bridge between the pull side (Source) and the push side (Sink) of
// the pipeline.
func Copy(dst Sink, src Source) (uint64, error) {
	return src.Each(func(e Event) bool {
		dst.Add(e)
		return true
	})
}
