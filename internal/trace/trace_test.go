package trace

import (
	"bytes"
	"compress/flate"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEventPacking(t *testing.T) {
	cases := []struct {
		fn   uint32
		path uint64
	}{
		{0, 0},
		{1, 1},
		{MaxFuncs - 1, 1<<PathBits - 1},
		{42, 123456789},
	}
	for _, c := range cases {
		e := MakeEvent(c.fn, c.path)
		if e.Func() != c.fn || e.Path() != c.path {
			t.Fatalf("MakeEvent(%d,%d) round-trips to (%d,%d)", c.fn, c.path, e.Func(), e.Path())
		}
	}
}

func TestEventPackingQuick(t *testing.T) {
	f := func(fn uint32, path uint64) bool {
		fn %= MaxFuncs
		path %= 1 << PathBits
		e := MakeEvent(fn, path)
		return e.Func() == fn && e.Path() == path
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeEventPanicsOutOfRange(t *testing.T) {
	for name, fn := range map[string]func(){
		"func": func() { MakeEvent(MaxFuncs, 0) },
		"path": func() { MakeEvent(0, 1<<PathBits) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEventString(t *testing.T) {
	if s := MakeEvent(3, 7).String(); s != "f3:p7" {
		t.Fatalf("String = %q", s)
	}
}

func randomEvents(n int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, n)
	for i := range events {
		events[i] = MakeEvent(uint32(rng.Intn(100)), uint64(rng.Intn(5000)))
	}
	return events
}

func TestWriterReaderRoundTrip(t *testing.T) {
	events := randomEvents(5000, 21)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != uint64(len(events)) {
		t.Fatalf("Events() = %d, want %d", w.Events(), len(events))
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, buffer holds %d", w.BytesWritten(), buf.Len())
	}
	if want := EncodedSize(events); w.BytesWritten() != want {
		t.Fatalf("BytesWritten = %d, EncodedSize predicts %d", w.BytesWritten(), want)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatal("round trip mismatch")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX123"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestDeflateInflateRoundTrip(t *testing.T) {
	events := randomEvents(3000, 22)
	data, err := Deflate(events, flate.BestCompression)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Inflate(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatal("deflate/inflate mismatch")
	}
}

func TestDeflateSizeMatchesDeflate(t *testing.T) {
	events := randomEvents(2000, 23)
	data, err := Deflate(events, flate.BestCompression)
	if err != nil {
		t.Fatal(err)
	}
	size, err := DeflateSize(events, flate.BestCompression)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(data)) {
		t.Fatalf("DeflateSize = %d, Deflate produced %d bytes", size, len(data))
	}
}

func TestDeflateCompressesRepetition(t *testing.T) {
	// A highly repetitive trace must compress far below its raw size.
	events := make([]Event, 100000)
	for i := range events {
		events[i] = MakeEvent(1, uint64(i%4))
	}
	raw := EncodedSize(events)
	size, err := DeflateSize(events, flate.BestCompression)
	if err != nil {
		t.Fatal(err)
	}
	if size*20 > raw {
		t.Fatalf("repetitive trace compressed only %d -> %d", raw, size)
	}
}

func TestFixedSize(t *testing.T) {
	if got := FixedSize(make([]Event, 10)); got != 80 {
		t.Fatalf("FixedSize = %d, want 80", got)
	}
}

func TestBuffer(t *testing.T) {
	var b Buffer
	b.Add(MakeEvent(1, 2))
	b.Add(MakeEvent(3, 4))
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Events[1] != MakeEvent(3, 4) {
		t.Fatal("wrong event stored")
	}
}
