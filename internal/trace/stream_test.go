package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewEventTable(t *testing.T) {
	cases := []struct {
		name string
		fn   uint32
		path uint64
		ok   bool
	}{
		{"zero", 0, 0, true},
		{"max func", MaxFuncs - 1, 0, true},
		{"max path", 0, 1<<PathBits - 1, true},
		{"both max", MaxFuncs - 1, 1<<PathBits - 1, true},
		{"func out of range", MaxFuncs, 0, false},
		{"func far out of range", 1 << 31, 0, false},
		{"path out of range", 0, 1 << PathBits, false},
		{"path far out of range", 0, 1<<63 - 1, false},
		{"both out of range", MaxFuncs, 1 << PathBits, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e, err := NewEvent(c.fn, c.path)
			if c.ok {
				if err != nil {
					t.Fatalf("NewEvent(%d,%d): %v", c.fn, c.path, err)
				}
				if e.Func() != c.fn || e.Path() != c.path {
					t.Fatalf("NewEvent(%d,%d) round-trips to (%d,%d)", c.fn, c.path, e.Func(), e.Path())
				}
				if err := CheckEvent(e); err != nil {
					t.Fatalf("CheckEvent(%v): %v", e, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("NewEvent(%d,%d) accepted out-of-range input", c.fn, c.path)
			}
			if !strings.Contains(err.Error(), "out of range") {
				t.Fatalf("NewEvent(%d,%d) error %q lacks range diagnostic", c.fn, c.path, err)
			}
		})
	}
}

func TestCheckEventRejectsOverwideFunc(t *testing.T) {
	// A raw uint64 from an untrusted decode can carry function bits
	// beyond MaxFuncs; CheckEvent must refuse it.
	raw := Event(uint64(MaxFuncs) << PathBits)
	if err := CheckEvent(raw); err == nil {
		t.Fatal("CheckEvent accepted function ID beyond MaxFuncs")
	}
}

func TestBufferSourceSinkCopy(t *testing.T) {
	src := &Buffer{}
	for i := 0; i < 10; i++ {
		src.Add(MakeEvent(uint32(i%3), uint64(i)))
	}
	var dst Buffer
	n, err := Copy(&dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || dst.Len() != 10 {
		t.Fatalf("Copy moved %d events, dst has %d, want 10", n, dst.Len())
	}
	for i, e := range dst.Events {
		if e != src.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, e, src.Events[i])
		}
	}
}

func TestBufferEachEarlyStop(t *testing.T) {
	b := &Buffer{Events: []Event{1, 2, 3, 4}}
	var seen []Event
	n, err := b.Each(func(e Event) bool {
		seen = append(seen, e)
		return len(seen) < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(seen) != 2 {
		t.Fatalf("early stop yielded %d events (reported %d), want 2", len(seen), n)
	}
}

func TestReaderSourceStreamsTraceFile(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{MakeEvent(0, 1), MakeEvent(1, 2), MakeEvent(2, 1<<PathBits-1)}
	for _, e := range want {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	src, err := NewReaderSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Buffer
	n, err := Copy(&got, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(want)) {
		t.Fatalf("streamed %d events, want %d", n, len(want))
	}
	for i, e := range got.Events {
		if e != want[i] {
			t.Fatalf("event %d is %v, want %v", i, e, want[i])
		}
	}
}

func TestReaderSourceRejectsBadMagic(t *testing.T) {
	if _, err := NewReaderSource(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestSinkFuncAdapts(t *testing.T) {
	var got []Event
	var s Sink = SinkFunc(func(e Event) { got = append(got, e) })
	s.Add(MakeEvent(1, 2))
	if len(got) != 1 || got[0] != MakeEvent(1, 2) {
		t.Fatalf("SinkFunc recorded %v", got)
	}
}
