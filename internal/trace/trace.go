// Package trace defines the path-event stream that flows from an
// instrumented execution into the whole-program-path builder, together
// with its on-disk encodings and the DEFLATE compression baseline the
// evaluation compares against.
//
// An Event identifies one completed Ball–Larus acyclic path: which
// function it belongs to and the path ID within that function. Events pack
// into a single uint64 so they can be fed to SEQUITUR directly as terminal
// symbols.
package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Typed stream errors. Decode paths wrap these sentinels so consumers of
// untrusted input — wppd's ingest handlers above all — can map malformed
// wire data to a client error (HTTP 400) instead of treating it like an
// internal fault. Match with errors.Is.
var (
	// ErrBadMagic reports a stream that does not start with the WPT1
	// trace magic.
	ErrBadMagic = errors.New("bad trace magic")
	// ErrTruncated reports a stream that ends mid-event (a varint cut
	// short, e.g. a batch frame whose connection dropped mid-flight).
	ErrTruncated = errors.New("truncated trace")
	// ErrEventRange reports an event value no Ball–Larus numbering could
	// have produced (function or path component out of range).
	ErrEventRange = errors.New("event out of range")
)

// PathBits is the number of low bits of an Event holding the path ID.
const PathBits = 40

// MaxFuncs bounds function IDs so that packed events stay below
// sequitur.MaxTerminal.
const MaxFuncs = 1 << 21

// Event is a packed (function, path) pair: funcID<<PathBits | pathID.
type Event uint64

// NewEvent packs a function ID and path ID, rejecting out-of-range
// components. Decode paths use it to refuse events no numbering could
// have produced; internally-validated numbering code uses MakeEvent.
func NewEvent(fn uint32, path uint64) (Event, error) {
	if fn >= MaxFuncs {
		return 0, fmt.Errorf("trace: %w: function ID %d out of range (max %d)", ErrEventRange, fn, MaxFuncs-1)
	}
	if path >= 1<<PathBits {
		return 0, fmt.Errorf("trace: %w: path ID %d out of range (max %d)", ErrEventRange, path, uint64(1)<<PathBits-1)
	}
	return Event(uint64(fn)<<PathBits | path), nil
}

// MakeEvent packs a function ID and path ID. It panics if either is out of
// range; callers validate sizes when numbering functions.
func MakeEvent(fn uint32, path uint64) Event {
	e, err := NewEvent(fn, path)
	if err != nil {
		panic(err.Error())
	}
	return e
}

// CheckEvent validates a packed event read from an untrusted encoding:
// the function ID must be representable by MakeEvent. (Path IDs are
// bounded by construction — the low PathBits bits cannot overflow.)
func CheckEvent(e Event) error {
	_, err := NewEvent(e.Func(), e.Path())
	return err
}

// Func returns the function ID of the event.
func (e Event) Func() uint32 { return uint32(e >> PathBits) }

// Path returns the path ID of the event.
func (e Event) Path() uint64 { return uint64(e) & (1<<PathBits - 1) }

func (e Event) String() string { return fmt.Sprintf("f%d:p%d", e.Func(), e.Path()) }

// Buffer is an in-memory event stream. The zero value is ready to use.
type Buffer struct {
	Events []Event
}

// Add appends an event.
func (b *Buffer) Add(e Event) { b.Events = append(b.Events, e) }

// Len reports the number of events.
func (b *Buffer) Len() int { return len(b.Events) }

// Writer streams events to an io.Writer in the raw uncompressed trace
// format: a 4-byte magic followed by one uvarint per event. This is the
// "explicit trace" whose size the paper's Table 1 reports.
type Writer struct {
	bw     *bufio.Writer
	n      int64
	events uint64
	buf    [binary.MaxVarintLen64]byte
}

var traceMagic = [4]byte{'W', 'P', 'T', '1'}

// NewWriter returns a trace writer over w.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{bw: bufio.NewWriter(w)}
	n, err := tw.bw.Write(traceMagic[:])
	tw.n = int64(n)
	return tw, err
}

// Write appends one event.
func (w *Writer) Write(e Event) error {
	n := binary.PutUvarint(w.buf[:], uint64(e))
	wrote, err := w.bw.Write(w.buf[:n])
	w.n += int64(wrote)
	w.events++
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// BytesWritten reports the bytes produced so far (pre-Flush bytes
// included).
func (w *Writer) BytesWritten() int64 { return w.n }

// Events reports the number of events written.
func (w *Writer) Events() uint64 { return w.events }

// Reader reads a stream produced by Writer.
type Reader struct {
	br *bufio.Reader
}

// NewReader validates the magic and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("trace: %w: reading magic: %v", ErrTruncated, err)
		}
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != traceMagic {
		return nil, fmt.Errorf("trace: %w %q", ErrBadMagic, m[:])
	}
	return &Reader{br: br}, nil
}

// Read returns the next event, or io.EOF at the end of the stream. Events
// are validated as they are decoded: a stream cut mid-varint returns
// ErrTruncated and a value no numbering could have produced returns
// ErrEventRange, so adversarial input surfaces as a typed error rather
// than corrupting (or panicking) a downstream builder.
func (r *Reader) Read() (Event, error) {
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("trace: %w: event cut mid-varint", ErrTruncated)
		}
		return 0, fmt.Errorf("trace: %w", err)
	}
	if err := CheckEvent(Event(v)); err != nil {
		return 0, err
	}
	return Event(v), nil
}

// EncodedSize returns the raw trace size in bytes for the given events,
// without materializing the encoding.
func EncodedSize(events []Event) int64 {
	n := int64(len(traceMagic))
	for _, e := range events {
		v := uint64(e)
		n++
		for v >= 0x80 {
			v >>= 7
			n++
		}
	}
	return n
}

// FixedSize returns the size of the naive fixed-width encoding (8 bytes
// per event), the figure a tool that dumps raw words would produce.
func FixedSize(events []Event) int64 { return int64(len(events)) * 8 }

// DeflateSize compresses the varint encoding of events with DEFLATE at the
// given level (flate.BestCompression for the paper's gzip baseline) and
// returns the compressed size in bytes.
func DeflateSize(events []Event, level int) (int64, error) {
	var cw countingDiscard
	fw, err := flate.NewWriter(&cw, level)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(fw)
	var buf [binary.MaxVarintLen64]byte
	for _, e := range events {
		n := binary.PutUvarint(buf[:], uint64(e))
		if _, err := bw.Write(buf[:n]); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if err := fw.Close(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// Deflate compresses the varint encoding of events and returns the bytes,
// for callers that need the actual artifact rather than just its size.
func Deflate(events []Event, level int) ([]byte, error) {
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, level)
	if err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, e := range events {
		n := binary.PutUvarint(buf[:], uint64(e))
		if _, err := fw.Write(buf[:n]); err != nil {
			return nil, err
		}
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Inflate decompresses data produced by Deflate back into events.
func Inflate(data []byte) ([]Event, error) {
	fr := flate.NewReader(bytes.NewReader(data))
	defer fr.Close()
	br := bufio.NewReader(fr)
	var events []Event
	for {
		v, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: inflate: %w", err)
		}
		events = append(events, Event(v))
	}
}

type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
