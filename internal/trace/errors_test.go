package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// wireTrace encodes events the way Writer does, then applies mutate to
// the raw bytes, simulating what a network peer could deliver.
func wireTrace(t *testing.T, events []Event, mutate func([]byte) []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if mutate != nil {
		b = mutate(b)
	}
	return b
}

// rawEvents appends arbitrary uvarints after a valid magic, bypassing the
// Writer's type safety so out-of-range values can reach the decoder.
func rawEvents(values ...uint64) []byte {
	b := []byte("WPT1")
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range values {
		n := binary.PutUvarint(tmp[:], v)
		b = append(b, tmp[:n]...)
	}
	return b
}

// TestReaderSourceWireErrors drives the ReaderSource error paths with the
// malformed inputs a trace-ingestion server must survive: truncated batch
// frames (bodies cut mid-varint or mid-magic) and event values no
// Ball–Larus numbering could have produced. Every case must return the
// typed sentinel the server maps to a 400 — never panic, never yield the
// bad event.
func TestReaderSourceWireErrors(t *testing.T) {
	valid := []Event{MakeEvent(1, 2), MakeEvent(3, 4), MakeEvent(5, 6)}
	cases := []struct {
		name string
		data []byte
		want error
		// yields is how many events must be delivered before the error.
		yields int
	}{
		{"empty body", nil, ErrTruncated, 0},
		{"magic cut short", []byte("WP"), ErrTruncated, 0},
		{"wrong magic", []byte("XXXXzzzz"), ErrBadMagic, 0},
		{"wpp artifact magic", []byte("WPP1\x00\x00"), ErrBadMagic, 0},
		{
			"frame cut mid-varint",
			wireTrace(t, []Event{MakeEvent(9, 1 << 20), MakeEvent(9, 1 << 21)}, func(b []byte) []byte {
				return b[:len(b)-1] // drop the final continuation byte
			}),
			ErrTruncated, 1,
		},
		{
			"frame cut at a varint start keeps the prefix",
			wireTrace(t, valid, func(b []byte) []byte {
				// The last event of `valid` is one varint; removing it
				// exactly leaves a well-formed shorter stream.
				return b[:len(b)-len(wireTrace(t, valid[2:], nil))+4]
			}),
			nil, 2,
		},
		{"function ID beyond MaxFuncs", rawEvents(uint64(MaxFuncs) << PathBits), ErrEventRange, 0},
		{"max uint64 event", rawEvents(1<<64 - 1), ErrEventRange, 0},
		{
			"bad event after good ones",
			rawEvents(uint64(MakeEvent(1, 1)), uint64(MakeEvent(2, 2)), uint64(MaxFuncs+7)<<PathBits),
			ErrEventRange, 2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src, err := NewReaderSource(bytes.NewReader(c.data))
			if err != nil {
				if c.want == nil || !errors.Is(err, c.want) {
					t.Fatalf("NewReaderSource: got %v, want %v", err, c.want)
				}
				return
			}
			var got []Event
			n, err := src.Each(func(e Event) bool {
				got = append(got, e)
				return true
			})
			if c.want == nil {
				if err != nil {
					t.Fatalf("Each: unexpected error %v", err)
				}
			} else if !errors.Is(err, c.want) {
				t.Fatalf("Each: got error %v, want %v", err, c.want)
			}
			if len(got) != c.yields || n != uint64(c.yields) {
				t.Fatalf("Each yielded %d events (reported %d), want %d", len(got), n, c.yields)
			}
			for _, e := range got {
				if CheckEvent(e) != nil {
					t.Fatalf("Each yielded out-of-range event %v", e)
				}
			}
		})
	}
}

// TestReaderValidatesEachEvent pins that validation happens inside
// Reader.Read itself, not only at the Source layer.
func TestReaderValidatesEachEvent(t *testing.T) {
	r, err := NewReader(bytes.NewReader(rawEvents(uint64(MakeEvent(4, 4)), uint64(MaxFuncs)<<PathBits)))
	if err != nil {
		t.Fatal(err)
	}
	if e, err := r.Read(); err != nil || e != MakeEvent(4, 4) {
		t.Fatalf("first Read: %v, %v", e, err)
	}
	if _, err := r.Read(); !errors.Is(err, ErrEventRange) {
		t.Fatalf("second Read: got %v, want ErrEventRange", err)
	}
}

// TestCheckEventWrapsRangeSentinel pins the errors.Is contract servers
// rely on to map validation failures to client errors.
func TestCheckEventWrapsRangeSentinel(t *testing.T) {
	if err := CheckEvent(Event(uint64(MaxFuncs) << PathBits)); !errors.Is(err, ErrEventRange) {
		t.Fatalf("CheckEvent: got %v, want ErrEventRange", err)
	}
	if _, err := NewEvent(0, 1<<PathBits); !errors.Is(err, ErrEventRange) {
		t.Fatalf("NewEvent: got %v, want ErrEventRange", err)
	}
	if err := CheckEvent(MakeEvent(MaxFuncs-1, 1<<PathBits-1)); err != nil {
		t.Fatalf("CheckEvent rejected a maximal valid event: %v", err)
	}
}

// TestReaderEOFStaysClean pins that a well-formed stream still ends in a
// bare io.EOF (not ErrTruncated), which Each converts to a nil error.
func TestReaderEOFStaysClean(t *testing.T) {
	r, err := NewReader(bytes.NewReader(wireTrace(t, []Event{MakeEvent(1, 1)}, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}
