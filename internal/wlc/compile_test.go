package wlc

import (
	"strings"
	"testing"

	"repro/internal/bl"
)

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileMinimal(t *testing.T) {
	p := mustCompile(t, "func main() { return 42; }")
	f := p.ByName["main"]
	if f == nil {
		t.Fatal("no main")
	}
	if f.Graph.NumBlocks() < 3 {
		t.Fatalf("expected at least entry/body/exit, got %d blocks", f.Graph.NumBlocks())
	}
	if f.Graph.Block(f.Graph.Entry).Preds != nil {
		t.Fatal("entry has predecessors")
	}
}

func TestCompileSyntaxErrorPropagates(t *testing.T) {
	if _, err := Compile("func main( {"); err == nil {
		t.Fatal("syntax error not propagated")
	}
}

func TestCompileSemaErrorPropagates(t *testing.T) {
	if _, err := Compile("func main() { return x; }"); err == nil {
		t.Fatal("sema error not propagated")
	}
}

func TestWhileProducesBackEdge(t *testing.T) {
	p := mustCompile(t, `
func main(n) {
    var i = 0;
    while i < n { i = i + 1; }
    return i;
}`)
	f := p.ByName["main"]
	back, err := f.Graph.BackEdges()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("back edges = %v, want exactly 1", back)
	}
}

func TestNestedLoopsNumberable(t *testing.T) {
	p := mustCompile(t, `
func main(n) {
    var s = 0;
    var i = 0;
    while i < n {
        var j = 0;
        while j < n {
            s = s + i * j;
            j = j + 1;
        }
        i = i + 1;
    }
    return s;
}`)
	f := p.ByName["main"]
	if _, err := bl.Number(f.Graph); err != nil {
		t.Fatalf("nested loops not numberable: %v", err)
	}
}

func TestBothArmsReturn(t *testing.T) {
	p := mustCompile(t, `
func main(n) {
    if n > 0 {
        return 1;
    } else {
        return 2;
    }
}`)
	f := p.ByName["main"]
	if _, err := bl.Number(f.Graph); err != nil {
		t.Fatal(err)
	}
}

func TestDeadCodeAfterReturnDropped(t *testing.T) {
	p := mustCompile(t, `
func main() {
    return 1;
    print 999;
}`)
	dis := p.Disassemble()
	if strings.Contains(dis, "print") {
		t.Fatalf("dead print survived:\n%s", dis)
	}
}

func TestBreakContinueLowering(t *testing.T) {
	p := mustCompile(t, `
func main(n) {
    var i = 0;
    var s = 0;
    while 1 {
        i = i + 1;
        if i > n { break; }
        if i % 2 == 0 { continue; }
        s = s + i;
    }
    return s;
}`)
	f := p.ByName["main"]
	if _, err := bl.Number(f.Graph); err != nil {
		t.Fatal(err)
	}
}

func TestShortCircuitCreatesBranches(t *testing.T) {
	withSC := mustCompile(t, "func main(a, b) { return a > 0 && b > 0; }")
	withoutSC := mustCompile(t, "func main(a, b) { return a > 0; }")
	if withSC.ByName["main"].Graph.NumBlocks() <= withoutSC.ByName["main"].Graph.NumBlocks() {
		t.Fatal("&& did not lower to control flow")
	}
}

func TestRegisterLayout(t *testing.T) {
	p := mustCompile(t, `
func f(a, b) {
    var c = a + b;
    var d = c * 2;
    return d;
}
func main() { return f(1, 2); }`)
	f := p.ByName["f"]
	if f.Params != 2 {
		t.Fatalf("Params = %d", f.Params)
	}
	// r0 ret, r1-r2 params, r3-r4 locals, plus temps.
	if f.NumRegs < 5 {
		t.Fatalf("NumRegs = %d, want >= 5", f.NumRegs)
	}
}

func TestTempsResetPerStatement(t *testing.T) {
	// Many statements must not inflate the register file linearly.
	var sb strings.Builder
	sb.WriteString("func main() { var x = 0;\n")
	for i := 0; i < 50; i++ {
		sb.WriteString("x = x + 1 * 2 + 3;\n")
	}
	sb.WriteString("return x; }")
	p := mustCompile(t, sb.String())
	if n := p.ByName["main"].NumRegs; n > 12 {
		t.Fatalf("NumRegs = %d; temporaries are not being reset", n)
	}
}

func TestDisassembleMentionsAllOps(t *testing.T) {
	p := mustCompile(t, `
func main(n) {
    var a = array(4);
    a[0] = n;
    var x = a[0] + len(a);
    if !x { x = -x; }
    print x;
    return helper(x);
}
func helper(v) { return v; }`)
	dis := p.Disassemble()
	for _, want := range []string{"array", "call f", "print", "branch", "exit", "jump"} {
		if !strings.Contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestAllFunctionsNumberable(t *testing.T) {
	// A grab bag of control-flow shapes; every one must be reducible and
	// numberable, since the pipeline depends on it.
	p := mustCompile(t, `
func a(n) {
    var s = 0;
    var i = 0;
    while i < n {
        if i % 3 == 0 { s = s + 1; }
        else if i % 3 == 1 { s = s + 2; }
        else { s = s + 3; }
        i = i + 1;
    }
    return s;
}
func b(n) {
    var i = 0;
    while i < n {
        var j = 0;
        while j < i {
            if j % 2 == 0 && i % 2 == 0 { j = j + 2; continue; }
            j = j + 1;
        }
        i = i + 1;
    }
    return i;
}
func main() { return a(3) + b(3); }`)
	for _, f := range p.Funcs {
		if _, err := bl.Number(f.Graph); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestBlockWeightsPositive(t *testing.T) {
	p := mustCompile(t, "func main(n) { while n > 0 { n = n - 1; } return n; }")
	for _, f := range p.Funcs {
		for _, b := range f.Graph.Blocks() {
			if b.Weight < 1 {
				t.Fatalf("%s block %d weight %d", f.Name, b.ID, b.Weight)
			}
		}
	}
}
