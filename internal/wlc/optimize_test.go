package wlc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/wl"
)

func compileBoth(t *testing.T, src string) (plain, folded *Program) {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	o, err := CompileWithOptions(src, Options{ConstFold: true})
	if err != nil {
		t.Fatal(err)
	}
	return p, o
}

func instrCount(p *Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, code := range f.Code {
			n += len(code)
		}
	}
	return n
}

func TestFoldConstantExpression(t *testing.T) {
	_, o := compileBoth(t, "func main() { return 2 + 3 * 4 - (10 / 2); }")
	dis := o.Disassemble()
	if !strings.Contains(dis, "r0 = 9") && !strings.Contains(dis, "= 9") {
		t.Fatalf("expression not folded to 9:\n%s", dis)
	}
}

func TestFoldEliminatesConstantBranches(t *testing.T) {
	src := `
func main(n) {
    var s = 0;
    if 1 { s = s + n; } else { s = s - n; }
    if 0 { s = 999; }
    while 0 { s = 888; }
    return s;
}`
	p, o := compileBoth(t, src)
	if o.ByName["main"].Graph.NumBlocks() >= p.ByName["main"].Graph.NumBlocks() {
		t.Fatalf("constant branches not eliminated: %d vs %d blocks",
			o.ByName["main"].Graph.NumBlocks(), p.ByName["main"].Graph.NumBlocks())
	}
	dis := o.Disassemble()
	if strings.Contains(dis, "999") || strings.Contains(dis, "888") {
		t.Fatalf("dead code survived:\n%s", dis)
	}
}

func TestFoldHoistsDeadArmDeclarations(t *testing.T) {
	// x is declared only inside dead code but used afterwards; the
	// optimizer must keep it alive with its zero value.
	src := `
func main(n) {
    while 0 { var x = 7; }
    if 0 { var y = 9; } else { }
    x = n;
    return x + y;
}`
	_, o := compileBoth(t, src)
	if o == nil {
		t.Fatal("compile failed")
	}
}

func TestFoldIdentities(t *testing.T) {
	src := `
func main(n) {
    var a = n + 0;
    var b = n * 1;
    var c = n * 0;
    var d = 0 + n;
    return a + b + c + d;
}`
	p, o := compileBoth(t, src)
	if instrCount(o) >= instrCount(p) {
		t.Fatalf("identities not simplified: %d vs %d instrs", instrCount(o), instrCount(p))
	}
}

func TestFoldPreservesDivisionFaults(t *testing.T) {
	// 1/0 must remain a runtime fault, not be folded away or crash the
	// compiler.
	src := "func main() { return 1 / 0; }"
	_, o := compileBoth(t, src)
	if !strings.Contains(o.Disassemble(), "/") {
		t.Fatal("faulting division was folded")
	}
}

func TestFoldPreservesCallEffects(t *testing.T) {
	// f(a) has effects; `f(a) * 0` must keep the call.
	src := `
func f(a) { a[0] = a[0] + 1; return 1; }
func main() {
    var a = array(1);
    var z = f(a) * 0;
    return a[0] + z;
}`
	_, o := compileBoth(t, src)
	if !strings.Contains(o.Disassemble(), "call") {
		t.Fatal("call with side effects eliminated")
	}
}

func TestFoldShortCircuitConstants(t *testing.T) {
	cases := map[string]string{
		"func main(n) { return 0 && f(n); } func f(n) { return n; }": "call", // must NOT contain
		"func main(n) { return 1 || f(n); } func f(n) { return n; }": "call",
	}
	for src := range cases {
		_, o := compileBoth(t, src)
		if strings.Contains(o.ByName["main"].Graph.Name, "zz") {
			t.Fatal("unreachable")
		}
		dis := o.Disassemble()
		// main must not call f; f itself still contains no calls.
		mainHasCall := false
		f := o.ByName["main"]
		for _, code := range f.Code {
			for _, in := range code {
				if in.Op == OpCall {
					mainHasCall = true
				}
			}
		}
		if mainHasCall {
			t.Fatalf("short-circuit constant did not eliminate call:\n%s", dis)
		}
	}
}

func TestFoldConstMatchesInterpreterSemantics(t *testing.T) {
	ops := []wl.Kind{wl.Add, wl.Sub, wl.Mul, wl.Div, wl.Rem, wl.Lt, wl.Le, wl.Gt, wl.Ge, wl.Eq, wl.Ne, wl.And, wl.Or, wl.Xor, wl.Shl, wl.Shr}
	rng := rand.New(rand.NewSource(41))
	f := func(a, b int64) bool {
		op := ops[rng.Intn(len(ops))]
		if (op == wl.Div || op == wl.Rem) && b == 0 {
			return true
		}
		want, err := FoldConst(op, a, b)
		if err != nil {
			return false
		}
		// Reference: run the operation through the whole pipeline.
		// Shift counts are masked to 6 bits by both, so any b works.
		got := runConst(op, a, b)
		return want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// runConst evaluates a op b with the same semantics the interpreter
// implements, duplicated here deliberately as an independent oracle.
func runConst(op wl.Kind, a, b int64) int64 {
	switch op {
	case wl.Add:
		return a + b
	case wl.Sub:
		return a - b
	case wl.Mul:
		return a * b
	case wl.Div:
		return a / b
	case wl.Rem:
		return a % b
	case wl.Lt:
		return tb2i(a < b)
	case wl.Le:
		return tb2i(a <= b)
	case wl.Gt:
		return tb2i(a > b)
	case wl.Ge:
		return tb2i(a >= b)
	case wl.Eq:
		return tb2i(a == b)
	case wl.Ne:
		return tb2i(a != b)
	case wl.And:
		return a & b
	case wl.Or:
		return a | b
	case wl.Xor:
		return a ^ b
	case wl.Shl:
		return a << (uint64(b) & 63)
	case wl.Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	}
	panic("unreachable")
}

func tb2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
