package wlc

import (
	"testing"

	"repro/internal/wl"
	"repro/internal/workloads"
)

// FuzzFoldLowerVerify round-trips any checkable source through the AST
// folder and the lowerer and asserts the result verifies: whatever the
// front end accepts, the optimizer must not break and the IR invariants
// must hold. Folding runs on a copy of the pipeline only in spirit — the
// fuzz target compiles the same source twice, folded and unfolded, and
// verifies both.
func FuzzFoldLowerVerify(f *testing.F) {
	f.Add("func main() { return 0; }")
	f.Add("func main(n) { if 1 { return n; } return 2 * 3 + n; }")
	f.Add("func main(n) { var x = 0; while x < n { x = x + 1; if x % 2 { continue; } print x; } return x; }")
	f.Add("func f(a) { return a * a; } func main(n) { var s = [4]; s[0] = f(n); return s[0]; }")
	f.Add("func main(n) { var y = 1 / 0; return y; }")
	for _, w := range workloads.All {
		f.Add(w.Source)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := wl.Parse(src)
		if err != nil {
			return
		}
		if err := wl.Check(file); err != nil {
			return
		}
		plain, err := Lower(file)
		if err != nil {
			t.Fatalf("checked source does not lower: %v\nsource:\n%s", err, src)
		}
		if err := plain.Verify(); err != nil {
			t.Fatalf("lowered program does not verify: %v\nsource:\n%s", err, src)
		}
		Fold(file)
		folded, err := Lower(file)
		if err != nil {
			t.Fatalf("folded source does not lower: %v\nsource:\n%s", err, src)
		}
		if err := folded.Verify(); err != nil {
			t.Fatalf("folded program does not verify: %v\nsource:\n%s", err, src)
		}
		if len(folded.Funcs) != len(plain.Funcs) {
			t.Fatalf("folding changed the function count: %d -> %d", len(plain.Funcs), len(folded.Funcs))
		}
	})
}
