// Package wlc compiles WL source (package wl) to a register-machine IR
// organized as per-function control-flow graphs (package cfg). This is the
// point where the whole-program-path instrumentation hooks in: the CFGs
// produced here are what bl.Number numbers and what the interpreter
// executes with path tracing.
package wlc

import (
	"fmt"
	"strings"

	"repro/internal/cfg"
	"repro/internal/wl"
)

// Op is an IR opcode.
type Op uint8

// IR opcodes. Register operands are indices into the frame's register
// file; register 0 is the return-value slot.
const (
	OpConst  Op = iota // Dst = Imm
	OpMov              // Dst = A
	OpBin              // Dst = A <BinOp> B
	OpNot              // Dst = !A (0 or 1)
	OpNeg              // Dst = -A
	OpNewArr           // Dst = array(A)
	OpLen              // Dst = len(A)
	OpLoad             // Dst = A[B]
	OpStore            // A[B] = Dst (Dst read, not written)
	OpCall             // Dst = Fn(Args...)
	OpPrint            // print Args...
)

var opNames = [...]string{
	OpConst: "const", OpMov: "mov", OpBin: "bin", OpNot: "not",
	OpNeg: "neg", OpNewArr: "newarr", OpLen: "len", OpLoad: "load",
	OpStore: "store", OpCall: "call", OpPrint: "print",
}

func (o Op) String() string { return opNames[o] }

// Instr is one IR instruction.
type Instr struct {
	Op    Op
	Dst   int32
	A, B  int32
	Imm   int64
	BinOp wl.Kind // for OpBin
	Fn    int32   // for OpCall
	Args  []int32 // for OpCall and OpPrint
	Pos   wl.Pos
}

func (in Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = %d", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("r%d = r%d %s r%d", in.Dst, in.A, in.BinOp, in.B)
	case OpNot:
		return fmt.Sprintf("r%d = !r%d", in.Dst, in.A)
	case OpNeg:
		return fmt.Sprintf("r%d = -r%d", in.Dst, in.A)
	case OpNewArr:
		return fmt.Sprintf("r%d = array(r%d)", in.Dst, in.A)
	case OpLen:
		return fmt.Sprintf("r%d = len(r%d)", in.Dst, in.A)
	case OpLoad:
		return fmt.Sprintf("r%d = r%d[r%d]", in.Dst, in.A, in.B)
	case OpStore:
		return fmt.Sprintf("r%d[r%d] = r%d", in.A, in.B, in.Dst)
	case OpCall:
		return fmt.Sprintf("r%d = call f%d%v", in.Dst, in.Fn, in.Args)
	case OpPrint:
		return fmt.Sprintf("print %v", in.Args)
	}
	return "?"
}

// TermKind classifies a block terminator.
type TermKind uint8

const (
	// TermJump transfers to the block's only successor.
	TermJump TermKind = iota
	// TermBranch tests Cond: successor 0 if nonzero, successor 1 if zero.
	TermBranch
	// TermExit ends the function (only on the exit block).
	TermExit
)

// Term is a block terminator.
type Term struct {
	Kind TermKind
	Cond int32 // register, for TermBranch
}

// Func is one compiled function.
type Func struct {
	ID      int32
	Name    string
	Params  int
	NumRegs int
	Graph   *cfg.Graph
	// Code[b] and Terms[b] are indexed by cfg.BlockID.
	Code  [][]Instr
	Terms []Term
}

// Program is a compiled WL program.
type Program struct {
	Funcs  []*Func
	ByName map[string]*Func
}

// Disassemble renders the program's IR for debugging.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s (f%d) params=%d regs=%d\n", f.Name, f.ID, f.Params, f.NumRegs)
		for _, b := range f.Graph.Blocks() {
			fmt.Fprintf(&sb, "  b%d (%s):\n", b.ID, b.Name)
			for _, in := range f.Code[b.ID] {
				fmt.Fprintf(&sb, "    %s\n", in)
			}
			t := f.Terms[b.ID]
			switch t.Kind {
			case TermJump:
				fmt.Fprintf(&sb, "    jump b%d\n", b.Succs[0])
			case TermBranch:
				fmt.Fprintf(&sb, "    branch r%d ? b%d : b%d\n", t.Cond, b.Succs[0], b.Succs[1])
			case TermExit:
				fmt.Fprintf(&sb, "    exit\n")
			}
		}
	}
	return sb.String()
}
