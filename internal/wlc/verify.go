package wlc

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/wl"
)

// Verify checks the structural integrity of a compiled program, the IR
// analogue of an SSA verifier: every register operand in bounds, every
// call target valid with matching arity handled at the IR level (argument
// count equals the callee's parameter count), terminators consistent with
// successor counts, and block weights in sync with the code. The compiler
// must always produce programs that verify; the fuzz tests enforce it.
func (p *Program) Verify() error {
	for _, f := range p.Funcs {
		if err := p.verifyFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// verifyGraph re-validates the CFG shape independently of cfg.Finish
// (corruption after compilation must be caught, not assumed away): entry
// and exit in range, every jump target a real block, every block
// reachable from the entry, and the exit reachable from every block.
// Reachability-to-exit follows Succs (not the Preds cache, which a
// corrupted graph may leave stale).
func (p *Program) verifyGraph(f *Func, errf func(string, ...any) error) error {
	nb := f.Graph.NumBlocks()
	if int(f.Graph.Entry) < 0 || int(f.Graph.Entry) >= nb {
		return errf("entry block %d out of range [0,%d)", f.Graph.Entry, nb)
	}
	if int(f.Graph.Exit) < 0 || int(f.Graph.Exit) >= nb {
		return errf("exit block %d out of range [0,%d)", f.Graph.Exit, nb)
	}
	rev := make([][]cfg.BlockID, nb)
	for _, blk := range f.Graph.Blocks() {
		for _, s := range blk.Succs {
			if int(s) < 0 || int(s) >= nb {
				return errf("block %d: jump target %d out of range [0,%d)", blk.ID, s, nb)
			}
			rev[s] = append(rev[s], blk.ID)
		}
	}
	reachesExit := make([]bool, nb)
	stack := []cfg.BlockID{f.Graph.Exit}
	reachesExit[f.Graph.Exit] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pred := range rev[b] {
			if !reachesExit[pred] {
				reachesExit[pred] = true
				stack = append(stack, pred)
			}
		}
	}
	for b, ok := range reachesExit {
		if !ok {
			return errf("block %d cannot reach the exit", b)
		}
	}
	fromEntry := make([]bool, nb)
	stack = append(stack, f.Graph.Entry)
	fromEntry[f.Graph.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Graph.Block(b).Succs {
			if !fromEntry[s] {
				fromEntry[s] = true
				stack = append(stack, s)
			}
		}
	}
	for b, ok := range fromEntry {
		if !ok {
			return errf("block %d unreachable from the entry", b)
		}
	}
	return nil
}

func (p *Program) verifyFunc(f *Func) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("wlc: verify %s: %s", f.Name, fmt.Sprintf(format, args...))
	}
	if f.Params < 0 || f.Params >= f.NumRegs {
		return errf("%d params but %d registers", f.Params, f.NumRegs)
	}
	if len(f.Code) != f.Graph.NumBlocks() || len(f.Terms) != f.Graph.NumBlocks() {
		return errf("code/terminator tables sized %d/%d for %d blocks", len(f.Code), len(f.Terms), f.Graph.NumBlocks())
	}
	if err := p.verifyGraph(f, errf); err != nil {
		return err
	}
	checkReg := func(r int32, what string, b int) error {
		if r < 0 || int(r) >= f.NumRegs {
			return errf("block %d: %s register r%d out of range [0,%d)", b, what, r, f.NumRegs)
		}
		return nil
	}
	for _, blk := range f.Graph.Blocks() {
		b := int(blk.ID)
		if blk.Weight != len(f.Code[blk.ID])+1 {
			return errf("block %d: weight %d != %d instructions + terminator", b, blk.Weight, len(f.Code[blk.ID]))
		}
		for i, in := range f.Code[blk.ID] {
			ctx := func(err error) error {
				if err != nil {
					return fmt.Errorf("%w (instruction %d: %s)", err, i, in)
				}
				return nil
			}
			switch in.Op {
			case OpConst:
				if err := ctx(checkReg(in.Dst, "dst", b)); err != nil {
					return err
				}
			case OpMov, OpNot, OpNeg, OpNewArr, OpLen:
				if err := ctx(checkReg(in.Dst, "dst", b)); err != nil {
					return err
				}
				if err := ctx(checkReg(in.A, "src", b)); err != nil {
					return err
				}
			case OpBin:
				for _, r := range []int32{in.Dst, in.A, in.B} {
					if err := ctx(checkReg(r, "operand", b)); err != nil {
						return err
					}
				}
				if in.BinOp < wl.Add || in.BinOp > wl.Shr {
					return errf("block %d: instruction %d: invalid operator %v", b, i, in.BinOp)
				}
			case OpLoad, OpStore:
				for _, r := range []int32{in.Dst, in.A, in.B} {
					if err := ctx(checkReg(r, "operand", b)); err != nil {
						return err
					}
				}
			case OpCall:
				if err := ctx(checkReg(in.Dst, "dst", b)); err != nil {
					return err
				}
				if int(in.Fn) < 0 || int(in.Fn) >= len(p.Funcs) {
					return errf("block %d: call to unknown function f%d", b, in.Fn)
				}
				callee := p.Funcs[in.Fn]
				if len(in.Args) != callee.Params {
					return errf("block %d: call to %s with %d args, wants %d", b, callee.Name, len(in.Args), callee.Params)
				}
				for _, r := range in.Args {
					if err := ctx(checkReg(r, "argument", b)); err != nil {
						return err
					}
				}
			case OpPrint:
				for _, r := range in.Args {
					if err := ctx(checkReg(r, "argument", b)); err != nil {
						return err
					}
				}
			default:
				return errf("block %d: instruction %d: unknown opcode %d", b, i, in.Op)
			}
		}
		term := f.Terms[blk.ID]
		switch term.Kind {
		case TermJump:
			if len(blk.Succs) != 1 {
				return errf("block %d: jump with %d successors", b, len(blk.Succs))
			}
		case TermBranch:
			if len(blk.Succs) != 2 {
				return errf("block %d: branch with %d successors", b, len(blk.Succs))
			}
			if err := checkReg(term.Cond, "branch condition", b); err != nil {
				return err
			}
		case TermExit:
			if blk.ID != f.Graph.Exit {
				return errf("block %d: exit terminator outside the exit block", b)
			}
			if len(blk.Succs) != 0 {
				return errf("exit block has %d successors", len(blk.Succs))
			}
		default:
			return errf("block %d: unknown terminator %d", b, term.Kind)
		}
	}
	return nil
}
