package wlc

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/wl"
)

// Compile parses, checks, and lowers WL source text into an IR program.
func Compile(src string) (*Program, error) {
	file, err := wl.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := wl.Check(file); err != nil {
		return nil, err
	}
	return Lower(file)
}

// Lower compiles a checked AST into an IR program.
func Lower(file *wl.File) (*Program, error) {
	p := &Program{ByName: map[string]*Func{}}
	fnID := map[string]int32{}
	for i, fn := range file.Funcs {
		fnID[fn.Name] = int32(i)
	}
	for i, fn := range file.Funcs {
		f, err := lowerFunc(fn, int32(i), fnID)
		if err != nil {
			return nil, err
		}
		p.Funcs = append(p.Funcs, f)
		p.ByName[f.Name] = f
	}
	return p, nil
}

// lowerer holds per-function compilation state.
type lowerer struct {
	fn     *Func
	fnID   map[string]int32
	g      *cfg.Graph
	code   map[cfg.BlockID][]Instr
	terms  map[cfg.BlockID]Term
	vars   map[string]int32
	temp   int32 // next temporary register
	high   int32 // high-water mark of temp
	base   int32 // first temporary register
	cur    cfg.BlockID
	dead   bool // current insertion point is unreachable
	exit   cfg.BlockID
	breaks []cfg.BlockID // innermost loop's after-block stack
	conts  []*lazyBlock  // innermost loop's continue-target stack
}

// lazyBlock defers basic-block creation until a jump actually targets it,
// so loops whose bodies never fall through or continue do not leave
// orphan blocks behind.
type lazyBlock struct {
	blk  *cfg.Block
	name string
}

func (lo *lowerer) lazyID(lb *lazyBlock) cfg.BlockID {
	if lb.blk == nil {
		lb.blk = lo.newBlock(lb.name)
	}
	return lb.blk.ID
}

func lowerFunc(decl *wl.FuncDecl, id int32, fnID map[string]int32) (*Func, error) {
	g := cfg.New(decl.Name)
	lo := &lowerer{
		fn:    &Func{ID: id, Name: decl.Name, Params: len(decl.Params)},
		fnID:  fnID,
		g:     g,
		code:  map[cfg.BlockID][]Instr{},
		terms: map[cfg.BlockID]Term{},
		vars:  map[string]int32{},
	}
	// Register layout: r0 return slot, then params, then all locals (found
	// by pre-scan), then temporaries.
	next := int32(1)
	for _, p := range decl.Params {
		lo.vars[p] = next
		next++
	}
	collectVars(decl.Body, func(name string) {
		lo.vars[name] = next
		next++
	})
	lo.base = next
	lo.temp = next
	lo.high = next

	entry := g.NewBlock("entry")
	exitB := g.NewBlock("exit")
	lo.exit = exitB.ID
	lo.terms[exitB.ID] = Term{Kind: TermExit}
	body := lo.newBlock("body")
	lo.edge(entry.ID, body.ID)
	lo.terms[entry.ID] = Term{Kind: TermJump}
	lo.cur = body.ID

	lo.block(decl.Body)
	if !lo.dead {
		// Implicit "return 0".
		lo.emit(Instr{Op: OpConst, Dst: 0, Imm: 0, Pos: decl.Pos})
		lo.jump(lo.exit)
	}

	g.SetEntry(entry.ID)
	g.SetExit(exitB.ID)
	// Materialize code/term tables and block weights.
	lo.fn.Code = make([][]Instr, g.NumBlocks())
	lo.fn.Terms = make([]Term, g.NumBlocks())
	for _, b := range g.Blocks() {
		lo.fn.Code[b.ID] = lo.code[b.ID]
		t, ok := lo.terms[b.ID]
		if !ok {
			return nil, fmt.Errorf("wlc: %s: block %d has no terminator", decl.Name, b.ID)
		}
		lo.fn.Terms[b.ID] = t
		b.Weight = len(lo.code[b.ID]) + 1
	}
	if err := g.Finish(); err != nil {
		return nil, fmt.Errorf("wlc: %s: %w (does every loop reach the function end?)", decl.Name, err)
	}
	lo.fn.NumRegs = int(lo.high)
	lo.fn.Graph = g
	return lo.fn, nil
}

// collectVars invokes visit for every var declaration in the statement
// tree, in source order.
func collectVars(s wl.Stmt, visit func(string)) {
	switch s := s.(type) {
	case *wl.BlockStmt:
		for _, st := range s.Stmts {
			collectVars(st, visit)
		}
	case *wl.VarStmt:
		visit(s.Name)
	case *wl.IfStmt:
		collectVars(s.Then, visit)
		if s.Else != nil {
			collectVars(s.Else, visit)
		}
	case *wl.WhileStmt:
		collectVars(s.Body, visit)
	case *wl.ForStmt:
		if s.Init != nil {
			collectVars(s.Init, visit)
		}
		collectVars(s.Body, visit)
	}
}

func (lo *lowerer) newBlock(name string) *cfg.Block { return lo.g.NewBlock(name) }

func (lo *lowerer) edge(from, to cfg.BlockID) {
	if err := lo.g.AddEdge(from, to); err != nil {
		// Lowering always creates distinct target blocks, so duplicates
		// indicate a compiler bug.
		panic(err)
	}
}

func (lo *lowerer) emit(in Instr) {
	if lo.dead {
		return
	}
	lo.code[lo.cur] = append(lo.code[lo.cur], in)
}

// jump terminates the current block with an unconditional transfer to
// `to` and marks the insertion point dead until startBlock.
func (lo *lowerer) jump(to cfg.BlockID) {
	if lo.dead {
		return
	}
	lo.terms[lo.cur] = Term{Kind: TermJump}
	lo.edge(lo.cur, to)
	lo.dead = true
}

// branch terminates the current block with a conditional transfer.
func (lo *lowerer) branch(cond int32, ifTrue, ifFalse cfg.BlockID) {
	if lo.dead {
		return
	}
	lo.terms[lo.cur] = Term{Kind: TermBranch, Cond: cond}
	lo.edge(lo.cur, ifTrue)
	lo.edge(lo.cur, ifFalse)
	lo.dead = true
}

// startBlock makes b the current insertion point.
func (lo *lowerer) startBlock(b cfg.BlockID) {
	lo.cur = b
	lo.dead = false
}

// newTemp allocates a temporary register.
func (lo *lowerer) newTemp() int32 {
	r := lo.temp
	lo.temp++
	if lo.temp > lo.high {
		lo.high = lo.temp
	}
	return r
}

// resetTemps releases all statement-scoped temporaries.
func (lo *lowerer) resetTemps() { lo.temp = lo.base }

func (lo *lowerer) block(b *wl.BlockStmt) {
	for _, s := range b.Stmts {
		if lo.dead {
			// Unreachable trailing statements (after return/break/continue)
			// are dropped.
			return
		}
		lo.stmt(s)
		lo.resetTemps()
	}
}

func (lo *lowerer) stmt(s wl.Stmt) {
	switch s := s.(type) {
	case *wl.BlockStmt:
		lo.block(s)
	case *wl.VarStmt:
		r := lo.expr(s.Init)
		lo.emit(Instr{Op: OpMov, Dst: lo.vars[s.Name], A: r, Pos: s.Pos})
	case *wl.AssignStmt:
		if s.Index == nil {
			r := lo.expr(s.Value)
			lo.emit(Instr{Op: OpMov, Dst: lo.vars[s.Name], A: r, Pos: s.Pos})
			return
		}
		idx := lo.expr(s.Index)
		val := lo.expr(s.Value)
		lo.emit(Instr{Op: OpStore, A: lo.vars[s.Name], B: idx, Dst: val, Pos: s.Pos})
	case *wl.IfStmt:
		cond := lo.expr(s.Cond)
		thenB := lo.newBlock("then")
		if s.Else == nil {
			join := lo.newBlock("join")
			lo.branch(cond, thenB.ID, join.ID)
			lo.startBlock(thenB.ID)
			lo.block(s.Then)
			lo.jump(join.ID)
			lo.startBlock(join.ID)
			return
		}
		elseB := lo.newBlock("else")
		lo.branch(cond, thenB.ID, elseB.ID)
		lo.startBlock(thenB.ID)
		lo.block(s.Then)
		thenEnd, thenDead := lo.cur, lo.dead
		lo.startBlock(elseB.ID)
		lo.stmt(s.Else)
		elseEnd, elseDead := lo.cur, lo.dead
		if thenDead && elseDead {
			// Both arms left the region (return/break/continue): there is
			// no join and whatever follows is unreachable.
			lo.dead = true
			return
		}
		// Create the join lazily so it never exists without predecessors.
		join := lo.newBlock("join")
		if !thenDead {
			lo.terms[thenEnd] = Term{Kind: TermJump}
			lo.edge(thenEnd, join.ID)
		}
		if !elseDead {
			lo.terms[elseEnd] = Term{Kind: TermJump}
			lo.edge(elseEnd, join.ID)
		}
		lo.startBlock(join.ID)
	case *wl.WhileStmt:
		head := lo.newBlock("head")
		body := lo.newBlock("while")
		after := lo.newBlock("after")
		lo.jump(head.ID)
		lo.startBlock(head.ID)
		cond := lo.expr(s.Cond)
		lo.branch(cond, body.ID, after.ID)
		lo.breaks = append(lo.breaks, after.ID)
		lo.conts = append(lo.conts, &lazyBlock{blk: lo.g.Block(head.ID)})
		lo.startBlock(body.ID)
		lo.block(s.Body)
		lo.jump(head.ID)
		lo.breaks = lo.breaks[:len(lo.breaks)-1]
		lo.conts = lo.conts[:len(lo.conts)-1]
		lo.startBlock(after.ID)
	case *wl.ForStmt:
		if s.Init != nil {
			lo.stmt(s.Init)
			lo.resetTemps()
		}
		head := lo.newBlock("for_head")
		body := lo.newBlock("for_body")
		post := &lazyBlock{name: "for_post"}
		after := lo.newBlock("for_after")
		lo.jump(head.ID)
		lo.startBlock(head.ID)
		var cond int32
		if s.Cond != nil {
			cond = lo.expr(s.Cond)
		} else {
			// An omitted condition lowers to the constant 1 (exactly as
			// `while 1` does), keeping the after-block statically
			// reachable even when the body never breaks.
			cond = lo.newTemp()
			lo.emit(Instr{Op: OpConst, Dst: cond, Imm: 1, Pos: s.Pos})
		}
		lo.branch(cond, body.ID, after.ID)
		lo.breaks = append(lo.breaks, after.ID)
		lo.conts = append(lo.conts, post)
		lo.startBlock(body.ID)
		lo.block(s.Body)
		if !lo.dead {
			lo.jump(lo.lazyID(post))
		}
		lo.breaks = lo.breaks[:len(lo.breaks)-1]
		lo.conts = lo.conts[:len(lo.conts)-1]
		// The post block exists only if the body fell through or
		// continued; otherwise the loop never iterates again.
		if post.blk != nil {
			lo.startBlock(post.blk.ID)
			if s.Post != nil {
				lo.stmt(s.Post)
				lo.resetTemps()
			}
			lo.jump(head.ID)
		}
		lo.startBlock(after.ID)
	case *wl.ReturnStmt:
		if s.Value != nil {
			r := lo.expr(s.Value)
			lo.emit(Instr{Op: OpMov, Dst: 0, A: r, Pos: s.Pos})
		} else {
			lo.emit(Instr{Op: OpConst, Dst: 0, Imm: 0, Pos: s.Pos})
		}
		lo.jump(lo.exit)
	case *wl.BreakStmt:
		lo.jump(lo.breaks[len(lo.breaks)-1])
	case *wl.ContinueStmt:
		lo.jump(lo.lazyID(lo.conts[len(lo.conts)-1]))
	case *wl.PrintStmt:
		args := make([]int32, len(s.Args))
		for i, a := range s.Args {
			args[i] = lo.expr(a)
		}
		lo.emit(Instr{Op: OpPrint, Args: args, Pos: s.Pos})
	case *wl.ExprStmt:
		lo.expr(s.X)
	default:
		panic(fmt.Sprintf("wlc: unknown statement %T", s))
	}
}

func (lo *lowerer) expr(e wl.Expr) int32 {
	switch e := e.(type) {
	case *wl.IntLit:
		r := lo.newTemp()
		lo.emit(Instr{Op: OpConst, Dst: r, Imm: e.Val, Pos: e.Pos})
		return r
	case *wl.Ident:
		return lo.vars[e.Name]
	case *wl.IndexExpr:
		idx := lo.expr(e.Index)
		r := lo.newTemp()
		lo.emit(Instr{Op: OpLoad, Dst: r, A: lo.vars[e.Name], B: idx, Pos: e.Pos})
		return r
	case *wl.CallExpr:
		switch e.Name {
		case wl.BuiltinArray:
			a := lo.expr(e.Args[0])
			r := lo.newTemp()
			lo.emit(Instr{Op: OpNewArr, Dst: r, A: a, Pos: e.Pos})
			return r
		case wl.BuiltinLen:
			a := lo.expr(e.Args[0])
			r := lo.newTemp()
			lo.emit(Instr{Op: OpLen, Dst: r, A: a, Pos: e.Pos})
			return r
		}
		args := make([]int32, len(e.Args))
		for i, a := range e.Args {
			args[i] = lo.expr(a)
		}
		r := lo.newTemp()
		lo.emit(Instr{Op: OpCall, Dst: r, Fn: lo.fnID[e.Name], Args: args, Pos: e.Pos})
		return r
	case *wl.UnaryExpr:
		x := lo.expr(e.X)
		r := lo.newTemp()
		if e.Op == wl.Not {
			lo.emit(Instr{Op: OpNot, Dst: r, A: x, Pos: e.Pos})
		} else {
			lo.emit(Instr{Op: OpNeg, Dst: r, A: x, Pos: e.Pos})
		}
		return r
	case *wl.BinaryExpr:
		if e.Op == wl.AndAnd || e.Op == wl.OrOr {
			return lo.shortCircuit(e)
		}
		x := lo.expr(e.X)
		y := lo.expr(e.Y)
		r := lo.newTemp()
		lo.emit(Instr{Op: OpBin, Dst: r, A: x, B: y, BinOp: e.Op, Pos: e.Pos})
		return r
	}
	panic(fmt.Sprintf("wlc: unknown expression %T", e))
}

// shortCircuit lowers && and || to control flow producing 0 or 1, as a
// compiler for a real machine would; the extra branches are part of what
// makes WL traces realistic.
func (lo *lowerer) shortCircuit(e *wl.BinaryExpr) int32 {
	r := lo.newTemp()
	x := lo.expr(e.X)
	rhs := lo.newBlock("sc_rhs")
	short := lo.newBlock("sc_short")
	join := lo.newBlock("sc_join")
	if e.Op == wl.AndAnd {
		lo.branch(x, rhs.ID, short.ID)
	} else {
		lo.branch(x, short.ID, rhs.ID)
	}
	// Short-circuit side: result is 0 for &&, 1 for ||.
	lo.startBlock(short.ID)
	imm := int64(0)
	if e.Op == wl.OrOr {
		imm = 1
	}
	lo.emit(Instr{Op: OpConst, Dst: r, Imm: imm, Pos: e.Pos})
	lo.jump(join.ID)
	// RHS side: result is rhs != 0, normalized with two nots.
	lo.startBlock(rhs.ID)
	y := lo.expr(e.Y)
	t := lo.newTemp()
	lo.emit(Instr{Op: OpNot, Dst: t, A: y, Pos: e.Pos})
	lo.emit(Instr{Op: OpNot, Dst: r, A: t, Pos: e.Pos})
	lo.jump(join.ID)
	lo.startBlock(join.ID)
	return r
}
