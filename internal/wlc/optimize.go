package wlc

import (
	"fmt"

	"repro/internal/wl"
)

// Options controls compilation.
type Options struct {
	// ConstFold enables AST-level constant folding and constant-branch
	// elimination before lowering. An optimized build has a different CFG
	// — and therefore different Ball–Larus numbering — than a plain
	// build, mirroring how the paper's traces depend on the compiled
	// binary, not the source.
	ConstFold bool
	// IRPasses are applied to the lowered program in order, each a
	// whole-program IR rewrite (e.g. dataflow-driven dead-branch
	// elimination, which lives outside this package so the IR stays
	// analysis-free). A pass must leave the program verifying; the
	// compiler re-checks after the last pass.
	IRPasses []func(*Program) error
}

// CompileWithOptions parses, checks, optionally optimizes, and lowers WL
// source text.
func CompileWithOptions(src string, opts Options) (*Program, error) {
	file, err := wl.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := wl.Check(file); err != nil {
		return nil, err
	}
	if opts.ConstFold {
		foldFile(file)
	}
	prog, err := Lower(file)
	if err != nil {
		return nil, err
	}
	if len(opts.IRPasses) > 0 {
		for _, pass := range opts.IRPasses {
			if err := pass(prog); err != nil {
				return nil, err
			}
		}
		if err := prog.Verify(); err != nil {
			return nil, fmt.Errorf("wlc: IR pass broke the program: %w", err)
		}
	}
	return prog, nil
}

// Fold applies the optimizer's AST rewrites (constant folding,
// constant-branch elimination, dead-declaration removal) to a checked
// file in place, for tools that want to display or further process the
// optimized source (wl.Format renders it back to text).
func Fold(f *wl.File) { foldFile(f) }

// foldFile applies constant folding, constant-branch elimination, and
// dead-declaration removal to every function, in place.
func foldFile(f *wl.File) {
	for _, fn := range f.Funcs {
		fo := &folder{}
		fn.Body = fo.foldBlock(fn.Body)
		if len(fo.hoisted) > 0 {
			// Declarations rescued from eliminated dead code run once at
			// function entry (zero-initialized, exactly as an unexecuted
			// declaration behaves).
			fn.Body.Stmts = append(append([]wl.Stmt{}, fo.hoisted...), fn.Body.Stmts...)
		}
		removeDeadDecls(fn.Body)
	}
}

// folder carries per-function folding state: declarations hoisted out of
// eliminated dead code.
type folder struct {
	hoisted []wl.Stmt
}

// removeDeadDecls drops `var x = <pure>` declarations whose variable is
// never referenced again (folding and dead-arm hoisting create these).
// Removing one declaration can orphan another, so it iterates to a
// fixpoint.
func removeDeadDecls(body *wl.BlockStmt) {
	for {
		uses := map[string]int{}
		var countStmt func(s wl.Stmt)
		var countExpr func(e wl.Expr)
		countExpr = func(e wl.Expr) {
			switch e := e.(type) {
			case *wl.Ident:
				uses[e.Name]++
			case *wl.IndexExpr:
				uses[e.Name]++
				countExpr(e.Index)
			case *wl.CallExpr:
				for _, a := range e.Args {
					countExpr(a)
				}
			case *wl.UnaryExpr:
				countExpr(e.X)
			case *wl.BinaryExpr:
				countExpr(e.X)
				countExpr(e.Y)
			}
		}
		countStmt = func(s wl.Stmt) {
			switch s := s.(type) {
			case *wl.BlockStmt:
				for _, st := range s.Stmts {
					countStmt(st)
				}
			case *wl.VarStmt:
				countExpr(s.Init)
			case *wl.AssignStmt:
				uses[s.Name]++ // a store keeps the variable alive
				if s.Index != nil {
					countExpr(s.Index)
				}
				countExpr(s.Value)
			case *wl.IfStmt:
				countExpr(s.Cond)
				countStmt(s.Then)
				if s.Else != nil {
					countStmt(s.Else)
				}
			case *wl.WhileStmt:
				countExpr(s.Cond)
				countStmt(s.Body)
			case *wl.ForStmt:
				if s.Init != nil {
					countStmt(s.Init)
				}
				if s.Cond != nil {
					countExpr(s.Cond)
				}
				if s.Post != nil {
					countStmt(s.Post)
				}
				countStmt(s.Body)
			case *wl.ReturnStmt:
				if s.Value != nil {
					countExpr(s.Value)
				}
			case *wl.PrintStmt:
				for _, a := range s.Args {
					countExpr(a)
				}
			case *wl.ExprStmt:
				countExpr(s.X)
			}
		}
		countStmt(body)

		removed := false
		var sweep func(b *wl.BlockStmt)
		var sweepStmt func(s wl.Stmt)
		sweepStmt = func(s wl.Stmt) {
			switch s := s.(type) {
			case *wl.BlockStmt:
				sweep(s)
			case *wl.IfStmt:
				sweep(s.Then)
				if s.Else != nil {
					sweepStmt(s.Else)
				}
			case *wl.WhileStmt:
				sweep(s.Body)
			case *wl.ForStmt:
				sweep(s.Body)
			}
		}
		sweep = func(b *wl.BlockStmt) {
			out := b.Stmts[:0]
			for _, s := range b.Stmts {
				if v, ok := s.(*wl.VarStmt); ok && uses[v.Name] == 0 && pure(v.Init) {
					removed = true
					continue
				}
				sweepStmt(s)
				out = append(out, s)
			}
			b.Stmts = out
		}
		sweep(body)
		if !removed {
			return
		}
	}
}

func (fo *folder) foldBlock(b *wl.BlockStmt) *wl.BlockStmt {
	var out []wl.Stmt
	for _, s := range b.Stmts {
		out = append(out, fo.foldStmt(s)...)
	}
	b.Stmts = out
	return b
}

// foldStmt rewrites one statement; it returns zero or more replacement
// statements (constant branches splice their taken arm's block inline is
// avoided — blocks keep their structure — but dead arms disappear).
func (fo *folder) foldStmt(s wl.Stmt) []wl.Stmt {
	switch s := s.(type) {
	case *wl.BlockStmt:
		return []wl.Stmt{fo.foldBlock(s)}
	case *wl.VarStmt:
		s.Init = foldExpr(s.Init)
		return []wl.Stmt{s}
	case *wl.AssignStmt:
		if s.Index != nil {
			s.Index = foldExpr(s.Index)
		}
		s.Value = foldExpr(s.Value)
		return []wl.Stmt{s}
	case *wl.IfStmt:
		s.Cond = foldExpr(s.Cond)
		s.Then = fo.foldBlock(s.Then)
		if s.Else != nil {
			folded := fo.foldStmt(s.Else)
			if len(folded) == 1 {
				s.Else = folded[0]
			} else {
				// An else-if that folded to multiple statements (or none)
				// becomes a block.
				s.Else = &wl.BlockStmt{Pos: s.Pos, Stmts: folded}
			}
		}
		if lit, ok := s.Cond.(*wl.IntLit); ok {
			// WL variables are function-scoped: declarations inside a
			// dead arm must survive (zero-initialized, exactly as an
			// unexecuted declaration behaves) or later uses would lower
			// against a missing register.
			if lit.Val != 0 {
				fo.hoistVars(s.Else)
				return []wl.Stmt{s.Then}
			}
			fo.hoistVars(s.Then)
			if s.Else != nil {
				return []wl.Stmt{s.Else}
			}
			return nil
		}
		return []wl.Stmt{s}
	case *wl.WhileStmt:
		s.Cond = foldExpr(s.Cond)
		s.Body = fo.foldBlock(s.Body)
		if lit, ok := s.Cond.(*wl.IntLit); ok && lit.Val == 0 {
			fo.hoistVars(s.Body)
			return nil
		}
		return []wl.Stmt{s}
	case *wl.ForStmt:
		if s.Init != nil {
			if folded := fo.foldStmt(s.Init); len(folded) == 1 {
				s.Init = folded[0]
			}
		}
		if s.Cond != nil {
			s.Cond = foldExpr(s.Cond)
		}
		if s.Post != nil {
			if folded := fo.foldStmt(s.Post); len(folded) == 1 {
				s.Post = folded[0]
			}
		}
		s.Body = fo.foldBlock(s.Body)
		if lit, ok := s.Cond.(*wl.IntLit); ok && lit.Val == 0 {
			// The loop never runs, but its init does and its
			// declarations stay visible.
			fo.hoistVars(s.Body)
			if s.Init != nil {
				return []wl.Stmt{s.Init}
			}
			return nil
		}
		return []wl.Stmt{s}
	case *wl.ReturnStmt:
		if s.Value != nil {
			s.Value = foldExpr(s.Value)
		}
		return []wl.Stmt{s}
	case *wl.PrintStmt:
		for i, a := range s.Args {
			s.Args[i] = foldExpr(a)
		}
		return []wl.Stmt{s}
	case *wl.ExprStmt:
		s.X = foldExpr(s.X)
		// A side-effect-free expression statement is dead.
		if pure(s.X) {
			return nil
		}
		return []wl.Stmt{s}
	default:
		return []wl.Stmt{s}
	}
}

// hoistVars records zero-value declarations for every variable declared
// anywhere inside s, preserving function-scoped visibility when s itself
// is eliminated as dead code; foldFile emits them at function entry.
func (fo *folder) hoistVars(s wl.Stmt) {
	if s == nil {
		return
	}
	collectVars(s, func(name string) {
		fo.hoisted = append(fo.hoisted, &wl.VarStmt{Name: name, Init: &wl.IntLit{Val: 0}})
	})
}

// pure reports whether evaluating e has no side effects and cannot fault.
// Calls may have effects; index loads may fault; everything else is safe.
func pure(e wl.Expr) bool {
	switch e := e.(type) {
	case *wl.IntLit, *wl.Ident:
		return true
	case *wl.UnaryExpr:
		return pure(e.X)
	case *wl.BinaryExpr:
		if !pure(e.X) || !pure(e.Y) {
			return false
		}
		// Division and remainder can fault.
		if e.Op == wl.Div || e.Op == wl.Rem {
			if lit, ok := e.Y.(*wl.IntLit); ok {
				return lit.Val != 0
			}
			return false
		}
		return true
	default:
		return false
	}
}

func foldExpr(e wl.Expr) wl.Expr {
	switch e := e.(type) {
	case *wl.IntLit, *wl.Ident:
		return e
	case *wl.IndexExpr:
		e.Index = foldExpr(e.Index)
		return e
	case *wl.CallExpr:
		for i, a := range e.Args {
			e.Args[i] = foldExpr(a)
		}
		return e
	case *wl.UnaryExpr:
		e.X = foldExpr(e.X)
		if lit, ok := e.X.(*wl.IntLit); ok {
			switch e.Op {
			case wl.Not:
				if lit.Val == 0 {
					return &wl.IntLit{Pos: e.Pos, Val: 1}
				}
				return &wl.IntLit{Pos: e.Pos, Val: 0}
			case wl.Sub:
				return &wl.IntLit{Pos: e.Pos, Val: -lit.Val}
			}
		}
		return e
	case *wl.BinaryExpr:
		e.X = foldExpr(e.X)
		e.Y = foldExpr(e.Y)
		return foldBinary(e)
	default:
		return e
	}
}

func foldBinary(e *wl.BinaryExpr) wl.Expr {
	lx, xIsLit := e.X.(*wl.IntLit)
	ly, yIsLit := e.Y.(*wl.IntLit)

	// Short-circuit operators with a constant left operand.
	if e.Op == wl.AndAnd || e.Op == wl.OrOr {
		if xIsLit {
			xTrue := lx.Val != 0
			if e.Op == wl.AndAnd && !xTrue {
				return &wl.IntLit{Pos: e.Pos, Val: 0}
			}
			if e.Op == wl.OrOr && xTrue {
				return &wl.IntLit{Pos: e.Pos, Val: 1}
			}
			// Result is the truth value of the right operand.
			if yIsLit {
				if ly.Val != 0 {
					return &wl.IntLit{Pos: e.Pos, Val: 1}
				}
				return &wl.IntLit{Pos: e.Pos, Val: 0}
			}
			return &wl.UnaryExpr{Pos: e.Pos, Op: wl.Not,
				X: &wl.UnaryExpr{Pos: e.Pos, Op: wl.Not, X: e.Y}}
		}
		return e
	}

	if xIsLit && yIsLit {
		// Leave faulting operations for runtime.
		if (e.Op == wl.Div || e.Op == wl.Rem) && ly.Val == 0 {
			return e
		}
		v, err := FoldConst(e.Op, lx.Val, ly.Val)
		if err == nil {
			return &wl.IntLit{Pos: e.Pos, Val: v}
		}
		return e
	}

	// Algebraic identities, only when the surviving operand is trivially
	// pure (so evaluation order and effects are preserved).
	if yIsLit && pure(e.X) {
		switch {
		case ly.Val == 0 && (e.Op == wl.Add || e.Op == wl.Sub || e.Op == wl.Or || e.Op == wl.Xor || e.Op == wl.Shl || e.Op == wl.Shr):
			return e.X
		case ly.Val == 1 && (e.Op == wl.Mul || e.Op == wl.Div):
			return e.X
		case ly.Val == 0 && e.Op == wl.Mul:
			return &wl.IntLit{Pos: e.Pos, Val: 0}
		}
	}
	if xIsLit && pure(e.Y) {
		switch {
		case lx.Val == 0 && (e.Op == wl.Add || e.Op == wl.Or || e.Op == wl.Xor):
			return e.Y
		case lx.Val == 1 && e.Op == wl.Mul:
			return e.Y
		case lx.Val == 0 && e.Op == wl.Mul:
			return &wl.IntLit{Pos: e.Pos, Val: 0}
		}
	}
	return e
}

// FoldConst evaluates a binary operator over constants with the
// interpreter's exact semantics (wrapping arithmetic, logical right
// shift, 0/1 comparisons). It is shared with the interpreter via tests to
// keep compile-time and run-time evaluation in lockstep.
func FoldConst(op wl.Kind, a, b int64) (int64, error) {
	return evalConst(op, a, b)
}

func evalConst(op wl.Kind, a, b int64) (int64, error) {
	switch op {
	case wl.Add:
		return a + b, nil
	case wl.Sub:
		return a - b, nil
	case wl.Mul:
		return a * b, nil
	case wl.Div:
		if b == 0 {
			return 0, errDivZero
		}
		return a / b, nil
	case wl.Rem:
		if b == 0 {
			return 0, errDivZero
		}
		return a % b, nil
	case wl.Lt:
		return cb2i(a < b), nil
	case wl.Le:
		return cb2i(a <= b), nil
	case wl.Gt:
		return cb2i(a > b), nil
	case wl.Ge:
		return cb2i(a >= b), nil
	case wl.Eq:
		return cb2i(a == b), nil
	case wl.Ne:
		return cb2i(a != b), nil
	case wl.And:
		return a & b, nil
	case wl.Or:
		return a | b, nil
	case wl.Xor:
		return a ^ b, nil
	case wl.Shl:
		return a << (uint64(b) & 63), nil
	case wl.Shr:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	}
	return 0, errUnknownOp
}

var (
	errDivZero   = errorString("division by zero")
	errUnknownOp = errorString("unknown operator")
)

type errorString string

func (e errorString) Error() string { return string(e) }

func cb2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
