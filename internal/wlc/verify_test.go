package wlc

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func TestVerifyAcceptsCompilerOutput(t *testing.T) {
	srcs := []string{
		"func main() { return 0; }",
		goodVerifySrc,
	}
	for _, w := range workloads.All {
		srcs = append(srcs, w.Source)
	}
	for i, src := range srcs {
		for _, opt := range []bool{false, true} {
			p, err := CompileWithOptions(src, Options{ConstFold: opt})
			if err != nil {
				t.Fatalf("source %d: %v", i, err)
			}
			if err := p.Verify(); err != nil {
				t.Fatalf("source %d (opt=%v): %v", i, opt, err)
			}
		}
	}
}

const goodVerifySrc = `
func helper(a, b) {
    var c = array(4);
    c[0] = a && b || !a;
    print c[0], len(c);
    return c[0];
}
func main(n) {
    var s = 0;
    for var i = 0; i < n; i = i + 1 {
        s = s + helper(i, n - i);
        if s > 100 { break; }
    }
    while s > 0 { s = s - 7; }
    return s;
}`

func TestVerifyCatchesCorruption(t *testing.T) {
	compile := func() *Program {
		p, err := Compile(goodVerifySrc)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name    string
		corrupt func(p *Program)
		wantSub string
	}{
		{"reg out of range", func(p *Program) {
			f := p.ByName["main"]
			for b := range f.Code {
				if len(f.Code[b]) > 0 {
					f.Code[b][0].Dst = int32(f.NumRegs)
					return
				}
			}
		}, "out of range"},
		{"bad call target", func(p *Program) {
			f := p.ByName["main"]
			for b := range f.Code {
				for i := range f.Code[b] {
					if f.Code[b][i].Op == OpCall {
						f.Code[b][i].Fn = 99
						return
					}
				}
			}
		}, "unknown function"},
		{"bad arity", func(p *Program) {
			f := p.ByName["main"]
			for b := range f.Code {
				for i := range f.Code[b] {
					if f.Code[b][i].Op == OpCall {
						f.Code[b][i].Args = f.Code[b][i].Args[:1]
						return
					}
				}
			}
		}, "wants"},
		{"stale weight", func(p *Program) {
			f := p.ByName["main"]
			f.Graph.Block(f.Graph.Entry).Weight += 5
		}, "weight"},
		{"bad terminator", func(p *Program) {
			f := p.ByName["main"]
			f.Terms[f.Graph.Entry] = Term{Kind: TermBranch, Cond: 0}
		}, "branch with"},
		{"bad operator", func(p *Program) {
			f := p.ByName["main"]
			for b := range f.Code {
				for i := range f.Code[b] {
					if f.Code[b][i].Op == OpBin {
						f.Code[b][i].BinOp = 0
						return
					}
				}
			}
		}, "invalid operator"},
		{"unknown opcode", func(p *Program) {
			f := p.ByName["main"]
			for b := range f.Code {
				if len(f.Code[b]) > 0 {
					f.Code[b][0].Op = 99
					return
				}
			}
		}, "unknown opcode"},
		{"bad jump target", func(p *Program) {
			f := p.ByName["main"]
			for _, blk := range f.Graph.Blocks() {
				if len(blk.Succs) > 0 {
					blk.Succs[0] = 99
					return
				}
			}
		}, "jump target"},
		{"unreachable block", func(p *Program) {
			// The graph is frozen after compilation, so orphan an existing
			// block: route its only predecessor straight to the exit.
			f := p.ByName["main"]
			for _, blk := range f.Graph.Blocks() {
				if blk.ID == f.Graph.Entry || blk.ID == f.Graph.Exit || len(blk.Preds) != 1 {
					continue
				}
				pred := f.Graph.Block(blk.Preds[0])
				for i, s := range pred.Succs {
					if s == blk.ID {
						pred.Succs[i] = f.Graph.Exit
						return
					}
				}
			}
		}, "unreachable from the entry"},
		{"exit unreachable", func(p *Program) {
			f := p.ByName["main"]
			for _, blk := range f.Graph.Blocks() {
				if f.Terms[blk.ID].Kind == TermJump && len(blk.Succs) == 1 && blk.Succs[0] != blk.ID {
					blk.Succs[0] = blk.ID // self-loop: execution can never leave
					return
				}
			}
		}, "cannot reach the exit"},
		{"branch condition out of range", func(p *Program) {
			f := p.ByName["main"]
			for b := range f.Terms {
				if f.Terms[b].Kind == TermBranch {
					f.Terms[b].Cond = int32(f.NumRegs)
					return
				}
			}
		}, "out of range"},
		{"exit terminator misplaced", func(p *Program) {
			f := p.ByName["main"]
			for _, blk := range f.Graph.Blocks() {
				if blk.ID != f.Graph.Exit && len(blk.Succs) > 0 {
					f.Terms[blk.ID] = Term{Kind: TermExit}
					return
				}
			}
		}, "outside the exit block"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := compile()
			c.corrupt(p)
			err := p.Verify()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}
