// Package bl implements Ball–Larus path numbering and the instrumentation
// plan used to collect acyclic-path traces (Ball & Larus, "Efficient Path
// Profiling", MICRO 1996), in the trace-emitting variant used by whole
// program paths (Larus, PLDI 1999): rather than incrementing a counter,
// the instrumentation emits the finished path ID at the function exit and
// at every back edge.
//
// The numbering assigns each edge of the acyclic transform of a CFG an
// integer value such that the sum of values along any entry-to-exit path
// is a unique ID in [0, NumPaths). Loops are handled by splitting around
// back edges: a back edge u->h contributes two pseudo edges, u->EXIT
// (terminating the current acyclic path) and ENTRY->h (starting the next
// one). At run time the instrumented program keeps a register r; taking
// edge e performs r += Val(e); at EXIT it emits r; at a back edge u->h it
// emits r + EmitAdd(u->h) and resets r to Reset(u->h).
package bl

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cfg"
)

// BackEdgeInstr is the instrumentation attached to one back edge u->h.
type BackEdgeInstr struct {
	// EmitAdd is added to the path register before emitting when the back
	// edge is taken. It is the value of the pseudo edge u->EXIT.
	EmitAdd uint64
	// Reset is the new value of the path register after emitting. It is
	// the value of the pseudo edge ENTRY->h.
	Reset uint64
}

// Numbering is the Ball–Larus numbering of one function's CFG together
// with everything needed both to instrument an execution and to map path
// IDs back to block sequences.
type Numbering struct {
	Graph *cfg.Graph

	// NumPaths is the number of distinct acyclic paths; every emitted path
	// ID lies in [0, NumPaths).
	NumPaths uint64

	// EdgeVal[from][i] is the value of the i-th successor edge of block
	// `from` (indexed parallel to Graph.Block(from).Succs). Back edges
	// carry value 0 here; their effect is in BackEdge.
	EdgeVal [][]uint64

	// IsBack[from][i] reports whether the i-th successor edge of `from` is
	// a back edge.
	IsBack [][]bool

	// BackEdge maps a back edge to its instrumentation.
	BackEdge map[cfg.Edge]BackEdgeInstr

	// numPathsFrom[b] is the number of acyclic paths from b to EXIT in the
	// transformed DAG, used by Regenerate.
	numPathsFrom []uint64

	// entryReset[h] is the pseudo-edge value Val(ENTRY->h) for loop
	// headers h, or ^0 if h is not a loop header.
	entryReset []uint64

	// pathCache memoizes Regenerate results, guarded by cacheMu so a
	// Numbering can be shared by concurrent readers (the ingestion
	// daemon prices paths for many sessions off one compiled program).
	cacheMu   sync.Mutex
	pathCache map[uint64][]cfg.BlockID
}

// MaxPaths bounds the number of acyclic paths per function. Functions
// exceeding it are rejected; in the paper's tooling such functions fall
// back to edge profiling. 2^40 leaves room to pack (funcID, pathID) pairs
// into a single uint64 trace event.
const MaxPaths = uint64(1) << 40

// Number computes the Ball–Larus numbering for g. The graph must be
// frozen (Finish called) and reducible.
func Number(g *cfg.Graph) (*Numbering, error) {
	backList, err := g.BackEdges()
	if err != nil {
		return nil, err
	}
	isBackEdge := make(map[cfg.Edge]bool, len(backList))
	backTargets := map[cfg.BlockID]bool{}
	for _, e := range backList {
		isBackEdge[e] = true
		backTargets[e.To] = true
	}

	n := g.NumBlocks()
	// Topological order of the acyclic transform (back edges removed).
	// Kahn's algorithm over non-back edges.
	indeg := make([]int, n)
	for _, b := range g.Blocks() {
		for _, s := range b.Succs {
			if !isBackEdge[cfg.Edge{From: b.ID, To: s}] {
				indeg[s]++
			}
		}
	}
	topo := make([]cfg.BlockID, 0, n)
	var queue []cfg.BlockID
	for _, b := range g.Blocks() {
		if indeg[b.ID] == 0 {
			queue = append(queue, b.ID)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		topo = append(topo, b)
		for _, s := range g.Block(b).Succs {
			if isBackEdge[cfg.Edge{From: b, To: s}] {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(topo) != n {
		return nil, fmt.Errorf("bl: %s: acyclic transform still has a cycle (irreducible?)", g.Name)
	}

	// numPathsFrom in reverse topological order over the transformed DAG.
	// In the transform, a back edge u->h is replaced by u->EXIT, and loop
	// headers h additionally receive a pseudo in-edge ENTRY->h (which does
	// not affect numPathsFrom).
	num := &Numbering{
		Graph:        g,
		EdgeVal:      make([][]uint64, n),
		IsBack:       make([][]bool, n),
		BackEdge:     make(map[cfg.Edge]BackEdgeInstr, len(backList)),
		numPathsFrom: make([]uint64, n),
		entryReset:   make([]uint64, n),
		pathCache:    make(map[uint64][]cfg.BlockID),
	}
	for i := range num.entryReset {
		num.entryReset[i] = math.MaxUint64
	}

	npf := num.numPathsFrom
	for i := len(topo) - 1; i >= 0; i-- {
		b := topo[i]
		blk := g.Block(b)
		if b == g.Exit {
			npf[b] = 1
		}
		var total uint64
		vals := make([]uint64, len(blk.Succs))
		backs := make([]bool, len(blk.Succs))
		for si, s := range blk.Succs {
			e := cfg.Edge{From: b, To: s}
			if isBackEdge[e] {
				// Transformed to b->EXIT: contributes one path
				// terminating here.
				backs[si] = true
				vals[si] = total // value of pseudo edge b->EXIT
				total++
			} else {
				vals[si] = total
				total += npf[s]
			}
			if total >= MaxPaths {
				return nil, fmt.Errorf("bl: %s: more than %d acyclic paths", g.Name, MaxPaths)
			}
		}
		if b == g.Exit {
			// exit has no successors; npf already 1.
		} else {
			npf[b] = total
		}
		num.EdgeVal[b] = vals
		num.IsBack[b] = backs
	}

	// Paths can start at ENTRY or at any loop header h (via pseudo edge
	// ENTRY->h). Assign the pseudo entry edges values after all real paths
	// from ENTRY: Val(ENTRY->h_k) = npf[ENTRY] + sum_{j<k} npf[h_j], in
	// deterministic (block ID) order.
	cursor := npf[g.Entry]
	for h := cfg.BlockID(0); int(h) < n; h++ {
		if backTargets[h] {
			num.entryReset[h] = cursor
			cursor += npf[h]
			if cursor >= MaxPaths {
				return nil, fmt.Errorf("bl: %s: more than %d acyclic paths", g.Name, MaxPaths)
			}
		}
	}
	num.NumPaths = cursor

	// Back-edge instrumentation: on u->h, emit r + Val(u->EXIT pseudo) and
	// reset r to Val(ENTRY->h).
	for _, e := range backList {
		blk := g.Block(e.From)
		var emitAdd uint64
		for si, s := range blk.Succs {
			if s == e.To && num.IsBack[e.From][si] {
				emitAdd = num.EdgeVal[e.From][si]
			}
		}
		num.BackEdge[e] = BackEdgeInstr{EmitAdd: emitAdd, Reset: num.entryReset[e.To]}
	}
	return num, nil
}

// EntryValue is the initial value of the path register on function entry.
func (n *Numbering) EntryValue() uint64 { return 0 }

// IsLoopHeader reports whether b is the target of a back edge.
func (n *Numbering) IsLoopHeader(b cfg.BlockID) bool {
	return n.entryReset[b] != math.MaxUint64
}

// HeaderReset returns Val(ENTRY->h) for loop header h.
func (n *Numbering) HeaderReset(h cfg.BlockID) uint64 { return n.entryReset[h] }

// Regenerate maps a path ID back to the sequence of basic blocks the path
// visits. The sequence starts at the function entry or at a loop header
// and ends at the exit or at the source of a back edge. Results are
// memoized; the returned slice must not be mutated. Safe for concurrent
// use.
func (n *Numbering) Regenerate(path uint64) ([]cfg.BlockID, error) {
	if path >= n.NumPaths {
		return nil, fmt.Errorf("bl: %s: path ID %d out of range [0,%d)", n.Graph.Name, path, n.NumPaths)
	}
	n.cacheMu.Lock()
	defer n.cacheMu.Unlock()
	if seq, ok := n.pathCache[path]; ok {
		return seq, nil
	}
	// Determine the start block: ENTRY for path < npf[ENTRY], otherwise
	// the loop header whose [entryReset, entryReset+npf) interval contains
	// the ID.
	start := n.Graph.Entry
	rem := path
	if path >= n.numPathsFrom[n.Graph.Entry] {
		found := false
		for h := cfg.BlockID(0); int(h) < n.Graph.NumBlocks(); h++ {
			r := n.entryReset[h]
			if r == math.MaxUint64 {
				continue
			}
			if path >= r && path < r+n.numPathsFrom[h] {
				start, rem, found = h, path-r, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bl: %s: path ID %d has no start block", n.Graph.Name, path)
		}
	}
	var seq []cfg.BlockID
	b := start
	for {
		seq = append(seq, b)
		if b == n.Graph.Exit {
			break
		}
		blk := n.Graph.Block(b)
		// Choose the successor edge with the greatest value <= rem. Edge
		// values per block are nondecreasing in successor order by
		// construction, so scan from the end.
		chosen := -1
		for si := len(blk.Succs) - 1; si >= 0; si-- {
			if n.EdgeVal[b][si] <= rem {
				chosen = si
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("bl: %s: regeneration stuck at block %d with remainder %d", n.Graph.Name, b, rem)
		}
		rem -= n.EdgeVal[b][chosen]
		if n.IsBack[b][chosen] {
			// Pseudo edge b->EXIT: the acyclic path ends at b.
			if rem != 0 {
				return nil, fmt.Errorf("bl: %s: nonzero remainder %d at back edge from %d", n.Graph.Name, rem, b)
			}
			break
		}
		b = blk.Succs[chosen]
	}
	n.pathCache[path] = seq
	return seq, nil
}

// PathWeight returns the total block weight (instruction count) along the
// path with the given ID.
func (n *Numbering) PathWeight(path uint64) (int, error) {
	seq, err := n.Regenerate(path)
	if err != nil {
		return 0, err
	}
	w := 0
	for _, b := range seq {
		w += n.Graph.Block(b).Weight
	}
	return w, nil
}

// PathString renders a path as "name0 -> name1 -> ..." for reports.
func (n *Numbering) PathString(path uint64) string {
	seq, err := n.Regenerate(path)
	if err != nil {
		return fmt.Sprintf("<invalid path %d: %v>", path, err)
	}
	s := ""
	for i, b := range seq {
		if i > 0 {
			s += " -> "
		}
		s += n.Graph.Block(b).Name
	}
	return s
}
