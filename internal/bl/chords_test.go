package bl

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
)

// simulateChords walks the graph exactly like simulate, but maintains the
// path register with the chord plan's signed increments.
func simulateChords(t *testing.T, p *ChordPlan, rng *rand.Rand, maxSteps int) []uint64 {
	t.Helper()
	n := p.Num
	g := n.Graph
	r := p.EntryValue()
	cur := g.Entry
	var ids []uint64
	for steps := 0; cur != g.Exit; steps++ {
		if steps > maxSteps {
			t.Fatalf("chord simulation did not terminate in %d steps", maxSteps)
		}
		blk := g.Block(cur)
		si := rng.Intn(len(blk.Succs))
		next := blk.Succs[si]
		if n.IsBack[cur][si] {
			cbe := p.BackEdge[cfg.Edge{From: cur, To: next}]
			emit := r + cbe.EmitAdd
			if emit < 0 || uint64(emit) >= n.NumPaths {
				t.Fatalf("chord emission %d outside [0,%d)", emit, n.NumPaths)
			}
			ids = append(ids, uint64(emit))
			r = cbe.Reset
		} else {
			r += p.Inc[cur][si]
		}
		cur = next
	}
	if r < 0 || uint64(r) >= n.NumPaths {
		t.Fatalf("final chord emission %d outside [0,%d)", r, n.NumPaths)
	}
	ids = append(ids, uint64(r))
	return ids
}

// TestChordPlanMatchesFullPlacement is the keystone: the chord-optimized
// instrumentation must emit exactly the same path IDs as the
// every-edge-increment placement, on the same random walks.
func TestChordPlanMatchesFullPlacement(t *testing.T) {
	graphs := []*cfg.Graph{diamond(t), doubleDiamond(t), loop(t)}
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		graphs = append(graphs, randomStructured(t, rng, 3+rng.Intn(20)))
	}
	for gi, g := range graphs {
		n, err := Number(g)
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		plan := BuildChords(n)
		for run := 0; run < 15; run++ {
			seed := rng.Int63()
			full, _ := simulate(t, n, rand.New(rand.NewSource(seed)), 100000)
			chord := simulateChords(t, plan, rand.New(rand.NewSource(seed)), 100000)
			if len(full) != len(chord) {
				t.Fatalf("graph %d: emission counts differ: %d vs %d", gi, len(full), len(chord))
			}
			for i := range full {
				if full[i] != chord[i] {
					t.Fatalf("graph %d run %d: emission %d differs: full=%d chord=%d", gi, run, i, full[i], chord[i])
				}
			}
		}
	}
}

func TestChordPlanReducesSites(t *testing.T) {
	// On structured CFGs the spanning tree removes instrumentation from a
	// substantial fraction of edges.
	rng := rand.New(rand.NewSource(52))
	var sites, total int
	for trial := 0; trial < 30; trial++ {
		g := randomStructured(t, rng, 6+rng.Intn(20))
		n, err := Number(g)
		if err != nil {
			t.Fatal(err)
		}
		p := BuildChords(n)
		sites += p.Sites
		total += p.TotalEdges
		if p.Sites >= p.TotalEdges {
			t.Fatalf("trial %d: no reduction (%d sites of %d edges)", trial, p.Sites, p.TotalEdges)
		}
	}
	if frac := float64(sites) / float64(total); frac > 0.6 {
		t.Fatalf("chords instrument %.0f%% of edges; spanning tree buys too little", frac*100)
	}
}

// weightsFromWalks accumulates an edge-frequency profile from random
// executions.
func weightsFromWalks(t *testing.T, n *Numbering, rng *rand.Rand, walks int) *EdgeWeights {
	t.Helper()
	g := n.Graph
	w := NewEdgeWeights(g)
	for i := 0; i < walks; i++ {
		cur := g.Entry
		for steps := 0; cur != g.Exit; steps++ {
			if steps > 100000 {
				t.Fatal("walk did not terminate")
			}
			blk := g.Block(cur)
			si := rng.Intn(len(blk.Succs))
			w.Real[cur][si]++
			cur = blk.Succs[si]
		}
	}
	return w
}

func TestWeightedChordPlanMatchesFullPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		g := randomStructured(t, rng, 4+rng.Intn(16))
		n, err := Number(g)
		if err != nil {
			t.Fatal(err)
		}
		weights := weightsFromWalks(t, n, rng, 20)
		plan := BuildChordsWeighted(n, weights)
		for run := 0; run < 10; run++ {
			seed := rng.Int63()
			full, _ := simulate(t, n, rand.New(rand.NewSource(seed)), 100000)
			chord := simulateChords(t, plan, rand.New(rand.NewSource(seed)), 100000)
			if len(full) != len(chord) {
				t.Fatalf("trial %d: emission counts differ", trial)
			}
			for i := range full {
				if full[i] != chord[i] {
					t.Fatalf("trial %d: emission %d differs: %d vs %d", trial, i, full[i], chord[i])
				}
			}
		}
	}
}

func TestWeightedChordsReduceDynamicIncrements(t *testing.T) {
	// Profile-guided placement must execute no more increments than the
	// unweighted tree, and strictly fewer than every-edge placement, when
	// evaluated on the training profile.
	rng := rand.New(rand.NewSource(54))
	var every, unweighted, weighted uint64
	for trial := 0; trial < 30; trial++ {
		g := randomStructured(t, rng, 6+rng.Intn(16))
		n, err := Number(g)
		if err != nil {
			t.Fatal(err)
		}
		weights := weightsFromWalks(t, n, rng, 30)
		pu := BuildChords(n)
		pw := BuildChordsWeighted(n, weights)
		every += TotalEdgeExecutions(weights)
		unweighted += pu.DynamicIncrements(weights)
		weighted += pw.DynamicIncrements(weights)
	}
	if weighted > unweighted {
		t.Fatalf("weighted placement executes more increments: %d vs %d", weighted, unweighted)
	}
	if weighted >= every {
		t.Fatalf("weighted placement no better than every-edge: %d vs %d", weighted, every)
	}
	t.Logf("dynamic increments: every-edge=%d unweighted-chords=%d weighted-chords=%d", every, unweighted, weighted)
}

func TestChordPlanTreeEdgesZero(t *testing.T) {
	g := doubleDiamond(t)
	n, err := Number(g)
	if err != nil {
		t.Fatal(err)
	}
	p := BuildChords(n)
	zero := 0
	for _, incs := range p.Inc {
		for _, inc := range incs {
			if inc == 0 {
				zero++
			}
		}
	}
	if zero == 0 {
		t.Fatal("no zero-increment edges: spanning tree unused")
	}
	if p.EntryValue() != 0 {
		t.Fatalf("entry value %d, want 0", p.EntryValue())
	}
}
