package bl

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
)

// ChordPlan is the optimized instrumentation placement of Ball & Larus
// (MICRO 1996, §3.3): instead of adding an increment on every edge, a
// spanning tree of the (transformed) CFG is chosen and increments are
// placed only on the chords — the non-tree edges — with values derived
// from node potentials so that the register still sums to the unique path
// ID along every acyclic path. Tree edges carry no instrumentation at
// all, which on real CFGs removes instrumentation from most edges.
//
// Construction: take the acyclic transform used by Number (back edges
// replaced by ENTRY->header and source->EXIT pseudo edges), add the
// virtual edge EXIT->ENTRY, and build a spanning tree containing the
// virtual edge. Assign each node a potential phi by walking the tree from
// ENTRY (phi(ENTRY)=0; a tree edge a->b with value v forces
// phi(b)=phi(a)+v, traversed backwards phi(a)=phi(b)-v). Then for any
// edge e=(u,v),
//
//	inc(e) = val(e) - (phi(v) - phi(u))
//
// vanishes on tree edges, and along any entry-to-exit path the increments
// telescope: sum(inc) = sum(val) - (phi(EXIT) - phi(ENTRY)) = pathID,
// because the virtual edge pins phi(EXIT) = phi(ENTRY) = 0. Increments
// may be negative; the register is maintained as a signed value and is
// provably back in [0, NumPaths) at every emission point.
type ChordPlan struct {
	Num *Numbering

	// Inc[from][i] is the signed increment of the i-th successor edge of
	// block `from` (0 when the edge is a tree edge). Back edges hold 0
	// here; their pseudo edges are in BackEdge.
	Inc [][]int64

	// BackEdge maps each back edge to the signed increments of its two
	// pseudo edges: EmitAdd for source->EXIT (applied before emitting)
	// and Reset for ENTRY->header (the register's new value).
	BackEdge map[cfg.Edge]ChordBackEdge

	// Sites is the number of edges carrying a nonzero increment (the
	// instrumentation sites); TotalEdges counts all edges of the
	// transformed graph including pseudo edges.
	Sites, TotalEdges int
}

// ChordBackEdge is the chord instrumentation of one back edge.
type ChordBackEdge struct {
	EmitAdd int64
	Reset   int64
}

// edgeKind distinguishes the edges of the transformed graph.
type edgeKind uint8

const (
	realEdge edgeKind = iota
	pseudoEntry
	pseudoExit
	virtualEdge
)

type tEdge struct {
	u, v cfg.BlockID
	val  int64
	kind edgeKind
	// from/succIdx locate a real edge; header locates a pseudoEntry; back
	// locates a pseudoExit.
	succIdx int
	back    cfg.Edge
	header  cfg.BlockID
	weight  uint64
	inTree  bool
}

// EdgeWeights is an edge-frequency profile for one function, used to bias
// the spanning tree toward hot edges (Ball & Larus use Knuth's
// maximum-spanning-tree heuristic): a hot edge in the tree carries no
// instrumentation, so expected dynamic increment count is minimized.
type EdgeWeights struct {
	// Real[from][succIdx] is the execution count of that successor edge
	// (back edges included: a back edge's weight applies to both of its
	// pseudo edges).
	Real [][]uint64
}

// NewEdgeWeights allocates a zeroed profile shaped for g.
func NewEdgeWeights(g *cfg.Graph) *EdgeWeights {
	w := &EdgeWeights{Real: make([][]uint64, g.NumBlocks())}
	for _, b := range g.Blocks() {
		w.Real[b.ID] = make([]uint64, len(b.Succs))
	}
	return w
}

// BuildChords computes the chord-based placement for a numbering with an
// unweighted spanning tree (first-seen edges win ties).
func BuildChords(n *Numbering) *ChordPlan { return BuildChordsWeighted(n, nil) }

// BuildChordsWeighted computes the chord placement using a
// maximum-weight spanning tree over the given edge-frequency profile, so
// the hottest edges carry no instrumentation. A nil profile degenerates
// to BuildChords. The emitted path IDs are identical either way; only
// which edges carry increments changes.
func BuildChordsWeighted(n *Numbering, weights *EdgeWeights) *ChordPlan {
	g := n.Graph
	nBlocks := g.NumBlocks()

	weightOf := func(from cfg.BlockID, succIdx int) uint64 {
		if weights == nil {
			return 0
		}
		return weights.Real[from][succIdx]
	}

	// Collect the transformed graph's edges.
	var edges []*tEdge
	// The virtual edge comes first so the spanning tree always adopts it.
	edges = append(edges, &tEdge{u: g.Exit, v: g.Entry, val: 0, kind: virtualEdge})
	for _, b := range g.Blocks() {
		for si, succ := range b.Succs {
			if n.IsBack[b.ID][si] {
				be := cfg.Edge{From: b.ID, To: succ}
				instr := n.BackEdge[be]
				w := weightOf(b.ID, si)
				edges = append(edges,
					&tEdge{u: b.ID, v: g.Exit, val: int64(instr.EmitAdd), kind: pseudoExit, back: be, weight: w},
					&tEdge{u: g.Entry, v: succ, val: int64(instr.Reset), kind: pseudoEntry, header: succ, back: be, weight: w})
			} else {
				edges = append(edges, &tEdge{u: b.ID, v: succ, val: int64(n.EdgeVal[b.ID][si]), kind: realEdge, succIdx: si, weight: weightOf(b.ID, si)})
			}
		}
	}
	if weights != nil {
		// Maximum spanning tree: consider heavy edges first. Stable sort
		// keeps the deterministic tie-break of the unweighted variant
		// (the virtual edge stays first: no weight exceeds ^0).
		edges[0].weight = ^uint64(0)
		sort.SliceStable(edges, func(i, j int) bool { return edges[i].weight > edges[j].weight })
	}

	// Kruskal-style spanning tree over the undirected view (the graph is
	// connected: every block is reachable from entry and reaches exit).
	parent := make([]int32, nBlocks)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ru, rv := find(int32(e.u)), find(int32(e.v))
		if ru != rv {
			parent[ru] = rv
			e.inTree = true
		}
	}

	// Node potentials via BFS over tree edges (in both directions).
	type adj struct {
		e   *tEdge
		fwd bool
		to  cfg.BlockID
	}
	tree := make([][]adj, nBlocks)
	for _, e := range edges {
		if !e.inTree {
			continue
		}
		tree[e.u] = append(tree[e.u], adj{e: e, fwd: true, to: e.v})
		tree[e.v] = append(tree[e.v], adj{e: e, fwd: false, to: e.u})
	}
	phi := make([]int64, nBlocks)
	seen := make([]bool, nBlocks)
	queue := []cfg.BlockID{g.Entry}
	seen[g.Entry] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range tree[u] {
			if seen[a.to] {
				continue
			}
			if a.fwd {
				phi[a.to] = phi[u] + a.e.val
			} else {
				phi[a.to] = phi[u] - a.e.val
			}
			seen[a.to] = true
			queue = append(queue, a.to)
		}
	}

	plan := &ChordPlan{
		Num:      n,
		Inc:      make([][]int64, nBlocks),
		BackEdge: make(map[cfg.Edge]ChordBackEdge),
	}
	for _, b := range g.Blocks() {
		plan.Inc[b.ID] = make([]int64, len(b.Succs))
	}
	for _, e := range edges {
		if e.kind == virtualEdge {
			continue
		}
		plan.TotalEdges++
		inc := e.val - (phi[e.v] - phi[e.u])
		if e.inTree && inc != 0 {
			panic(fmt.Sprintf("bl: tree edge %d->%d has nonzero increment %d", e.u, e.v, inc))
		}
		if inc != 0 {
			plan.Sites++
		}
		switch e.kind {
		case realEdge:
			plan.Inc[e.u][e.succIdx] = inc
		case pseudoExit:
			cbe := plan.BackEdge[e.back]
			cbe.EmitAdd = inc
			plan.BackEdge[e.back] = cbe
		case pseudoEntry:
			cbe := plan.BackEdge[e.back]
			cbe.Reset = inc
			plan.BackEdge[e.back] = cbe
		}
	}
	return plan
}

// EntryValue is the register's initial value at function entry under the
// chord plan (phi(EXIT) = 0 thanks to the virtual edge).
func (p *ChordPlan) EntryValue() int64 { return 0 }

// DynamicIncrements returns the number of register additions the plan
// executes under the given edge-frequency profile: one per taken
// non-tree real edge, plus one per taken back edge whose emit increment
// is nonzero (the reset is a constant store either way).
func (p *ChordPlan) DynamicIncrements(w *EdgeWeights) uint64 {
	g := p.Num.Graph
	var total uint64
	for _, b := range g.Blocks() {
		for si, succ := range b.Succs {
			freq := w.Real[b.ID][si]
			if p.Num.IsBack[b.ID][si] {
				if p.BackEdge[cfg.Edge{From: b.ID, To: succ}].EmitAdd != 0 {
					total += freq
				}
			} else if p.Inc[b.ID][si] != 0 {
				total += freq
			}
		}
	}
	return total
}

// TotalEdgeExecutions sums the profile's edge frequencies: the dynamic
// increment count of the naive every-edge placement.
func TotalEdgeExecutions(w *EdgeWeights) uint64 {
	var total uint64
	for _, row := range w.Real {
		for _, f := range row {
			total += f
		}
	}
	return total
}
