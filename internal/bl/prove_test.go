package bl

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cfg"
)

func TestProveSmallGraphs(t *testing.T) {
	cases := []struct {
		name  string
		graph *cfg.Graph
		paths uint64
	}{
		{"diamond", diamond(t), 2},
		{"doubleDiamond", doubleDiamond(t), 4},
	}
	for _, c := range cases {
		proof, err := ProveGraph(c.graph, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if proof.Paths != c.paths {
			t.Errorf("%s: proved %d paths, want %d", c.name, proof.Paths, c.paths)
		}
		if proof.Starts != 1 {
			t.Errorf("%s: %d start blocks, want 1 (no loops)", c.name, proof.Starts)
		}
	}
}

func TestProveLoop(t *testing.T) {
	n, err := Number(loop(t))
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if proof.Paths != n.NumPaths {
		t.Fatalf("proved %d paths, NumPaths=%d", proof.Paths, n.NumPaths)
	}
	// Entry plus one loop header.
	if proof.Starts != 2 {
		t.Fatalf("start blocks = %d, want 2", proof.Starts)
	}
}

func TestProveRandomStructuredGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		g := randomStructured(t, rng, 3+rng.Intn(20))
		proof, err := ProveGraph(g, 0)
		if err != nil {
			if errors.Is(err, ErrTooManyPaths) {
				continue
			}
			t.Fatalf("trial %d: %v\n%s", trial, err, g.Dot())
		}
		if proof.Paths == 0 {
			t.Fatalf("trial %d: zero paths proved", trial)
		}
	}
}

func TestProveLimit(t *testing.T) {
	_, err := ProveGraph(doubleDiamond(t), 2)
	if !errors.Is(err, ErrTooManyPaths) {
		t.Fatalf("limit 2 on a 4-path graph: err=%v, want ErrTooManyPaths", err)
	}
}

// TestProveDetectsCorruption tampers with a valid numbering in each of the
// ways the prover is meant to catch and requires a failure for every one.
func TestProveDetectsCorruption(t *testing.T) {
	t.Run("duplicateEdgeValue", func(t *testing.T) {
		n, err := Number(diamond(t))
		if err != nil {
			t.Fatal(err)
		}
		n.EdgeVal[0][1] = n.EdgeVal[0][0] // two paths now emit the same ID
		if _, err := Prove(n, 0); err == nil {
			t.Fatal("Prove accepted a numbering with duplicate path IDs")
		}
	})
	t.Run("inflatedNumPaths", func(t *testing.T) {
		n, err := Number(diamond(t))
		if err != nil {
			t.Fatal(err)
		}
		n.NumPaths++ // numbering no longer compact
		if _, err := Prove(n, 0); err == nil {
			t.Fatal("Prove accepted a non-compact numbering")
		}
	})
	t.Run("outOfRangeEdgeValue", func(t *testing.T) {
		n, err := Number(diamond(t))
		if err != nil {
			t.Fatal(err)
		}
		n.EdgeVal[0][1] += n.NumPaths // pushes one ID past NumPaths
		if _, err := Prove(n, 0); err == nil {
			t.Fatal("Prove accepted an out-of-range path ID")
		}
	})
	t.Run("wrongBackEdgeReset", func(t *testing.T) {
		n, err := Number(loop(t))
		if err != nil {
			t.Fatal(err)
		}
		for e, instr := range n.BackEdge {
			instr.Reset++
			n.BackEdge[e] = instr
		}
		if _, err := Prove(n, 0); err == nil {
			t.Fatal("Prove accepted a wrong back-edge reset")
		}
	})
	t.Run("wrongBackEdgeEmit", func(t *testing.T) {
		n, err := Number(loop(t))
		if err != nil {
			t.Fatal(err)
		}
		for e, instr := range n.BackEdge {
			instr.EmitAdd++
			n.BackEdge[e] = instr
		}
		if _, err := Prove(n, 0); err == nil {
			t.Fatal("Prove accepted a wrong back-edge emit value")
		}
	})
}
