package bl

import (
	"errors"
	"fmt"

	"repro/internal/cfg"
)

// ErrTooManyPaths is returned (wrapped) by Prove when a function has more
// acyclic paths than the enumeration limit. Callers that verify whole
// programs typically skip such functions rather than fail.
var ErrTooManyPaths = errors.New("too many acyclic paths to enumerate")

// DefaultProveLimit is the default enumeration bound for Prove: large
// enough for every bundled workload, small enough that a full proof stays
// interactive.
const DefaultProveLimit = uint64(1) << 16

// Proof summarizes a successful exhaustive check of one numbering.
type Proof struct {
	// Paths is the number of acyclic paths enumerated; it equals
	// Numbering.NumPaths.
	Paths uint64
	// Starts is the number of distinct start blocks (the entry plus one
	// per loop header).
	Starts int
	// MaxLen is the length in blocks of the longest acyclic path.
	MaxLen int
}

// Prove exhaustively validates the Ball–Larus numbering by enumerating
// every acyclic path of the transformed CFG and replaying the
// instrumentation along it: starting from the entry (register 0) and from
// each loop header (register HeaderReset), it follows every non-back
// successor edge adding EdgeVal, terminates at the exit or at a back edge
// (adding the back edge's pseudo value), and requires that
//
//   - every emitted ID lies in [0, NumPaths),
//   - no two paths emit the same ID and all NumPaths IDs are hit
//     (the numbering is a bijection, i.e. unique and compact), and
//   - Regenerate maps each ID back to exactly the block sequence that
//     produced it,
//
// plus that the BackEdge instrumentation table agrees with EdgeVal and
// HeaderReset. limit caps the enumeration (0 means DefaultProveLimit);
// functions with more paths fail with ErrTooManyPaths.
func Prove(n *Numbering, limit uint64) (Proof, error) {
	if limit == 0 {
		limit = DefaultProveLimit
	}
	if n.NumPaths > limit {
		return Proof{}, fmt.Errorf("bl: %s: %d paths exceeds limit %d: %w",
			n.Graph.Name, n.NumPaths, limit, ErrTooManyPaths)
	}

	// The instrumentation table must agree with the numbering it was
	// derived from.
	for e, instr := range n.BackEdge {
		blk := n.Graph.Block(e.From)
		found := false
		for si, s := range blk.Succs {
			if s == e.To && n.IsBack[e.From][si] {
				found = true
				if instr.EmitAdd != n.EdgeVal[e.From][si] {
					return Proof{}, fmt.Errorf("bl: %s: back edge %v EmitAdd=%d but edge value is %d",
						n.Graph.Name, e, instr.EmitAdd, n.EdgeVal[e.From][si])
				}
			}
		}
		if !found {
			return Proof{}, fmt.Errorf("bl: %s: instrumented back edge %v is not a back edge", n.Graph.Name, e)
		}
		if !n.IsLoopHeader(e.To) {
			return Proof{}, fmt.Errorf("bl: %s: back edge %v targets a non-header", n.Graph.Name, e)
		}
		if instr.Reset != n.HeaderReset(e.To) {
			return Proof{}, fmt.Errorf("bl: %s: back edge %v Reset=%d but header reset is %d",
				n.Graph.Name, e, instr.Reset, n.HeaderReset(e.To))
		}
	}

	proof := Proof{}
	seen := make([]bool, n.NumPaths)
	var seq []cfg.BlockID

	// emit finishes one enumerated path with ID id and block sequence seq.
	emit := func(id uint64) error {
		if id >= n.NumPaths {
			return fmt.Errorf("bl: %s: path %v emits ID %d outside [0,%d)",
				n.Graph.Name, seq, id, n.NumPaths)
		}
		if seen[id] {
			return fmt.Errorf("bl: %s: path ID %d emitted by two distinct paths (second: %v)",
				n.Graph.Name, id, seq)
		}
		seen[id] = true
		proof.Paths++
		if len(seq) > proof.MaxLen {
			proof.MaxLen = len(seq)
		}
		regen, err := n.Regenerate(id)
		if err != nil {
			return fmt.Errorf("bl: %s: enumerated path ID %d fails to regenerate: %w", n.Graph.Name, id, err)
		}
		if len(regen) != len(seq) {
			return fmt.Errorf("bl: %s: path ID %d regenerates %v, enumerated %v", n.Graph.Name, id, regen, seq)
		}
		for i := range regen {
			if regen[i] != seq[i] {
				return fmt.Errorf("bl: %s: path ID %d regenerates %v, enumerated %v", n.Graph.Name, id, regen, seq)
			}
		}
		return nil
	}

	// walk explores every acyclic continuation from block b with register
	// value r. The non-back edges form a DAG, so recursion terminates.
	var walk func(b cfg.BlockID, r uint64) error
	walk = func(b cfg.BlockID, r uint64) error {
		seq = append(seq, b)
		defer func() { seq = seq[:len(seq)-1] }()
		if b == n.Graph.Exit {
			return emit(r)
		}
		blk := n.Graph.Block(b)
		for si, s := range blk.Succs {
			if n.IsBack[b][si] {
				// Pseudo edge b->EXIT: the path ends here.
				if err := emit(r + n.EdgeVal[b][si]); err != nil {
					return err
				}
				continue
			}
			if err := walk(s, r+n.EdgeVal[b][si]); err != nil {
				return err
			}
		}
		return nil
	}

	proof.Starts = 1
	if err := walk(n.Graph.Entry, n.EntryValue()); err != nil {
		return Proof{}, err
	}
	for h := cfg.BlockID(0); int(h) < n.Graph.NumBlocks(); h++ {
		if !n.IsLoopHeader(h) {
			continue
		}
		proof.Starts++
		if err := walk(h, n.HeaderReset(h)); err != nil {
			return Proof{}, err
		}
	}
	if proof.Paths != n.NumPaths {
		return Proof{}, fmt.Errorf("bl: %s: enumerated %d paths but NumPaths=%d (numbering not compact)",
			n.Graph.Name, proof.Paths, n.NumPaths)
	}
	return proof, nil
}

// ProveGraph numbers g and proves the numbering; a convenience for tests
// and tools that start from a CFG.
func ProveGraph(g *cfg.Graph, limit uint64) (Proof, error) {
	n, err := Number(g)
	if err != nil {
		return Proof{}, err
	}
	return Prove(n, limit)
}
