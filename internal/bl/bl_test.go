package bl

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cfg"
)

func mustGraph(t *testing.T, g *cfg.Graph) *cfg.Graph {
	t.Helper()
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

func mustEdge(t *testing.T, g *cfg.Graph, from, to cfg.BlockID) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatal(err)
	}
}

// diamond: 0 -> {1,2} -> 3. Four blocks, two paths.
func diamond(t *testing.T) *cfg.Graph {
	g := cfg.New("diamond")
	for i := 0; i < 4; i++ {
		b := g.NewBlock("b")
		b.Weight = i + 1
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	g.SetEntry(0)
	g.SetExit(3)
	return mustGraph(t, g)
}

// doubleDiamond: two diamonds in sequence, four paths.
func doubleDiamond(t *testing.T) *cfg.Graph {
	g := cfg.New("dd")
	for i := 0; i < 7; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 3, 5)
	mustEdge(t, g, 4, 6)
	mustEdge(t, g, 5, 6)
	g.SetEntry(0)
	g.SetExit(6)
	return mustGraph(t, g)
}

// loop: 0 -> 1; 1 -> {2,3}; 2 -> 1. Entry 0, exit 3, back edge 2->1.
func loop(t *testing.T) *cfg.Graph {
	g := cfg.New("loop")
	for i := 0; i < 4; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 1)
	g.SetEntry(0)
	g.SetExit(3)
	return mustGraph(t, g)
}

func TestDiamondNumPaths(t *testing.T) {
	n, err := Number(diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumPaths != 2 {
		t.Fatalf("NumPaths = %d, want 2", n.NumPaths)
	}
}

func TestDoubleDiamondNumPaths(t *testing.T) {
	n, err := Number(doubleDiamond(t))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumPaths != 4 {
		t.Fatalf("NumPaths = %d, want 4", n.NumPaths)
	}
}

func TestDiamondPathsAreDistinctAndComplete(t *testing.T) {
	n, err := Number(diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]uint64{}
	for id := uint64(0); id < n.NumPaths; id++ {
		seq, err := n.Regenerate(id)
		if err != nil {
			t.Fatalf("path %d: %v", id, err)
		}
		key := ""
		for _, b := range seq {
			key += string(rune('A' + b))
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("paths %d and %d regenerate to the same block sequence %q", prev, id, key)
		}
		seen[key] = id
		if seq[0] != 0 || seq[len(seq)-1] != 3 {
			t.Fatalf("path %d = %v does not run entry to exit", id, seq)
		}
	}
}

func TestLoopNumbering(t *testing.T) {
	n, err := Number(loop(t))
	if err != nil {
		t.Fatal(err)
	}
	// Acyclic paths: from ENTRY: 0-1-2(backedge), 0-1-3; from header 1:
	// 1-2(backedge), 1-3. Total 4.
	if n.NumPaths != 4 {
		t.Fatalf("NumPaths = %d, want 4", n.NumPaths)
	}
	if !n.IsLoopHeader(1) {
		t.Fatal("block 1 should be a loop header")
	}
	if n.IsLoopHeader(0) || n.IsLoopHeader(2) {
		t.Fatal("non-headers misclassified")
	}
	instr, ok := n.BackEdge[cfg.Edge{From: 2, To: 1}]
	if !ok {
		t.Fatal("no instrumentation for back edge 2->1")
	}
	if instr.Reset != n.HeaderReset(1) {
		t.Fatalf("reset %d != header reset %d", instr.Reset, n.HeaderReset(1))
	}
}

func TestPathWeightAndString(t *testing.T) {
	n, err := Number(diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	// Weights are 1,2,3,4; both paths include blocks 0 and 3 (1+4) plus
	// either 2 or 3.
	w0, err := n.PathWeight(0)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := n.PathWeight(1)
	if err != nil {
		t.Fatal(err)
	}
	if !(w0 == 7 && w1 == 8 || w0 == 8 && w1 == 7) {
		t.Fatalf("path weights = %d,%d; want {7,8}", w0, w1)
	}
	if s := n.PathString(0); s == "" {
		t.Fatal("empty PathString")
	}
	if s := n.PathString(999); s == "" {
		t.Fatal("PathString for invalid ID should describe the error")
	}
}

func TestRegenerateRejectsOutOfRange(t *testing.T) {
	n, err := Number(diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Regenerate(n.NumPaths); err == nil {
		t.Fatal("out-of-range path accepted")
	}
}

func TestIrreducibleRejected(t *testing.T) {
	g := cfg.New("irr")
	for i := 0; i < 5; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 1)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 4)
	mustEdge(t, g, 4, 3)
	g.SetEntry(0)
	g.SetExit(3)
	mustGraph(t, g)
	if _, err := Number(g); err == nil {
		t.Fatal("irreducible graph accepted")
	}
}

// simulate walks the graph from entry taking random successors, applying
// the Ball-Larus instrumentation exactly as an instrumented binary would,
// and returns both the emitted path IDs and the acyclic block segments
// actually walked.
func simulate(t *testing.T, n *Numbering, rng *rand.Rand, maxSteps int) (ids []uint64, segs [][]cfg.BlockID) {
	g := n.Graph
	r := n.EntryValue()
	cur := g.Entry
	seg := []cfg.BlockID{cur}
	for steps := 0; cur != g.Exit; steps++ {
		if steps > maxSteps {
			t.Fatalf("simulation did not terminate in %d steps", maxSteps)
		}
		blk := g.Block(cur)
		si := rng.Intn(len(blk.Succs))
		next := blk.Succs[si]
		if n.IsBack[cur][si] {
			instr := n.BackEdge[cfg.Edge{From: cur, To: next}]
			ids = append(ids, r+instr.EmitAdd)
			segs = append(segs, seg)
			r = instr.Reset
			seg = []cfg.BlockID{next}
		} else {
			r += n.EdgeVal[cur][si]
			seg = append(seg, next)
		}
		cur = next
	}
	ids = append(ids, r)
	segs = append(segs, seg)
	return ids, segs
}

func TestSimulatedExecutionRegeneratesExactly(t *testing.T) {
	graphs := []*cfg.Graph{diamond(t), doubleDiamond(t), loop(t)}
	rng := rand.New(rand.NewSource(11))
	for _, g := range graphs {
		n, err := Number(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for trial := 0; trial < 50; trial++ {
			ids, segs := simulate(t, n, rng, 10000)
			if len(ids) != len(segs) {
				t.Fatalf("%s: %d ids but %d segments", g.Name, len(ids), len(segs))
			}
			for i, id := range ids {
				got, err := n.Regenerate(id)
				if err != nil {
					t.Fatalf("%s: emitted id %d invalid: %v", g.Name, id, err)
				}
				if !reflect.DeepEqual(got, segs[i]) {
					t.Fatalf("%s: id %d regenerates to %v, executed %v", g.Name, id, got, segs[i])
				}
			}
		}
	}
}

// randomStructured builds a random reducible CFG by composing sequence,
// if-then-else, if-then, and while constructs, mimicking what a compiler
// front end emits.
func randomStructured(t *testing.T, rng *rand.Rand, budget int) *cfg.Graph {
	g := cfg.New("rand")
	entry := g.NewBlock("entry")
	exit := g.NewBlock("exit")

	// grow recursively builds a region from `from` and returns the block
	// that control reaches at the region's end.
	var grow func(from cfg.BlockID, depth int) cfg.BlockID
	grow = func(from cfg.BlockID, depth int) cfg.BlockID {
		if budget <= 0 || depth > 5 {
			return from
		}
		budget--
		switch rng.Intn(4) {
		case 0: // straight-line block
			b := g.NewBlock("s")
			mustEdge(t, g, from, b.ID)
			return grow(b.ID, depth)
		case 1: // if-then-else
			then := g.NewBlock("t")
			els := g.NewBlock("e")
			join := g.NewBlock("j")
			mustEdge(t, g, from, then.ID)
			mustEdge(t, g, from, els.ID)
			tEnd := grow(then.ID, depth+1)
			eEnd := grow(els.ID, depth+1)
			mustEdge(t, g, tEnd, join.ID)
			mustEdge(t, g, eEnd, join.ID)
			return grow(join.ID, depth)
		case 2: // if-then
			then := g.NewBlock("t")
			join := g.NewBlock("j")
			mustEdge(t, g, from, then.ID)
			tEnd := grow(then.ID, depth+1)
			mustEdge(t, g, tEnd, join.ID)
			mustEdge(t, g, from, join.ID)
			return grow(join.ID, depth)
		default: // while loop
			head := g.NewBlock("h")
			body := g.NewBlock("w")
			after := g.NewBlock("a")
			mustEdge(t, g, from, head.ID)
			mustEdge(t, g, head.ID, body.ID)
			mustEdge(t, g, head.ID, after.ID)
			bEnd := grow(body.ID, depth+1)
			mustEdge(t, g, bEnd, head.ID)
			return grow(after.ID, depth)
		}
	}
	end := grow(entry.ID, 0)
	mustEdge(t, g, end, exit.ID)
	g.SetEntry(entry.ID)
	g.SetExit(exit.ID)
	return mustGraph(t, g)
}

func TestRandomStructuredGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		g := randomStructured(t, rng, 3+rng.Intn(20))
		n, err := Number(g)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g.Dot())
		}
		for run := 0; run < 10; run++ {
			ids, segs := simulate(t, n, rng, 100000)
			for i, id := range ids {
				got, err := n.Regenerate(id)
				if err != nil {
					t.Fatalf("trial %d: id %d: %v", trial, id, err)
				}
				if !reflect.DeepEqual(got, segs[i]) {
					t.Fatalf("trial %d: id %d -> %v, executed %v", trial, id, got, segs[i])
				}
			}
		}
	}
}

func TestPathExplosionRejected(t *testing.T) {
	// A chain of 45 diamonds has 2^45 acyclic paths, exceeding MaxPaths
	// (2^40); Number must reject it rather than overflow the event
	// encoding.
	g := cfg.New("explode")
	prev := g.NewBlock("entry").ID
	g.SetEntry(prev)
	for i := 0; i < 45; i++ {
		a := g.NewBlock("a")
		b := g.NewBlock("b")
		join := g.NewBlock("j")
		mustEdge(t, g, prev, a.ID)
		mustEdge(t, g, prev, b.ID)
		mustEdge(t, g, a.ID, join.ID)
		mustEdge(t, g, b.ID, join.ID)
		prev = join.ID
	}
	exit := g.NewBlock("exit")
	mustEdge(t, g, prev, exit.ID)
	g.SetExit(exit.ID)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := Number(g); err == nil {
		t.Fatal("2^45 paths accepted")
	}
	// 30 diamonds (2^30 paths) must still be fine.
	g2 := cfg.New("ok")
	prev = g2.NewBlock("entry").ID
	g2.SetEntry(prev)
	for i := 0; i < 30; i++ {
		a := g2.NewBlock("a")
		b := g2.NewBlock("b")
		join := g2.NewBlock("j")
		mustEdge(t, g2, prev, a.ID)
		mustEdge(t, g2, prev, b.ID)
		mustEdge(t, g2, a.ID, join.ID)
		mustEdge(t, g2, b.ID, join.ID)
		prev = join.ID
	}
	exit2 := g2.NewBlock("exit")
	mustEdge(t, g2, prev, exit2.ID)
	g2.SetExit(exit2.ID)
	if err := g2.Finish(); err != nil {
		t.Fatal(err)
	}
	n, err := Number(g2)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumPaths != 1<<30 {
		t.Fatalf("NumPaths = %d, want 2^30", n.NumPaths)
	}
	// Spot-check a large ID regenerates.
	if _, err := n.Regenerate(1<<30 - 1); err != nil {
		t.Fatal(err)
	}
}

func TestAcyclicPathIDsBijective(t *testing.T) {
	// For moderate acyclic DAGs, every ID in [0, NumPaths) must
	// regenerate to a unique entry-to-exit path.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := randomStructured(t, rng, 8)
		n, err := Number(g)
		if err != nil {
			t.Fatal(err)
		}
		if n.NumPaths > 4096 {
			continue
		}
		seen := map[string]bool{}
		for id := uint64(0); id < n.NumPaths; id++ {
			seq, err := n.Regenerate(id)
			if err != nil {
				t.Fatalf("trial %d: id %d: %v", trial, id, err)
			}
			key := ""
			for _, b := range seq {
				key += string(rune(b)) + ","
			}
			if seen[key] {
				t.Fatalf("trial %d: duplicate path for id %d", trial, id)
			}
			seen[key] = true
		}
	}
}
