package workloads

import (
	"testing"

	"repro/internal/bl"
	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
)

func runSmall(t *testing.T, w Workload, mode interp.Mode) (int64, interp.Stats) {
	t.Helper()
	p, err := wlc.Compile(w.Source)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	cfg := interp.Config{Mode: mode}
	if mode != interp.NoTrace {
		cfg.Sink = trace.SinkFunc(func(trace.Event) {})
	}
	m, err := interp.New(p, cfg)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	res, err := m.Run("main", w.Small)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res, m.Stats()
}

// Golden results at Small scale. These lock down both workload semantics
// and interpreter semantics; any change to either shows up here.
var smallGolden = map[string]int64{
	"compress": 3427813,
	"lexer":    108101,
	"expr":     84411,
	"matrix":   1745371,
	"game":     465,
	"sim":      2402,
	"sort":     287348651,
	"hash":     859643,
	"bfs":      419230,
	"queens":   40, // 7-queens has exactly 40 solutions
}

func TestWorkloadsRunAndAreDeterministic(t *testing.T) {
	for _, w := range All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			r1, st1 := runSmall(t, w, interp.NoTrace)
			r2, _ := runSmall(t, w, interp.NoTrace)
			if r1 != r2 {
				t.Fatalf("nondeterministic: %d vs %d", r1, r2)
			}
			if want, ok := smallGolden[w.Name]; ok && r1 != want {
				t.Fatalf("result %d, want %d", r1, want)
			}
			if st1.Instructions < 10000 {
				t.Fatalf("workload too small at Small scale: %d instructions", st1.Instructions)
			}
			t.Logf("%s: result=%d instrs=%d", w.Name, r1, st1.Instructions)
		})
	}
}

func TestWorkloadsTraceable(t *testing.T) {
	for _, w := range All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			plain, _ := runSmall(t, w, interp.NoTrace)
			traced, st := runSmall(t, w, interp.PathTrace)
			if plain != traced {
				t.Fatalf("tracing changed result: %d vs %d", plain, traced)
			}
			if st.Events == 0 {
				t.Fatal("no path events emitted")
			}
			// Events should be far fewer than blocks executed.
			if st.Events*2 > st.BlocksExecuted {
				t.Fatalf("path events %d vs blocks %d: paths too short", st.Events, st.BlocksExecuted)
			}
		})
	}
}

func TestWorkloadsNumberable(t *testing.T) {
	for _, w := range All {
		p, err := wlc.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, f := range p.Funcs {
			if _, err := bl.Number(f.Graph); err != nil {
				t.Errorf("%s/%s: %v", w.Name, f.Name, err)
			}
		}
	}
}

func TestOptimizedBuildsPreserveSemantics(t *testing.T) {
	// Constant folding must not change any workload's observable result.
	for _, w := range All {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			plain, err := wlc.Compile(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := wlc.CompileWithOptions(w.Source, wlc.Options{ConstFold: true})
			if err != nil {
				t.Fatal(err)
			}
			mp, err := interp.New(plain, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			mo, err := interp.New(opt, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			rp, err := mp.Run("main", w.Small)
			if err != nil {
				t.Fatal(err)
			}
			ro, err := mo.Run("main", w.Small)
			if err != nil {
				t.Fatal(err)
			}
			if rp != ro {
				t.Fatalf("optimization changed result: %d vs %d", rp, ro)
			}
			if mo.Stats().Instructions > mp.Stats().Instructions {
				t.Fatalf("optimized build executes more instructions: %d vs %d",
					mo.Stats().Instructions, mp.Stats().Instructions)
			}
		})
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("compress")
	if err != nil || w.Name != "compress" {
		t.Fatalf("ByName(compress) = %+v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Names()) != len(All) {
		t.Fatal("Names length mismatch")
	}
}

func TestScalesOrdered(t *testing.T) {
	for _, w := range All {
		if !(w.Small > 0 && w.Small <= w.Medium && w.Medium <= w.Large) {
			t.Errorf("%s: scales not ordered: %d %d %d", w.Name, w.Small, w.Medium, w.Large)
		}
	}
}
