package obsv

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// StartProgress launches a goroutine that writes one compact progress line
// to w every interval: counters with their per-interval delta, gauges and
// float gauges with current values, histograms as count@mean. The returned
// stop function prints one final line (so short runs still report) and
// waits for the goroutine to exit. No-op on a nil registry.
func (r *Registry) StartProgress(w io.Writer, every time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	last := map[string]uint64{}
	emit := func() {
		line := r.progressLine(last)
		if line != "" {
			fmt.Fprintln(w, line)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				emit()
			case <-done:
				emit()
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// progressLine renders the registry as one "name=value" line, updating
// last with counter values to compute deltas.
func (r *Registry) progressLine(last map[string]uint64) string {
	var b strings.Builder
	b.WriteString("progress:")
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			v := e.c.Value()
			fmt.Fprintf(&b, " %s=%d(+%d)", e.name, v, v-last[e.name])
			last[e.name] = v
		case kindGauge:
			fmt.Fprintf(&b, " %s=%d", e.name, e.g.Value())
		case kindFloatGauge:
			fmt.Fprintf(&b, " %s=%.3g", e.name, e.f.Value())
		case kindHistogram:
			n := e.h.Count()
			mean := time.Duration(0)
			if n > 0 {
				mean = e.h.Sum() / time.Duration(n)
			}
			fmt.Fprintf(&b, " %s=%d@%s", e.name, n, mean.Round(time.Microsecond))
		}
	}
	if b.Len() == len("progress:") {
		return ""
	}
	return b.String()
}
