package obsv

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order. Metric names
// are sanitized to the Prometheus charset; histograms render cumulative
// le buckets plus _sum and _count with the sum in seconds. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.sorted() {
		name := PromName(e.name)
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, e.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, e.g.Value())
		case kindFloatGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(e.f.Value()))
		case kindHistogram:
			s := e.h.snapshot()
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			var cum uint64
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
			}
			cum += s.Counts[len(s.Counts)-1]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(bw, "%s_sum %s\n", name, formatFloat(s.Sum))
			fmt.Fprintf(bw, "%s_count %d\n", name, s.Count)
		}
	}
	return bw.Flush()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// PromName maps an arbitrary metric name onto the Prometheus identifier
// charset [a-zA-Z_:][a-zA-Z0-9_:]*: invalid bytes become '_', and a name
// that is empty or starts with a digit gains a '_' prefix.
func PromName(name string) string {
	valid := func(i int, c byte) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return i > 0
		}
		return false
	}
	ok := len(name) > 0
	for i := 0; i < len(name) && ok; i++ {
		ok = valid(i, name[i])
	}
	if ok {
		return name
	}
	out := make([]byte, 0, len(name)+1)
	if len(name) == 0 || (name[0] >= '0' && name[0] <= '9') {
		out = append(out, '_')
	}
	for i := 0; i < len(name); i++ {
		if valid(1, name[i]) { // position 1: digits allowed after the first byte
			out = append(out, name[i])
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}
