package obsv

import (
	"expvar"
	"sync"
	"time"
)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
)

type entry struct {
	name string
	kind metricKind
	c    *Counter
	g    *Gauge
	f    *FloatGauge
	h    *Histogram
}

// Registry is a named collection of metrics. Registration takes a mutex;
// metric operations on the returned objects are lock-free. Lookups of an
// already registered name return the existing metric, so independent
// components can share counters by name. A nil *Registry returns nil
// metrics from every getter, which are themselves no-ops — passing a nil
// registry disables instrumentation with zero configuration.
type Registry struct {
	mu      sync.Mutex
	entries []entry // registration order, for stable export
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

func (r *Registry) lookup(name string, kind metricKind) (entry, bool) {
	if i, ok := r.byName[name]; ok {
		e := r.entries[i]
		if e.kind != kind {
			panic("obsv: metric " + name + " registered with a different kind")
		}
		return e, true
	}
	return entry{}, false
}

func (r *Registry) add(e entry) {
	r.byName[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter returns the counter with the given name, registering it on
// first use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindCounter); ok {
		return e.c
	}
	c := &Counter{}
	r.add(entry{name: name, kind: kindCounter, c: c})
	return c
}

// Gauge returns the gauge with the given name, registering it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindGauge); ok {
		return e.g
	}
	g := &Gauge{}
	r.add(entry{name: name, kind: kindGauge, g: g})
	return g
}

// FloatGauge returns the float gauge with the given name, registering it
// on first use. Returns nil on a nil registry.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindFloatGauge); ok {
		return e.f
	}
	f := &FloatGauge{}
	r.add(entry{name: name, kind: kindFloatGauge, f: f})
	return f
}

// Histogram returns the histogram with the given name, registering it on
// first use with the given bounds (nil bounds = DefDurationBuckets).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, kindHistogram); ok {
		return e.h
	}
	h := NewHistogram(bounds)
	r.add(entry{name: name, kind: kindHistogram, h: h})
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry,
// JSON-marshalable for expvar export.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Floats     map[string]float64           `json:"floats,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered metric. Values are
// read individually with atomic loads; the snapshot is consistent per
// metric, not across metrics. Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Floats:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.c.Value()
		case kindGauge:
			s.Gauges[e.name] = e.g.Value()
		case kindFloatGauge:
			s.Floats[e.name] = e.f.Value()
		case kindHistogram:
			s.Histograms[e.name] = e.h.snapshot()
		}
	}
	return s
}

// sorted returns a copy of the entries in registration order; safe to
// iterate without the lock. Nil registries yield nothing.
func (r *Registry) sorted() []entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// expvarMu guards against double publication: expvar.Publish panics on
// duplicate names, and tests create registries repeatedly.
var expvarMu sync.Mutex

// PublishExpvar exposes the registry's snapshot as an expvar variable with
// the given name, making it visible on /debug/vars. Publishing the same
// name twice keeps the first registration (expvar has no replace). No-op
// on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
