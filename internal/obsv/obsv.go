// Package obsv is the pipeline's observability layer: lock-free counters,
// gauges, and bucketed duration histograms built on sync/atomic, collected
// in a named registry that can snapshot itself, publish through expvar,
// serve Prometheus text format, and report progress periodically.
//
// Two properties make it safe to thread through the hot path:
//
//   - Every metric operation is a single atomic instruction (or a short
//     loop of them for histograms) with no allocation, so instrumented
//     code can run inside per-event loops.
//   - Every metric method is nil-safe: calling Inc/Add/Set/Observe on a
//     nil metric is a no-op. Instrumentation sites therefore need no
//     conditionals — an uninstrumented pipeline holds nil metrics and
//     pays only the nil check.
//
// Readers (snapshot, Prometheus scrape, progress lines) only load atomics;
// they can run concurrently with a build without blocking or tearing it.
package obsv

import (
	"math"
	"sync/atomic"
	"time"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 that can move both ways. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float64 gauge (stored as atomic bits), for derived
// quantities like compression ratios. A nil *FloatGauge is a no-op.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores f.
func (g *FloatGauge) Set(f float64) {
	if g != nil {
		g.bits.Store(floatBits(f))
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// Histogram counts duration observations into fixed buckets. Bounds are
// inclusive upper bounds in ascending order; observations above the last
// bound land in an implicit +Inf bucket. The sum is kept in nanoseconds.
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds  []time.Duration
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// DefDurationBuckets covers the chunk-compression and analysis latencies
// the pipeline produces, from tens of microseconds to seconds.
var DefDurationBuckets = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// NewHistogram returns a histogram over the given ascending bounds; nil or
// empty bounds default to DefDurationBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefDurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obsv: histogram bounds must be ascending")
		}
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations; 0 on a nil histogram.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds (Prometheus "le").
	Bounds []float64
	// Counts[i] is the count in bucket i; the final entry is the +Inf
	// bucket. Cumulative sums are left to the renderer.
	Counts []uint64
	Count  uint64
	// Sum is the total observed time in seconds.
	Sum float64
}

// snapshot copies the histogram's state. Buckets are loaded individually,
// so a snapshot taken mid-observation can be off by an in-flight sample —
// acceptable for monitoring, and it never blocks writers.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: make([]float64, len(h.bounds)),
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sum.Load()).Seconds(),
	}
	for i, b := range h.bounds {
		s.Bounds[i] = b.Seconds()
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}
