package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("dbg_events_total").Add(11)
	r.PublishExpvar("obsv_test_debug")
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "dbg_events_total 11") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Errorf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["obsv_test_debug"]; !ok {
		t.Errorf("/debug/vars missing published registry; keys: %v", keys(vars))
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d:\n%.200s", code, body)
	}

	// A short CPU profile must stream back a valid (non-empty) response.
	code, body = get(t, base+"/debug/pprof/profile?seconds=1")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/profile = %d, %d bytes", code, len(body))
	}
}

func TestSetupAndShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("setup_total").Inc()
	shutdown, err := Setup(r, "127.0.0.1:0", "obsv_test_setup", 5*time.Millisecond, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	shutdown()
	// Disabled flags must be a no-op.
	shutdown2, err := Setup(r, "", "unused", 0, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	shutdown2()
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
