package obsv

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("wpp_events_ingested_total").Add(100)
	r.Gauge("wpp_queue_depth").Set(2)
	r.FloatGauge("wpp_compression_ratio").Set(35.25)
	h := r.Histogram("wpp_chunk_compress_seconds", []time.Duration{time.Millisecond, time.Second})
	h.Observe(2 * time.Millisecond)
	h.Observe(500 * time.Microsecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE wpp_events_ingested_total counter",
		"wpp_events_ingested_total 100",
		"# TYPE wpp_queue_depth gauge",
		"wpp_queue_depth 2",
		"wpp_compression_ratio 35.25",
		"# TYPE wpp_chunk_compress_seconds histogram",
		`wpp_chunk_compress_seconds_bucket{le="0.001"} 1`,
		`wpp_chunk_compress_seconds_bucket{le="1"} 2`,
		`wpp_chunk_compress_seconds_bucket{le="+Inf"} 2`,
		"wpp_chunk_compress_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"already_valid":   "already_valid",
		"with:colons":     "with:colons",
		"has space":       "has_space",
		"dotted.name":     "dotted_name",
		"0starts_digit":   "_0starts_digit",
		"":                "_",
		"unicode-héllo":   "unicode_h__llo",
		"mixed/slash-sep": "mixed_slash_sep",
	}
	validName := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for in, want := range cases {
		got := PromName(in)
		if got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if !validName.MatchString(got) {
			t.Errorf("PromName(%q) = %q is not a valid Prometheus name", in, got)
		}
	}
}

// FuzzPromExposition feeds arbitrary metric names through registration and
// the Prometheus writer: whatever the name, the exposition must stay
// parseable — sanitized names, one value per line, no control characters.
func FuzzPromExposition(f *testing.F) {
	f.Add("wpp_events_total")
	f.Add("has space")
	f.Add("0digit")
	f.Add("")
	f.Add("é\x00\nnewline")
	validName := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	f.Fuzz(func(t *testing.T, name string) {
		if got := PromName(name); !validName.MatchString(got) {
			t.Fatalf("PromName(%q) = %q is not a valid Prometheus name", name, got)
		}
		r := NewRegistry()
		r.Counter(name).Add(1)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		if len(lines) != 2 {
			t.Fatalf("expected TYPE line + sample line, got %q", buf.String())
		}
		fields := strings.Fields(lines[1])
		if len(fields) != 2 || !validName.MatchString(fields[0]) || fields[1] != "1" {
			t.Fatalf("malformed sample line %q for name %q", lines[1], name)
		}
	})
}
