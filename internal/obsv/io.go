package obsv

import "io"

// CountingWriter counts bytes flowing to W into C. Used to meter artifact
// encode paths without changing codec signatures.
type CountingWriter struct {
	W io.Writer
	C *Counter
}

func (cw CountingWriter) Write(p []byte) (int, error) {
	n, err := cw.W.Write(p)
	cw.C.Add(uint64(n))
	return n, err
}

// CountingReader counts bytes flowing from R into C. Used to meter
// artifact decode paths.
type CountingReader struct {
	R io.Reader
	C *Counter
}

func (cr CountingReader) Read(p []byte) (int, error) {
	n, err := cr.R.Read(p)
	cr.C.Add(uint64(n))
	return n, err
}
