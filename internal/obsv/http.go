package obsv

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves a registry's /metrics (Prometheus text format),
// /debug/vars (expvar JSON), and the standard /debug/pprof endpoints on
// its own mux, so tools can enable live observability with one flag
// without touching http.DefaultServeMux.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
}

// ServeDebug starts a debug HTTP server on addr (e.g. ":6060"; ":0" picks
// a free port) exposing reg. It returns once the listener is bound; the
// server runs until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: debug listener: %w", err)
	}
	d := &DebugServer{srv: &http.Server{Handler: mux}, lis: lis}
	go d.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return d, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// Setup wires the standard observability flags in one call: when addr is
// non-empty it starts a DebugServer (publishing the registry on
// /debug/vars under expvarName), and when every > 0 it starts a periodic
// progress reporter writing to progressW. The returned shutdown function
// stops both and is safe to call when neither was enabled.
func Setup(reg *Registry, addr string, expvarName string, every time.Duration, progressW io.Writer) (shutdown func(), err error) {
	var srv *DebugServer
	if addr != "" {
		reg.PublishExpvar(expvarName)
		srv, err = ServeDebug(addr, reg)
		if err != nil {
			return nil, err
		}
	}
	var stopProgress func()
	if every > 0 {
		stopProgress = reg.StartProgress(progressW, every)
	}
	return func() {
		if stopProgress != nil {
			stopProgress()
		}
		if srv != nil {
			srv.Close()
		}
	}, nil
}
