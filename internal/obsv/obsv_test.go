package obsv

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %d", g.Value())
	}
	var f *FloatGauge
	f.Set(1.5)
	if f.Value() != 0 {
		t.Errorf("nil float gauge value = %v", f.Value())
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestNilRegistryDisablesEverything(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.FloatGauge("c").Set(1)
	r.Histogram("d", nil).Observe(time.Second)
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	r.PublishExpvar("obsv_test_nil")
	stop := r.StartProgress(io.Discard, time.Millisecond)
	stop()
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("counter = %d, want 10", c.Value())
	}
	if r.Counter("events") != c {
		t.Error("re-registering a counter returned a different object")
	}
	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Errorf("gauge = %d, want 3", g.Value())
	}
	f := r.FloatGauge("ratio")
	f.Set(42.5)
	if f.Value() != 42.5 {
		t.Errorf("float gauge = %v, want 42.5", f.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (inclusive bound)
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf
	s := h.snapshot()
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	wantSum := (500*time.Microsecond + 3*time.Millisecond + time.Second).Seconds()
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestSnapshotCoversAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(-4)
	r.FloatGauge("f").Set(0.5)
	r.Histogram("h", nil).Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Counters["c"] != 2 || s.Gauges["g"] != -4 || s.Floats["f"] != 0.5 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("histogram snapshot = %+v", s.Histograms["h"])
	}
}

func TestConcurrentRegistrationAndUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(int64(j))
				r.Histogram("h", nil).Observe(time.Microsecond)
			}
		}()
	}
	// Concurrent scrapes must not block or race with the writers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Snapshot()
				r.WritePrometheus(io.Discard)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
}

func TestProgressReporter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("done")
	r.Gauge("queue").Set(3)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := lockedWriter{mu: &mu, w: &buf}
	stop := r.StartProgress(w, 10*time.Millisecond)
	c.Add(5)
	time.Sleep(35 * time.Millisecond)
	stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "done=5") || !strings.Contains(out, "queue=3") {
		t.Errorf("progress output missing metrics:\n%s", out)
	}
	if !strings.HasPrefix(out, "progress:") {
		t.Errorf("progress output = %q", out)
	}
}

// lockedWriter serializes writes so the test can read the buffer safely.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestCountingWriterReader(t *testing.T) {
	r := NewRegistry()
	out := r.Counter("bytes_out")
	var buf bytes.Buffer
	cw := CountingWriter{W: &buf, C: out}
	io.WriteString(cw, "hello")
	if out.Value() != 5 {
		t.Errorf("bytes_out = %d, want 5", out.Value())
	}
	in := r.Counter("bytes_in")
	cr := CountingReader{R: &buf, C: in}
	data, err := io.ReadAll(cr)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read %q, %v", data, err)
	}
	if in.Value() != 5 {
		t.Errorf("bytes_in = %d, want 5", in.Value())
	}
}
