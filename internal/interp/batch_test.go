package interp

// Differential tests for the batched emission path: a Machine whose
// Sink also implements trace.BatchSink buffers events and delivers
// them a slice at a time, and the delivered stream must be identical
// to what a plain Sink sees — same events, same order, flushed in full
// on both the success and the error paths.

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/wlc"
)

const batchTestSrc = `
func helper(n) {
	var s = 0;
	var i = 0;
	while i < n {
		if i % 3 == 0 {
			s = s + i;
		} else {
			s = s - 1;
		}
		i = i + 1;
	}
	return s;
}
func main(n) {
	var t = 0;
	var j = 0;
	while j < n {
		t = t + helper(j % 17);
		j = j + 1;
	}
	return t;
}
`

// traceWith runs the program in the given mode and returns the event
// stream seen by a sink of the given batchiness.
func traceWith(t *testing.T, mode Mode, batched bool, arg int64) ([]trace.Event, Stats, error) {
	t.Helper()
	p, err := wlc.Compile(batchTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	var got []trace.Event
	var sink trace.Sink
	if batched {
		// Buffer implements BatchSink, so the machine batches into it.
		buf := &trace.Buffer{}
		defer func() { got = append(got, buf.Events...) }()
		sink = buf
	} else {
		sink = trace.SinkFunc(func(e trace.Event) { got = append(got, e) })
	}
	m, err := New(p, Config{Mode: mode, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := m.Run("main", arg)
	if b, ok := sink.(*trace.Buffer); ok {
		got = b.Events
	}
	return got, m.Stats(), runErr
}

// TestBatchedSinkMatchesPlainSink: both trace modes, a workload long
// enough to cross the emission-buffer boundary several times.
func TestBatchedSinkMatchesPlainSink(t *testing.T) {
	for _, mode := range []Mode{PathTrace, BlockTrace} {
		plain, pStats, err := traceWith(t, mode, false, 1200)
		if err != nil {
			t.Fatal(err)
		}
		batched, bStats, err := traceWith(t, mode, true, 1200)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) <= emitBatchSize {
			t.Fatalf("workload produced only %d events; grow it past the %d-event buffer", len(plain), emitBatchSize)
		}
		if !reflect.DeepEqual(plain, batched) {
			t.Fatalf("mode %d: streams diverge (%d vs %d events)", mode, len(plain), len(batched))
		}
		if pStats.Events != bStats.Events || pStats.Events != uint64(len(plain)) {
			t.Fatalf("mode %d: event counts diverge: plain=%d batched=%d delivered=%d", mode, pStats.Events, bStats.Events, len(plain))
		}
	}
}

// TestBatchedSinkFlushedOnError: a run that dies on the instruction
// limit must still deliver every event emitted up to the fault, and
// Stats.Events must equal what the sink saw.
func TestBatchedSinkFlushedOnError(t *testing.T) {
	p, err := wlc.Compile(batchTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	var plain []trace.Event
	mp, err := New(p, Config{Mode: PathTrace, MaxInstrs: 50000, Sink: trace.SinkFunc(func(e trace.Event) { plain = append(plain, e) })})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Run("main", 10000); !errors.Is(err, ErrInstrLimit) {
		t.Fatalf("expected instruction-limit error, got %v", err)
	}
	buf := &trace.Buffer{}
	mb, err := New(p, Config{Mode: PathTrace, MaxInstrs: 50000, Sink: buf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Run("main", 10000); !errors.Is(err, ErrInstrLimit) {
		t.Fatalf("expected instruction-limit error, got %v", err)
	}
	if !reflect.DeepEqual(plain, buf.Events) {
		t.Fatalf("error-path streams diverge: plain=%d batched=%d events", len(plain), len(buf.Events))
	}
	if mb.Stats().Events != uint64(len(buf.Events)) {
		t.Fatalf("stats say %d events, sink saw %d", mb.Stats().Events, len(buf.Events))
	}
}
