package interp

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/wlc"
)

func TestForLoopBasics(t *testing.T) {
	cases := []struct {
		name, src string
		arg, want int64
	}{
		{"sum", `func main(n) {
			var s = 0;
			for var i = 0; i < n; i = i + 1 { s = s + i; }
			return s;
		}`, 10, 45},
		{"existing var", `func main(n) {
			var s = 0;
			var i = 100;
			for i = 0; i < n; i = i + 1 { s = s + 1; }
			return s + i;
		}`, 5, 10},
		{"no init", `func main(n) {
			var i = 0;
			var s = 0;
			for ; i < n; i = i + 1 { s = s + 2; }
			return s;
		}`, 4, 8},
		{"no post", `func main(n) {
			var s = 0;
			for var i = 0; i < n; { s = s + i; i = i + 2; }
			return s;
		}`, 10, 20},
		{"infinite with break", `func main(n) {
			var i = 0;
			for ;; {
				i = i + 1;
				if i >= n { break; }
			}
			return i;
		}`, 7, 7},
		{"continue runs post", `func main(n) {
			var s = 0;
			for var i = 0; i < n; i = i + 1 {
				if i % 2 == 0 { continue; }
				s = s + i;
			}
			return s;
		}`, 10, 25},
		{"nested", `func main(n) {
			var s = 0;
			for var i = 0; i < n; i = i + 1 {
				for var j = 0; j < i; j = j + 1 {
					s = s + 1;
				}
			}
			return s;
		}`, 6, 15},
		{"body returns", `func main(n) {
			for var i = 0; i < n; i = i + 1 {
				if i == 3 { return i * 100; }
			}
			return 0 - 1;
		}`, 10, 300},
		{"body always breaks", `func main(n) {
			for var i = 0; i < n; i = i + 1 { break; }
			return 42;
		}`, 5, 42},
		{"array post", `func main(n) {
			var a = array(1);
			var s = 0;
			for a[0] = 0; a[0] < n; a[0] = a[0] + 1 { s = s + a[0]; }
			return s;
		}`, 5, 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(t, c.src, c.arg); got != c.want {
				t.Fatalf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestForLoopPathTraceConsistency(t *testing.T) {
	src := `
func main(n) {
    var s = 0;
    for var i = 0; i < n; i = i + 1 {
        if i % 3 == 0 { continue; }
        if i % 7 == 0 { break; }
        s = s + i;
    }
    return s;
}`
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	plain := run(t, src, 20)
	m, err := New(p, Config{Mode: PathTrace, Sink: trace.SinkFunc(func(trace.Event) {})})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := m.Run("main", 20)
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Fatalf("tracing changed for-loop result: %d vs %d", plain, traced)
	}
	if m.Stats().Events == 0 {
		t.Fatal("no events from for loop")
	}
}

func TestForLoopOptimized(t *testing.T) {
	src := `
func main(n) {
    var s = 0;
    for var i = 0; 0; i = i + 1 { s = s + 999; }
    for var j = 2 * 3; j < n; j = j + 1 { s = s + j; }
    return s + i;
}`
	p, err := wlc.CompileWithOptions(src, wlc.Options{ConstFold: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run("main", 10)
	if err != nil {
		t.Fatal(err)
	}
	// First loop dead (i stays 0 via hoisted init? init runs: i = 0);
	// second: 6+7+8+9 = 30.
	if got != 30 {
		t.Fatalf("got %d, want 30", got)
	}
}
