// Package interp executes compiled WL programs (package wlc), optionally
// under Ball–Larus path instrumentation. It plays the role of the paper's
// instrumented SPARC binaries: the same execution can run untraced (the
// baseline), with block tracing (the naive alphabet the paper improves
// on), or with path tracing (the whole-program-path event stream).
package interp

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/bl"
	"repro/internal/cfg"
	"repro/internal/trace"
	"repro/internal/wl"
	"repro/internal/wlc"
)

// Mode selects what an execution records.
type Mode int

const (
	// NoTrace runs the program with no instrumentation.
	NoTrace Mode = iota
	// BlockTrace emits one event per basic block executed, encoded as
	// (funcID, blockID). It is the naive control-flow trace baseline.
	BlockTrace
	// PathTrace emits one event per completed Ball–Larus acyclic path,
	// encoded as (funcID, pathID). This is the WPP event stream.
	PathTrace
)

// Config controls an execution.
type Config struct {
	Mode Mode
	// Sink receives every trace event; the interpreter is the push side
	// of the trace.Source/trace.Sink pipeline, so any WPP builder (or
	// trace.SinkFunc closure) plugs in directly. Required for
	// BlockTrace/PathTrace.
	Sink trace.Sink
	// EdgeSink, when set, observes every CFG edge taken: function ID,
	// source block, and the successor index within the source block. It
	// feeds edge-frequency profiles (e.g. for profile-guided
	// instrumentation placement) and works in any Mode.
	EdgeSink func(fn uint32, from cfg.BlockID, succIdx int)
	// Stdout receives print output; io.Discard if nil.
	Stdout io.Writer
	// MaxInstrs aborts the run after this many IR instructions; 0 means
	// no limit.
	MaxInstrs uint64
}

// Stats summarizes an execution.
type Stats struct {
	// Instructions is the number of IR instructions executed, counting
	// one per block entry for the terminator.
	Instructions uint64
	// Events is the number of trace events emitted.
	Events uint64
	// Calls is the number of function calls executed.
	Calls uint64
	// BlocksExecuted is the number of basic-block entries.
	BlocksExecuted uint64
	// FuncInstrs attributes Instructions to functions, indexed by
	// function ID. It is the ground truth the WPP-recovered function
	// profile (hotpath.FuncProfile) is validated against.
	FuncInstrs []uint64
}

// RuntimeError is an execution-time failure with source context.
type RuntimeError struct {
	Func string
	Pos  wl.Pos
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s at %s: %s", e.Func, e.Pos, e.Msg)
}

// ErrInstrLimit is wrapped by the error returned when MaxInstrs is hit.
var ErrInstrLimit = errors.New("instruction limit exceeded")

// Value is a WL runtime value: a scalar or an array. Arr non-nil means
// array.
type Value struct {
	I   int64
	Arr []int64
}

// edgePlan is the per-successor instrumentation derived from bl.Numbering.
type edgePlan struct {
	add     uint64
	back    bool
	emitAdd uint64
	reset   uint64
}

// Machine executes a compiled program. A Machine is not safe for
// concurrent use.
type Machine struct {
	prog  *wlc.Program
	cfg   Config
	plans [][][]edgePlan // [func][block][succIdx]
	nums  []*bl.Numbering
	stats Stats
	// batch is non-nil when the configured Sink also implements
	// trace.BatchSink: events are then buffered in ebuf and flushed a
	// slice at a time, letting batch-capable consumers (the WPP
	// builders) run their fast path. With a plain Sink both stay nil and
	// every event is delivered as it happens.
	batch trace.BatchSink
	ebuf  []trace.Event
}

// emitBatchSize is the emission buffer capacity: large enough to
// amortize the per-flush costs, small enough to stay cache-resident.
const emitBatchSize = 4096

// New prepares a machine. For PathTrace mode it computes the Ball–Larus
// numbering of every function, which fails if any function is irreducible
// or has too many acyclic paths.
func New(p *wlc.Program, config Config) (*Machine, error) {
	if config.Stdout == nil {
		config.Stdout = io.Discard
	}
	if config.Mode != NoTrace && config.Sink == nil {
		return nil, fmt.Errorf("interp: trace mode %d requires a Sink", config.Mode)
	}
	m := &Machine{prog: p, cfg: config}
	if bs, ok := config.Sink.(trace.BatchSink); ok && config.Mode != NoTrace {
		m.batch = bs
		m.ebuf = make([]trace.Event, 0, emitBatchSize)
	}
	m.stats.FuncInstrs = make([]uint64, len(p.Funcs))
	if config.Mode == PathTrace {
		if len(p.Funcs) > trace.MaxFuncs {
			return nil, fmt.Errorf("interp: %d functions exceed trace limit", len(p.Funcs))
		}
		m.nums = make([]*bl.Numbering, len(p.Funcs))
		m.plans = make([][][]edgePlan, len(p.Funcs))
		for i, f := range p.Funcs {
			num, err := bl.Number(f.Graph)
			if err != nil {
				return nil, fmt.Errorf("interp: %w", err)
			}
			if num.NumPaths >= 1<<trace.PathBits {
				return nil, fmt.Errorf("interp: %s: %d paths exceed event encoding", f.Name, num.NumPaths)
			}
			m.nums[i] = num
			plan := make([][]edgePlan, f.Graph.NumBlocks())
			for _, b := range f.Graph.Blocks() {
				eps := make([]edgePlan, len(b.Succs))
				for si, succ := range b.Succs {
					if num.IsBack[b.ID][si] {
						instr := num.BackEdge[cfg.Edge{From: b.ID, To: succ}]
						eps[si] = edgePlan{back: true, emitAdd: instr.EmitAdd, reset: instr.Reset}
					} else {
						eps[si] = edgePlan{add: num.EdgeVal[b.ID][si]}
					}
				}
				plan[b.ID] = eps
			}
			m.plans[i] = plan
		}
	}
	return m, nil
}

// Numbering exposes the Ball–Larus numbering of function fn (PathTrace
// machines only), which analyses use to map path IDs back to blocks.
func (m *Machine) Numbering(fn uint32) *bl.Numbering { return m.nums[fn] }

// Numberings returns the numbering of every function, indexed by function
// ID.
func (m *Machine) Numberings() []*bl.Numbering { return m.nums }

// Stats returns the statistics accumulated so far.
func (m *Machine) Stats() Stats { return m.stats }

// Run executes the named function with scalar arguments and returns its
// result.
func (m *Machine) Run(entry string, args ...int64) (int64, error) {
	f, ok := m.prog.ByName[entry]
	if !ok {
		return 0, fmt.Errorf("interp: no function %s", entry)
	}
	if len(args) != f.Params {
		return 0, fmt.Errorf("interp: %s takes %d argument(s), got %d", entry, f.Params, len(args))
	}
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = Value{I: a}
	}
	res, err := m.call(f, vals)
	// Flush on the error path too: a partial trace up to the fault is
	// still a valid trace, and Stats.Events must agree with what the
	// sink saw.
	m.flushEvents()
	if err != nil {
		return 0, err
	}
	return res.I, nil
}

// emit delivers one event, through the batch buffer when the sink is
// batch-capable.
func (m *Machine) emit(e trace.Event) {
	if m.batch == nil {
		m.cfg.Sink.Add(e)
		return
	}
	m.ebuf = append(m.ebuf, e)
	if len(m.ebuf) == cap(m.ebuf) {
		m.batch.AddBatch(m.ebuf)
		m.ebuf = m.ebuf[:0]
	}
}

// flushEvents drains the emission buffer; a no-op for plain sinks.
func (m *Machine) flushEvents() {
	if m.batch == nil || len(m.ebuf) == 0 {
		return
	}
	m.batch.AddBatch(m.ebuf)
	m.ebuf = m.ebuf[:0]
}

func (m *Machine) rtErr(f *wlc.Func, pos wl.Pos, format string, args ...any) error {
	return &RuntimeError{Func: f.Name, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (m *Machine) call(f *wlc.Func, args []Value) (Value, error) {
	m.stats.Calls++
	regs := make([]Value, f.NumRegs)
	copy(regs[1:], args)

	g := f.Graph
	cur := g.Entry
	pathReg := uint64(0)
	for {
		blk := g.Block(cur)
		m.stats.Instructions += uint64(blk.Weight)
		m.stats.FuncInstrs[f.ID] += uint64(blk.Weight)
		m.stats.BlocksExecuted++
		if m.cfg.MaxInstrs > 0 && m.stats.Instructions > m.cfg.MaxInstrs {
			return Value{}, fmt.Errorf("interp: %s: %w", f.Name, ErrInstrLimit)
		}
		if m.cfg.Mode == BlockTrace {
			m.stats.Events++
			m.emit(trace.MakeEvent(uint32(f.ID), uint64(cur)))
		}
		for i := range f.Code[cur] {
			in := &f.Code[cur][i]
			if err := m.exec(f, regs, in); err != nil {
				return Value{}, err
			}
		}
		t := f.Terms[cur]
		var si int
		switch t.Kind {
		case TermJumpKind:
			si = 0
		case TermBranchKind:
			if truthy(regs[t.Cond]) {
				si = 0
			} else {
				si = 1
			}
		case TermExitKind:
			if m.cfg.Mode == PathTrace {
				m.stats.Events++
				m.emit(trace.MakeEvent(uint32(f.ID), pathReg))
			}
			return regs[0], nil
		}
		next := blk.Succs[si]
		if m.cfg.EdgeSink != nil {
			m.cfg.EdgeSink(uint32(f.ID), cur, si)
		}
		if m.cfg.Mode == PathTrace {
			ep := m.plans[f.ID][cur][si]
			if ep.back {
				m.stats.Events++
				m.emit(trace.MakeEvent(uint32(f.ID), pathReg+ep.emitAdd))
				pathReg = ep.reset
			} else {
				pathReg += ep.add
			}
		}
		cur = next
	}
}

// Terminator kinds re-exported locally to keep the hot switch compact.
const (
	TermJumpKind   = wlc.TermJump
	TermBranchKind = wlc.TermBranch
	TermExitKind   = wlc.TermExit
)

func truthy(v Value) bool {
	if v.Arr != nil {
		return true
	}
	return v.I != 0
}

func (m *Machine) exec(f *wlc.Func, regs []Value, in *wlc.Instr) error {
	switch in.Op {
	case wlc.OpConst:
		regs[in.Dst] = Value{I: in.Imm}
	case wlc.OpMov:
		regs[in.Dst] = regs[in.A]
	case wlc.OpBin:
		a, b := regs[in.A], regs[in.B]
		if a.Arr != nil || b.Arr != nil {
			return m.rtErr(f, in.Pos, "arithmetic on array value")
		}
		v, err := evalBin(in.BinOp, a.I, b.I)
		if err != nil {
			return m.rtErr(f, in.Pos, "%v", err)
		}
		regs[in.Dst] = Value{I: v}
	case wlc.OpNot:
		if truthy(regs[in.A]) {
			regs[in.Dst] = Value{I: 0}
		} else {
			regs[in.Dst] = Value{I: 1}
		}
	case wlc.OpNeg:
		a := regs[in.A]
		if a.Arr != nil {
			return m.rtErr(f, in.Pos, "negation of array value")
		}
		regs[in.Dst] = Value{I: -a.I}
	case wlc.OpNewArr:
		n := regs[in.A]
		if n.Arr != nil {
			return m.rtErr(f, in.Pos, "array length is an array")
		}
		if n.I < 0 || n.I > 1<<30 {
			return m.rtErr(f, in.Pos, "array length %d out of range", n.I)
		}
		regs[in.Dst] = Value{Arr: make([]int64, n.I)}
	case wlc.OpLen:
		a := regs[in.A]
		if a.Arr == nil {
			return m.rtErr(f, in.Pos, "len of non-array")
		}
		regs[in.Dst] = Value{I: int64(len(a.Arr))}
	case wlc.OpLoad:
		a, idx := regs[in.A], regs[in.B]
		if a.Arr == nil {
			return m.rtErr(f, in.Pos, "indexing non-array")
		}
		if idx.Arr != nil || idx.I < 0 || idx.I >= int64(len(a.Arr)) {
			return m.rtErr(f, in.Pos, "index %d out of range [0,%d)", idx.I, len(a.Arr))
		}
		regs[in.Dst] = Value{I: a.Arr[idx.I]}
	case wlc.OpStore:
		a, idx, v := regs[in.A], regs[in.B], regs[in.Dst]
		if a.Arr == nil {
			return m.rtErr(f, in.Pos, "indexing non-array")
		}
		if idx.Arr != nil || idx.I < 0 || idx.I >= int64(len(a.Arr)) {
			return m.rtErr(f, in.Pos, "index %d out of range [0,%d)", idx.I, len(a.Arr))
		}
		if v.Arr != nil {
			return m.rtErr(f, in.Pos, "storing array into array element")
		}
		a.Arr[idx.I] = v.I
	case wlc.OpCall:
		callee := m.prog.Funcs[in.Fn]
		args := make([]Value, len(in.Args))
		for i, r := range in.Args {
			args[i] = regs[r]
		}
		res, err := m.call(callee, args)
		if err != nil {
			return err
		}
		regs[in.Dst] = res
	case wlc.OpPrint:
		for i, r := range in.Args {
			if i > 0 {
				fmt.Fprint(m.cfg.Stdout, " ")
			}
			v := regs[r]
			if v.Arr != nil {
				fmt.Fprintf(m.cfg.Stdout, "%v", v.Arr)
			} else {
				fmt.Fprintf(m.cfg.Stdout, "%d", v.I)
			}
		}
		fmt.Fprintln(m.cfg.Stdout)
	default:
		return m.rtErr(f, in.Pos, "unknown opcode %d", in.Op)
	}
	return nil
}

func evalBin(op wl.Kind, a, b int64) (int64, error) {
	switch op {
	case wl.Add:
		return a + b, nil
	case wl.Sub:
		return a - b, nil
	case wl.Mul:
		return a * b, nil
	case wl.Div:
		if b == 0 {
			return 0, errors.New("division by zero")
		}
		return a / b, nil
	case wl.Rem:
		if b == 0 {
			return 0, errors.New("remainder by zero")
		}
		return a % b, nil
	case wl.Lt:
		return b2i(a < b), nil
	case wl.Le:
		return b2i(a <= b), nil
	case wl.Gt:
		return b2i(a > b), nil
	case wl.Ge:
		return b2i(a >= b), nil
	case wl.Eq:
		return b2i(a == b), nil
	case wl.Ne:
		return b2i(a != b), nil
	case wl.And:
		return a & b, nil
	case wl.Or:
		return a | b, nil
	case wl.Xor:
		return a ^ b, nil
	case wl.Shl:
		return a << (uint64(b) & 63), nil
	case wl.Shr:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	}
	return 0, fmt.Errorf("unknown operator %s", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
