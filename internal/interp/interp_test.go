package interp

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/trace"
	"repro/internal/wlc"
)

func run(t *testing.T, src string, args ...int64) int64 {
	t.Helper()
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("main", args...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runErr(t *testing.T, src string, args ...int64) error {
	t.Helper()
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run("main", args...)
	if err == nil {
		t.Fatal("expected runtime error")
	}
	return err
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"func main() { return 2 + 3 * 4; }", 14},
		{"func main() { return (2 + 3) * 4; }", 20},
		{"func main() { return 10 / 3; }", 3},
		{"func main() { return 10 % 3; }", 1},
		{"func main() { return 0 - 7; }", -7},
		{"func main() { return -7 % 3; }", -1},
		{"func main() { return 1 << 10; }", 1024},
		{"func main() { return 1024 >> 3; }", 128},
		{"func main() { return (0 - 1) >> 1; }", int64(^uint64(0) >> 1)}, // logical shift
		{"func main() { return 12 & 10; }", 8},
		{"func main() { return 12 | 10; }", 14},
		{"func main() { return 12 ^ 10; }", 6},
		{"func main() { return 3 < 4; }", 1},
		{"func main() { return 4 <= 3; }", 0},
		{"func main() { return 4 > 3; }", 1},
		{"func main() { return 3 >= 4; }", 0},
		{"func main() { return 3 == 3; }", 1},
		{"func main() { return 3 != 3; }", 0},
		{"func main() { return !5; }", 0},
		{"func main() { return !0; }", 1},
		{"func main() { return 1 && 2; }", 1},
		{"func main() { return 1 && 0; }", 0},
		{"func main() { return 0 || 0; }", 0},
		{"func main() { return 0 || 9; }", 1},
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("%s = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestControlFlowPrograms(t *testing.T) {
	fib := `
func main(n) {
    if n < 2 { return n; }
    var a = 0;
    var b = 1;
    var i = 2;
    while i <= n {
        var c = a + b;
        a = b;
        b = c;
        i = i + 1;
    }
    return b;
}`
	if got := run(t, fib, 20); got != 6765 {
		t.Fatalf("fib(20) = %d", got)
	}

	gcd := `
func main(a, b) {
    while b != 0 {
        var tmp = a % b;
        a = b;
        b = tmp;
    }
    return a;
}`
	if got := run(t, gcd, 1071, 462); got != 21 {
		t.Fatalf("gcd = %d", got)
	}

	collatz := `
func main(n) {
    var steps = 0;
    while n != 1 {
        if n % 2 == 0 { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;
}`
	if got := run(t, collatz, 27); got != 111 {
		t.Fatalf("collatz(27) = %d", got)
	}
}

func TestRecursion(t *testing.T) {
	fact := `
func fact(n) {
    if n <= 1 { return 1; }
    return n * fact(n - 1);
}
func main(n) { return fact(n); }`
	if got := run(t, fact, 10); got != 3628800 {
		t.Fatalf("fact(10) = %d", got)
	}

	ack := `
func ack(m, n) {
    if m == 0 { return n + 1; }
    if n == 0 { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
func main() { return ack(2, 3); }`
	if got := run(t, ack); got != 9 {
		t.Fatalf("ack(2,3) = %d", got)
	}
}

func TestArrays(t *testing.T) {
	src := `
func main(n) {
    var a = array(n);
    var i = 0;
    while i < n { a[i] = i * i; i = i + 1; }
    var s = 0;
    i = 0;
    while i < len(a) { s = s + a[i]; i = i + 1; }
    return s;
}`
	if got := run(t, src, 10); got != 285 {
		t.Fatalf("sum of squares = %d", got)
	}
}

func TestArraysPassedByReference(t *testing.T) {
	src := `
func fill(a, v) {
    var i = 0;
    while i < len(a) { a[i] = v; i = i + 1; }
    return 0;
}
func main() {
    var a = array(5);
    fill(a, 7);
    return a[0] + a[4];
}`
	if got := run(t, src); got != 14 {
		t.Fatalf("got %d", got)
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	src := `
func touch(a) { a[0] = a[0] + 1; return 1; }
func main() {
    var a = array(1);
    var x = 0 && touch(a);
    var y = 1 || touch(a);
    var z = 1 && touch(a);
    return a[0] * 100 + x * 10 + y + z;
}`
	// touch runs exactly once (for z): a[0]=1, x=0, y=1, z=1.
	if got := run(t, src); got != 102 {
		t.Fatalf("got %d, want 102", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
func main(n) {
    var s = 0;
    var i = 0;
    while 1 {
        i = i + 1;
        if i > n { break; }
        if i % 2 == 0 { continue; }
        s = s + i;
    }
    return s;
}`
	if got := run(t, src, 10); got != 25 {
		t.Fatalf("sum of odds = %d", got)
	}
}

func TestPrint(t *testing.T) {
	p, err := wlc.Compile(`func main() { print 1, 2 + 3; print 42; return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m, err := New(p, Config{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "1 5\n42\n" {
		t.Fatalf("print output %q", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src string
		sub       string
	}{
		{"div0", "func main() { return 1 / 0; }", "division by zero"},
		{"rem0", "func main() { return 1 % 0; }", "remainder by zero"},
		{"oob", "func main() { var a = array(2); return a[5]; }", "out of range"},
		{"oob-neg", "func main() { var a = array(2); return a[0-1]; }", "out of range"},
		{"oob-store", "func main() { var a = array(2); a[2] = 1; return 0; }", "out of range"},
		{"index-scalar", "func main() { var x = 3; return x[0]; }", "non-array"},
		{"len-scalar", "func main() { return len(3); }", "non-array"},
		{"neg-len", "func main() { var a = array(0-1); return 0; }", "out of range"},
		{"arith-array", "func main() { var a = array(1); return a + 1; }", "array"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := runErr(t, c.src)
			if !strings.Contains(err.Error(), c.sub) {
				t.Fatalf("error %q does not contain %q", err, c.sub)
			}
			var re *RuntimeError
			if !errors.As(err, &re) {
				t.Fatalf("error %T is not a RuntimeError", err)
			}
		})
	}
}

func TestInstrLimit(t *testing.T) {
	p, err := wlc.Compile("func main() { var i = 0; while i >= 0 { i = i + 1; } return i; }")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Config{MaxInstrs: 10000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run("main")
	if !errors.Is(err, ErrInstrLimit) {
		t.Fatalf("got %v, want ErrInstrLimit", err)
	}
}

func TestRunArgValidation(t *testing.T) {
	p, err := wlc.Compile("func main(a) { return a; }")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("nope"); err == nil {
		t.Fatal("unknown entry accepted")
	}
	if _, err := m.Run("main"); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestTraceModeRequiresSink(t *testing.T) {
	p, err := wlc.Compile("func main() { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, Config{Mode: PathTrace}); err == nil {
		t.Fatal("PathTrace without sink accepted")
	}
}

func TestStatsCounters(t *testing.T) {
	p, err := wlc.Compile(`
func twice(x) { return x + x; }
func main() { return twice(1) + twice(2); }`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Calls != 3 {
		t.Fatalf("Calls = %d, want 3", st.Calls)
	}
	if st.Instructions == 0 || st.BlocksExecuted == 0 {
		t.Fatalf("zero counters: %+v", st)
	}
}

const crossValidationSrc = `
func classify(x) {
    if x % 15 == 0 { return 3; }
    if x % 3 == 0 { return 1; }
    if x % 5 == 0 { return 2; }
    return 0;
}
func main(n) {
    var counts = array(4);
    var i = 1;
    while i <= n {
        var c = classify(i);
        counts[c] = counts[c] + 1;
        i = i + 1;
    }
    return counts[0] + 10 * counts[1] + 100 * counts[2] + 1000 * counts[3];
}`

// TestPathTraceMatchesBlockTrace is the pipeline's keystone property: for
// a non-recursive program, regenerating every function's path events must
// reproduce exactly the block sequence that a block-traced run observed.
func TestPathTraceMatchesBlockTrace(t *testing.T) {
	p, err := wlc.Compile(crossValidationSrc)
	if err != nil {
		t.Fatal(err)
	}

	var blocks []trace.Event
	mb, err := New(p, Config{Mode: BlockTrace, Sink: trace.SinkFunc(func(e trace.Event) { blocks = append(blocks, e) })})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := mb.Run("main", 30)
	if err != nil {
		t.Fatal(err)
	}

	var paths []trace.Event
	mp, err := New(p, Config{Mode: PathTrace, Sink: trace.SinkFunc(func(e trace.Event) { paths = append(paths, e) })})
	if err != nil {
		t.Fatal(err)
	}
	resP, err := mp.Run("main", 30)
	if err != nil {
		t.Fatal(err)
	}
	if resB != resP {
		t.Fatalf("results differ under tracing: %d vs %d", resB, resP)
	}

	// Per function: concatenation of regenerated paths == block sequence.
	perFuncBlocks := map[uint32][]cfg.BlockID{}
	for _, e := range blocks {
		perFuncBlocks[e.Func()] = append(perFuncBlocks[e.Func()], cfg.BlockID(e.Path()))
	}
	perFuncRegen := map[uint32][]cfg.BlockID{}
	for _, e := range paths {
		num := mp.Numbering(e.Func())
		seq, err := num.Regenerate(e.Path())
		if err != nil {
			t.Fatalf("regenerating %v: %v", e, err)
		}
		perFuncRegen[e.Func()] = append(perFuncRegen[e.Func()], seq...)
	}
	for fn, want := range perFuncBlocks {
		if !reflect.DeepEqual(perFuncRegen[fn], want) {
			t.Fatalf("function %d (%s): regenerated blocks differ\n got=%v\nwant=%v",
				fn, p.Funcs[fn].Name, perFuncRegen[fn], want)
		}
	}
	if len(paths) >= len(blocks) {
		t.Fatalf("path trace (%d events) should be shorter than block trace (%d)", len(paths), len(blocks))
	}
}

func TestTracingDoesNotChangeSemantics(t *testing.T) {
	srcs := []string{
		crossValidationSrc,
		"func main(n) { var s = 0; var i = 0; while i < n { s = s + i; i = i + 1; } return s; }",
	}
	for _, src := range srcs {
		p, err := wlc.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		want := run(t, src, 17)
		for _, mode := range []Mode{BlockTrace, PathTrace} {
			m, err := New(p, Config{Mode: mode, Sink: trace.SinkFunc(func(trace.Event) {})})
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Run("main", 17)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("mode %d: got %d, want %d", mode, got, want)
			}
		}
	}
}
