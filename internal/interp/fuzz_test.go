package interp

// Whole-pipeline randomized testing: generate random (but terminating,
// deterministic) WL programs, then check that every stage of the pipeline
// agrees with every other — plain vs traced vs optimized execution, block
// traces vs regenerated path traces, and grammar-based vs scan-based
// hot-subpath analysis.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/hotpath"
	"repro/internal/trace"
	"repro/internal/wl"
	"repro/internal/wlc"
	iwpp "repro/internal/wpp"
)

// progGen generates random WL source text. Programs terminate because
// every loop carries a bounded fuel counter, and are non-recursive
// because functions only call strictly earlier functions.
type progGen struct {
	rng *rand.Rand
	sb  strings.Builder
	// vars are readable; targets are also assignable. Loop fuel counters
	// are readable but never assignment targets, or random stores could
	// reset them and defeat the termination bound.
	vars    []string
	targets []string
	funcs   []string // previously generated function names (callable)
	arities map[string]int
	nextVar int
	depth   int
	inLoop  int
}

func (g *progGen) gen() string {
	g.arities = map[string]int{}
	numFuncs := 1 + g.rng.Intn(3)
	for i := 0; i < numFuncs; i++ {
		g.genFunc(fmt.Sprintf("fn%d", i))
	}
	// main calls everything through the usual entry point.
	g.vars = []string{"n"}
	g.targets = []string{"n"}
	g.nextVar = 0
	g.sb.WriteString("func main(n) {\n")
	g.sb.WriteString("  var acc = 0;\n")
	g.vars = append(g.vars, "acc")
	g.targets = append(g.targets, "acc")
	for _, fn := range g.funcs {
		args := make([]string, g.arities[fn])
		for i := range args {
			args[i] = g.expr(1)
		}
		fmt.Fprintf(&g.sb, "  acc = acc + %s(%s);\n", fn, strings.Join(args, ", "))
	}
	g.stmts(2 + g.rng.Intn(4))
	g.sb.WriteString("  return acc;\n}\n")
	return g.sb.String()
}

func (g *progGen) genFunc(name string) {
	arity := 1 + g.rng.Intn(3)
	params := make([]string, arity)
	for i := range params {
		params[i] = fmt.Sprintf("p%d", i)
	}
	g.vars = append([]string{}, params...)
	g.targets = append([]string{}, params...)
	g.nextVar = 0
	fmt.Fprintf(&g.sb, "func %s(%s) {\n", name, strings.Join(params, ", "))
	g.sb.WriteString("  var acc = 0;\n")
	g.vars = append(g.vars, "acc")
	g.targets = append(g.targets, "acc")
	g.stmts(2 + g.rng.Intn(5))
	g.sb.WriteString("  return acc;\n}\n")
	g.funcs = append(g.funcs, name)
	g.arities[name] = arity
}

func (g *progGen) freshVar() string {
	name := fmt.Sprintf("v%d", g.nextVar)
	g.nextVar++
	return name
}

func (g *progGen) pickVar() string {
	return g.vars[g.rng.Intn(len(g.vars))]
}

func (g *progGen) pickTarget() string {
	return g.targets[g.rng.Intn(len(g.targets))]
}

func (g *progGen) stmts(n int) {
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *progGen) stmt() {
	if g.depth > 3 {
		fmt.Fprintf(&g.sb, "  %s = %s;\n", g.pickTarget(), g.expr(2))
		return
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		v := g.freshVar()
		fmt.Fprintf(&g.sb, "  var %s = %s;\n", v, g.expr(2))
		g.vars = append(g.vars, v)
		g.targets = append(g.targets, v)
	case 2, 3, 4:
		fmt.Fprintf(&g.sb, "  %s = %s;\n", g.pickTarget(), g.expr(2))
	case 5, 6:
		g.depth++
		fmt.Fprintf(&g.sb, "  if %s {\n", g.expr(2))
		g.stmts(1 + g.rng.Intn(2))
		if g.rng.Intn(2) == 0 {
			g.sb.WriteString("  } else {\n")
			g.stmts(1 + g.rng.Intn(2))
		}
		g.sb.WriteString("  }\n")
		g.depth--
	case 7:
		// Fuel-bounded while loop.
		fuel := g.freshVar()
		bound := 1 + g.rng.Intn(12)
		fmt.Fprintf(&g.sb, "  var %s = 0;\n", fuel)
		g.vars = append(g.vars, fuel)
		g.depth++
		g.inLoop++
		fmt.Fprintf(&g.sb, "  while %s < %d && (%s) {\n", fuel, bound, g.expr(2))
		fmt.Fprintf(&g.sb, "    %s = %s + 1;\n", fuel, fuel)
		g.stmts(1 + g.rng.Intn(2))
		g.loopJump()
		g.sb.WriteString("  }\n")
		g.inLoop--
		g.depth--
	case 8:
		// Bounded for loop.
		iv := g.freshVar()
		bound := 1 + g.rng.Intn(10)
		g.depth++
		g.inLoop++
		fmt.Fprintf(&g.sb, "  for var %s = 0; %s < %d; %s = %s + 1 {\n", iv, iv, bound, iv, iv)
		g.vars = append(g.vars, iv)
		g.stmts(1 + g.rng.Intn(2))
		g.loopJump()
		g.sb.WriteString("  }\n")
		g.inLoop--
		g.depth--
	default:
		fmt.Fprintf(&g.sb, "  %s = %s;\n", g.pickTarget(), g.expr(3))
	}
}

// loopJump occasionally emits a guarded break or continue.
func (g *progGen) loopJump() {
	if g.inLoop == 0 || g.rng.Intn(4) != 0 {
		return
	}
	kw := "break"
	if g.rng.Intn(2) == 0 {
		kw = "continue"
	}
	fmt.Fprintf(&g.sb, "    if %s { %s; }\n", g.expr(1), kw)
}

var binOps = []string{"+", "-", "*", "<", "<=", ">", ">=", "==", "!=", "&", "|", "^"}

func (g *progGen) expr(depth int) string {
	if depth <= 0 {
		if g.rng.Intn(2) == 0 {
			return g.pickVar()
		}
		return fmt.Sprint(g.rng.Intn(64))
	}
	switch g.rng.Intn(12) {
	case 0, 1, 2, 3:
		op := binOps[g.rng.Intn(len(binOps))]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 4:
		// Division/remainder with a nonzero literal divisor.
		op := "/"
		if g.rng.Intn(2) == 0 {
			op = "%"
		}
		return fmt.Sprintf("(%s %s %d)", g.expr(depth-1), op, 1+g.rng.Intn(16))
	case 5:
		op := "&&"
		if g.rng.Intn(2) == 0 {
			op = "||"
		}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	case 6:
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("(!%s)", g.expr(depth-1))
		}
		return fmt.Sprintf("(-%s)", g.expr(depth-1))
	case 7:
		// Shift with a small literal count.
		op := "<<"
		if g.rng.Intn(2) == 0 {
			op = ">>"
		}
		return fmt.Sprintf("(%s %s %d)", g.expr(depth-1), op, g.rng.Intn(8))
	case 8:
		if len(g.funcs) > 0 {
			fn := g.funcs[g.rng.Intn(len(g.funcs))]
			args := make([]string, g.arities[fn])
			for i := range args {
				args[i] = g.expr(depth - 1)
			}
			return fmt.Sprintf("%s(%s)", fn, strings.Join(args, ", "))
		}
		return g.pickVar()
	default:
		if g.rng.Intn(2) == 0 {
			return g.pickVar()
		}
		return fmt.Sprint(g.rng.Intn(1000))
	}
}

func TestRandomProgramsPipelineConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		g := &progGen{rng: rng}
		src := g.gen()
		checkPipeline(t, trial, src)
	}
}

func checkPipeline(t *testing.T, trial int, src string) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("trial %d: %s\nprogram:\n%s", trial, fmt.Sprintf(format, args...), src)
	}
	prog, err := wlc.Compile(src)
	if err != nil {
		fail("compile: %v", err)
	}
	if err := prog.Verify(); err != nil {
		fail("IR verification: %v", err)
	}
	const arg = 17
	const budget = 20_000_000

	// Plain run.
	mPlain, err := New(prog, Config{MaxInstrs: budget})
	if err != nil {
		fail("new: %v", err)
	}
	want, err := mPlain.Run("main", arg)
	if err != nil {
		fail("plain run: %v", err)
	}

	// Block-traced run.
	var blocks []trace.Event
	mBlock, err := New(prog, Config{Mode: BlockTrace, MaxInstrs: budget, Sink: trace.SinkFunc(func(e trace.Event) { blocks = append(blocks, e) })})
	if err != nil {
		fail("new block: %v", err)
	}
	if got, err := mBlock.Run("main", arg); err != nil || got != want {
		fail("block-traced: got %d err %v, want %d", got, err, want)
	}

	// Path-traced run building a WPP online.
	var events []trace.Event
	var builder *iwpp.MonoBuilder
	mPath, err := New(prog, Config{Mode: PathTrace, MaxInstrs: budget, Sink: trace.SinkFunc(func(e trace.Event) {
		events = append(events, e)
		builder.Add(e)
	})})
	if err != nil {
		fail("new path: %v", err)
	}
	names := make([]string, len(prog.Funcs))
	for i, f := range prog.Funcs {
		names[i] = f.Name
	}
	builder = iwpp.NewMonoBuilder(names, mPath.Numberings())
	if got, err := mPath.Run("main", arg); err != nil || got != want {
		fail("path-traced: got %d err %v, want %d", got, err, want)
	}
	if mPath.Stats().Instructions != mPlain.Stats().Instructions {
		fail("instruction counts differ: %d vs %d", mPath.Stats().Instructions, mPlain.Stats().Instructions)
	}

	// Per-function block sequences must match path regeneration
	// (functions are non-recursive by construction).
	perFuncBlocks := map[uint32][]cfg.BlockID{}
	for _, e := range blocks {
		perFuncBlocks[e.Func()] = append(perFuncBlocks[e.Func()], cfg.BlockID(e.Path()))
	}
	perFuncRegen := map[uint32][]cfg.BlockID{}
	for _, e := range events {
		seq, err := mPath.Numbering(e.Func()).Regenerate(e.Path())
		if err != nil {
			fail("regenerate %v: %v", e, err)
		}
		perFuncRegen[e.Func()] = append(perFuncRegen[e.Func()], seq...)
	}
	for fn, wantSeq := range perFuncBlocks {
		if !reflect.DeepEqual(perFuncRegen[fn], wantSeq) {
			fail("function %s: regenerated blocks diverge", names[fn])
		}
	}

	// WPP round trip.
	w := builder.Finish(mPath.Stats().Instructions)
	if err := w.Verify(); err != nil {
		fail("wpp verify: %v", err)
	}
	var walked []trace.Event
	w.Walk(func(e trace.Event) bool { walked = append(walked, e); return true })
	if !reflect.DeepEqual(walked, events) {
		fail("wpp expansion diverges from raw events")
	}

	// Grammar analysis vs scan oracle.
	opts := hotpath.Options{MinLen: 2, MaxLen: 5, Threshold: 0.01}
	fast, err := hotpath.Find(w, opts)
	if err != nil {
		fail("find: %v", err)
	}
	slow, err := hotpath.FindByScan(w, opts)
	if err != nil {
		fail("scan: %v", err)
	}
	if !reflect.DeepEqual(fast, slow) {
		fail("hot subpath analyses disagree (%d vs %d)", len(fast), len(slow))
	}

	// Formatting round trip must preserve semantics.
	parsed, err := wl.Parse(src)
	if err != nil {
		fail("reparse: %v", err)
	}
	formatted := wl.Format(parsed)
	fProg, err := wlc.Compile(formatted)
	if err != nil {
		fail("compile of formatted source: %v\nformatted:\n%s", err, formatted)
	}
	mFmt, err := New(fProg, Config{MaxInstrs: budget})
	if err != nil {
		fail("new fmt: %v", err)
	}
	if got, err := mFmt.Run("main", arg); err != nil || got != want {
		fail("formatted source: got %d err %v, want %d", got, err, want)
	}

	// Optimized build must agree semantically.
	optProg, err := wlc.CompileWithOptions(src, wlc.Options{ConstFold: true})
	if err != nil {
		fail("optimized compile: %v", err)
	}
	if err := optProg.Verify(); err != nil {
		fail("optimized IR verification: %v", err)
	}
	mOpt, err := New(optProg, Config{MaxInstrs: budget})
	if err != nil {
		fail("new opt: %v", err)
	}
	if got, err := mOpt.Run("main", arg); err != nil || got != want {
		fail("optimized: got %d err %v, want %d", got, err, want)
	}
	// Folding occasionally pessimizes slightly: declarations rescued from
	// eliminated dead code run once per call even though the original
	// never executed them. Allow that bounded slack but catch real
	// regressions.
	slack := 4 * mOpt.Stats().Calls
	if mOpt.Stats().Instructions > mPlain.Stats().Instructions+slack {
		fail("optimized build executed more instructions: %d vs %d (+%d slack)",
			mOpt.Stats().Instructions, mPlain.Stats().Instructions, slack)
	}
}
