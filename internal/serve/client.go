package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/trace"
)

// StatusError is a non-2xx daemon response, carrying the protocol status
// and the server's error message.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// IsStatus reports whether err is a StatusError with the given code.
func IsStatus(err error, code int) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == code
}

// Client speaks the daemon protocol. The zero HTTP client is replaced by
// http.DefaultClient.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8324"
	HTTP *http.Client
}

// NewClient returns a Client for a daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses become *StatusError.
func (c *Client) do(method, path string, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) //nolint:errcheck // best-effort message
		return &StatusError{Code: resp.StatusCode, Msg: eb.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) doJSON(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	return c.do(method, path, "application/json", body, out)
}

// Open opens a session.
func (c *Client) Open(req OpenRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.doJSON("POST", "/v1/sessions", req, &info)
	return info, err
}

// EncodeFrame renders events as one WPT1 wire frame — the body of an
// ingest POST.
func EncodeFrame(events []trace.Event) []byte {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		panic(err) // writes to a bytes.Buffer cannot fail
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// Ingest streams one frame of events into the session.
func (c *Client) Ingest(id string, events []trace.Event) (IngestResult, error) {
	return c.IngestRaw(id, EncodeFrame(events))
}

// IngestRaw posts raw bytes as an events frame. Fault-injecting tests use
// it to send malformed and truncated frames.
func (c *Client) IngestRaw(id string, frame []byte) (IngestResult, error) {
	var res IngestResult
	err := c.do("POST", "/v1/sessions/"+url.PathEscape(id)+"/events",
		"application/octet-stream", bytes.NewReader(frame), &res)
	return res, err
}

// Seal finalizes the session with the traced run's instruction total.
func (c *Client) Seal(id string, instructions uint64) (SealResult, error) {
	var res SealResult
	err := c.doJSON("POST", "/v1/sessions/"+url.PathEscape(id)+"/seal",
		SealRequest{Instructions: instructions}, &res)
	return res, err
}

// HotQuery parameterizes a /hot request; zero fields use server defaults.
type HotQuery struct {
	K         int
	MinLen    int
	MaxLen    int
	Threshold float64
}

// Hot runs a hot-subpath query (live on open monolithic sessions, exact
// on sealed ones).
func (c *Client) Hot(id string, q HotQuery) (HotResult, error) {
	v := url.Values{}
	if q.K != 0 {
		v.Set("k", strconv.Itoa(q.K))
	}
	if q.MinLen != 0 {
		v.Set("min", strconv.Itoa(q.MinLen))
	}
	if q.MaxLen != 0 {
		v.Set("max", strconv.Itoa(q.MaxLen))
	}
	if q.Threshold != 0 {
		v.Set("threshold", strconv.FormatFloat(q.Threshold, 'g', -1, 64))
	}
	path := "/v1/sessions/" + url.PathEscape(id) + "/hot"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var res HotResult
	err := c.do("GET", path, "", nil, &res)
	return res, err
}

// Artifact downloads the sealed artifact bytes.
func (c *Client) Artifact(id string) ([]byte, error) {
	req, err := http.NewRequest("GET", c.Base+"/v1/sessions/"+url.PathEscape(id)+"/artifact", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) //nolint:errcheck // best-effort message
		return nil, &StatusError{Code: resp.StatusCode, Msg: eb.Error}
	}
	return io.ReadAll(resp.Body)
}

// Evict removes the session.
func (c *Client) Evict(id string) error {
	return c.do("DELETE", "/v1/sessions/"+url.PathEscape(id), "", nil, nil)
}

// Info fetches one session's state.
func (c *Client) Info(id string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do("GET", "/v1/sessions/"+url.PathEscape(id), "", nil, &info)
	return info, err
}

// List fetches the resident-session table.
func (c *Client) List() (ListResult, error) {
	var res ListResult
	err := c.do("GET", "/v1/sessions", "", nil, &res)
	return res, err
}

// Health fetches /healthz.
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.do("GET", "/healthz", "", nil, &h)
	return h, err
}
