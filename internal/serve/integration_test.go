package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/hotpath"
	"repro/internal/obsv"
	"repro/internal/trace"
	"repro/internal/workloads"
	iwpp "repro/internal/wpp"
)

// newTestServer builds a daemon on an httptest listener with the given
// config and returns a client for it.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, NewClient(ts.URL)
}

// captures memoizes workload runs across tests (the interpreter run is
// the expensive part, not the protocol).
var captureCache = map[string]*experiments.Capture{}

func capture(t *testing.T, name string) *experiments.Capture {
	t.Helper()
	if c, ok := captureCache[name]; ok {
		return c
	}
	c, err := experiments.CaptureWorkload(name, experiments.Small)
	if err != nil {
		t.Fatalf("capturing %s: %v", name, err)
	}
	captureCache[name] = c
	return c
}

// localBuild is the batch-pipeline reference: the bytes `wppbuild
// -workload` would write for the same capture and options.
func localBuild(t *testing.T, c *experiments.Capture, chunk uint64, format uint8) []byte {
	t.Helper()
	b := iwpp.New(c.Names, c.Nums, iwpp.BuildOptions{ChunkSize: chunk})
	b.AddBatch(c.Events)
	a := b.Finish(c.Instructions)
	iwpp.SetVersion(a, format)
	var buf bytes.Buffer
	if _, err := a.Encode(&buf); err != nil {
		t.Fatalf("encoding reference artifact: %v", err)
	}
	return buf.Bytes()
}

// stream pushes a capture through an open session in frames of batch
// events.
func stream(t *testing.T, c *Client, id string, events []trace.Event, batch int) {
	t.Helper()
	for off := 0; off < len(events); off += batch {
		end := min(off+batch, len(events))
		if _, err := c.Ingest(id, events[off:end]); err != nil {
			t.Fatalf("ingest frame at %d: %v", off, err)
		}
	}
}

// TestStreamedArtifactMatchesBatch is the core byte-identity guarantee:
// for every bundled workload, a session streamed over HTTP in frames
// seals to exactly the bytes the batch pipeline produces — same grammar,
// same costs, same encoding — for both build strategies and both
// formats.
func TestStreamedArtifactMatchesBatch(t *testing.T) {
	_, c := newTestServer(t, Config{})
	variants := []struct {
		name   string
		chunk  uint64
		format string
		fv     uint8
		batch  int
	}{
		{"mono-wpp1", 0, "", iwpp.FormatV1, 4096},
		{"mono-wpp2", 0, "wpp2", iwpp.FormatV2, 513},
		{"chunked-wpp1", 8192, "", iwpp.FormatV1, 1000},
	}
	for _, w := range workloads.All {
		cap := capture(t, w.Name)
		for _, v := range variants {
			t.Run(w.Name+"/"+v.name, func(t *testing.T) {
				want := localBuild(t, cap, v.chunk, v.fv)
				info, err := c.Open(OpenRequest{Workload: w.Name, Chunk: v.chunk, Format: v.format})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				stream(t, c, info.ID, cap.Events, v.batch)
				res, err := c.Seal(info.ID, cap.Instructions)
				if err != nil {
					t.Fatalf("seal: %v", err)
				}
				if res.Events != uint64(len(cap.Events)) {
					t.Errorf("sealed %d events, streamed %d", res.Events, len(cap.Events))
				}
				sum := sha256.Sum256(want)
				if got := hex.EncodeToString(sum[:]); res.SHA256 != got {
					t.Errorf("seal SHA %s, local build %s", res.SHA256, got)
				}
				got, err := c.Artifact(info.ID)
				if err != nil {
					t.Fatalf("artifact: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("artifact differs from batch build: %d vs %d bytes", len(got), len(want))
				}
				if err := c.Evict(info.ID); err != nil {
					t.Fatalf("evict: %v", err)
				}
			})
		}
	}
}

// hotOptions mirrors wpphot's defaults so /hot comparisons are
// apples-to-apples.
var hotOptions = hotpath.Options{MinLen: 4, MaxLen: 16, Threshold: 0.001}

// TestSealedHotMatchesWpphot checks the sealed /hot endpoint returns
// exactly what wpphot computes on the artifact file: same subpaths, same
// order, same counts, costs, and fractions.
func TestSealedHotMatchesWpphot(t *testing.T) {
	_, c := newTestServer(t, Config{})
	for _, name := range []string{"matrix", "compress", "queens"} {
		t.Run(name, func(t *testing.T) {
			cap := capture(t, name)
			info, err := c.Open(OpenRequest{Workload: name})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			stream(t, c, info.ID, cap.Events, 4096)
			if _, err := c.Seal(info.ID, cap.Instructions); err != nil {
				t.Fatalf("seal: %v", err)
			}

			// What wpphot computes: decode the artifact, run hotpath.Find.
			enc, err := c.Artifact(info.ID)
			if err != nil {
				t.Fatalf("artifact: %v", err)
			}
			a, err := iwpp.DecodeArtifact(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("decoding artifact: %v", err)
			}
			want, err := hotpath.Find(a.(*iwpp.WPP), hotOptions)
			if err != nil {
				t.Fatalf("hotpath.Find: %v", err)
			}

			got, err := c.Hot(info.ID, HotQuery{
				K: -1, MinLen: hotOptions.MinLen, MaxLen: hotOptions.MaxLen, Threshold: hotOptions.Threshold,
			})
			if err != nil {
				t.Fatalf("hot: %v", err)
			}
			if !got.Sealed {
				t.Errorf("query after seal reported live")
			}
			if len(got.Subpaths) != len(want) {
				t.Fatalf("server returned %d subpaths, wpphot %d", len(got.Subpaths), len(want))
			}
			for i, ws := range want {
				gs := got.Subpaths[i]
				if gs.Count != ws.Count || gs.Cost != ws.Cost || gs.Fraction != ws.Fraction {
					t.Errorf("subpath %d: got (%d,%d,%g) want (%d,%d,%g)",
						i, gs.Count, gs.Cost, gs.Fraction, ws.Count, ws.Cost, ws.Fraction)
				}
				if len(gs.Raw) != len(ws.Events) {
					t.Fatalf("subpath %d: got %d events want %d", i, len(gs.Raw), len(ws.Events))
				}
				for j, e := range ws.Events {
					if gs.Raw[j] != uint64(e) {
						t.Errorf("subpath %d event %d: got %d want %d", i, j, gs.Raw[j], uint64(e))
					}
				}
			}
		})
	}
}

// TestLiveHotMatchesPrefixBuild checks mid-stream /hot equals running the
// analysis on a batch build of exactly the streamed prefix.
func TestLiveHotMatchesPrefixBuild(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cap := capture(t, "matrix")
	info, err := c.Open(OpenRequest{Workload: "matrix"})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cut := len(cap.Events) / 2
	stream(t, c, info.ID, cap.Events[:cut], 4096)

	got, err := c.Hot(info.ID, HotQuery{K: -1, MinLen: 4, MaxLen: 16, Threshold: 0.001})
	if err != nil {
		t.Fatalf("live hot: %v", err)
	}
	if got.Sealed {
		t.Errorf("mid-stream query reported sealed")
	}
	if got.Events != uint64(cut) {
		t.Errorf("live snapshot covers %d events, streamed %d", got.Events, cut)
	}

	// Reference: a local mono build of the same prefix, analyzed with the
	// same live denominator (total path cost, since no instruction count
	// exists before seal).
	b := iwpp.NewMonoBuilder(cap.Names, cap.Nums)
	b.AddBatch(cap.Events[:cut])
	ref := b.SnapshotWPP()
	want, err := hotpath.Find(ref, hotpath.Options{MinLen: 4, MaxLen: 16, Threshold: 0.001})
	if err != nil {
		t.Fatalf("hotpath.Find on prefix: %v", err)
	}
	if len(got.Subpaths) != len(want) {
		t.Fatalf("live query returned %d subpaths, prefix build %d", len(got.Subpaths), len(want))
	}
	for i, ws := range want {
		gs := got.Subpaths[i]
		if gs.Count != ws.Count || gs.Cost != ws.Cost || gs.Fraction != ws.Fraction {
			t.Errorf("subpath %d: got (%d,%d,%g) want (%d,%d,%g)",
				i, gs.Count, gs.Cost, gs.Fraction, ws.Count, ws.Cost, ws.Fraction)
		}
	}

	// The session must still seal to the full-trace artifact afterwards:
	// live snapshots are reads, not forks.
	stream(t, c, info.ID, cap.Events[cut:], 4096)
	res, err := c.Seal(info.ID, cap.Instructions)
	if err != nil {
		t.Fatalf("seal after live query: %v", err)
	}
	sum := sha256.Sum256(localBuild(t, cap, 0, iwpp.FormatV1))
	if want := hex.EncodeToString(sum[:]); res.SHA256 != want {
		t.Errorf("artifact diverged after live query: %s vs %s", res.SHA256, want)
	}
}

// TestAnonymousSessionMatchesTraceBuild streams raw events with no
// workload binding and checks the artifact equals `wppbuild -trace` on
// the same stream (synthetic f0..fN names, unit costs).
func TestAnonymousSessionMatchesTraceBuild(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cap := capture(t, "sort")
	info, err := c.Open(OpenRequest{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	stream(t, c, info.ID, cap.Events, 2048)
	res, err := c.Seal(info.ID, 0)
	if err != nil {
		t.Fatalf("seal: %v", err)
	}

	// wppbuild -trace: anonymous builder, synthetic names from max seen ID.
	var maxFn uint32
	for _, e := range cap.Events {
		if e.Func() > maxFn {
			maxFn = e.Func()
		}
	}
	b := iwpp.New(nil, nil, iwpp.BuildOptions{})
	b.AddBatch(cap.Events)
	a := b.Finish(0)
	names := make([]iwpp.FuncInfo, maxFn+1)
	for i := range names {
		names[i] = iwpp.FuncInfo{Name: fmt.Sprintf("f%d", i)}
	}
	a.(*iwpp.WPP).Funcs = names
	var buf bytes.Buffer
	if _, err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if want := hex.EncodeToString(sum[:]); res.SHA256 != want {
		t.Errorf("anonymous artifact %s, trace build %s", res.SHA256, want)
	}
}

// TestProtocolStatusCodes pins the error surface: each failure mode maps
// to its documented status.
func TestProtocolStatusCodes(t *testing.T) {
	reg := obsv.NewRegistry()
	met := NewMetrics(reg)
	_, c := newTestServer(t, Config{
		MaxSessions:  2,
		SessionQuota: 100,
		MaxBodyBytes: 2048,
		Metrics:      met,
	})
	cap := capture(t, "matrix")

	wantStatus := func(t *testing.T, err error, code int) {
		t.Helper()
		if !IsStatus(err, code) {
			t.Fatalf("got %v, want status %d", err, code)
		}
	}

	t.Run("unknown session 404", func(t *testing.T) {
		_, err := c.Ingest("s-999999", cap.Events[:1])
		wantStatus(t, err, http.StatusNotFound)
		_, err = c.Hot("nope", HotQuery{})
		wantStatus(t, err, http.StatusNotFound)
	})

	t.Run("unknown workload 400", func(t *testing.T) {
		_, err := c.Open(OpenRequest{Workload: "no-such-workload"})
		wantStatus(t, err, http.StatusBadRequest)
	})

	t.Run("bad format 400", func(t *testing.T) {
		_, err := c.Open(OpenRequest{Format: "wpp9"})
		wantStatus(t, err, http.StatusBadRequest)
	})

	info, err := c.Open(OpenRequest{Workload: "matrix"})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	id := info.ID

	t.Run("malformed frame 400", func(t *testing.T) {
		// An event with a high function ID encodes as a multi-byte varint,
		// so cutting its frame two bytes in is guaranteed mid-varint.
		wide, werr := trace.NewEvent(7, 0)
		if werr != nil {
			t.Fatal(werr)
		}
		for _, frame := range [][]byte{
			[]byte("WPPX junk"),                      // wrong magic
			[]byte("WP"),                             // magic cut short
			EncodeFrame([]trace.Event{wide})[:6],     // event cut mid-varint
			append([]byte("WPT1"), 0xff, 0xff, 0xff), // truncated varint tail
		} {
			_, err := c.IngestRaw(id, frame)
			wantStatus(t, err, http.StatusBadRequest)
		}
		// Event outside the workload's numbering universe: in-range for
		// the wire format, but no such function in the session's program.
		alien, aerr := trace.NewEvent(1000, 5)
		if aerr != nil {
			t.Fatal(aerr)
		}
		_, err := c.Ingest(id, []trace.Event{alien})
		wantStatus(t, err, http.StatusBadRequest)
		// The session is untouched by any of it.
		got, err := c.Info(id)
		if err != nil || got.Events != 0 {
			t.Fatalf("session dirtied by rejected frames: %+v, %v", got, err)
		}
	})

	t.Run("oversized frame 413", func(t *testing.T) {
		_, err := c.Ingest(id, cap.Events[:1000]) // >256 bytes encoded
		wantStatus(t, err, http.StatusRequestEntityTooLarge)
	})

	t.Run("quota 429", func(t *testing.T) {
		if _, err := c.Ingest(id, cap.Events[:80]); err != nil {
			t.Fatalf("first frame within quota: %v", err)
		}
		_, err := c.Ingest(id, cap.Events[80:130]) // would hit 130 > 100
		wantStatus(t, err, http.StatusTooManyRequests)
		got, _ := c.Info(id)
		if got.Events != 80 {
			t.Fatalf("quota rejection was not transactional: %d events", got.Events)
		}
	})

	t.Run("artifact before seal 409", func(t *testing.T) {
		_, err := c.Artifact(id)
		wantStatus(t, err, http.StatusConflict)
	})

	t.Run("session table full 503", func(t *testing.T) {
		info2, err := c.Open(OpenRequest{})
		if err != nil {
			t.Fatalf("second open: %v", err)
		}
		_, err = c.Open(OpenRequest{})
		wantStatus(t, err, http.StatusServiceUnavailable)
		if err := c.Evict(info2.ID); err != nil {
			t.Fatalf("evict: %v", err)
		}
	})

	t.Run("double seal 409", func(t *testing.T) {
		if _, err := c.Seal(id, 0); err != nil {
			t.Fatalf("seal: %v", err)
		}
		_, err := c.Seal(id, 0)
		wantStatus(t, err, http.StatusConflict)
	})

	t.Run("ingest after seal 409", func(t *testing.T) {
		_, err := c.Ingest(id, cap.Events[:1])
		wantStatus(t, err, http.StatusConflict)
	})

	t.Run("evicted 404 on lookup", func(t *testing.T) {
		if err := c.Evict(id); err != nil {
			t.Fatalf("evict: %v", err)
		}
		_, err := c.Ingest(id, cap.Events[:1])
		wantStatus(t, err, http.StatusNotFound)
	})

	if n := met.IngestErrors.Value(); n == 0 {
		t.Errorf("rejected frames not counted: IngestErrors = 0")
	}
}

// TestChunkedLiveQueryConflicts pins the documented live-query policy:
// chunked sessions answer 409 while open and exactly after seal.
func TestChunkedLiveQueryConflicts(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cap := capture(t, "matrix")
	info, err := c.Open(OpenRequest{Workload: "matrix", Chunk: 4096})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	stream(t, c, info.ID, cap.Events[:8192], 4096)
	if _, err := c.Hot(info.ID, HotQuery{}); !IsStatus(err, http.StatusConflict) {
		t.Fatalf("live query on chunked session: got %v, want 409", err)
	}
	stream(t, c, info.ID, cap.Events[8192:], 4096)
	if _, err := c.Seal(info.ID, cap.Instructions); err != nil {
		t.Fatalf("seal: %v", err)
	}
	res, err := c.Hot(info.ID, HotQuery{K: 5})
	if err != nil {
		t.Fatalf("sealed hot on chunked artifact: %v", err)
	}
	if !res.Sealed {
		t.Errorf("sealed chunked query reported live")
	}
}

// TestIdleEviction drives the janitor with an injected clock: idle
// sessions are evicted at the deadline, active ones survive, and evicted
// IDs answer 404 afterwards.
func TestIdleEviction(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	reg := obsv.NewRegistry()
	met := NewMetrics(reg)
	srv, c := newTestServer(t, Config{
		IdleTimeout: time.Minute,
		SweepEvery:  time.Hour, // janitor ticker irrelevant; we call Sweep
		Metrics:     met,
		Now:         now,
	})
	cap := capture(t, "matrix")

	idle, err := c.Open(OpenRequest{Workload: "matrix"})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := c.Open(OpenRequest{Workload: "matrix"})
	if err != nil {
		t.Fatal(err)
	}

	clock = clock.Add(45 * time.Second)
	if _, err := c.Ingest(busy.ID, cap.Events[:100]); err != nil {
		t.Fatalf("keepalive ingest: %v", err)
	}
	if n := srv.Sweep(); n != 0 {
		t.Fatalf("sweep before deadline evicted %d sessions", n)
	}

	clock = clock.Add(30 * time.Second) // idle at 75s, busy at 30s
	if n := srv.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if _, err := c.Info(idle.ID); !IsStatus(err, http.StatusNotFound) {
		t.Errorf("idle session still resident: %v", err)
	}
	if _, err := c.Ingest(busy.ID, cap.Events[100:200]); err != nil {
		t.Errorf("busy session evicted: %v", err)
	}
	if met.SessionsEvicted.Value() != 1 {
		t.Errorf("SessionsEvicted = %d, want 1", met.SessionsEvicted.Value())
	}
	if g := met.SessionsOpen.Value(); g != 1 {
		t.Errorf("SessionsOpen gauge = %d, want 1", g)
	}
}

// TestMetricsFlow checks the observability surface moves with traffic.
func TestMetricsFlow(t *testing.T) {
	reg := obsv.NewRegistry()
	met := NewMetrics(reg)
	_, c := newTestServer(t, Config{Metrics: met})
	cap := capture(t, "matrix")

	info, err := c.Open(OpenRequest{Workload: "matrix"})
	if err != nil {
		t.Fatal(err)
	}
	stream(t, c, info.ID, cap.Events, 8192)
	if _, err := c.Hot(info.ID, HotQuery{K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Seal(info.ID, cap.Instructions); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.Counters["serve_events_ingested_total"]; got != uint64(len(cap.Events)) {
		t.Errorf("events_ingested = %d, want %d", got, len(cap.Events))
	}
	if s.Counters["serve_sessions_opened_total"] != 1 || s.Counters["serve_sessions_sealed_total"] != 1 {
		t.Errorf("session lifecycle counters wrong: %+v", s.Counters)
	}
	if s.Counters["serve_hot_queries_total"] != 1 {
		t.Errorf("hot_queries = %d, want 1", s.Counters["serve_hot_queries_total"])
	}
	if s.Counters["serve_artifact_bytes_total"] == 0 {
		t.Errorf("artifact_bytes stayed 0 after seal")
	}
	if s.Histograms["serve_ingest_seconds"].Count == 0 {
		t.Errorf("ingest latency histogram empty")
	}
}
