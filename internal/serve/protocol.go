// Package serve turns the batch WPP pipeline into a long-lived
// trace-ingestion daemon: many concurrent tracers each open a session,
// stream WPT1-encoded path events into a per-session wpp.Builder, query
// hot subpaths against the still-growing grammar, and seal the session
// into the same artifact bytes the batch tools produce.
//
// The wire protocol is plain HTTP + JSON, with event payloads in the raw
// trace encoding (magic "WPT1" followed by one uvarint per event — the
// same bytes wpptrace writes):
//
//	POST   /v1/sessions                  open a session
//	GET    /v1/sessions                  list resident sessions
//	GET    /v1/sessions/{id}             one session's state
//	POST   /v1/sessions/{id}/events      ingest one WPT1 batch frame
//	POST   /v1/sessions/{id}/seal        finalize; builds the artifact
//	GET    /v1/sessions/{id}/hot         hot-subpath query (live or sealed)
//	GET    /v1/sessions/{id}/artifact    sealed artifact bytes
//	DELETE /v1/sessions/{id}             evict the session
//	GET    /healthz                      liveness + session count
//
// Every error response is JSON {"error": "..."} with a meaningful status:
// 400 malformed events, 404 unknown session, 409 lifecycle conflicts
// (double seal, artifact before seal), 410 evicted mid-request, 413
// oversized frame, 429 per-session quota, 503 shed load (session table or
// ingest queue full).
package serve

// OpenRequest opens a session. All fields are optional: the zero value
// opens an anonymous monolithic session (no numberings, every path costs
// one — the streaming analog of `wppbuild -trace`). Naming a bundled
// workload compiles it server-side so the session carries the same
// function table and Ball–Larus numberings a local `wppbuild -workload`
// build would use; sealed artifacts are then byte-identical to the batch
// tool's output for the same event stream.
type OpenRequest struct {
	Workload string `json:"workload,omitempty"`
	// Scale is recorded for operators and echoed back; the server does
	// not need it (numberings depend only on the program).
	Scale string `json:"scale,omitempty"`
	// Chunk > 0 builds with the parallel chunked pipeline (WPC
	// artifacts); 0 builds one monolithic grammar, which also enables
	// live /hot queries.
	Chunk   uint64 `json:"chunk,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Format selects the on-disk encoding at seal: "wpp1" (default) or
	// "wpp2".
	Format string `json:"format,omitempty"`
}

// SessionInfo describes one resident session.
type SessionInfo struct {
	ID       string `json:"id"`
	State    string `json:"state"` // "open" or "sealed"
	Workload string `json:"workload,omitempty"`
	Scale    string `json:"scale,omitempty"`
	Chunk    uint64 `json:"chunk,omitempty"`
	Format   string `json:"format"`
	Events   uint64 `json:"events"`
}

// IngestResult acknowledges one events frame.
type IngestResult struct {
	// Accepted is the number of events in this frame (frames are
	// transactional: all events land or none do).
	Accepted uint64 `json:"accepted"`
	// Events is the session's running total.
	Events uint64 `json:"events"`
}

// SealRequest finalizes a session. Instructions is the executed
// IR-instruction total of the traced run; it is stored in the artifact
// header and becomes the denominator of hot-subpath fractions.
type SealRequest struct {
	Instructions uint64 `json:"instructions"`
}

// SealResult reports the sealed artifact.
type SealResult struct {
	Events        uint64 `json:"events"`
	DistinctPaths int    `json:"distinct_paths"`
	ArtifactBytes int64  `json:"artifact_bytes"`
	Format        string `json:"format"`
	// SHA256 is the hex digest of the artifact bytes, so remote clients
	// can assert byte-identity with a local build without downloading.
	SHA256 string `json:"sha256"`
}

// HotSubpath is one hot subpath in a HotResult, mirroring
// hotpath.Subpath with both rendered and raw event forms.
type HotSubpath struct {
	Events   []string `json:"events"` // rendered "func:path"
	Raw      []uint64 `json:"raw"`    // packed trace.Event values
	Count    uint64   `json:"count"`
	Cost     uint64   `json:"cost"`
	Fraction float64  `json:"fraction"`
}

// HotResult answers a hot-subpath query.
type HotResult struct {
	// Sealed reports whether the query ran against the sealed artifact
	// (exact, wpphot-identical) or a live snapshot of the growing
	// grammar.
	Sealed bool `json:"sealed"`
	// Events is the number of trace events covered by the answer.
	Events uint64 `json:"events"`
	// TotalCost is the fraction denominator: the client-supplied
	// instruction total once sealed, the cost-weighted trace length while
	// live.
	TotalCost uint64       `json:"total_cost"`
	Subpaths  []HotSubpath `json:"subpaths"`
}

// ListResult lists resident sessions.
type ListResult struct {
	Sessions []SessionInfo `json:"sessions"`
}

// Health is the /healthz body.
type Health struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}
