package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/bl"
	"repro/internal/hotpath"
	"repro/internal/interp"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/workloads"
	iwpp "repro/internal/wpp"
)

// Config tunes the daemon's resource policies. The zero value is usable;
// every limit has a production-shaped default.
type Config struct {
	// MaxSessions bounds resident sessions (open + sealed). Opens beyond
	// it shed load with 503. Default 1024.
	MaxSessions int
	// SessionQuota bounds events per session; frames that would exceed
	// it are refused with 429. 0 = unlimited.
	SessionQuota uint64
	// MaxBodyBytes bounds one events frame; larger bodies get 413.
	// Default 8 MiB (~1M varint events).
	MaxBodyBytes int64
	// MaxInflight bounds concurrently buffered ingest frames server-wide
	// — the daemon's peak ingest memory is MaxInflight*MaxBodyBytes
	// regardless of client count; excess frames get 503. Default
	// 2*GOMAXPROCS.
	MaxInflight int
	// IdleTimeout evicts sessions (open or sealed) with no activity for
	// this long. 0 disables idle eviction.
	IdleTimeout time.Duration
	// SweepEvery is the janitor period; default 5s (only meaningful with
	// IdleTimeout > 0).
	SweepEvery time.Duration
	// Dir, when set, persists every sealed artifact as Dir/<id>.wpp.
	Dir string
	// Store, when set, records every sealed artifact in the
	// content-addressed store (chunk grammars dedup across sessions),
	// switches sealed-session /artifact delivery to chunk-at-a-time
	// streaming from the store, and enables GET /v1/artifacts/{hash}.
	Store *store.Store
	// Metrics instruments the daemon; nil runs uninstrumented.
	Metrics *Metrics
	// Now is the clock (tests inject a fake); nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sessionProgram caches one bundled workload's compilation: sessions
// opened on the same workload share the function table and Ball–Larus
// numberings (all immutable after construction, so sharing is safe).
type sessionProgram struct {
	names    []string
	nums     []*bl.Numbering
	numPaths []uint64 // per-function path counts for ingest validation
}

// Server is the trace-ingestion daemon: an http.Handler plus the session
// table, backpressure machinery, and the idle-eviction janitor.
type Server struct {
	cfg Config
	met *Metrics

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	closed   bool

	compileMu sync.Mutex
	compiled  map[string]*sessionProgram

	ingestSem chan struct{}

	janitorStop chan struct{}
	janitorDone chan struct{}
	closeOnce   sync.Once
}

// New returns a running Server (its janitor goroutine is live when idle
// eviction is configured). Close releases everything.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		met:         cfg.Metrics.orNoop(),
		sessions:    map[string]*session{},
		compiled:    map[string]*sessionProgram{},
		ingestSem:   make(chan struct{}, cfg.MaxInflight),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go s.janitor()
	return s
}

// Close stops the janitor and evicts every resident session, draining
// their builders. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.janitorStop)
		<-s.janitorDone
		s.mu.Lock()
		s.closed = true
		all := make([]*session, 0, len(s.sessions))
		for _, ss := range s.sessions {
			all = append(all, ss)
		}
		s.sessions = map[string]*session{}
		s.mu.Unlock()
		for _, ss := range all {
			if ss.evict() {
				s.met.SessionsEvicted.Inc()
				s.met.SessionsOpen.Add(-1)
			}
		}
	})
}

// janitor periodically evicts idle sessions and samples the heap gauge.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

// Sweep runs one janitor pass: evict sessions idle past the deadline and
// refresh the heap gauge. Exposed so tests (and operators via SIGQUIT
// handlers, if they wish) can force a deterministic pass.
func (s *Server) Sweep() int {
	now := s.cfg.Now()
	var victims []*session
	s.mu.Lock()
	for id, ss := range s.sessions {
		if s.cfg.IdleTimeout > 0 && ss.idle(now) > s.cfg.IdleTimeout {
			delete(s.sessions, id)
			victims = append(victims, ss)
		}
	}
	s.mu.Unlock()
	for _, ss := range victims {
		if ss.evict() {
			s.met.SessionsEvicted.Inc()
			s.met.SessionsOpen.Add(-1)
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.met.HeapBytes.Set(int64(ms.HeapAlloc))
	return len(victims)
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleOpen)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/sessions/{id}/seal", s.handleSeal)
	mux.HandleFunc("GET /v1/sessions/{id}/hot", s.handleHot)
	mux.HandleFunc("GET /v1/sessions/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /v1/artifacts/{hash}", s.handleStoredArtifact)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleEvict)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone = nothing to do
}

func writeErr(w http.ResponseWriter, err *apiError) {
	writeJSON(w, err.status, errorBody{Error: err.msg})
}

func (s *Server) lookup(r *http.Request) (*session, *apiError) {
	id := r.PathValue("id")
	s.mu.Lock()
	ss := s.sessions[id]
	s.mu.Unlock()
	if ss == nil {
		return nil, errf(http.StatusNotFound, "no session %q", id)
	}
	return ss, nil
}

// openProgram compiles a bundled workload once and caches its session
// view; the numberings are shared by every session on that workload.
func (s *Server) openProgram(name string) (*sessionProgram, *apiError) {
	s.compileMu.Lock()
	defer s.compileMu.Unlock()
	if p, ok := s.compiled[name]; ok {
		return p, nil
	}
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	prog, err := wlc.Compile(w.Source)
	if err != nil {
		return nil, errf(http.StatusInternalServerError, "compiling %s: %v", name, err)
	}
	m, err := interp.New(prog, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(trace.Event) {})})
	if err != nil {
		return nil, errf(http.StatusInternalServerError, "numbering %s: %v", name, err)
	}
	names := make([]string, len(prog.Funcs))
	for i, f := range prog.Funcs {
		names[i] = f.Name
	}
	nums := m.Numberings()
	p := &sessionProgram{names: names, nums: nums, numPaths: numPathsOf(nums)}
	s.compiled[name] = p
	return p, nil
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeErr(w, errf(http.StatusBadRequest, "parsing open request: %v", err))
			return
		}
	}
	var format uint8 = iwpp.FormatV1
	switch req.Format {
	case "", "wpp1":
	case "wpp2":
		format = iwpp.FormatV2
	default:
		writeErr(w, errf(http.StatusBadRequest, "unknown format %q (want wpp1 or wpp2)", req.Format))
		return
	}

	var names []string
	var numPaths []uint64
	var nums []*bl.Numbering
	if req.Workload != "" {
		p, aerr := s.openProgram(req.Workload)
		if aerr != nil {
			writeErr(w, aerr)
			return
		}
		names, nums, numPaths = p.names, p.nums, p.numPaths
	}

	builder := iwpp.New(names, nums, iwpp.BuildOptions{
		ChunkSize: req.Chunk,
		Workers:   req.Workers,
		Metrics:   s.met.Build,
	})
	ss := &session{
		workload: req.Workload,
		scale:    req.Scale,
		chunk:    req.Chunk,
		workers:  req.Workers,
		format:   format,
		quota:    s.cfg.SessionQuota,
		numPaths: numPaths,
		builder:  builder,
	}
	ss.touch(s.cfg.Now())

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		builder.Finish(0)
		writeErr(w, errf(http.StatusServiceUnavailable, "server shutting down"))
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		builder.Finish(0) // drain the pipeline we just created
		writeErr(w, errf(http.StatusServiceUnavailable,
			"session table full (%d resident); retry later or evict", s.cfg.MaxSessions))
		return
	}
	s.nextID++
	ss.id = fmt.Sprintf("s-%06d", s.nextID)
	s.sessions[ss.id] = ss
	s.mu.Unlock()

	s.met.SessionsOpened.Inc()
	s.met.SessionsOpen.Add(1)
	writeJSON(w, http.StatusCreated, ss.info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	all := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		all = append(all, ss)
	}
	s.mu.Unlock()
	res := ListResult{Sessions: make([]SessionInfo, 0, len(all))}
	for _, ss := range all {
		res.Sessions = append(res.Sessions, ss.info())
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	ss, aerr := s.lookup(r)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, ss.info())
}

// eventBufPool recycles decode buffers across ingest frames.
var eventBufPool = sync.Pool{
	New: func() any {
		b := make([]trace.Event, 0, 16384)
		return &b
	},
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	// Bounded ingest queue: admission is a non-blocking semaphore
	// acquire, so when every slot holds an in-flight frame the server
	// sheds load with 503 instead of buffering without bound.
	select {
	case s.ingestSem <- struct{}{}:
	default:
		s.met.IngestRejected.Inc()
		writeErr(w, errf(http.StatusServiceUnavailable,
			"ingest queue full (%d frames in flight)", s.cfg.MaxInflight))
		return
	}
	s.met.QueueDepth.Add(1)
	start := time.Now()
	defer func() {
		s.met.QueueDepth.Add(-1)
		<-s.ingestSem
		s.met.IngestLatency.Observe(time.Since(start))
	}()
	s.met.IngestRequests.Inc()

	ss, aerr := s.lookup(r)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}

	// Frames are transactional: decode and validate the whole body
	// before any event reaches the builder. A disconnect or malformed
	// tail therefore never leaves a half-applied frame behind.
	bufp := eventBufPool.Get().(*[]trace.Event)
	defer func() {
		*bufp = (*bufp)[:0]
		eventBufPool.Put(bufp)
	}()
	events, aerr := decodeFrame(w, r, s.cfg.MaxBodyBytes, ss.checkEvent, (*bufp)[:0])
	*bufp = events[:0]
	if aerr != nil {
		s.met.IngestErrors.Inc()
		writeErr(w, aerr)
		return
	}
	res, aerr := ss.ingest(events, s.cfg.Now())
	if aerr != nil {
		s.met.IngestErrors.Inc()
		writeErr(w, aerr)
		return
	}
	s.met.EventsIngested.Add(res.Accepted)
	writeJSON(w, http.StatusOK, res)
}

// decodeFrame reads one WPT1 frame from the request, mapping each
// failure mode to its protocol status: oversized body 413, bad magic /
// truncation / out-of-range events 400.
func decodeFrame(w http.ResponseWriter, r *http.Request, maxBytes int64, check func(trace.Event) error, buf []trace.Event) ([]trace.Event, *apiError) {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	src, err := trace.NewReaderSource(body)
	if err != nil {
		return nil, frameError(err)
	}
	var checkErr error
	_, err = src.Each(func(e trace.Event) bool {
		if checkErr = check(e); checkErr != nil {
			return false
		}
		buf = append(buf, e)
		return true
	})
	if err != nil {
		return nil, frameError(err)
	}
	if checkErr != nil {
		return nil, frameError(checkErr)
	}
	return buf, nil
}

func frameError(err error) *apiError {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return errf(http.StatusRequestEntityTooLarge, "frame exceeds %d bytes", tooBig.Limit)
	case errors.Is(err, trace.ErrBadMagic),
		errors.Is(err, trace.ErrTruncated),
		errors.Is(err, trace.ErrEventRange):
		return errf(http.StatusBadRequest, "%v", err)
	default:
		// Anything else while reading a client body (connection drop,
		// stray varint overflow) is still the client's frame failing,
		// not server state.
		return errf(http.StatusBadRequest, "reading frame: %v", err)
	}
}

func (s *Server) handleSeal(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ss, aerr := s.lookup(r)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	var req SealRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeErr(w, errf(http.StatusBadRequest, "parsing seal request: %v", err))
			return
		}
	}
	res, aerr := ss.seal(req, s.cfg.Now())
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	s.met.SessionsSealed.Inc()
	s.met.ArtifactBytes.Add(uint64(res.ArtifactBytes))
	s.met.SealLatency.Observe(time.Since(start))
	if s.cfg.Dir != "" {
		ss.mu.Lock()
		enc := ss.encoded
		ss.mu.Unlock()
		path := filepath.Join(s.cfg.Dir, ss.id+".wpp")
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			writeErr(w, errf(http.StatusInternalServerError, "persisting artifact: %v", err))
			return
		}
	}
	// Write-through to the content-addressed store, then drop the
	// resident encoding: /artifact streams from the store afterwards,
	// and identical chunk grammars from other sessions dedup.
	if s.cfg.Store != nil {
		if a, enc, ok := ss.sealedForStore(); ok {
			h, _, err := s.cfg.Store.PutArtifactEncoded(a, enc)
			if err != nil {
				writeErr(w, errf(http.StatusInternalServerError, "storing artifact: %v", err))
				return
			}
			if h.String() != res.SHA256 {
				// The store hash IS the seal digest by construction; a
				// mismatch means memory corruption, not client error.
				writeErr(w, errf(http.StatusInternalServerError,
					"store hash %s disagrees with seal digest %s", h, res.SHA256))
				return
			}
			ss.offload(s.cfg.Store, h)
		}
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHot(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ss, aerr := s.lookup(r)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	q := r.URL.Query()
	opts := hotpath.Options{MinLen: 4, MaxLen: 16, Threshold: 0.01}
	k := 20
	var perr *apiError
	getInt := func(name string, dst *int) {
		if v := q.Get(name); v != "" && perr == nil {
			n, err := strconv.Atoi(v)
			if err != nil {
				perr = errf(http.StatusBadRequest, "bad %s: %v", name, err)
				return
			}
			*dst = n
		}
	}
	getInt("min", &opts.MinLen)
	getInt("max", &opts.MaxLen)
	getInt("k", &k)
	if v := q.Get("threshold"); v != "" && perr == nil {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			perr = errf(http.StatusBadRequest, "bad threshold: %v", err)
		} else {
			opts.Threshold = f
		}
	}
	if perr != nil {
		writeErr(w, perr)
		return
	}
	res, aerr := ss.hotQuery(opts, k)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	s.met.HotQueries.Inc()
	s.met.HotLatency.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	ss, aerr := s.lookup(r)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	enc, st, h, aerr := ss.artifactSource()
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	if st == nil {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(enc)))
		w.Write(enc) //nolint:errcheck // client gone = nothing to do
		return
	}
	s.streamArtifact(w, st, h)
}

// handleStoredArtifact serves any artifact in the content-addressed
// store by hash (full or unique prefix) — sealed sessions that were
// evicted long ago stay fetchable as long as the store holds them.
func (s *Server) handleStoredArtifact(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeErr(w, errf(http.StatusNotFound, "no artifact store configured"))
		return
	}
	ref := r.PathValue("hash")
	h, err := s.cfg.Store.FindArtifact(ref)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			writeErr(w, errf(http.StatusNotFound, "%v", err))
		} else {
			writeErr(w, errf(http.StatusBadRequest, "%v", err))
		}
		return
	}
	s.streamArtifact(w, s.cfg.Store, h)
}

// streamArtifact copies one stored artifact to the response a part at a
// time — for chunked artifacts, one chunk grammar resident at once.
func (s *Server) streamArtifact(w http.ResponseWriter, st *store.Store, h store.Hash) {
	rd, size, err := st.ArtifactReader(h)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeErr(w, errf(status, "reading stored artifact: %v", err))
		return
	}
	defer rd.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("X-WPP-Hash", h.String())
	n, err := io.Copy(w, rd)
	if err == nil {
		s.met.ArtifactBytesServed.Add(uint64(n))
	}
	// Past the header there is no way to signal a mid-stream store
	// fault; the short body (Content-Length mismatch) tells the client.
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ss := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ss == nil {
		writeErr(w, errf(http.StatusNotFound, "no session %q", id))
		return
	}
	if ss.evict() {
		s.met.SessionsEvicted.Inc()
		s.met.SessionsOpen.Add(-1)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Health{Status: "ok", Sessions: n})
}

// SessionCount reports resident sessions (open + sealed).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
