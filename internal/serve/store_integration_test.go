package serve

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"repro/internal/obsv"
	"repro/internal/store"
	iwpp "repro/internal/wpp"
)

// newStoreServer builds a daemon backed by a fresh content-addressed
// store and returns the store alongside the usual server/client pair.
func newStoreServer(t *testing.T) (*store.Store, *Server, *Client) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.NewMetrics(obsv.NewRegistry()))
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	srv, c := newTestServer(t, Config{Store: st})
	return st, srv, c
}

// sealWorkload opens a session for workload name, streams its capture,
// and seals it, returning the session info and seal result.
func sealWorkload(t *testing.T, c *Client, name string, chunk uint64, format string) (SessionInfo, SealResult) {
	t.Helper()
	cap := capture(t, name)
	info, err := c.Open(OpenRequest{Workload: name, Chunk: chunk, Format: format})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	stream(t, c, info.ID, cap.Events, 2048)
	res, err := c.Seal(info.ID, cap.Instructions)
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	return info, res
}

// TestSealWritesThroughToStore is the acceptance criterion for the
// daemon half of the store: sealing records the artifact in the CAS
// under the seal digest, the session's /artifact download streams the
// identical bytes from the store (the resident encoding is offloaded),
// and GET /v1/artifacts/{hash} serves the same bytes to anyone holding
// the hash — session or no session.
func TestSealWritesThroughToStore(t *testing.T) {
	st, _, c := newStoreServer(t)
	cap := capture(t, "expr")
	want := localBuild(t, cap, 8192, iwpp.FormatV1)

	info, res := sealWorkload(t, c, "expr", 8192, "")

	// The store holds the sealed bytes under the published digest.
	h, err := store.ParseHash(res.SHA256)
	if err != nil {
		t.Fatalf("seal SHA %q does not parse as a store hash: %v", res.SHA256, err)
	}
	stored, err := st.GetArtifact(h)
	if err != nil {
		t.Fatalf("store lookup of sealed artifact: %v", err)
	}
	if !bytes.Equal(stored, want) {
		t.Fatalf("store holds %d bytes, batch build is %d", len(stored), len(want))
	}
	m, err := st.Manifest(h)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if m.Kind != "chunked" || len(m.Parts) < 2 {
		t.Errorf("chunked seal stored as kind=%q with %d parts", m.Kind, len(m.Parts))
	}

	// The session download now streams from the store and is still
	// byte-identical to the batch pipeline.
	got, err := c.Artifact(info.ID)
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("offloaded artifact differs from batch build: %d vs %d bytes", len(got), len(want))
	}

	// Anyone with the hash (or a unique prefix) can fetch the same
	// bytes without a session.
	for _, ref := range []string{res.SHA256, res.SHA256[:12]} {
		body, hdr := httpGetArtifact(t, c, ref, http.StatusOK)
		if !bytes.Equal(body, want) {
			t.Fatalf("GET /v1/artifacts/%s returned %d bytes, want %d", ref, len(body), len(want))
		}
		if hdr != res.SHA256 {
			t.Errorf("X-WPP-Hash = %q, want %q", hdr, res.SHA256)
		}
	}
}

// httpGetArtifact fetches /v1/artifacts/{ref} raw, asserting the status
// and returning the body and X-WPP-Hash header.
func httpGetArtifact(t *testing.T, c *Client, ref string, wantStatus int) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(c.Base + "/v1/artifacts/" + ref)
	if err != nil {
		t.Fatalf("GET artifact %s: %v", ref, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading artifact body: %v", err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET artifact %s: status %d, want %d (body %q)", ref, resp.StatusCode, wantStatus, body)
	}
	return body, resp.Header.Get("X-WPP-Hash")
}

// TestStoreDedupAcrossSessions seals the same workload twice and checks
// the second seal stores nothing new: same hash, one manifest, and the
// store's dedup counters account for every part of the repeat.
func TestStoreDedupAcrossSessions(t *testing.T) {
	reg := obsv.NewRegistry()
	met := store.NewMetrics(reg)
	st, err := store.Open(t.TempDir(), met)
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	_, c := newTestServer(t, Config{Store: st})

	_, res1 := sealWorkload(t, c, "lexer", 4096, "wpp2")
	written := met.ObjectsWritten.Value()
	_, res2 := sealWorkload(t, c, "lexer", 4096, "wpp2")

	if res1.SHA256 != res2.SHA256 {
		t.Fatalf("identical sessions sealed to different digests: %s vs %s", res1.SHA256, res2.SHA256)
	}
	if got := met.ObjectsWritten.Value(); got != written {
		t.Errorf("second seal wrote %d new objects, want 0", got-written)
	}
	if met.ObjectsDeduped.Value() == 0 {
		t.Error("second seal deduped no objects")
	}
	all, err := st.Artifacts()
	if err != nil {
		t.Fatalf("listing artifacts: %v", err)
	}
	if len(all) != 1 {
		t.Fatalf("store holds %d artifacts after duplicate seals, want 1", len(all))
	}
}

// TestOffloadedSessionStillAnswersHot checks that dropping the resident
// encoding after write-through does not break sealed /hot queries: the
// artifact object itself stays resident.
func TestOffloadedSessionStillAnswersHot(t *testing.T) {
	_, _, c := newStoreServer(t)
	info, _ := sealWorkload(t, c, "expr", 8192, "")
	res, err := c.Hot(info.ID, HotQuery{MinLen: 4, MaxLen: 16, Threshold: 0.001})
	if err != nil {
		t.Fatalf("hot after offload: %v", err)
	}
	if !res.Sealed || len(res.Subpaths) == 0 {
		t.Fatalf("hot after offload: sealed=%v, %d subpaths", res.Sealed, len(res.Subpaths))
	}
}

// TestMonoSealStoresBlob checks the monolithic format takes the blob
// path through the store and still round-trips.
func TestMonoSealStoresBlob(t *testing.T) {
	st, _, c := newStoreServer(t)
	cap := capture(t, "sort")
	want := localBuild(t, cap, 0, iwpp.FormatV2)
	info, res := sealWorkload(t, c, "sort", 0, "wpp2")

	h, err := store.ParseHash(res.SHA256)
	if err != nil {
		t.Fatalf("parsing seal SHA: %v", err)
	}
	m, err := st.Manifest(h)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if m.Kind != "blob" || len(m.Parts) != 1 {
		t.Errorf("mono seal stored as kind=%q with %d parts", m.Kind, len(m.Parts))
	}
	got, err := c.Artifact(info.ID)
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("mono artifact differs from batch build")
	}
}

// TestArtifactEndpointErrors pins the endpoint's failure modes: unknown
// hashes 404, malformed refs 400, and a daemon with no store 404s
// everything.
func TestArtifactEndpointErrors(t *testing.T) {
	_, _, c := newStoreServer(t)
	httpGetArtifact(t, c, "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef", http.StatusNotFound)
	httpGetArtifact(t, c, "xyz", http.StatusBadRequest)

	_, c2 := newTestServer(t, Config{})
	httpGetArtifact(t, c2, "deadbeef", http.StatusNotFound)
}
