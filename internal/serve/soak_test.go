package serve

import (
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
)

// TestSoakSteadyStateMemory runs waves of churning sessions — randomized
// batch sizes, a kill-and-retry cohort that abandons sessions mid-stream
// and reopens them — and asserts from the obsv snapshot that the daemon
// reaches steady-state memory instead of accreting grammars, builders, or
// session records. Skipped under -short.
func TestSoakSteadyStateMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	reg := obsv.NewRegistry()
	met := NewMetrics(reg)
	srv, c := newTestServer(t, Config{
		MaxSessions: 64,
		Metrics:     met,
	})
	cap := capture(t, "matrix")

	const (
		waves       = 12
		perWave     = 6
		warmupWaves = 4
	)
	// heapAfter forces a GC, runs a sweep (which samples the heap gauge),
	// and reads the gauge back from the metrics snapshot — the same
	// number an operator would scrape.
	heapAfter := func() int64 {
		runtime.GC()
		srv.Sweep()
		return reg.Snapshot().Gauges["serve_heap_alloc_bytes"]
	}

	var warmupHeap int64
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for i := 0; i < perWave; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(seed))
				// Kill-and-retry: a third of the cohort abandons its first
				// attempt partway and reopens fresh, like a crashed tracer.
				attempts := 1
				if wrng.Intn(3) == 0 {
					attempts = 2
				}
				for a := 0; a < attempts; a++ {
					info, err := c.Open(OpenRequest{Workload: "matrix"})
					if err != nil {
						if IsStatus(err, http.StatusServiceUnavailable) {
							time.Sleep(time.Millisecond)
							a--
							continue
						}
						t.Errorf("open: %v", err)
						return
					}
					total := len(cap.Events)
					kill := a < attempts-1
					if kill {
						total = wrng.Intn(total)
					}
					batch := 256 + wrng.Intn(8192) // randomized frame size
					for off := 0; off < total; off += batch {
						end := min(off+batch, total)
						if err := ingestRetry(c, info.ID, cap.Events[off:end]); err != nil {
							t.Errorf("ingest: %v", err)
							return
						}
					}
					if kill {
						// Crash: walk away without sealing. DELETE stands in
						// for the idle janitor so the wave stays bounded.
						if err := c.Evict(info.ID); err != nil {
							t.Errorf("evict killed session: %v", err)
						}
						continue
					}
					if _, err := c.Seal(info.ID, cap.Instructions); err != nil {
						t.Errorf("seal: %v", err)
						return
					}
					if err := c.Evict(info.ID); err != nil {
						t.Errorf("evict sealed session: %v", err)
					}
				}
			}(int64(wave*perWave + i))
		}
		wg.Wait()
		if wave == warmupWaves-1 {
			warmupHeap = heapAfter()
		}
	}

	finalHeap := heapAfter()
	if warmupHeap == 0 {
		t.Fatal("warmup heap sample was zero; gauge not wired")
	}
	// Steady state: after 8 further waves of full churn, the drained
	// daemon's heap may not have grown past 2x the warmed-up baseline.
	// A leak of any per-session structure (grammar slab, builder, costs
	// map, session record) compounds per wave and blows well past that.
	if finalHeap > 2*warmupHeap {
		t.Errorf("heap grew %d -> %d bytes across churn waves; daemon is accreting per-session state",
			warmupHeap, finalHeap)
	}

	if n := srv.SessionCount(); n != 0 {
		t.Errorf("%d sessions resident after drain", n)
	}
	if g := met.SessionsOpen.Value(); g != 0 {
		t.Errorf("SessionsOpen gauge = %d after drain", g)
	}
	// Every opened session — sealed or killed — ends with exactly one
	// eviction; a mismatch means a session record leaked or was evicted
	// twice.
	s := reg.Snapshot()
	if s.Counters["serve_sessions_opened_total"] != s.Counters["serve_sessions_evicted_total"] {
		t.Errorf("session accounting leak: opened %d, sealed %d, evicted %d",
			s.Counters["serve_sessions_opened_total"],
			s.Counters["serve_sessions_sealed_total"],
			s.Counters["serve_sessions_evicted_total"])
	}
}
