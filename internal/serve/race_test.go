package serve

import (
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/trace"
)

// ingestRetry pushes one frame, retrying 503s — the protocol's documented
// shed-load signal — with a short backoff. Any other failure is returned.
func ingestRetry(c *Client, id string, events []trace.Event) error {
	for {
		_, err := c.Ingest(id, events)
		if err == nil {
			return nil
		}
		if IsStatus(err, http.StatusServiceUnavailable) {
			time.Sleep(500 * time.Microsecond)
			continue
		}
		return err
	}
}

// TestConcurrentSessions drives 64 concurrent sessions through the full
// lifecycle — open, interleaved ingest and live hot queries, seal,
// artifact fetch, evict — with a fault cohort (mid-stream disconnects,
// malformed frames, double seals) mixed in. Run under -race it is the
// daemon's central isolation proof: every clean session must seal to the
// byte-identical artifact no matter what its neighbors do.
func TestConcurrentSessions(t *testing.T) {
	const sessions = 64

	reg := obsv.NewRegistry()
	met := NewMetrics(reg)
	_, c := newTestServer(t, Config{MaxSessions: sessions + 8, Metrics: met})

	// Two workloads with different grammars, alternated across the
	// cohort so corruption across sessions cannot cancel out.
	names := []string{"matrix", "queens"}
	caps := map[string][]byte{} // local reference artifact per workload
	insns := map[string]uint64{}
	for _, n := range names {
		cap := capture(t, n)
		caps[n] = localBuild(t, cap, 0, 1)
		insns[n] = cap.Instructions
	}

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(n) * 1337))
			name := names[n%len(names)]
			cap := capture(t, name)
			cl := c // Client is stateless; share it
			info, err := cl.Open(OpenRequest{Workload: name})
			if err != nil {
				t.Errorf("session %d open: %v", n, err)
				return
			}
			id := info.ID

			faulty := n%8 == 3     // malformed-frame cohort
			disconnect := n%8 == 5 // mid-stream abandon cohort
			doubleSeal := n%8 == 7 // duplicate-seal cohort

			batch := 512 + rng.Intn(4096)
			total := len(cap.Events)
			if disconnect {
				total = rng.Intn(total)
			}
			for off := 0; off < total; off += batch {
				end := min(off+batch, total)
				if faulty && off > 0 && rng.Intn(4) == 0 {
					// The poison frame may be shed by backpressure like any
					// other; once admitted it must answer 400.
					for {
						_, err := cl.IngestRaw(id, []byte("WPPX poison"))
						if IsStatus(err, http.StatusServiceUnavailable) {
							time.Sleep(500 * time.Microsecond)
							continue
						}
						if !IsStatus(err, http.StatusBadRequest) {
							t.Errorf("session %d: malformed frame got %v, want 400", n, err)
						}
						break
					}
				}
				if err := ingestRetry(cl, id, cap.Events[off:end]); err != nil {
					t.Errorf("session %d ingest at %d: %v", n, off, err)
					return
				}
				if rng.Intn(3) == 0 {
					if _, err := cl.Hot(id, HotQuery{K: 3, Threshold: 0.05}); err != nil {
						t.Errorf("session %d live hot: %v", n, err)
						return
					}
				}
			}
			if disconnect {
				// Abandon without sealing; explicit evict stands in for
				// the janitor so the table stays bounded under -race.
				if err := cl.Evict(id); err != nil {
					t.Errorf("session %d evict: %v", n, err)
				}
				return
			}
			res, err := cl.Seal(id, insns[name])
			if err != nil {
				t.Errorf("session %d seal: %v", n, err)
				return
			}
			if doubleSeal {
				if _, err := cl.Seal(id, insns[name]); !IsStatus(err, http.StatusConflict) {
					t.Errorf("session %d: double seal got %v, want 409", n, err)
				}
			}
			got, err := cl.Artifact(id)
			if err != nil {
				t.Errorf("session %d artifact: %v", n, err)
				return
			}
			want := caps[name]
			if string(got) != string(want) {
				t.Errorf("session %d (%s): artifact diverged under concurrency (%d vs %d bytes, sha %s)",
					n, name, len(got), len(want), res.SHA256)
			}
			if err := cl.Evict(id); err != nil {
				t.Errorf("session %d final evict: %v", n, err)
			}
		}(i)
	}
	wg.Wait()

	// Every session was evicted (sealed or abandoned); nothing may leak.
	if g := met.SessionsOpen.Value(); g != 0 {
		t.Errorf("SessionsOpen gauge = %d after full drain, want 0", g)
	}
	if got := met.SessionsOpened.Value(); got != sessions {
		t.Errorf("SessionsOpened = %d, want %d", got, sessions)
	}
}

// TestLoadGeneratorWithFaults runs the shipping load generator — the same
// code path wppload uses — against an in-process daemon with every fault
// knob on and byte-identity verification enabled. RunLoad returns an
// error if any sealed artifact diverges from the local build.
func TestLoadGeneratorWithFaults(t *testing.T) {
	_, c := newTestServer(t, Config{})
	rep, err := RunLoad(c.Base, LoadOptions{
		Workload:  "matrix",
		Clients:   8,
		Sessions:  24,
		BatchSize: 2048,
		Faults:    FaultPlan{DisconnectEvery: 5, MalformedEvery: 7, DoubleSealEvery: 3},
		Seed:      42,
		VerifySHA: true,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Errors != 0 {
		t.Errorf("load run hit %d unexpected errors", rep.Errors)
	}
	if rep.ShaMismatch != 0 {
		t.Errorf("%d of %d artifacts diverged", rep.ShaMismatch, rep.ShaChecked)
	}
	if rep.Sealed == 0 || rep.Disconnects == 0 || rep.Injected400s == 0 || rep.Conflict409s == 0 {
		t.Errorf("fault plan did not exercise all paths: %+v", rep)
	}
}

// TestBackpressureUnderConcurrency hammers a deliberately tiny ingest
// queue and session table: the daemon must shed load with 503, never
// block forever or fall over, and every shed request must be retryable.
func TestBackpressureUnderConcurrency(t *testing.T) {
	reg := obsv.NewRegistry()
	met := NewMetrics(reg)
	_, c := newTestServer(t, Config{MaxSessions: 4, MaxInflight: 1, Metrics: met})

	rep, err := RunLoad(c.Base, LoadOptions{
		Workload:  "matrix",
		Clients:   8,
		Sessions:  16,
		BatchSize: 1024,
		Seed:      7,
		VerifySHA: true,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Errors != 0 {
		t.Errorf("backpressure produced hard errors: %+v", rep)
	}
	if rep.Sealed != uint64(rep.Sessions) {
		t.Errorf("only %d of %d sessions sealed", rep.Sealed, rep.Sessions)
	}
	// With 8 clients racing 4 session slots and one ingest slot, load
	// shedding must actually fire for the test to mean anything. (Whether
	// a given 503 came from the table or the ingest queue depends on
	// scheduling; either proves the daemon sheds instead of blocking.)
	if rep.Shed503s == 0 {
		t.Errorf("no 503s despite MaxSessions=4, MaxInflight=1, 8 clients")
	}
	if g := reg.Snapshot().Gauges["serve_ingest_queue_depth"]; g != 0 {
		t.Errorf("ingest queue depth gauge = %d after drain, want 0", g)
	}
}
