package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/trace"
	iwpp "repro/internal/wpp"
)

// FaultPlan injects client-side failures into a load run, exercising the
// daemon's isolation guarantees. Each knob marks every Nth session (0
// disables that fault).
type FaultPlan struct {
	// DisconnectEvery aborts the marked session mid-stream: the client
	// stops after a random prefix of its frames and walks away without
	// sealing, leaving eviction to the janitor (or the explicit DELETE
	// the generator issues to keep the table bounded).
	DisconnectEvery int
	// MalformedEvery sends one garbage frame (bad magic, truncated tail,
	// or out-of-range event) before the real stream; the server must
	// answer 400 and the session must remain cleanly usable.
	MalformedEvery int
	// DoubleSealEvery seals the marked session twice; the second seal
	// must answer 409 without disturbing the artifact.
	DoubleSealEvery int
}

// LoadOptions configures one load-generation run.
type LoadOptions struct {
	Workload string
	Scale    experiments.Scale
	// Clients is the number of concurrent connections; Sessions is the
	// total session count spread across them (default: one each).
	Clients  int
	Sessions int
	// BatchSize is the events-per-frame target; 0 means 4096.
	BatchSize int
	// Chunk selects the server-side build strategy per session.
	Chunk uint64
	// Format is the seal encoding ("", "wpp1", "wpp2").
	Format string
	// Faults injects client failures.
	Faults FaultPlan
	// Seed fixes the fault/batch randomization.
	Seed int64
	// VerifySHA checks every sealed artifact's digest against a local
	// build of the same capture (byte-identity).
	VerifySHA bool
}

// LoadReport is the machine-readable result of one load run — the rows
// of BENCH_serve.json.
type LoadReport struct {
	Workload     string  `json:"workload"`
	Scale        string  `json:"scale"`
	Clients      int     `json:"clients"`
	Sessions     int     `json:"sessions"`
	BatchSize    int     `json:"batch_size"`
	Chunk        uint64  `json:"chunk"`
	EventsSent   uint64  `json:"events_sent"`
	BytesSent    uint64  `json:"bytes_sent"`
	Frames       uint64  `json:"frames"`
	Sealed       uint64  `json:"sealed"`
	Disconnects  uint64  `json:"disconnects"`
	Injected400s uint64  `json:"injected_400s"`
	Conflict409s uint64  `json:"conflict_409s"`
	Shed503s     uint64  `json:"shed_503s"`
	ShaChecked   uint64  `json:"sha_checked"`
	ShaMismatch  uint64  `json:"sha_mismatch"`
	Errors       uint64  `json:"errors"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	MBPerSec     float64 `json:"mb_per_sec"`
}

// referenceSHA builds the capture locally with the same options the
// server will use and digests the encoding — the byte-identity oracle.
func referenceSHA(c *experiments.Capture, chunk uint64, format string) (string, error) {
	b := iwpp.New(c.Names, c.Nums, iwpp.BuildOptions{ChunkSize: chunk})
	b.AddBatch(c.Events)
	a := b.Finish(c.Instructions)
	if format == "wpp2" {
		iwpp.SetVersion(a, iwpp.FormatV2)
	}
	var buf bytes.Buffer
	if _, err := a.Encode(&buf); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// garbageFrame fabricates one malformed ingest body, cycling through the
// distinct failure modes the reader must reject.
func garbageFrame(rng *rand.Rand, kind int) []byte {
	switch kind % 3 {
	case 0: // wrong magic
		return []byte("WPPX\x01\x02\x03")
	case 1: // valid magic, frame cut mid-varint
		f := EncodeFrame([]trace.Event{trace.Event(1 << 50)})
		return f[:len(f)-1]
	default: // event beyond the function-ID universe
		var buf bytes.Buffer
		buf.WriteString("WPT1")
		v := ^uint64(0) >> uint(rng.Intn(2))
		var tmp [10]byte
		n := 0
		for v >= 0x80 {
			tmp[n] = byte(v) | 0x80
			v >>= 7
			n++
		}
		tmp[n] = byte(v)
		buf.Write(tmp[:n+1])
		return buf.Bytes()
	}
}

// RunLoad replays a captured workload against a daemon at base over
// opts.Clients concurrent connections and reports aggregate throughput.
// Capture (the interpreter run) happens once, outside the timed region.
func RunLoad(base string, opts LoadOptions) (*LoadReport, error) {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Sessions <= 0 {
		opts.Sessions = opts.Clients
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 4096
	}
	if opts.Workload == "" {
		opts.Workload = "matrix"
	}
	cap, err := experiments.CaptureWorkload(opts.Workload, opts.Scale)
	if err != nil {
		return nil, err
	}
	var wantSHA string
	if opts.VerifySHA {
		wantSHA, err = referenceSHA(cap, opts.Chunk, opts.Format)
		if err != nil {
			return nil, err
		}
	}

	rep := &LoadReport{
		Workload:  opts.Workload,
		Scale:     opts.Scale.String(),
		Clients:   opts.Clients,
		Sessions:  opts.Sessions,
		BatchSize: opts.BatchSize,
		Chunk:     opts.Chunk,
	}
	var (
		events, bytesSent, frames           atomic.Uint64
		sealed, disconnects, inj400, con409 atomic.Uint64
		shed503, shaChecked, shaBad, errs   atomic.Uint64
		next                                atomic.Int64
	)
	// Frames are pre-encoded once (encoding is client-side work, not
	// daemon throughput) and shared read-only by every connection.
	var encFrames [][]byte
	for off := 0; off < len(cap.Events); off += opts.BatchSize {
		end := min(off+opts.BatchSize, len(cap.Events))
		encFrames = append(encFrames, EncodeFrame(cap.Events[off:end:end]))
	}
	frameEvents := func(i int) int {
		if i < len(encFrames)-1 {
			return opts.BatchSize
		}
		return len(cap.Events) - (len(encFrames)-1)*opts.BatchSize
	}

	ingestAll := func(c *Client, id string, upto int) bool {
		for i := 0; i < upto; i++ {
			for {
				_, err := c.IngestRaw(id, encFrames[i])
				if err == nil {
					events.Add(uint64(frameEvents(i)))
					bytesSent.Add(uint64(len(encFrames[i])))
					frames.Add(1)
					break
				}
				if IsStatus(err, http.StatusServiceUnavailable) {
					shed503.Add(1)
					time.Sleep(time.Millisecond)
					continue
				}
				errs.Add(1)
				return false
			}
		}
		return true
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Clients; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(worker)*7919))
			c := NewClient(base)
			for {
				n := int(next.Add(1)) - 1
				if n >= opts.Sessions {
					return
				}
				sessNo := n + 1
				var info SessionInfo
				var err error
				for {
					info, err = c.Open(OpenRequest{
						Workload: opts.Workload,
						Scale:    opts.Scale.String(),
						Chunk:    opts.Chunk,
						Format:   opts.Format,
					})
					if err == nil {
						break
					}
					// Shed opens retry in place so the session slot is
					// never lost; anything else burns the slot as an error.
					if IsStatus(err, http.StatusServiceUnavailable) {
						shed503.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					errs.Add(1)
					break
				}
				if err != nil {
					continue
				}
				id := info.ID

				if f := opts.Faults.MalformedEvery; f > 0 && sessNo%f == 0 {
					frame := garbageFrame(rng, sessNo)
					for {
						_, err := c.IngestRaw(id, frame)
						if IsStatus(err, http.StatusServiceUnavailable) {
							shed503.Add(1)
							time.Sleep(time.Millisecond)
							continue
						}
						if IsStatus(err, http.StatusBadRequest) {
							inj400.Add(1)
						} else {
							errs.Add(1)
						}
						break
					}
				}
				if f := opts.Faults.DisconnectEvery; f > 0 && sessNo%f == 0 {
					upto := rng.Intn(len(encFrames) + 1)
					ingestAll(c, id, upto)
					disconnects.Add(1)
					c.Evict(id) //nolint:errcheck // abandoned either way; janitor is the backstop
					continue
				}
				if !ingestAll(c, id, len(encFrames)) {
					c.Evict(id) //nolint:errcheck
					continue
				}
				res, err := c.Seal(id, cap.Instructions)
				if err != nil {
					errs.Add(1)
					c.Evict(id) //nolint:errcheck
					continue
				}
				sealed.Add(1)
				if f := opts.Faults.DoubleSealEvery; f > 0 && sessNo%f == 0 {
					if _, err := c.Seal(id, cap.Instructions); IsStatus(err, http.StatusConflict) {
						con409.Add(1)
					} else {
						errs.Add(1)
					}
				}
				if opts.VerifySHA {
					shaChecked.Add(1)
					if res.SHA256 != wantSHA {
						shaBad.Add(1)
					}
				}
				c.Evict(id) //nolint:errcheck // free the slot for the next session
			}
		}(w)
	}
	wg.Wait()
	rep.Seconds = time.Since(start).Seconds()

	rep.EventsSent = events.Load()
	rep.BytesSent = bytesSent.Load()
	rep.Frames = frames.Load()
	rep.Sealed = sealed.Load()
	rep.Disconnects = disconnects.Load()
	rep.Injected400s = inj400.Load()
	rep.Conflict409s = con409.Load()
	rep.Shed503s = shed503.Load()
	rep.ShaChecked = shaChecked.Load()
	rep.ShaMismatch = shaBad.Load()
	rep.Errors = errs.Load()
	if rep.Seconds > 0 {
		rep.EventsPerSec = float64(rep.EventsSent) / rep.Seconds
		rep.MBPerSec = float64(rep.BytesSent) / 1e6 / rep.Seconds
	}
	if rep.ShaMismatch > 0 {
		return rep, fmt.Errorf("load: %d of %d sealed artifacts diverged from the local build",
			rep.ShaMismatch, rep.ShaChecked)
	}
	return rep, nil
}
