package serve

import (
	"time"

	"repro/internal/obsv"
	iwpp "repro/internal/wpp"
)

// Metrics is the daemon's observability surface, threaded through the
// session registry and every handler. All fields follow the obsv
// contract: nil metrics are no-ops, so a Server built without a registry
// runs uninstrumented at full speed.
type Metrics struct {
	// Session lifecycle.
	SessionsOpen    *obsv.Gauge   // currently resident (open + sealed)
	SessionsOpened  *obsv.Counter // total opened
	SessionsSealed  *obsv.Counter // total sealed
	SessionsEvicted *obsv.Counter // total evicted (idle or DELETE)

	// Ingest path.
	EventsIngested *obsv.Counter   // events accepted into builders
	IngestRequests *obsv.Counter   // event POSTs admitted past the queue
	IngestRejected *obsv.Counter   // event POSTs shed by backpressure (503)
	IngestErrors   *obsv.Counter   // event POSTs refused as client errors (4xx)
	QueueDepth     *obsv.Gauge     // ingest requests currently buffered
	IngestLatency  *obsv.Histogram // wall time per accepted event POST

	// Query + seal path.
	HotQueries          *obsv.Counter
	HotLatency          *obsv.Histogram
	SealLatency         *obsv.Histogram
	ArtifactBytes       *obsv.Counter // encoded artifact bytes produced by seals
	ArtifactBytesServed *obsv.Counter // stored-artifact bytes streamed to clients

	// HeapBytes samples runtime heap allocation at every janitor sweep,
	// so a soak run can watch steady-state memory from the obsv snapshot.
	HeapBytes *obsv.Gauge

	// Build carries the per-builder instrumentation shared by every
	// session's compressor.
	Build *iwpp.BuildMetrics
}

// NewMetrics registers the daemon's metrics on r (nil r yields a fully
// no-op Metrics).
func NewMetrics(r *obsv.Registry) *Metrics {
	lat := []time.Duration{
		50 * time.Microsecond,
		250 * time.Microsecond,
		time.Millisecond,
		5 * time.Millisecond,
		25 * time.Millisecond,
		100 * time.Millisecond,
		500 * time.Millisecond,
		2 * time.Second,
	}
	return &Metrics{
		SessionsOpen:        r.Gauge("serve_sessions_open"),
		SessionsOpened:      r.Counter("serve_sessions_opened_total"),
		SessionsSealed:      r.Counter("serve_sessions_sealed_total"),
		SessionsEvicted:     r.Counter("serve_sessions_evicted_total"),
		EventsIngested:      r.Counter("serve_events_ingested_total"),
		IngestRequests:      r.Counter("serve_ingest_requests_total"),
		IngestRejected:      r.Counter("serve_ingest_rejected_total"),
		IngestErrors:        r.Counter("serve_ingest_errors_total"),
		QueueDepth:          r.Gauge("serve_ingest_queue_depth"),
		IngestLatency:       r.Histogram("serve_ingest_seconds", lat),
		HotQueries:          r.Counter("serve_hot_queries_total"),
		HotLatency:          r.Histogram("serve_hot_seconds", lat),
		SealLatency:         r.Histogram("serve_seal_seconds", lat),
		ArtifactBytes:       r.Counter("serve_artifact_bytes_total"),
		ArtifactBytesServed: r.Counter("serve_artifact_bytes_served_total"),
		HeapBytes:           r.Gauge("serve_heap_alloc_bytes"),
		Build:               iwpp.NewBuildMetrics(r),
	}
}

// orNoop returns a usable metric set whether or not one was configured.
func (m *Metrics) orNoop() *Metrics {
	if m == nil {
		return &Metrics{}
	}
	return m
}
