package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bl"
	"repro/internal/hotpath"
	"repro/internal/store"
	"repro/internal/trace"
	iwpp "repro/internal/wpp"
)

// apiError is an error with a protocol status; handlers render it as the
// JSON error envelope.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

type sessionState int

const (
	sessOpen sessionState = iota
	sessSealed
	sessGone
)

// session is one tracer's stream. The mutex serializes builder access:
// concurrent frames to the same session are applied atomically in arrival
// order (clients that need a deterministic artifact stream their frames
// sequentially; distinct sessions never contend).
type session struct {
	id       string
	workload string
	scale    string
	chunk    uint64
	workers  int
	format   uint8
	quota    uint64 // max events; 0 = unlimited

	// numPaths[fn] bounds valid path IDs when the session was opened
	// with a workload; nil for anonymous sessions.
	numPaths []uint64

	mu      sync.Mutex
	state   sessionState
	builder iwpp.Builder
	events  uint64
	maxFn   uint32 // highest function ID seen (anonymous naming at seal)

	artifact iwpp.Artifact
	encoded  []byte
	sha      string

	// stored, when non-nil, means the sealed encoding has been offloaded
	// to the content-addressed store under storedHash; /artifact streams
	// it from there (one chunk object in memory at a time) instead of
	// holding the whole encoding resident.
	stored     *store.Store
	storedHash store.Hash

	// lastActive is a unix-nano timestamp updated on every touch; the
	// janitor reads it without taking the session lock.
	lastActive atomic.Int64
}

func (ss *session) touch(now time.Time) { ss.lastActive.Store(now.UnixNano()) }

func (ss *session) idle(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, ss.lastActive.Load()))
}

func (ss *session) formatName() string {
	if ss.format >= iwpp.FormatV2 {
		return "wpp2"
	}
	return "wpp1"
}

func (ss *session) stateName() string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch ss.state {
	case sessSealed:
		return "sealed"
	case sessGone:
		return "evicted"
	default:
		return "open"
	}
}

func (ss *session) info() SessionInfo {
	info := SessionInfo{
		ID:       ss.id,
		State:    ss.stateName(),
		Workload: ss.workload,
		Scale:    ss.scale,
		Chunk:    ss.chunk,
		Format:   ss.formatName(),
	}
	ss.mu.Lock()
	info.Events = ss.events
	ss.mu.Unlock()
	return info
}

// checkEvent validates one decoded event against the session's program.
// The trace reader has already bounded the packed encoding; workload
// sessions additionally refuse events their numberings could never emit,
// so a hostile stream cannot poison the cost fill at seal time.
func (ss *session) checkEvent(e trace.Event) error {
	if ss.numPaths == nil {
		return nil
	}
	if int(e.Func()) >= len(ss.numPaths) {
		return fmt.Errorf("%w: function %d not in session program (%d functions)",
			trace.ErrEventRange, e.Func(), len(ss.numPaths))
	}
	if e.Path() >= ss.numPaths[e.Func()] {
		return fmt.Errorf("%w: path %d invalid for function %d (%d paths)",
			trace.ErrEventRange, e.Path(), e.Func(), ss.numPaths[e.Func()])
	}
	return nil
}

// ingest applies one decoded frame transactionally: every event lands or
// none does (quota violations reject the whole frame, so a retried frame
// is idempotent-safe for the client to resend elsewhere).
func (ss *session) ingest(events []trace.Event, now time.Time) (IngestResult, *apiError) {
	var maxFn uint32
	for _, e := range events {
		if e.Func() > maxFn {
			maxFn = e.Func()
		}
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch ss.state {
	case sessSealed:
		return IngestResult{}, errf(http.StatusConflict, "session %s is sealed", ss.id)
	case sessGone:
		return IngestResult{}, errf(http.StatusGone, "session %s was evicted", ss.id)
	}
	if ss.quota > 0 && ss.events+uint64(len(events)) > ss.quota {
		return IngestResult{}, errf(http.StatusTooManyRequests,
			"session %s event quota exceeded (%d used of %d, frame of %d refused)",
			ss.id, ss.events, ss.quota, len(events))
	}
	ss.builder.AddBatch(events)
	ss.events += uint64(len(events))
	if maxFn > ss.maxFn {
		ss.maxFn = maxFn
	}
	ss.touch(now)
	return IngestResult{Accepted: uint64(len(events)), Events: ss.events}, nil
}

// seal finalizes the session: the builder is drained, the artifact is
// built, versioned, and encoded once; subsequent /hot and /artifact reads
// serve the sealed result. Sealing twice is a client error.
func (ss *session) seal(req SealRequest, now time.Time) (SealResult, *apiError) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch ss.state {
	case sessSealed:
		return SealResult{}, errf(http.StatusConflict, "session %s already sealed", ss.id)
	case sessGone:
		return SealResult{}, errf(http.StatusGone, "session %s was evicted", ss.id)
	}
	a := ss.builder.Finish(req.Instructions)
	ss.builder = nil
	// Anonymous sessions synthesize the function table from the events,
	// exactly as `wppbuild -trace` does.
	if ss.numPaths == nil {
		names := make([]iwpp.FuncInfo, ss.maxFn+1)
		for i := range names {
			names[i] = iwpp.FuncInfo{Name: fmt.Sprintf("f%d", i)}
		}
		switch t := a.(type) {
		case *iwpp.WPP:
			t.Funcs = names
		case *iwpp.ChunkedWPP:
			t.Funcs = names
		}
	}
	iwpp.SetVersion(a, ss.format)
	var buf bytes.Buffer
	if _, err := a.Encode(&buf); err != nil {
		// Encoding to memory cannot fail for a well-formed artifact;
		// treat it as an internal fault rather than poisoning the session.
		return SealResult{}, errf(http.StatusInternalServerError, "encoding artifact: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	ss.artifact = a
	ss.encoded = buf.Bytes()
	ss.sha = hex.EncodeToString(sum[:])
	ss.state = sessSealed
	ss.touch(now)
	return SealResult{
		Events:        a.NumEvents(),
		DistinctPaths: a.DistinctPaths(),
		ArtifactBytes: int64(len(ss.encoded)),
		Format:        ss.formatName(),
		SHA256:        ss.sha,
	}, nil
}

// evict finalizes and forgets the session. Open sessions drain their
// builder first (the parallel pipeline owns worker goroutines that
// Finish joins), so eviction never leaks a pooled grammar or a worker.
// Safe to call twice; only the first call reports work done.
func (ss *session) evict() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.state == sessGone {
		return false
	}
	if ss.state == sessOpen && ss.builder != nil {
		ss.builder.Finish(0)
		ss.builder = nil
	}
	ss.artifact = nil
	ss.encoded = nil
	ss.state = sessGone
	return true
}

// hotQuery answers a hot-subpath query. Sealed sessions answer from the
// sealed artifact — bit-for-bit what wpphot computes on the same file.
// Open monolithic sessions answer from a point-in-time snapshot of the
// growing grammar (the paper's online premise made queryable); open
// chunked sessions cannot snapshot mid-flight and answer 409.
func (ss *session) hotQuery(opts hotpath.Options, k int) (HotResult, *apiError) {
	ss.mu.Lock()
	var (
		live    *iwpp.WPP
		sealedA iwpp.Artifact
	)
	switch ss.state {
	case sessGone:
		ss.mu.Unlock()
		return HotResult{}, errf(http.StatusGone, "session %s was evicted", ss.id)
	case sessSealed:
		sealedA = ss.artifact
		ss.mu.Unlock()
	default:
		snapper, ok := ss.builder.(iwpp.LiveSnapshotter)
		if !ok {
			ss.mu.Unlock()
			return HotResult{}, errf(http.StatusConflict,
				"session %s is chunked: live queries need a monolithic session; seal first", ss.id)
		}
		live = snapper.SnapshotWPP()
		ss.mu.Unlock()
	}

	var (
		subs  []hotpath.Subpath
		err   error
		funcs []iwpp.FuncInfo
		res   HotResult
	)
	switch {
	case live != nil:
		subs, err = hotpath.Find(live, opts)
		funcs = live.Funcs
		res = HotResult{Sealed: false, Events: live.Events, TotalCost: live.Instructions}
	default:
		switch t := sealedA.(type) {
		case *iwpp.WPP:
			subs, err = hotpath.Find(t, opts)
		case *iwpp.ChunkedWPP:
			subs, err = hotpath.FindChunked(t, opts, 0)
		}
		funcs = sealedA.FuncTable()
		res = HotResult{Sealed: true, Events: sealedA.NumEvents(), TotalCost: sealedA.TotalInstructions()}
	}
	if err != nil {
		return HotResult{}, errf(http.StatusBadRequest, "%v", err)
	}
	if k > 0 && len(subs) > k {
		subs = subs[:k]
	}
	res.Subpaths = make([]HotSubpath, len(subs))
	for i, s := range subs {
		h := HotSubpath{
			Events:   make([]string, len(s.Events)),
			Raw:      make([]uint64, len(s.Events)),
			Count:    s.Count,
			Cost:     s.Cost,
			Fraction: s.Fraction,
		}
		for j, e := range s.Events {
			h.Raw[j] = uint64(e)
			name := fmt.Sprintf("f%d", e.Func())
			if int(e.Func()) < len(funcs) && funcs[e.Func()].Name != "" {
				name = funcs[e.Func()].Name
			}
			h.Events[j] = fmt.Sprintf("%s:%d", name, e.Path())
		}
		res.Subpaths[i] = h
	}
	return res, nil
}

// artifactSource returns where the sealed encoding lives: in-memory
// bytes (st == nil), or the store and hash to stream it from.
func (ss *session) artifactSource() (enc []byte, st *store.Store, h store.Hash, aerr *apiError) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch ss.state {
	case sessGone:
		return nil, nil, store.Hash{}, errf(http.StatusGone, "session %s was evicted", ss.id)
	case sessOpen:
		return nil, nil, store.Hash{}, errf(http.StatusConflict, "session %s is not sealed", ss.id)
	}
	if ss.stored != nil {
		return nil, ss.stored, ss.storedHash, nil
	}
	return ss.encoded, nil, store.Hash{}, nil
}

// sealedForStore hands out the artifact and its encoding for the
// write-through store path; false when the session is not sealed or the
// encoding was already offloaded.
func (ss *session) sealedForStore() (iwpp.Artifact, []byte, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.state != sessSealed || ss.encoded == nil {
		return nil, nil, false
	}
	return ss.artifact, ss.encoded, true
}

// offload releases the resident encoding in favor of store-backed
// delivery. The artifact itself stays resident for /hot queries.
func (ss *session) offload(st *store.Store, h store.Hash) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.state != sessSealed {
		return
	}
	ss.stored = st
	ss.storedHash = h
	ss.encoded = nil
}

// numPathsOf projects the per-function path counts used for ingest
// validation.
func numPathsOf(nums []*bl.Numbering) []uint64 {
	if nums == nil {
		return nil
	}
	out := make([]uint64, len(nums))
	for i, n := range nums {
		if n != nil {
			out[i] = n.NumPaths
		}
	}
	return out
}
