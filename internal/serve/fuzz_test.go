package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/trace"
)

// fuzzTranscript renders a deterministic op sequence for the seed corpus:
// each op is one byte selecting the verb plus one byte of argument.
func fuzzTranscript(ops ...byte) []byte { return ops }

// FuzzSessionProtocol drives the daemon's full HTTP surface with an
// arbitrary byte string interpreted as an operation transcript — opens,
// valid frames, garbage frames, seals, hot queries, evictions, in any
// interleaving against any session. The daemon must never panic, every
// response must carry a documented status, and the session table must
// stay consistent (healthz always answers 200).
func FuzzSessionProtocol(f *testing.F) {
	// Seeds: the happy path, lifecycle conflicts, garbage frames, and
	// ops against unknown sessions.
	f.Add(fuzzTranscript(0, 0, 1, 0, 1, 1, 3, 0, 4, 0, 5, 0))       // open, ingest, seal, hot, evict
	f.Add(fuzzTranscript(0, 1, 2, 3, 1, 0, 3, 0, 3, 0))             // chunked open, garbage, seal, double seal
	f.Add(fuzzTranscript(1, 0, 3, 5, 4, 9, 5, 2))                   // everything against missing sessions
	f.Add(fuzzTranscript(0, 0, 1, 7, 4, 0, 1, 3, 4, 0, 3, 0, 4, 0)) // live queries interleaved with ingest
	f.Add(bytes.Repeat(fuzzTranscript(0, 0), 40))                   // open flood into the session cap

	// A small pool of valid frames, varied by the argument byte. Events
	// use low function IDs and paths so anonymous sessions accept them.
	frames := make([][]byte, 8)
	for v := range frames {
		var evs []trace.Event
		for i := 0; i < 5+v*3; i++ {
			e, err := trace.NewEvent(uint32((i+v)%7), uint64(i%13))
			if err != nil {
				f.Fatal(err)
			}
			evs = append(evs, e)
		}
		frames[v] = EncodeFrame(evs)
	}

	f.Fuzz(func(t *testing.T, transcript []byte) {
		srv := New(Config{
			MaxSessions:  16,
			SessionQuota: 1 << 16,
			MaxBodyBytes: 1 << 16,
		})
		defer srv.Close()
		h := srv.Handler()

		do := func(method, path, ctype string, body []byte) *httptest.ResponseRecorder {
			req := httptest.NewRequest(method, path, bytes.NewReader(body))
			if ctype != "" {
				req.Header.Set("Content-Type", ctype)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req) // must not panic, whatever the transcript
			return rec
		}

		var ids []string
		pick := func(arg byte) string {
			if len(ids) == 0 || int(arg)%4 == 3 {
				return "s-bogus" // exercise the unknown-session path too
			}
			return ids[int(arg)%len(ids)]
		}

		for i := 0; i+1 < len(transcript); i += 2 {
			op, arg := transcript[i], transcript[i+1]
			switch op % 6 {
			case 0: // open (argument selects strategy)
				body := []byte(`{}`)
				if arg%3 == 1 {
					body = []byte(`{"chunk": 64}`)
				} else if arg%3 == 2 {
					body = []byte(`{"format": "wpp2"}`)
				}
				rec := do("POST", "/v1/sessions", "application/json", body)
				if rec.Code == http.StatusCreated {
					var info SessionInfo
					if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
						t.Fatalf("open response not JSON: %v", err)
					}
					ids = append(ids, info.ID)
				} else if rec.Code != http.StatusServiceUnavailable {
					t.Fatalf("open answered %d", rec.Code)
				}
			case 1: // valid frame
				do("POST", "/v1/sessions/"+pick(arg)+"/events", "application/octet-stream",
					frames[int(arg)%len(frames)])
			case 2: // garbage frame: raw transcript bytes as the body
				end := min(i+2+int(arg), len(transcript))
				do("POST", "/v1/sessions/"+pick(arg)+"/events", "application/octet-stream",
					transcript[i+2:end])
			case 3: // seal
				do("POST", "/v1/sessions/"+pick(arg)+"/seal", "application/json", []byte(`{"instructions": 1000}`))
			case 4: // hot query
				do("GET", "/v1/sessions/"+pick(arg)+"/hot?k=3&threshold=0.01", "", nil)
			case 5: // evict
				do("DELETE", "/v1/sessions/"+pick(arg), "", nil)
			}

			// Whole-protocol invariant: liveness never degrades.
			if rec := do("GET", "/healthz", "", nil); rec.Code != http.StatusOK {
				t.Fatalf("healthz answered %d mid-transcript", rec.Code)
			}
		}
	})
}
