package hotpath

import (
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/workloads"
	"repro/internal/wpp"
)

// equivChunkSize slices every bundled workload's Small trace into many
// chunks, so the equivalence suite exercises real boundary windows.
const equivChunkSize = 256

// workloadBoth builds one bundled workload at Small scale into both
// artifact forms from a single interpreter run.
func workloadBoth(t *testing.T, name string) (*wpp.WPP, *wpp.ChunkedWPP) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := wlc.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	var mb *wpp.MonoBuilder
	var cb *wpp.ChunkedBuilder
	m, err := interp.New(p, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) {
		mb.Add(e)
		cb.Add(e)
	})})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(p.Funcs))
	for i, f := range p.Funcs {
		names[i] = f.Name
	}
	mb = wpp.NewMonoBuilder(names, m.Numberings())
	cb = wpp.NewChunkedBuilder(names, m.Numberings(), equivChunkSize)
	if _, err := m.Run("main", w.Small); err != nil {
		t.Fatal(err)
	}
	return mb.Finish(m.Stats().Instructions), cb.Finish(m.Stats().Instructions)
}

// TestFoldEquivalenceOnWorkloads is the refactor's keystone property
// test: on every bundled workload, the fold-based analyses must
// reproduce the pre-refactor answers exactly. The oracle is FindByScan,
// which expands the grammar and scans the raw event stream — it never
// touches the fold engine. Find (monolithic, one-chunk fold) and
// FindChunked (multi-chunk fold with boundary merging, at several
// worker counts) must both match it, and the frequency folds must match
// a direct walk count.
func TestFoldEquivalenceOnWorkloads(t *testing.T) {
	opts := Options{MinLen: 2, MaxLen: 6, Threshold: 0.01}
	workerCounts := []int{1, 2, 4}
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, cw := workloadBoth(t, name)

			oracle, err := FindByScan(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Find(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, oracle) {
				t.Fatalf("Find diverges from scan oracle:\n got %v\nwant %v", got, oracle)
			}
			for _, nw := range workerCounts {
				cgot, err := FindChunked(cw, opts, nw)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cgot, oracle) {
					t.Fatalf("FindChunked(workers=%d) diverges from scan oracle:\n got %v\nwant %v", nw, cgot, oracle)
				}
			}

			// Frequency folds against a direct walk of the expanded trace.
			want := map[trace.Event]uint64{}
			w.Walk(func(e trace.Event) bool { want[e]++; return true })
			if got := EventFrequencies(w); !reflect.DeepEqual(got, want) {
				t.Fatalf("EventFrequencies diverges from walk count")
			}
			for _, nw := range workerCounts {
				if got := ChunkedEventFrequencies(cw, nw); !reflect.DeepEqual(got, want) {
					t.Fatalf("ChunkedEventFrequencies(workers=%d) diverges from walk count", nw)
				}
			}
		})
	}
}

// TestSpectrumEquivalenceOnWorkloads checks the spectra layer on top of
// the frequency fold: a workload's spectrum compared against itself
// must report zero divergence and no exclusive paths, on every bundled
// workload.
func TestSpectrumEquivalenceOnWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		w, _ := workloadBoth(t, name)
		d := CompareSpectra(w, w)
		if !d.Identical() {
			t.Fatalf("%s: self-comparison not identity: %d differing entries", name, len(d.Entries))
		}
		if d.SharedPaths != d.TotalPaths {
			t.Fatalf("%s: shared %d != total %d on self-comparison", name, d.SharedPaths, d.TotalPaths)
		}
	}
}
