package hotpath

import (
	"testing"

	"repro/internal/trace"
)

func TestCompareSpectraIdentical(t *testing.T) {
	ids := []uint64{1, 2, 3, 1, 2, 1}
	a := syntheticWPP(ids)
	b := syntheticWPP(ids)
	d := CompareSpectra(a, b)
	if !d.Identical() {
		t.Fatalf("identical traces diff: %+v", d.Entries)
	}
	if d.SharedPaths != 3 || d.TotalPaths != 3 {
		t.Fatalf("shared/total = %d/%d", d.SharedPaths, d.TotalPaths)
	}
}

func TestCompareSpectraFrequencyShift(t *testing.T) {
	a := syntheticWPP([]uint64{1, 1, 1, 2})
	b := syntheticWPP([]uint64{1, 2, 2, 2})
	d := CompareSpectra(a, b)
	if d.Identical() {
		t.Fatal("differing spectra reported identical")
	}
	if len(d.Entries) != 2 {
		t.Fatalf("%d entries, want 2", len(d.Entries))
	}
	for _, e := range d.Entries {
		if e.OnlyA || e.OnlyB {
			t.Fatalf("shared path flagged as exclusive: %+v", e)
		}
		if absDiff(e.CountA, e.CountB) != 2 {
			t.Fatalf("unexpected delta: %+v", e)
		}
	}
	if d.SharedPaths != 2 || d.TotalPaths != 2 {
		t.Fatalf("shared/total = %d/%d", d.SharedPaths, d.TotalPaths)
	}
}

func TestCompareSpectraExclusivePaths(t *testing.T) {
	a := syntheticWPP([]uint64{1, 1, 2})
	b := syntheticWPP([]uint64{1, 1, 3, 3, 3, 3, 3})
	d := CompareSpectra(a, b)
	if len(d.Entries) != 2 {
		t.Fatalf("%d entries, want 2 (path 2 only in A, path 3 only in B)", len(d.Entries))
	}
	// Path 3 has the larger delta (5), so it sorts first.
	first, second := d.Entries[0], d.Entries[1]
	if !first.OnlyB || first.Event != trace.MakeEvent(0, 3) || first.CountB != 5 {
		t.Fatalf("first entry %+v", first)
	}
	if !second.OnlyA || second.Event != trace.MakeEvent(0, 2) {
		t.Fatalf("second entry %+v", second)
	}
	if d.SharedPaths != 1 || d.TotalPaths != 3 {
		t.Fatalf("shared/total = %d/%d", d.SharedPaths, d.TotalPaths)
	}
}

func TestCompareSpectraOnRealProgram(t *testing.T) {
	// The same program on different inputs: the spectra localize the
	// behavioral difference to the branch the input change flips.
	src := `
func classify(x) {
    if x >= 100 { return 2; }
    if x >= 10 { return 1; }
    return 0;
}
func main(n) {
    var s = 0;
    var i = 0;
    while i < n { s = s + classify(i); i = i + 1; }
    return s;
}`
	small := programWPP(t, src, 9)   // never reaches the >=10 branches
	large := programWPP(t, src, 150) // reaches all branches
	same1 := programWPP(t, src, 9)

	if d := CompareSpectra(small, same1); !d.Identical() {
		t.Fatalf("identical runs diff: %+v", d.Entries)
	}
	d := CompareSpectra(small, large)
	if d.Identical() {
		t.Fatal("different inputs produced identical spectra")
	}
	// Some classify paths must be exclusive to the large run.
	foundExclusive := false
	for _, e := range d.Entries {
		if e.OnlyB {
			foundExclusive = true
		}
		if e.OnlyA && e.OnlyB {
			t.Fatalf("entry exclusive to both: %+v", e)
		}
	}
	if !foundExclusive {
		t.Fatal("no paths exclusive to the large run")
	}
}
