package hotpath

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/wpp"
)

// Path spectra comparison (Reps, Ball, Das & Larus, FSE 1997 — the
// application family the WPP paper positions itself against): two runs'
// path-frequency spectra are compared to localize behavioral differences.
// Because a WPP subsumes the spectrum, the comparison runs directly on
// two compressed traces.

// SpectrumDiffEntry describes one acyclic path whose frequency differs
// between two runs.
type SpectrumDiffEntry struct {
	Event trace.Event
	// CountA and CountB are the path's execution counts in each run.
	CountA, CountB uint64
	// OnlyA/OnlyB mark paths exercised in exactly one run — the signal
	// spectra-based debugging looks for first.
	OnlyA, OnlyB bool
}

// SpectrumDiff summarizes the comparison of two runs' path spectra.
type SpectrumDiff struct {
	// Entries lists paths with differing counts, the largest absolute
	// difference first; ties break toward paths exercised in only one
	// run, then by event.
	Entries []SpectrumDiffEntry
	// SharedPaths counts paths exercised (with any frequency) in both
	// runs; TotalPaths counts paths exercised in either.
	SharedPaths, TotalPaths int
}

// CompareSpectra computes the path-spectrum difference of two WPPs,
// without decompressing either. The two profiles must come from the same
// compiled program for the event IDs to be comparable; callers are
// responsible for that (as with any spectra comparison).
func CompareSpectra(a, b *wpp.WPP) *SpectrumDiff {
	return diffSpectra(EventFrequencies(a), EventFrequencies(b))
}

// CompareSpectraView computes the same spectrum difference over two
// lazy views, chunk-parallel on `workers` goroutines per side. Unlike
// CompareSpectra it accepts any artifact shape — chunked spectra merge
// per chunk, so the monolithic-only restriction does not apply.
func CompareSpectraView(a, b *wpp.ArtifactView, workers int) (*SpectrumDiff, error) {
	fa, err := EventFrequenciesView(a, workers)
	if err != nil {
		return nil, err
	}
	fb, err := EventFrequenciesView(b, workers)
	if err != nil {
		return nil, err
	}
	return diffSpectra(fa, fb), nil
}

// diffSpectra compares two frequency maps into the sorted diff report.
func diffSpectra(fa, fb map[trace.Event]uint64) *SpectrumDiff {
	diff := &SpectrumDiff{}
	seen := map[trace.Event]bool{}
	for e, ca := range fa {
		seen[e] = true
		cb := fb[e]
		if cb > 0 {
			diff.SharedPaths++
		}
		if ca != cb {
			diff.Entries = append(diff.Entries, SpectrumDiffEntry{
				Event: e, CountA: ca, CountB: cb, OnlyB: false, OnlyA: cb == 0,
			})
		}
	}
	for e, cb := range fb {
		if seen[e] {
			continue
		}
		seen[e] = true
		diff.Entries = append(diff.Entries, SpectrumDiffEntry{Event: e, CountB: cb, OnlyB: true})
	}
	diff.TotalPaths = len(seen)
	sort.Slice(diff.Entries, func(i, j int) bool {
		di := absDiff(diff.Entries[i].CountA, diff.Entries[i].CountB)
		dj := absDiff(diff.Entries[j].CountA, diff.Entries[j].CountB)
		if di != dj {
			return di > dj
		}
		oi := diff.Entries[i].OnlyA || diff.Entries[i].OnlyB
		oj := diff.Entries[j].OnlyA || diff.Entries[j].OnlyB
		if oi != oj {
			return oi
		}
		return diff.Entries[i].Event < diff.Entries[j].Event
	})
	return diff
}

// Identical reports whether the two spectra match exactly.
func (d *SpectrumDiff) Identical() bool { return len(d.Entries) == 0 }

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
