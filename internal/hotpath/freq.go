package hotpath

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/sequitur"
	"repro/internal/trace"
	"repro/internal/wpp"
)

// freqFold is the event-frequency analysis expressed over the engine:
// each terminal occurrence in a rule body contributes the rule's
// derivation-tree use count, and chunk results merge by summation.
type freqFold struct{}

func (freqFold) Chunk(_ int, a *engine.Analysis) map[trace.Event]uint64 {
	m := make(map[trace.Event]uint64)
	a.Terminals(func(v, uses uint64) {
		m[trace.Event(v)] += uses
	})
	return m
}

func (freqFold) Merge(acc, next map[trace.Event]uint64) map[trace.Event]uint64 {
	for e, n := range next {
		acc[e] += n
	}
	return acc
}

// frequencies is the single implementation behind EventFrequencies and
// ChunkedEventFrequencies.
func frequencies(snaps []*sequitur.Snapshot, workers int) map[trace.Event]uint64 {
	freqs := engine.Run(snaps, workers, freqFold{})
	if freqs == nil {
		freqs = make(map[trace.Event]uint64)
	}
	return freqs
}

// EventFrequencies returns the execution count of every distinct acyclic
// path event, computed from the grammar without decompressing the trace.
func EventFrequencies(w *wpp.WPP) map[trace.Event]uint64 {
	return frequencies([]*sequitur.Snapshot{w.Grammar}, 1)
}

// ChunkedEventFrequencies returns the execution count of every distinct
// event, computed per chunk in compressed form on `workers` goroutines
// (<=0 means GOMAXPROCS) and merged. It matches EventFrequencies on a
// monolithic WPP over the same stream exactly.
func ChunkedEventFrequencies(c *wpp.ChunkedWPP, workers int) map[trace.Event]uint64 {
	return frequencies(c.Chunks, workers)
}

// PathProfileEntry is one row of a classic Ball–Larus path profile,
// recovered from the compressed trace.
type PathProfileEntry struct {
	Event trace.Event
	Count uint64
	// Cost is Count times the path's instruction count.
	Cost uint64
	// Fraction is Cost over total executed instructions.
	Fraction float64
}

// PathProfile recovers the classic path profile (path → frequency,
// weighted by cost) from the WPP, sorted hottest first. This is the
// paper's observation that a WPP subsumes a path profile: the aggregate
// view falls out of the complete trace.
func PathProfile(w *wpp.WPP) []PathProfileEntry {
	freqs := EventFrequencies(w)
	entries := make([]PathProfileEntry, 0, len(freqs))
	total := w.Instructions
	for e, n := range freqs {
		cost := n * w.PathCost(e)
		var frac float64
		if total > 0 {
			frac = float64(cost) / float64(total)
		}
		entries = append(entries, PathProfileEntry{Event: e, Count: n, Cost: cost, Fraction: frac})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Cost != entries[j].Cost {
			return entries[i].Cost > entries[j].Cost
		}
		return entries[i].Event < entries[j].Event
	})
	return entries
}

// FuncProfileEntry aggregates a path profile to function granularity.
type FuncProfileEntry struct {
	Func     uint32
	Events   uint64
	Cost     uint64
	Fraction float64
}

// FuncProfile attributes execution cost to functions, recovered entirely
// from the compressed trace.
func FuncProfile(w *wpp.WPP) []FuncProfileEntry {
	byFunc := map[uint32]*FuncProfileEntry{}
	for e, n := range EventFrequencies(w) {
		fe := byFunc[e.Func()]
		if fe == nil {
			fe = &FuncProfileEntry{Func: e.Func()}
			byFunc[e.Func()] = fe
		}
		fe.Events += n
		fe.Cost += n * w.PathCost(e)
	}
	out := make([]FuncProfileEntry, 0, len(byFunc))
	for _, fe := range byFunc {
		if w.Instructions > 0 {
			fe.Fraction = float64(fe.Cost) / float64(w.Instructions)
		}
		out = append(out, *fe)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Func < out[j].Func
	})
	return out
}
