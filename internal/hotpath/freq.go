package hotpath

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/wpp"
)

// EventFrequencies returns the execution count of every distinct acyclic
// path event, computed from the grammar without decompressing the trace:
// each terminal occurrence in a rule body contributes the rule's
// derivation-tree use count.
func EventFrequencies(w *wpp.WPP) map[trace.Event]uint64 {
	a := newAnalysis(w.Grammar)
	freqs := make(map[trace.Event]uint64)
	for r, rhs := range a.snap.Rules {
		uses := a.uses[r]
		for _, s := range rhs {
			if !s.IsRule() {
				freqs[trace.Event(s.Value)] += uses
			}
		}
	}
	return freqs
}

// PathProfileEntry is one row of a classic Ball–Larus path profile,
// recovered from the compressed trace.
type PathProfileEntry struct {
	Event trace.Event
	Count uint64
	// Cost is Count times the path's instruction count.
	Cost uint64
	// Fraction is Cost over total executed instructions.
	Fraction float64
}

// PathProfile recovers the classic path profile (path → frequency,
// weighted by cost) from the WPP, sorted hottest first. This is the
// paper's observation that a WPP subsumes a path profile: the aggregate
// view falls out of the complete trace.
func PathProfile(w *wpp.WPP) []PathProfileEntry {
	freqs := EventFrequencies(w)
	entries := make([]PathProfileEntry, 0, len(freqs))
	total := w.Instructions
	for e, n := range freqs {
		cost := n * w.PathCost(e)
		var frac float64
		if total > 0 {
			frac = float64(cost) / float64(total)
		}
		entries = append(entries, PathProfileEntry{Event: e, Count: n, Cost: cost, Fraction: frac})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Cost != entries[j].Cost {
			return entries[i].Cost > entries[j].Cost
		}
		return entries[i].Event < entries[j].Event
	})
	return entries
}

// FuncProfileEntry aggregates a path profile to function granularity.
type FuncProfileEntry struct {
	Func     uint32
	Events   uint64
	Cost     uint64
	Fraction float64
}

// FuncProfile attributes execution cost to functions, recovered entirely
// from the compressed trace.
func FuncProfile(w *wpp.WPP) []FuncProfileEntry {
	byFunc := map[uint32]*FuncProfileEntry{}
	for e, n := range EventFrequencies(w) {
		fe := byFunc[e.Func()]
		if fe == nil {
			fe = &FuncProfileEntry{Func: e.Func()}
			byFunc[e.Func()] = fe
		}
		fe.Events += n
		fe.Cost += n * w.PathCost(e)
	}
	out := make([]FuncProfileEntry, 0, len(byFunc))
	for _, fe := range byFunc {
		if w.Instructions > 0 {
			fe.Fraction = float64(fe.Cost) / float64(w.Instructions)
		}
		out = append(out, *fe)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Func < out[j].Func
	})
	return out
}
