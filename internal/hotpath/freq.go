package hotpath

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/wpp"
)

// freqFold is the event-frequency analysis expressed over the engine:
// each terminal occurrence in a rule body contributes the rule's
// derivation-tree use count, and chunk results merge by summation.
type freqFold struct{}

func (freqFold) Chunk(_ int, a *engine.Analysis) map[trace.Event]uint64 {
	m := make(map[trace.Event]uint64)
	a.Terminals(func(v, uses uint64) {
		m[trace.Event(v)] += uses
	})
	return m
}

func (freqFold) Merge(acc, next map[trace.Event]uint64) map[trace.Event]uint64 {
	for e, n := range next {
		acc[e] += n
	}
	return acc
}

// frequencies is the single implementation behind EventFrequencies,
// ChunkedEventFrequencies, and EventFrequenciesView.
func frequencies(src engine.Source, workers int) (map[trace.Event]uint64, error) {
	freqs, err := engine.RunSource(src, workers, freqFold{})
	if err != nil {
		return nil, err
	}
	if freqs == nil {
		freqs = make(map[trace.Event]uint64)
	}
	return freqs, nil
}

// EventFrequencies returns the execution count of every distinct acyclic
// path event, computed from the grammar without decompressing the trace.
func EventFrequencies(w *wpp.WPP) map[trace.Event]uint64 {
	freqs, _ := frequencies(engine.SliceSource{w.Grammar}, 1)
	return freqs
}

// ChunkedEventFrequencies returns the execution count of every distinct
// event, computed per chunk in compressed form on `workers` goroutines
// (<=0 means GOMAXPROCS) and merged. It matches EventFrequencies on a
// monolithic WPP over the same stream exactly.
func ChunkedEventFrequencies(c *wpp.ChunkedWPP, workers int) map[trace.Event]uint64 {
	freqs, _ := frequencies(engine.SliceSource(c.Chunks), workers)
	return freqs
}

// EventFrequenciesView computes the same frequency map directly over a
// lazy view, materializing one chunk per worker at a time. It matches
// the eager functions exactly on every artifact.
func EventFrequenciesView(v *wpp.ArtifactView, workers int) (map[trace.Event]uint64, error) {
	return frequencies(v, workers)
}

// PathProfileEntry is one row of a classic Ball–Larus path profile,
// recovered from the compressed trace.
type PathProfileEntry struct {
	Event trace.Event
	Count uint64
	// Cost is Count times the path's instruction count.
	Cost uint64
	// Fraction is Cost over total executed instructions.
	Fraction float64
}

// PathProfile recovers the classic path profile (path → frequency,
// weighted by cost) from the WPP, sorted hottest first. This is the
// paper's observation that a WPP subsumes a path profile: the aggregate
// view falls out of the complete trace.
func PathProfile(w *wpp.WPP) []PathProfileEntry {
	return pathProfile(EventFrequencies(w), w.PathCost, w.Instructions)
}

// PathProfileView recovers the path profile directly from a lazy view,
// chunk-parallel on `workers` goroutines. It matches PathProfile on the
// eagerly decoded artifact exactly.
func PathProfileView(v *wpp.ArtifactView, workers int) ([]PathProfileEntry, error) {
	freqs, err := EventFrequenciesView(v, workers)
	if err != nil {
		return nil, err
	}
	return pathProfile(freqs, v.PathCost, v.TotalInstructions()), nil
}

// pathProfile converts a frequency map into the sorted profile under
// the given cost model.
func pathProfile(freqs map[trace.Event]uint64, costOf func(trace.Event) uint64, total uint64) []PathProfileEntry {
	entries := make([]PathProfileEntry, 0, len(freqs))
	for e, n := range freqs {
		cost := n * costOf(e)
		var frac float64
		if total > 0 {
			frac = float64(cost) / float64(total)
		}
		entries = append(entries, PathProfileEntry{Event: e, Count: n, Cost: cost, Fraction: frac})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Cost != entries[j].Cost {
			return entries[i].Cost > entries[j].Cost
		}
		return entries[i].Event < entries[j].Event
	})
	return entries
}

// FuncProfileEntry aggregates a path profile to function granularity.
type FuncProfileEntry struct {
	Func     uint32
	Events   uint64
	Cost     uint64
	Fraction float64
}

// FuncProfile attributes execution cost to functions, recovered entirely
// from the compressed trace.
func FuncProfile(w *wpp.WPP) []FuncProfileEntry {
	return funcProfile(EventFrequencies(w), w.PathCost, w.Instructions)
}

// FuncProfileView attributes execution cost to functions directly from
// a lazy view, chunk-parallel on `workers` goroutines. It matches
// FuncProfile on the eagerly decoded artifact exactly.
func FuncProfileView(v *wpp.ArtifactView, workers int) ([]FuncProfileEntry, error) {
	freqs, err := EventFrequenciesView(v, workers)
	if err != nil {
		return nil, err
	}
	return funcProfile(freqs, v.PathCost, v.TotalInstructions()), nil
}

// funcProfile aggregates a frequency map to function granularity under
// the given cost model.
func funcProfile(freqs map[trace.Event]uint64, costOf func(trace.Event) uint64, total uint64) []FuncProfileEntry {
	byFunc := map[uint32]*FuncProfileEntry{}
	for e, n := range freqs {
		fe := byFunc[e.Func()]
		if fe == nil {
			fe = &FuncProfileEntry{Func: e.Func()}
			byFunc[e.Func()] = fe
		}
		fe.Events += n
		fe.Cost += n * costOf(e)
	}
	out := make([]FuncProfileEntry, 0, len(byFunc))
	for _, fe := range byFunc {
		if total > 0 {
			fe.Fraction = float64(fe.Cost) / float64(total)
		}
		out = append(out, *fe)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Func < out[j].Func
	})
	return out
}
