package hotpath

import (
	"testing"

	"repro/internal/trace"
)

func TestEventFrequenciesMatchWalk(t *testing.T) {
	w := programWPP(t, `
func spin(k) {
    var s = 0;
    var i = 0;
    while i < k { s = s + i; i = i + 1; }
    return s;
}
func main(n) {
    var acc = 0;
    var i = 0;
    while i < n {
        acc = acc + spin(i % 7);
        i = i + 1;
    }
    return acc;
}`, 80)
	freqs := EventFrequencies(w)
	// Oracle: count by walking the expansion.
	direct := map[trace.Event]uint64{}
	var total uint64
	w.Walk(func(e trace.Event) bool {
		direct[e]++
		total++
		return true
	})
	if len(freqs) != len(direct) {
		t.Fatalf("%d distinct events from grammar, %d from walk", len(freqs), len(direct))
	}
	var sum uint64
	for e, n := range direct {
		if freqs[e] != n {
			t.Fatalf("event %v: grammar says %d, walk says %d", e, freqs[e], n)
		}
		sum += freqs[e]
	}
	if sum != total || sum != w.Events {
		t.Fatalf("frequency sum %d != events %d", sum, w.Events)
	}
}

func TestPathProfile(t *testing.T) {
	w := programWPP(t, `
func main(n) {
    var s = 0;
    var i = 0;
    while i < n {
        if i % 10 == 0 { s = s + 100; } else { s = s + 1; }
        i = i + 1;
    }
    return s;
}`, 200)
	prof := PathProfile(w)
	if len(prof) == 0 {
		t.Fatal("empty profile")
	}
	var costSum uint64
	for i, e := range prof {
		if i > 0 && e.Cost > prof[i-1].Cost {
			t.Fatal("profile not sorted by cost")
		}
		costSum += e.Cost
	}
	// Every instruction belongs to exactly one path occurrence.
	if costSum != w.Instructions {
		t.Fatalf("profile cost %d != instructions %d", costSum, w.Instructions)
	}
	// The hot loop path must dominate.
	if prof[0].Fraction < 0.3 {
		t.Fatalf("hottest path only %.2f of execution", prof[0].Fraction)
	}
}

func TestFuncProfile(t *testing.T) {
	w := programWPP(t, `
func busy(k) {
    var s = 0;
    var i = 0;
    while i < 50 { s = s + i * k; i = i + 1; }
    return s;
}
func idle(k) { return k; }
func main(n) {
    var acc = 0;
    var i = 0;
    while i < n { acc = acc + busy(i) + idle(i); i = i + 1; }
    return acc;
}`, 50)
	prof := FuncProfile(w)
	if len(prof) != 3 {
		t.Fatalf("%d functions in profile, want 3", len(prof))
	}
	var costSum uint64
	var frac float64
	for _, fe := range prof {
		costSum += fe.Cost
		frac += fe.Fraction
	}
	if costSum != w.Instructions {
		t.Fatalf("func profile cost %d != instructions %d", costSum, w.Instructions)
	}
	if frac < 0.999 || frac > 1.001 {
		t.Fatalf("fractions sum to %v", frac)
	}
	// busy (func 0) must rank first.
	if prof[0].Func != 0 {
		t.Fatalf("hottest function is %d, want 0 (busy): %+v", prof[0].Func, prof)
	}
}

func TestEventFrequenciesEmpty(t *testing.T) {
	w := syntheticWPP(nil)
	if n := len(EventFrequencies(w)); n != 0 {
		t.Fatalf("%d frequencies for empty trace", n)
	}
	if p := PathProfile(w); len(p) != 0 {
		t.Fatalf("nonempty profile for empty trace")
	}
}
