package hotpath

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
	"repro/internal/trace"
	"repro/internal/wpp"
)

// This file runs the hotpath analyses on chunked WPPs, parallelizing the
// per-chunk work across a bounded worker pool. Every function here is an
// exact equivalent of its monolithic counterpart: a window of the full
// trace either lies entirely inside one chunk — counted on that chunk's
// grammar, in compressed form — or it crosses a chunk boundary and is
// counted once, attributed to the chunk containing its start position,
// from materialized boundary regions of at most MaxLen-1 events per side.
// Merging is by summation, so worker scheduling cannot change any count.

func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// forEachChunk runs fn(i) for every chunk index on `workers` goroutines.
// fn must only write state owned by index i.
func forEachChunk(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ChunkedEventFrequencies returns the execution count of every distinct
// event, computed per chunk in compressed form on `workers` goroutines
// (<=0 means GOMAXPROCS) and merged. It matches EventFrequencies on a
// monolithic WPP over the same stream exactly.
func ChunkedEventFrequencies(c *wpp.ChunkedWPP, workers int) map[trace.Event]uint64 {
	per := make([]map[trace.Event]uint64, len(c.Chunks))
	forEachChunk(len(c.Chunks), normWorkers(workers), func(i int) {
		a := newAnalysis(c.Chunks[i])
		m := make(map[trace.Event]uint64)
		for r, rhs := range a.snap.Rules {
			uses := a.uses[r]
			for _, s := range rhs {
				if !s.IsRule() {
					m[trace.Event(s.Value)] += uses
				}
			}
		}
		per[i] = m
	})
	freqs := make(map[trace.Event]uint64)
	for _, m := range per {
		for e, n := range m {
			freqs[e] += n
		}
	}
	return freqs
}

// chunkWindows is the per-chunk portion of the hot-subpath scan: window
// counts for every length, plus the chunk's boundary regions.
type chunkWindows struct {
	length uint64              // expanded length of the chunk
	counts []map[string]uint64 // counts[l-minLen]: windows fully inside the chunk
	head   []uint64            // first min(length, maxLen-1) events
	tail   []uint64            // last min(length, maxLen-1) events
}

// FindChunked locates the same minimal hot subpaths as Find would on a
// monolithic WPP of the identical event stream, analyzing a chunked WPP
// with per-chunk passes on `workers` goroutines (<=0 means GOMAXPROCS).
func FindChunked(c *wpp.ChunkedWPP, opts Options, workers int) ([]Subpath, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	nl := opts.MaxLen - opts.MinLen + 1
	per := make([]*chunkWindows, len(c.Chunks))
	edge := opts.MaxLen - 1 // boundary-region width per side
	met := opts.metrics()

	forEachChunk(len(c.Chunks), normWorkers(workers), func(i int) {
		met.ChunksScanned.Inc()
		a := newAnalysis(c.Chunks[i])
		cw := &chunkWindows{counts: make([]map[string]uint64, nl)}
		if len(a.expLen) > 0 {
			cw.length = a.expLen[0]
		}
		for l := opts.MinLen; l <= opts.MaxLen; l++ {
			m := make(map[string]uint64)
			a.countWindows(l, m)
			cw.counts[l-opts.MinLen] = m
		}
		k := uint64(edge)
		if k > cw.length {
			k = cw.length
		}
		if k > 0 {
			cw.head = a.collect(0, 0, k, nil)
			cw.tail = a.collect(0, cw.length-k, k, nil)
		}
		per[i] = cw
	})

	hot := map[string]bool{}
	var result []Subpath
	merged := make(map[string]uint64)
	for l := opts.MinLen; l <= opts.MaxLen; l++ {
		clear(merged)
		for _, cw := range per {
			for k, n := range cw.counts[l-opts.MinLen] {
				merged[k] += n
			}
		}
		countCrossing(per, l, merged, met.BoundaryWindows)
		result = harvest(merged, l, opts, hot, result, c.PathCost, c.Instructions)
	}
	sortSubpaths(result)
	met.SubpathsEmitted.Add(uint64(len(result)))
	return result, nil
}

// countCrossing adds, for every chunk i, the windows of length l that
// start inside chunk i but extend past its end. Each crossing window's
// start position lies in exactly one chunk, so each occurrence is counted
// exactly once, with weight 1 (boundary regions are raw positions, not
// grammar-weighted).
func countCrossing(per []*chunkWindows, l int, counts map[string]uint64, bw *obsv.Counter) {
	if l < 2 {
		return // a 1-window cannot cross a boundary
	}
	key := make([]byte, 0, l*8)
	stream := make([]uint64, 0, 2*l)
	for i, cw := range per {
		t := uint64(len(cw.tail)) // tail covers all crossing start positions: t >= min(length, l-1)
		if cw.length == 0 {
			continue
		}
		// stream = tail of chunk i ++ up to l-1 following events.
		stream = append(stream[:0], cw.tail...)
		need := l - 1
		for j := i + 1; j < len(per) && need > 0; j++ {
			h := per[j].head
			if len(h) > need {
				h = h[:need]
			}
			stream = append(stream, h...)
			need -= len(h)
		}
		// Window starts at stream index s, crossing iff it extends past
		// the chunk end (s+l > t) while starting inside it (s < t).
		for s := uint64(0); s < t; s++ {
			if s+uint64(l) <= t {
				continue // fully inside chunk i: already grammar-counted
			}
			if s+uint64(l) > uint64(len(stream)) {
				break // runs past the end of the trace
			}
			key = key[:0]
			for _, v := range stream[s : s+uint64(l)] {
				key = binary.BigEndian.AppendUint64(key, v)
			}
			counts[string(key)]++
			bw.Inc()
		}
	}
}
