package hotpath

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/wpp"
)

// syntheticWPP builds a WPP over function 0 from a bare event-ID stream,
// with every path costing 1 instruction.
func syntheticWPP(ids []uint64) *wpp.WPP {
	b := wpp.NewMonoBuilder([]string{"f"}, nil)
	for _, id := range ids {
		b.Add(trace.MakeEvent(0, id))
	}
	return b.Finish(uint64(len(ids)))
}

func programWPP(t *testing.T, src string, args ...int64) *wpp.WPP {
	t.Helper()
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var b *wpp.MonoBuilder
	m, err := interp.New(p, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) { b.Add(e) })})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(p.Funcs))
	for i, f := range p.Funcs {
		names[i] = f.Name
	}
	b = wpp.NewMonoBuilder(names, m.Numberings())
	if _, err := m.Run("main", args...); err != nil {
		t.Fatal(err)
	}
	return b.Finish(m.Stats().Instructions)
}

func TestOptionsValidation(t *testing.T) {
	w := syntheticWPP([]uint64{1, 2, 3})
	bad := []Options{
		{MinLen: 0, MaxLen: 2, Threshold: 0.1},
		{MinLen: 3, MaxLen: 2, Threshold: 0.1},
		{MinLen: 1, MaxLen: 2, Threshold: 0},
		{MinLen: 1, MaxLen: 2, Threshold: 1.5},
	}
	for _, o := range bad {
		if _, err := Find(w, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
		if _, err := FindByScan(w, o); err == nil {
			t.Errorf("scan: options %+v accepted", o)
		}
	}
}

func TestUniformRepetition(t *testing.T) {
	// 100 identical events: the 2-window occurs 99 times and covers
	// ~198% (overlapping); it is the only minimal hot subpath at
	// MinLen 2.
	ids := make([]uint64, 100)
	w := syntheticWPP(ids)
	got, err := Find(w, Options{MinLen: 2, MaxLen: 6, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d subpaths, want 1: %+v", len(got), got)
	}
	sp := got[0]
	if len(sp.Events) != 2 || sp.Count != 99 || sp.Cost != 198 {
		t.Fatalf("unexpected subpath %+v", sp)
	}
}

func TestAlternation(t *testing.T) {
	// ABABAB...: at length 2 both AB (50x... ) and BA are hot; length-3
	// windows all contain one of them.
	ids := make([]uint64, 100)
	for i := range ids {
		ids[i] = uint64(i % 2)
	}
	w := syntheticWPP(ids)
	got, err := Find(w, Options{MinLen: 2, MaxLen: 5, Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d subpaths, want 2 (AB and BA): %+v", len(got), got)
	}
	for _, sp := range got {
		if len(sp.Events) != 2 {
			t.Fatalf("non-minimal subpath reported: %+v", sp)
		}
	}
}

func TestMinimalityAcrossLengths(t *testing.T) {
	// A trace where a 3-window is hot but no 2-window reaches the
	// threshold: pattern XYZ repeated, separated by unique noise, with
	// the threshold tuned between a 2-window's and a 3-window's cost.
	var ids []uint64
	next := uint64(100)
	for i := 0; i < 30; i++ {
		ids = append(ids, 1, 2, 3)
		ids = append(ids, next) // unique separator
		next++
	}
	w := syntheticWPP(ids)
	total := float64(len(ids))
	// 2-windows (1,2) and (2,3) occur 30 times: cost 60. 3-window
	// (1,2,3) occurs 30 times: cost 90. Pick threshold between.
	th := 75.0 / total
	got, err := Find(w, Options{MinLen: 2, MaxLen: 4, Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Events) != 3 {
		t.Fatalf("want exactly the 3-subpath, got %+v", got)
	}
	if got[0].Count != 30 || got[0].Cost != 90 {
		t.Fatalf("unexpected stats %+v", got[0])
	}
}

func TestSingleEventWindows(t *testing.T) {
	ids := []uint64{5, 5, 5, 7, 5, 5}
	w := syntheticWPP(ids)
	got, err := Find(w, Options{MinLen: 1, MaxLen: 1, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Count != 5 || got[0].Events[0].Path() != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestThresholdBoundary(t *testing.T) {
	// Fraction exactly at the threshold counts as hot.
	ids := []uint64{1, 1, 2, 3} // window (1,1) cost 2 of 4 = 0.5
	w := syntheticWPP(ids)
	got, err := Find(w, Options{MinLen: 2, MaxLen: 2, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Every 2-window of the 4-event trace costs exactly 2/4 = 0.5: all
	// three are hot at the boundary.
	if len(got) != 3 {
		t.Fatalf("boundary fraction not hot: %+v", got)
	}
	for _, sp := range got {
		if sp.Fraction != 0.5 {
			t.Fatalf("fraction %v != 0.5", sp.Fraction)
		}
	}
}

func TestEmptyAndTinyTraces(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		w := syntheticWPP(make([]uint64, n))
		got, err := Find(w, Options{MinLen: 4, MaxLen: 8, Threshold: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if n <= 4 && len(got) != 0 {
			t.Fatalf("n=%d: got %+v", n, got)
		}
	}
}

func TestCostsWeighting(t *testing.T) {
	// Two patterns with equal frequency; the one whose paths are more
	// expensive must rank first.
	w := programWPP(t, `
func cheap(x) { return x + 1; }
func pricey(x) {
    var s = 0;
    var i = 0;
    while i < 20 { s = s + i * x; i = i + 1; }
    return s;
}
func main(n) {
    var acc = 0;
    var i = 0;
    while i < n {
        acc = acc + cheap(i) + pricey(i);
        i = i + 1;
    }
    return acc;
}`, 100)
	got, err := Find(w, Options{MinLen: 2, MaxLen: 4, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no hot subpaths in a hot loop")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Cost > got[i-1].Cost {
			t.Fatal("results not sorted by cost")
		}
	}
}

// TestScanOracle is the package's keystone: the compressed-form analysis
// must agree exactly with decompress-and-scan on every input.
func TestScanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 50 + rng.Intn(500)
		alpha := 2 + rng.Intn(6)
		ids := make([]uint64, n)
		for i := range ids {
			if rng.Intn(3) > 0 && i >= 4 {
				// Encourage repetition by copying a recent window.
				ids[i] = ids[i-4]
			} else {
				ids[i] = uint64(rng.Intn(alpha))
			}
		}
		w := syntheticWPP(ids)
		opts := Options{
			MinLen:    1 + rng.Intn(3),
			MaxLen:    3 + rng.Intn(6),
			Threshold: []float64{0.01, 0.05, 0.2}[rng.Intn(3)],
		}
		fast, err := Find(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := FindByScan(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("trial %d (n=%d opts=%+v):\n fast=%v\n slow=%v", trial, n, opts, render(fast), render(slow))
		}
	}
}

func TestScanOracleOnRealProgram(t *testing.T) {
	w := programWPP(t, `
func step(x) {
    if x % 2 == 0 { return x / 2; }
    return 3 * x + 1;
}
func main(n) {
    var i = 1;
    var s = 0;
    while i <= n {
        var x = i;
        while x != 1 { x = step(x); s = s + 1; }
        i = i + 1;
    }
    return s;
}`, 60)
	opts := Options{MinLen: 2, MaxLen: 8, Threshold: 0.01}
	fast, err := Find(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := FindByScan(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("mismatch on real program:\n fast=%v\n slow=%v", render(fast), render(slow))
	}
	if len(fast) == 0 {
		t.Fatal("collatz driver has no hot subpaths at 1%")
	}
}

func TestCoverage(t *testing.T) {
	s := []Subpath{{Fraction: 0.4}, {Fraction: 0.3}}
	if got := Coverage(s); got < 0.69 || got > 0.71 {
		t.Fatalf("Coverage = %v", got)
	}
	if Coverage(nil) != 0 {
		t.Fatal("empty coverage nonzero")
	}
}

func render(s []Subpath) string {
	out := ""
	for _, sp := range s {
		out += fmt.Sprintf("\n  %v count=%d cost=%d", sp.Events, sp.Count, sp.Cost)
	}
	return out
}
