package hotpath

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/wpp"
)

// syntheticChunked mirrors syntheticWPP for the chunked pipeline.
func syntheticChunked(ids []uint64, chunkSize uint64) *wpp.ChunkedWPP {
	b := wpp.NewChunkedBuilder([]string{"f"}, nil, chunkSize)
	for _, id := range ids {
		b.Add(trace.MakeEvent(0, id))
	}
	return b.Finish(uint64(len(ids)))
}

// programBoth builds a monolithic and a chunked WPP from one interpreter
// run, so the chunked analyses can be checked against the monolithic
// oracle on a real program with real path costs.
func programBoth(t *testing.T, src string, chunkSize uint64, args ...int64) (*wpp.WPP, *wpp.ChunkedWPP) {
	t.Helper()
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var mb *wpp.MonoBuilder
	var cb *wpp.ChunkedBuilder
	m, err := interp.New(p, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) {
		mb.Add(e)
		cb.Add(e)
	})})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(p.Funcs))
	for i, f := range p.Funcs {
		names[i] = f.Name
	}
	mb = wpp.NewMonoBuilder(names, m.Numberings())
	cb = wpp.NewChunkedBuilder(names, m.Numberings(), chunkSize)
	if _, err := m.Run("main", args...); err != nil {
		t.Fatal(err)
	}
	return mb.Finish(m.Stats().Instructions), cb.Finish(m.Stats().Instructions)
}

// TestFindChunkedOracle: FindChunked must agree exactly with the
// monolithic Find over the same stream, for chunk sizes that slice
// windows every way — including chunkSize 1, where every multi-event
// window crosses a boundary, and a chunk larger than the whole trace.
func TestFindChunkedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	trials := 30
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		n := 30 + rng.Intn(400)
		alpha := 2 + rng.Intn(6)
		ids := make([]uint64, n)
		for i := range ids {
			if rng.Intn(3) > 0 && i >= 4 {
				ids[i] = ids[i-4]
			} else {
				ids[i] = uint64(rng.Intn(alpha))
			}
		}
		opts := Options{
			MinLen:    1 + rng.Intn(3),
			MaxLen:    3 + rng.Intn(6),
			Threshold: []float64{0.01, 0.05, 0.2}[rng.Intn(3)],
		}
		mono := syntheticWPP(ids)
		want, err := Find(mono, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range []uint64{1, 2, 7, 64, uint64(n), uint64(n) + 100} {
			c := syntheticChunked(ids, cs)
			for _, workers := range []int{1, 4} {
				got, err := FindChunked(c, opts, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d (n=%d chunk=%d workers=%d opts=%+v):\n chunked=%v\n mono=%v",
						trial, n, cs, workers, opts, render(got), render(want))
				}
			}
		}
	}
}

func TestFindChunkedOracleOnRealProgram(t *testing.T) {
	src := `
func step(x) {
    if x % 2 == 0 { return x / 2; }
    return 3 * x + 1;
}
func main(n) {
    var i = 1;
    var s = 0;
    while i <= n {
        var x = i;
        while x != 1 { x = step(x); s = s + 1; }
        i = i + 1;
    }
    return s;
}`
	opts := Options{MinLen: 2, MaxLen: 8, Threshold: 0.01}
	for _, cs := range []uint64{1, 37, 500} {
		mono, chunked := programBoth(t, src, cs, 60)
		want, err := Find(mono, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FindChunked(chunked, opts, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk=%d:\n chunked=%v\n mono=%v", cs, render(got), render(want))
		}
		if len(got) == 0 {
			t.Fatal("collatz driver has no hot subpaths at 1%")
		}
	}
}

func TestFindChunkedValidation(t *testing.T) {
	c := syntheticChunked([]uint64{1, 2, 3}, 2)
	if _, err := FindChunked(c, Options{MinLen: 0, MaxLen: 2, Threshold: 0.1}, 1); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestFindChunkedEmpty(t *testing.T) {
	c := syntheticChunked(nil, 4)
	got, err := FindChunked(c, Options{MinLen: 2, MaxLen: 4, Threshold: 0.1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace produced %+v", got)
	}
}

// TestChunkedEventFrequenciesOracle: the merged per-chunk frequency map
// must equal the monolithic one for every chunk size and worker count.
func TestChunkedEventFrequenciesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(300)
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = uint64(rng.Intn(5))
		}
		want := EventFrequencies(syntheticWPP(ids))
		for _, cs := range []uint64{1, 3, 50, uint64(n) + 1} {
			c := syntheticChunked(ids, cs)
			for _, workers := range []int{1, 4} {
				got := ChunkedEventFrequencies(c, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d chunk=%d workers=%d: %v != %v", trial, cs, workers, got, want)
				}
			}
		}
	}
}

// TestFindChunkedCrossingOnly uses a stream whose only hot pattern
// straddles every chunk boundary: with chunkSize 3 and period-3 pattern
// ABC, the window (C,A) exists only across boundaries.
func TestFindChunkedCrossingOnly(t *testing.T) {
	var ids []uint64
	for i := 0; i < 60; i++ {
		ids = append(ids, 1, 2, 3)
	}
	opts := Options{MinLen: 2, MaxLen: 2, Threshold: 0.2}
	want, err := Find(syntheticWPP(ids), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FindChunked(syntheticChunked(ids, 3), opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("crossing windows miscounted:\n chunked=%v\n mono=%v", render(got), render(want))
	}
	// The (3,1) window occurs 59 times, purely across boundaries.
	found := false
	for _, sp := range got {
		if len(sp.Events) == 2 && sp.Events[0].Path() == 3 && sp.Events[1].Path() == 1 {
			found = true
			if sp.Count != 59 {
				t.Fatalf("boundary window counted %d times, want 59", sp.Count)
			}
		}
	}
	if !found {
		t.Fatalf("boundary-only window missing from %v", render(got))
	}
}

// TestFindChunkedDeterministicAcrossWorkers: repeated runs at different
// worker counts must produce identical slices (order included).
func TestFindChunkedDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ids := make([]uint64, 2000)
	for i := range ids {
		ids[i] = uint64(rng.Intn(4))
	}
	c := syntheticChunked(ids, 128)
	opts := Options{MinLen: 2, MaxLen: 6, Threshold: 0.01}
	base, err := FindChunked(c, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		for rep := 0; rep < 3; rep++ {
			got, err := FindChunked(c, opts, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d rep=%d: nondeterministic result", workers, rep)
			}
		}
	}
}
