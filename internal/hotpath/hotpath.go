// Package hotpath finds minimal hot subpaths in a whole program path, the
// flagship analysis of Larus's PLDI 1999 paper: sequences of at least L
// consecutive acyclic paths whose aggregate cost (occurrences times
// instructions per occurrence) meets a threshold fraction of the whole
// execution, where no shorter contained subpath is itself hot.
//
// The analysis runs directly on the SEQUITUR grammar, without
// decompressing the trace. Every window of the expanded trace either
// crosses a boundary between two right-hand-side symbols of exactly one
// lowest rule, or lies entirely within one nonterminal's expansion and is
// attributed recursively; so enumerating, for each rule, the windows that
// cross its RHS boundaries — weighted by how often the rule occurs in the
// derivation — counts every trace window exactly once. FindByScan is the
// paper's strawman alternative (decompress and slide a window); it
// produces identical results and serves as both the E6 baseline and a
// correctness oracle in tests.
package hotpath

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/obsv"
	"repro/internal/sequitur"
	"repro/internal/trace"
	"repro/internal/wpp"
)

// Metrics is the analysis-side observability hook set. Fields may be nil
// (obsv metrics are nil-safe); a nil *Metrics disables instrumentation.
type Metrics struct {
	// ChunksScanned counts chunk grammars analyzed by the chunked
	// searches.
	ChunksScanned *obsv.Counter
	// BoundaryWindows counts window occurrences materialized from chunk
	// boundary regions (the work chunking adds over the monolithic scan).
	BoundaryWindows *obsv.Counter
	// SubpathsEmitted counts minimal hot subpaths reported.
	SubpathsEmitted *obsv.Counter
}

// NewMetrics registers the standard analysis metric names on r. A nil
// registry yields nil (no-op) metrics.
func NewMetrics(r *obsv.Registry) *Metrics {
	return &Metrics{
		ChunksScanned:   r.Counter("hotpath_chunks_scanned_total"),
		BoundaryWindows: r.Counter("hotpath_boundary_windows_total"),
		SubpathsEmitted: r.Counter("hotpath_subpaths_total"),
	}
}

// noopMetrics backs Options with a nil Metrics pointer.
var noopMetrics = &Metrics{}

// Options selects what counts as a hot subpath.
type Options struct {
	// MinLen and MaxLen bound the subpath length in acyclic paths
	// (events). MinLen >= 1; MaxLen >= MinLen.
	MinLen, MaxLen int
	// Threshold is the fraction of the execution's total instruction
	// count a subpath's aggregate cost must reach to be hot, e.g. 0.01
	// for 1%.
	Threshold float64
	// Metrics installs observability hooks on the search; nil disables
	// them. Results are identical either way.
	Metrics *Metrics
}

// metrics returns the hook set, never nil.
func (o Options) metrics() *Metrics {
	if o.Metrics == nil {
		return noopMetrics
	}
	return o.Metrics
}

func (o Options) validate() error {
	if o.MinLen < 1 {
		return fmt.Errorf("hotpath: MinLen %d < 1", o.MinLen)
	}
	if o.MaxLen < o.MinLen {
		return fmt.Errorf("hotpath: MaxLen %d < MinLen %d", o.MaxLen, o.MinLen)
	}
	if o.Threshold <= 0 || o.Threshold > 1 {
		return fmt.Errorf("hotpath: Threshold %v outside (0,1]", o.Threshold)
	}
	return nil
}

// Subpath is one discovered hot subpath.
type Subpath struct {
	// Events is the sequence of acyclic path events.
	Events []trace.Event
	// Count is the number of (possibly overlapping) occurrences in the
	// trace.
	Count uint64
	// Cost is Count times the instruction cost of one occurrence.
	Cost uint64
	// Fraction is Cost over the execution's total instruction count.
	Fraction float64
}

// Find locates all minimal hot subpaths by analyzing the grammar in
// compressed form.
func Find(w *wpp.WPP, opts Options) ([]Subpath, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	a := newAnalysis(w.Grammar)
	counts := make(map[string]uint64)
	hot := map[string]bool{}
	var result []Subpath
	for l := opts.MinLen; l <= opts.MaxLen; l++ {
		clear(counts)
		a.countWindows(l, counts)
		result = harvest(counts, l, opts, hot, result, w.PathCost, w.Instructions)
	}
	sortSubpaths(result)
	opts.metrics().SubpathsEmitted.Add(uint64(len(result)))
	return result, nil
}

// FindByScan locates the same minimal hot subpaths by decompressing the
// trace and sliding a window over it.
func FindByScan(w *wpp.WPP, opts Options) ([]Subpath, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var events []trace.Event
	w.Walk(func(e trace.Event) bool { events = append(events, e); return true })
	counts := make(map[string]uint64)
	hot := map[string]bool{}
	var result []Subpath
	key := make([]byte, 0, opts.MaxLen*8)
	for l := opts.MinLen; l <= opts.MaxLen; l++ {
		clear(counts)
		for i := 0; i+l <= len(events); i++ {
			key = key[:0]
			for _, e := range events[i : i+l] {
				key = binary.BigEndian.AppendUint64(key, uint64(e))
			}
			counts[string(key)]++
		}
		result = harvest(counts, l, opts, hot, result, w.PathCost, w.Instructions)
	}
	sortSubpaths(result)
	return result, nil
}

// analysis caches per-grammar derived data shared by window counting. It
// is built per snapshot, so chunked analyses construct one per chunk.
type analysis struct {
	snap    *sequitur.Snapshot
	expLen  []uint64   // expansion length per rule
	uses    []uint64   // occurrences of each rule in the derivation tree
	cumLens [][]uint64 // per rule: cumulative expansion length after each RHS symbol
}

func newAnalysis(snap *sequitur.Snapshot) *analysis {
	a := &analysis{snap: snap}
	n := len(a.snap.Rules)
	a.expLen = a.snap.ExpandedLen()
	a.uses = make([]uint64, n)
	if n > 0 {
		a.uses[0] = 1
		for _, r := range a.topoOrder() {
			for _, s := range a.snap.Rules[r] {
				if s.IsRule() {
					a.uses[s.Rule] += a.uses[r]
				}
			}
		}
	}
	a.cumLens = make([][]uint64, n)
	for i, rhs := range a.snap.Rules {
		cum := make([]uint64, len(rhs)+1)
		for j, s := range rhs {
			if s.IsRule() {
				cum[j+1] = cum[j] + a.expLen[s.Rule]
			} else {
				cum[j+1] = cum[j] + 1
			}
		}
		a.cumLens[i] = cum
	}
	return a
}

// topoOrder returns rule indices with every parent before its children.
func (a *analysis) topoOrder() []int32 {
	n := len(a.snap.Rules)
	state := make([]int8, n)
	order := make([]int32, 0, n)
	var visit func(int32)
	visit = func(r int32) {
		if state[r] != 0 {
			return
		}
		state[r] = 1
		for _, s := range a.snap.Rules[r] {
			if s.IsRule() {
				visit(s.Rule)
			}
		}
		order = append(order, r)
	}
	visit(0)
	// Reverse postorder = parents first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// collect appends the terminals of rule r's expansion in [start,
// start+length) to out.
func (a *analysis) collect(r int32, start, length uint64, out []uint64) []uint64 {
	rhs := a.snap.Rules[r]
	cum := a.cumLens[r]
	// Binary search for the first RHS symbol whose span contains start.
	j := sort.Search(len(rhs), func(j int) bool { return cum[j+1] > start })
	for ; length > 0 && j < len(rhs); j++ {
		s := rhs[j]
		if !s.IsRule() {
			out = append(out, s.Value)
			length--
			start = cum[j+1]
			continue
		}
		childStart := start - cum[j]
		avail := a.expLen[s.Rule] - childStart
		take := length
		if take > avail {
			take = avail
		}
		out = a.collect(s.Rule, childStart, take, out)
		length -= take
		start = cum[j+1]
	}
	return out
}

// countWindows accumulates, for every distinct window of length l in the
// expanded trace, its total occurrence count. Keys are big-endian byte
// strings of the window's events.
func (a *analysis) countWindows(l int, counts map[string]uint64) {
	if len(a.snap.Rules) == 0 {
		return
	}
	if l == 1 {
		// Single-event windows never cross boundaries; count terminals
		// directly.
		var key [8]byte
		for r, rhs := range a.snap.Rules {
			for _, s := range rhs {
				if !s.IsRule() {
					binary.BigEndian.PutUint64(key[:], s.Value)
					counts[string(key[:])] += a.uses[r]
				}
			}
		}
		return
	}
	L := uint64(l)
	var terms []uint64
	key := make([]byte, 0, l*8)
	for r := range a.snap.Rules {
		if a.uses[r] == 0 {
			continue
		}
		cum := a.cumLens[r]
		total := cum[len(cum)-1]
		if total < L {
			continue
		}
		ruleUses := a.uses[r]
		maxStart := total - L
		// Enumerate window start offsets that cross at least one boundary
		// between RHS symbols, merged into maximal runs [lo, hi) so each
		// run's terminals are materialized once and the window slides.
		next := uint64(0)
		runLo, runHi := uint64(0), uint64(0)
		haveRun := false
		flush := func() {
			if !haveRun {
				return
			}
			terms = a.collect(int32(r), runLo, runHi-1+L-runLo, terms[:0])
			for o := runLo; o < runHi; o++ {
				key = key[:0]
				for _, v := range terms[o-runLo : o-runLo+L] {
					key = binary.BigEndian.AppendUint64(key, v)
				}
				counts[string(key)] += ruleUses
			}
			haveRun = false
		}
		for b := 1; b < len(cum)-1; b++ {
			p := cum[b]
			lo := uint64(0)
			if p >= L {
				lo = p - L + 1
			}
			if lo < next {
				lo = next
			}
			hi := p // window must start strictly before the boundary
			if hi > maxStart+1 {
				hi = maxStart + 1
			}
			if lo >= hi {
				continue
			}
			if haveRun && lo <= runHi {
				runHi = hi
			} else {
				flush()
				runLo, runHi, haveRun = lo, hi, true
			}
			next = hi
		}
		flush()
	}
}

// harvest converts this length's window counts into subpaths, marks hot
// windows, and appends the minimal ones to result. costOf and total
// supply the cost model (a WPP's or a ChunkedWPP's).
func harvest(counts map[string]uint64, l int, opts Options, hot map[string]bool, result []Subpath, costOf func(trace.Event) uint64, total uint64) []Subpath {
	if total == 0 {
		return result
	}
	for key, count := range counts {
		events := decodeKey(key)
		var unit uint64
		for _, e := range events {
			unit += costOf(e)
		}
		cost := unit * count
		frac := float64(cost) / float64(total)
		if frac < opts.Threshold {
			continue
		}
		hot[key] = true
		if containsHotSub(key, l, opts.MinLen, hot) {
			continue
		}
		result = append(result, Subpath{Events: events, Count: count, Cost: cost, Fraction: frac})
	}
	return result
}

// containsHotSub reports whether any proper contiguous subwindow of key
// (of length >= minLen) is already hot.
func containsHotSub(key string, l, minLen int, hot map[string]bool) bool {
	for sub := minLen; sub < l; sub++ {
		for off := 0; off+sub <= l; off++ {
			if hot[key[off*8:(off+sub)*8]] {
				return true
			}
		}
	}
	return false
}

func decodeKey(key string) []trace.Event {
	events := make([]trace.Event, len(key)/8)
	for i := range events {
		events[i] = trace.Event(binary.BigEndian.Uint64([]byte(key[i*8 : (i+1)*8])))
	}
	return events
}

func sortSubpaths(s []Subpath) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Cost != s[j].Cost {
			return s[i].Cost > s[j].Cost
		}
		if len(s[i].Events) != len(s[j].Events) {
			return len(s[i].Events) < len(s[j].Events)
		}
		for k := range s[i].Events {
			if s[i].Events[k] != s[j].Events[k] {
				return s[i].Events[k] < s[j].Events[k]
			}
		}
		return false
	})
}

// Coverage sums the cost fractions of the given subpaths. Overlapping
// occurrences can push the sum past 1; callers typically report
// min(sum, 1).
func Coverage(subpaths []Subpath) float64 {
	var sum float64
	for _, s := range subpaths {
		sum += s.Fraction
	}
	return sum
}
