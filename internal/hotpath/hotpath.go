// Package hotpath finds minimal hot subpaths in a whole program path, the
// flagship analysis of Larus's PLDI 1999 paper: sequences of at least L
// consecutive acyclic paths whose aggregate cost (occurrences times
// instructions per occurrence) meets a threshold fraction of the whole
// execution, where no shorter contained subpath is itself hot.
//
// The analysis runs directly on the SEQUITUR grammar, without
// decompressing the trace, as a fold over the engine package's single
// traversal: per-chunk window counting on the grammar DAG, plus boundary
// windows materialized across chunk seams. A monolithic WPP is the
// one-chunk special case of the same fold, so Find and FindChunked share
// one implementation and produce identical subpaths for identical event
// streams. FindByScan is the paper's strawman alternative (decompress and
// slide a window); it produces identical results and serves as both the
// E6 baseline and a correctness oracle in tests.
package hotpath

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/trace"
	"repro/internal/wpp"
)

// Metrics is the analysis-side observability hook set. Fields may be nil
// (obsv metrics are nil-safe); a nil *Metrics disables instrumentation.
type Metrics struct {
	// ChunksScanned counts chunk grammars analyzed by the searches (a
	// monolithic search scans exactly one).
	ChunksScanned *obsv.Counter
	// BoundaryWindows counts window occurrences materialized from chunk
	// boundary regions (the work chunking adds over the monolithic scan).
	BoundaryWindows *obsv.Counter
	// SubpathsEmitted counts minimal hot subpaths reported.
	SubpathsEmitted *obsv.Counter
}

// NewMetrics registers the standard analysis metric names on r. A nil
// registry yields nil (no-op) metrics.
func NewMetrics(r *obsv.Registry) *Metrics {
	return &Metrics{
		ChunksScanned:   r.Counter("hotpath_chunks_scanned_total"),
		BoundaryWindows: r.Counter("hotpath_boundary_windows_total"),
		SubpathsEmitted: r.Counter("hotpath_subpaths_total"),
	}
}

// noopMetrics backs Options with a nil Metrics pointer.
var noopMetrics = &Metrics{}

// Options selects what counts as a hot subpath.
type Options struct {
	// MinLen and MaxLen bound the subpath length in acyclic paths
	// (events). MinLen >= 1; MaxLen >= MinLen.
	MinLen, MaxLen int
	// Threshold is the fraction of the execution's total instruction
	// count a subpath's aggregate cost must reach to be hot, e.g. 0.01
	// for 1%.
	Threshold float64
	// Metrics installs observability hooks on the search; nil disables
	// them. Results are identical either way.
	Metrics *Metrics
}

// metrics returns the hook set, never nil.
func (o Options) metrics() *Metrics {
	if o.Metrics == nil {
		return noopMetrics
	}
	return o.Metrics
}

func (o Options) validate() error {
	if o.MinLen < 1 {
		return fmt.Errorf("hotpath: MinLen %d < 1", o.MinLen)
	}
	if o.MaxLen < o.MinLen {
		return fmt.Errorf("hotpath: MaxLen %d < MinLen %d", o.MaxLen, o.MinLen)
	}
	if o.Threshold <= 0 || o.Threshold > 1 {
		return fmt.Errorf("hotpath: Threshold %v outside (0,1]", o.Threshold)
	}
	return nil
}

// Subpath is one discovered hot subpath.
type Subpath struct {
	// Events is the sequence of acyclic path events.
	Events []trace.Event
	// Count is the number of (possibly overlapping) occurrences in the
	// trace.
	Count uint64
	// Cost is Count times the instruction cost of one occurrence.
	Cost uint64
	// Fraction is Cost over the execution's total instruction count.
	Fraction float64
}

// Find locates all minimal hot subpaths by analyzing the grammar in
// compressed form: the one-chunk case of the shared fold.
func Find(w *wpp.WPP, opts Options) ([]Subpath, error) {
	return find(engine.SliceSource{w.Grammar}, 1, opts, w.PathCost, w.Instructions)
}

// FindChunked locates the same minimal hot subpaths as Find would on a
// monolithic WPP of the identical event stream, analyzing a chunked WPP
// with per-chunk passes on `workers` goroutines (<=0 means GOMAXPROCS).
// A window of the full trace either lies entirely inside one chunk —
// counted on that chunk's grammar, in compressed form — or crosses a
// chunk boundary and is counted once, attributed to the chunk containing
// its start position. Merging is by summation, so worker scheduling
// cannot change any count.
func FindChunked(c *wpp.ChunkedWPP, opts Options, workers int) ([]Subpath, error) {
	return find(engine.SliceSource(c.Chunks), workers, opts, c.PathCost, c.Instructions)
}

// FindView locates the same minimal hot subpaths as Find/FindChunked
// would on the eagerly decoded artifact, analyzing a lazy view
// chunk-parallel: each chunk grammar is materialized inside the fold's
// per-chunk pass and discarded after counting, so peak memory tracks
// one chunk per worker instead of the whole artifact. A monolithic view
// is the one-chunk case. Materialization failures (corrupt chunks)
// surface as *wpp.ViewError.
func FindView(v *wpp.ArtifactView, opts Options, workers int) ([]Subpath, error) {
	return find(v, workers, opts, v.PathCost, v.TotalInstructions())
}

// windowState accumulates per-chunk window counts (one map per window
// length) and boundary regions across the merge.
type windowState struct {
	counts []map[string]uint64 // counts[l-MinLen]: windows fully inside scanned chunks
	bounds []engine.Boundary   // one per chunk, in chunk order
}

// windowFold is the hot-subpath search expressed over the engine: the
// per-chunk pass counts every window length on the grammar and
// materializes the chunk's boundary regions; the merge sums counts and
// concatenates boundaries in chunk order.
type windowFold struct {
	opts Options
	met  *Metrics
}

func (f windowFold) Chunk(_ int, a *engine.Analysis) *windowState {
	f.met.ChunksScanned.Inc()
	nl := f.opts.MaxLen - f.opts.MinLen + 1
	st := &windowState{counts: make([]map[string]uint64, nl)}
	for l := f.opts.MinLen; l <= f.opts.MaxLen; l++ {
		m := make(map[string]uint64)
		a.CountWindows(l, m)
		st.counts[l-f.opts.MinLen] = m
	}
	st.bounds = []engine.Boundary{a.Boundary(f.opts.MaxLen - 1)}
	return st
}

func (f windowFold) Merge(acc, next *windowState) *windowState {
	for li, m := range next.counts {
		for k, n := range m {
			acc.counts[li][k] += n
		}
	}
	acc.bounds = append(acc.bounds, next.bounds...)
	return acc
}

// find is the single hot-subpath implementation behind Find,
// FindChunked, and FindView: run the window fold over the chunk source,
// add the boundary-crossing windows (weight 1 each, attributed to the
// chunk holding their start — a single chunk contributes none), then
// harvest minimal hot subpaths length by length.
func find(src engine.Source, workers int, opts Options, costOf func(trace.Event) uint64, total uint64) ([]Subpath, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	met := opts.metrics()
	st, err := engine.RunSource(src, workers, windowFold{opts: opts, met: met})
	if err != nil {
		return nil, err
	}
	var result []Subpath
	if st != nil {
		hot := map[string]bool{}
		key := make([]byte, 0, opts.MaxLen*8)
		for l := opts.MinLen; l <= opts.MaxLen; l++ {
			counts := st.counts[l-opts.MinLen]
			engine.CrossingWindows(st.bounds, l, func(window []uint64) {
				key = engine.AppendKey(key[:0], window)
				counts[string(key)]++
				met.BoundaryWindows.Inc()
			})
			result = harvest(counts, l, opts, hot, result, costOf, total)
		}
	}
	sortSubpaths(result)
	met.SubpathsEmitted.Add(uint64(len(result)))
	return result, nil
}

// FindByScan locates the same minimal hot subpaths by decompressing the
// trace and sliding a window over it.
func FindByScan(w *wpp.WPP, opts Options) ([]Subpath, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var events []trace.Event
	w.Walk(func(e trace.Event) bool { events = append(events, e); return true })
	counts := make(map[string]uint64)
	hot := map[string]bool{}
	var result []Subpath
	key := make([]byte, 0, opts.MaxLen*8)
	for l := opts.MinLen; l <= opts.MaxLen; l++ {
		clear(counts)
		for i := 0; i+l <= len(events); i++ {
			key = key[:0]
			for _, e := range events[i : i+l] {
				key = binary.BigEndian.AppendUint64(key, uint64(e))
			}
			counts[string(key)]++
		}
		result = harvest(counts, l, opts, hot, result, w.PathCost, w.Instructions)
	}
	sortSubpaths(result)
	return result, nil
}

// harvest converts this length's window counts into subpaths, marks hot
// windows, and appends the minimal ones to result. costOf and total
// supply the cost model (a WPP's or a ChunkedWPP's).
func harvest(counts map[string]uint64, l int, opts Options, hot map[string]bool, result []Subpath, costOf func(trace.Event) uint64, total uint64) []Subpath {
	if total == 0 {
		return result
	}
	for key, count := range counts {
		events := decodeKey(key)
		var unit uint64
		for _, e := range events {
			unit += costOf(e)
		}
		cost := unit * count
		frac := float64(cost) / float64(total)
		if frac < opts.Threshold {
			continue
		}
		hot[key] = true
		if containsHotSub(key, l, opts.MinLen, hot) {
			continue
		}
		result = append(result, Subpath{Events: events, Count: count, Cost: cost, Fraction: frac})
	}
	return result
}

// containsHotSub reports whether any proper contiguous subwindow of key
// (of length >= minLen) is already hot.
func containsHotSub(key string, l, minLen int, hot map[string]bool) bool {
	for sub := minLen; sub < l; sub++ {
		for off := 0; off+sub <= l; off++ {
			if hot[key[off*8:(off+sub)*8]] {
				return true
			}
		}
	}
	return false
}

func decodeKey(key string) []trace.Event {
	syms := engine.DecodeKey(key)
	events := make([]trace.Event, len(syms))
	for i, v := range syms {
		events[i] = trace.Event(v)
	}
	return events
}

func sortSubpaths(s []Subpath) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Cost != s[j].Cost {
			return s[i].Cost > s[j].Cost
		}
		if len(s[i].Events) != len(s[j].Events) {
			return len(s[i].Events) < len(s[j].Events)
		}
		for k := range s[i].Events {
			if s[i].Events[k] != s[j].Events[k] {
				return s[i].Events[k] < s[j].Events[k]
			}
		}
		return false
	})
}

// Coverage sums the cost fractions of the given subpaths. Overlapping
// occurrences can push the sum past 1; callers typically report
// min(sum, 1).
func Coverage(subpaths []Subpath) float64 {
	var sum float64
	for _, s := range subpaths {
		sum += s.Fraction
	}
	return sum
}
