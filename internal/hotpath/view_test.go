package hotpath

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/wpp"
)

// viewFor encodes the artifact and reopens it as a lazy view.
func viewFor(t *testing.T, a wpp.Artifact, version uint8) *wpp.ArtifactView {
	t.Helper()
	switch w := a.(type) {
	case *wpp.WPP:
		w.Version = version
	case *wpp.ChunkedWPP:
		w.Version = version
	}
	var buf bytes.Buffer
	if _, err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := wpp.NewView(buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v
}

// TestFindViewOracle: FindView over both view kinds and both format
// versions must agree exactly with the eager searches, across worker
// counts.
func TestFindViewOracle(t *testing.T) {
	src := `
func leaf(x) {
    if x > 2 { return x; }
    return x + 1;
}
func main(n) {
    var s = 0;
    var i = 0;
    while i < n { s = s + leaf(i); i = i + 1; }
    return s;
}`
	w, c := programBoth(t, src, 16, 40)
	opts := Options{MinLen: 2, MaxLen: 6, Threshold: 0.001}
	wantMono, err := Find(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantChunked, err := FindChunked(c, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantMono, wantChunked) {
		t.Fatal("eager mono and chunked searches disagree; oracle is broken")
	}
	for _, version := range []uint8{wpp.FormatV1, wpp.FormatV2} {
		for _, workers := range []int{1, 2, 4} {
			got, err := FindView(viewFor(t, w, version), opts, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, wantMono) {
				t.Fatalf("v%d workers=%d: FindView on mono view diverges from Find", version, workers)
			}
			got, err = FindView(viewFor(t, c, version), opts, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, wantChunked) {
				t.Fatalf("v%d workers=%d: FindView on chunked view diverges from FindChunked", version, workers)
			}
		}
	}
}

// TestFrequenciesAndProfilesView: the frequency, path-profile, and
// function-profile view entry points must match their eager
// counterparts on both kinds and versions.
func TestFrequenciesAndProfilesView(t *testing.T) {
	src := `
func step(x) {
    if x > 3 { return x - 1; }
    return x + 2;
}
func main(n) {
    var s = 0;
    var i = 0;
    while i < n { s = s + step(s); i = i + 1; }
    return s;
}`
	w, c := programBoth(t, src, 8, 60)
	wantFreq := EventFrequencies(w)
	if !reflect.DeepEqual(wantFreq, ChunkedEventFrequencies(c, 2)) {
		t.Fatal("eager frequency oracle is broken")
	}
	wantPaths := PathProfile(w)
	wantFuncs := FuncProfile(w)
	for _, version := range []uint8{wpp.FormatV1, wpp.FormatV2} {
		for _, a := range []wpp.Artifact{w, c} {
			v := viewFor(t, a, version)
			freq, err := EventFrequenciesView(v, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(freq, wantFreq) {
				t.Fatalf("v%d %T: EventFrequenciesView diverges", version, a)
			}
			paths, err := PathProfileView(v, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(paths, wantPaths) {
				t.Fatalf("v%d %T: PathProfileView diverges", version, a)
			}
			funcs, err := FuncProfileView(v, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(funcs, wantFuncs) {
				t.Fatalf("v%d %T: FuncProfileView diverges", version, a)
			}
		}
	}
}

// TestCompareSpectraView: the view comparison must match the eager
// monolithic comparison, and must also work chunked-vs-chunked and
// mixed — the combination the eager API rejects.
func TestCompareSpectraView(t *testing.T) {
	srcA := `
func main(n) {
    var s = 0;
    var i = 0;
    while i < n {
        if i > 5 { s = s + 2; } else { s = s + 1; }
        i = i + 1;
    }
    return s;
}`
	srcB := `
func main(n) {
    var s = 0;
    var i = 0;
    while i < n {
        if i > 8 { s = s + 2; } else { s = s + 1; }
        i = i + 1;
    }
    return s;
}`
	wa, ca := programBoth(t, srcA, 8, 30)
	wb, cb := programBoth(t, srcB, 8, 30)
	want := CompareSpectra(wa, wb)
	combos := [][2]wpp.Artifact{{wa, wb}, {ca, cb}, {wa, cb}, {ca, wb}}
	for _, combo := range combos {
		got, err := CompareSpectraView(viewFor(t, combo[0], wpp.FormatV2), viewFor(t, combo[1], wpp.FormatV1), 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%T vs %T: CompareSpectraView diverges from eager comparison", combo[0], combo[1])
		}
	}
}
