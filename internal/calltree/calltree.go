// Package calltree reconstructs the dynamic call tree of an execution
// from its whole program path — nothing but the compressed acyclic-path
// trace plus the static program.
//
// The WPP contains no explicit call or return events, yet it determines
// the call structure completely: each acyclic path regenerates to a
// basic-block sequence; the call instructions in those blocks name their
// callees in order; and a callee's own path events appear in the trace
// *before* the caller event whose path contains the call (paths are
// emitted at back edges and exits, after the calls inside them ran). The
// reconstruction is therefore a shift-reduce parse:
//
//   - a path event that starts at the function entry opens an activation,
//     one that ends at a back edge continues it, one that reaches the
//     exit completes it;
//   - when a segment containing k call sites is consumed, the k most
//     recently completed activations are its children (validated against
//     the callees the IR names).
//
// This both demonstrates the paper's claim that a WPP is a *complete*
// control-flow record and serves as a deep cross-check of the whole
// pipeline: a single misattributed path ID derails the parse.
package calltree

import (
	"fmt"

	"repro/internal/bl"
	"repro/internal/trace"
	"repro/internal/wlc"
)

// Node is one activation (function invocation) in the dynamic call tree.
type Node struct {
	Func     int32
	Name     string
	Children []*Node
	// Segments is the number of acyclic-path events the activation
	// contributed (>= 1).
	Segments int
}

// Calls returns the total number of activations in the subtree, including
// the node itself.
func (n *Node) Calls() uint64 {
	total := uint64(1)
	for _, c := range n.Children {
		total += c.Calls()
	}
	return total
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (n *Node) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Edge is a static caller->callee pair.
type Edge struct {
	Caller, Callee int32
}

// Tree is the reconstructed dynamic call tree.
type Tree struct {
	Root *Node
	// EdgeCounts is the dynamic call count per caller->callee pair.
	EdgeCounts map[Edge]uint64
}

// Walker yields the trace's events in order; *wpp.WPP.Walk satisfies it.
type Walker interface {
	Walk(func(trace.Event) bool)
}

// partial is an in-progress activation.
type partial struct {
	node *Node
}

// Build reconstructs the call tree of a traced execution of prog. nums
// must be the Ball–Larus numberings used during tracing (indexed by
// function ID), and the trace must come from a completed run whose entry
// function is `entry`.
func Build(prog *wlc.Program, nums []*bl.Numbering, w Walker, entry string) (*Tree, error) {
	root, ok := prog.ByName[entry]
	if !ok {
		return nil, fmt.Errorf("calltree: no function %s", entry)
	}
	// callSites[f][b] lists the callee IDs of block b of function f, in
	// execution order.
	callSites := make([][][]int32, len(prog.Funcs))
	for i, f := range prog.Funcs {
		sites := make([][]int32, f.Graph.NumBlocks())
		for b := range sites {
			for _, in := range f.Code[b] {
				if in.Op == wlc.OpCall {
					sites[b] = append(sites[b], in.Fn)
				}
			}
		}
		callSites[i] = sites
	}

	var completed []*Node
	var stack []*partial
	var parseErr error
	position := 0

	w.Walk(func(e trace.Event) bool {
		fn := int32(e.Func())
		num := nums[fn]
		blocks, err := num.Regenerate(e.Path())
		if err != nil {
			parseErr = fmt.Errorf("calltree: event %d (%v): %w", position, e, err)
			return false
		}
		g := num.Graph
		startsAtEntry := blocks[0] == g.Entry
		endsAtExit := blocks[len(blocks)-1] == g.Exit

		// Count the call sites this segment executed, in order.
		var callees []int32
		for _, b := range blocks {
			callees = append(callees, callSites[fn][b]...)
		}

		// The last len(callees) completed activations are this segment's
		// children, completed left to right.
		k := len(callees)
		if k > len(completed) {
			parseErr = fmt.Errorf("calltree: event %d (%v): segment needs %d completed callees, have %d", position, e, k, len(completed))
			return false
		}
		children := completed[len(completed)-k:]
		completed = completed[:len(completed)-k]
		for i, c := range children {
			if c.Func != callees[i] {
				parseErr = fmt.Errorf("calltree: event %d (%v): call site %d expects %s, trace has %s",
					position, e, i, prog.Funcs[callees[i]].Name, c.Name)
				return false
			}
		}

		var act *partial
		if startsAtEntry {
			act = &partial{node: &Node{Func: fn, Name: prog.Funcs[fn].Name}}
			stack = append(stack, act)
		} else {
			if len(stack) == 0 || stack[len(stack)-1].node.Func != fn {
				parseErr = fmt.Errorf("calltree: event %d (%v): continuation without open activation", position, e)
				return false
			}
			act = stack[len(stack)-1]
		}
		act.node.Children = append(act.node.Children, children...)
		act.node.Segments++

		if endsAtExit {
			stack = stack[:len(stack)-1]
			completed = append(completed, act.node)
		}
		position++
		return true
	})
	if parseErr != nil {
		return nil, parseErr
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("calltree: %d activations never completed (truncated trace?)", len(stack))
	}
	if len(completed) != 1 {
		return nil, fmt.Errorf("calltree: expected a single root, found %d completed activations", len(completed))
	}
	rootNode := completed[0]
	if rootNode.Func != root.ID {
		return nil, fmt.Errorf("calltree: root is %s, expected %s", rootNode.Name, entry)
	}

	tree := &Tree{Root: rootNode, EdgeCounts: map[Edge]uint64{}}
	var visit func(n *Node)
	visit = func(n *Node) {
		for _, c := range n.Children {
			tree.EdgeCounts[Edge{Caller: n.Func, Callee: c.Func}]++
			visit(c)
		}
	}
	visit(rootNode)
	return tree, nil
}
