package calltree

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/workloads"
	iwpp "repro/internal/wpp"
)

// traced runs src under path tracing and returns everything the
// reconstruction needs plus oracles.
func traced(t *testing.T, src string, args ...int64) (*wlc.Program, *interp.Machine, *iwpp.WPP) {
	t.Helper()
	prog, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var b *iwpp.MonoBuilder
	m, err := interp.New(prog, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) { b.Add(e) })})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(prog.Funcs))
	for i, f := range prog.Funcs {
		names[i] = f.Name
	}
	b = iwpp.NewMonoBuilder(names, m.Numberings())
	if _, err := m.Run("main", args...); err != nil {
		t.Fatal(err)
	}
	return prog, m, b.Finish(m.Stats().Instructions)
}

// expectedEdges computes caller->callee counts from a block trace — an
// oracle independent of the shift-reduce reconstruction.
func expectedEdges(t *testing.T, src string, args ...int64) (map[Edge]uint64, uint64) {
	t.Helper()
	prog, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Edge]uint64{}
	m, err := interp.New(prog, interp.Config{Mode: interp.BlockTrace, Sink: trace.SinkFunc(func(e trace.Event) {
		f := prog.Funcs[e.Func()]
		for _, in := range f.Code[e.Path()] {
			if in.Op == wlc.OpCall {
				counts[Edge{Caller: int32(e.Func()), Callee: in.Fn}]++
			}
		}
	})})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("main", args...); err != nil {
		t.Fatal(err)
	}
	return counts, m.Stats().Calls
}

func checkTree(t *testing.T, src string, args ...int64) *Tree {
	t.Helper()
	prog, m, w := traced(t, src, args...)
	tree, err := Build(prog, m.Numberings(), w, "main")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := tree.Root.Calls(); got != m.Stats().Calls {
		t.Fatalf("tree has %d activations, interpreter made %d calls", got, m.Stats().Calls)
	}
	wantEdges, _ := expectedEdges(t, src, args...)
	if len(tree.EdgeCounts) != len(wantEdges) {
		t.Fatalf("edge sets differ: got %v want %v", tree.EdgeCounts, wantEdges)
	}
	for e, n := range wantEdges {
		if tree.EdgeCounts[e] != n {
			t.Fatalf("edge %v: got %d, want %d", e, tree.EdgeCounts[e], n)
		}
	}
	return tree
}

func TestSimpleCalls(t *testing.T) {
	tree := checkTree(t, `
func leaf(x) { return x + 1; }
func mid(x) { return leaf(x) + leaf(x + 1); }
func main(n) { return mid(n) + leaf(n); }`, 5)
	if tree.Root.Name != "main" {
		t.Fatalf("root is %s", tree.Root.Name)
	}
	// main -> mid, leaf; mid -> leaf x2.
	if len(tree.Root.Children) != 2 {
		t.Fatalf("main has %d children, want 2", len(tree.Root.Children))
	}
	if tree.Root.Children[0].Name != "mid" || tree.Root.Children[1].Name != "leaf" {
		t.Fatalf("children order wrong: %s, %s", tree.Root.Children[0].Name, tree.Root.Children[1].Name)
	}
	if tree.Root.Depth() != 3 {
		t.Fatalf("depth %d, want 3", tree.Root.Depth())
	}
}

func TestCallsInsideLoops(t *testing.T) {
	checkTree(t, `
func inc(x) { return x + 1; }
func main(n) {
    var s = 0;
    var i = 0;
    while i < n {
        s = s + inc(i);
        if i % 3 == 0 { s = s + inc(s); }
        i = inc(i);
    }
    return s;
}`, 20)
}

func TestRecursion(t *testing.T) {
	tree := checkTree(t, `
func fact(n) {
    if n <= 1 { return 1; }
    return n * fact(n - 1);
}
func main(n) { return fact(n); }`, 8)
	// Chain main -> fact x8: depth 9.
	if d := tree.Root.Depth(); d != 9 {
		t.Fatalf("depth %d, want 9", d)
	}
}

func TestMutualRecursion(t *testing.T) {
	checkTree(t, `
func isEven(n) {
    if n == 0 { return 1; }
    return isOdd(n - 1);
}
func isOdd(n) {
    if n == 0 { return 0; }
    return isEven(n - 1);
}
func main(n) { return isEven(n) + isOdd(n); }`, 12)
}

func TestNestedCallArguments(t *testing.T) {
	checkTree(t, `
func a(x) { return x * 2; }
func b(x, y) { return x + y; }
func main(n) { return b(a(a(n)), a(b(n, 1))); }`, 4)
}

func TestWorkloadCallTrees(t *testing.T) {
	for _, name := range []string{"queens", "sort", "hash", "expr"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			checkTree(t, w.Source, w.Small)
		})
	}
}

func TestBuildRejectsUnknownEntry(t *testing.T) {
	prog, m, w := traced(t, "func main() { return 1; }")
	if _, err := Build(prog, m.Numberings(), w, "nope"); err == nil {
		t.Fatal("unknown entry accepted")
	}
}

func TestBuildRejectsCorruptTrace(t *testing.T) {
	prog, m, _ := traced(t, `
func f(x) { return x; }
func main() { return f(1); }`)
	// A fabricated trace that ends with an incomplete activation.
	bad := fakeWalker{events: []trace.Event{trace.MakeEvent(uint32(prog.ByName["main"].ID), 0)}}
	if _, err := Build(prog, m.Numberings(), bad, "main"); err == nil {
		t.Fatal("corrupt trace accepted")
	}
}

type fakeWalker struct{ events []trace.Event }

func (f fakeWalker) Walk(yield func(trace.Event) bool) {
	for _, e := range f.events {
		if !yield(e) {
			return
		}
	}
}
