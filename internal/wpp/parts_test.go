package wpp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEncodePartsReassembles pins the property the content-addressed
// store relies on: header || chunk bytes... is exactly the Encode
// stream, for both format versions and a spread of chunk geometries.
func TestEncodePartsReassembles(t *testing.T) {
	for name, events := range testStreams() {
		if len(events) == 0 {
			continue
		}
		for _, cs := range []uint64{1, 64, 1 << 20} {
			for _, version := range []uint8{FormatV1, FormatV2} {
				c := buildChunkedFor(events, cs)
				c.Version = version
				var want bytes.Buffer
				if _, err := c.Encode(&want); err != nil {
					t.Fatalf("%s cs=%d v%d: %v", name, cs, version, err)
				}
				header, chunks, err := c.EncodeParts()
				if err != nil {
					t.Fatalf("%s cs=%d v%d: EncodeParts: %v", name, cs, version, err)
				}
				if len(chunks) != len(c.Chunks) {
					t.Fatalf("%s cs=%d v%d: %d parts for %d chunks", name, cs, version, len(chunks), len(c.Chunks))
				}
				got := append([]byte(nil), header...)
				for _, ch := range chunks {
					got = append(got, ch...)
				}
				if !bytes.Equal(got, want.Bytes()) {
					t.Fatalf("%s cs=%d v%d: EncodeParts concatenation diverges from Encode (%d vs %d bytes)",
						name, cs, version, len(got), want.Len())
				}
			}
		}
	}
}

// TestEncodePartsGoldenCorpus reassembles every committed chunked golden
// artifact from its parts: decode, split, concatenate, byte-compare.
func TestEncodePartsGoldenCorpus(t *testing.T) {
	dir := filepath.Join("..", "experiments", "testdata", "golden")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading golden corpus: %v", err)
	}
	n := 0
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".wpc1") && !strings.HasSuffix(ent.Name(), ".wpc2") {
			continue
		}
		n++
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		_, c, err := DecodeAny(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", ent.Name(), err)
		}
		if c == nil {
			t.Fatalf("%s: expected a chunked artifact", ent.Name())
		}
		header, chunks, err := c.EncodeParts()
		if err != nil {
			t.Fatalf("%s: EncodeParts: %v", ent.Name(), err)
		}
		got := append([]byte(nil), header...)
		for _, ch := range chunks {
			got = append(got, ch...)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s: parts do not reassemble the committed bytes (%d vs %d)", ent.Name(), len(got), len(data))
		}
	}
	if n == 0 {
		t.Fatal("no chunked artifacts in the golden corpus")
	}
}
