//go:build !race

package wpp

// raceEnabled reports whether the race detector is active; timing-bound
// guards skip themselves under it.
const raceEnabled = false
