package wpp

import (
	"fmt"

	"repro/internal/trace"
)

// index is the lazily built random-access index over the grammar:
// expansion lengths per rule and cumulative lengths per rule body, the
// structure behind O(depth) positional queries on the compressed trace
// (the direction later formalized as timestamped WPPs).
type index struct {
	expLen [][]uint64 // cumulative expansion length after each RHS symbol
}

func (w *WPP) buildIndex() *index {
	if w.idx != nil {
		return w.idx
	}
	lens := w.Grammar.ExpandedLen()
	idx := &index{expLen: make([][]uint64, len(w.Grammar.Rules))}
	for r, rhs := range w.Grammar.Rules {
		cum := make([]uint64, len(rhs)+1)
		for j, s := range rhs {
			if s.IsRule() {
				cum[j+1] = cum[j] + lens[s.Rule]
			} else {
				cum[j+1] = cum[j] + 1
			}
		}
		idx.expLen[r] = cum
	}
	w.idx = idx
	return idx
}

// EventAt returns the i-th event (0-based) of the trace without
// decompressing it, descending the grammar DAG by expansion lengths. The
// first call builds an index in O(grammar size); subsequent calls cost
// O(grammar depth x log fanout).
func (w *WPP) EventAt(i uint64) (trace.Event, error) {
	if i >= w.Events {
		return 0, fmt.Errorf("wpp: position %d out of range [0,%d)", i, w.Events)
	}
	idx := w.buildIndex()
	r := int32(0)
	for {
		cum := idx.expLen[r]
		rhs := w.Grammar.Rules[r]
		// Binary search for the child containing position i.
		lo, hi := 0, len(rhs)
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] > i {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		s := rhs[lo]
		if !s.IsRule() {
			return trace.Event(s.Value), nil
		}
		i -= cum[lo]
		r = s.Rule
	}
}

// Slice appends the events at positions [from, from+n) to out and returns
// it, without expanding the rest of the trace.
func (w *WPP) Slice(from, n uint64, out []trace.Event) ([]trace.Event, error) {
	if from+n > w.Events || from+n < from {
		return nil, fmt.Errorf("wpp: range [%d,%d) out of bounds [0,%d)", from, from+n, w.Events)
	}
	idx := w.buildIndex()
	var walk func(r int32, start, count uint64)
	walk = func(r int32, start, count uint64) {
		cum := idx.expLen[r]
		rhs := w.Grammar.Rules[r]
		lo, hi := 0, len(rhs)
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] > start {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		for j := lo; count > 0 && j < len(rhs); j++ {
			s := rhs[j]
			if !s.IsRule() {
				out = append(out, trace.Event(s.Value))
				count--
				start = cum[j+1]
				continue
			}
			childStart := start - cum[j]
			avail := (cum[j+1] - cum[j]) - childStart
			take := count
			if take > avail {
				take = avail
			}
			walk(s.Rule, childStart, take)
			count -= take
			start = cum[j+1]
		}
	}
	if n > 0 {
		walk(0, from, n)
	}
	return out, nil
}
