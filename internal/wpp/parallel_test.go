package wpp

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/workloads"
)

// workloadEvents captures each workload's Small-scale event stream once;
// the equivalence tests replay it into many builder configurations.
var workloadEvents = struct {
	sync.Mutex
	streams map[string][]trace.Event
	instrs  map[string]uint64
}{streams: map[string][]trace.Event{}, instrs: map[string]uint64{}}

func eventsFor(t testing.TB, name string) ([]trace.Event, uint64) {
	t.Helper()
	workloadEvents.Lock()
	defer workloadEvents.Unlock()
	if ev, ok := workloadEvents.streams[name]; ok {
		return ev, workloadEvents.instrs[name]
	}
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := wlc.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	var events []trace.Event
	m, err := interp.New(prog, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) {
		events = append(events, e)
	})})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("main", w.Small); err != nil {
		t.Fatal(err)
	}
	workloadEvents.streams[name] = events
	workloadEvents.instrs[name] = m.Stats().Instructions
	return events, m.Stats().Instructions
}

func feedSequential(events []trace.Event, instrs, chunkSize uint64) *ChunkedWPP {
	b := NewChunkedBuilder(nil, nil, chunkSize)
	for _, e := range events {
		b.Add(e)
	}
	return b.Finish(instrs)
}

func feedParallel(events []trace.Event, instrs, chunkSize uint64, workers int) *ChunkedWPP {
	b := NewParallelChunkedBuilder(nil, nil, chunkSize, ParallelOptions{Workers: workers})
	for _, e := range events {
		b.Add(e)
	}
	return b.Finish(instrs)
}

func encodeChunked(t testing.TB, c *ChunkedWPP) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func expand(c *ChunkedWPP) []trace.Event {
	var out []trace.Event
	c.Walk(func(e trace.Event) bool { out = append(out, e); return true })
	return out
}

// TestParallelEquivalence is the determinism keystone: for every
// workload, several chunk sizes, and worker counts 1/2/8, the parallel
// builder's artifact must be byte-identical to the sequential builder's
// — same chunks, stats, encoded size, encoding, and full expansion.
func TestParallelEquivalence(t *testing.T) {
	chunkSizes := []uint64{1, 64, 1000, 1 << 20}
	workerCounts := []int{1, 2, 8}
	for _, name := range workloads.Names() {
		events, instrs := eventsFor(t, name)
		for _, cs := range chunkSizes {
			seq := feedSequential(events, instrs, cs)
			seqBytes := encodeChunked(t, seq)
			seqExp := expand(seq)
			for _, nw := range workerCounts {
				par := feedParallel(events, instrs, cs, nw)
				if !reflect.DeepEqual(par.Chunks, seq.Chunks) {
					t.Fatalf("%s chunk=%d workers=%d: chunks differ from sequential", name, cs, nw)
				}
				if got, want := par.Stats(), seq.Stats(); got != want {
					t.Fatalf("%s chunk=%d workers=%d: stats %+v != %+v", name, cs, nw, got, want)
				}
				if got, want := par.EncodedSize(), seq.EncodedSize(); got != want {
					t.Fatalf("%s chunk=%d workers=%d: encoded size %d != %d", name, cs, nw, got, want)
				}
				if !bytes.Equal(encodeChunked(t, par), seqBytes) {
					t.Fatalf("%s chunk=%d workers=%d: artifact bytes differ", name, cs, nw)
				}
				if !reflect.DeepEqual(expand(par), seqExp) {
					t.Fatalf("%s chunk=%d workers=%d: expansion differs", name, cs, nw)
				}
				if err := par.VerifyParallel(nw); err != nil {
					t.Fatalf("%s chunk=%d workers=%d: verify: %v", name, cs, nw, err)
				}
			}
		}
	}
}

// TestParallelMatchesRawStream checks the pipeline against the ground
// truth (the raw stream), not just against the sequential builder.
func TestParallelMatchesRawStream(t *testing.T) {
	events, instrs := eventsFor(t, "compress")
	par := feedParallel(events, instrs, 100, 4)
	if got := expand(par); !reflect.DeepEqual(got, events) {
		t.Fatalf("parallel expansion != raw stream (%d vs %d events)", len(got), len(events))
	}
	if par.Events != uint64(len(events)) {
		t.Fatalf("events %d != %d", par.Events, len(events))
	}
}

// TestParallelCostsMatchSequential: the cost table is built in the Add
// front-end; it must match the sequential builder's exactly, including
// per-path weights from real numberings.
func TestParallelCostsMatchSequential(t *testing.T) {
	w, err := workloads.ByName("sort")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := wlc.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(prog.Funcs))
	for i, f := range prog.Funcs {
		names[i] = f.Name
	}
	var seqB *ChunkedBuilder
	var parB *ParallelChunkedBuilder
	m, err := interp.New(prog, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) {
		seqB.Add(e)
		parB.Add(e)
	})})
	if err != nil {
		t.Fatal(err)
	}
	seqB = NewChunkedBuilder(names, m.Numberings(), 128)
	parB = NewParallelChunkedBuilder(names, m.Numberings(), 128, ParallelOptions{Workers: 3})
	if _, err := m.Run("main", w.Small); err != nil {
		t.Fatal(err)
	}
	seq := seqB.Finish(m.Stats().Instructions)
	par := parB.Finish(m.Stats().Instructions)
	if !reflect.DeepEqual(par.costs, seq.costs) {
		t.Fatal("cost tables differ")
	}
	if par.DistinctPaths() != seq.DistinctPaths() {
		t.Fatal("distinct path counts differ")
	}
	for e, c := range seq.costs {
		if par.PathCost(e) != c {
			t.Fatalf("PathCost(%v) = %d, want %d", e, par.PathCost(e), c)
		}
	}
	if !reflect.DeepEqual(par.Funcs, seq.Funcs) {
		t.Fatal("func tables differ")
	}
}

func TestParallelEmpty(t *testing.T) {
	for _, nw := range []int{1, 4} {
		b := NewParallelChunkedBuilder(nil, nil, 10, ParallelOptions{Workers: nw})
		c := b.Finish(0)
		if err := c.Verify(); err != nil {
			t.Fatal(err)
		}
		if len(c.Chunks) != 0 || c.Events != 0 {
			t.Fatalf("empty build produced %d chunks, %d events", len(c.Chunks), c.Events)
		}
	}
}

func TestParallelBuilderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero chunk size accepted")
		}
	}()
	NewParallelChunkedBuilder(nil, nil, 0, ParallelOptions{})
}

func TestParallelFinishTwicePanics(t *testing.T) {
	b := NewParallelChunkedBuilder(nil, nil, 10, ParallelOptions{Workers: 1})
	b.Add(trace.MakeEvent(0, 1))
	b.Finish(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Finish accepted")
		}
	}()
	b.Finish(1)
}

func TestVerifyParallelDetectsCorruption(t *testing.T) {
	events, instrs := eventsFor(t, "lexer")
	c := feedParallel(events, instrs, 200, 2)
	if err := c.VerifyParallel(4); err != nil {
		t.Fatal(err)
	}
	// Corrupt the header: every worker count must report the mismatch.
	c.Events++
	for _, nw := range []int{1, 4} {
		if err := c.VerifyParallel(nw); err == nil {
			t.Fatalf("workers=%d: corrupted artifact verified", nw)
		}
	}
}
