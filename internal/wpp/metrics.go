package wpp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obsv"
	"repro/internal/sequitur"
)

// BuildMetrics is the instrumentation hook set shared by every builder
// front-end. Any field may be nil — obsv metrics are nil-safe no-ops —
// and a nil *BuildMetrics disables instrumentation entirely; the builders
// treat it as a value with all-nil fields, so hot-path call sites need no
// conditionals and never allocate.
type BuildMetrics struct {
	// EventsIngested counts events accepted by Add across all builders.
	EventsIngested *obsv.Counter
	// ChunksSealed counts chunk buffers handed to compression.
	ChunksSealed *obsv.Counter
	// QueueDepth tracks the number of sealed chunks waiting for a worker.
	QueueDepth *obsv.Gauge
	// PoolRecycles counts chunk buffers obtained from the recycle pool
	// with capacity already allocated (a hit means steady-state reuse).
	PoolRecycles *obsv.Counter
	// WorkerBusyNS and WorkerIdleNS accumulate nanoseconds the pool's
	// workers spent compressing vs waiting for jobs, summed over workers.
	WorkerBusyNS *obsv.Counter
	WorkerIdleNS *obsv.Counter
	// ChunkCompress is the per-chunk compression latency distribution.
	ChunkCompress *obsv.Histogram
	// Grammar instruments the SEQUITUR grammars doing the compressing
	// (shared by all pool workers; counters sum, the table gauge tracks
	// the most recently active grammar).
	Grammar sequitur.Metrics
}

// NewBuildMetrics registers the standard pipeline metric names on r and
// returns the hook set. A nil registry yields a hook set of nil metrics —
// valid to install, and a no-op.
func NewBuildMetrics(r *obsv.Registry) *BuildMetrics {
	return &BuildMetrics{
		EventsIngested: r.Counter("wpp_events_ingested_total"),
		ChunksSealed:   r.Counter("wpp_chunks_sealed_total"),
		QueueDepth:     r.Gauge("wpp_queue_depth"),
		PoolRecycles:   r.Counter("wpp_pool_recycle_total"),
		WorkerBusyNS:   r.Counter("wpp_worker_busy_ns_total"),
		WorkerIdleNS:   r.Counter("wpp_worker_idle_ns_total"),
		ChunkCompress:  r.Histogram("wpp_chunk_compress_seconds", nil),
		Grammar: sequitur.Metrics{
			Terminals:    r.Counter("sequitur_terminals_total"),
			RulesCreated: r.Counter("sequitur_rules_created_total"),
			RulesReused:  r.Counter("sequitur_rules_reused_total"),
			DigramTable:  r.Gauge("sequitur_digram_table_size"),
		},
	}
}

// orNoop lets builders hold a value so instrumentation sites can call
// through nil fields without checking the pointer first.
func (m *BuildMetrics) orNoop() BuildMetrics {
	if m == nil {
		return BuildMetrics{}
	}
	return *m
}

// BuildReport summarizes a finished build: what went in, what came out,
// and how busy the pipeline was. It is valid after Finish.
type BuildReport struct {
	// Events is the number of path events ingested; Chunks the number of
	// chunk grammars produced; ChunkSize the configured chunk size.
	Events    uint64
	Chunks    int
	ChunkSize uint64
	// DistinctPaths is the number of distinct (function, path) pairs.
	DistinctPaths int
	// Workers is the pool size the build ran with.
	Workers int
	// BytesIn is the varint-encoded size of the uncompressed trace the
	// artifact replaces; BytesOut the encoded artifact size; Ratio is
	// BytesIn/BytesOut.
	BytesIn  int64
	BytesOut int64
	Ratio    float64
	// WallTime is construction start to Finish return.
	WallTime time.Duration
	// WorkerBusy is each worker's fraction of WallTime spent compressing
	// (indexed by worker; len == Workers). Low fractions at high worker
	// counts mean the single-threaded producer is the bottleneck.
	WorkerBusy []float64
}

// String renders the report as a compact multi-line summary.
func (r BuildReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "build report:\n")
	fmt.Fprintf(&b, "  events ingested: %d (%d distinct paths)\n", r.Events, r.DistinctPaths)
	fmt.Fprintf(&b, "  chunks:          %d (size %d)\n", r.Chunks, r.ChunkSize)
	fmt.Fprintf(&b, "  bytes in/out:    %d / %d (ratio %.1fx)\n", r.BytesIn, r.BytesOut, r.Ratio)
	fmt.Fprintf(&b, "  wall time:       %s\n", r.WallTime.Round(time.Microsecond))
	busy := make([]string, len(r.WorkerBusy))
	for i, f := range r.WorkerBusy {
		busy[i] = fmt.Sprintf("%.0f%%", f*100)
	}
	fmt.Fprintf(&b, "  workers:         %d busy [%s]", r.Workers, strings.Join(busy, " "))
	return b.String()
}
