package wpp

// Builder-level batch differential: feeding a stream through AddBatch
// (in arbitrary splits) must produce an artifact byte-identical to
// feeding it through Add, for every construction strategy and worker
// count, in both encodings. This pins the whole batched path — trace
// conversion, chunk-boundary splitting, deferred cost derivation, and
// the batched SEQUITUR engine — to the scalar oracle end to end.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// feedScalar drives the stream one event at a time.
func feedScalar(b Builder, events []trace.Event) {
	for _, e := range events {
		b.Add(e)
	}
}

// feedBatches drives the stream in random slices (including some empty
// ones, which must be no-ops).
func feedBatches(b Builder, events []trace.Event, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for lo := 0; lo < len(events); {
		if rng.Intn(10) == 0 {
			b.AddBatch(nil)
		}
		hi := min(lo+1+rng.Intn(200), len(events))
		b.AddBatch(events[lo:hi])
		lo = hi
	}
}

func encodeArtifact(t *testing.T, a Artifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// setVersion flips the encoding version on either concrete artifact.
func setVersion(a Artifact, v uint8) {
	switch t := a.(type) {
	case *WPP:
		t.Version = v
	case *ChunkedWPP:
		t.Version = v
	}
}

// TestAddBatchMatchesAddArtifacts is the sealed-artifact byte-equality
// matrix: {mono, chunked x workers 1/2/4} x {stream shapes} x {v1, v2}.
func TestAddBatchMatchesAddArtifacts(t *testing.T) {
	strategies := []struct {
		name string
		opts BuildOptions
	}{
		{"mono", BuildOptions{}},
		{"chunked-w1", BuildOptions{ChunkSize: 64, Workers: 1}},
		{"chunked-w2", BuildOptions{ChunkSize: 64, Workers: 2}},
		{"chunked-w4", BuildOptions{ChunkSize: 64, Workers: 4}},
	}
	for name, events := range testStreams() {
		for _, st := range strategies {
			t.Run(name+"/"+st.name, func(t *testing.T) {
				names := funcNames(events)
				ref := New(names, nil, st.opts)
				feedScalar(ref, events)
				want := ref.Finish(uint64(len(events)))

				got := New(names, nil, st.opts)
				feedBatches(got, events, 99)
				if got.Events() != uint64(len(events)) {
					t.Fatalf("batched builder counted %d events, want %d", got.Events(), len(events))
				}
				a := got.Finish(uint64(len(events)))
				if _, err := a.VerifyArtifact(); err != nil {
					t.Fatalf("batched artifact fails deep verification: %v", err)
				}
				for _, v := range []uint8{FormatV1, FormatV2} {
					setVersion(want, v)
					setVersion(a, v)
					wb := encodeArtifact(t, want)
					gb := encodeArtifact(t, a)
					if !bytes.Equal(wb, gb) {
						t.Fatalf("v%d artifacts diverge: scalar %d bytes, batched %d bytes", v, len(wb), len(gb))
					}
				}
			})
		}
	}
}

// TestAddBatchMixedWithAdd interleaves the two ingestion surfaces on
// one builder against the pure-scalar reference.
func TestAddBatchMixedWithAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	events := make([]trace.Event, 4000)
	for i := range events {
		events[i] = trace.MakeEvent(uint32(rng.Intn(2)), uint64(rng.Intn(9)))
	}
	for _, opts := range []BuildOptions{{}, {ChunkSize: 128, Workers: 2}} {
		ref := New(funcNames(events), nil, opts)
		feedScalar(ref, events)
		want := encodeArtifact(t, ref.Finish(7777))

		mixed := New(funcNames(events), nil, opts)
		for lo := 0; lo < len(events); {
			if rng.Intn(2) == 0 {
				mixed.Add(events[lo])
				lo++
				continue
			}
			hi := min(lo+1+rng.Intn(300), len(events))
			mixed.AddBatch(events[lo:hi])
			lo = hi
		}
		got := encodeArtifact(t, mixed.Finish(7777))
		if !bytes.Equal(want, got) {
			t.Fatalf("mixed Add/AddBatch artifact diverges (chunk=%d)", opts.ChunkSize)
		}
	}
}

// TestBufferIsBatchSink: the in-memory Buffer implements the batch
// surface and AddBatch appends equivalently to repeated Add.
func TestBufferIsBatchSink(t *testing.T) {
	var b trace.Buffer
	var s trace.BatchSink = &b
	s.Add(trace.MakeEvent(1, 2))
	s.AddBatch([]trace.Event{trace.MakeEvent(3, 4), trace.MakeEvent(5, 6)})
	want := []trace.Event{trace.MakeEvent(1, 2), trace.MakeEvent(3, 4), trace.MakeEvent(5, 6)}
	if len(b.Events) != len(want) {
		t.Fatalf("buffer holds %d events, want %d", len(b.Events), len(want))
	}
	for i := range want {
		if b.Events[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, b.Events[i], want[i])
		}
	}
}
