package wpp

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/trace"
)

// TestParallelStress hammers the worker pool: many builders running
// concurrently, tiny chunks (so seals are frequent and the jobs channel
// stays saturated), randomized pacing between Adds so seal timing varies
// relative to worker progress. Every artifact is checked against the
// sequential builder. Run under -race this exercises the pool's
// happens-before edges; -short trims the trial count.
func TestParallelStress(t *testing.T) {
	trials := 12
	streamLen := 20000
	if testing.Short() {
		trials = 4
		streamLen = 4000
	}
	var wg sync.WaitGroup
	errs := make([]string, trials)
	for trial := 0; trial < trials; trial++ {
		wg.Add(1)
		go func(trial int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			n := streamLen/2 + rng.Intn(streamLen/2)
			events := make([]trace.Event, n)
			for i := range events {
				// Repetitive with noise, so grammars have real structure.
				if rng.Intn(4) > 0 && i >= 8 {
					events[i] = events[i-8]
				} else {
					events[i] = trace.MakeEvent(uint32(rng.Intn(3)), uint64(rng.Intn(50)))
				}
			}
			chunkSize := uint64(1 + rng.Intn(64)) // tiny: hundreds to thousands of seals
			workers := 1 + rng.Intn(8)

			pb := NewParallelChunkedBuilder(nil, nil, chunkSize, ParallelOptions{Workers: workers})
			for i, e := range events {
				pb.Add(e)
				// Randomize seal timing relative to worker progress: yield
				// at unpredictable points so the collector, workers, and
				// the Add front-end interleave differently every trial.
				if rng.Intn(256) == 0 {
					runtime.Gosched()
				}
				_ = i
			}
			par := pb.Finish(uint64(n))

			sb := NewChunkedBuilder(nil, nil, chunkSize)
			for _, e := range events {
				sb.Add(e)
			}
			seq := sb.Finish(uint64(n))

			if !reflect.DeepEqual(par.Chunks, seq.Chunks) || par.Stats() != seq.Stats() {
				errs[trial] = "parallel artifact diverged from sequential"
				return
			}
			if err := par.VerifyParallel(workers); err != nil {
				errs[trial] = err.Error()
			}
		}(trial)
	}
	wg.Wait()
	for trial, e := range errs {
		if e != "" {
			t.Errorf("trial %d: %s", trial, e)
		}
	}
}

// TestParallelBackpressure checks the pipeline completes (no deadlock)
// when the producer far outruns slow workers, and that the jobs channel
// bound keeps the artifact correct with a single worker draining
// thousands of queued seals.
func TestParallelBackpressure(t *testing.T) {
	n := 50000
	if testing.Short() {
		n = 10000
	}
	b := NewParallelChunkedBuilder(nil, nil, 4, ParallelOptions{Workers: 1})
	for i := 0; i < n; i++ {
		b.Add(trace.MakeEvent(0, uint64(i%7)))
	}
	c := b.Finish(uint64(n))
	if c.Events != uint64(n) || len(c.Chunks) != (n+3)/4 {
		t.Fatalf("got %d events in %d chunks", c.Events, len(c.Chunks))
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}
