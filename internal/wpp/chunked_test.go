package wpp

import (
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
)

func buildChunked(t *testing.T, src string, chunkSize uint64, args ...int64) (*ChunkedWPP, []trace.Event) {
	t.Helper()
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var raw []trace.Event
	var b *ChunkedBuilder
	m, err := interp.New(p, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) {
		raw = append(raw, e)
		b.Add(e)
	})})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(p.Funcs))
	for i, f := range p.Funcs {
		names[i] = f.Name
	}
	b = NewChunkedBuilder(names, m.Numberings(), chunkSize)
	if _, err := m.Run("main", args...); err != nil {
		t.Fatal(err)
	}
	return b.Finish(m.Stats().Instructions), raw
}

func TestChunkedWalkMatchesRaw(t *testing.T) {
	for _, chunkSize := range []uint64{1, 7, 100, 1 << 20} {
		c, raw := buildChunked(t, loopProgram, chunkSize, 150)
		var walked []trace.Event
		c.Walk(func(e trace.Event) bool {
			walked = append(walked, e)
			return true
		})
		if !reflect.DeepEqual(walked, raw) {
			t.Fatalf("chunkSize=%d: walk mismatch", chunkSize)
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("chunkSize=%d: %v", chunkSize, err)
		}
		if c.Events != uint64(len(raw)) {
			t.Fatalf("chunkSize=%d: events %d != %d", chunkSize, c.Events, len(raw))
		}
		wantChunks := (len(raw) + int(chunkSize) - 1) / int(chunkSize)
		if len(c.Chunks) != wantChunks {
			t.Fatalf("chunkSize=%d: %d chunks, want %d", chunkSize, len(c.Chunks), wantChunks)
		}
	}
}

func TestChunkedBoundsLiveMemory(t *testing.T) {
	small, _ := buildChunked(t, loopProgram, 64, 400)
	mono, _ := buildChunked(t, loopProgram, 1<<30, 400)
	if small.PeakLiveRHS > 64+2 {
		t.Fatalf("peak live symbols %d exceeds chunk size bound", small.PeakLiveRHS)
	}
	if small.PeakLiveRHS >= mono.PeakLiveRHS && mono.PeakLiveRHS > 70 {
		t.Fatalf("chunking did not reduce peak memory: %d vs %d", small.PeakLiveRHS, mono.PeakLiveRHS)
	}
}

func TestChunkedSizeTradeoff(t *testing.T) {
	// Smaller chunks → worse compression (repetition across boundaries is
	// lost); the total grammar bytes must be monotone-ish.
	tiny, _ := buildChunked(t, loopProgram, 16, 400)
	big, _ := buildChunked(t, loopProgram, 1<<30, 400)
	if tiny.EncodedSize() <= big.EncodedSize() {
		t.Fatalf("tiny chunks (%dB) should cost more than monolithic (%dB)",
			tiny.EncodedSize(), big.EncodedSize())
	}
}

func TestChunkedStats(t *testing.T) {
	c, raw := buildChunked(t, loopProgram, 50, 200)
	st := c.Stats()
	if st.Events != uint64(len(raw)) || st.Chunks != len(c.Chunks) {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.Rules == 0 || st.RHSSymbols == 0 || st.GrammarBytes == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
}

func TestChunkedBuilderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero chunk size accepted")
		}
	}()
	NewChunkedBuilder(nil, nil, 0)
}

func TestChunkedEmpty(t *testing.T) {
	b := NewChunkedBuilder(nil, nil, 10)
	c := b.Finish(0)
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	n := 0
	c.Walk(func(trace.Event) bool { n++; return true })
	if n != 0 {
		t.Fatal("empty chunked WPP walked events")
	}
}

func TestChunkedWalkEarlyStop(t *testing.T) {
	c, _ := buildChunked(t, loopProgram, 10, 100)
	n := 0
	c.Walk(func(trace.Event) bool {
		n++
		return n < 25 // crosses chunk boundaries
	})
	if n != 25 {
		t.Fatalf("early stop at %d", n)
	}
}
