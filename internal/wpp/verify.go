package wpp

import (
	"fmt"

	"repro/internal/trace"
)

// VerifyReport summarizes a deep verification of a decoded artifact: what
// was checked and the measured slack against each bounded invariant.
type VerifyReport struct {
	// Kind is "monolithic" or "chunked".
	Kind string
	// Events is the expanded trace length.
	Events uint64
	// Chunks is 1 for a monolithic artifact.
	Chunks int
	// Rules is the total rule count across all grammars.
	Rules int
	// DistinctEvents is the number of distinct (function, path) events.
	DistinctEvents int
	// DupDigrams is the number of duplicate digrams measured across all
	// grammars; DupDigramBound is the maximum the verifier tolerates
	// (SEQUITUR's documented seam slack scales with trace length and
	// chunk count).
	DupDigrams, DupDigramBound int
	// BoundedEvents counts distinct events whose path ID was checked
	// against a known per-function NumPaths; UnknownFuncs counts
	// functions with NumPaths == 0 (artifacts built from raw traces do
	// not carry path counts), whose events cannot be bounded.
	BoundedEvents int
	UnknownFuncs  int
}

func (r VerifyReport) String() string {
	return fmt.Sprintf("%s artifact verified: %d events (%d distinct, %d path-ID-bounded), %d chunk(s), %d rules, digram dups %d/%d, %d function(s) without path counts",
		r.Kind, r.Events, r.DistinctEvents, r.BoundedEvents, r.Chunks, r.Rules, r.DupDigrams, r.DupDigramBound, r.UnknownFuncs)
}

// digramDupBound is the tolerated duplicate-digram count: the documented
// SEQUITUR seam slack, a small constant per grammar plus a vanishing
// fraction of the trace (mirroring the bound the grammar's own tests
// enforce).
func digramDupBound(events uint64, grammars int) int {
	return 2*grammars + int(events/50)
}

// VerifyArtifact deep-checks a monolithic artifact beyond Verify's
// structural pass: the grammar must satisfy SEQUITUR's published
// invariants (rule utility >= 2, full reachability from the start rule,
// digram uniqueness up to the documented seam slack) and every distinct
// event's path ID must lie inside the artifact's recorded per-function
// path count. It is the integrity gate behind wppstats -verify and
// wppbuild -verify.
func (w *WPP) VerifyArtifact() (VerifyReport, error) {
	rep := VerifyReport{Kind: "monolithic", Events: w.Events, Chunks: 1, Rules: len(w.Grammar.Rules)}
	if err := w.Verify(); err != nil {
		return rep, err
	}
	if err := verifyGrammarInvariants(w.Grammar, "grammar"); err != nil {
		return rep, err
	}
	rep.DupDigrams = w.Grammar.DigramDuplicates()
	rep.DupDigramBound = digramDupBound(w.Events, 1)
	if rep.DupDigrams > rep.DupDigramBound {
		return rep, fmt.Errorf("wpp: grammar has %d duplicate digrams, tolerated seam slack is %d", rep.DupDigrams, rep.DupDigramBound)
	}
	err := verifyEventBounds(w.Funcs, w.costs, w.Walk, &rep)
	return rep, err
}

// VerifyArtifact is the chunked counterpart of WPP.VerifyArtifact: every
// chunk grammar is held to the SEQUITUR invariants, chunk expansions must
// respect the declared chunk geometry (every chunk except the last
// expands to exactly ChunkSize events), and event path IDs are bounded by
// the recorded per-function path counts.
func (c *ChunkedWPP) VerifyArtifact() (VerifyReport, error) {
	rep := VerifyReport{Kind: "chunked", Events: c.Events, Chunks: len(c.Chunks)}
	if err := c.Verify(); err != nil {
		return rep, err
	}
	if c.ChunkSize == 0 {
		return rep, fmt.Errorf("wpp: chunked artifact declares chunk size 0")
	}
	for i, ch := range c.Chunks {
		label := fmt.Sprintf("chunk %d", i)
		if err := verifyGrammarInvariants(ch, label); err != nil {
			return rep, err
		}
		rep.Rules += len(ch.Rules)
		rep.DupDigrams += ch.DigramDuplicates()
		n := ch.ExpandedLen()[0]
		if i < len(c.Chunks)-1 && n != c.ChunkSize {
			return rep, fmt.Errorf("wpp: %s expands to %d events, declared chunk size is %d", label, n, c.ChunkSize)
		}
		if i == len(c.Chunks)-1 && (n == 0 || n > c.ChunkSize) {
			return rep, fmt.Errorf("wpp: final %s expands to %d events, want 1..%d", label, n, c.ChunkSize)
		}
	}
	rep.DupDigramBound = digramDupBound(c.Events, len(c.Chunks))
	if rep.DupDigrams > rep.DupDigramBound {
		return rep, fmt.Errorf("wpp: chunks have %d duplicate digrams, tolerated seam slack is %d", rep.DupDigrams, rep.DupDigramBound)
	}
	err := verifyEventBounds(c.Funcs, c.costs, c.Walk, &rep)
	return rep, err
}

// verifyGrammarInvariants checks the SEQUITUR DAG invariants a snapshot
// produced by this package always satisfies: the start rule is never
// referenced, every other rule is referenced at least twice (rule
// utility), and every rule is reachable from the start rule. Acyclicity
// is already guaranteed by Validate (run by Verify).
func verifyGrammarInvariants(sn interface {
	RuleUses() []int
	UnreachableRules() []int
}, label string) error {
	// Reachability first: a dead rule is also referenced fewer than twice,
	// and "unreachable" is the more specific diagnosis.
	if dead := sn.UnreachableRules(); len(dead) > 0 {
		return fmt.Errorf("wpp: %s: %d rule(s) unreachable from the start rule (first: %d)", label, len(dead), dead[0])
	}
	uses := sn.RuleUses()
	for i, n := range uses {
		if i == 0 && n != 0 {
			return fmt.Errorf("wpp: %s: start rule is referenced %d times", label, n)
		}
		if i > 0 && n < 2 {
			return fmt.Errorf("wpp: %s: rule %d referenced %d time(s), rule utility requires 2", label, i, n)
		}
	}
	return nil
}

// verifyEventBounds walks the expanded trace once, checking that every
// event names a known function, has a recorded cost, and — when the
// function's path count is known — carries a path ID inside
// [0, NumPaths). It also requires the cost table to contain no entries
// the trace never produces.
func verifyEventBounds(funcs []FuncInfo, costs map[trace.Event]uint64, walk func(func(trace.Event) bool), rep *VerifyReport) error {
	distinct := make(map[trace.Event]bool, len(costs))
	var bad error
	walk(func(e trace.Event) bool {
		if distinct[e] {
			return true
		}
		distinct[e] = true
		if int(e.Func()) >= len(funcs) {
			bad = fmt.Errorf("wpp: event %v references function %d, artifact has %d", e, e.Func(), len(funcs))
			return false
		}
		if _, ok := costs[e]; !ok {
			bad = fmt.Errorf("wpp: event %v has no recorded cost", e)
			return false
		}
		if np := funcs[e.Func()].NumPaths; np > 0 {
			if e.Path() >= np {
				bad = fmt.Errorf("wpp: event %v: path ID %d outside [0,%d) recorded for %s",
					e, e.Path(), np, funcs[e.Func()].Name)
				return false
			}
			rep.BoundedEvents++
		}
		return true
	})
	if bad != nil {
		return bad
	}
	rep.DistinctEvents = len(distinct)
	if len(distinct) != len(costs) {
		return fmt.Errorf("wpp: cost table has %d entries but the trace contains %d distinct events", len(costs), len(distinct))
	}
	for _, f := range funcs {
		if f.NumPaths == 0 {
			rep.UnknownFuncs++
		}
	}
	return nil
}
