package wpp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/wpp/codec"
)

// encodeMono builds and encodes a small monolithic artifact.
func encodeMonoBytes(t testing.TB) []byte {
	t.Helper()
	b := NewMonoBuilder([]string{"f"}, nil)
	for i := 0; i < 120; i++ {
		b.Add(trace.MakeEvent(0, uint64(i%4)))
	}
	var buf bytes.Buffer
	if _, err := b.Finish(120).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodeChunked builds and encodes a small chunked artifact.
func encodeChunkedBytes(t testing.TB) []byte {
	t.Helper()
	b := NewChunkedBuilder([]string{"f"}, nil, 16)
	for i := 0; i < 120; i++ {
		b.Add(trace.MakeEvent(0, uint64(i%4)))
	}
	var buf bytes.Buffer
	if _, err := b.Finish(120).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCodecRegistersBothFormats checks that package init registered the
// monolithic and chunked formats with the artifact codec.
func TestCodecRegistersBothFormats(t *testing.T) {
	for _, magic := range [][4]byte{{'W', 'P', 'P', '1'}, {'W', 'P', 'C', '1'}} {
		if _, ok := codec.Lookup(magic); !ok {
			t.Errorf("format %q not registered", magic[:])
		}
	}
}

// TestDecodeArtifactRoundTrip routes both on-disk formats through the
// codec registry and checks the concrete types come back.
func TestDecodeArtifactRoundTrip(t *testing.T) {
	a, err := DecodeArtifact(bytes.NewReader(encodeMonoBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	w, ok := a.(*WPP)
	if !ok {
		t.Fatalf("monolithic bytes decoded as %T", a)
	}
	if w.NumEvents() != 120 {
		t.Fatalf("events = %d, want 120", w.NumEvents())
	}

	a, err = DecodeArtifact(bytes.NewReader(encodeChunkedBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	cw, ok := a.(*ChunkedWPP)
	if !ok {
		t.Fatalf("chunked bytes decoded as %T", a)
	}
	if cw.NumEvents() != 120 {
		t.Fatalf("events = %d, want 120", cw.NumEvents())
	}
}

// TestDecodeArtifactDispatchErrors drives the registry's failure modes:
// inputs the sniffer must reject before any format decoder runs.
func TestDecodeArtifactDispatchErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty file", nil, "reading magic"},
		{"truncated magic", []byte("WP"), "reading magic"},
		{"unknown version", []byte("WPP9rest-of-file"), "bad magic"},
		{"unknown chunked version", []byte("WPC9rest-of-file"), "bad magic"},
		{"foreign magic", []byte("ELF\x7f....."), "bad magic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeArtifact(bytes.NewReader(c.data))
			if err == nil {
				t.Fatalf("DecodeArtifact accepted %q", c.data)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestDecodeArtifactUnknownMagicNamesFormats checks the registry's
// unknown-magic error lists the formats it does know, so a user holding
// a future or corrupt artifact sees what this build can read.
func TestDecodeArtifactUnknownMagicNamesFormats(t *testing.T) {
	_, err := DecodeArtifact(bytes.NewReader([]byte("WPP9....")))
	if err == nil {
		t.Fatal("unknown version accepted")
	}
	for _, magic := range []string{"WPP1", "WPC1"} {
		if !strings.Contains(err.Error(), magic) {
			t.Errorf("error %q does not list known format %q", err, magic)
		}
	}
}

// TestDecodeArtifactTruncatedBody checks truncation after a valid magic
// fails inside the selected format decoder, not with a panic.
func TestDecodeArtifactTruncatedBody(t *testing.T) {
	for name, data := range map[string][]byte{
		"mono":    encodeMonoBytes(t),
		"chunked": encodeChunkedBytes(t),
	} {
		t.Run(name, func(t *testing.T) {
			for _, cut := range []int{4, 5, len(data) / 2, len(data) - 1} {
				if _, err := DecodeArtifact(bytes.NewReader(data[:cut])); err == nil {
					t.Errorf("truncation at %d accepted", cut)
				}
			}
		})
	}
}

// TestDecodeArtifactRejectsOutOfRangeEvent plants a cost-table entry
// whose event carries a function ID at MaxFuncs — representable in the
// wire uvarint but not constructible through MakeEvent — and checks the
// event validation on the decode path rejects the artifact.
func TestDecodeArtifactRejectsOutOfRangeEvent(t *testing.T) {
	bad := trace.Event(uint64(trace.MaxFuncs) << trace.PathBits)
	if err := trace.CheckEvent(bad); err == nil {
		t.Fatal("sanity: crafted event unexpectedly valid")
	}

	b := NewMonoBuilder([]string{"f"}, nil)
	for i := 0; i < 20; i++ {
		b.Add(trace.MakeEvent(0, uint64(i%3)))
	}
	w := b.Finish(20)
	w.costs[bad] = 1
	var buf bytes.Buffer
	if _, err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := DecodeArtifact(&buf)
	if err == nil {
		t.Fatal("artifact with out-of-range cost-table event accepted")
	}
	if !strings.Contains(err.Error(), "cost table") {
		t.Fatalf("error %q does not blame the cost table", err)
	}
}
