package wpp

// Fuzzers for the v2 codec layer: the WPP2/WPC2 decoders must never
// panic or loop on arbitrary bytes, and the delta varint cost-table
// sub-codec must round-trip every representable table.

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/trace"
)

// goldenSeeds loads the committed golden corpus (all four formats,
// internal/experiments/testdata/golden) as fuzzer seed inputs, so
// fuzzing starts from real archived artifacts rather than only from
// synthetic streams.
func goldenSeeds(f *testing.F) [][]byte {
	f.Helper()
	dir := filepath.Join("..", "experiments", "testdata", "golden")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("golden corpus unavailable (regenerate with go test ./internal/experiments -run TestGoldenCorpus -update): %v", err)
	}
	var seeds [][]byte
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, data)
	}
	if len(seeds) == 0 {
		f.Fatal("golden corpus is empty")
	}
	return seeds
}

// v2Seeds builds real v2 artifacts for the decode fuzzer corpus.
func v2Seeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, events := range testStreams() {
		w := buildMonoFor(events)
		w.Version = FormatV2
		var mb bytes.Buffer
		if _, err := w.Encode(&mb); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, mb.Bytes())
		c := buildChunkedFor(events, 64)
		c.Version = FormatV2
		var cb bytes.Buffer
		if _, err := c.Encode(&cb); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, cb.Bytes())
	}
	return seeds
}

// FuzzDecodeWPP2 asserts the v2 decoders never panic on arbitrary
// bytes, and that whatever decodes verifies, walks safely, and
// re-encodes canonically (decode of the re-encoding is equal).
func FuzzDecodeWPP2(f *testing.F) {
	for _, s := range v2Seeds(f) {
		f.Add(s)
		f.Add(s[:len(s)/2]) // truncation
	}
	for _, s := range goldenSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte("WPP2"))
	f.Add([]byte("WPC2"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifact(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := a.Verify(); err != nil {
			return
		}
		n := 0
		a.Walk(func(trace.Event) bool {
			n++
			return n < 100000
		})
		// Canonical re-encode: whatever decoded and verified must
		// serialize, and decoding the serialization must agree.
		var buf bytes.Buffer
		if _, err := a.Encode(&buf); err != nil {
			t.Fatalf("verified artifact fails to re-encode: %v", err)
		}
		b, err := DecodeArtifact(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded artifact fails to decode: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := b.Encode(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}

// FuzzVarintRoundTrip drives the delta-packed cost-table sub-codec with
// arbitrary event/cost material: encode must be read back exactly, and
// the reconstructed dictionary must come back sorted.
func FuzzVarintRoundTrip(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0}, uint64(1))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{255, 255, 255, 255, 7, 7, 7}, uint64(1<<40))
	// Golden-artifact bytes as raw event/cost material: real archived
	// encodings exercise value spreads synthetic seeds miss.
	for _, s := range goldenSeeds(f) {
		if len(s) > 256 {
			s = s[:256]
		}
		f.Add(s, uint64(len(s)))
	}

	f.Fuzz(func(t *testing.T, data []byte, costSeed uint64) {
		// Derive a valid table: distinct in-range events with arbitrary
		// costs. Pairs of bytes widen the value spread across function
		// and path bits.
		costs := map[trace.Event]uint64{}
		for i := 0; i+1 < len(data); i += 2 {
			e := trace.MakeEvent(uint32(data[i]), uint64(data[i+1])<<(data[i]%24))
			costs[e] = costSeed >> (data[i] % 16)
		}
		dict := sortedCostEvents(costs)

		var buf bytes.Buffer
		e := &v2Encoder{bw: bufio.NewWriter(&buf)}
		e.costTable(dict, costs)
		if e.err == nil {
			e.err = e.bw.Flush()
		}
		if e.err != nil {
			t.Fatalf("encoding valid table: %v", e.err)
		}
		if int64(buf.Len()) != costTableSize(dict, costs) {
			t.Fatalf("costTableSize %d != encoded %d", costTableSize(dict, costs), buf.Len())
		}

		d := &v2Decoder{br: bufio.NewReader(&buf)}
		gotDict, gotCosts, err := d.costTable()
		if err != nil {
			t.Fatalf("decoding round trip: %v", err)
		}
		if !sort.SliceIsSorted(gotDict, func(i, j int) bool { return gotDict[i] < gotDict[j] }) {
			t.Fatal("decoded dictionary not sorted")
		}
		if len(gotDict) != len(dict) {
			t.Fatalf("dictionary length %d, want %d", len(gotDict), len(dict))
		}
		for i := range dict {
			if gotDict[i] != dict[i] {
				t.Fatalf("dictionary entry %d = %v, want %v", i, gotDict[i], dict[i])
			}
		}
		if len(gotCosts) != len(costs) && !(len(costs) == 0 && len(gotCosts) == 0) {
			t.Fatalf("cost map size %d, want %d", len(gotCosts), len(costs))
		}
		if len(costs) > 0 && !reflect.DeepEqual(gotCosts, costs) {
			t.Fatalf("cost maps diverge")
		}
	})
}
