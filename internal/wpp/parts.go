package wpp

import (
	"bytes"
)

// EncodeParts serializes the chunked artifact as a header plus one byte
// slice per chunk grammar, in the encoding Version selects. The
// concatenation header || chunks[0] || ... || chunks[n-1] is exactly the
// byte stream Encode produces, so a content-addressed store can hash and
// deduplicate chunk grammars individually and still reassemble the
// artifact byte-identically.
//
// Each chunk slice is one self-contained sequitur snapshot encoding
// ("SQG1" framing). Under FormatV2 the snapshot's terminals are
// dictionary ranks over the artifact's cost table, so chunk bytes dedup
// across artifacts exactly when both the chunk grammar and the enclosing
// cost dictionary agree — which is the repeated-runs-of-one-program case
// the store exists for.
func (c *ChunkedWPP) EncodeParts() (header []byte, chunks [][]byte, err error) {
	var hdr bytes.Buffer
	chunks = make([][]byte, len(c.Chunks))
	if c.Version >= FormatV2 {
		dict := sortedCostEvents(c.costs)
		ranked, rerr := c.rankedChunks(dict)
		if rerr != nil {
			return nil, nil, rerr
		}
		if _, err := c.encodeHeaderV2(&hdr, dict); err != nil {
			return nil, nil, err
		}
		for i, r := range ranked {
			var buf bytes.Buffer
			if _, err := r.Encode(&buf); err != nil {
				return nil, nil, err
			}
			chunks[i] = buf.Bytes()
		}
		return hdr.Bytes(), chunks, nil
	}
	if _, err := c.encodeHeaderV1(&hdr); err != nil {
		return nil, nil, err
	}
	for i, ch := range c.Chunks {
		var buf bytes.Buffer
		if _, err := ch.Encode(&buf); err != nil {
			return nil, nil, err
		}
		chunks[i] = buf.Bytes()
	}
	return hdr.Bytes(), chunks, nil
}
