package wpp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/sequitur"
	"repro/internal/trace"
)

// Binary layout of a chunked WPP (all varints except magic and names):
//
//	magic "WPC1"
//	numFuncs, then per func: nameLen, name bytes, numPaths
//	chunkSize, events, instructions, peakLiveRHS
//	numCosts, then per entry (sorted by event): event, cost
//	numChunks, then each chunk as a sequitur snapshot encoding
var chunkedMagic = [4]byte{'W', 'P', 'C', '1'}

// Encode writes the chunked WPP to out in the encoding Version selects.
// The encoding is a deterministic function of the artifact, so equal
// artifacts serialize byte-identically.
func (c *ChunkedWPP) Encode(out io.Writer) (int64, error) {
	if c.Version >= FormatV2 {
		return c.encodeChunkedV2(out)
	}
	written, err := c.encodeHeaderV1(out)
	if err != nil {
		return written, err
	}
	for _, ch := range c.Chunks {
		gn, err := ch.Encode(out)
		written += gn
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// encodeHeaderV1 writes everything before the chunk grammars: magic,
// function table, geometry, cost table, and the chunk count. Encode is
// exactly this header followed by each chunk's sequitur encoding — the
// split EncodeParts exposes for per-chunk content addressing.
func (c *ChunkedWPP) encodeHeaderV1(out io.Writer) (int64, error) {
	bw := bufio.NewWriter(out)
	var written int64
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		m, err := bw.Write(buf[:n])
		written += int64(m)
		return err
	}
	n, err := bw.Write(chunkedMagic[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	if err := put(uint64(len(c.Funcs))); err != nil {
		return written, err
	}
	for _, f := range c.Funcs {
		if err := put(uint64(len(f.Name))); err != nil {
			return written, err
		}
		m, err := bw.WriteString(f.Name)
		written += int64(m)
		if err != nil {
			return written, err
		}
		if err := put(f.NumPaths); err != nil {
			return written, err
		}
	}
	for _, v := range []uint64{c.ChunkSize, c.Events, c.Instructions, uint64(c.PeakLiveRHS)} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	if err := put(uint64(len(c.costs))); err != nil {
		return written, err
	}
	events := make([]trace.Event, 0, len(c.costs))
	for e := range c.costs {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	for _, e := range events {
		if err := put(uint64(e)); err != nil {
			return written, err
		}
		if err := put(c.costs[e]); err != nil {
			return written, err
		}
	}
	if err := put(uint64(len(c.Chunks))); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// EncodedBytes returns the byte size Encode would produce for the whole
// artifact — header, cost table, and every chunk grammar. (EncodedSize
// reports the grammar bytes alone, for size comparisons against the
// monolithic grammar.)
func (c *ChunkedWPP) EncodedBytes() int64 {
	if c.Version >= FormatV2 {
		return c.encodedBytesV2()
	}
	n := int64(4)
	n += int64(uvarintLen(uint64(len(c.Funcs))))
	for _, f := range c.Funcs {
		n += int64(uvarintLen(uint64(len(f.Name)))) + int64(len(f.Name)) + int64(uvarintLen(f.NumPaths))
	}
	for _, v := range []uint64{c.ChunkSize, c.Events, c.Instructions, uint64(c.PeakLiveRHS)} {
		n += int64(uvarintLen(v))
	}
	n += int64(uvarintLen(uint64(len(c.costs))))
	for e, cost := range c.costs {
		n += int64(uvarintLen(uint64(e))) + int64(uvarintLen(cost))
	}
	n += int64(uvarintLen(uint64(len(c.Chunks))))
	return n + c.EncodedSize()
}

// DecodeChunked reads a chunked WPP written by Encode.
func DecodeChunked(r io.Reader) (*ChunkedWPP, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("wpp: reading magic: %w", err)
	}
	if m != chunkedMagic {
		return nil, fmt.Errorf("wpp: bad magic %q", m[:])
	}
	return decodeChunkedBody(br)
}

func decodeChunkedBody(br *bufio.Reader) (*ChunkedWPP, error) {
	get := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("wpp: reading %s: %w", what, err)
		}
		return v, nil
	}
	numFuncs, err := get("function count")
	if err != nil {
		return nil, err
	}
	if numFuncs > trace.MaxFuncs {
		return nil, fmt.Errorf("wpp: implausible function count %d", numFuncs)
	}
	c := &ChunkedWPP{Funcs: make([]FuncInfo, numFuncs), Version: FormatV1, costs: map[trace.Event]uint64{}}
	for i := range c.Funcs {
		nameLen, err := get("name length")
		if err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("wpp: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("wpp: reading name: %w", err)
		}
		c.Funcs[i].Name = string(name)
		if c.Funcs[i].NumPaths, err = get("path count"); err != nil {
			return nil, err
		}
	}
	if c.ChunkSize, err = get("chunk size"); err != nil {
		return nil, err
	}
	if c.ChunkSize == 0 {
		return nil, fmt.Errorf("wpp: chunk size 0")
	}
	if c.Events, err = get("event count"); err != nil {
		return nil, err
	}
	if c.Instructions, err = get("instruction count"); err != nil {
		return nil, err
	}
	peak, err := get("peak live RHS")
	if err != nil {
		return nil, err
	}
	if peak > 1<<40 {
		return nil, fmt.Errorf("wpp: implausible peak live RHS %d", peak)
	}
	c.PeakLiveRHS = int(peak)
	numCosts, err := get("cost count")
	if err != nil {
		return nil, err
	}
	if numCosts > 1<<32 {
		return nil, fmt.Errorf("wpp: implausible cost count %d", numCosts)
	}
	for i := uint64(0); i < numCosts; i++ {
		e, err := get("cost event")
		if err != nil {
			return nil, err
		}
		cost, err := get("cost value")
		if err != nil {
			return nil, err
		}
		// Raw varints can carry function bits no numbering produces;
		// refuse them rather than admit unanalyzable events.
		if err := trace.CheckEvent(trace.Event(e)); err != nil {
			return nil, fmt.Errorf("wpp: cost table: %w", err)
		}
		c.costs[trace.Event(e)] = cost
	}
	numChunks, err := get("chunk count")
	if err != nil {
		return nil, err
	}
	// Every chunk costs at least a few bytes; cap against absurd headers.
	if numChunks > 1<<32 {
		return nil, fmt.Errorf("wpp: implausible chunk count %d", numChunks)
	}
	c.Chunks = make([]*sequitur.Snapshot, 0, min(numChunks, 1<<16))
	for i := uint64(0); i < numChunks; i++ {
		// Each snapshot reads from the same buffered stream.
		snap, err := sequitur.Decode(br)
		if err != nil {
			return nil, fmt.Errorf("wpp: chunk %d: %w", i, err)
		}
		c.Chunks = append(c.Chunks, snap)
	}
	return c, nil
}

// DecodeAny sniffs the artifact magic via the codec registry and decodes
// either a monolithic WPP ("WPP1"/"WPP2") or a chunked WPP
// ("WPC1"/"WPC2"); exactly one of the returns is non-nil on success.
func DecodeAny(r io.Reader) (*WPP, *ChunkedWPP, error) {
	w, c, _, err := DecodeAnyNamed(r)
	return w, c, err
}

// DecodeAnyNamed is DecodeAny, additionally reporting the registered
// name of the format that was read.
func DecodeAnyNamed(r io.Reader) (*WPP, *ChunkedWPP, string, error) {
	a, name, err := DecodeArtifactNamed(r)
	if err != nil {
		return nil, nil, name, err
	}
	switch t := a.(type) {
	case *WPP:
		return t, nil, name, nil
	case *ChunkedWPP:
		return nil, t, name, nil
	}
	return nil, nil, name, fmt.Errorf("wpp: unsupported artifact type %T", a)
}
