package wpp

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/trace"
)

// benchStream returns a large repetitive stream typical of loopy
// programs: the shape SEQUITUR is built for, and big enough that chunk
// compression dominates the builder's cost.
func benchStream(n int) []trace.Event {
	rng := rand.New(rand.NewSource(42))
	events := make([]trace.Event, n)
	for i := range events {
		if rng.Intn(8) > 0 && i >= 16 {
			events[i] = events[i-16]
		} else {
			events[i] = trace.MakeEvent(uint32(rng.Intn(4)), uint64(rng.Intn(40)))
		}
	}
	return events
}

const benchChunk = 4096

// Run these with -cpu to see scheduling effects, e.g.:
//
//	go test ./internal/wpp/ -bench 'ChunkedBuild|ParallelBuild' -cpu 1,2,4

func BenchmarkChunkedBuildSequential(b *testing.B) {
	events := benchStream(1 << 18)
	b.SetBytes(int64(len(events) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb := NewChunkedBuilder(nil, nil, benchChunk)
		for _, e := range events {
			cb.Add(e)
		}
		cb.Finish(uint64(len(events)))
	}
}

func benchmarkParallelBuild(b *testing.B, workers int) {
	events := benchStream(1 << 18)
	b.SetBytes(int64(len(events) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb := NewParallelChunkedBuilder(nil, nil, benchChunk, ParallelOptions{Workers: workers})
		for _, e := range events {
			pb.Add(e)
		}
		pb.Finish(uint64(len(events)))
	}
}

func BenchmarkParallelBuild1(b *testing.B) { benchmarkParallelBuild(b, 1) }
func BenchmarkParallelBuild2(b *testing.B) { benchmarkParallelBuild(b, 2) }
func BenchmarkParallelBuild4(b *testing.B) { benchmarkParallelBuild(b, 4) }
func BenchmarkParallelBuildN(b *testing.B) { benchmarkParallelBuild(b, runtime.GOMAXPROCS(0)) }

func BenchmarkParallelBuildWorkloads(b *testing.B) {
	for _, name := range []string{"compress", "expr", "sort"} {
		events, _ := eventsFor(b, name)
		for _, nw := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(name+"/w="+itoa(nw), func(b *testing.B) {
				b.SetBytes(int64(len(events) * 8))
				for i := 0; i < b.N; i++ {
					pb := NewParallelChunkedBuilder(nil, nil, 1024, ParallelOptions{Workers: nw})
					for _, e := range events {
						pb.Add(e)
					}
					pb.Finish(uint64(len(events)))
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestParallelOverheadBound is the benchmark regression guard: the
// parallel pipeline at Workers=1 must stay within 1.2x of the sequential
// chunked builder's wall time on the same stream (plus a small absolute
// grace so sub-millisecond jitter cannot fail the build). The pipeline's
// only extra work at one worker is buffering each chunk and one channel
// hop per seal, which is far cheaper than grammar construction; a bigger
// gap means the pipeline regressed.
func TestParallelOverheadBound(t *testing.T) {
	n := 1 << 18
	if testing.Short() {
		n = 1 << 16
	}
	events := benchStream(n)

	timeOf := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	seq := timeOf(func() {
		cb := NewChunkedBuilder(nil, nil, benchChunk)
		for _, e := range events {
			cb.Add(e)
		}
		cb.Finish(uint64(n))
	})
	par := timeOf(func() {
		pb := NewParallelChunkedBuilder(nil, nil, benchChunk, ParallelOptions{Workers: 1})
		for _, e := range events {
			pb.Add(e)
		}
		pb.Finish(uint64(n))
	})

	const grace = 20 * time.Millisecond
	limit := seq + seq/5 + grace // 1.2x + jitter grace
	t.Logf("sequential %v, parallel(w=1) %v, limit %v", seq, par, limit)
	if par > limit {
		t.Errorf("parallel pipeline at Workers=1 took %v, over the %v bound (sequential %v)", par, limit, seq)
	}
}

// TestInstrumentedOverheadBound guards the observability layer's core
// promise: enabling full BuildMetrics may cost at most 5% wall time over
// the uninstrumented pipeline at Workers=1 (plus the same absolute grace
// as the bound above, so sub-millisecond jitter cannot fail the build).
// The instrumented path adds only atomic counter increments and two
// time.Now calls per chunk; a bigger gap means instrumentation leaked
// into the hot path. The bound got harder to meet, not easier, when the
// grammar gained its arena layout: the uninstrumented baseline no longer
// pays allocator or map overhead that once hid instrumentation cost, and
// the grammar skips its per-event gauge update entirely when no hooks
// are installed — so the 5% now measures pure metric-update cost against
// a leaner denominator.
func TestInstrumentedOverheadBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector intercepts every atomic op; the 5% bound only holds in normal builds")
	}
	n := 1 << 18
	if testing.Short() {
		n = 1 << 16
	}
	events := benchStream(n)

	timeOf := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	build := func(met *BuildMetrics) func() {
		return func() {
			pb := NewParallelChunkedBuilder(nil, nil, benchChunk, ParallelOptions{Workers: 1, Metrics: met})
			for _, e := range events {
				pb.Add(e)
			}
			pb.Finish(uint64(n))
		}
	}

	plain := timeOf(build(nil))
	instrumented := timeOf(build(NewBuildMetrics(obsv.NewRegistry())))

	const grace = 20 * time.Millisecond
	limit := plain + plain/20 + grace // 1.05x + jitter grace
	t.Logf("uninstrumented %v, instrumented %v, limit %v", plain, instrumented, limit)
	if instrumented > limit {
		t.Errorf("instrumented pipeline took %v, over the %v bound (uninstrumented %v)", instrumented, limit, plain)
	}
}
