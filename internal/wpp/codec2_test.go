package wpp

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sequitur"
	"repro/internal/trace"
)

// testStreams is a spread of event streams exercising the shapes that
// matter to the v2 packing: empty, single event, high repetition (deep
// rules, tiny dictionary), near-random (shallow rules, wide dictionary),
// and multi-function events (large terminal values, where rank packing
// pays).
func testStreams() map[string][]trace.Event {
	streams := map[string][]trace.Event{
		"empty":  {},
		"single": {trace.MakeEvent(0, 7)},
	}
	rep := make([]trace.Event, 0, 600)
	for i := 0; i < 150; i++ {
		for _, p := range []uint64{0, 1, 2, 1} {
			rep = append(rep, trace.MakeEvent(0, p))
		}
	}
	streams["repetitive"] = rep
	rng := rand.New(rand.NewSource(42))
	rnd := make([]trace.Event, 500)
	for i := range rnd {
		rnd[i] = trace.MakeEvent(uint32(rng.Intn(3)), uint64(rng.Intn(40)))
	}
	streams["random"] = rnd
	multi := make([]trace.Event, 0, 400)
	for i := 0; i < 100; i++ {
		multi = append(multi,
			trace.MakeEvent(9, uint64(i%7)),
			trace.MakeEvent(200, 3),
			trace.MakeEvent(200, uint64(i%2)),
			trace.MakeEvent(1000, 12345),
		)
	}
	streams["multifunc"] = multi
	return streams
}

// funcNames sizes a synthetic name table to cover every function the
// stream mentions, so Verify accepts the artifact.
func funcNames(events []trace.Event) []string {
	maxFn := uint32(0)
	for _, e := range events {
		if e.Func() > maxFn {
			maxFn = e.Func()
		}
	}
	names := make([]string, maxFn+1)
	for i := range names {
		names[i] = "f"
	}
	return names
}

func buildMonoFor(events []trace.Event) *WPP {
	b := NewMonoBuilder(funcNames(events), nil)
	for _, e := range events {
		b.Add(e)
	}
	return b.Finish(uint64(len(events)))
}

func buildChunkedFor(events []trace.Event, chunkSize uint64) *ChunkedWPP {
	b := NewChunkedBuilder(funcNames(events), nil, chunkSize)
	for _, e := range events {
		b.Add(e)
	}
	return b.Finish(uint64(len(events)))
}

// sameWPP compares the decoded surfaces of two monolithic artifacts,
// ignoring Version (that is the field under test).
func sameWPP(t *testing.T, a, b *WPP) {
	t.Helper()
	if !reflect.DeepEqual(a.Funcs, b.Funcs) {
		t.Fatalf("func tables diverge: %+v vs %+v", a.Funcs, b.Funcs)
	}
	if a.Events != b.Events || a.Instructions != b.Instructions {
		t.Fatalf("headers diverge: (%d,%d) vs (%d,%d)", a.Events, a.Instructions, b.Events, b.Instructions)
	}
	if !reflect.DeepEqual(a.costs, b.costs) {
		t.Fatalf("cost tables diverge: %v vs %v", a.costs, b.costs)
	}
	if !bytes.Equal(grammarBytes(t, a.Grammar), grammarBytes(t, b.Grammar)) {
		t.Fatalf("grammars diverge")
	}
}

// grammarBytes compares snapshots by canonical encoding: a decoded
// snapshot holds empty (non-nil) RHS slices where a built one may hold
// nil, which DeepEqual refuses but the encoding ignores.
func grammarBytes(t *testing.T, sn *sequitur.Snapshot) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := sn.Encode(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func sameChunked(t *testing.T, a, b *ChunkedWPP) {
	t.Helper()
	if !reflect.DeepEqual(a.Funcs, b.Funcs) {
		t.Fatalf("func tables diverge")
	}
	if a.ChunkSize != b.ChunkSize || a.Events != b.Events || a.Instructions != b.Instructions || a.PeakLiveRHS != b.PeakLiveRHS {
		t.Fatalf("headers diverge")
	}
	if !reflect.DeepEqual(a.costs, b.costs) {
		t.Fatalf("cost tables diverge")
	}
	if len(a.Chunks) != len(b.Chunks) {
		t.Fatalf("chunk counts diverge: %d vs %d", len(a.Chunks), len(b.Chunks))
	}
	for i := range a.Chunks {
		if !bytes.Equal(grammarBytes(t, a.Chunks[i]), grammarBytes(t, b.Chunks[i])) {
			t.Fatalf("chunk %d grammars diverge", i)
		}
	}
}

// TestWPP2RoundTrip: v2-encode, decode through the registry, compare
// against the original, and re-encode byte-identically (the canonical
// re-encoding property the golden corpus relies on).
func TestWPP2RoundTrip(t *testing.T) {
	for name, events := range testStreams() {
		t.Run(name, func(t *testing.T) {
			w := buildMonoFor(events)
			w.Version = FormatV2
			var buf bytes.Buffer
			n, err := w.Encode(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
			}
			if got := w.EncodedSize(); got != n {
				t.Fatalf("EncodedSize %d != encoded %d", got, n)
			}
			a, err := DecodeArtifact(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			got, ok := a.(*WPP)
			if !ok {
				t.Fatalf("decoded %T, want *WPP", a)
			}
			if got.Version != FormatV2 {
				t.Fatalf("decoded Version = %d, want %d", got.Version, FormatV2)
			}
			sameWPP(t, got, w)
			if err := got.Verify(); err != nil {
				t.Fatalf("decoded artifact fails verify: %v", err)
			}
			var buf2 bytes.Buffer
			if _, err := got.Encode(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatalf("re-encode is not byte-identical")
			}
		})
	}
}

// TestWPC2RoundTrip is the chunked twin of TestWPP2RoundTrip.
func TestWPC2RoundTrip(t *testing.T) {
	for name, events := range testStreams() {
		t.Run(name, func(t *testing.T) {
			c := buildChunkedFor(events, 64)
			c.Version = FormatV2
			var buf bytes.Buffer
			n, err := c.Encode(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
			}
			if got := c.EncodedBytes(); got != n {
				t.Fatalf("EncodedBytes %d != encoded %d", got, n)
			}
			a, err := DecodeArtifact(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			got, ok := a.(*ChunkedWPP)
			if !ok {
				t.Fatalf("decoded %T, want *ChunkedWPP", a)
			}
			if got.Version != FormatV2 {
				t.Fatalf("decoded Version = %d, want %d", got.Version, FormatV2)
			}
			sameChunked(t, got, c)
			if err := got.Verify(); err != nil {
				t.Fatalf("decoded artifact fails verify: %v", err)
			}
			var buf2 bytes.Buffer
			if _, err := got.Encode(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatalf("re-encode is not byte-identical")
			}
		})
	}
}

// TestWPP2DecodeEqualsWPP1Decode is the cross-format differential: the
// same artifact encoded as v1 and as v2 must decode to identical
// surfaces (the only permitted difference is the Version tag).
func TestWPP2DecodeEqualsWPP1Decode(t *testing.T) {
	for name, events := range testStreams() {
		t.Run(name, func(t *testing.T) {
			w := buildMonoFor(events)
			var b1, b2 bytes.Buffer
			w.Version = FormatV1
			if _, err := w.Encode(&b1); err != nil {
				t.Fatal(err)
			}
			w.Version = FormatV2
			if _, err := w.Encode(&b2); err != nil {
				t.Fatal(err)
			}
			d1, err := Decode(bytes.NewReader(b1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			a2, err := DecodeArtifact(bytes.NewReader(b2.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			sameWPP(t, d1, a2.(*WPP))

			c := buildChunkedFor(events, 32)
			var c1, c2 bytes.Buffer
			c.Version = FormatV1
			if _, err := c.Encode(&c1); err != nil {
				t.Fatal(err)
			}
			c.Version = FormatV2
			if _, err := c.Encode(&c2); err != nil {
				t.Fatal(err)
			}
			e1, err := DecodeChunked(bytes.NewReader(c1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			e2, err := DecodeArtifact(bytes.NewReader(c2.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			sameChunked(t, e1, e2.(*ChunkedWPP))
		})
	}
}

// TestWPP2NeverLarger is the size regression guard: by construction
// (delta <= absolute in the sorted cost table, rank <= value in the
// grammar terminals) the v2 encoding is at most the v1 size, on every
// stream. Checked for both reported sizes and actual bytes.
func TestWPP2NeverLarger(t *testing.T) {
	for name, events := range testStreams() {
		t.Run(name, func(t *testing.T) {
			w := buildMonoFor(events)
			w.Version = FormatV1
			v1 := w.EncodedSize()
			var b1 bytes.Buffer
			if _, err := w.Encode(&b1); err != nil {
				t.Fatal(err)
			}
			w.Version = FormatV2
			v2 := w.EncodedSize()
			var b2 bytes.Buffer
			if _, err := w.Encode(&b2); err != nil {
				t.Fatal(err)
			}
			if v2 > v1 || int64(b2.Len()) > int64(b1.Len()) {
				t.Fatalf("WPP2 (%d bytes) exceeds WPP1 (%d bytes)", b2.Len(), b1.Len())
			}

			c := buildChunkedFor(events, 64)
			c.Version = FormatV1
			cv1 := c.EncodedBytes()
			c.Version = FormatV2
			cv2 := c.EncodedBytes()
			if cv2 > cv1 {
				t.Fatalf("WPC2 (%d bytes) exceeds WPC1 (%d bytes)", cv2, cv1)
			}
		})
	}
}

// TestEncodeV2MissingCost: an artifact whose grammar mentions an event
// absent from its cost table cannot be rank-encoded; Encode must fail
// loudly instead of writing an unrepresentable artifact.
func TestEncodeV2MissingCost(t *testing.T) {
	w := buildMonoFor([]trace.Event{trace.MakeEvent(0, 1), trace.MakeEvent(0, 2)})
	delete(w.costs, trace.MakeEvent(0, 2))
	w.Version = FormatV2
	if _, err := w.Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("Encode succeeded with a terminal missing from the cost table")
	}
}
