package wpp

// The view parity suite pins the PR's central claim: a lazy
// ArtifactView answers every question identically to the eager decoder
// on the same bytes, for all four registered formats, and corruption
// surfaces as typed errors at open or materialization — never as silent
// garbage.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// goldenArtifacts loads every committed golden encoding keyed by file
// name.
func goldenArtifacts(t *testing.T) map[string][]byte {
	t.Helper()
	dir := filepath.Join("..", "experiments", "testdata", "golden")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("golden corpus unavailable (regenerate with go test ./internal/experiments -run TestGoldenCorpus -update): %v", err)
	}
	out := map[string][]byte{}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[ent.Name()] = data
	}
	if len(out) == 0 {
		t.Fatal("golden corpus is empty")
	}
	return out
}

// collectWalk gathers a bounded prefix of an eager artifact's trace.
func collectWalk(a Artifact) []trace.Event {
	var events []trace.Event
	a.Walk(func(e trace.Event) bool { events = append(events, e); return true })
	return events
}

// TestViewGoldenParity opens every golden artifact both ways and
// demands full agreement: header fields, verification, the expanded
// trace, per-chunk grammars, summary statistics, and a byte-identical
// re-encoding through Materialize.
func TestViewGoldenParity(t *testing.T) {
	for name, data := range goldenArtifacts(t) {
		t.Run(name, func(t *testing.T) {
			a, format, err := DecodeArtifactNamed(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("eager decode: %v", err)
			}
			v, err := NewView(data, nil)
			if err != nil {
				t.Fatalf("view open: %v", err)
			}
			defer v.Close()

			if v.Format() != format {
				t.Errorf("Format = %q, eager %q", v.Format(), format)
			}
			if v.NumEvents() != a.NumEvents() {
				t.Errorf("NumEvents = %d, eager %d", v.NumEvents(), a.NumEvents())
			}
			if v.TotalInstructions() != a.TotalInstructions() {
				t.Errorf("TotalInstructions = %d, eager %d", v.TotalInstructions(), a.TotalInstructions())
			}
			if v.DistinctPaths() != a.DistinctPaths() {
				t.Errorf("DistinctPaths = %d, eager %d", v.DistinctPaths(), a.DistinctPaths())
			}
			if v.Size() != int64(len(data)) {
				t.Errorf("Size = %d, file is %d bytes", v.Size(), len(data))
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("eager verify: %v", err)
			}
			if err := v.Verify(0); err != nil {
				t.Fatalf("view verify: %v", err)
			}

			sum, err := v.Summarize(0)
			if err != nil {
				t.Fatalf("Summarize: %v", err)
			}
			var viewEvents []trace.Event
			if err := v.Walk(func(e trace.Event) bool { viewEvents = append(viewEvents, e); return true }); err != nil {
				t.Fatalf("view walk: %v", err)
			}
			if eager := collectWalk(a); !reflect.DeepEqual(viewEvents, eager) {
				t.Fatalf("walk diverges: view %d events, eager %d", len(viewEvents), len(eager))
			}
			for _, e := range viewEvents {
				if v.PathCost(e) == 0 {
					t.Fatalf("event %v has no cost in the view table", e)
				}
			}

			switch w := a.(type) {
			case *WPP:
				if v.Chunked() {
					t.Fatal("view reports chunked for a monolithic artifact")
				}
				st := w.Stats()
				if sum.Rules != st.Rules || sum.RHSSymbols != st.RHSSymbols ||
					sum.GrammarBytes != st.GrammarBytes || sum.RawTraceBytes != st.RawTraceBytes {
					t.Errorf("Summarize = %+v, eager stats %+v", *sum, st)
				}
				if !reflect.DeepEqual(v.FuncTable(), w.Funcs) {
					t.Error("function tables diverge")
				}
				sn, err := v.Chunk(0)
				if err != nil {
					t.Fatalf("Chunk(0): %v", err)
				}
				if !reflect.DeepEqual(sn, w.Grammar) {
					t.Error("materialized grammar diverges from eager decode")
				}
			case *ChunkedWPP:
				if !v.Chunked() {
					t.Fatal("view reports monolithic for a chunked artifact")
				}
				st := w.Stats()
				if sum.Rules != st.Rules || sum.RHSSymbols != st.RHSSymbols || sum.GrammarBytes != st.GrammarBytes {
					t.Errorf("Summarize = %+v, eager stats %+v", *sum, st)
				}
				if sum.RawTraceBytes != w.RawTraceBytes() {
					t.Errorf("RawTraceBytes = %d, eager %d", sum.RawTraceBytes, w.RawTraceBytes())
				}
				if !reflect.DeepEqual(v.FuncTable(), w.Funcs) {
					t.Error("function tables diverge")
				}
				if v.NumChunks() != len(w.Chunks) {
					t.Fatalf("NumChunks = %d, eager %d", v.NumChunks(), len(w.Chunks))
				}
				if v.ChunkSize() != w.ChunkSize || v.PeakLiveRHS() != w.PeakLiveRHS {
					t.Errorf("chunk geometry diverges: size %d/%d peak %d/%d",
						v.ChunkSize(), w.ChunkSize, v.PeakLiveRHS(), w.PeakLiveRHS)
				}
				for i := range w.Chunks {
					sn, err := v.Chunk(i)
					if err != nil {
						t.Fatalf("Chunk(%d): %v", i, err)
					}
					if !reflect.DeepEqual(sn, w.Chunks[i]) {
						t.Errorf("chunk %d grammar diverges from eager decode", i)
					}
				}
			}

			m, err := v.Materialize()
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			var buf bytes.Buffer
			if _, err := m.Encode(&buf); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("Materialize re-encoding differs from original bytes (%d vs %d)", buf.Len(), len(data))
			}
		})
	}
}

// TestViewMetricsCounts pins the instrumentation: opening and fully
// materializing an artifact moves the wpp_open_* counters.
func TestViewMetricsCounts(t *testing.T) {
	for name, data := range goldenArtifacts(t) {
		if !strings.HasSuffix(name, ".wpc1") {
			continue
		}
		vm := &ViewMetrics{}
		*vm = *NewViewMetrics(nil) // nil registry: no-op metrics must also be safe
		v, err := NewView(data, &ViewOptions{Metrics: vm})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Summarize(0); err != nil {
			t.Fatal(err)
		}
		v.Close()
		break
	}
}

// TestViewPartsCorruptChunk simulates storage-layer corruption under a
// parts-backed view (the store path): the open succeeds — nothing has
// been read — and the analysis that touches the corrupt chunk gets a
// typed *ViewError, while intact chunks still materialize.
func TestViewPartsCorruptChunk(t *testing.T) {
	var c *ChunkedWPP
	for _, events := range testStreams() {
		if cand := buildChunkedFor(events, 64); len(cand.Chunks) >= 2 {
			c = cand
			break
		}
	}
	if c == nil {
		t.Fatal("no multi-chunk test stream")
	}
	header, chunks, err := c.EncodeParts()
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(header))
	loads := make([]ChunkLoad, len(chunks))
	for i, ch := range chunks {
		total += int64(len(ch))
		data := ch
		if i == 1 {
			// Truncate the chunk body: the framing scan inside
			// materialization must reject it.
			data = data[:len(data)-1]
		}
		loads[i] = func() ([]byte, func(), error) { return data, nil, nil }
	}
	v, err := NewViewParts(header, loads, total, nil)
	if err != nil {
		t.Fatalf("open must not touch chunk bytes, got: %v", err)
	}
	defer v.Close()

	if _, err := v.Chunk(0); err != nil {
		t.Fatalf("intact chunk 0: %v", err)
	}
	_, err = v.Chunk(1)
	var ve *ViewError
	if !errors.As(err, &ve) {
		t.Fatalf("corrupt chunk error = %v, want *ViewError", err)
	}
	if ve.Chunk != 1 {
		t.Fatalf("ViewError.Chunk = %d, want 1", ve.Chunk)
	}
	// The aggregate folds must refuse too, not skip the bad chunk.
	if err := v.Verify(0); !errors.As(err, &ve) {
		t.Fatalf("Verify = %v, want *ViewError", err)
	}
	if _, err := v.Summarize(0); !errors.As(err, &ve) {
		t.Fatalf("Summarize = %v, want *ViewError", err)
	}
	if _, err := v.Materialize(); !errors.As(err, &ve) {
		t.Fatalf("Materialize = %v, want *ViewError", err)
	}
}

// TestViewCorruptFileTypedErrors pins the other half of the
// no-silent-garbage guarantee for self-contained byte views: header
// corruption is rejected at open, and framing corruption inside the
// chunk region — which the header-only open deliberately never reads —
// surfaces as a typed *ViewError from every materializing entry point.
func TestViewCorruptFileTypedErrors(t *testing.T) {
	for name, data := range goldenArtifacts(t) {
		if !strings.HasSuffix(name, ".wpc1") && !strings.HasSuffix(name, ".wpp1") {
			continue
		}
		// Truncating into the function table breaks the header parse.
		if _, err := NewView(data[:8], nil); err == nil {
			t.Errorf("%s: truncated header opened cleanly", name)
		}
		corrupt := append([]byte{}, data...)
		corrupt = corrupt[:len(corrupt)-1] // truncate the final grammar
		v, err := NewView(corrupt, nil)
		if err != nil {
			t.Fatalf("%s: open reads only the header, got: %v", name, err)
		}
		var ve *ViewError
		if err := v.Verify(0); !errors.As(err, &ve) {
			t.Errorf("%s: Verify = %v, want *ViewError", name, err)
		}
		if _, err := v.Materialize(); !errors.As(err, &ve) {
			t.Errorf("%s: Materialize = %v, want *ViewError", name, err)
		}
		if err := v.Walk(func(trace.Event) bool { return true }); !errors.As(err, &ve) {
			t.Errorf("%s: Walk = %v, want *ViewError", name, err)
		}
		v.Close()
	}
}

// TestViewWrongKind pins the typed mismatch errors on the materializing
// accessors.
func TestViewWrongKind(t *testing.T) {
	arts := goldenArtifacts(t)
	for name, data := range arts {
		v, err := NewView(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(name, ".wpc") {
			if _, err := v.WPP(); err == nil {
				t.Errorf("%s: WPP() succeeded on a chunked view", name)
			}
			if _, err := v.ChunkedWPP(); err != nil {
				t.Errorf("%s: ChunkedWPP() failed: %v", name, err)
			}
		} else {
			if _, err := v.ChunkedWPP(); err == nil {
				t.Errorf("%s: ChunkedWPP() succeeded on a monolithic view", name)
			}
			if _, err := v.WPP(); err != nil {
				t.Errorf("%s: WPP() failed: %v", name, err)
			}
		}
		v.Close()
	}
}

// FuzzViewParity holds the two open paths to one contract on arbitrary
// bytes: if the eager decoder accepts the input, the view must accept
// it and agree on every observable; if the eager decoder rejects it,
// the view must reject it at open or at materialization — it may defer
// the error, but never swallow it.
func FuzzViewParity(f *testing.F) {
	dir := filepath.Join("..", "experiments", "testdata", "golden")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte("WPP1"))
	f.Add([]byte("WPC2"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		eager, eagerErr := DecodeArtifact(bytes.NewReader(data))
		v, viewErr := NewView(data, nil)
		if eagerErr != nil {
			// Open may succeed (the scan is shallower than a decode),
			// but then materializing everything must fail.
			if viewErr == nil {
				if _, err := v.Materialize(); err == nil {
					t.Fatalf("eager decode failed (%v) but view materialized cleanly", eagerErr)
				}
				v.Close()
			}
			return
		}
		if viewErr != nil {
			t.Fatalf("eager decode succeeded but view open failed: %v", viewErr)
		}
		defer v.Close()
		if v.NumEvents() != eager.NumEvents() || v.TotalInstructions() != eager.TotalInstructions() ||
			v.DistinctPaths() != eager.DistinctPaths() {
			t.Fatal("view header disagrees with eager decode")
		}
		m, err := v.Materialize()
		if err != nil {
			t.Fatalf("eager decode succeeded but Materialize failed: %v", err)
		}
		var a, b bytes.Buffer
		if _, err := eager.Encode(&a); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Encode(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("materialized view re-encodes differently from eager decode")
		}
	})
}
