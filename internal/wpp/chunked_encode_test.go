package wpp

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/trace"
)

func TestChunkedEncodeRoundTrip(t *testing.T) {
	events, instrs := eventsFor(t, "expr")
	for _, cs := range []uint64{1, 100, 1 << 20} {
		orig := feedParallel(events, instrs, cs, 4)
		var buf bytes.Buffer
		n, err := orig.Encode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := DecodeChunked(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Verify(); err != nil {
			t.Fatal(err)
		}
		if got.Events != orig.Events || got.ChunkSize != orig.ChunkSize ||
			got.Instructions != orig.Instructions || got.PeakLiveRHS != orig.PeakLiveRHS {
			t.Fatalf("header fields diverge: %+v", got)
		}
		if !reflect.DeepEqual(got.Chunks, orig.Chunks) {
			t.Fatalf("chunk=%d: chunks diverge after round trip", cs)
		}
		if !reflect.DeepEqual(got.Funcs, orig.Funcs) {
			t.Fatal("func table diverges after round trip")
		}
		if !reflect.DeepEqual(expand(got), expand(orig)) {
			t.Fatal("expansion diverges after round trip")
		}
		if got.DistinctPaths() != orig.DistinctPaths() {
			t.Fatal("cost table diverges after round trip")
		}
		// Re-encoding the decoded artifact must be byte-identical.
		var buf2 bytes.Buffer
		if _, err := got.Encode(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("re-encoding is not byte-identical")
		}
	}
}

func TestDecodeAny(t *testing.T) {
	// Monolithic artifact through the sniffing decoder.
	mb := NewMonoBuilder([]string{"f"}, nil)
	for i := 0; i < 100; i++ {
		mb.Add(trace.MakeEvent(0, uint64(i%3)))
	}
	mono := mb.Finish(100)
	var mbuf bytes.Buffer
	if _, err := mono.Encode(&mbuf); err != nil {
		t.Fatal(err)
	}
	w, cw, err := DecodeAny(bytes.NewReader(mbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if w == nil || cw != nil {
		t.Fatalf("monolithic artifact sniffed as (%v, %v)", w, cw)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}

	// Chunked artifact through the same entry point.
	cb := NewChunkedBuilder([]string{"f"}, nil, 16)
	for i := 0; i < 100; i++ {
		cb.Add(trace.MakeEvent(0, uint64(i%3)))
	}
	chunked := cb.Finish(100)
	var cbuf bytes.Buffer
	if _, err := chunked.Encode(&cbuf); err != nil {
		t.Fatal(err)
	}
	w, cw, err = DecodeAny(bytes.NewReader(cbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if w != nil || cw == nil {
		t.Fatalf("chunked artifact sniffed as (%v, %v)", w, cw)
	}
	if err := cw.Verify(); err != nil {
		t.Fatal(err)
	}

	// Junk must error out, not panic.
	if _, _, err := DecodeAny(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("junk accepted")
	}
	if _, _, err := DecodeAny(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDecodeChunkedRejectsCorruption(t *testing.T) {
	cb := NewChunkedBuilder(nil, nil, 8)
	for i := 0; i < 64; i++ {
		cb.Add(trace.MakeEvent(0, uint64(i%4)))
	}
	c := cb.Finish(64)
	var buf bytes.Buffer
	if _, err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncations anywhere must produce an error, never a panic.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeChunked(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Wrong magic.
	bad := append([]byte("WPPX"), data[4:]...)
	if _, err := DecodeChunked(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}
