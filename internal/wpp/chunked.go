package wpp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bl"
	"repro/internal/sequitur"
	"repro/internal/trace"
)

// ChunkedBuilder builds a whole program path in bounded memory: the event
// stream is cut into fixed-size chunks and each chunk is compressed by
// its own SEQUITUR grammar, which is snapshotted and the live grammar
// discarded. Larus notes that SEQUITUR's memory grows with the (unique
// structure of the) trace; chunking caps live memory at the cost of
// repetition that spans chunk boundaries — the A3 ablation quantifies
// that cost.
type ChunkedBuilder struct {
	chunkSize uint64
	cur       *sequitur.Grammar
	curCount  uint64
	chunks    []*sequitur.Snapshot
	funcs     []FuncInfo
	nums      []*bl.Numbering
	events    uint64
	costs     map[trace.Event]uint64
	// peakRHS tracks the largest live grammar seen, the memory bound the
	// chunking buys.
	peakRHS int
	metrics BuildMetrics
	// lazyCosts: see MonoBuilder.
	lazyCosts bool
}

// SetMetrics installs observability hooks (see BuildMetrics); nil
// disables instrumentation. Call before feeding events.
func (b *ChunkedBuilder) SetMetrics(m *BuildMetrics) {
	b.metrics = m.orNoop()
	b.cur.SetMetrics(b.metrics.Grammar)
}

// NewChunkedBuilder returns a builder that seals a chunk every chunkSize
// events. chunkSize must be positive.
func NewChunkedBuilder(names []string, nums []*bl.Numbering, chunkSize uint64) *ChunkedBuilder {
	if chunkSize == 0 {
		panic("wpp: chunk size must be positive")
	}
	funcs := make([]FuncInfo, len(names))
	for i, n := range names {
		funcs[i] = FuncInfo{Name: n}
		if nums != nil {
			funcs[i].NumPaths = nums[i].NumPaths
		}
	}
	return &ChunkedBuilder{
		chunkSize: chunkSize,
		cur:       sequitur.New(),
		funcs:     funcs,
		nums:      nums,
		costs:     map[trace.Event]uint64{},
	}
}

// Add feeds one event.
func (b *ChunkedBuilder) Add(e trace.Event) {
	b.cur.Append(uint64(e))
	b.curCount++
	b.events++
	b.metrics.EventsIngested.Inc()
	if _, seen := b.costs[e]; !seen {
		cost := uint64(1)
		if b.nums != nil {
			w, err := b.nums[e.Func()].PathWeight(e.Path())
			if err != nil {
				panic(fmt.Sprintf("wpp: invalid event %v: %v", e, err))
			}
			cost = uint64(w)
		}
		b.costs[e] = cost
	}
	if b.curCount >= b.chunkSize {
		b.seal()
	}
}

// AddBatch feeds a slice of events, cutting it at chunk boundaries and
// compressing each piece through the batched SEQUITUR fast path. It is
// equivalent to calling Add per element; distinct-path costs are derived
// from the chunk grammars at Finish. Add and AddBatch may be mixed.
func (b *ChunkedBuilder) AddBatch(es []trace.Event) {
	if len(es) == 0 {
		return
	}
	b.events += uint64(len(es))
	b.metrics.EventsIngested.Add(uint64(len(es)))
	b.lazyCosts = true
	for len(es) > 0 {
		n := uint64(len(es))
		if room := b.chunkSize - b.curCount; n > room {
			n = room
		}
		sequitur.AppendBatchOf(b.cur, es[:n])
		b.curCount += n
		es = es[n:]
		if b.curCount >= b.chunkSize {
			b.seal()
		}
	}
}

func (b *ChunkedBuilder) seal() {
	if st := b.cur.Stats(); st.RHSSymbols > b.peakRHS {
		b.peakRHS = st.RHSSymbols
	}
	b.chunks = append(b.chunks, b.cur.Snapshot())
	// Reset rewinds the grammar's slab arena and digram table without
	// releasing them (and keeps the metrics hooks), so compressing the
	// next chunk allocates nothing but its snapshot — the same pooling
	// the parallel builder's workers do.
	b.cur.Reset()
	b.curCount = 0
	b.metrics.ChunksSealed.Inc()
}

// ChunkedWPP is the sealed artifact.
type ChunkedWPP struct {
	Funcs        []FuncInfo
	Chunks       []*sequitur.Snapshot
	ChunkSize    uint64
	Events       uint64
	Instructions uint64
	// PeakLiveRHS is the largest number of live grammar symbols during
	// construction — the working-set bound chunking provides.
	PeakLiveRHS int
	// Version selects the on-disk encoding (FormatV1 or FormatV2; zero
	// encodes as v1). Decoding sets it to the format that was read, so
	// the canonical re-encoding reproduces the input bytes.
	Version uint8
	costs   map[trace.Event]uint64
}

// Finish seals the current partial chunk and returns the artifact.
func (b *ChunkedBuilder) Finish(instructions uint64) *ChunkedWPP {
	if b.curCount > 0 {
		b.seal()
	} else if st := b.cur.Stats(); st.RHSSymbols > b.peakRHS {
		b.peakRHS = st.RHSSymbols
	}
	if b.lazyCosts {
		fillCosts(b.costs, b.nums, b.chunks...)
	}
	return &ChunkedWPP{
		Funcs:        b.funcs,
		Chunks:       b.chunks,
		ChunkSize:    b.chunkSize,
		Events:       b.events,
		Instructions: instructions,
		PeakLiveRHS:  b.peakRHS,
		costs:        b.costs,
	}
}

// Walk yields the full event trace across all chunks in order.
func (c *ChunkedWPP) Walk(yield func(trace.Event) bool) {
	for _, ch := range c.Chunks {
		if len(ch.Rules) == 0 {
			continue
		}
		if !ch.Expand(0, func(v uint64) bool { return yield(trace.Event(v)) }) {
			return
		}
	}
}

// RawTraceBytes computes the varint-encoded size of the uncompressed
// trace the artifact replaces (trace magic + payload), without
// materializing it — the numerator of the compression ratio.
func (c *ChunkedWPP) RawTraceBytes() int64 {
	var n int64 = 4
	for _, ch := range c.Chunks {
		n += snapshotRawBytes(ch)
	}
	return n
}

// EncodedSize reports the total byte size of all chunk grammars (the
// artifact's dominant term; header/cost-table sizes match the monolithic
// WPP and are omitted for the size comparison this type exists for).
func (c *ChunkedWPP) EncodedSize() int64 {
	var n int64
	for _, ch := range c.Chunks {
		n += ch.EncodedSize()
	}
	return n
}

// Stats summarizes the chunked artifact.
type ChunkedStats struct {
	Chunks       int
	Events       uint64
	Rules        int
	RHSSymbols   int
	GrammarBytes int64
	PeakLiveRHS  int
}

// Stats computes the summary.
func (c *ChunkedWPP) Stats() ChunkedStats {
	st := ChunkedStats{
		Chunks:       len(c.Chunks),
		Events:       c.Events,
		GrammarBytes: c.EncodedSize(),
		PeakLiveRHS:  c.PeakLiveRHS,
	}
	for _, ch := range c.Chunks {
		st.Rules += len(ch.Rules)
		for _, rhs := range ch.Rules {
			st.RHSSymbols += len(rhs)
		}
	}
	return st
}

// PathCost returns the instruction cost of one event's acyclic path.
// Unknown events cost 0.
func (c *ChunkedWPP) PathCost(e trace.Event) uint64 { return c.costs[e] }

// DistinctPaths reports how many distinct (function, path) pairs were
// executed.
func (c *ChunkedWPP) DistinctPaths() int { return len(c.costs) }

// Verify checks that every chunk is well formed and the expansion lengths
// add up to Events. It is VerifyParallel(1).
func (c *ChunkedWPP) Verify() error { return c.VerifyParallel(1) }

// VerifyParallel runs the per-chunk validation on the given number of
// goroutines (<=0 means runtime.GOMAXPROCS(0)). The result is
// deterministic: the error reported is always the one for the
// lowest-indexed bad chunk, whatever the schedule.
func (c *ChunkedWPP) VerifyParallel(workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.Chunks) {
		workers = len(c.Chunks)
	}
	errs := make([]error, len(c.Chunks))
	lens := make([]uint64, len(c.Chunks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(c.Chunks) {
					return
				}
				ch := c.Chunks[i]
				if err := ch.Validate(); err != nil {
					errs[i] = fmt.Errorf("wpp: chunk %d: %w", i, err)
					continue
				}
				if el := ch.ExpandedLen(); len(el) > 0 {
					lens[i] = el[0]
				}
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := range errs {
		if errs[i] != nil {
			return errs[i]
		}
		total += lens[i]
	}
	if total != c.Events {
		return fmt.Errorf("wpp: chunks expand to %d events, header says %d", total, c.Events)
	}
	return nil
}
