package wpp

import (
	"testing"

	"repro/internal/trace"
)

// liveEvents builds a small synthetic stream with enough repetition for
// SEQUITUR to form rules.
func liveEvents(n int) []trace.Event {
	es := make([]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		es = append(es, trace.MakeEvent(uint32(i%5), uint64(i%3)))
		if i%4 == 0 {
			es = append(es, trace.MakeEvent(1, 2), trace.MakeEvent(1, 2))
		}
	}
	return es[:n]
}

// liveNames covers every function ID liveEvents (and the tests) can emit.
func liveNames() []string { return make([]string, 128) }

// TestSnapshotWPPMatchesPrefixBuild pins the live-query contract: a
// snapshot taken after k events is indistinguishable from sealing a fresh
// builder fed exactly those k events, and taking it does not perturb the
// ongoing build.
func TestSnapshotWPPMatchesPrefixBuild(t *testing.T) {
	events := liveEvents(800)
	for _, cut := range []int{0, 1, 137, 400, 800} {
		live := NewMonoBuilder(liveNames(), nil)
		for _, e := range events[:cut] {
			live.Add(e)
		}
		snap := live.SnapshotWPP()

		ref := NewMonoBuilder(liveNames(), nil)
		for _, e := range events[:cut] {
			ref.Add(e)
		}
		want := ref.Finish(0)

		if snap.Events != want.Events {
			t.Fatalf("cut %d: snapshot has %d events, want %d", cut, snap.Events, want.Events)
		}
		if len(snap.Grammar.Rules) != len(want.Grammar.Rules) {
			t.Fatalf("cut %d: snapshot grammar has %d rules, want %d", cut, len(snap.Grammar.Rules), len(want.Grammar.Rules))
		}
		var a, b []trace.Event
		snap.Walk(func(e trace.Event) bool { a = append(a, e); return true })
		want.Walk(func(e trace.Event) bool { b = append(b, e); return true })
		if len(a) != len(b) {
			t.Fatalf("cut %d: walks differ in length: %d vs %d", cut, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cut %d: walk diverges at %d: %v vs %v", cut, i, a[i], b[i])
			}
		}
		if snap.DistinctPaths() != want.DistinctPaths() {
			t.Fatalf("cut %d: distinct paths %d, want %d", cut, snap.DistinctPaths(), want.DistinctPaths())
		}
		// With nil numberings every path costs 1, so the live denominator
		// must equal the event count.
		if snap.TotalPathCost() != uint64(cut) {
			t.Fatalf("cut %d: TotalPathCost %d, want %d", cut, snap.TotalPathCost(), cut)
		}

		// The live builder keeps going and still seals correctly.
		for _, e := range events[cut:] {
			live.Add(e)
		}
		full := live.Finish(0)
		if full.Events != uint64(len(events)) {
			t.Fatalf("cut %d: continued build has %d events, want %d", cut, full.Events, len(events))
		}
		if err := full.Verify(); err != nil {
			t.Fatalf("cut %d: continued build fails verify: %v", cut, err)
		}
	}
}

// TestSnapshotWPPAfterBatchedIngest pins that a snapshot taken after
// AddBatch (lazy cost) ingestion derives the same cost table Finish
// would, and that mutating the continued build does not leak into the
// snapshot's copied costs.
func TestSnapshotWPPAfterBatchedIngest(t *testing.T) {
	events := liveEvents(600)
	live := NewMonoBuilder(liveNames(), nil)
	live.AddBatch(events[:300])
	snap := live.SnapshotWPP()
	if got := snap.DistinctPaths(); got == 0 {
		t.Fatal("snapshot after AddBatch has empty cost table")
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("snapshot fails verify: %v", err)
	}
	before := snap.DistinctPaths()
	// Feed events with a function ID the snapshot has not seen.
	live.AddBatch([]trace.Event{trace.MakeEvent(77, 1), trace.MakeEvent(77, 1)})
	if snap.DistinctPaths() != before {
		t.Fatal("continued ingestion mutated the snapshot's cost table")
	}
	full := live.Finish(42)
	if full.Instructions != 42 {
		t.Fatalf("Finish instructions = %d, want 42", full.Instructions)
	}
}

// TestSnapshotWPPInstructionsIsTotalPathCost pins the documented live
// denominator.
func TestSnapshotWPPInstructionsIsTotalPathCost(t *testing.T) {
	live := NewMonoBuilder(liveNames(), nil)
	live.AddBatch(liveEvents(256))
	snap := live.SnapshotWPP()
	if snap.Instructions != snap.TotalPathCost() {
		t.Fatalf("snapshot Instructions %d != TotalPathCost %d", snap.Instructions, snap.TotalPathCost())
	}
	if snap.Instructions != 256 {
		t.Fatalf("cost-1 TotalPathCost = %d, want 256", snap.Instructions)
	}
}

// TestTotalPathCostWeighted checks the weighted sum against a direct walk.
func TestTotalPathCostWeighted(t *testing.T) {
	b := NewMonoBuilder(liveNames(), nil)
	events := liveEvents(512)
	for _, e := range events {
		b.Add(e)
	}
	w := b.Finish(0)
	// Direct walk with the artifact's own cost table.
	var want uint64
	w.Walk(func(e trace.Event) bool { want += w.PathCost(e); return true })
	if got := w.TotalPathCost(); got != want {
		t.Fatalf("TotalPathCost = %d, walked sum = %d", got, want)
	}
}
