package wpp

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mmapio"
	"repro/internal/obsv"
	"repro/internal/sequitur"
	"repro/internal/trace"
	"repro/internal/wpp/codec"
)

// ArtifactView is a lazy, read-only view of an encoded artifact in any
// of the four registered formats. Opening a view parses only the header
// — magic, function table, counters, cost table — without building
// sequitur grammars, copying symbol arrays, or even walking the chunk
// region. Chunk byte regions are delimited by a one-time framing scan
// on first materialization, and chunk grammars materialize on demand
// via Chunk, each decode fully bounds-checked against the same caps as
// the eager decoders, so a corrupt artifact yields a typed error at
// materialization rather than silent garbage.
//
// A view over an in-memory buffer (NewView, OpenViewFile) holds the
// buffer for its whole lifetime; a view assembled from store parts
// (NewViewParts) loads and releases each chunk's bytes around
// materialization. Either way the header — everything an analysis needs
// before touching the trace — is decoded eagerly, so stats-style
// queries answer in O(header) instead of O(trace).
//
// Views are safe for concurrent use after opening: the deferred chunk
// index is built exactly once under a sync.Once, and materialization is
// pure (every Chunk call decodes afresh; nothing is cached or mutated).
type ArtifactView struct {
	format       string
	chunked      bool
	version      uint8
	funcs        []FuncInfo
	chunkSize    uint64
	events       uint64
	instructions uint64
	peakLiveRHS  int
	size         int64
	// dict is the v2 terminal dictionary (ascending cost-table events);
	// nil for v1, whose terminals are raw event values.
	dict  []trace.Event
	costs map[trace.Event]uint64

	// nchunks is the chunk count declared by the header (1 for the
	// monolithic formats). loads holds one loader per chunk; for
	// byte-backed views it is built lazily by chunkIndex from raw, the
	// encoded artifact starting with the header and hdrEnd, the offset
	// of the first chunk grammar. Parts-backed views set loads at
	// construction and leave raw nil.
	nchunks   int
	loads     []ChunkLoad
	raw       []byte
	hdrEnd    int
	indexOnce sync.Once
	indexErr  error

	met       ViewMetrics
	opened    time.Time
	firstOnce sync.Once
	closer    io.Closer
}

// ChunkLoad produces one chunk's encoded bytes. release (may be nil)
// is called once the bytes have been decoded; implementations backed by
// a transient mapping use it to unmap. An error is returned verbatim to
// the materializing caller wrapped in a *ViewError.
type ChunkLoad func() (data []byte, release func(), err error)

// ViewError reports a failure materializing one chunk of a view. Match
// with errors.As; Unwrap exposes the underlying decode or load error.
type ViewError struct {
	Chunk int
	Err   error
}

func (e *ViewError) Error() string { return fmt.Sprintf("wpp: view chunk %d: %v", e.Chunk, e.Err) }
func (e *ViewError) Unwrap() error { return e.Err }

// ViewOptions configures NewView/NewViewParts/OpenViewFile. The zero
// value (or nil) is valid: no instrumentation, nothing to close.
type ViewOptions struct {
	// Metrics receives open-path instrumentation; nil disables it.
	Metrics *ViewMetrics
	// Closer, if non-nil, is closed by ArtifactView.Close — and by the
	// constructor itself if opening fails. Callers hand the view
	// ownership of whatever backs the data (typically an mmapio.Data).
	Closer io.Closer
}

// ViewMetrics is the open-path instrumentation hook set. Any field may
// be nil — obsv metrics are nil-safe no-ops — and a nil *ViewMetrics
// disables instrumentation entirely.
type ViewMetrics struct {
	// Opens counts views successfully opened.
	Opens *obsv.Counter
	// BytesMapped counts artifact bytes served by live memory mappings
	// (as opposed to heap copies).
	BytesMapped *obsv.Counter
	// BytesIndexed counts artifact bytes covered by index passes: the
	// header at open, plus the chunk region when the deferred boundary
	// scan runs on first materialization.
	BytesIndexed *obsv.Counter
	// ChunksMaterialized counts chunk grammars decoded on demand, and
	// MaterializedBytes the encoded bytes those decodes consumed.
	ChunksMaterialized *obsv.Counter
	MaterializedBytes  *obsv.Counter
	// IndexSeconds is the open-time index latency distribution;
	// FirstResultSeconds measures open to first materialized chunk —
	// the time-to-first-result a lazy open buys.
	IndexSeconds       *obsv.Histogram
	FirstResultSeconds *obsv.Histogram
}

// NewViewMetrics registers the standard wpp_open_* metric names on r
// and returns the hook set. A nil registry yields all-nil (no-op)
// metrics.
func NewViewMetrics(r *obsv.Registry) *ViewMetrics {
	return &ViewMetrics{
		Opens:              r.Counter("wpp_open_total"),
		BytesMapped:        r.Counter("wpp_open_bytes_mapped_total"),
		BytesIndexed:       r.Counter("wpp_open_bytes_indexed_total"),
		ChunksMaterialized: r.Counter("wpp_open_chunks_materialized_total"),
		MaterializedBytes:  r.Counter("wpp_open_chunk_bytes_total"),
		IndexSeconds:       r.Histogram("wpp_open_index_seconds", nil),
		FirstResultSeconds: r.Histogram("wpp_open_first_result_seconds", nil),
	}
}

// orNoop lets views hold a value so instrumentation sites can call
// through nil fields without checking the pointer first.
func (m *ViewMetrics) orNoop() ViewMetrics {
	if m == nil {
		return ViewMetrics{}
	}
	return *m
}

// byteReader is a bounds-checked cursor over an encoded artifact. It
// never copies: take returns subslices of the underlying data.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n == 0 {
		return 0, fmt.Errorf("wpp: reading %s: %w", what, io.ErrUnexpectedEOF)
	}
	if n < 0 {
		return 0, fmt.Errorf("wpp: reading %s: varint overflows 64 bits", what)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) take(n int, what string) ([]byte, error) {
	if len(r.data)-r.off < n {
		return nil, fmt.Errorf("wpp: reading %s: %w", what, io.ErrUnexpectedEOF)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// parseFuncTable mirrors the eager decoders' function-table parse,
// including its plausibility caps. Names are copied out of the buffer
// (string conversion), so the table never retains mapped bytes.
func parseFuncTable(r *byteReader) ([]FuncInfo, error) {
	numFuncs, err := r.uvarint("function count")
	if err != nil {
		return nil, err
	}
	if numFuncs > trace.MaxFuncs {
		return nil, fmt.Errorf("wpp: implausible function count %d", numFuncs)
	}
	funcs := make([]FuncInfo, numFuncs)
	for i := range funcs {
		nameLen, err := r.uvarint("name length")
		if err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("wpp: implausible name length %d", nameLen)
		}
		name, err := r.take(int(nameLen), "name")
		if err != nil {
			return nil, err
		}
		funcs[i].Name = string(name)
		if funcs[i].NumPaths, err = r.uvarint("path count"); err != nil {
			return nil, err
		}
	}
	return funcs, nil
}

// parseCostTableV1 reads a v1 cost table (absolute events, any order —
// the eager decoder accepts unsorted tables, so the view must too).
func parseCostTableV1(r *byteReader) (map[trace.Event]uint64, error) {
	numCosts, err := r.uvarint("cost count")
	if err != nil {
		return nil, err
	}
	if numCosts > 1<<32 {
		return nil, fmt.Errorf("wpp: implausible cost count %d", numCosts)
	}
	costs := make(map[trace.Event]uint64, min(numCosts, 1<<16))
	for i := uint64(0); i < numCosts; i++ {
		e, err := r.uvarint("cost event")
		if err != nil {
			return nil, err
		}
		c, err := r.uvarint("cost value")
		if err != nil {
			return nil, err
		}
		if err := trace.CheckEvent(trace.Event(e)); err != nil {
			return nil, fmt.Errorf("wpp: cost table: %w", err)
		}
		costs[trace.Event(e)] = c
	}
	return costs, nil
}

// parseCostTableV2 reads a v2 delta-encoded cost table, returning the
// reconstructed dictionary and cost map. The strict-ascent and overflow
// rejections match the eager v2 decoder.
func parseCostTableV2(r *byteReader) ([]trace.Event, map[trace.Event]uint64, error) {
	numCosts, err := r.uvarint("cost count")
	if err != nil {
		return nil, nil, err
	}
	if numCosts > 1<<32 {
		return nil, nil, fmt.Errorf("wpp: implausible cost count %d", numCosts)
	}
	costs := make(map[trace.Event]uint64, min(numCosts, 1<<16))
	dict := make([]trace.Event, 0, min(numCosts, 1<<16))
	prev := uint64(0)
	for i := uint64(0); i < numCosts; i++ {
		delta, err := r.uvarint("cost event delta")
		if err != nil {
			return nil, nil, err
		}
		v := delta
		if i > 0 {
			if delta == 0 {
				return nil, nil, fmt.Errorf("wpp: cost table entry %d repeats its predecessor", i)
			}
			var carry uint64
			v, carry = prev+delta, prev
			if v < carry {
				return nil, nil, fmt.Errorf("wpp: cost table entry %d overflows", i)
			}
		}
		c, err := r.uvarint("cost value")
		if err != nil {
			return nil, nil, err
		}
		if err := trace.CheckEvent(trace.Event(v)); err != nil {
			return nil, nil, fmt.Errorf("wpp: cost table: %w", err)
		}
		dict = append(dict, trace.Event(v))
		costs[trace.Event(v)] = c
		prev = v
	}
	return dict, costs, nil
}

// parseHeader decodes everything before the chunk grammars and returns
// the number of chunks that follow (1 for the monolithic formats, whose
// single grammar is modeled as one chunk).
func (v *ArtifactView) parseHeader(r *byteReader) (int, error) {
	mb, err := r.take(4, "magic")
	if err != nil {
		return 0, err
	}
	var m [4]byte
	copy(m[:], mb)
	switch m {
	case wppMagic:
		v.version = FormatV1
	case wpp2Magic:
		v.version = FormatV2
	case chunkedMagic:
		v.version, v.chunked = FormatV1, true
	case chunked2Magic:
		v.version, v.chunked = FormatV2, true
	default:
		return 0, fmt.Errorf("wpp: bad magic %q", mb)
	}
	if f, ok := codec.Lookup(m); ok {
		v.format = f.Name
	} else {
		v.format = string(m[:])
	}
	if v.funcs, err = parseFuncTable(r); err != nil {
		return 0, err
	}
	if v.chunked {
		if v.chunkSize, err = r.uvarint("chunk size"); err != nil {
			return 0, err
		}
		if v.chunkSize == 0 {
			return 0, fmt.Errorf("wpp: chunk size 0")
		}
	}
	if v.events, err = r.uvarint("event count"); err != nil {
		return 0, err
	}
	if v.instructions, err = r.uvarint("instruction count"); err != nil {
		return 0, err
	}
	if v.chunked {
		peak, err := r.uvarint("peak live RHS")
		if err != nil {
			return 0, err
		}
		if peak > 1<<40 {
			return 0, fmt.Errorf("wpp: implausible peak live RHS %d", peak)
		}
		v.peakLiveRHS = int(peak)
	}
	if v.version >= FormatV2 {
		if v.dict, v.costs, err = parseCostTableV2(r); err != nil {
			return 0, err
		}
	} else if v.costs, err = parseCostTableV1(r); err != nil {
		return 0, err
	}
	if !v.chunked {
		return 1, nil
	}
	numChunks, err := r.uvarint("chunk count")
	if err != nil {
		return 0, err
	}
	if numChunks > 1<<32 {
		return 0, fmt.Errorf("wpp: implausible chunk count %d", numChunks)
	}
	return int(numChunks), nil
}

var sqgMagic = [4]byte{'S', 'Q', 'G', '1'}

// maxViewRules mirrors the eager snapshot decoder's rule/RHS cap.
const maxViewRules = 1 << 31

// scanSnapshot advances r over one encoded sequitur snapshot without
// building it. The framing and plausibility caps match sequitur.Decode;
// rule-reference range checks are deferred to materialization, where
// the full decode enforces them.
func scanSnapshot(r *byteReader) error {
	mb, err := r.take(4, "snapshot magic")
	if err != nil {
		return fmt.Errorf("sequitur: reading magic: %w", io.ErrUnexpectedEOF)
	}
	var m [4]byte
	copy(m[:], mb)
	if m != sqgMagic {
		return fmt.Errorf("sequitur: bad magic %q", mb)
	}
	numRules, err := r.uvarint("rule count")
	if err != nil {
		return fmt.Errorf("sequitur: reading rule count: %w", io.ErrUnexpectedEOF)
	}
	if numRules > maxViewRules {
		return fmt.Errorf("sequitur: implausible rule count %d", numRules)
	}
	for i := uint64(0); i < numRules; i++ {
		rhsLen, err := r.uvarint("rule length")
		if err != nil {
			return fmt.Errorf("sequitur: rule %d: reading length: %w", i, io.ErrUnexpectedEOF)
		}
		if rhsLen > maxViewRules {
			return fmt.Errorf("sequitur: rule %d: implausible length %d", i, rhsLen)
		}
		for j := uint64(0); j < rhsLen; j++ {
			if _, err := r.uvarint("symbol"); err != nil {
				return fmt.Errorf("sequitur: rule %d sym %d: %w", i, j, io.ErrUnexpectedEOF)
			}
		}
	}
	return nil
}

// decodeSnapshot builds a snapshot from one chunk's exact byte region.
// It mirrors sequitur.Decode — same caps, same rule-reference range
// check — plus an exact-consumption check, since a view knows each
// chunk's boundary where the streaming decoder does not.
func decodeSnapshot(data []byte) (*sequitur.Snapshot, error) {
	r := &byteReader{data: data}
	mb, err := r.take(4, "snapshot magic")
	if err != nil {
		return nil, fmt.Errorf("sequitur: reading magic: %w", io.ErrUnexpectedEOF)
	}
	var m [4]byte
	copy(m[:], mb)
	if m != sqgMagic {
		return nil, fmt.Errorf("sequitur: bad magic %q", mb)
	}
	numRules, err := r.uvarint("rule count")
	if err != nil {
		return nil, fmt.Errorf("sequitur: reading rule count: %w", io.ErrUnexpectedEOF)
	}
	if numRules > maxViewRules {
		return nil, fmt.Errorf("sequitur: implausible rule count %d", numRules)
	}
	sn := &sequitur.Snapshot{Rules: make([][]sequitur.Sym, 0, min(numRules, 1<<16))}
	for i := uint64(0); i < numRules; i++ {
		rhsLen, err := r.uvarint("rule length")
		if err != nil {
			return nil, fmt.Errorf("sequitur: rule %d: reading length: %w", i, io.ErrUnexpectedEOF)
		}
		if rhsLen > maxViewRules {
			return nil, fmt.Errorf("sequitur: rule %d: implausible length %d", i, rhsLen)
		}
		rhs := make([]sequitur.Sym, 0, min(rhsLen, 1<<16))
		for j := uint64(0); j < rhsLen; j++ {
			s, err := r.uvarint("symbol")
			if err != nil {
				return nil, fmt.Errorf("sequitur: rule %d sym %d: %w", i, j, io.ErrUnexpectedEOF)
			}
			if s&1 == 1 {
				ri := s >> 1
				if ri >= numRules {
					return nil, fmt.Errorf("sequitur: rule %d sym %d: rule reference %d out of range", i, j, ri)
				}
				rhs = append(rhs, sequitur.Sym{Rule: int32(ri)})
			} else {
				rhs = append(rhs, sequitur.Sym{Rule: -1, Value: s >> 1})
			}
		}
		sn.Rules = append(sn.Rules, rhs)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("sequitur: %d trailing bytes after snapshot", len(data)-r.off)
	}
	return sn, nil
}

// NewView indexes an encoded artifact held in memory. Only the header
// is parsed here; the chunk region is delimited lazily, so an open
// followed by header queries never touches the trace bytes at all. The
// view takes ownership of opts.Closer — closing it on failure, and on
// ArtifactView.Close otherwise — and retains data for its lifetime;
// chunk decodes read straight from the buffer.
func NewView(data []byte, opts *ViewOptions) (*ArtifactView, error) {
	var o ViewOptions
	if opts != nil {
		o = *opts
	}
	v := &ArtifactView{met: o.Metrics.orNoop(), closer: o.Closer, opened: time.Now()}
	fail := func(err error) (*ArtifactView, error) {
		if v.closer != nil {
			v.closer.Close()
		}
		return nil, err
	}
	start := time.Now()
	r := &byteReader{data: data}
	numChunks, err := v.parseHeader(r)
	if err != nil {
		return fail(err)
	}
	v.nchunks = numChunks
	v.raw = data
	v.hdrEnd = r.off
	v.size = int64(len(data))
	v.met.Opens.Inc()
	v.met.BytesIndexed.Add(uint64(r.off))
	v.met.IndexSeconds.Observe(time.Since(start))
	return v, nil
}

// chunkIndex returns the per-chunk loaders. For byte-backed views the
// chunk boundaries are delimited here by a framing scan that runs
// exactly once, on first use — keeping the open path O(header); framing
// corruption discovered by the scan surfaces as a *ViewError naming the
// offending chunk on this and every later access. Parts-backed views
// were indexed at construction and return immediately.
func (v *ArtifactView) chunkIndex() ([]ChunkLoad, error) {
	v.indexOnce.Do(func() {
		if v.raw == nil {
			return
		}
		r := &byteReader{data: v.raw, off: v.hdrEnd}
		loads := make([]ChunkLoad, 0, min(v.nchunks, 1<<16))
		for i := 0; i < v.nchunks; i++ {
			segStart := r.off
			if err := scanSnapshot(r); err != nil {
				v.indexErr = &ViewError{Chunk: i, Err: err}
				return
			}
			seg := v.raw[segStart:r.off]
			loads = append(loads, func() ([]byte, func(), error) { return seg, nil, nil })
		}
		// Trailing bytes after the last chunk are tolerated, as with the
		// eager streaming decoders; the artifact ends where its grammar
		// does.
		v.loads = loads
		v.met.BytesIndexed.Add(uint64(r.off - v.hdrEnd))
	})
	return v.loads, v.indexErr
}

// NewViewParts assembles a view from a chunked artifact stored as
// separate parts: the header bytes (everything before the first chunk
// grammar, as split by EncodeParts) plus one ChunkLoad per chunk.
// totalSize is the whole artifact's encoded size. The header must
// declare exactly len(chunks) chunks and be fully consumed by the
// parse. Chunk bytes are loaded — and verified, if the loader verifies
// — only at materialization.
func NewViewParts(header []byte, chunks []ChunkLoad, totalSize int64, opts *ViewOptions) (*ArtifactView, error) {
	var o ViewOptions
	if opts != nil {
		o = *opts
	}
	v := &ArtifactView{met: o.Metrics.orNoop(), closer: o.Closer, opened: time.Now()}
	fail := func(err error) (*ArtifactView, error) {
		if v.closer != nil {
			v.closer.Close()
		}
		return nil, err
	}
	start := time.Now()
	r := &byteReader{data: header}
	numChunks, err := v.parseHeader(r)
	if err != nil {
		return fail(err)
	}
	if !v.chunked {
		return fail(fmt.Errorf("wpp: %s artifact cannot be opened from parts", v.format))
	}
	if r.off != len(header) {
		return fail(fmt.Errorf("wpp: chunked header has %d trailing bytes", len(header)-r.off))
	}
	if numChunks != len(chunks) {
		return fail(fmt.Errorf("wpp: header declares %d chunks, have %d parts", numChunks, len(chunks)))
	}
	v.nchunks = len(chunks)
	v.loads = chunks
	v.size = totalSize
	v.met.Opens.Inc()
	v.met.BytesIndexed.Add(uint64(len(header)))
	v.met.IndexSeconds.Observe(time.Since(start))
	return v, nil
}

// OpenViewFile opens an artifact file as a lazy view, memory-mapping it
// where the platform supports that. The returned view owns the mapping;
// Close releases it.
func OpenViewFile(path string, opts *ViewOptions) (*ArtifactView, error) {
	var o ViewOptions
	if opts != nil {
		o = *opts
	}
	d, err := mmapio.Open(path)
	if err != nil {
		return nil, err
	}
	if d.Mapped() {
		o.Metrics.orNoop().BytesMapped.Add(uint64(d.Len()))
	}
	o.Closer = d
	return NewView(d.Bytes(), &o)
}

// Format is the registered display name of the format that was indexed
// (e.g. "chunked WPP v2").
func (v *ArtifactView) Format() string { return v.format }

// Chunked reports whether the artifact is a chunked container. A
// monolithic artifact presents its single grammar as chunk 0.
func (v *ArtifactView) Chunked() bool { return v.chunked }

// Version is the artifact format version (FormatV1 or FormatV2).
func (v *ArtifactView) Version() uint8 { return v.version }

// FuncTable lists the traced functions, indexed by function ID.
func (v *ArtifactView) FuncTable() []FuncInfo { return v.funcs }

// NumEvents is the trace length (number of acyclic path events).
func (v *ArtifactView) NumEvents() uint64 { return v.events }

// TotalInstructions is the executed IR instruction count.
func (v *ArtifactView) TotalInstructions() uint64 { return v.instructions }

// ChunkSize is the chunked container's events-per-chunk (0 for
// monolithic artifacts).
func (v *ArtifactView) ChunkSize() uint64 { return v.chunkSize }

// PeakLiveRHS is the chunked builder's high-water live-symbol mark (0
// for monolithic artifacts).
func (v *ArtifactView) PeakLiveRHS() int { return v.peakLiveRHS }

// NumChunks reports the number of chunk grammars (1 for monolithic
// artifacts).
func (v *ArtifactView) NumChunks() int { return v.nchunks }

// Size is the encoded size of the artifact in bytes.
func (v *ArtifactView) Size() int64 { return v.size }

// DistinctPaths reports how many distinct (function, path) pairs were
// executed.
func (v *ArtifactView) DistinctPaths() int { return len(v.costs) }

// PathCost returns the instruction cost of one event's acyclic path;
// unknown events cost 0.
func (v *ArtifactView) PathCost(e trace.Event) uint64 { return v.costs[e] }

// CostEvents returns the cost table's keys in ascending order.
func (v *ArtifactView) CostEvents() []trace.Event {
	if v.dict != nil {
		out := make([]trace.Event, len(v.dict))
		copy(out, v.dict)
		return out
	}
	return sortedCostEvents(v.costs)
}

// Close releases whatever backs the view (the memory mapping for
// OpenViewFile views). The view must not be used afterwards.
func (v *ArtifactView) Close() error {
	if v.closer != nil {
		return v.closer.Close()
	}
	return nil
}

// Chunk materializes chunk i's grammar: load bytes, decode with full
// bounds checks, release the bytes, and (for v2) rewrite terminal ranks
// back to event values against the artifact's dictionary. Every call
// decodes afresh; the returned snapshot shares nothing with the view's
// backing bytes and stays valid after Close.
func (v *ArtifactView) Chunk(i int) (*sequitur.Snapshot, error) {
	if i < 0 || i >= v.nchunks {
		return nil, &ViewError{Chunk: i, Err: fmt.Errorf("wpp: chunk index out of range (%d chunks)", v.nchunks)}
	}
	loads, err := v.chunkIndex()
	if err != nil {
		return nil, err
	}
	data, release, err := loads[i]()
	if err != nil {
		return nil, &ViewError{Chunk: i, Err: err}
	}
	sn, derr := decodeSnapshot(data)
	n := len(data)
	if release != nil {
		release()
	}
	if derr != nil {
		return nil, &ViewError{Chunk: i, Err: derr}
	}
	if v.dict != nil {
		if err := unrankSnapshot(sn, v.dict); err != nil {
			return nil, &ViewError{Chunk: i, Err: err}
		}
	}
	v.met.ChunksMaterialized.Inc()
	v.met.MaterializedBytes.Add(uint64(n))
	v.firstOnce.Do(func() { v.met.FirstResultSeconds.Observe(time.Since(v.opened)) })
	return sn, nil
}

// Walk yields the full event trace in order, materializing one chunk at
// a time, stopping early if yield returns false. Unlike the eager
// artifacts' Walk it can fail: a corrupt chunk surfaces as a *ViewError
// instead of being undecodable at open time.
func (v *ArtifactView) Walk(yield func(trace.Event) bool) error {
	for i := 0; i < v.nchunks; i++ {
		sn, err := v.Chunk(i)
		if err != nil {
			return err
		}
		if len(sn.Rules) == 0 {
			continue
		}
		if !sn.Expand(0, func(val uint64) bool { return yield(trace.Event(val)) }) {
			return nil
		}
	}
	return nil
}

// eachChunk materializes every chunk across a worker pool, invoking fn
// per chunk. Errors are deterministic: the one reported is always for
// the lowest-indexed failing chunk, whatever the schedule. fn must be
// safe for concurrent calls on distinct i.
func (v *ArtifactView) eachChunk(workers int, fn func(i int, sn *sequitur.Snapshot) error) error {
	n := v.nchunks
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				sn, err := v.Chunk(i)
				if err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i, sn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Verify checks the view's artifact for internal consistency, applying
// exactly the checks the eager artifact's Verify would: for monolithic
// views, grammar validity, expansion length against the header, and
// per-event function range and cost presence; for chunked views,
// per-chunk grammar validity and the total expansion length. workers
// sizes the chunk pool (<=0 means GOMAXPROCS; monolithic views have one
// chunk and verify sequentially).
func (v *ArtifactView) Verify(workers int) error {
	if v.chunked {
		return v.verifyChunked(workers)
	}
	return v.verifyMono()
}

func (v *ArtifactView) verifyMono() error {
	sn, err := v.Chunk(0)
	if err != nil {
		return err
	}
	if err := sn.Validate(); err != nil {
		return err
	}
	lens := sn.ExpandedLen()
	if len(lens) > 0 && lens[0] != v.events {
		return fmt.Errorf("wpp: grammar expands to %d events, header says %d", lens[0], v.events)
	}
	if len(lens) == 0 && v.events != 0 {
		return fmt.Errorf("wpp: empty grammar but %d events", v.events)
	}
	// The eager Verify walks the expansion checking every event; the
	// expansion's event set is exactly the terminals of rules reachable
	// from the start rule, so checking those accepts the same artifacts
	// in grammar time rather than trace time.
	if len(sn.Rules) == 0 {
		return nil
	}
	reach := make([]bool, len(sn.Rules))
	var visit func(int)
	visit = func(i int) {
		if reach[i] {
			return
		}
		reach[i] = true
		for _, s := range sn.Rules[i] {
			if s.IsRule() {
				visit(int(s.Rule))
			}
		}
	}
	visit(0)
	for i, rhs := range sn.Rules {
		if !reach[i] {
			continue
		}
		for _, s := range rhs {
			if s.IsRule() {
				continue
			}
			e := trace.Event(s.Value)
			if int(e.Func()) >= len(v.funcs) {
				return fmt.Errorf("wpp: event %v references unknown function", e)
			}
			if _, ok := v.costs[e]; !ok {
				return fmt.Errorf("wpp: event %v has no recorded cost", e)
			}
		}
	}
	return nil
}

func (v *ArtifactView) verifyChunked(workers int) error {
	lens := make([]uint64, v.nchunks)
	err := v.eachChunk(workers, func(i int, sn *sequitur.Snapshot) error {
		if err := sn.Validate(); err != nil {
			return fmt.Errorf("wpp: chunk %d: %w", i, err)
		}
		if el := sn.ExpandedLen(); len(el) > 0 {
			lens[i] = el[0]
		}
		return nil
	})
	if err != nil {
		return err
	}
	var total uint64
	for _, l := range lens {
		total += l
	}
	if total != v.events {
		return fmt.Errorf("wpp: chunks expand to %d events, header says %d", total, v.events)
	}
	return nil
}

// ViewSummary aggregates the grammar-shape statistics that require
// materializing chunks: rule and symbol counts, the canonical encoded
// size of the grammars (terminals as event values, the figure the eager
// Stats report for both format versions), and the varint size of the
// uncompressed trace the artifact replaces.
type ViewSummary struct {
	Rules      int
	RHSSymbols int
	// GrammarBytes is the canonical (v1, unranked) encoded size of the
	// grammars alone.
	GrammarBytes int64
	// RawTraceBytes is the size of the uncompressed varint trace the
	// grammars replace (including the trace magic).
	RawTraceBytes int64
}

// Summarize materializes every chunk across a worker pool and
// aggregates grammar statistics, matching the eager artifacts' Stats
// figures field for field.
func (v *ArtifactView) Summarize(workers int) (*ViewSummary, error) {
	type acc struct {
		rules, syms int
		grammar     int64
		raw         int64
	}
	per := make([]acc, v.nchunks)
	err := v.eachChunk(workers, func(i int, sn *sequitur.Snapshot) error {
		a := acc{rules: len(sn.Rules), grammar: sn.EncodedSize(), raw: snapshotRawBytes(sn)}
		for _, rhs := range sn.Rules {
			a.syms += len(rhs)
		}
		per[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	s := &ViewSummary{RawTraceBytes: 4} // trace magic
	for _, a := range per {
		s.Rules += a.rules
		s.RHSSymbols += a.syms
		s.GrammarBytes += a.grammar
		s.RawTraceBytes += a.raw
	}
	return s, nil
}

// copyCosts clones the view's cost table for a materialized artifact,
// so the artifact stays independent of the view.
func (v *ArtifactView) copyCosts() map[trace.Event]uint64 {
	costs := make(map[trace.Event]uint64, len(v.costs))
	for e, c := range v.costs {
		costs[e] = c
	}
	return costs
}

// WPP materializes the whole monolithic artifact. The result is
// identical to eagerly decoding the original bytes — it re-encodes
// byte-for-byte.
func (v *ArtifactView) WPP() (*WPP, error) {
	if v.chunked {
		return nil, fmt.Errorf("wpp: view is a %s; use ChunkedWPP", v.format)
	}
	sn, err := v.Chunk(0)
	if err != nil {
		return nil, err
	}
	return &WPP{
		Funcs:        v.funcs,
		Grammar:      sn,
		Events:       v.events,
		Instructions: v.instructions,
		Version:      v.version,
		costs:        v.copyCosts(),
	}, nil
}

// ChunkedWPP materializes the whole chunked artifact. The result is
// identical to eagerly decoding the original bytes — it re-encodes
// byte-for-byte.
func (v *ArtifactView) ChunkedWPP() (*ChunkedWPP, error) {
	if !v.chunked {
		return nil, fmt.Errorf("wpp: view is a %s; use WPP", v.format)
	}
	chunks := make([]*sequitur.Snapshot, v.nchunks)
	err := v.eachChunk(0, func(i int, sn *sequitur.Snapshot) error {
		chunks[i] = sn
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ChunkedWPP{
		Funcs:        v.funcs,
		Chunks:       chunks,
		ChunkSize:    v.chunkSize,
		Events:       v.events,
		Instructions: v.instructions,
		PeakLiveRHS:  v.peakLiveRHS,
		Version:      v.version,
		costs:        v.copyCosts(),
	}, nil
}

// Materialize fully decodes the viewed artifact, whichever container it
// is.
func (v *ArtifactView) Materialize() (Artifact, error) {
	if v.chunked {
		return v.ChunkedWPP()
	}
	return v.WPP()
}
