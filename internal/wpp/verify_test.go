package wpp

import (
	"strings"
	"testing"

	"repro/internal/sequitur"
	"repro/internal/trace"
)

// buildVerifyWPP compresses a synthetic event stream with the monolithic
// builder.
func buildVerifyWPP(events []trace.Event) *WPP {
	b := NewMonoBuilder([]string{"f0", "f1"}, nil)
	for _, e := range events {
		b.Add(e)
	}
	return b.Finish(uint64(len(events)))
}

func synthEvents(n int) []trace.Event {
	events := make([]trace.Event, n)
	for i := range events {
		events[i] = trace.MakeEvent(uint32(i%2), uint64(i%7))
	}
	return events
}

func TestVerifyArtifactMonolithic(t *testing.T) {
	w := buildVerifyWPP(synthEvents(500))
	rep, err := w.VerifyArtifact()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "monolithic" || rep.Events != 500 || rep.Chunks != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.DistinctEvents != w.DistinctPaths() {
		t.Fatalf("distinct events %d, want %d", rep.DistinctEvents, w.DistinctPaths())
	}
	// Built with nil numberings: no path counts, nothing bounded.
	if rep.UnknownFuncs != 2 || rep.BoundedEvents != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "monolithic artifact verified") {
		t.Fatalf("report string: %s", rep.String())
	}
}

func TestVerifyArtifactChecksPathBounds(t *testing.T) {
	w := buildVerifyWPP(synthEvents(100))
	// Path IDs run 0..6; a recorded bound of 7 is satisfied.
	w.Funcs[0].NumPaths = 7
	w.Funcs[1].NumPaths = 7
	rep, err := w.VerifyArtifact()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundedEvents != rep.DistinctEvents || rep.UnknownFuncs != 0 {
		t.Fatalf("report: %+v", rep)
	}
	// A tighter bound must be rejected.
	w.Funcs[1].NumPaths = 5
	if _, err := w.VerifyArtifact(); err == nil || !strings.Contains(err.Error(), "outside [0,5)") {
		t.Fatalf("path-ID bound violation not caught: %v", err)
	}
}

func TestVerifyArtifactRejectsUtilityViolation(t *testing.T) {
	w := buildVerifyWPP([]trace.Event{1, 2})
	// Hand-build a grammar expanding to the same 2 events but with a rule
	// used only once.
	w.Grammar = &sequitur.Snapshot{Rules: [][]sequitur.Sym{
		{{Rule: 1}},
		{{Rule: -1, Value: 1}, {Rule: -1, Value: 2}},
	}}
	if _, err := w.VerifyArtifact(); err == nil || !strings.Contains(err.Error(), "rule utility") {
		t.Fatalf("utility violation not caught: %v", err)
	}
}

func TestVerifyArtifactRejectsUnreachableRule(t *testing.T) {
	w := buildVerifyWPP([]trace.Event{1, 2})
	w.Grammar = &sequitur.Snapshot{Rules: [][]sequitur.Sym{
		{{Rule: -1, Value: 1}, {Rule: -1, Value: 2}},
		{{Rule: -1, Value: 3}, {Rule: -1, Value: 4}},
	}}
	if _, err := w.VerifyArtifact(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("unreachable rule not caught: %v", err)
	}
}

func TestVerifyArtifactRejectsDigramBlowup(t *testing.T) {
	// The digram (1,2) occurs 8 times in a 16-event start rule: far past
	// the seam slack of 2 + 16/50.
	var rhs []sequitur.Sym
	var events []trace.Event
	for i := 0; i < 8; i++ {
		rhs = append(rhs, sequitur.Sym{Rule: -1, Value: 1}, sequitur.Sym{Rule: -1, Value: 2})
		events = append(events, 1, 2)
	}
	w := buildVerifyWPP(events)
	w.Grammar = &sequitur.Snapshot{Rules: [][]sequitur.Sym{rhs}}
	if _, err := w.VerifyArtifact(); err == nil || !strings.Contains(err.Error(), "duplicate digrams") {
		t.Fatalf("digram blowup not caught: %v", err)
	}
}

func TestVerifyArtifactRejectsForeignCostEntry(t *testing.T) {
	w := buildVerifyWPP(synthEvents(50))
	w.costs[trace.MakeEvent(1, 999)] = 1 // never appears in the trace
	if _, err := w.VerifyArtifact(); err == nil || !strings.Contains(err.Error(), "cost table") {
		t.Fatalf("stray cost entry not caught: %v", err)
	}
}

func TestVerifyArtifactChunked(t *testing.T) {
	b := NewChunkedBuilder([]string{"f0", "f1"}, nil, 64)
	events := synthEvents(500)
	for _, e := range events {
		b.Add(e)
	}
	c := b.Finish(500)
	rep, err := c.VerifyArtifact()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "chunked" || rep.Chunks != len(c.Chunks) || rep.Events != 500 {
		t.Fatalf("report: %+v", rep)
	}

	// Tampering with the declared geometry must be caught.
	c.ChunkSize = 100
	if _, err := c.VerifyArtifact(); err == nil || !strings.Contains(err.Error(), "chunk size") {
		t.Fatalf("chunk geometry violation not caught: %v", err)
	}
}

func TestVerifyArtifactEmpty(t *testing.T) {
	w := buildVerifyWPP(nil)
	if _, err := w.VerifyArtifact(); err != nil {
		t.Fatalf("empty monolithic artifact: %v", err)
	}
	cb := NewChunkedBuilder(nil, nil, 8)
	if _, err := cb.Finish(0).VerifyArtifact(); err != nil {
		t.Fatalf("empty chunked artifact: %v", err)
	}
}
