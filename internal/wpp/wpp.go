// Package wpp implements the whole-program-path representation: a
// SEQUITUR grammar over the stream of Ball–Larus path events emitted by an
// instrumented execution (Larus, "Whole Program Paths", PLDI 1999).
//
// A WPP is built online: the Builder is handed to the interpreter as its
// event sink, feeds each event to SEQUITUR as it arrives, and tracks the
// cost (IR instructions) of each distinct acyclic path so analyses can
// weight the compressed trace without rerunning the program. The finished
// WPP is a self-contained artifact: it can be persisted, reloaded, walked
// (full expansion), and analyzed in compressed form (package hotpath).
package wpp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/bl"
	"repro/internal/sequitur"
	"repro/internal/trace"
)

// FuncInfo describes one traced function.
type FuncInfo struct {
	Name     string
	NumPaths uint64
}

// WPP is a finished whole program path.
type WPP struct {
	// Funcs is indexed by function ID.
	Funcs []FuncInfo
	// Grammar is the SEQUITUR grammar generating the event trace.
	Grammar *sequitur.Snapshot
	// Events is the trace length (number of acyclic path events).
	Events uint64
	// Instructions is the total number of IR instructions the traced
	// execution ran.
	Instructions uint64
	// Version selects the on-disk encoding (FormatV1 or FormatV2; zero
	// encodes as v1). Decoding sets it to the format that was read, so
	// the canonical re-encoding reproduces the input bytes.
	Version uint8
	// costs maps each distinct event to the instruction count of its
	// acyclic path.
	costs map[trace.Event]uint64
	// idx is the lazily built positional index (see query.go).
	idx *index
}

// MonoBuilder accumulates a WPP online. Its Add method is an interp.Config
// Sink.
type MonoBuilder struct {
	grammar *sequitur.Grammar
	funcs   []FuncInfo
	nums    []*bl.Numbering
	events  uint64
	costs   map[trace.Event]uint64
	metrics BuildMetrics
	// lazyCosts records that batches were ingested without per-event cost
	// tracking, so Finish derives the cost table from the grammar.
	lazyCosts bool
}

// SetMetrics installs observability hooks (see BuildMetrics); nil
// disables instrumentation. Call before feeding events.
func (b *MonoBuilder) SetMetrics(m *BuildMetrics) {
	b.metrics = m.orNoop()
	b.grammar.SetMetrics(b.metrics.Grammar)
}

// NewMonoBuilder returns a builder for a program whose functions have the
// given Ball–Larus numberings (indexed by function ID, as produced by
// interp.Machine.Numberings). Numberings supply per-path instruction
// costs; a nil slice makes every path cost 1.
func NewMonoBuilder(names []string, nums []*bl.Numbering) *MonoBuilder {
	funcs := make([]FuncInfo, len(names))
	for i, n := range names {
		funcs[i] = FuncInfo{Name: n}
		if nums != nil {
			funcs[i].NumPaths = nums[i].NumPaths
		}
	}
	return &MonoBuilder{
		grammar: sequitur.New(),
		funcs:   funcs,
		nums:    nums,
		costs:   map[trace.Event]uint64{},
	}
}

// Add feeds one path event to the grammar.
func (b *MonoBuilder) Add(e trace.Event) {
	b.grammar.Append(uint64(e))
	b.events++
	b.metrics.EventsIngested.Inc()
	if _, seen := b.costs[e]; !seen {
		cost := uint64(1)
		if b.nums != nil {
			w, err := b.nums[e.Func()].PathWeight(e.Path())
			if err != nil {
				// An event the numbering cannot regenerate indicates a
				// corrupted trace; surface loudly rather than mis-cost.
				panic(fmt.Sprintf("wpp: invalid event %v: %v", e, err))
			}
			cost = uint64(w)
		}
		b.costs[e] = cost
	}
}

// AddBatch feeds a slice of path events to the grammar through the
// batched SEQUITUR fast path. It is equivalent to calling Add for each
// element: the grammar evolves identically, and the cost of each
// distinct path — tracked per event by Add — is instead derived from
// the grammar's terminals at Finish, which prices exactly the same set
// of distinct events. Invalid events surface at Finish rather than at
// ingestion. Add and AddBatch may be mixed freely.
func (b *MonoBuilder) AddBatch(es []trace.Event) {
	if len(es) == 0 {
		return
	}
	sequitur.AppendBatchOf(b.grammar, es)
	b.events += uint64(len(es))
	b.metrics.EventsIngested.Add(uint64(len(es)))
	b.lazyCosts = true
}

// fillCosts prices every distinct terminal of the snapshots that has no
// cost entry yet. The set of terminal values across a grammar's rules is
// exactly the set of distinct values in the stream it generates, so this
// reconstructs what per-event tracking would have recorded, in time
// proportional to the grammar rather than the trace.
func fillCosts(costs map[trace.Event]uint64, nums []*bl.Numbering, snaps ...*sequitur.Snapshot) {
	for _, sn := range snaps {
		for _, rhs := range sn.Rules {
			for _, s := range rhs {
				if s.IsRule() {
					continue
				}
				e := trace.Event(s.Value)
				if _, seen := costs[e]; seen {
					continue
				}
				cost := uint64(1)
				if nums != nil {
					w, err := nums[e.Func()].PathWeight(e.Path())
					if err != nil {
						// An event the numbering cannot regenerate
						// indicates a corrupted trace; surface loudly
						// rather than mis-cost.
						panic(fmt.Sprintf("wpp: invalid event %v: %v", e, err))
					}
					cost = uint64(w)
				}
				costs[e] = cost
			}
		}
	}
}

// Events reports the number of events consumed so far.
func (b *MonoBuilder) Events() uint64 { return b.events }

// GrammarStats exposes the live grammar size, for growth-curve
// experiments that sample the builder mid-stream.
func (b *MonoBuilder) GrammarStats() sequitur.Stats { return b.grammar.Stats() }

// Finish seals the WPP. instructions is the total executed instruction
// count (interp.Stats.Instructions).
func (b *MonoBuilder) Finish(instructions uint64) *WPP {
	snap := b.grammar.Snapshot()
	if b.lazyCosts {
		fillCosts(b.costs, b.nums, snap)
	}
	return &WPP{
		Funcs:        b.funcs,
		Grammar:      snap,
		Events:       b.events,
		Instructions: instructions,
		costs:        b.costs,
	}
}

// SnapshotWPP captures the still-growing build as a queryable WPP
// without sealing it: the grammar is snapshotted at its current state,
// the cost table is copied (and, after batched ingestion, derived from
// the snapshot's terminals exactly as Finish would derive it), and the
// builder continues unaffected. Because the executed-instruction total is
// not known until the trace ends, the snapshot's Instructions is set to
// TotalPathCost — the cost-weighted trace length — so hot-subpath
// fractions stay well defined mid-stream. The caller must serialize
// SnapshotWPP against Add/AddBatch; the returned WPP shares nothing
// mutable with the builder.
func (b *MonoBuilder) SnapshotWPP() *WPP {
	snap := b.grammar.Snapshot()
	costs := make(map[trace.Event]uint64, len(b.costs))
	for e, c := range b.costs {
		costs[e] = c
	}
	if b.lazyCosts {
		fillCosts(costs, b.nums, snap)
	}
	w := &WPP{
		Funcs:   b.funcs,
		Grammar: snap,
		Events:  b.events,
		costs:   costs,
	}
	w.Instructions = w.TotalPathCost()
	return w
}

// TotalPathCost is the cost-weighted length of the trace: the sum over
// every event of its acyclic path's cost. It is computed bottom-up on the
// grammar with memoized per-rule totals, in time proportional to the
// grammar rather than the trace. For cost-1 tables (builds from raw
// traces) it equals Events.
func (w *WPP) TotalPathCost() uint64 {
	n := len(w.Grammar.Rules)
	if n == 0 {
		return 0
	}
	memo := make([]uint64, n)
	done := make([]bool, n)
	var visit func(int) uint64
	visit = func(i int) uint64 {
		if done[i] {
			return memo[i]
		}
		var total uint64
		for _, s := range w.Grammar.Rules[i] {
			if s.IsRule() {
				total += visit(int(s.Rule))
			} else {
				total += w.costs[trace.Event(s.Value)]
			}
		}
		memo[i] = total
		done[i] = true
		return total
	}
	return visit(0)
}

// PathCost returns the instruction cost of one event's acyclic path.
// Unknown events cost 0.
func (w *WPP) PathCost(e trace.Event) uint64 { return w.costs[e] }

// DistinctPaths reports how many distinct (function, path) pairs were
// executed.
func (w *WPP) DistinctPaths() int { return len(w.costs) }

// Walk yields the full event trace in order, stopping early if yield
// returns false.
func (w *WPP) Walk(yield func(trace.Event) bool) {
	if len(w.Grammar.Rules) == 0 {
		return
	}
	w.Grammar.Expand(0, func(v uint64) bool { return yield(trace.Event(v)) })
}

// Stats summarizes WPP size.
type Stats struct {
	Events        uint64
	Rules         int
	RHSSymbols    int
	DistinctPaths int
	// EncodedBytes is the on-disk size of the whole artifact.
	EncodedBytes int64
	// GrammarBytes is the on-disk size of the grammar alone.
	GrammarBytes int64
	// RawTraceBytes is the size of the uncompressed varint trace the
	// grammar replaces.
	RawTraceBytes int64
}

// Stats computes size statistics. It expands nothing; raw trace size is
// reconstructed from the grammar by weighting each rule's terminals with
// rule use counts.
func (w *WPP) Stats() Stats {
	st := Stats{
		Events:        w.Events,
		Rules:         len(w.Grammar.Rules),
		DistinctPaths: len(w.costs),
		GrammarBytes:  w.Grammar.EncodedSize(),
		EncodedBytes:  w.EncodedSize(),
	}
	for _, rhs := range w.Grammar.Rules {
		st.RHSSymbols += len(rhs)
	}
	st.RawTraceBytes = w.rawTraceBytes()
	return st
}

// rawTraceBytes computes the varint-encoded size of the full expansion
// without materializing it: bytes(rule) summed bottom-up with use counts.
func (w *WPP) rawTraceBytes() int64 {
	return 4 + snapshotRawBytes(w.Grammar) // trace magic + payload
}

// snapshotRawBytes is the varint byte size of a snapshot's full expansion,
// computed bottom-up with memoization rather than by expanding.
func snapshotRawBytes(sn *sequitur.Snapshot) int64 {
	n := len(sn.Rules)
	if n == 0 {
		return 0
	}
	memo := make([]int64, n)
	done := make([]bool, n)
	var visit func(int) int64
	visit = func(i int) int64 {
		if done[i] {
			return memo[i]
		}
		var total int64
		for _, s := range sn.Rules[i] {
			if s.IsRule() {
				total += visit(int(s.Rule))
			} else {
				total += int64(uvarintLen(s.Value))
			}
		}
		memo[i] = total
		done[i] = true
		return total
	}
	return visit(0)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Verify checks internal consistency: the grammar is well formed and its
// expansion length equals Events, and every expanded event has a recorded
// cost and an in-range function ID.
func (w *WPP) Verify() error {
	if err := w.Grammar.Validate(); err != nil {
		return err
	}
	lens := w.Grammar.ExpandedLen()
	if len(lens) > 0 && lens[0] != w.Events {
		return fmt.Errorf("wpp: grammar expands to %d events, header says %d", lens[0], w.Events)
	}
	if len(lens) == 0 && w.Events != 0 {
		return fmt.Errorf("wpp: empty grammar but %d events", w.Events)
	}
	var bad error
	w.Walk(func(e trace.Event) bool {
		if int(e.Func()) >= len(w.Funcs) {
			bad = fmt.Errorf("wpp: event %v references unknown function", e)
			return false
		}
		if _, ok := w.costs[e]; !ok {
			bad = fmt.Errorf("wpp: event %v has no recorded cost", e)
			return false
		}
		return true
	})
	return bad
}

// Binary layout (all varints except magic and names):
//
//	magic "WPP1"
//	numFuncs, then per func: nameLen, name bytes, numPaths
//	events, instructions
//	numCosts, then per entry (sorted by event): event, cost
//	grammar snapshot (sequitur encoding)
var wppMagic = [4]byte{'W', 'P', 'P', '1'}

// Encode writes the WPP to w in the encoding Version selects.
func (w *WPP) Encode(out io.Writer) (int64, error) {
	if w.Version >= FormatV2 {
		return w.encodeV2(out)
	}
	bw := bufio.NewWriter(out)
	var written int64
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		m, err := bw.Write(buf[:n])
		written += int64(m)
		return err
	}
	n, err := bw.Write(wppMagic[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	if err := put(uint64(len(w.Funcs))); err != nil {
		return written, err
	}
	for _, f := range w.Funcs {
		if err := put(uint64(len(f.Name))); err != nil {
			return written, err
		}
		m, err := bw.WriteString(f.Name)
		written += int64(m)
		if err != nil {
			return written, err
		}
		if err := put(f.NumPaths); err != nil {
			return written, err
		}
	}
	if err := put(w.Events); err != nil {
		return written, err
	}
	if err := put(w.Instructions); err != nil {
		return written, err
	}
	if err := put(uint64(len(w.costs))); err != nil {
		return written, err
	}
	events := make([]trace.Event, 0, len(w.costs))
	for e := range w.costs {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	for _, e := range events {
		if err := put(uint64(e)); err != nil {
			return written, err
		}
		if err := put(w.costs[e]); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	gn, err := w.Grammar.Encode(out)
	written += gn
	return written, err
}

// EncodedSize returns the byte size Encode would produce.
func (w *WPP) EncodedSize() int64 {
	if w.Version >= FormatV2 {
		return w.encodedSizeV2()
	}
	n := int64(4)
	n += int64(uvarintLen(uint64(len(w.Funcs))))
	for _, f := range w.Funcs {
		n += int64(uvarintLen(uint64(len(f.Name)))) + int64(len(f.Name)) + int64(uvarintLen(f.NumPaths))
	}
	n += int64(uvarintLen(w.Events)) + int64(uvarintLen(w.Instructions))
	n += int64(uvarintLen(uint64(len(w.costs))))
	for e, c := range w.costs {
		n += int64(uvarintLen(uint64(e))) + int64(uvarintLen(c))
	}
	return n + w.Grammar.EncodedSize()
}

// Decode reads a WPP written by Encode.
func Decode(r io.Reader) (*WPP, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("wpp: reading magic: %w", err)
	}
	if m != wppMagic {
		return nil, fmt.Errorf("wpp: bad magic %q", m[:])
	}
	return decodeBody(br)
}

// decodeBody reads everything after the magic.
func decodeBody(br *bufio.Reader) (*WPP, error) {
	get := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("wpp: reading %s: %w", what, err)
		}
		return v, nil
	}
	numFuncs, err := get("function count")
	if err != nil {
		return nil, err
	}
	if numFuncs > trace.MaxFuncs {
		return nil, fmt.Errorf("wpp: implausible function count %d", numFuncs)
	}
	w := &WPP{Funcs: make([]FuncInfo, numFuncs), Version: FormatV1, costs: map[trace.Event]uint64{}}
	for i := range w.Funcs {
		nameLen, err := get("name length")
		if err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("wpp: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("wpp: reading name: %w", err)
		}
		w.Funcs[i].Name = string(name)
		if w.Funcs[i].NumPaths, err = get("path count"); err != nil {
			return nil, err
		}
	}
	if w.Events, err = get("event count"); err != nil {
		return nil, err
	}
	if w.Instructions, err = get("instruction count"); err != nil {
		return nil, err
	}
	numCosts, err := get("cost count")
	if err != nil {
		return nil, err
	}
	if numCosts > 1<<32 {
		return nil, fmt.Errorf("wpp: implausible cost count %d", numCosts)
	}
	for i := uint64(0); i < numCosts; i++ {
		e, err := get("cost event")
		if err != nil {
			return nil, err
		}
		c, err := get("cost value")
		if err != nil {
			return nil, err
		}
		// Raw varints can carry function bits no numbering produces;
		// refuse them rather than admit unanalyzable events.
		if err := trace.CheckEvent(trace.Event(e)); err != nil {
			return nil, fmt.Errorf("wpp: cost table: %w", err)
		}
		w.costs[trace.Event(e)] = c
	}
	// The grammar reads from the same stream; hand over the buffered
	// remainder.
	w.Grammar, err = sequitur.Decode(br)
	if err != nil {
		return nil, err
	}
	return w, nil
}
