package wpp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bl"
	"repro/internal/sequitur"
	"repro/internal/trace"
)

// ParallelOptions tunes the parallel chunked pipeline.
type ParallelOptions struct {
	// Workers is the number of concurrent SEQUITUR compressors. Zero or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
	// Metrics installs observability hooks on the pipeline (see
	// BuildMetrics). Nil disables instrumentation; the artifact is
	// byte-identical either way.
	Metrics *BuildMetrics
}

func (o ParallelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelChunkedBuilder is a ChunkedBuilder whose per-chunk SEQUITUR
// compression runs on a bounded worker pool. The Add front-end stays
// single-threaded (it is an interp Sink, called from one goroutine): it
// only buffers events and tallies path costs; a full buffer is handed to
// the pool over a bounded channel, so a slow compressor exerts
// backpressure on the producer instead of queueing unbounded raw chunks.
//
// The pipeline is deterministic: chunk i is exactly the events
// [i*chunkSize, (i+1)*chunkSize) of the stream, SEQUITUR is a
// deterministic function of a chunk's events, and results are reassembled
// by chunk index — so Finish returns a ChunkedWPP whose Chunks, Stats,
// and encoding are byte-identical to the sequential ChunkedBuilder's,
// regardless of worker count or scheduling.
//
// Live memory is bounded by O(workers · chunkSize): at most `workers`
// chunks queued in the channel, `workers` being compressed, and one being
// filled.
type ParallelChunkedBuilder struct {
	chunkSize uint64
	funcs     []FuncInfo
	nums      []*bl.Numbering
	events    uint64
	costs     map[trace.Event]uint64

	buf     []uint64 // current chunk, owned by the Add goroutine
	nextIdx int      // index of the chunk being filled

	jobs    chan parallelJob
	done    chan struct{} // closed when the collector has drained results
	results chan parallelResult
	wg      sync.WaitGroup
	bufPool sync.Pool

	// Collector-owned state, safe to read only after <-done.
	chunks  []*sequitur.Snapshot
	peakRHS int

	// lazyCosts: see MonoBuilder.
	lazyCosts bool

	metrics BuildMetrics
	start   time.Time
	// workerBusy[i] is worker i's total compression time in nanoseconds,
	// written by the worker goroutine before exit and read by Finish
	// after wg.Wait (the WaitGroup provides the happens-before edge).
	workerBusy []int64

	finished bool
	report   BuildReport
}

type parallelJob struct {
	idx    int
	events []uint64
}

type parallelResult struct {
	idx  int
	snap *sequitur.Snapshot
	// rhs is the grammar's RHS symbol count at seal time, the same
	// quantity the sequential builder samples for PeakLiveRHS.
	rhs int
}

// NewParallelChunkedBuilder returns a parallel builder that seals a chunk
// every chunkSize events and compresses chunks on opts.Workers
// goroutines. chunkSize must be positive.
func NewParallelChunkedBuilder(names []string, nums []*bl.Numbering, chunkSize uint64, opts ParallelOptions) *ParallelChunkedBuilder {
	if chunkSize == 0 {
		panic("wpp: chunk size must be positive")
	}
	funcs := make([]FuncInfo, len(names))
	for i, n := range names {
		funcs[i] = FuncInfo{Name: n}
		if nums != nil {
			funcs[i].NumPaths = nums[i].NumPaths
		}
	}
	workers := opts.workers()
	b := &ParallelChunkedBuilder{
		chunkSize:  chunkSize,
		funcs:      funcs,
		nums:       nums,
		costs:      map[trace.Event]uint64{},
		jobs:       make(chan parallelJob, workers),
		results:    make(chan parallelResult, workers),
		done:       make(chan struct{}),
		metrics:    opts.Metrics.orNoop(),
		start:      time.Now(),
		workerBusy: make([]int64, workers),
	}
	for i := 0; i < workers; i++ {
		b.wg.Add(1)
		go b.worker(i)
	}
	go b.collect()
	return b
}

// getBuf returns a recycled chunk buffer, or allocates one when the pool
// is empty. Pool hits are the steady-state case; counting them (rather
// than allocations) makes buffer churn visible.
func (b *ParallelChunkedBuilder) getBuf() []uint64 {
	if v := b.bufPool.Get(); v != nil {
		b.metrics.PoolRecycles.Inc()
		return v.([]uint64)
	}
	return make([]uint64, 0, bufCap(b.chunkSize))
}

// bufCap caps the initial chunk-buffer allocation: huge chunk sizes (used
// to emulate monolithic construction) must not preallocate huge buffers.
func bufCap(chunkSize uint64) int {
	const max = 1 << 16
	if chunkSize > max {
		return max
	}
	return int(chunkSize)
}

// worker compresses chunks. Each worker reuses one grammar via Reset, so
// steady-state compression allocates only the snapshots. Busy time (one
// time.Now pair per chunk, negligible against compressing chunkSize
// events) always accumulates into workerBusy for the BuildReport; the
// metric counters are nil-safe no-ops when instrumentation is off.
func (b *ParallelChunkedBuilder) worker(id int) {
	defer b.wg.Done()
	g := sequitur.New()
	g.SetMetrics(b.metrics.Grammar)
	var busy int64
	idleStart := time.Now()
	for job := range b.jobs {
		t0 := time.Now()
		b.metrics.WorkerIdleNS.Add(uint64(t0.Sub(idleStart)))
		b.metrics.QueueDepth.Set(int64(len(b.jobs)))
		g.Reset()
		// The chunk slice is a ready-made batch; the batched fast path
		// produces a grammar identical to per-event Append (the
		// sequential ChunkedBuilder's scalar path is the oracle the
		// differential tests compare against).
		g.AppendBatch(job.events)
		rhs := g.Stats().RHSSymbols
		snap := g.Snapshot()
		job.events = job.events[:0]
		b.bufPool.Put(job.events) //nolint:staticcheck // slice header boxing is fine here
		b.results <- parallelResult{idx: job.idx, snap: snap, rhs: rhs}
		d := time.Since(t0)
		busy += int64(d)
		b.metrics.WorkerBusyNS.Add(uint64(d))
		b.metrics.ChunkCompress.Observe(d)
		idleStart = time.Now()
	}
	b.workerBusy[id] = busy
}

// collect owns the chunk slice: workers finish out of order, the
// collector files every snapshot under its chunk index.
func (b *ParallelChunkedBuilder) collect() {
	for r := range b.results {
		for len(b.chunks) <= r.idx {
			b.chunks = append(b.chunks, nil)
		}
		b.chunks[r.idx] = r.snap
		if r.rhs > b.peakRHS {
			b.peakRHS = r.rhs
		}
	}
	close(b.done)
}

// Add feeds one event. It must be called from a single goroutine (it is
// an interp Sink), and not after Finish.
func (b *ParallelChunkedBuilder) Add(e trace.Event) {
	if b.finished {
		panic("wpp: Add after Finish")
	}
	if b.buf == nil {
		b.buf = b.getBuf()
	}
	b.buf = append(b.buf, uint64(e))
	b.events++
	b.metrics.EventsIngested.Inc()
	if _, seen := b.costs[e]; !seen {
		cost := uint64(1)
		if b.nums != nil {
			w, err := b.nums[e.Func()].PathWeight(e.Path())
			if err != nil {
				panic(fmt.Sprintf("wpp: invalid event %v: %v", e, err))
			}
			cost = uint64(w)
		}
		b.costs[e] = cost
	}
	if uint64(len(b.buf)) >= b.chunkSize {
		b.seal()
	}
}

// AddBatch feeds a slice of events, filling and sealing chunk buffers
// as boundaries are crossed. Like Add it must be called from a single
// goroutine, and not after Finish. It is equivalent to calling Add per
// element; distinct-path costs are derived from the sealed chunk
// grammars at Finish instead of being tracked per event. Add and
// AddBatch may be mixed.
func (b *ParallelChunkedBuilder) AddBatch(es []trace.Event) {
	if b.finished {
		panic("wpp: AddBatch after Finish")
	}
	if len(es) == 0 {
		return
	}
	b.events += uint64(len(es))
	b.metrics.EventsIngested.Add(uint64(len(es)))
	b.lazyCosts = true
	for len(es) > 0 {
		if b.buf == nil {
			b.buf = b.getBuf()
		}
		n := uint64(len(es))
		if room := b.chunkSize - uint64(len(b.buf)); n > room {
			n = room
		}
		for _, e := range es[:n] {
			b.buf = append(b.buf, uint64(e))
		}
		es = es[n:]
		if uint64(len(b.buf)) >= b.chunkSize {
			b.seal()
		}
	}
}

// Events reports the number of events consumed so far.
func (b *ParallelChunkedBuilder) Events() uint64 { return b.events }

// seal hands the full buffer to the pool. The send blocks when all
// workers are busy and the queue is full — the backpressure bound.
func (b *ParallelChunkedBuilder) seal() {
	b.jobs <- parallelJob{idx: b.nextIdx, events: b.buf}
	b.nextIdx++
	b.buf = nil
	b.metrics.ChunksSealed.Inc()
	b.metrics.QueueDepth.Set(int64(len(b.jobs)))
}

// Finish seals the current partial chunk, waits for the pool to drain,
// and returns the artifact. The builder cannot be used afterwards.
func (b *ParallelChunkedBuilder) Finish(instructions uint64) *ChunkedWPP {
	if b.finished {
		panic("wpp: Finish called twice")
	}
	b.finished = true
	if len(b.buf) > 0 {
		b.seal()
	}
	close(b.jobs)
	b.wg.Wait()
	close(b.results)
	<-b.done
	if b.lazyCosts {
		fillCosts(b.costs, b.nums, b.chunks...)
	}
	c := &ChunkedWPP{
		Funcs:        b.funcs,
		Chunks:       b.chunks,
		ChunkSize:    b.chunkSize,
		Events:       b.events,
		Instructions: instructions,
		PeakLiveRHS:  b.peakRHS,
		costs:        b.costs,
	}
	b.report = b.buildReport(c, time.Since(b.start))
	return c
}

// buildReport assembles the build summary from the sealed artifact and
// the per-worker busy times.
func (b *ParallelChunkedBuilder) buildReport(c *ChunkedWPP, wall time.Duration) BuildReport {
	r := BuildReport{
		Events:        c.Events,
		Chunks:        len(c.Chunks),
		ChunkSize:     c.ChunkSize,
		DistinctPaths: len(c.costs),
		Workers:       len(b.workerBusy),
		BytesIn:       c.RawTraceBytes(),
		BytesOut:      c.EncodedBytes(),
		WallTime:      wall,
		WorkerBusy:    make([]float64, len(b.workerBusy)),
	}
	if r.BytesOut > 0 {
		r.Ratio = float64(r.BytesIn) / float64(r.BytesOut)
	}
	if wall > 0 {
		for i, busy := range b.workerBusy {
			r.WorkerBusy[i] = float64(busy) / float64(wall)
		}
	}
	return r
}

// Report returns the build summary. Valid only after Finish.
func (b *ParallelChunkedBuilder) Report() BuildReport {
	if !b.finished {
		panic("wpp: Report before Finish")
	}
	return b.report
}
