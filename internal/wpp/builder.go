package wpp

import (
	"bufio"
	"io"
	"time"

	"repro/internal/bl"
	"repro/internal/trace"
	"repro/internal/wpp/codec"
)

// Builder is the unified front-end of WPP construction: a trace.Sink
// that compresses the event stream online and seals it into an
// Artifact. Both construction strategies implement it — the monolithic
// single-grammar builder and the parallel chunked pipeline — so callers
// select a strategy with BuildOptions instead of wiring to a concrete
// type.
type Builder interface {
	trace.BatchSink
	// Events reports the number of events consumed so far.
	Events() uint64
	// Finish seals the artifact. instructions is the total executed
	// instruction count. The builder cannot be used afterwards.
	Finish(instructions uint64) Artifact
	// Report returns the build summary; nil before Finish.
	Report() *BuildReport
}

// Artifact is a sealed whole program path, monolithic or chunked: the
// common analysis and persistence surface over *WPP and *ChunkedWPP.
// It is a superset of codec.Artifact, so any Artifact round-trips
// through the format registry. Callers needing strategy-specific API
// (Grammar, Chunks, positional queries) type-assert to the concrete
// type.
type Artifact interface {
	codec.Artifact
	// NumEvents is the trace length (number of acyclic path events).
	NumEvents() uint64
	// TotalInstructions is the executed IR instruction count.
	TotalInstructions() uint64
	// FuncTable lists the traced functions, indexed by function ID.
	FuncTable() []FuncInfo
	// DistinctPaths reports how many distinct (function, path) pairs
	// were executed.
	DistinctPaths() int
	// PathCost returns the instruction cost of one event's acyclic
	// path; unknown events cost 0.
	PathCost(trace.Event) uint64
	// Walk yields the full event trace in order, stopping early if
	// yield returns false.
	Walk(yield func(trace.Event) bool)
	// VerifyArtifact deep-checks the artifact beyond Verify's
	// structural pass (SEQUITUR invariants, path-ID bounds).
	VerifyArtifact() (VerifyReport, error)
}

// BuildOptions selects and tunes the construction strategy.
type BuildOptions struct {
	// ChunkSize selects the strategy: 0 builds one monolithic grammar;
	// positive seals a chunk grammar every ChunkSize events via the
	// parallel pipeline.
	ChunkSize uint64
	// Workers is the parallel pipeline's pool size (<=0 means
	// GOMAXPROCS). Ignored for monolithic builds, which are inherently
	// sequential. The artifact is byte-identical at every worker count.
	Workers int
	// Metrics installs observability hooks on the build; nil disables
	// instrumentation. The artifact is identical either way.
	Metrics *BuildMetrics
}

// New returns a Builder for a program whose functions have the given
// Ball–Larus numberings (indexed by function ID), constructing with the
// strategy opts selects.
func New(names []string, nums []*bl.Numbering, opts BuildOptions) Builder {
	if opts.ChunkSize == 0 {
		b := NewMonoBuilder(names, nums)
		b.SetMetrics(opts.Metrics)
		return &monoHandle{b: b}
	}
	return &chunkedHandle{
		b: NewParallelChunkedBuilder(names, nums, opts.ChunkSize, ParallelOptions{
			Workers: opts.Workers,
			Metrics: opts.Metrics,
		}),
	}
}

// LiveSnapshotter is implemented by builders that can produce a
// point-in-time queryable artifact mid-stream without sealing. The
// monolithic strategy supports it (one grammar, snapshot on demand); the
// parallel chunked strategy does not, because chunks are in flight on
// worker goroutines until Finish. Callers type-assert and fall back to
// query-after-seal when the assertion fails.
type LiveSnapshotter interface {
	SnapshotWPP() *WPP
}

// monoHandle adapts MonoBuilder to the Builder interface.
type monoHandle struct {
	b      *MonoBuilder
	start  time.Time
	report *BuildReport
}

func (h *monoHandle) Add(e trace.Event) {
	if h.start.IsZero() {
		h.start = time.Now()
	}
	h.b.Add(e)
}

func (h *monoHandle) AddBatch(es []trace.Event) {
	if h.start.IsZero() {
		h.start = time.Now()
	}
	h.b.AddBatch(es)
}

func (h *monoHandle) Events() uint64 { return h.b.Events() }

func (h *monoHandle) Finish(instructions uint64) Artifact {
	if h.start.IsZero() {
		h.start = time.Now()
	}
	w := h.b.Finish(instructions)
	r := BuildReport{
		Events:        w.Events,
		Chunks:        1,
		DistinctPaths: w.DistinctPaths(),
		Workers:       1,
		BytesIn:       w.rawTraceBytes(),
		BytesOut:      w.EncodedSize(),
		WallTime:      time.Since(h.start),
		WorkerBusy:    []float64{1},
	}
	if r.BytesOut > 0 {
		r.Ratio = float64(r.BytesIn) / float64(r.BytesOut)
	}
	h.report = &r
	return w
}

func (h *monoHandle) Report() *BuildReport { return h.report }

// SnapshotWPP implements LiveSnapshotter by delegating to the wrapped
// MonoBuilder.
func (h *monoHandle) SnapshotWPP() *WPP { return h.b.SnapshotWPP() }

// chunkedHandle adapts ParallelChunkedBuilder to the Builder interface.
type chunkedHandle struct {
	b        *ParallelChunkedBuilder
	finished bool
}

func (h *chunkedHandle) Add(e trace.Event) { h.b.Add(e) }

func (h *chunkedHandle) AddBatch(es []trace.Event) { h.b.AddBatch(es) }

func (h *chunkedHandle) Events() uint64 { return h.b.Events() }

func (h *chunkedHandle) Finish(instructions uint64) Artifact {
	c := h.b.Finish(instructions)
	h.finished = true
	return c
}

func (h *chunkedHandle) Report() *BuildReport {
	if !h.finished {
		return nil
	}
	r := h.b.Report()
	return &r
}

// NumEvents is the trace length; part of the Artifact interface (the
// Events field keeps its name for direct users).
func (w *WPP) NumEvents() uint64 { return w.Events }

// TotalInstructions is the executed instruction count; part of the
// Artifact interface.
func (w *WPP) TotalInstructions() uint64 { return w.Instructions }

// FuncTable lists the traced functions; part of the Artifact interface.
func (w *WPP) FuncTable() []FuncInfo { return w.Funcs }

// NumEvents is the trace length; part of the Artifact interface.
func (c *ChunkedWPP) NumEvents() uint64 { return c.Events }

// TotalInstructions is the executed instruction count; part of the
// Artifact interface.
func (c *ChunkedWPP) TotalInstructions() uint64 { return c.Instructions }

// FuncTable lists the traced functions; part of the Artifact interface.
func (c *ChunkedWPP) FuncTable() []FuncInfo { return c.Funcs }

// Interface conformance.
var (
	_ Builder         = (*monoHandle)(nil)
	_ Builder         = (*chunkedHandle)(nil)
	_ Artifact        = (*WPP)(nil)
	_ Artifact        = (*ChunkedWPP)(nil)
	_ LiveSnapshotter = (*monoHandle)(nil)
	_ LiveSnapshotter = (*MonoBuilder)(nil)
)

// The on-disk formats register with the codec at link time; any tool
// importing this package can DecodeAny both.
func init() {
	codec.Register(codec.Format{
		Magic: wppMagic,
		Name:  "monolithic WPP",
		Decode: func(br *bufio.Reader) (codec.Artifact, error) {
			w, err := decodeBody(br)
			if err != nil {
				return nil, err
			}
			return w, nil
		},
	})
	codec.Register(codec.Format{
		Magic: chunkedMagic,
		Name:  "chunked WPP",
		Decode: func(br *bufio.Reader) (codec.Artifact, error) {
			c, err := decodeChunkedBody(br)
			if err != nil {
				return nil, err
			}
			return c, nil
		},
	})
	codec.Register(codec.Format{
		Magic: wpp2Magic,
		Name:  "monolithic WPP v2",
		Decode: func(br *bufio.Reader) (codec.Artifact, error) {
			w, err := decodeBodyV2(br)
			if err != nil {
				return nil, err
			}
			return w, nil
		},
	})
	codec.Register(codec.Format{
		Magic: chunked2Magic,
		Name:  "chunked WPP v2",
		Decode: func(br *bufio.Reader) (codec.Artifact, error) {
			c, err := decodeChunkedBodyV2(br)
			if err != nil {
				return nil, err
			}
			return c, nil
		},
	})
}

// SetVersion selects an artifact's on-disk encoding (FormatV1 or
// FormatV2). The encoding is a property of serialization only: the
// in-memory artifact and everything derived from it are identical under
// either version.
func SetVersion(a Artifact, v uint8) {
	switch t := a.(type) {
	case *WPP:
		t.Version = v
	case *ChunkedWPP:
		t.Version = v
	}
}

// DecodeArtifact decodes any registered artifact format via the codec
// registry, returning the unified Artifact surface.
func DecodeArtifact(r io.Reader) (Artifact, error) {
	a, err := codec.DecodeAny(r)
	if err != nil {
		return nil, err
	}
	// Every format this package registers decodes to an Artifact.
	return a.(Artifact), nil
}

// DecodeArtifactNamed is DecodeArtifact, additionally reporting the
// registered name of the format that was read ("monolithic WPP v2"),
// for tools that display it.
func DecodeArtifactNamed(r io.Reader) (Artifact, string, error) {
	a, name, err := codec.DecodeAnyNamed(r)
	if err != nil {
		return nil, name, err
	}
	return a.(Artifact), name, nil
}
