package wpp

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/trace"
)

func queryFixture(t *testing.T) (*WPP, []trace.Event) {
	t.Helper()
	return buildWPP(t, loopProgram, 120)
}

func TestEventAtMatchesWalk(t *testing.T) {
	w, raw := queryFixture(t)
	for i, want := range raw {
		got, err := w.EventAt(uint64(i))
		if err != nil {
			t.Fatalf("EventAt(%d): %v", i, err)
		}
		if got != want {
			t.Fatalf("EventAt(%d) = %v, walk says %v", i, got, want)
		}
	}
}

func TestEventAtOutOfRange(t *testing.T) {
	w, raw := queryFixture(t)
	if _, err := w.EventAt(uint64(len(raw))); err == nil {
		t.Fatal("out-of-range position accepted")
	}
}

func TestSliceMatchesWalk(t *testing.T) {
	w, raw := queryFixture(t)
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		from := rng.Intn(len(raw))
		n := rng.Intn(len(raw) - from + 1)
		got, err := w.Slice(uint64(from), uint64(n), nil)
		if err != nil {
			t.Fatalf("Slice(%d,%d): %v", from, n, err)
		}
		want := raw[from : from+n]
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Slice(%d,%d) mismatch", from, n)
		}
	}
}

func TestSliceFullTrace(t *testing.T) {
	w, raw := queryFixture(t)
	got, err := w.Slice(0, w.Events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, raw) {
		t.Fatal("full-trace slice mismatch")
	}
}

func TestSliceBounds(t *testing.T) {
	w, _ := queryFixture(t)
	if _, err := w.Slice(w.Events, 1, nil); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
	if _, err := w.Slice(0, w.Events+1, nil); err == nil {
		t.Fatal("oversized slice accepted")
	}
	got, err := w.Slice(5, 0, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty slice: %v %v", got, err)
	}
}

func TestSliceAppendsToBuffer(t *testing.T) {
	w, raw := queryFixture(t)
	buf := []trace.Event{trace.MakeEvent(0, 0)}
	got, err := w.Slice(1, 3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || !reflect.DeepEqual(got[1:], raw[1:4]) {
		t.Fatal("Slice did not append")
	}
}
