package wpp

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// FuzzDecode asserts the .wpp decoder never panics on arbitrary bytes,
// and that valid artifacts survive a decode/verify round trip.
func FuzzDecode(f *testing.F) {
	// Seed with a real artifact.
	b := NewBuilder([]string{"f"}, nil)
	for i := 0; i < 200; i++ {
		b.Add(trace.MakeEvent(0, uint64(i%5)))
	}
	w := b.Finish(200)
	var buf bytes.Buffer
	if _, err := w.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("WPP1"))
	f.Add([]byte{})
	f.Add(buf.Bytes()[:buf.Len()/2]) // truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must be safe to verify and walk (Verify
		// rejects cyclic grammars before Walk could loop forever).
		if err := w.Verify(); err != nil {
			return
		}
		n := 0
		w.Walk(func(trace.Event) bool {
			n++
			return n < 100000
		})
	})
}
