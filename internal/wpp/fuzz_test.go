package wpp

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sequitur"
	"repro/internal/trace"
)

// checkLiveGrammar feeds events into a fresh live SEQUITUR grammar and
// holds it to the structural and digram-index invariants: Verify's
// chain/index cross-check plus bounded counts of duplicate and unindexed
// digrams (the documented seam slack).
func checkLiveGrammar(t *testing.T, events []trace.Event) {
	t.Helper()
	g := sequitur.New()
	for _, e := range events {
		g.Append(uint64(e) % sequitur.MaxTerminal)
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("live grammar verify: %v", err)
	}
	slack := 2 + len(events)/50
	if d := g.DigramDuplicates(); d > slack {
		t.Fatalf("live grammar has %d duplicate digrams over %d events, slack is %d", d, len(events), slack)
	}
	if m := g.UnindexedDigrams(); m > slack {
		t.Fatalf("live grammar has %d unindexed digrams over %d events, slack is %d", m, len(events), slack)
	}
}

// FuzzChunkedParity drives arbitrary event streams and chunk sizes
// through both the sequential and the parallel chunked builders and
// fails on any divergence: differing chunk structure, stats, encodings,
// expansions, or a Verify failure on either side.
func FuzzChunkedParity(f *testing.F) {
	// Seeds cover the degenerate geometries: chunkSize 1 (every event its
	// own chunk), a stream shorter than one chunk, an empty stream, and a
	// repetitive stream that compresses into deep rules.
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint64(1), uint8(2))
	f.Add([]byte{9, 9, 9}, uint64(100), uint8(4))
	f.Add([]byte{}, uint64(3), uint8(1))
	f.Add(bytes.Repeat([]byte{1, 2, 3, 4}, 40), uint64(7), uint8(8))

	f.Fuzz(func(t *testing.T, data []byte, chunkSize uint64, workers uint8) {
		if chunkSize == 0 {
			chunkSize = 1
		}
		if chunkSize > 1<<20 {
			chunkSize %= 1 << 20
		}
		nw := int(workers%8) + 1
		events := make([]trace.Event, len(data))
		for i, b := range data {
			events[i] = trace.MakeEvent(uint32(b%4), uint64(b))
		}

		sb := NewChunkedBuilder(nil, nil, chunkSize)
		pb := NewParallelChunkedBuilder(nil, nil, chunkSize, ParallelOptions{Workers: nw})
		for _, e := range events {
			sb.Add(e)
			pb.Add(e)
		}
		seq := sb.Finish(uint64(len(events)))
		par := pb.Finish(uint64(len(events)))

		if err := seq.Verify(); err != nil {
			t.Fatalf("sequential verify: %v", err)
		}
		if err := par.VerifyParallel(nw); err != nil {
			t.Fatalf("parallel verify: %v", err)
		}
		if !reflect.DeepEqual(par.Chunks, seq.Chunks) {
			t.Fatalf("chunks diverge (chunkSize=%d workers=%d)", chunkSize, nw)
		}
		if par.Stats() != seq.Stats() {
			t.Fatalf("stats diverge: %+v vs %+v", par.Stats(), seq.Stats())
		}
		var sbuf, pbuf bytes.Buffer
		if _, err := seq.Encode(&sbuf); err != nil {
			t.Fatal(err)
		}
		if _, err := par.Encode(&pbuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sbuf.Bytes(), pbuf.Bytes()) {
			t.Fatalf("encodings diverge (chunkSize=%d workers=%d)", chunkSize, nw)
		}
		exp := make([]trace.Event, 0, len(events))
		par.Walk(func(e trace.Event) bool { exp = append(exp, e); return true })
		if !reflect.DeepEqual(exp, events) {
			t.Fatalf("expansion diverges from input (chunkSize=%d)", chunkSize)
		}
		checkLiveGrammar(t, events)
	})
}

// FuzzDecodeChunked asserts the chunked decoder never panics on
// arbitrary bytes and that whatever decodes is safe to verify and walk.
func FuzzDecodeChunked(f *testing.F) {
	b := NewChunkedBuilder([]string{"f"}, nil, 16)
	for i := 0; i < 200; i++ {
		b.Add(trace.MakeEvent(0, uint64(i%5)))
	}
	c := b.Finish(200)
	var buf bytes.Buffer
	if _, err := c.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("WPC1"))
	f.Add([]byte{})
	f.Add(buf.Bytes()[:buf.Len()/2]) // truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeChunked(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := c.Verify(); err != nil {
			return
		}
		n := 0
		var walked []trace.Event
		c.Walk(func(e trace.Event) bool {
			walked = append(walked, e)
			n++
			return n < 100000
		})
		// Recompressing whatever the artifact expands to must yield a
		// grammar that satisfies the live invariants (decoded terminals can
		// exceed MaxTerminal, so checkLiveGrammar clamps them).
		checkLiveGrammar(t, walked)
	})
}

// FuzzDecodeAny asserts the codec-registry sniffer never panics on
// arbitrary bytes and that whichever format decoder it dispatches to
// yields an artifact that is safe to verify and walk. Seeds cover both
// registered formats, bare magics, the empty file, and truncations.
func FuzzDecodeAny(f *testing.F) {
	mb := NewMonoBuilder([]string{"f"}, nil)
	cb := NewChunkedBuilder([]string{"f"}, nil, 16)
	for i := 0; i < 200; i++ {
		e := trace.MakeEvent(0, uint64(i%5))
		mb.Add(e)
		cb.Add(e)
	}
	var mono, chunked bytes.Buffer
	if _, err := mb.Finish(200).Encode(&mono); err != nil {
		f.Fatal(err)
	}
	if _, err := cb.Finish(200).Encode(&chunked); err != nil {
		f.Fatal(err)
	}
	f.Add(mono.Bytes())
	f.Add(chunked.Bytes())
	f.Add([]byte("WPP1"))
	f.Add([]byte("WPC1"))
	f.Add([]byte("WPP9")) // unknown version
	f.Add([]byte{})
	f.Add(mono.Bytes()[:mono.Len()/2])       // truncated monolithic
	f.Add(chunked.Bytes()[:chunked.Len()/2]) // truncated chunked

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifact(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := a.Verify(); err != nil {
			return
		}
		n := 0
		var walked []trace.Event
		a.Walk(func(e trace.Event) bool {
			walked = append(walked, e)
			n++
			return n < 100000
		})
		checkLiveGrammar(t, walked)
	})
}

// FuzzDecode asserts the .wpp decoder never panics on arbitrary bytes,
// and that valid artifacts survive a decode/verify round trip.
func FuzzDecode(f *testing.F) {
	// Seed with a real artifact.
	b := NewMonoBuilder([]string{"f"}, nil)
	for i := 0; i < 200; i++ {
		b.Add(trace.MakeEvent(0, uint64(i%5)))
	}
	w := b.Finish(200)
	var buf bytes.Buffer
	if _, err := w.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("WPP1"))
	f.Add([]byte{})
	f.Add(buf.Bytes()[:buf.Len()/2]) // truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must be safe to verify and walk (Verify
		// rejects cyclic grammars before Walk could loop forever).
		if err := w.Verify(); err != nil {
			return
		}
		n := 0
		w.Walk(func(trace.Event) bool {
			n++
			return n < 100000
		})
	})
}
