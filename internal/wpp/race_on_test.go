//go:build race

package wpp

// raceEnabled reports whether the race detector is active; timing-bound
// guards skip themselves under it (every atomic op is intercepted, so
// relative overhead measurements are meaningless).
const raceEnabled = true
