// Package codec is the versioned artifact-format registry for whole
// program paths. Each on-disk format is identified by a 4-byte magic
// ("WPP1" monolithic, "WPC1" chunked, future versions as they appear)
// and registered once, at init time, by the package that owns its
// layout. DecodeAny sniffs the magic and dispatches to the registered
// decoder, so tools that accept "any artifact" (wppstats, wppdiff,
// wppbuild -verify) need no per-format knowledge and pick up new
// versions by linking them in.
package codec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Artifact is the decoded form every registered format produces: enough
// surface for generic tooling to validate and re-serialize it. Concrete
// types (wpp.WPP, wpp.ChunkedWPP) carry the full analysis API; callers
// needing it type-assert.
type Artifact interface {
	// Verify checks the artifact's internal structural consistency.
	Verify() error
	// Encode writes the artifact back in its canonical encoding and
	// reports the bytes written.
	Encode(io.Writer) (int64, error)
}

// Format describes one registered on-disk encoding.
type Format struct {
	// Magic is the 4-byte tag opening every artifact in this format.
	Magic [4]byte
	// Name is a short human-readable format name for diagnostics, e.g.
	// "monolithic WPP (WPP1)".
	Name string
	// Decode reads the body following the magic. The reader is
	// positioned immediately after the 4 magic bytes.
	Decode func(*bufio.Reader) (Artifact, error)
}

var (
	mu       sync.RWMutex
	registry = map[[4]byte]Format{}
)

// Register adds a format to the registry. It panics if the magic is
// already registered or the format has no decoder — both are wiring
// bugs, caught at init time.
func Register(f Format) {
	if f.Decode == nil {
		panic(fmt.Sprintf("codec: format %q registered without a decoder", f.Magic[:]))
	}
	mu.Lock()
	defer mu.Unlock()
	if prev, dup := registry[f.Magic]; dup {
		panic(fmt.Sprintf("codec: magic %q registered twice (%q, then %q)", f.Magic[:], prev.Name, f.Name))
	}
	registry[f.Magic] = f
}

// Lookup returns the format registered for the magic, if any.
func Lookup(magic [4]byte) (Format, bool) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := registry[magic]
	return f, ok
}

// Formats lists the registered formats, sorted by magic, for
// diagnostics and tooling that enumerates what it can read.
func Formats() []Format {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Format, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i].Magic[:]) < string(out[j].Magic[:]) })
	return out
}

// DecodeAny sniffs the 4-byte magic on r and decodes the artifact with
// the registered format. Unknown magics — including truncated or empty
// input — are errors naming the known formats.
func DecodeAny(r io.Reader) (Artifact, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	f, ok := Lookup(m)
	if !ok {
		return nil, fmt.Errorf("codec: bad magic %q (known formats: %s)", m[:], knownNames())
	}
	a, err := f.Decode(br)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// DecodeAnyNamed is DecodeAny, additionally reporting the name of the
// format that decoded the artifact — for tools that display what they
// read ("monolithic WPP v2 (WPP2)") without re-sniffing.
func DecodeAnyNamed(r io.Reader) (Artifact, string, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, "", fmt.Errorf("codec: reading magic: %w", err)
	}
	f, ok := Lookup(m)
	if !ok {
		return nil, "", fmt.Errorf("codec: bad magic %q (known formats: %s)", m[:], knownNames())
	}
	a, err := f.Decode(br)
	if err != nil {
		return nil, f.Name, err
	}
	return a, f.Name, nil
}

func knownNames() string {
	var s string
	for i, f := range Formats() {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%q %s", f.Magic[:], f.Name)
	}
	if s == "" {
		return "none registered"
	}
	return s
}
