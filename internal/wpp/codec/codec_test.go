package codec

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

// fakeArtifact is a minimal Artifact for registry tests.
type fakeArtifact struct{ payload byte }

func (f fakeArtifact) Verify() error { return nil }
func (f fakeArtifact) Encode(w io.Writer) (int64, error) {
	n, err := w.Write([]byte{'T', 'S', 'T', '1', f.payload})
	return int64(n), err
}

var testFormat = Format{
	Magic: [4]byte{'T', 'S', 'T', '1'},
	Name:  "test format",
	Decode: func(br *bufio.Reader) (Artifact, error) {
		b, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		return fakeArtifact{payload: b}, nil
	},
}

func init() { Register(testFormat) }

func TestRegisterTwicePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		if !strings.Contains(r.(string), "registered twice") {
			t.Fatalf("panic message %q lacks duplicate diagnosis", r)
		}
	}()
	Register(testFormat)
}

func TestRegisterWithoutDecoderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with nil Decode did not panic")
		}
	}()
	Register(Format{Magic: [4]byte{'T', 'S', 'T', '2'}, Name: "no decoder"})
}

func TestLookup(t *testing.T) {
	f, ok := Lookup(testFormat.Magic)
	if !ok || f.Name != testFormat.Name {
		t.Fatalf("Lookup(%q) = %+v, %v", testFormat.Magic[:], f, ok)
	}
	if _, ok := Lookup([4]byte{'N', 'O', 'P', 'E'}); ok {
		t.Fatal("Lookup found an unregistered magic")
	}
}

func TestFormatsSortedByMagic(t *testing.T) {
	fs := Formats()
	if len(fs) == 0 {
		t.Fatal("no formats registered")
	}
	for i := 1; i < len(fs); i++ {
		if string(fs[i-1].Magic[:]) >= string(fs[i].Magic[:]) {
			t.Fatalf("Formats not sorted: %q before %q", fs[i-1].Magic[:], fs[i].Magic[:])
		}
	}
}

func TestDecodeAnyDispatches(t *testing.T) {
	a, err := DecodeAny(bytes.NewReader([]byte("TST1x")))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.(fakeArtifact).payload; got != 'x' {
		t.Fatalf("decoded payload %q, want %q", got, 'x')
	}
}

func TestDecodeAnyRejects(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty file", nil},
		{"truncated magic", []byte("TS")},
		{"unknown version", []byte("TST9rest")},
		{"unknown magic", []byte("XXXXrest")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecodeAny(bytes.NewReader(c.data)); err == nil {
				t.Fatalf("DecodeAny accepted %q", c.data)
			}
		})
	}
}

func TestDecodeAnyNamesKnownFormatsInError(t *testing.T) {
	_, err := DecodeAny(bytes.NewReader([]byte("XXXX")))
	if err == nil {
		t.Fatal("unknown magic accepted")
	}
	if !strings.Contains(err.Error(), "test format") {
		t.Fatalf("error %q does not name the known formats", err)
	}
}

func TestRoundTripThroughRegistry(t *testing.T) {
	var buf bytes.Buffer
	if _, err := (fakeArtifact{payload: 'z'}).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := DecodeAny(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if a.(fakeArtifact).payload != 'z' {
		t.Fatal("payload did not round-trip")
	}
}
