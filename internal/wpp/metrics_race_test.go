package wpp

// Race-detector stress: concurrent /metrics scrapes (WritePrometheus and
// Snapshot) while the parallel pipeline is building. Run with -race this
// pins the core obsv claim — every metric is readable at any moment from
// any goroutine without locks on the hot path — and checks the final
// totals are exact, not merely race-free.

import (
	"io"
	"sync"
	"testing"

	"repro/internal/obsv"
)

func TestMetricsScrapeDuringParallelBuild(t *testing.T) {
	reg := obsv.NewRegistry()
	met := NewBuildMetrics(reg)
	names := []string{"f0", "f1", "f2", "f3"}
	b := NewParallelChunkedBuilder(names, nil, 256, ParallelOptions{Workers: 4, Metrics: met})

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				snap := reg.Snapshot()
				if snap.Counters["wpp_events_ingested_total"] > events {
					t.Errorf("scraped %d events ingested, stream has only %d",
						snap.Counters["wpp_events_ingested_total"], events)
					return
				}
			}
		}()
	}

	stream := benchStream(events)
	for _, e := range stream {
		b.Add(e)
	}
	c := b.Finish(uint64(events))
	close(stop)
	scrapers.Wait()

	if err := c.Verify(); err != nil {
		t.Fatalf("artifact fails verification under concurrent scraping: %v", err)
	}
	if got := met.EventsIngested.Value(); got != events {
		t.Errorf("events ingested = %d, want %d", got, events)
	}
	if got := met.ChunksSealed.Value(); got != uint64(len(c.Chunks)) {
		t.Errorf("chunks sealed = %d, want %d", got, len(c.Chunks))
	}
	if got := met.Grammar.Terminals.Value(); got != events {
		t.Errorf("grammar terminals = %d, want %d (every event reaches a grammar)", got, events)
	}
	rep := b.Report()
	if rep.Events != events || rep.Chunks != len(c.Chunks) {
		t.Errorf("report events/chunks = %d/%d, want %d/%d", rep.Events, rep.Chunks, events, len(c.Chunks))
	}
	if rep.BytesIn <= 0 || rep.BytesOut <= 0 || rep.Ratio <= 0 {
		t.Errorf("report byte totals not positive: %+v", rep)
	}
}

const events = 50_000
