package wpp

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
)

const loopProgram = `
func weigh(x) {
    if x % 4 == 0 { return x / 2; }
    return 3 * x + 1;
}
func main(n) {
    var acc = 0;
    var i = 0;
    while i < n {
        acc = acc + weigh(i);
        if acc > 1000000 { acc = acc % 97; }
        i = i + 1;
    }
    return acc;
}`

// buildWPP runs src under path tracing and returns the WPP plus the raw
// event stream for cross-checking.
func buildWPP(t *testing.T, src string, args ...int64) (*WPP, []trace.Event) {
	t.Helper()
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var raw []trace.Event
	var b *MonoBuilder
	m, err := interp.New(p, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) {
		raw = append(raw, e)
		b.Add(e)
	})})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(p.Funcs))
	for i, f := range p.Funcs {
		names[i] = f.Name
	}
	b = NewMonoBuilder(names, m.Numberings())
	if _, err := m.Run("main", args...); err != nil {
		t.Fatal(err)
	}
	return b.Finish(m.Stats().Instructions), raw
}

func TestBuildAndWalk(t *testing.T) {
	w, raw := buildWPP(t, loopProgram, 200)
	if w.Events != uint64(len(raw)) {
		t.Fatalf("Events = %d, raw stream has %d", w.Events, len(raw))
	}
	var walked []trace.Event
	w.Walk(func(e trace.Event) bool {
		walked = append(walked, e)
		return true
	})
	if !reflect.DeepEqual(walked, raw) {
		t.Fatal("Walk does not reproduce the raw event stream")
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	w, _ := buildWPP(t, loopProgram, 50)
	count := 0
	w.Walk(func(trace.Event) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop yielded %d events", count)
	}
}

func TestPathCosts(t *testing.T) {
	w, raw := buildWPP(t, loopProgram, 100)
	if w.DistinctPaths() == 0 {
		t.Fatal("no distinct paths recorded")
	}
	var total uint64
	for _, e := range raw {
		c := w.PathCost(e)
		if c == 0 {
			t.Fatalf("event %v has no cost", e)
		}
		total += c
	}
	// Total path cost must equal total executed instructions: every
	// instruction is attributed to exactly one acyclic path.
	if total != w.Instructions {
		t.Fatalf("sum of path costs %d != executed instructions %d", total, w.Instructions)
	}
}

func TestStatsConsistency(t *testing.T) {
	w, raw := buildWPP(t, loopProgram, 300)
	st := w.Stats()
	if st.Events != uint64(len(raw)) {
		t.Fatalf("stats events %d, want %d", st.Events, len(raw))
	}
	if st.RawTraceBytes != trace.EncodedSize(raw) {
		t.Fatalf("RawTraceBytes = %d, direct encoding = %d", st.RawTraceBytes, trace.EncodedSize(raw))
	}
	if st.GrammarBytes <= 0 || st.EncodedBytes < st.GrammarBytes {
		t.Fatalf("suspicious sizes %+v", st)
	}
	if st.RHSSymbols >= len(raw) {
		t.Fatalf("grammar (%d symbols) did not compress %d events", st.RHSSymbols, len(raw))
	}
}

func TestCompressionOnLoopyTrace(t *testing.T) {
	w, raw := buildWPP(t, loopProgram, 2000)
	st := w.Stats()
	ratio := float64(st.RawTraceBytes) / float64(st.GrammarBytes)
	if ratio < 10 {
		t.Fatalf("WPP compression ratio %.1f too low (raw=%d grammar=%d events=%d)",
			ratio, st.RawTraceBytes, st.GrammarBytes, len(raw))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	w, raw := buildWPP(t, loopProgram, 150)
	var buf bytes.Buffer
	written, err := w.Encode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("Encode reported %d bytes, wrote %d", written, buf.Len())
	}
	if got := w.EncodedSize(); got != written {
		t.Fatalf("EncodedSize = %d, Encode wrote %d", got, written)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
	if back.Events != w.Events || back.Instructions != w.Instructions {
		t.Fatal("header fields lost in round trip")
	}
	if !reflect.DeepEqual(back.Funcs, w.Funcs) {
		t.Fatal("function table lost in round trip")
	}
	var walked []trace.Event
	back.Walk(func(e trace.Event) bool { walked = append(walked, e); return true })
	if !reflect.DeepEqual(walked, raw) {
		t.Fatal("decoded WPP expands differently")
	}
	for _, e := range raw {
		if back.PathCost(e) != w.PathCost(e) {
			t.Fatalf("cost of %v lost in round trip", e)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("XYZ"), []byte("WPP1"), []byte("WPP1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")} {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Fatalf("Decode(%q) succeeded", data)
		}
	}
}

func TestVerifyCatchesTruncatedEvents(t *testing.T) {
	w, _ := buildWPP(t, loopProgram, 50)
	w.Events++ // corrupt the header
	if err := w.Verify(); err == nil {
		t.Fatal("corrupted event count not detected")
	}
}

func TestBuilderWithoutNumberings(t *testing.T) {
	b := NewMonoBuilder([]string{"f"}, nil)
	for i := 0; i < 10; i++ {
		b.Add(trace.MakeEvent(0, uint64(i%3)))
	}
	w := b.Finish(123)
	if w.PathCost(trace.MakeEvent(0, 1)) != 1 {
		t.Fatal("default path cost should be 1")
	}
	if w.Events != 10 || w.Instructions != 123 {
		t.Fatalf("header fields wrong: %+v", w)
	}
}

func TestGrowthSampling(t *testing.T) {
	b := NewMonoBuilder([]string{"f"}, nil)
	var prevRules int
	for i := 0; i < 5000; i++ {
		b.Add(trace.MakeEvent(0, uint64(i%7)))
		if i == 100 {
			prevRules = b.GrammarStats().Rules
		}
	}
	st := b.GrammarStats()
	if st.Terminals != 5000 {
		t.Fatalf("terminals = %d", st.Terminals)
	}
	if prevRules == 0 || st.Rules < prevRules {
		t.Fatalf("rules shrank from %d to %d on periodic input", prevRules, st.Rules)
	}
	// Periodic input: grammar must stay tiny relative to the stream.
	if st.RHSSymbols > 200 {
		t.Fatalf("grammar blew up: %+v", st)
	}
}

func TestEmptyWPP(t *testing.T) {
	b := NewMonoBuilder(nil, nil)
	w := b.Finish(0)
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	count := 0
	w.Walk(func(trace.Event) bool { count++; return true })
	if count != 0 {
		t.Fatalf("empty WPP walked %d events", count)
	}
	var buf bytes.Buffer
	if _, err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Events != 0 {
		t.Fatal("empty round trip failed")
	}
}
