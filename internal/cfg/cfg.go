// Package cfg provides the control-flow-graph data model used throughout
// the whole-program-path pipeline.
//
// A Graph is a per-function directed graph of basic blocks with a single
// entry and a single exit. The package supplies the structural analyses the
// Ball–Larus numbering needs: depth-first orderings, dominators, back-edge
// detection, and a reducibility check. Graphs are built imperatively with
// NewBlock/AddEdge and then frozen by Finish, which computes predecessor
// lists and validates basic well-formedness.
package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// BlockID identifies a basic block within one Graph. IDs are dense,
// starting at 0, in creation order.
type BlockID int32

// None is the invalid block ID.
const None BlockID = -1

// Edge is a directed edge between two blocks of the same Graph.
type Edge struct {
	From, To BlockID
}

func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// Block is a basic block. Weight models the cost of executing the block
// once (for the WPP pipeline it is the number of IR instructions).
type Block struct {
	ID     BlockID
	Name   string
	Weight int
	Succs  []BlockID
	Preds  []BlockID
}

// Graph is a single-entry single-exit control-flow graph for one function.
type Graph struct {
	Name   string
	Entry  BlockID
	Exit   BlockID
	blocks []*Block
	frozen bool
}

// New returns an empty graph. Entry and Exit are unset (None) until
// SetEntry/SetExit are called.
func New(name string) *Graph {
	return &Graph{Name: name, Entry: None, Exit: None}
}

// NewBlock appends a block with the given name and returns it.
func (g *Graph) NewBlock(name string) *Block {
	if g.frozen {
		panic("cfg: NewBlock on frozen graph")
	}
	b := &Block{ID: BlockID(len(g.blocks)), Name: name}
	g.blocks = append(g.blocks, b)
	return b
}

// NumBlocks reports the number of blocks in the graph.
func (g *Graph) NumBlocks() int { return len(g.blocks) }

// Block returns the block with the given ID.
func (g *Graph) Block(id BlockID) *Block { return g.blocks[id] }

// Blocks returns the blocks in ID order. The slice is shared; callers must
// not mutate it.
func (g *Graph) Blocks() []*Block { return g.blocks }

// SetEntry marks the entry block.
func (g *Graph) SetEntry(id BlockID) { g.Entry = id }

// SetExit marks the exit block.
func (g *Graph) SetExit(id BlockID) { g.Exit = id }

// AddEdge appends a successor edge from -> to. Duplicate edges are
// rejected: the Ball–Larus numbering identifies runtime transitions by
// (from, to) pairs, so parallel edges would be ambiguous.
func (g *Graph) AddEdge(from, to BlockID) error {
	if g.frozen {
		panic("cfg: AddEdge on frozen graph")
	}
	fb := g.blocks[from]
	for _, s := range fb.Succs {
		if s == to {
			return fmt.Errorf("cfg: duplicate edge %d->%d in %s", from, to, g.Name)
		}
	}
	fb.Succs = append(fb.Succs, to)
	return nil
}

// Finish freezes the graph: computes predecessor lists and validates that
// the graph has an entry and exit, that the entry has no predecessors
// within the graph, and that every block is reachable from the entry and
// reaches the exit. It is an error to modify the graph afterwards.
func (g *Graph) Finish() error {
	if g.Entry == None || g.Exit == None {
		return fmt.Errorf("cfg: %s: entry/exit not set", g.Name)
	}
	for _, b := range g.blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range g.blocks {
		for _, s := range b.Succs {
			if int(s) < 0 || int(s) >= len(g.blocks) {
				return fmt.Errorf("cfg: %s: edge %d->%d out of range", g.Name, b.ID, s)
			}
			g.blocks[s].Preds = append(g.blocks[s].Preds, b.ID)
		}
	}
	if len(g.blocks[g.Exit].Succs) != 0 {
		return fmt.Errorf("cfg: %s: exit block %d has successors", g.Name, g.Exit)
	}
	// Reachability from entry.
	seen := make([]bool, len(g.blocks))
	var stack []BlockID
	stack = append(stack, g.Entry)
	seen[g.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	for _, b := range g.blocks {
		if !seen[b.ID] {
			return fmt.Errorf("cfg: %s: block %d (%s) unreachable from entry", g.Name, b.ID, b.Name)
		}
	}
	// Co-reachability: every block reaches exit.
	coseen := make([]bool, len(g.blocks))
	stack = stack[:0]
	stack = append(stack, g.Exit)
	coseen[g.Exit] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.blocks[b].Preds {
			if !coseen[p] {
				coseen[p] = true
				stack = append(stack, p)
			}
		}
	}
	for _, b := range g.blocks {
		if !coseen[b.ID] {
			return fmt.Errorf("cfg: %s: block %d (%s) does not reach exit", g.Name, b.ID, b.Name)
		}
	}
	g.frozen = true
	return nil
}

// ReversePostorder returns the blocks in reverse postorder of a
// depth-first traversal from the entry. Successors are visited in their
// stored order, so the result is deterministic.
func (g *Graph) ReversePostorder() []BlockID {
	order := make([]BlockID, 0, len(g.blocks))
	state := make([]int8, len(g.blocks)) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		b  BlockID
		si int
	}
	var stack []frame
	stack = append(stack, frame{g.Entry, 0})
	state[g.Entry] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.blocks[f.b].Succs
		if f.si < len(succs) {
			s := succs[f.si]
			f.si++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		state[f.b] = 2
		order = append(order, f.b)
		stack = stack[:len(stack)-1]
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Dominators computes the immediate-dominator tree using the iterative
// algorithm of Cooper, Harvey and Kennedy. The result maps each block to
// its immediate dominator; the entry maps to itself.
func (g *Graph) Dominators() []BlockID {
	rpo := g.ReversePostorder()
	rpoIndex := make([]int, len(g.blocks))
	for i, b := range rpo {
		rpoIndex[b] = i
	}
	idom := make([]BlockID, len(g.blocks))
	for i := range idom {
		idom[i] = None
	}
	idom[g.Entry] = g.Entry

	intersect := func(a, b BlockID) BlockID {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = idom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var newIdom BlockID = None
			for _, p := range g.blocks[b].Preds {
				if idom[p] == None {
					continue
				}
				if newIdom == None {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != None && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the given idom tree.
func Dominates(idom []BlockID, a, b BlockID) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == b || next == None {
			return false
		}
		b = next
	}
}

// BackEdges returns the back edges of the graph: edges u->h where h
// dominates u. If the graph contains a retreating edge that is not a back
// edge, the graph is irreducible and an error is returned naming the
// offending edge.
func (g *Graph) BackEdges() ([]Edge, error) {
	idom := g.Dominators()
	// Retreating edges: target is an ancestor on the DFS stack.
	var back []Edge
	state := make([]int8, len(g.blocks))
	type frame struct {
		b  BlockID
		si int
	}
	var stack []frame
	stack = append(stack, frame{g.Entry, 0})
	state[g.Entry] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.blocks[f.b].Succs
		if f.si < len(succs) {
			s := succs[f.si]
			f.si++
			switch state[s] {
			case 0:
				state[s] = 1
				stack = append(stack, frame{s, 0})
			case 1: // retreating
				if !Dominates(idom, s, f.b) {
					return nil, fmt.Errorf("cfg: %s: irreducible: retreating edge %d->%d whose target does not dominate its source", g.Name, f.b, s)
				}
				back = append(back, Edge{f.b, s})
			}
			continue
		}
		state[f.b] = 2
		stack = stack[:len(stack)-1]
	}
	sort.Slice(back, func(i, j int) bool {
		if back[i].From != back[j].From {
			return back[i].From < back[j].From
		}
		return back[i].To < back[j].To
	})
	return back, nil
}

// NumEdges reports the total number of edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, b := range g.blocks {
		n += len(b.Succs)
	}
	return n
}

// Dot renders the graph in Graphviz DOT syntax, for debugging.
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Name)
	for _, b := range g.blocks {
		shape := "box"
		if b.ID == g.Entry || b.ID == g.Exit {
			shape = "ellipse"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q shape=%s];\n", b.ID, fmt.Sprintf("%d:%s w=%d", b.ID, b.Name, b.Weight), shape)
	}
	for _, b := range g.blocks {
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", b.ID, s)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
