package cfg

import "sort"

// Loop is a natural loop: the target of one or more back edges (the
// header) plus every block that can reach a back-edge source without
// passing through the header. Back edges sharing a header are merged into
// one loop, the usual convention.
type Loop struct {
	Header    BlockID
	BackEdges []Edge
	// Blocks lists the loop's blocks in ascending ID order, header
	// included.
	Blocks []BlockID
	// Parent is the index (into the Loops result) of the innermost
	// enclosing loop, or -1 for a top-level loop.
	Parent int
	// Depth is the nesting depth; top-level loops have depth 1.
	Depth int
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b BlockID) bool {
	i := sort.Search(len(l.Blocks), func(i int) bool { return l.Blocks[i] >= b })
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// Loops computes the natural loops of a reducible graph, sorted by header
// ID. It returns an error for irreducible graphs (same condition as
// BackEdges).
func (g *Graph) Loops() ([]Loop, error) {
	back, err := g.BackEdges()
	if err != nil {
		return nil, err
	}
	byHeader := map[BlockID][]Edge{}
	for _, e := range back {
		byHeader[e.To] = append(byHeader[e.To], e)
	}
	headers := make([]BlockID, 0, len(byHeader))
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Slice(headers, func(i, j int) bool { return headers[i] < headers[j] })

	loops := make([]Loop, 0, len(headers))
	for _, h := range headers {
		in := map[BlockID]bool{h: true}
		var stack []BlockID
		for _, e := range byHeader[h] {
			if !in[e.From] {
				in[e.From] = true
				stack = append(stack, e.From)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Block(b).Preds {
				if !in[p] {
					in[p] = true
					stack = append(stack, p)
				}
			}
		}
		blocks := make([]BlockID, 0, len(in))
		for b := range in {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		loops = append(loops, Loop{Header: h, BackEdges: byHeader[h], Blocks: blocks, Parent: -1})
	}

	// Nesting: in a reducible graph, two natural loops are either
	// disjoint or one contains the other; the innermost enclosing loop of
	// L is the smallest other loop containing L's header.
	for i := range loops {
		best := -1
		for j := range loops {
			if i == j {
				continue
			}
			if loops[j].Contains(loops[i].Header) && loops[j].Header != loops[i].Header {
				if best == -1 || len(loops[j].Blocks) < len(loops[best].Blocks) {
					best = j
				}
			}
		}
		loops[i].Parent = best
	}
	for i := range loops {
		d := 1
		for p := loops[i].Parent; p != -1; p = loops[p].Parent {
			d++
		}
		loops[i].Depth = d
	}
	return loops, nil
}

// LoopDepths returns, for every block, the number of natural loops
// containing it (0 for straight-line code).
func (g *Graph) LoopDepths() ([]int, error) {
	loops, err := g.Loops()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.NumBlocks())
	for i := range loops {
		for _, b := range loops[i].Blocks {
			depth[b]++
		}
	}
	return depth, nil
}
