package cfg

import (
	"strings"
	"testing"
)

// buildDiamond returns the classic if-then-else diamond:
//
//	0 -> 1, 2; 1 -> 3; 2 -> 3
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	for i := 0; i < 4; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	g.SetEntry(0)
	g.SetExit(3)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

// buildLoop returns a simple while loop:
//
//	0(entry) -> 1(header); 1 -> 2(body), 3(exit); 2 -> 1
func buildLoop(t *testing.T) *Graph {
	t.Helper()
	g := New("loop")
	for i := 0; i < 4; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 1)
	g.SetEntry(0)
	g.SetExit(3)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

func mustEdge(t *testing.T, g *Graph, from, to BlockID) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatal(err)
	}
}

func TestFinishComputesPreds(t *testing.T) {
	g := buildDiamond(t)
	if got := g.Block(3).Preds; len(got) != 2 {
		t.Fatalf("block 3 preds = %v, want 2 entries", got)
	}
	if got := g.Block(0).Preds; len(got) != 0 {
		t.Fatalf("entry preds = %v, want none", got)
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	g := New("dup")
	g.NewBlock("a")
	g.NewBlock("b")
	mustEdge(t, g, 0, 1)
	if err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestFinishRejectsUnreachable(t *testing.T) {
	g := New("unreach")
	g.NewBlock("entry")
	g.NewBlock("island")
	g.NewBlock("exit")
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 2)
	g.SetEntry(0)
	g.SetExit(2)
	if err := g.Finish(); err == nil {
		t.Fatal("unreachable block accepted")
	}
}

func TestFinishRejectsNoExitPath(t *testing.T) {
	g := New("noexit")
	g.NewBlock("entry")
	g.NewBlock("sink")
	g.NewBlock("exit")
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 1) // self-loop that never leaves
	g.SetEntry(0)
	g.SetExit(2)
	if err := g.Finish(); err == nil {
		t.Fatal("block that cannot reach exit accepted")
	}
}

func TestFinishRejectsExitWithSuccessors(t *testing.T) {
	g := New("exitsucc")
	g.NewBlock("entry")
	g.NewBlock("exit")
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 0)
	g.SetEntry(0)
	g.SetExit(1)
	if err := g.Finish(); err == nil {
		t.Fatal("exit with successors accepted")
	}
}

func TestFinishRejectsMissingEntryExit(t *testing.T) {
	g := New("bare")
	g.NewBlock("a")
	if err := g.Finish(); err == nil {
		t.Fatal("missing entry/exit accepted")
	}
}

func TestReversePostorderDiamond(t *testing.T) {
	g := buildDiamond(t)
	rpo := g.ReversePostorder()
	if len(rpo) != 4 {
		t.Fatalf("rpo has %d blocks, want 4", len(rpo))
	}
	pos := make(map[BlockID]int)
	for i, b := range rpo {
		pos[b] = i
	}
	if pos[0] != 0 {
		t.Fatalf("entry not first in rpo: %v", rpo)
	}
	if pos[3] != 3 {
		t.Fatalf("exit not last in rpo of a DAG: %v", rpo)
	}
	if pos[1] > pos[3] || pos[2] > pos[3] {
		t.Fatalf("rpo violates topological order: %v", rpo)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := buildDiamond(t)
	idom := g.Dominators()
	want := []BlockID{0, 0, 0, 0}
	for b, w := range want {
		if idom[b] != w {
			t.Fatalf("idom[%d] = %d, want %d (full: %v)", b, idom[b], w, idom)
		}
	}
	if !Dominates(idom, 0, 3) {
		t.Fatal("entry must dominate exit")
	}
	if Dominates(idom, 1, 3) {
		t.Fatal("side of diamond must not dominate join")
	}
}

func TestDominatorsLoop(t *testing.T) {
	g := buildLoop(t)
	idom := g.Dominators()
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 1 {
		t.Fatalf("unexpected idoms %v", idom)
	}
}

func TestBackEdgesLoop(t *testing.T) {
	g := buildLoop(t)
	back, err := g.BackEdges()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != (Edge{2, 1}) {
		t.Fatalf("back edges = %v, want [2->1]", back)
	}
}

func TestBackEdgesSelfLoop(t *testing.T) {
	g := New("self")
	g.NewBlock("entry")
	g.NewBlock("loop")
	g.NewBlock("exit")
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 1)
	mustEdge(t, g, 1, 2)
	g.SetEntry(0)
	g.SetExit(2)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	back, err := g.BackEdges()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != (Edge{1, 1}) {
		t.Fatalf("back edges = %v, want [1->1]", back)
	}
}

func TestBackEdgesNestedLoops(t *testing.T) {
	// 0 -> 1; 1 -> 2; 2 -> 3; 3 -> 2 (inner), 3 -> 1? make reducible:
	// outer: 1 header, latch 4; inner: 2 header, latch 3.
	g := New("nested")
	for i := 0; i < 6; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 2) // inner back edge
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 4, 1) // outer back edge
	mustEdge(t, g, 4, 5)
	g.SetEntry(0)
	g.SetExit(5)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	back, err := g.BackEdges()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("back edges = %v, want 2", back)
	}
	want := map[Edge]bool{{3, 2}: true, {4, 1}: true}
	for _, e := range back {
		if !want[e] {
			t.Fatalf("unexpected back edge %v", e)
		}
	}
}

func TestIrreducibleDetected(t *testing.T) {
	// Classic irreducible: two blocks jumping into each other's "loop"
	// with two distinct entries.
	g := New("irr")
	for i := 0; i < 5; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 1)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 4)
	mustEdge(t, g, 4, 3)
	g.SetEntry(0)
	g.SetExit(3)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.BackEdges(); err == nil {
		t.Fatal("irreducible graph not detected")
	}
}

func TestEdgeAndDotRendering(t *testing.T) {
	g := buildDiamond(t)
	if s := (Edge{0, 1}).String(); s != "0->1" {
		t.Fatalf("Edge.String = %q", s)
	}
	dot := g.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "n0 -> n1") {
		t.Fatalf("unexpected dot output:\n%s", dot)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
}
