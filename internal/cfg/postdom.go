package cfg

// PostDominators computes the immediate-postdominator tree: the
// dominator computation on the reversed graph, rooted at the exit. The
// result maps each block to its immediate postdominator; the exit maps
// to itself. Every block postdominates itself, and the exit
// postdominates every block (Finish guarantees each block reaches the
// exit, so the tree is total).
//
// It mirrors Dominators: the Cooper–Harvey–Kennedy iterative algorithm
// over a reverse-graph reverse postorder.
func (g *Graph) PostDominators() []BlockID {
	rpo := g.reversePostorderFromExit()
	rpoIndex := make([]int, len(g.blocks))
	for i, b := range rpo {
		rpoIndex[b] = i
	}
	ipdom := make([]BlockID, len(g.blocks))
	for i := range ipdom {
		ipdom[i] = None
	}
	ipdom[g.Exit] = g.Exit

	intersect := func(a, b BlockID) BlockID {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = ipdom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Exit {
				continue
			}
			var newIpdom BlockID = None
			// The reversed graph's predecessors are the successors.
			for _, s := range g.blocks[b].Succs {
				if ipdom[s] == None {
					continue
				}
				if newIpdom == None {
					newIpdom = s
				} else {
					newIpdom = intersect(newIpdom, s)
				}
			}
			if newIpdom != None && ipdom[b] != newIpdom {
				ipdom[b] = newIpdom
				changed = true
			}
		}
	}
	return ipdom
}

// PostDominates reports whether a postdominates b under the given
// ipdom tree (every path from b to the exit passes through a).
func PostDominates(ipdom []BlockID, a, b BlockID) bool {
	for {
		if a == b {
			return true
		}
		next := ipdom[b]
		if next == b || next == None {
			return false
		}
		b = next
	}
}

// reversePostorderFromExit is the reverse postorder of a depth-first
// traversal of the reversed graph from the exit, following predecessor
// lists in stored order.
func (g *Graph) reversePostorderFromExit() []BlockID {
	order := make([]BlockID, 0, len(g.blocks))
	state := make([]int8, len(g.blocks))
	type frame struct {
		b  BlockID
		si int
	}
	var stack []frame
	stack = append(stack, frame{g.Exit, 0})
	state[g.Exit] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		preds := g.blocks[f.b].Preds
		if f.si < len(preds) {
			p := preds[f.si]
			f.si++
			if state[p] == 0 {
				state[p] = 1
				stack = append(stack, frame{p, 0})
			}
			continue
		}
		state[f.b] = 2
		order = append(order, f.b)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
