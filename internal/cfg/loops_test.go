package cfg

import "testing"

func TestLoopsNone(t *testing.T) {
	g := buildDiamond(t)
	loops, err := g.Loops()
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 0 {
		t.Fatalf("diamond has %d loops", len(loops))
	}
	depths, err := g.LoopDepths()
	if err != nil {
		t.Fatal(err)
	}
	for b, d := range depths {
		if d != 0 {
			t.Fatalf("block %d has depth %d", b, d)
		}
	}
}

func TestLoopsSimple(t *testing.T) {
	g := buildLoop(t) // 0 -> 1; 1 -> 2,3; 2 -> 1
	loops, err := g.Loops()
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 || l.Depth != 1 || l.Parent != -1 {
		t.Fatalf("loop %+v", l)
	}
	if len(l.Blocks) != 2 || !l.Contains(1) || !l.Contains(2) || l.Contains(0) || l.Contains(3) {
		t.Fatalf("loop blocks %v", l.Blocks)
	}
}

func TestLoopsNested(t *testing.T) {
	// 0 -> 1; 1 -> 2; 2 -> 3; 3 -> 2 (inner), 3 -> 4; 4 -> 1 (outer), 4 -> 5.
	g := New("nested")
	for i := 0; i < 6; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 2)
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 4, 1)
	mustEdge(t, g, 4, 5)
	g.SetEntry(0)
	g.SetExit(5)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	loops, err := g.Loops()
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 2 {
		t.Fatalf("%d loops, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1] // sorted by header: 1 then 2
	if outer.Header != 1 || inner.Header != 2 {
		t.Fatalf("headers %d, %d", outer.Header, inner.Header)
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths %d, %d", outer.Depth, inner.Depth)
	}
	if inner.Parent != 0 || outer.Parent != -1 {
		t.Fatalf("parents %d, %d", inner.Parent, outer.Parent)
	}
	depths, err := g.LoopDepths()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 2, 1, 0}
	for b, d := range want {
		if depths[b] != d {
			t.Fatalf("depths = %v, want %v", depths, want)
		}
	}
}

func TestLoopsSharedHeaderMerged(t *testing.T) {
	// Two back edges into the same header: one loop.
	g := New("shared")
	for i := 0; i < 5; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 1)
	mustEdge(t, g, 3, 1)
	mustEdge(t, g, 1, 4)
	g.SetEntry(0)
	g.SetExit(4)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	loops, err := g.Loops()
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1 (merged)", len(loops))
	}
	if len(loops[0].BackEdges) != 2 {
		t.Fatalf("merged loop has %d back edges", len(loops[0].BackEdges))
	}
	if len(loops[0].Blocks) != 3 {
		t.Fatalf("blocks %v", loops[0].Blocks)
	}
}

func TestLoopsIrreducibleRejected(t *testing.T) {
	g := New("irr")
	for i := 0; i < 5; i++ {
		g.NewBlock("b")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 1)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 4)
	mustEdge(t, g, 4, 3)
	g.SetEntry(0)
	g.SetExit(3)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Loops(); err == nil {
		t.Fatal("irreducible accepted")
	}
}

func TestLoopsSelfLoop(t *testing.T) {
	g := New("self")
	g.NewBlock("entry")
	g.NewBlock("loop")
	g.NewBlock("exit")
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 1)
	mustEdge(t, g, 1, 2)
	g.SetEntry(0)
	g.SetExit(2)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	loops, err := g.Loops()
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 || len(loops[0].Blocks) != 1 || loops[0].Header != 1 {
		t.Fatalf("self loop: %+v", loops)
	}
}
