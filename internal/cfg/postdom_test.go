package cfg

import "testing"

// buildGraph freezes a graph from an edge list.
func buildGraph(t *testing.T, n int, entry, exit BlockID, edges [][2]BlockID) *Graph {
	t.Helper()
	g := New("t")
	for i := 0; i < n; i++ {
		g.NewBlock("b")
	}
	for _, e := range edges {
		mustEdge(t, g, e[0], e[1])
	}
	g.SetEntry(entry)
	g.SetExit(exit)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPostDominators(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		entry BlockID
		exit  BlockID
		edges [][2]BlockID
		want  []BlockID // expected ipdom per block
	}{
		{
			name: "straight line",
			n:    3, entry: 0, exit: 2,
			edges: [][2]BlockID{{0, 1}, {1, 2}},
			want:  []BlockID{1, 2, 2},
		},
		{
			name: "diamond joins at merge",
			n:    4, entry: 0, exit: 3,
			edges: [][2]BlockID{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
			want:  []BlockID{3, 3, 3, 3},
		},
		{
			name: "while loop",
			// 0(entry) -> 1(header); 1 -> 2(body), 3(exit); 2 -> 1
			n: 4, entry: 0, exit: 3,
			edges: [][2]BlockID{{0, 1}, {1, 2}, {1, 3}, {2, 1}},
			want:  []BlockID{1, 3, 1, 3},
		},
		{
			name: "nested diamond",
			// 0 -> 1,5; 1 -> 2,3; 2 -> 4; 3 -> 4; 4 -> 6; 5 -> 6
			n: 7, entry: 0, exit: 6,
			edges: [][2]BlockID{{0, 1}, {0, 5}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 6}, {5, 6}},
			want:  []BlockID{6, 4, 4, 4, 6, 6, 6},
		},
		{
			name: "early exit skips the merge",
			// 0 -> 1,3; 1 -> 2; 2 -> 3; only 3 postdominates 0
			n: 4, entry: 0, exit: 3,
			edges: [][2]BlockID{{0, 1}, {0, 3}, {1, 2}, {2, 3}},
			want:  []BlockID{3, 2, 3, 3},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := buildGraph(t, tt.n, tt.entry, tt.exit, tt.edges)
			got := g.PostDominators()
			for b, want := range tt.want {
				if got[b] != want {
					t.Errorf("ipdom[%d] = %d, want %d (full: %v)", b, got[b], want, got)
				}
			}
		})
	}
}

// TestPostDominatorsMirrorsDominators checks the duality on the
// symmetric diamond: reversing the graph swaps the roles of the two
// trees.
func TestPostDominatorsMirrorsDominators(t *testing.T) {
	g := buildDiamond(t)
	idom, ipdom := g.Dominators(), g.PostDominators()
	if idom[3] != 0 || ipdom[0] != 3 {
		t.Fatalf("diamond: idom[exit]=%d ipdom[entry]=%d, want 0 and 3", idom[3], ipdom[0])
	}
	for b := BlockID(0); int(b) < g.NumBlocks(); b++ {
		if !PostDominates(ipdom, g.Exit, b) {
			t.Errorf("exit does not postdominate %d", b)
		}
		if !PostDominates(ipdom, b, b) {
			t.Errorf("%d does not postdominate itself", b)
		}
	}
}

func TestPostDominatesNegative(t *testing.T) {
	g := buildDiamond(t)
	ipdom := g.PostDominators()
	if PostDominates(ipdom, 1, 2) {
		t.Error("sibling arm 1 postdominates 2")
	}
	if PostDominates(ipdom, 1, 0) {
		t.Error("arm 1 postdominates the entry")
	}
	if PostDominates(ipdom, 0, 3) {
		t.Error("entry postdominates the exit")
	}
}
