package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/mmapio"
	iwpp "repro/internal/wpp"
)

// ManifestSchema versions the manifest JSON; decoders reject anything
// else.
const ManifestSchema = "wpp-store/v1"

// Manifest describes how one stored artifact is assembled from CAS
// objects. The artifact's identity is the SHA-256 of its complete
// encoded byte stream — the same digest the serve daemon publishes when
// it seals a session — and the concatenation of the listed parts, in
// order, is exactly that stream.
type Manifest struct {
	// Schema is always ManifestSchema.
	Schema string `json:"schema"`
	// Artifact is the hex hash of the full encoded artifact.
	Artifact string `json:"artifact"`
	// Format is the 4-byte artifact magic ("WPP1", "WPC2", ...).
	Format string `json:"format"`
	// Kind is "blob" (one part: the whole encoding) or "chunked" (the
	// header object followed by one object per chunk grammar).
	Kind string `json:"kind"`
	// Size is the total encoded size in bytes.
	Size int64 `json:"size"`
	// Parts lists the object hashes whose concatenation is the
	// artifact.
	Parts []string `json:"parts"`
}

// DecodeManifest parses and validates manifest JSON. Every hash must
// parse, the schema must match, and a blob manifest must have exactly
// one part.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("store: manifest: unknown schema %q", m.Schema)
	}
	if _, err := ParseHash(m.Artifact); err != nil {
		return nil, fmt.Errorf("store: manifest artifact: %w", err)
	}
	if m.Size < 0 {
		return nil, fmt.Errorf("store: manifest: negative size %d", m.Size)
	}
	switch m.Kind {
	case "blob":
		if len(m.Parts) != 1 {
			return nil, fmt.Errorf("store: blob manifest with %d parts", len(m.Parts))
		}
	case "chunked":
		if len(m.Parts) == 0 {
			return nil, fmt.Errorf("store: chunked manifest with no parts")
		}
	default:
		return nil, fmt.Errorf("store: manifest: unknown kind %q", m.Kind)
	}
	if len(m.Format) != 4 {
		return nil, fmt.Errorf("store: manifest: bad format %q", m.Format)
	}
	for _, p := range m.Parts {
		if _, err := ParseHash(p); err != nil {
			return nil, fmt.Errorf("store: manifest part: %w", err)
		}
	}
	return &m, nil
}

// partHashes parses Parts; the manifest must already be validated.
func (m *Manifest) partHashes() ([]Hash, error) {
	hs := make([]Hash, len(m.Parts))
	for i, p := range m.Parts {
		h, err := ParseHash(p)
		if err != nil {
			return nil, err
		}
		hs[i] = h
	}
	return hs, nil
}

func (s *Store) manifestPath(h Hash) string {
	return filepath.Join(s.dir, "artifacts", h.String()+".json")
}

// Manifest loads the manifest for artifact h; ErrNotFound if the
// artifact is not stored.
func (s *Store) Manifest(h Hash) (*Manifest, error) {
	data, err := os.ReadFile(s.manifestPath(h))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: artifact %s: %w", h, ErrNotFound)
		}
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	return DecodeManifest(data)
}

// PutArtifact encodes a and stores it: chunk-by-chunk for chunked
// artifacts (identical chunk grammars dedup against everything already
// in the CAS), whole for monolithic ones. The returned hash is the
// SHA-256 of the complete encoded byte stream. Storing an artifact that
// is already present rewrites nothing.
func (s *Store) PutArtifact(a iwpp.Artifact) (Hash, *Manifest, error) {
	var buf bytes.Buffer
	if _, err := a.Encode(&buf); err != nil {
		return Hash{}, nil, fmt.Errorf("store: encoding artifact: %w", err)
	}
	return s.putArtifact(a, buf.Bytes())
}

// PutArtifactBytes stores an already-encoded artifact. The bytes are
// decoded to recover chunk structure (so chunked artifacts still dedup
// per chunk), then stored exactly as given.
func (s *Store) PutArtifactBytes(enc []byte) (Hash, *Manifest, error) {
	a, err := iwpp.DecodeArtifact(bytes.NewReader(enc))
	if err != nil {
		return Hash{}, nil, fmt.Errorf("store: decoding artifact: %w", err)
	}
	return s.putArtifact(a, enc)
}

// PutArtifactEncoded stores an artifact whose encoding the caller
// already holds, skipping the re-encode of PutArtifact and the decode
// of PutArtifactBytes. enc must be a's Encode output; for chunked
// artifacts the split is verified against enc before anything is
// recorded.
func (s *Store) PutArtifactEncoded(a iwpp.Artifact, enc []byte) (Hash, *Manifest, error) {
	return s.putArtifact(a, enc)
}

func (s *Store) putArtifact(a iwpp.Artifact, enc []byte) (Hash, *Manifest, error) {
	if len(enc) < 4 {
		return Hash{}, nil, fmt.Errorf("store: artifact too short (%d bytes)", len(enc))
	}
	h := HashOf(enc)
	if m, err := s.Manifest(h); err == nil {
		// Already stored. Still a put of every part as far as dedup
		// accounting goes — the caller produced the same bytes again.
		s.met.ObjectsDeduped.Add(uint64(len(m.Parts)))
		s.met.BytesDeduped.Add(uint64(m.Size))
		return h, m, nil
	}
	m := &Manifest{
		Schema:   ManifestSchema,
		Artifact: h.String(),
		Format:   string(enc[:4]),
		Size:     int64(len(enc)),
	}
	if c, ok := a.(*iwpp.ChunkedWPP); ok {
		header, chunks, err := c.EncodeParts()
		if err != nil {
			return Hash{}, nil, fmt.Errorf("store: splitting artifact: %w", err)
		}
		// The parts must reassemble the exact bytes being addressed;
		// verify before anything is recorded so a split bug can never
		// persist a manifest that lies about its artifact.
		total := len(header)
		for _, ch := range chunks {
			total += len(ch)
		}
		if total != len(enc) {
			return Hash{}, nil, fmt.Errorf("store: parts sum to %d bytes, artifact is %d", total, len(enc))
		}
		m.Kind = "chunked"
		m.Parts = make([]string, 0, 1+len(chunks))
		for _, part := range append([][]byte{header}, chunks...) {
			ph, _, err := s.PutObject(part)
			if err != nil {
				return Hash{}, nil, err
			}
			m.Parts = append(m.Parts, ph.String())
		}
	} else {
		m.Kind = "blob"
		ph, _, err := s.PutObject(enc)
		if err != nil {
			return Hash{}, nil, err
		}
		m.Parts = []string{ph.String()}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Hash{}, nil, fmt.Errorf("store: encoding manifest: %w", err)
	}
	if err := writeFileAtomic(s.manifestPath(h), append(data, '\n')); err != nil {
		return Hash{}, nil, fmt.Errorf("store: writing manifest: %w", err)
	}
	s.met.ArtifactsStored.Inc()
	return h, m, nil
}

// GetArtifact reassembles the full encoded bytes of artifact h from its
// parts, verifying each object and the whole-artifact hash. The result
// is byte-identical to what was stored.
func (s *Store) GetArtifact(h Hash) ([]byte, error) {
	m, err := s.Manifest(h)
	if err != nil {
		return nil, err
	}
	parts, err := m.partHashes()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, m.Size)
	for _, ph := range parts {
		data, err := s.GetObject(ph)
		if err != nil {
			return nil, err
		}
		buf = append(buf, data...)
	}
	if got := HashOf(buf); got != h {
		s.met.CorruptObjects.Inc()
		return nil, &CorruptObjectError{Path: s.manifestPath(h), Want: h, Got: got}
	}
	return buf, nil
}

// ArtifactReader streams artifact h one part at a time — for a chunked
// artifact, one chunk grammar resident at once rather than the whole
// encoding. Parts are memory-mapped where the platform supports it and
// unmapped as the read position crosses into the next part. Each object
// is hash-verified as it is loaded, and the whole-artifact digest is
// checked before EOF is reported, so a reader that drains to EOF has
// read exactly the stored bytes. The returned size is the total byte
// count.
func (s *Store) ArtifactReader(h Hash) (io.ReadCloser, int64, error) {
	m, err := s.Manifest(h)
	if err != nil {
		return nil, 0, err
	}
	parts, err := m.partHashes()
	if err != nil {
		return nil, 0, err
	}
	return &artifactReader{s: s, want: h, path: s.manifestPath(h), parts: parts, digest: sha256.New()}, m.Size, nil
}

type artifactReader struct {
	s      *Store
	want   Hash
	path   string
	parts  []Hash
	idx    int
	cur    *mmapio.Data // current part's mapping; nil between parts
	off    int          // read offset into cur
	digest hash.Hash    // running whole-artifact digest over bytes handed out
}

func (r *artifactReader) Read(p []byte) (int, error) {
	for r.cur == nil || r.off >= r.cur.Len() {
		if r.cur != nil {
			if err := r.cur.Close(); err != nil {
				return 0, err
			}
			r.cur, r.off = nil, 0
		}
		if r.idx >= len(r.parts) {
			var got Hash
			r.digest.Sum(got[:0])
			if got != r.want {
				r.s.met.CorruptObjects.Inc()
				return 0, &CorruptObjectError{Path: r.path, Want: r.want, Got: got}
			}
			return 0, io.EOF
		}
		d, err := r.s.mapObject(r.parts[r.idx])
		if err != nil {
			return 0, err
		}
		r.idx++
		r.cur = d
	}
	n := copy(p, r.cur.Bytes()[r.off:])
	r.digest.Write(r.cur.Bytes()[r.off : r.off+n])
	r.off += n
	return n, nil
}

func (r *artifactReader) Close() error {
	if r.cur != nil {
		err := r.cur.Close()
		r.cur = nil
		return err
	}
	return nil
}

// FindArtifact resolves a hex prefix (at least 4 digits) to the unique
// stored artifact hash it abbreviates. Ambiguous prefixes are an error;
// unknown ones report ErrNotFound.
func (s *Store) FindArtifact(prefix string) (Hash, error) {
	if len(prefix) < 4 {
		return Hash{}, fmt.Errorf("store: hash prefix %q too short (need >= 4 hex digits)", prefix)
	}
	all, err := s.Artifacts()
	if err != nil {
		return Hash{}, err
	}
	var found []Hash
	for _, h := range all {
		if strings.HasPrefix(h.String(), strings.ToLower(prefix)) {
			found = append(found, h)
		}
	}
	switch len(found) {
	case 0:
		return Hash{}, fmt.Errorf("store: artifact %s*: %w", prefix, ErrNotFound)
	case 1:
		return found[0], nil
	}
	return Hash{}, fmt.Errorf("store: hash prefix %q is ambiguous (%d matches)", prefix, len(found))
}

// Artifacts lists every stored artifact hash, sorted.
func (s *Store) Artifacts() ([]Hash, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "artifacts"))
	if err != nil {
		return nil, fmt.Errorf("store: listing artifacts: %w", err)
	}
	var hs []Hash
	for _, ent := range entries {
		name, ok := strings.CutSuffix(ent.Name(), ".json")
		if !ok {
			continue
		}
		h, err := ParseHash(name)
		if err != nil {
			continue // foreign file; not ours to interpret
		}
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return bytes.Compare(hs[i][:], hs[j][:]) < 0 })
	return hs, nil
}
