package store

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestIsRef(t *testing.T) {
	cases := map[string]bool{
		"@ab12cd34":      true,
		"@":              false,
		"expr@small":     true,
		"expr@medium":    true,
		"expr@large":     true,
		"expr@huge":      false,
		"nosuch@small":   false,
		"out.wpp":        false,
		"dir/expr@small": false,
		"expr":           false,
	}
	for arg, want := range cases {
		if got := IsRef(arg); got != want {
			t.Errorf("IsRef(%q) = %v, want %v", arg, got, want)
		}
	}
}

func TestOpenInputFileAndRefs(t *testing.T) {
	s, _ := newTestStore(t)
	golden := filepath.Join("..", "experiments", "testdata", "golden", goldenName(t))
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := s.PutArtifactBytes(data)
	if err != nil {
		t.Fatal(err)
	}

	// Plain file path: passes through to the filesystem.
	r, err := OpenInput(golden, s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("file path read diverged")
	}

	// Hash ref: resolves through the store.
	r, err = OpenInput("@"+h.String()[:10], s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(r)
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("hash ref read diverged")
	}

	// Ref without a store directory: a directed error, not a file open.
	if _, err := OpenInput("@"+h.String()[:10], ""); err == nil {
		t.Fatal("ref resolved with no store configured")
	}

	// Workload ref: lazily builds on first use, hits on the second.
	r, err = OpenInput("queens@small", s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	built, _ := io.ReadAll(r)
	r.Close()
	if len(built) == 0 {
		t.Fatal("workload ref built an empty artifact")
	}
	data2, h2, err := s.ReadRef("queens@small")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(built, data2) {
		t.Fatal("second workload-ref read diverged")
	}
	if h2 == (Hash{}) {
		t.Fatal("zero hash from ReadRef")
	}
}

func TestDirFromFlag(t *testing.T) {
	t.Setenv(EnvDir, "/env/dir")
	if got := DirFromFlag(""); got != "/env/dir" {
		t.Fatalf("env fallback: %q", got)
	}
	if got := DirFromFlag("/flag/dir"); got != "/flag/dir" {
		t.Fatalf("flag should win: %q", got)
	}
}
