// Package store is the content-addressed artifact registry: a SHA-256
// keyed CAS holding whole-program-path artifacts and the individual
// chunk grammars they are made of, plus a build index mapping build
// tuples (workload, args, scale, chunk geometry, format) to artifact
// hashes.
//
// Two object kinds share one object namespace:
//
//   - blob objects — the complete encoded bytes of a monolithic
//     artifact (WPP1/WPP2), stored whole;
//   - chunk objects — one framed sequitur snapshot each, produced by
//     ChunkedWPP.EncodeParts, plus the artifact header as its own
//     object.
//
// Because a chunked artifact's encoding is exactly header || chunk_0 ||
// ... || chunk_{n-1}, the store records a manifest listing the part
// hashes in order and reassembles the artifact byte-identically on
// read. Identical chunk grammars from repeated runs of the same program
// hash to the same object and are stored once.
//
// Layout under the store directory:
//
//	objects/<2-hex>/<62-hex>   content-addressed objects (sha256)
//	artifacts/<64-hex>.json    artifact manifests, named by artifact hash
//	index/<64-hex>.json        build-key index entries, named by key hash
//
// All writes are atomic (temp file + rename), so a crashed writer never
// leaves a partial object visible; readers verify hashes on every read
// and report mismatches as *CorruptObjectError rather than returning
// bad bytes.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Hash is a SHA-256 digest: the identity of an object, an artifact, or
// a build key.
type Hash [sha256.Size]byte

// HashOf digests data.
func HashOf(data []byte) Hash { return sha256.Sum256(data) }

// String renders the hash as 64 lowercase hex digits.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash parses a full 64-digit hex hash.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if len(s) != 2*sha256.Size {
		return h, fmt.Errorf("store: hash %q: want %d hex digits, have %d", s, 2*sha256.Size, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("store: hash %q: %w", s, err)
	}
	copy(h[:], b)
	return h, nil
}

// ErrNotFound reports a missing object, artifact, or build-index entry.
var ErrNotFound = errors.New("store: not found")

// CorruptObjectError reports that bytes read back from the store do not
// hash to the name they were stored under. Readers return it instead of
// the corrupt bytes; it is never silently repaired.
type CorruptObjectError struct {
	// Path is the file whose contents failed verification.
	Path string
	// Want is the hash the content was addressed by; Got is the hash of
	// the bytes actually on disk.
	Want, Got Hash
}

func (e *CorruptObjectError) Error() string {
	return fmt.Sprintf("store: corrupt object %s: content hashes to %s", e.Path, e.Got)
}

// Store is one on-disk content-addressed store. It is safe for
// concurrent use by multiple goroutines; concurrent Resolve calls for
// the same build key collapse into a single build.
type Store struct {
	dir string
	met Metrics

	// flight collapses concurrent Resolve calls per build-key ID.
	flightMu sync.Mutex
	flight   map[string]*flightCall
}

// Open opens (creating if needed) the store rooted at dir. met may be
// nil to disable instrumentation.
func Open(dir string, met *Metrics) (*Store, error) {
	for _, sub := range []string{"objects", "artifacts", "index"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	return &Store{dir: dir, met: met.orNoop(), flight: map[string]*flightCall{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectPath(h Hash) string {
	hx := h.String()
	return filepath.Join(s.dir, "objects", hx[:2], hx[2:])
}

// PutObject stores data under its hash. The second return is true when
// the object was newly written, false when an object of that hash was
// already present (the dedup case — nothing is written).
func (s *Store) PutObject(data []byte) (Hash, bool, error) {
	h := HashOf(data)
	p := s.objectPath(h)
	if fi, err := os.Stat(p); err == nil && fi.Size() == int64(len(data)) {
		s.met.ObjectsDeduped.Inc()
		s.met.BytesDeduped.Add(uint64(len(data)))
		return h, false, nil
	}
	if err := writeFileAtomic(p, data); err != nil {
		return h, false, fmt.Errorf("store: put object: %w", err)
	}
	s.met.ObjectsWritten.Inc()
	s.met.BytesWritten.Add(uint64(len(data)))
	return h, true, nil
}

// GetObject reads the object named h, verifying its content hash. A
// missing object reports ErrNotFound; a hash mismatch reports
// *CorruptObjectError.
func (s *Store) GetObject(h Hash) ([]byte, error) {
	p := s.objectPath(h)
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: object %s: %w", h, ErrNotFound)
		}
		return nil, fmt.Errorf("store: get object: %w", err)
	}
	if got := HashOf(data); got != h {
		s.met.CorruptObjects.Inc()
		return nil, &CorruptObjectError{Path: p, Want: h, Got: got}
	}
	return data, nil
}

// HasObject reports whether an object named h is present (without
// verifying its content).
func (s *Store) HasObject(h Hash) bool {
	_, err := os.Stat(s.objectPath(h))
	return err == nil
}

// writeFileAtomic writes data to path via a temp file in the same
// directory and an atomic rename, creating parent directories as
// needed. Concurrent writers of the same path race benignly: both write
// identical content (content addressing), and rename is atomic.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
