package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/workloads"
	iwpp "repro/internal/wpp"
)

// BuildKey identifies one build: what ran and with which compression
// geometry. Two keys with equal IDs always produce byte-identical
// artifacts — the pipeline is deterministic in everything a key pins
// down (the artifact does not depend on worker count, but workers are
// part of the key so a recorded build describes exactly how it was
// made).
type BuildKey struct {
	// Workload names a bundled workload; Program is the hex SHA-256 of
	// WL source for ad-hoc programs. Exactly one should be set.
	Workload string `json:"workload,omitempty"`
	Program  string `json:"program,omitempty"`
	// Args are explicit main() arguments; Scale ("small", "medium",
	// "large") is the workload shorthand. Args win when both are set.
	Args  []int64 `json:"args,omitempty"`
	Scale string  `json:"scale,omitempty"`
	// Chunk and Workers are the build geometry (0 chunk = monolithic);
	// Format is "wpp1" or "wpp2" (the on-disk encoding version).
	Chunk   uint64 `json:"chunk"`
	Workers int    `json:"workers"`
	Format  string `json:"format"`
}

// normalize fills defaults so equivalent keys hash equally.
func (k BuildKey) normalize() BuildKey {
	if k.Format == "" {
		k.Format = "wpp1"
	}
	if k.Scale == "" && k.Workload != "" && len(k.Args) == 0 {
		k.Scale = "small"
	}
	return k
}

// ID renders the key canonically; the index is keyed by HashOf(ID).
func (k BuildKey) ID() string {
	args := make([]string, len(k.Args))
	for i, a := range k.Args {
		args[i] = strconv.FormatInt(a, 10)
	}
	return strings.Join([]string{
		"workload=" + k.Workload,
		"program=" + k.Program,
		"args=" + strings.Join(args, ","),
		"scale=" + k.Scale,
		"chunk=" + strconv.FormatUint(k.Chunk, 10),
		"workers=" + strconv.Itoa(k.Workers),
		"format=" + k.Format,
	}, "|")
}

func (k BuildKey) validate() error {
	if (k.Workload == "") == (k.Program == "") {
		return fmt.Errorf("store: build key must set exactly one of workload and program (have %q, %q)", k.Workload, k.Program)
	}
	switch k.Format {
	case "wpp1", "wpp2":
	default:
		return fmt.Errorf("store: build key: unknown format %q (want wpp1 or wpp2)", k.Format)
	}
	if k.Scale != "" {
		if _, err := scaleArgFor(workloads.Workload{}, k.Scale); err != nil {
			return err
		}
	}
	return nil
}

// indexEntry is the on-disk build-index record.
type indexEntry struct {
	Schema   string   `json:"schema"`
	Key      BuildKey `json:"key"`
	ID       string   `json:"id"`
	Artifact string   `json:"artifact"`
}

func (s *Store) indexPath(k BuildKey) string {
	h := HashOf([]byte(k.ID()))
	return filepath.Join(s.dir, "index", h.String()+".json")
}

// RecordBuild maps key to an artifact hash in the build index.
func (s *Store) RecordBuild(key BuildKey, artifact Hash) error {
	key = key.normalize()
	ent := indexEntry{Schema: ManifestSchema, Key: key, ID: key.ID(), Artifact: artifact.String()}
	data, err := json.MarshalIndent(ent, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding index entry: %w", err)
	}
	if err := writeFileAtomic(s.indexPath(key), append(data, '\n')); err != nil {
		return fmt.Errorf("store: writing index entry: %w", err)
	}
	return nil
}

// LookupBuild returns the artifact hash recorded for key, or
// ErrNotFound.
func (s *Store) LookupBuild(key BuildKey) (Hash, error) {
	key = key.normalize()
	data, err := os.ReadFile(s.indexPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return Hash{}, fmt.Errorf("store: build %s: %w", key.ID(), ErrNotFound)
		}
		return Hash{}, fmt.Errorf("store: reading index entry: %w", err)
	}
	var ent indexEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return Hash{}, fmt.Errorf("store: index entry: %w", err)
	}
	h, err := ParseHash(ent.Artifact)
	if err != nil {
		return Hash{}, fmt.Errorf("store: index entry: %w", err)
	}
	return h, nil
}

// BuildFunc produces the artifact for a build key on a cache miss.
type BuildFunc func() (iwpp.Artifact, error)

// ResolveResult is one Resolve outcome.
type ResolveResult struct {
	// Hash is the artifact's identity; Bytes its full encoding.
	Hash  Hash
	Bytes []byte
	// Hit reports whether the build index already had the key (no
	// build ran in this call or any it joined).
	Hit bool
}

// flightCall is one in-progress build that concurrent Resolve calls for
// the same key share.
type flightCall struct {
	done chan struct{}
	res  ResolveResult
	err  error
}

// Resolve is the lazy-build path: return the cached artifact for key,
// or build, store, and index one on miss. Concurrent calls for the same
// key collapse into a single build (in-process singleflight). A corrupt
// cached artifact is an error, never a silent rebuild — the store
// refuses to paper over damaged state.
func (s *Store) Resolve(key BuildKey, build BuildFunc) (ResolveResult, error) {
	key = key.normalize()
	if err := key.validate(); err != nil {
		return ResolveResult{}, err
	}
	id := key.ID()
	if h, err := s.LookupBuild(key); err == nil {
		data, err := s.GetArtifact(h)
		if err != nil {
			return ResolveResult{}, err
		}
		s.met.ResolveHits.Inc()
		return ResolveResult{Hash: h, Bytes: data, Hit: true}, nil
	} else if !errors.Is(err, ErrNotFound) {
		return ResolveResult{}, err
	}
	s.flightMu.Lock()
	if c, ok := s.flight[id]; ok {
		// Someone else is building this key; share their result (and
		// their failure — retrying here would double-build on every
		// deterministic error).
		s.flightMu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[id] = c
	s.flightMu.Unlock()

	// Re-check the index now that we hold the flight slot: a build that
	// finished between our lookup and the slot claim would otherwise
	// run twice.
	if h, err := s.LookupBuild(key); err == nil {
		data, gerr := s.GetArtifact(h)
		if gerr == nil {
			s.met.ResolveHits.Inc()
			c.res = ResolveResult{Hash: h, Bytes: data, Hit: true}
		} else {
			c.err = gerr
		}
	} else if !errors.Is(err, ErrNotFound) {
		c.err = err
	} else {
		c.res, c.err = s.buildAndStore(key, build)
	}
	close(c.done)
	s.flightMu.Lock()
	delete(s.flight, id)
	s.flightMu.Unlock()
	return c.res, c.err
}

func (s *Store) buildAndStore(key BuildKey, build BuildFunc) (ResolveResult, error) {
	s.met.ResolveMisses.Inc()
	if build == nil {
		return ResolveResult{}, fmt.Errorf("store: no artifact recorded for %s and no builder supplied", key.ID())
	}
	s.met.ResolveBuilds.Inc()
	a, err := build()
	if err != nil {
		return ResolveResult{}, fmt.Errorf("store: building %s: %w", key.ID(), err)
	}
	v := uint8(iwpp.FormatV1)
	if key.Format == "wpp2" {
		v = iwpp.FormatV2
	}
	iwpp.SetVersion(a, v)
	h, _, err := s.PutArtifact(a)
	if err != nil {
		return ResolveResult{}, err
	}
	if err := s.RecordBuild(key, h); err != nil {
		return ResolveResult{}, err
	}
	data, err := s.GetArtifact(h)
	if err != nil {
		return ResolveResult{}, err
	}
	return ResolveResult{Hash: h, Bytes: data}, nil
}

// scaleArgFor maps a scale name to the workload's main() argument.
func scaleArgFor(w workloads.Workload, scale string) (int64, error) {
	switch scale {
	case "small":
		return w.Small, nil
	case "medium":
		return w.Medium, nil
	case "large":
		return w.Large, nil
	}
	return 0, fmt.Errorf("store: unknown scale %q (want small, medium, or large)", scale)
}

// DefaultBuild returns the standard lazy builder for a key naming a
// bundled workload: compile, run under path tracing with the batched
// sink, compress through wpp.New with the key's geometry — the same
// chain wppbuild uses, so lazily built artifacts are byte-identical to
// write-through ones. Keys naming an ad-hoc program (by source hash)
// cannot be lazily built — the store does not hold sources — and error.
func DefaultBuild(key BuildKey) BuildFunc {
	key = key.normalize()
	return func() (iwpp.Artifact, error) {
		if key.Workload == "" {
			return nil, fmt.Errorf("store: cannot lazily build program %s: store holds artifacts, not sources", key.Program)
		}
		w, err := workloads.ByName(key.Workload)
		if err != nil {
			return nil, err
		}
		args := key.Args
		if len(args) == 0 {
			arg, err := scaleArgFor(w, key.Scale)
			if err != nil {
				return nil, err
			}
			args = []int64{arg}
		}
		return BuildWorkloadArtifact(w.Source, args, key.Chunk, key.Workers)
	}
}

// BuildWorkloadArtifact runs WL source under path tracing and
// compresses the event stream online: the canonical source-to-artifact
// chain shared by wppbuild and the store's lazy builds.
func BuildWorkloadArtifact(source string, args []int64, chunk uint64, workers int) (iwpp.Artifact, error) {
	prog, err := wlc.Compile(source)
	if err != nil {
		return nil, err
	}
	sink := &builderSink{}
	m, err := interp.New(prog, interp.Config{Mode: interp.PathTrace, Sink: sink})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		names[i] = fn.Name
	}
	b := iwpp.New(names, m.Numberings(), iwpp.BuildOptions{ChunkSize: chunk, Workers: workers})
	sink.b = b
	if _, err := m.Run("main", args...); err != nil {
		b.Finish(0) // drain the pipeline so worker goroutines do not leak
		return nil, err
	}
	return b.Finish(m.Stats().Instructions), nil
}

// builderSink late-binds the builder (which needs the machine's
// numberings, so it is constructed after the machine) while presenting
// a batch-capable sink.
type builderSink struct{ b iwpp.Builder }

func (s *builderSink) Add(e trace.Event)         { s.b.Add(e) }
func (s *builderSink) AddBatch(es []trace.Event) { s.b.AddBatch(es) }
