package store

import (
	"bytes"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	iwpp "repro/internal/wpp"
)

func TestResolveLazyBuildThenHit(t *testing.T) {
	s, met := newTestStore(t)
	key := BuildKey{Workload: "expr", Scale: "small", Chunk: 512, Workers: 2}
	cold, err := s.Resolve(key, DefaultBuild(key))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hit {
		t.Fatal("first Resolve reported a hit on an empty store")
	}
	if met.ResolveMisses.Value() != 1 || met.ResolveBuilds.Value() != 1 {
		t.Fatalf("cold counters: misses=%d builds=%d", met.ResolveMisses.Value(), met.ResolveBuilds.Value())
	}
	warm, err := s.Resolve(key, DefaultBuild(key))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit {
		t.Fatal("second Resolve missed")
	}
	// The acceptance-criteria assertion: a cache hit performs no build.
	if met.ResolveBuilds.Value() != 1 {
		t.Fatalf("warm Resolve ran a build (builds=%d)", met.ResolveBuilds.Value())
	}
	if met.ResolveHits.Value() != 1 {
		t.Fatalf("hits=%d", met.ResolveHits.Value())
	}
	if warm.Hash != cold.Hash || !bytes.Equal(warm.Bytes, cold.Bytes) {
		t.Fatal("warm bytes diverge from the built artifact")
	}
	// Lazy-built artifact must match an independent direct build of the
	// same tuple — the byte-identity wppbuild relies on.
	a, err := DefaultBuild(key)()
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if _, err := a.Encode(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), cold.Bytes) {
		t.Fatal("store-built artifact diverges from direct build")
	}
}

// TestResolveSingleflight races many goroutines at one cold key: the
// build must run exactly once and everyone must get the same bytes.
// Run under -race in CI.
func TestResolveSingleflight(t *testing.T) {
	s, met := newTestStore(t)
	key := BuildKey{Workload: "queens", Scale: "small", Chunk: 256}
	var builds atomic.Int64
	build := func() (iwpp.Artifact, error) {
		builds.Add(1)
		return DefaultBuild(key)()
	}
	const goroutines = 16
	start := make(chan struct{})
	results := make([]ResolveResult, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = s.Resolve(key, build)
		}(i)
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times under contention", n)
	}
	if met.ResolveBuilds.Value() != 1 {
		t.Fatalf("ResolveBuilds=%d", met.ResolveBuilds.Value())
	}
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i].Hash != results[0].Hash || !bytes.Equal(results[i].Bytes, results[0].Bytes) {
			t.Fatalf("goroutine %d got different bytes", i)
		}
	}
}

func TestResolveCorruptCacheIsError(t *testing.T) {
	s, met := newTestStore(t)
	key := BuildKey{Workload: "expr", Scale: "small", Chunk: 512}
	cold, err := s.Resolve(key, DefaultBuild(key))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one object backing the cached artifact.
	m, err := s.Manifest(cold.Hash)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := ParseHash(m.Parts[len(m.Parts)-1])
	if err != nil {
		t.Fatal(err)
	}
	p := s.objectPath(ph)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x55
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	before := met.ResolveBuilds.Value()
	_, err = s.Resolve(key, DefaultBuild(key))
	var ce *CorruptObjectError
	if !errors.As(err, &ce) {
		t.Fatalf("Resolve over corrupt cache: %v (want *CorruptObjectError)", err)
	}
	// Never a silent rebuild.
	if met.ResolveBuilds.Value() != before {
		t.Fatal("corrupt cache triggered a silent rebuild")
	}
}

func TestBuildKeyNormalizeAndValidate(t *testing.T) {
	k := BuildKey{Workload: "expr"}.normalize()
	if k.Format != "wpp1" || k.Scale != "small" {
		t.Fatalf("normalize: %+v", k)
	}
	if (BuildKey{}).normalize().ID() == (BuildKey{Workload: "expr"}).normalize().ID() {
		t.Fatal("distinct keys share an ID")
	}
	for _, bad := range []BuildKey{
		{},
		{Workload: "expr", Program: "abc"},
		{Workload: "expr", Format: "wpp3"},
		{Workload: "expr", Scale: "huge"},
	} {
		if err := bad.normalize().validate(); err == nil {
			t.Fatalf("key %+v validated", bad)
		}
	}
}
