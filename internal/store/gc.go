package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// GCStats summarizes one garbage collection.
type GCStats struct {
	// Artifacts is the number of manifests whose parts were marked
	// live.
	Artifacts int
	// ObjectsKept and ObjectsRemoved partition the object population;
	// BytesRemoved is the disk reclaimed.
	ObjectsKept    int
	ObjectsRemoved int
	BytesRemoved   int64
	// DanglingIndex counts build-index entries whose artifact manifest
	// is missing. GC reports them but leaves them in place — an index
	// entry is a claim about a past build, not a liveness root, and
	// deleting claims is not the collector's call.
	DanglingIndex int
}

// GC removes every object not referenced by any artifact manifest.
// Mark: the union of all manifests' part lists. Sweep: everything else
// under objects/. Manifests and index entries are never collected, so
// every indexed artifact remains readable byte-identically afterwards.
// An unparsable manifest aborts the collection before anything is
// deleted — GC never guesses at liveness.
func (s *Store) GC() (GCStats, error) {
	var st GCStats
	live := map[Hash]bool{}
	arts, err := s.Artifacts()
	if err != nil {
		return st, err
	}
	for _, h := range arts {
		m, err := s.Manifest(h)
		if err != nil {
			return st, fmt.Errorf("store: gc aborted: %w", err)
		}
		parts, err := m.partHashes()
		if err != nil {
			return st, fmt.Errorf("store: gc aborted: %w", err)
		}
		for _, p := range parts {
			live[p] = true
		}
		st.Artifacts++
	}
	objRoot := filepath.Join(s.dir, "objects")
	err = filepath.WalkDir(objRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(objRoot, path)
		if err != nil {
			return err
		}
		// objects/<2-hex>/<62-hex>; anything else is not ours to sweep.
		h, perr := ParseHash(filepath.Dir(rel) + filepath.Base(rel))
		if perr != nil {
			return nil
		}
		if live[h] {
			st.ObjectsKept++
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		st.ObjectsRemoved++
		st.BytesRemoved += fi.Size()
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("store: gc sweep: %w", err)
	}
	// Audit the index for dangling entries (informational only).
	idxEntries, err := os.ReadDir(filepath.Join(s.dir, "index"))
	if err != nil {
		return st, fmt.Errorf("store: gc: %w", err)
	}
	for _, ent := range idxEntries {
		data, err := os.ReadFile(filepath.Join(s.dir, "index", ent.Name()))
		if err != nil {
			continue
		}
		var rec indexEntry
		if json.Unmarshal(data, &rec) != nil {
			continue
		}
		h, err := ParseHash(rec.Artifact)
		if err != nil {
			st.DanglingIndex++
			continue
		}
		if _, err := os.Stat(s.manifestPath(h)); err != nil {
			st.DanglingIndex++
		}
	}
	return st, nil
}
