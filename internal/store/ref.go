package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/workloads"
)

// EnvDir is the environment variable naming the default store
// directory; CLI -store flags override it.
const EnvDir = "WPP_STORE"

// DirFromFlag resolves the effective store directory: the -store flag
// value if set, else $WPP_STORE, else "" (no store configured).
func DirFromFlag(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return os.Getenv(EnvDir)
}

// IsRef reports whether arg is a store reference rather than a file
// path: "@<hash-prefix>" names a stored artifact, and
// "<workload>@<scale>" names a lazy build of a bundled workload.
// Anything else — including names that merely contain '@' — is a file
// path.
func IsRef(arg string) bool {
	if strings.HasPrefix(arg, "@") {
		return len(arg) > 1
	}
	name, scale, ok := strings.Cut(arg, "@")
	if !ok {
		return false
	}
	if _, err := workloads.ByName(name); err != nil {
		return false
	}
	switch scale {
	case "small", "medium", "large":
		return true
	}
	return false
}

// ReadRef resolves a store reference to the artifact's full encoded
// bytes and hash. "@<prefix>" looks up a stored artifact; a
// "<workload>@<scale>" ref resolves through the build index, lazily
// building (monolithic wpp1, the CLI default geometry) on first use.
func (s *Store) ReadRef(ref string) ([]byte, Hash, error) {
	if rest, ok := strings.CutPrefix(ref, "@"); ok {
		h, err := s.FindArtifact(rest)
		if err != nil {
			return nil, Hash{}, err
		}
		data, err := s.GetArtifact(h)
		return data, h, err
	}
	name, scale, ok := strings.Cut(ref, "@")
	if !ok {
		return nil, Hash{}, fmt.Errorf("store: %q is not a store reference", ref)
	}
	key := BuildKey{Workload: name, Scale: scale}
	res, err := s.Resolve(key, DefaultBuild(key))
	if err != nil {
		return nil, Hash{}, err
	}
	return res.Bytes, res.Hash, nil
}

// OpenInput is the CLI front door for an input argument that may be a
// file path or a store reference: refs resolve through the store in
// dir, everything else opens as a file. A ref with no store configured
// is an error that names the fix.
func OpenInput(arg, dir string) (io.ReadCloser, error) {
	if !IsRef(arg) {
		f, err := os.Open(arg)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		return f, nil
	}
	if dir == "" {
		return nil, fmt.Errorf("store: %q is a store reference but no store is configured (pass -store DIR or set $%s)", arg, EnvDir)
	}
	s, err := Open(dir, nil)
	if err != nil {
		return nil, err
	}
	data, _, err := s.ReadRef(arg)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}
