package store

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obsv"
)

// FuzzManifestDecode hardens the manifest parser against arbitrary
// JSON: it must never panic, and anything it accepts must satisfy the
// invariants the rest of the store assumes (parseable hashes, a valid
// kind, a blob having exactly one part).
func FuzzManifestDecode(f *testing.F) {
	valid, _ := json.Marshal(Manifest{
		Schema:   ManifestSchema,
		Artifact: HashOf([]byte("a")).String(),
		Format:   "WPC1",
		Kind:     "chunked",
		Size:     12,
		Parts:    []string{HashOf([]byte("h")).String(), HashOf([]byte("c")).String()},
	})
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"wpp-store/v1","kind":"blob","parts":[]}`))
	f.Add([]byte(`{"schema":"wpp-store/v1","kind":"chunked","size":-1}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Schema != ManifestSchema {
			t.Fatalf("accepted schema %q", m.Schema)
		}
		if _, err := ParseHash(m.Artifact); err != nil {
			t.Fatalf("accepted unparseable artifact hash: %v", err)
		}
		if _, err := m.partHashes(); err != nil {
			t.Fatalf("accepted unparseable part: %v", err)
		}
		switch m.Kind {
		case "blob":
			if len(m.Parts) != 1 {
				t.Fatalf("blob with %d parts", len(m.Parts))
			}
		case "chunked":
			if len(m.Parts) == 0 {
				t.Fatal("chunked with no parts")
			}
		default:
			t.Fatalf("accepted kind %q", m.Kind)
		}
	})
}

// FuzzStorePut round-trips arbitrary bytes through the object CAS:
// every put must read back byte-identical under its content hash, and
// re-putting must dedup rather than rewrite.
func FuzzStorePut(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello"))
	f.Add(bytes.Repeat([]byte{0xa5}, 1<<12))
	dir := f.TempDir()
	met := NewMetrics(obsv.NewRegistry())
	s, err := Open(dir, met)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, _, err := s.PutObject(data)
		if err != nil {
			t.Fatal(err)
		}
		if h != HashOf(data) {
			t.Fatal("object stored under a hash that is not its content hash")
		}
		got, err := s.GetObject(h)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip diverges: %d bytes in, %d out", len(data), len(got))
		}
		h2, fresh, err := s.PutObject(data)
		if err != nil {
			t.Fatal(err)
		}
		if fresh || h2 != h {
			t.Fatal("re-put did not dedup")
		}
	})
}
