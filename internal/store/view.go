package store

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/mmapio"
	iwpp "repro/internal/wpp"
)

// mapObject opens the object named h through mmapio and verifies its
// content hash over the mapped bytes — the same guarantee as GetObject
// without copying the object through the heap. The caller owns the
// returned Data and must Close it; nothing is retained on error.
func (s *Store) mapObject(h Hash) (*mmapio.Data, error) {
	p := s.objectPath(h)
	d, err := mmapio.Open(p)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("store: object %s: %w", h, ErrNotFound)
		}
		return nil, fmt.Errorf("store: get object: %w", err)
	}
	if got := HashOf(d.Bytes()); got != h {
		d.Close()
		s.met.CorruptObjects.Inc()
		return nil, &CorruptObjectError{Path: p, Want: h, Got: got}
	}
	return d, nil
}

// OpenView opens stored artifact h as a lazy wpp.ArtifactView. A blob
// artifact maps its single object — whose hash is the artifact hash, so
// the one open-time verification covers every byte the view can ever
// serve. A chunked artifact reads its (small) header object eagerly and
// binds one lazy loader per chunk object: chunk bytes are mapped,
// hash-verified, decoded, and unmapped inside materialization, so the
// store's no-unverified-bytes guarantee holds chunk by chunk and a
// corrupt chunk surfaces as *CorruptObjectError from the analysis that
// touches it — never as silent garbage, and never at open time cost.
// vm may be nil to disable open-path instrumentation.
func (s *Store) OpenView(h Hash, vm *iwpp.ViewMetrics) (*iwpp.ArtifactView, error) {
	m, err := s.Manifest(h)
	if err != nil {
		return nil, err
	}
	parts, err := m.partHashes()
	if err != nil {
		return nil, err
	}
	if m.Kind == "blob" {
		d, err := s.mapObject(parts[0])
		if err != nil {
			return nil, err
		}
		if vm != nil && d.Mapped() {
			vm.BytesMapped.Add(uint64(d.Len()))
		}
		return iwpp.NewView(d.Bytes(), &iwpp.ViewOptions{Metrics: vm, Closer: d})
	}
	header, err := s.GetObject(parts[0])
	if err != nil {
		return nil, err
	}
	loads := make([]iwpp.ChunkLoad, len(parts)-1)
	for i, ph := range parts[1:] {
		loads[i] = func() ([]byte, func(), error) {
			d, err := s.mapObject(ph)
			if err != nil {
				return nil, nil, err
			}
			if vm != nil && d.Mapped() {
				vm.BytesMapped.Add(uint64(d.Len()))
			}
			return d.Bytes(), func() { d.Close() }, nil
		}
	}
	return iwpp.NewViewParts(header, loads, m.Size, &iwpp.ViewOptions{Metrics: vm})
}

// OpenViewInput is OpenInput's lazy counterpart: the CLI front door for
// an input argument that may be a file path or a store reference,
// opened as an ArtifactView instead of a byte stream. Files are
// memory-mapped via OpenViewFile; "@<prefix>" refs resolve to a stored
// artifact's view; "<workload>@<scale>" refs resolve through the build
// index (building on first use) and view the stored result. A ref with
// no store configured is an error that names the fix.
func OpenViewInput(arg, dir string, vm *iwpp.ViewMetrics) (*iwpp.ArtifactView, error) {
	if !IsRef(arg) {
		v, err := iwpp.OpenViewFile(arg, &iwpp.ViewOptions{Metrics: vm})
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		return v, nil
	}
	if dir == "" {
		return nil, fmt.Errorf("store: %q is a store reference but no store is configured (pass -store DIR or set $%s)", arg, EnvDir)
	}
	s, err := Open(dir, nil)
	if err != nil {
		return nil, err
	}
	if rest, ok := strings.CutPrefix(arg, "@"); ok {
		h, err := s.FindArtifact(rest)
		if err != nil {
			return nil, err
		}
		return s.OpenView(h, vm)
	}
	name, scale, _ := strings.Cut(arg, "@")
	key := BuildKey{Workload: name, Scale: scale}
	res, err := s.Resolve(key, DefaultBuild(key))
	if err != nil {
		return nil, err
	}
	return s.OpenView(res.Hash, vm)
}
