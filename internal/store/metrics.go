package store

import "repro/internal/obsv"

// Metrics is the store's instrumentation hook set. Any field may be nil
// — obsv metrics are nil-safe no-ops — and a nil *Metrics disables
// instrumentation entirely; Store holds a value with all-nil fields so
// call sites need no conditionals.
type Metrics struct {
	// ObjectsWritten / BytesWritten count objects newly added to the
	// CAS; ObjectsDeduped / BytesDeduped count puts that found their
	// content already present and wrote nothing.
	ObjectsWritten *obsv.Counter
	BytesWritten   *obsv.Counter
	ObjectsDeduped *obsv.Counter
	BytesDeduped   *obsv.Counter
	// ArtifactsStored counts artifact manifests newly recorded.
	ArtifactsStored *obsv.Counter
	// ResolveHits / ResolveMisses classify Resolve calls by whether the
	// build index already mapped the key; ResolveBuilds counts builds
	// actually executed (== misses net of singleflight sharing).
	ResolveHits   *obsv.Counter
	ResolveMisses *obsv.Counter
	ResolveBuilds *obsv.Counter
	// CorruptObjects counts reads whose content failed hash
	// verification.
	CorruptObjects *obsv.Counter
}

// NewMetrics registers the standard store metric names on r and returns
// the hook set. A nil registry yields a hook set of nil metrics — valid
// to install, and a no-op.
func NewMetrics(r *obsv.Registry) *Metrics {
	return &Metrics{
		ObjectsWritten:  r.Counter("store_objects_written_total"),
		BytesWritten:    r.Counter("store_bytes_written_total"),
		ObjectsDeduped:  r.Counter("store_objects_deduped_total"),
		BytesDeduped:    r.Counter("store_bytes_deduped_total"),
		ArtifactsStored: r.Counter("store_artifacts_stored_total"),
		ResolveHits:     r.Counter("store_resolve_hits_total"),
		ResolveMisses:   r.Counter("store_resolve_misses_total"),
		ResolveBuilds:   r.Counter("store_resolve_builds_total"),
		CorruptObjects:  r.Counter("store_corrupt_objects_total"),
	}
}

// orNoop lets Store hold a value so instrumentation sites can call
// through nil fields without checking the pointer first.
func (m *Metrics) orNoop() Metrics {
	if m == nil {
		return Metrics{}
	}
	return *m
}
