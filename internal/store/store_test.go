package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obsv"
	"repro/internal/trace"
	"repro/internal/workloads"
	iwpp "repro/internal/wpp"
)

func newTestStore(t *testing.T) (*Store, *Metrics) {
	t.Helper()
	met := NewMetrics(obsv.NewRegistry())
	s, err := Open(t.TempDir(), met)
	if err != nil {
		t.Fatal(err)
	}
	return s, met
}

// syntheticEvents is a deterministic branchy stream: enough structure
// for sequitur to find rules, enough variety for multiple chunks.
func syntheticEvents(n int) []trace.Event {
	events := make([]trace.Event, n)
	for i := range events {
		events[i] = trace.MakeEvent(uint32(i%7), uint64((i*i)%23))
	}
	return events
}

// buildChunked compresses events through the real parallel pipeline.
func buildChunked(t *testing.T, events []trace.Event, chunkSize uint64) *iwpp.ChunkedWPP {
	t.Helper()
	b := iwpp.New(nil, nil, iwpp.BuildOptions{ChunkSize: chunkSize, Workers: 2})
	b.AddBatch(events)
	a := b.Finish(uint64(len(events)))
	c, ok := a.(*iwpp.ChunkedWPP)
	if !ok {
		t.Fatalf("expected chunked artifact, got %T", a)
	}
	return c
}

func TestObjectRoundTripAndDedup(t *testing.T) {
	s, met := newTestStore(t)
	data := []byte("the quick brown fox")
	h, fresh, err := s.PutObject(data)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh {
		t.Fatal("first put reported dedup")
	}
	if !s.HasObject(h) {
		t.Fatal("HasObject false after put")
	}
	got, err := s.GetObject(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("GetObject returned %q", got)
	}
	h2, fresh2, err := s.PutObject(data)
	if err != nil {
		t.Fatal(err)
	}
	if fresh2 || h2 != h {
		t.Fatalf("second put: fresh=%v hash=%s (want dedup of %s)", fresh2, h2, h)
	}
	if met.ObjectsDeduped.Value() != 1 || met.ObjectsWritten.Value() != 1 {
		t.Fatalf("counters: written=%d deduped=%d", met.ObjectsWritten.Value(), met.ObjectsDeduped.Value())
	}
}

func TestCorruptObjectIsTypedError(t *testing.T) {
	s, met := newTestStore(t)
	h, _, err := s.PutObject([]byte("payload under test"))
	if err != nil {
		t.Fatal(err)
	}
	p := s.objectPath(h)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.GetObject(h)
	var ce *CorruptObjectError
	if !errors.As(err, &ce) {
		t.Fatalf("GetObject on corrupt object: %v (want *CorruptObjectError)", err)
	}
	if ce.Want != h || ce.Got == h {
		t.Fatalf("corrupt error hashes: want=%s got=%s", ce.Want, ce.Got)
	}
	if met.CorruptObjects.Value() == 0 {
		t.Fatal("CorruptObjects counter not incremented")
	}
}

// TestGoldenCorpusRoundTrip pins the tentpole property: every committed
// golden artifact, stored and read back, is byte-identical — both the
// whole-buffer Get path and the streaming reader.
func TestGoldenCorpusRoundTrip(t *testing.T) {
	dir := filepath.Join("..", "experiments", "testdata", "golden")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading golden corpus: %v", err)
	}
	s, _ := newTestStore(t)
	n := 0
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".wpp1") && !strings.HasSuffix(name, ".wpp2") &&
			!strings.HasSuffix(name, ".wpc1") && !strings.HasSuffix(name, ".wpc2") {
			continue
		}
		n++
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		h, m, err := s.PutArtifactBytes(data)
		if err != nil {
			t.Fatalf("%s: put: %v", name, err)
		}
		if h != HashOf(data) {
			t.Fatalf("%s: artifact hash is not the content hash", name)
		}
		chunked := strings.HasSuffix(name, ".wpc1") || strings.HasSuffix(name, ".wpc2")
		if chunked && m.Kind != "chunked" {
			t.Fatalf("%s: kind %q", name, m.Kind)
		}
		if chunked && len(m.Parts) < 2 {
			t.Fatalf("%s: chunked manifest with %d parts", name, len(m.Parts))
		}
		got, err := s.GetArtifact(h)
		if err != nil {
			t.Fatalf("%s: get: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s: GetArtifact diverges from committed bytes", name)
		}
		r, size, err := s.ArtifactReader(h)
		if err != nil {
			t.Fatalf("%s: reader: %v", name, err)
		}
		streamed, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%s: stream: %v", name, err)
		}
		r.Close()
		if size != int64(len(data)) || !bytes.Equal(streamed, data) {
			t.Errorf("%s: streamed read diverges (size %d vs %d)", name, size, len(data))
		}
	}
	if n == 0 {
		t.Fatal("no artifacts in the golden corpus")
	}
}

// TestChunkDedupAcrossArtifacts stores two different artifacts built
// from the same stream prefix and checks that the shared chunk grammars
// are stored once: genuine cross-artifact chunk-level dedup, not
// whole-artifact short-circuiting.
func TestChunkDedupAcrossArtifacts(t *testing.T) {
	s, met := newTestStore(t)
	const chunk = 256
	events := syntheticEvents(8 * chunk)
	short := buildChunked(t, events[:6*chunk], chunk)
	long := buildChunked(t, events, chunk)
	h1, m1, err := s.PutArtifact(short)
	if err != nil {
		t.Fatal(err)
	}
	h2, m2, err := s.PutArtifact(long)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("distinct artifacts hashed equal")
	}
	if met.ObjectsDeduped.Value() < 6 {
		t.Fatalf("expected >=6 deduped chunk objects, counter says %d", met.ObjectsDeduped.Value())
	}
	// The first six chunk objects must be literally shared (same hash).
	for i := 1; i <= 6; i++ {
		if m1.Parts[i] != m2.Parts[i] {
			t.Fatalf("chunk %d not shared: %s vs %s", i-1, m1.Parts[i], m2.Parts[i])
		}
	}
	for _, h := range []Hash{h1, h2} {
		if _, err := s.GetArtifact(h); err != nil {
			t.Fatalf("artifact %s unreadable after dedup: %v", h, err)
		}
	}
}

// TestRepeatedRunDedup is the acceptance-criteria scenario: two
// separate builds of the same workload produce identical artifacts, and
// the second store operation dedups every chunk instead of re-storing.
func TestRepeatedRunDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale workload build")
	}
	s, met := newTestStore(t)
	const chunk = 1024
	run := func() iwpp.Artifact {
		a, err := BuildWorkloadArtifact(mustWorkloadSource(t, "expr"), []int64{mustWorkloadArg(t, "expr", "medium")}, chunk, 2)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	h1, m1, err := s.PutArtifact(run())
	if err != nil {
		t.Fatal(err)
	}
	before := met.ObjectsWritten.Value()
	h2, _, err := s.PutArtifact(run())
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("repeated runs produced different artifacts: %s vs %s", h1, h2)
	}
	if met.ObjectsWritten.Value() != before {
		t.Fatalf("second run wrote %d new objects", met.ObjectsWritten.Value()-before)
	}
	if met.ObjectsDeduped.Value() < 1 {
		t.Fatal("no chunk objects deduped across runs")
	}
	if len(m1.Parts) < 3 {
		t.Fatalf("medium-scale build produced only %d parts", len(m1.Parts))
	}
}

func TestFindArtifact(t *testing.T) {
	s, _ := newTestStore(t)
	data, err := os.ReadFile(filepath.Join("..", "experiments", "testdata", "golden", goldenName(t)))
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := s.PutArtifactBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.FindArtifact(h.String()[:8])
	if err != nil || got != h {
		t.Fatalf("FindArtifact(%s) = %s, %v", h.String()[:8], got, err)
	}
	if _, err := s.FindArtifact("ab"); err == nil {
		t.Fatal("short prefix accepted")
	}
	if _, err := s.FindArtifact("ffffffff"); !errors.Is(err, ErrNotFound) && err == nil {
		t.Fatal("unknown prefix found something")
	}
}

// goldenName returns one committed golden artifact file name.
func goldenName(t *testing.T) string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("..", "experiments", "testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".wpc2") {
			return ent.Name()
		}
	}
	t.Fatal("no .wpc2 golden artifact")
	return ""
}

func TestGCPreservesIndexedArtifacts(t *testing.T) {
	s, _ := newTestStore(t)
	const chunk = 256
	events := syntheticEvents(8 * chunk)
	keep := buildChunked(t, events[:6*chunk], chunk)
	drop := buildChunked(t, events, chunk)
	hKeep, _, err := s.PutArtifact(keep)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := s.GetArtifact(hKeep)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecordBuild(BuildKey{Workload: "expr", Scale: "small", Chunk: chunk}, hKeep); err != nil {
		t.Fatal(err)
	}
	hDrop, mDrop, err := s.PutArtifact(drop)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting the manifest makes hDrop's unshared objects garbage.
	if err := os.Remove(s.manifestPath(hDrop)); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	// drop had its own header plus two chunks beyond the shared prefix.
	if st.ObjectsRemoved == 0 {
		t.Fatal("GC removed nothing")
	}
	if st.Artifacts != 1 {
		t.Fatalf("GC marked %d artifacts", st.Artifacts)
	}
	got, err := s.GetArtifact(hKeep)
	if err != nil {
		t.Fatalf("kept artifact unreadable after GC: %v", err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatal("kept artifact bytes changed across GC")
	}
	// The shared chunk objects must have survived; the dropped
	// artifact's tail chunks must not.
	tail, err := ParseHash(mDrop.Parts[len(mDrop.Parts)-1])
	if err != nil {
		t.Fatal(err)
	}
	if s.HasObject(tail) {
		t.Fatal("unreferenced tail chunk survived GC")
	}
	if _, err := s.LookupBuild(BuildKey{Workload: "expr", Scale: "small", Chunk: chunk}); err != nil {
		t.Fatalf("build index entry lost: %v", err)
	}
}

func mustWorkloadSource(t *testing.T, name string) string {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Source
}

func mustWorkloadArg(t *testing.T, name, scale string) int64 {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	arg, err := scaleArgFor(w, scale)
	if err != nil {
		t.Fatal(err)
	}
	return arg
}
