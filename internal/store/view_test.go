package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
	iwpp "repro/internal/wpp"
)

// putChunked stores a chunked artifact and returns its hash plus the
// full encoding for comparison.
func putChunked(t *testing.T, s *Store, chunkSize uint64) (Hash, []byte) {
	t.Helper()
	c := buildChunked(t, syntheticEvents(4000), chunkSize)
	var buf bytes.Buffer
	if _, err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	h, m, err := s.PutArtifactEncoded(c, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != "chunked" {
		t.Fatalf("manifest kind %q, want chunked", m.Kind)
	}
	return h, buf.Bytes()
}

// TestOpenViewParity: blob and chunked store views must agree with the
// eager decode of the stored bytes on headers, walks, and grammars.
func TestOpenViewParity(t *testing.T) {
	s, _ := newTestStore(t)

	// Chunked artifact: header object + one object per chunk.
	ch, cenc := putChunked(t, s, 256)
	// Blob artifact: the same trace monolithic.
	w := iwpp.NewMonoBuilder(nil, nil)
	for _, e := range syntheticEvents(4000) {
		w.Add(e)
	}
	mono := w.Finish(4000)
	bh, m, err := s.PutArtifact(mono)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != "blob" {
		t.Fatalf("manifest kind %q, want blob", m.Kind)
	}

	for _, tc := range []struct {
		name string
		h    Hash
	}{{"chunked", ch}, {"blob", bh}} {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := s.GetArtifact(tc.h)
			if err != nil {
				t.Fatal(err)
			}
			eager, err := iwpp.DecodeArtifact(bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			v, err := s.OpenView(tc.h, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer v.Close()
			if v.NumEvents() != eager.NumEvents() || v.DistinctPaths() != eager.DistinctPaths() {
				t.Fatal("view header disagrees with eager decode")
			}
			if v.Size() != int64(len(enc)) {
				t.Fatalf("Size = %d, artifact is %d bytes", v.Size(), len(enc))
			}
			var got, want []trace.Event
			if err := v.Walk(func(e trace.Event) bool { got = append(got, e); return true }); err != nil {
				t.Fatal(err)
			}
			eager.Walk(func(e trace.Event) bool { want = append(want, e); return true })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("walk diverges: %d vs %d events", len(got), len(want))
			}
			ma, err := v.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			var re bytes.Buffer
			if _, err := ma.Encode(&re); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re.Bytes(), enc) {
				t.Fatal("materialized view re-encodes differently from stored bytes")
			}
		})
	}
	_ = cenc
}

// TestOpenViewCorruptChunkObject: corrupting one chunk object on disk
// leaves the open cheap and clean, and the analysis that touches the
// chunk gets *CorruptObjectError (inside *wpp.ViewError) — the store's
// no-unverified-bytes guarantee at chunk granularity.
func TestOpenViewCorruptChunkObject(t *testing.T) {
	s, met := newTestStore(t)
	h, _ := putChunked(t, s, 256)
	m, err := s.Manifest(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Parts) < 3 {
		t.Fatalf("need >= 2 chunk objects, have %d parts", len(m.Parts))
	}
	// Parts[0] is the header; corrupt the second chunk object.
	ph, err := ParseHash(m.Parts[2])
	if err != nil {
		t.Fatal(err)
	}
	path := s.objectPath(ph)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	v, err := s.OpenView(h, nil)
	if err != nil {
		t.Fatalf("open must not read chunk objects, got: %v", err)
	}
	defer v.Close()

	// The chunk before the corrupt one still materializes.
	if _, err := v.Chunk(0); err != nil {
		t.Fatalf("intact chunk: %v", err)
	}
	_, err = v.Chunk(1)
	var ve *iwpp.ViewError
	if !errors.As(err, &ve) {
		t.Fatalf("corrupt chunk error = %v, want *wpp.ViewError", err)
	}
	var ce *CorruptObjectError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt chunk error = %v, want wrapped *CorruptObjectError", err)
	}
	if met.CorruptObjects.Value() == 0 {
		t.Fatal("corruption not counted")
	}
	// Whole-view folds surface the same typed error, never garbage.
	if err := v.Verify(0); !errors.As(err, &ce) {
		t.Fatalf("Verify = %v, want *CorruptObjectError", err)
	}
	if _, err := v.Materialize(); !errors.As(err, &ce) {
		t.Fatalf("Materialize = %v, want *CorruptObjectError", err)
	}
}

// TestOpenViewInputForms covers the three input shapes: a plain file, a
// @prefix ref, and a workload@scale ref (lazily built).
func TestOpenViewInputForms(t *testing.T) {
	s, _ := newTestStore(t)
	h, enc := putChunked(t, s, 512)

	// File path.
	dir := t.TempDir()
	fp := filepath.Join(dir, "a.wpc1")
	if err := os.WriteFile(fp, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := OpenViewInput(fp, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != int64(len(enc)) {
		t.Fatal("file view has wrong size")
	}
	v.Close()

	// Hash-prefix ref.
	v, err = OpenViewInput("@"+h.String()[:8], s.dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumEvents() == 0 {
		t.Fatal("ref view is empty")
	}
	v.Close()

	// Ref with no store configured names the fix.
	if _, err := OpenViewInput("@"+h.String()[:8], "", nil); err == nil {
		t.Fatal("ref without store must fail")
	}

	// workload@scale ref builds on first use.
	v, err = OpenViewInput(workloads.Names()[0]+"@small", s.dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumEvents() == 0 {
		t.Fatal("built view is empty")
	}
	if err := v.Verify(0); err != nil {
		t.Fatal(err)
	}
	v.Close()
}
