// Package analysistest runs one analyzer over fixture packages annotated
// with want comments, mirroring golang.org/x/tools' package of the same
// name on the standard library only.
//
// A fixture lives in testdata/src/<pattern>/ relative to the calling
// test. Lines that should be flagged carry a comment of the form
//
//	x := 1 // want "regexp"
//	y := 2 // want "first" "second"
//
// where each quoted string is a regular expression that must match the
// message of a distinct diagnostic reported on that line. Diagnostics
// with no matching want, and wants with no matching diagnostic, fail the
// test.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// sharedLoader caches one loader (and with it the type-checked standard
// library and module packages) across all analyzer tests in a process.
var sharedLoader = sync.OnceValues(func() (*analysis.Loader, error) {
	return analysis.NewLoader(".")
})

// Run loads each pattern's fixture package from testdata/src and checks
// the analyzer's diagnostics against the want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, pattern := range patterns {
		t.Run(strings.ReplaceAll(pattern, "/", "_"), func(t *testing.T) {
			runOne(t, loader, testdata, a, pattern)
		})
	}
}

func runOne(t *testing.T, loader *analysis.Loader, testdata string, a *analysis.Analyzer, pattern string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pattern))
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("analysistest: fixture dir: %v", err)
	}
	pkg, err := loader.LoadDir(dir, pattern)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", pattern, err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		PkgPath:   pkg.PkgPath,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		got[key{pos.Filename, pos.Line}] = append(got[key{pos.Filename, pos.Line}], d.Message)
	}
	want := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range stringLits(text[len("want "):]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("analysistest: %s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
					}
					want[key{pos.Filename, pos.Line}] = append(want[key{pos.Filename, pos.Line}], re)
				}
			}
		}
	}

	for k, res := range want {
		msgs := got[k]
		for _, re := range res {
			matched := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(k.file), k.line, re)
				continue
			}
			msgs = append(msgs[:matched], msgs[matched+1:]...)
		}
		got[k] = msgs
	}
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(k.file), k.line, m)
		}
	}
}

// stringLits extracts the Go string literals ("..." or `...`) from s, in
// order.
func stringLits(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) {
				if s[j] == '\\' {
					j += 2
					continue
				}
				if s[j] == '"' {
					break
				}
				j++
			}
			if j < len(s) {
				if unq, err := strconv.Unquote(s[i : j+1]); err == nil {
					out = append(out, unq)
				}
				i = j
			}
		case '`':
			if j := strings.IndexByte(s[i+1:], '`'); j >= 0 {
				out = append(out, s[i+1:i+1+j])
				i = i + 1 + j
			}
		}
	}
	return out
}
