// Fixture: fmt.Errorf in an internal package. Error arguments must be
// wrapped with %w so errors.Is/As keep seeing the cause.
package a

import (
	"errors"
	"fmt"
	"io"
)

var errBase = errors.New("base")

func wrapOK(err error) error {
	return fmt.Errorf("decode: %w", err)
}

func wrapBad(err error) error {
	return fmt.Errorf("decode: %v", err) // want `fmt\.Errorf formats error argument without %w`
}

func wrapVar() error {
	return fmt.Errorf("read header: %s", io.EOF) // want `formats error argument without %w`
}

func wrapSecond(n int, err error) error {
	return fmt.Errorf("chunk %d: %v", n, err) // want `formats error argument without %w`
}

func noError(n int) error {
	return fmt.Errorf("bad count %d", n) // no error argument: ok
}

func plain() error {
	return errBase
}
