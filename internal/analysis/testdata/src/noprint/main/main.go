// Fixture: package main owns the terminal; printing is allowed.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("ok")
	fmt.Fprintln(os.Stderr, "also ok")
}
