// Fixture: a library package must not write to the process streams;
// output goes through an io.Writer supplied by the caller.
package a

import (
	"fmt"
	"io"
	"os"
)

func Report(w io.Writer, n int) {
	fmt.Fprintf(w, "n=%d\n", n) // explicit writer: ok
}

func Bad(n int) {
	fmt.Println("n =", n) // want `fmt\.Println writes to stdout from library package`
	fmt.Printf("%d\n", n) // want `fmt\.Printf writes to stdout from library package`
	print("x")            // want `builtin print writes to stderr from library package`
}

func Out() io.Writer {
	return os.Stdout // want `os\.Stdout referenced from library package`
}

func Errs() io.Writer {
	return os.Stderr // want `os\.Stderr referenced from library package`
}
