// Fixture: the grammar-fold engine is a library package; diagnostics
// and fold traces must go through a caller-supplied io.Writer, never to
// the process streams (engine folds run on worker goroutines inside
// quiet tools and tests).
package engine

import (
	"fmt"
	"io"
	"os"
)

// DumpFold renders fold progress to an explicit writer: ok.
func DumpFold(w io.Writer, chunk int, windows uint64) {
	fmt.Fprintf(w, "chunk %d: %d windows\n", chunk, windows)
}

// debugFold leaks worker-side tracing onto the process streams.
func debugFold(chunk int, windows uint64) {
	fmt.Printf("chunk %d: %d windows\n", chunk, windows) // want `fmt\.Printf writes to stdout from library package`
	fmt.Println("merge done")                            // want `fmt\.Println writes to stdout from library package`
	print("boundary")                                    // want `builtin print writes to stderr from library package`
}

// traceTo defaults the fold trace to stdout instead of requiring one.
func traceTo() io.Writer {
	return os.Stdout // want `os\.Stdout referenced from library package`
}
