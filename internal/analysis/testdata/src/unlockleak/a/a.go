// Fixture: mutexes locked on some path but not unlocked on every return
// path. The positive cases model the early-return leak; the negative
// cases model internal/serve's real session-mutex discipline (lock,
// conditionally unlock-and-return, final unlock; or defer).
package a

import (
	"os"
	"sync"
)

type server struct {
	mu       sync.Mutex
	stateMu  sync.RWMutex
	sessions map[string]int
	closed   bool
}

// Leak: the error path returns with the lock held.
func (s *server) leakOnError(id string) int {
	s.mu.Lock() // want `s\.mu\.Lock\(\) locked here is not unlocked on every return path`
	v, ok := s.sessions[id]
	if !ok {
		return -1
	}
	s.mu.Unlock()
	return v
}

// Leak: one arm of the if unlocks, the fall-off-the-end path does not.
func (s *server) leakAtEnd(cond bool) {
	s.mu.Lock() // want `s\.mu\.Lock\(\) locked here is not unlocked on every return path`
	if cond {
		s.mu.Unlock()
		return
	}
	s.sessions = nil
}

// Leak: read lock forgotten on the early return.
func (s *server) leakRead(id string) int {
	s.stateMu.RLock() // want `s\.stateMu\.RLock\(\) locked here is not unlocked on every return path`
	if s.closed {
		return 0
	}
	v := s.sessions[id]
	s.stateMu.RUnlock()
	return v
}

// OK: the serve.go shape — lock, conditionally unlock+return, fall
// through to the final unlock.
func (s *server) register(id string) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if len(s.sessions) > 100 {
		s.mu.Unlock()
		return false
	}
	s.sessions[id] = 1
	s.mu.Unlock()
	return true
}

// OK: deferred unlock covers every return.
func (s *server) snapshot() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.sessions))
	for k, v := range s.sessions {
		out[k] = v
	}
	return out
}

// OK: the write lock is balanced inside each loop iteration.
func (s *server) sweep(ids []string) {
	for _, id := range ids {
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
	}
}

// OK, deliberately ungated: a function that never unlocks anywhere is
// ownership transfer (the caller releases), not a partial leak.
func (s *server) acquireForCaller() {
	s.mu.Lock()
}

// OK: panic and os.Exit end the path; no unlock needed past them.
func (s *server) guarded(fatal bool) {
	s.mu.Lock()
	if fatal {
		s.mu.Unlock()
		os.Exit(1)
	}
	if s.sessions == nil {
		panic("no sessions")
	}
	s.mu.Unlock()
}

// OK: switch with every arm unlocking before return.
func (s *server) dispatch(kind int) int {
	s.mu.Lock()
	switch kind {
	case 0:
		s.mu.Unlock()
		return 0
	default:
		s.mu.Unlock()
		return 1
	}
}

// Leak: one switch arm forgets the unlock.
func (s *server) dispatchLeak(kind int) int {
	s.mu.Lock() // want `s\.mu\.Lock\(\) locked here is not unlocked on every return path`
	switch kind {
	case 0:
		s.mu.Unlock()
		return 0
	default:
		return 1
	}
}

// OK: a nested literal is its own scope; the closure's lock discipline
// is checked independently (and is balanced here).
func (s *server) withClosure() {
	f := func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
	}
	f()
}

// Leak inside the literal itself.
func (s *server) closureLeak() func() {
	return func() {
		s.mu.Lock() // want `s\.mu\.Lock\(\) locked here is not unlocked on every return path`
		if s.closed {
			return
		}
		s.mu.Unlock()
	}
}
