// Fixture: pooled-grammar shapes — an object pool that carries a mutex
// (the parallel builder circulates reset grammars this way) must move by
// pointer; a value copy forks the lock and the pool's free list.
package a

import "sync"

type grammarPool struct {
	mu   sync.Mutex
	free []int
}

func poolGet(p grammarPool) int { // want `by-value parameter copies lock: field mu: sync\.Mutex`
	return p.free[0]
}

func (p grammarPool) Len() int { // want `by-value receiver copies lock`
	return len(p.free)
}

func poolPut(p *grammarPool, h int) { // pointer: ok
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, h)
}

func forkPool() {
	var p grammarPool
	q := p // want `assignment copies lock value: field mu: sync\.Mutex`
	poolPut(&q, 1)
}
