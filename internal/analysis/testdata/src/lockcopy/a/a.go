// Fixture: copies of lock-bearing values. sync.Mutex directly, structs
// embedding one, and structs holding sync/atomic wrapper types (whose
// noCopy sentinel has Lock/Unlock) must all move by pointer.
package a

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type metrics struct {
	hits atomic.Uint64
}

func lockArg(mu sync.Mutex) { // want `by-value parameter copies lock: sync\.Mutex`
	mu.Lock()
}

func byValue(g guarded) int { // want `by-value parameter copies lock: field mu: sync\.Mutex`
	return g.n
}

func (g guarded) Size() int { // want `by-value receiver copies lock`
	return g.n
}

func produce() guarded { // want `by-value result copies lock`
	return guarded{}
}

func viaPointer(g *guarded) int { // pointer: ok
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func copies() {
	var a guarded
	b := a // want `assignment copies lock value: field mu: sync\.Mutex`
	use(&b)

	var m metrics
	m2 := m // want `assignment copies lock value`
	touch(&m2)

	fresh := guarded{} // constructing a fresh value is not a copy: ok
	use(&fresh)

	discard() // blank assignment still copies; see below

	var list [2]guarded
	for _, g := range list { // want `range element copies lock value`
		use(&g)
	}
	for i := range list { // index iteration: ok
		_ = i
	}
}

func discard() {
	var a guarded
	_ = a // want `assignment copies lock value`
}

func use(*guarded)   {}
func touch(*metrics) {}
