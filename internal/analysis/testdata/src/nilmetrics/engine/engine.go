// Fixture: a miniature grammar-fold engine. Folds carry their metrics
// handle through Chunk/Merge callbacks; the handle must travel as a
// pointer so an unconfigured (nil) handle disables instrumentation
// instead of crashing a worker goroutine mid-fold.
package engine

import "repro/internal/obsv"

// analysis stands in for the per-chunk analysis state.
type analysis struct {
	length uint64
}

// windowFold models a fold closed over its metrics.
type windowFold struct {
	scanned *obsv.Counter
	merged  obsv.Counter // want `field or parameter declared as obsv handle value type`
}

func (f windowFold) chunk(i int, a *analysis) uint64 {
	f.scanned.Inc() // pointer use: ok, nil-safe by contract
	return a.length
}

func (f windowFold) merge(acc, next uint64) uint64 {
	return acc + next
}

// run models the engine driver: per-chunk metrics arrive by pointer.
func run(chunks []*analysis, met *obsv.Counter) uint64 {
	var total uint64
	for i, a := range chunks {
		f := windowFold{scanned: met}
		total = f.merge(total, f.chunk(i, a))
	}
	return total
}

// snapshotCount copies the handle out of the fold to read it.
func snapshotCount(met *obsv.Counter) uint64 {
	v := *met // want `dereferencing obsv handle`
	return v.Value()
}

// chunkWorker passes the handle by value into the worker body.
func chunkWorker(done obsv.Counter) { // want `field or parameter declared as obsv handle value type`
	done.Inc()
}
