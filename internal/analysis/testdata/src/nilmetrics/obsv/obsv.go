// Fixture: a miniature obsv package. The analyzer must enforce the
// nil-safe method contract on exported pointer-receiver methods of
// handle types (structs carrying sync/atomic fields).
package obsv

import "sync/atomic"

// Counter is a metric handle: its methods must tolerate a nil receiver.
type Counter struct {
	n atomic.Uint64
}

// Inc guards with the early-return form: ok.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Value guards with the non-nil-branch form: ok.
func (c *Counter) Value() uint64 {
	if c != nil {
		return c.n.Load()
	}
	return 0
}

// Bump forgets the guard entirely.
func (c *Counter) Bump() {
	c.n.Add(1) // want `method Bump accesses c\.n before checking c != nil`
}

// Scale checks something else first, which proves nothing about c.
func (c *Counter) Scale(k uint64) {
	if k == 0 {
		return
	}
	c.n.Store(c.n.Load() * k) // want `method Scale accesses c\.n before checking c != nil`
}

// reset is unexported; the contract covers only the exported API.
func (c *Counter) reset() {
	c.n.Store(0)
}

// Plain has no atomic state, so it is not a handle: no guard required.
type Plain struct {
	Name string
}

// Label needs no nil check.
func (p *Plain) Label() string {
	return p.Name
}
