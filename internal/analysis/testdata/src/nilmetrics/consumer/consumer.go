// Fixture: a package consuming the real obsv handles. Handles must stay
// behind pointers so a nil handle disables the metric instead of
// crashing or silently splitting its atomic state.
package consumer

import "repro/internal/obsv"

type stats struct {
	hits obsv.Counter // want `field or parameter declared as obsv handle value type`
	ok   *obsv.Counter
}

var global obsv.Counter // want `variable declared as obsv handle value type`

var pool []obsv.Counter // want `variable declared as obsv handle value type`

func count(c obsv.Counter) { // want `field or parameter declared as obsv handle value type`
	c.Inc()
}

func produce() obsv.Counter { // want `field or parameter declared as obsv handle value type`
	return obsv.Counter{} // want `composite literal copies obsv handle type`
}

func fresh() *obsv.Counter {
	return &obsv.Counter{} // addressed literal constructs a pointer: ok
}

func snapshot(c *obsv.Counter) uint64 {
	v := *c // want `dereferencing obsv handle`
	return v.Value()
}

func use(s *stats) {
	s.ok.Inc() // pointer use: ok
}
