// Fixture: arena-shaped structs — dense uint32 handle cursors in front
// of 64-bit atomic counters, the layout the sequitur slab arena uses.
// An odd number of 4-byte handle fields before the counter misaligns it
// on 386; pairing the handles (or leading with the counter) fixes it.
package a

import "sync/atomic"

type arenaStats struct {
	used    uint32
	free    uint32
	appends uint64 // offset 8: handle pair keeps it aligned
}

type skewedArena struct {
	used    uint32
	appends uint64 // offset 4 on 386: misaligned
	free    uint32
}

func bumpArena(a *arenaStats, s *skewedArena) {
	atomic.AddUint64(&a.appends, 1)
	atomic.AddUint64(&s.appends, 1) // want `AddUint64 on field appends at 32-bit offset 4`
}

func drainArena(s *skewedArena) uint64 {
	return atomic.LoadUint64(&s.appends) // want `LoadUint64 on field appends at 32-bit offset 4`
}
