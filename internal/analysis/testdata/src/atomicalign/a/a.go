// Fixture: 64-bit sync/atomic calls on struct fields. Offsets are judged
// under 32-bit (386) sizes, where int64 fields align to 4 bytes.
package a

import "sync/atomic"

type counters struct {
	hits int64 // offset 0: aligned everywhere
	flag uint32
	miss int64 // offset 12 on 386: misaligned
}

type mixed struct {
	pad  uint32
	seen uint64 // offset 4 on 386: misaligned
}

type wrapped struct {
	flag uint32
	n    atomic.Int64 // self-aligning wrapper: ok
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.miss, 1) // want `AddInt64 on field miss at 32-bit offset 12`
}

func read(c *counters, m *mixed) (int64, uint64) {
	a := atomic.LoadInt64(&c.miss)  // want `LoadInt64 on field miss at 32-bit offset 12`
	b := atomic.LoadUint64(&m.seen) // want `LoadUint64 on field seen at 32-bit offset 4`
	return a, b
}

func swap(m *mixed) {
	atomic.StoreUint64(&m.seen, 0)             // want `StoreUint64 on field seen at 32-bit offset 4`
	atomic.CompareAndSwapUint64(&m.seen, 0, 1) // want `CompareAndSwapUint64 on field seen at 32-bit offset 4`
}

func local() {
	var g int64
	atomic.AddInt64(&g, 1) // non-field operand: allocator guarantees alignment
}

func viaWrapper(w *wrapped) int64 {
	return w.n.Load() // wrapper types align themselves: ok
}
