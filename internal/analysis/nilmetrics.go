package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilMetrics enforces the obsv metric-handle contract from both sides:
//
//   - Inside a package named "obsv", every exported method with a pointer
//     receiver on a metric-handle type (a struct carrying sync/atomic
//     fields) must nil-check the receiver before touching its fields.
//     The whole pipeline instruments hot paths through possibly-nil
//     handles, so one missing guard turns "disabled metrics" into a
//     crash.
//   - In every other package, handles must stay behind pointers: value
//     fields, value declarations, copies via dereference, and bare
//     composite literals all defeat the nil-disables-it contract (and
//     copy atomic state).
var NilMetrics = &Analyzer{
	Name: "nilmetrics",
	Doc:  "obsv metric handles: nil-guarded methods inside obsv, pointer-only usage outside",
	Run:  runNilMetrics,
}

func runNilMetrics(pass *Pass) error {
	if pass.Pkg.Name() == "obsv" {
		checkHandleMethodGuards(pass)
	}
	checkHandleUsage(pass)
	return nil
}

// checkHandleMethodGuards verifies that exported pointer-receiver methods
// on handle types access receiver fields only on paths where the
// receiver is known non-nil.
func checkHandleMethodGuards(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
				continue
			}
			recvIdent := fd.Recv.List[0].Names[0]
			recvObj := pass.TypesInfo.Defs[recvIdent]
			if recvObj == nil {
				continue
			}
			ptr, ok := recvObj.Type().(*types.Pointer)
			if !ok || !isMetricHandle(ptr.Elem()) {
				continue
			}
			g := &guardWalker{pass: pass, recv: recvObj, method: fd.Name.Name}
			g.block(fd.Body.List, false)
		}
	}
}

// guardWalker tracks, statement by statement, whether the receiver is
// known non-nil, and reports the first receiver field access on an
// unguarded path.
type guardWalker struct {
	pass     *Pass
	recv     types.Object
	method   string
	reported bool
}

// block walks a statement list; guarded says whether the receiver is
// known non-nil on entry. An early `if recv == nil { return }` upgrades
// the rest of the block.
func (g *guardWalker) block(stmts []ast.Stmt, guarded bool) {
	for _, s := range stmts {
		guarded = g.stmt(s, guarded)
	}
}

// stmt walks one statement and returns the guard state for the
// statements that follow it in the same block.
func (g *guardWalker) stmt(s ast.Stmt, guarded bool) bool {
	switch st := s.(type) {
	case *ast.IfStmt:
		if st.Init != nil {
			g.checkExprs(st.Init, guarded)
		}
		switch g.nilCond(st.Cond) {
		case condRecvIsNil:
			// Inside the body the receiver IS nil.
			g.block(st.Body.List, false)
			if st.Else != nil {
				g.stmt(st.Else, true)
			}
			if terminates(st.Body) {
				return true
			}
			return guarded
		case condRecvNonNil:
			g.block(st.Body.List, true)
			if st.Else != nil {
				g.stmt(st.Else, guarded)
			}
			return guarded
		default:
			g.checkExprs(st.Cond, guarded)
			g.block(st.Body.List, guarded)
			if st.Else != nil {
				g.stmt(st.Else, guarded)
			}
			return guarded
		}
	case *ast.BlockStmt:
		g.block(st.List, guarded)
		return guarded
	case *ast.ForStmt:
		if st.Init != nil {
			g.checkExprs(st.Init, guarded)
		}
		if st.Cond != nil {
			g.checkExprs(st.Cond, guarded)
		}
		if st.Post != nil {
			g.checkExprs(st.Post, guarded)
		}
		g.block(st.Body.List, guarded)
		return guarded
	case *ast.RangeStmt:
		g.checkExprs(st.X, guarded)
		g.block(st.Body.List, guarded)
		return guarded
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		g.checkExprs(st, guarded)
		return guarded
	default:
		g.checkExprs(st, guarded)
		return guarded
	}
}

type nilCondKind int

const (
	condOther nilCondKind = iota
	condRecvIsNil
	condRecvNonNil
)

// nilCond classifies `recv == nil` / `recv != nil` conditions.
func (g *guardWalker) nilCond(e ast.Expr) nilCondKind {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return condOther
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && g.pass.TypesInfo.Uses[id] == g.recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isRecv(x) && isNil(y)) || (isRecv(y) && isNil(x)) {
		if be.Op == token.EQL {
			return condRecvIsNil
		}
		return condRecvNonNil
	}
	return condOther
}

// checkExprs reports receiver field accesses inside n when unguarded.
func (g *guardWalker) checkExprs(n ast.Node, guarded bool) {
	if guarded || g.reported {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if g.reported {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || g.pass.TypesInfo.Uses[id] != g.recv {
			return true
		}
		if s, ok := g.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			g.reported = true
			g.pass.Reportf(sel.Pos(), "method %s accesses %s.%s before checking %s != nil; obsv handle methods must be nil-safe",
				g.method, id.Name, sel.Sel.Name, id.Name)
			return false
		}
		return true
	})
}

// terminates reports whether the block always transfers control out
// (ends in return or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// checkHandleUsage flags by-value use of metric handles outside their
// defining package.
func checkHandleUsage(pass *Pass) {
	foreignHandle := func(t types.Type) bool {
		n, ok := t.(*types.Named)
		return ok && isMetricHandle(t) && n.Obj().Pkg() != pass.Pkg
	}
	// Composite literals directly under & construct a pointer; allow them.
	addressed := map[*ast.CompositeLit]bool{}
	pass.Inspect(func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if cl, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
				addressed[cl] = true
			}
		}
		return true
	})
	checkTypeExpr := func(te ast.Expr, what string) {
		tv, ok := pass.TypesInfo.Types[te]
		if !ok || !tv.IsType() {
			return
		}
		t := tv.Type
		switch u := t.Underlying().(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		}
		if foreignHandle(t) {
			pass.Reportf(te.Pos(), "%s declared as obsv handle value type %s; use *%s so a nil handle disables it",
				what, types.TypeString(t, types.RelativeTo(pass.Pkg)), types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Field:
			if n.Type != nil {
				checkTypeExpr(n.Type, "field or parameter")
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				checkTypeExpr(n.Type, "variable")
			}
		case *ast.CompositeLit:
			if addressed[n] {
				return true
			}
			tv, ok := pass.TypesInfo.Types[n]
			if ok && foreignHandle(tv.Type) {
				pass.Reportf(n.Pos(), "composite literal copies obsv handle type %s by value; construct with & and share the pointer",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			}
		case *ast.StarExpr:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || !tv.IsValue() {
				return true
			}
			xt, ok := pass.TypesInfo.Types[n.X]
			if !ok {
				return true
			}
			if p, ok := xt.Type.Underlying().(*types.Pointer); ok && foreignHandle(p.Elem()) {
				pass.Reportf(n.Pos(), "dereferencing obsv handle %s copies its atomic state and bypasses the nil-safe methods",
					types.TypeString(xt.Type, types.RelativeTo(pass.Pkg)))
			}
		}
		return true
	})
}
