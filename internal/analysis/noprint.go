package analysis

import (
	"go/ast"
	"go/types"
)

// NoPrint forbids writing to the process's standard streams from library
// packages: fmt.Print/Printf/Println, the print/println builtins, and any
// direct reference to os.Stdout or os.Stderr. Only package main (the
// cmd/ and examples/ trees) owns the terminal; libraries take an
// io.Writer so output stays testable and silent by default — the
// convention wppbuild's -progress plumbing depends on.
var NoPrint = &Analyzer{
	Name: "noprint",
	Doc:  "library packages must not print to stdout/stderr; accept an io.Writer instead",
	Run:  runNoPrint,
}

func runNoPrint(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := funcObjOf(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				switch fn.Name() {
				case "Print", "Printf", "Println":
					pass.Reportf(n.Pos(), "fmt.%s writes to stdout from library package %s; print only from cmd/ or take an io.Writer", fn.Name(), pass.Pkg.Name())
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
					pass.Reportf(n.Pos(), "builtin %s writes to stderr from library package %s", b.Name(), pass.Pkg.Name())
				}
			}
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[n.Sel]
			v, ok := obj.(*types.Var)
			if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
				return true
			}
			if v.Name() == "Stdout" || v.Name() == "Stderr" {
				pass.Reportf(n.Pos(), "os.%s referenced from library package %s; take an io.Writer from the caller instead", v.Name(), pass.Pkg.Name())
			}
		}
		return true
	})
	return nil
}
