package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader loads and type-checks packages of one Go module using only the
// standard library: package metadata comes from `go list -json`, module
// packages are type-checked from source in dependency order, and
// imports outside the module (the standard library) are resolved by the
// stdlib source importer. x/tools' go/packages would do all of this, but
// the repository deliberately has no external dependencies.
type Loader struct {
	fset    *token.FileSet
	src     types.ImporterFrom
	done    map[string]*Package
	modPath string
	modDir  string
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	out, err := goTool(dir, "list", "-m", "-json")
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving module: %w", err)
	}
	var mod struct{ Path, Dir string }
	if err := json.Unmarshal(out, &mod); err != nil {
		return nil, fmt.Errorf("analysis: parsing module metadata: %w", err)
	}
	l := &Loader{
		fset:    token.NewFileSet(),
		done:    map[string]*Package{},
		modPath: mod.Path,
		modDir:  mod.Dir,
	}
	srcImp, ok := importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	l.src = srcImp
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// listMeta is the subset of `go list -json` output the loader needs.
type listMeta struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// Load resolves the patterns (e.g. "./...") against the module and
// returns the matched packages, type-checked, in import-path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	out, err := goTool(l.modDir, append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,Imports,Standard"}, patterns...)...)
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w", strings.Join(patterns, " "), err)
	}
	var metas []listMeta
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var m listMeta
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("analysis: parsing go list output: %w", err)
		}
		metas = append(metas, m)
	}
	pkgs := make([]*Package, 0, len(metas))
	for _, m := range metas {
		p, err := l.loadMeta(m)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// loadMeta type-checks the package described by m, loading its module
// dependencies first.
func (l *Loader) loadMeta(m listMeta) (*Package, error) {
	if p, ok := l.done[m.ImportPath]; ok {
		return p, nil
	}
	// Dependencies within the module must be checked first so the
	// importer can hand out their *types.Package.
	for _, imp := range m.Imports {
		if l.inModule(imp) {
			if _, err := l.loadPath(imp); err != nil {
				return nil, err
			}
		}
	}
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(m.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", m.ImportPath, err)
	}
	p := &Package{
		PkgPath: m.ImportPath,
		Name:    m.Name,
		Dir:     m.Dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.done[m.ImportPath] = p
	return p, nil
}

// loadPath loads a single module package by import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if p, ok := l.done[path]; ok {
		return p, nil
	}
	out, err := goTool(l.modDir, "list", "-json=ImportPath,Name,Dir,GoFiles,Imports,Standard", path)
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w", path, err)
	}
	var m listMeta
	if err := json.Unmarshal(out, &m); err != nil {
		return nil, fmt.Errorf("analysis: parsing go list output for %s: %w", path, err)
	}
	return l.loadMeta(m)
}

// LoadDir parses and type-checks all non-test .go files of one directory
// as a single package with the given import path. It exists for fixture
// packages (analysistest) that live outside the module's package tree.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	if p, ok := l.done[pkgPath]; ok {
		return p, nil
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", dir, err)
	}
	p := &Package{
		PkgPath: pkgPath,
		Name:    tpkg.Name(),
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.done[pkgPath] = p
	return p, nil
}

// inModule reports whether path names a package inside the loaded module.
func (l *Loader) inModule(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modDir, 0)
}

// ImportFrom implements types.ImporterFrom: module packages come from the
// loader's own cache (loading them on demand), everything else from the
// standard library's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.done[path]; ok {
		return p.Types, nil
	}
	if l.inModule(path) {
		p, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.src.ImportFrom(path, dir, 0)
}

// goTool runs the go command in dir and returns its stdout.
func goTool(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w: %s", strings.Join(args, " "), err, bytes.TrimSpace(stderr.Bytes()))
	}
	return stdout.Bytes(), nil
}
