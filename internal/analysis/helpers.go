package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deref removes one level of pointer indirection, if any.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isAtomicType reports whether t is a named type from sync/atomic
// (atomic.Uint64, atomic.Int64, atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isMetricHandle reports whether t (a named type) is an obsv-style metric
// handle: a struct declared in a package named "obsv" with at least one
// field of a sync/atomic type (directly or as a slice/array element).
// These are the types whose pointer methods promise nil-safety.
func isMetricHandle(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Name() != "obsv" {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		switch e := ft.Underlying().(type) {
		case *types.Slice:
			ft = e.Elem()
		case *types.Array:
			ft = e.Elem()
		}
		if isAtomicType(ft) {
			return true
		}
	}
	return false
}

// hasLockMethods reports whether *t (or t) has both Lock and Unlock
// methods, the signature sync.Mutex and sync/atomic's noCopy sentinel
// share.
func hasLockMethods(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	var lock, unlock bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Lock":
			lock = true
		case "Unlock":
			unlock = true
		}
	}
	return lock && unlock
}

// lockPath returns a human-readable path to a lock inside t ("sync.Mutex",
// "field mu: sync.Mutex", ...) or "" if t contains no lock. It mirrors
// vet's copylocks reasoning: a type is copy-hostile if it or any field
// (transitively, including array elements) has Lock/Unlock methods.
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	// A pointer to a lock is fine to copy; only value containment counts.
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return ""
	}
	if hasLockMethods(t) {
		return types.TypeString(t, types.RelativeTo(nil))
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := lockPath(f.Type(), seen); p != "" {
				return "field " + f.Name() + ": " + p
			}
		}
	case *types.Array:
		if p := lockPath(u.Elem(), seen); p != "" {
			return "array element: " + p
		}
	}
	return ""
}

// isInternalPkg reports whether path names a package under internal/.
func isInternalPkg(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}

// funcObjOf resolves the called function object of a call expression, or
// nil when the callee is not a simple named function or method.
func funcObjOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether f is the named function from the named
// package path.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name
}
