package analysis

import (
	"go/ast"
	"go/types"
)

// LockCopy flags copies of values that contain a lock: sync.Mutex and
// friends, and — because the sync/atomic wrapper types carry a noCopy
// sentinel with Lock/Unlock methods — any struct holding atomic.Uint64
// et al., which includes every obsv metric handle. A copied lock guards
// nothing, and a copied atomic splits one counter into two.
//
// The check is deliberately conservative (a subset of vet's copylocks):
// it reports by-value receivers, parameters, and results in function
// signatures, assignments whose right-hand side re-copies an existing
// lock-bearing value, and range loops whose element copies one.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "values containing sync or sync/atomic state must not be copied",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) error {
	checkSig := func(ft *ast.FuncType, recv *ast.FieldList) {
		var lists []*ast.FieldList
		if recv != nil {
			lists = append(lists, recv)
		}
		if ft.Params != nil {
			lists = append(lists, ft.Params)
		}
		if ft.Results != nil {
			lists = append(lists, ft.Results)
		}
		for _, fl := range lists {
			for _, field := range fl.List {
				tv, ok := pass.TypesInfo.Types[field.Type]
				if !ok || !tv.IsType() {
					continue
				}
				if p := lockPath(tv.Type, nil); p != "" {
					pass.Reportf(field.Type.Pos(), "by-value %s copies lock: %s; pass a pointer",
						fieldRole(fl, recv, ft), p)
				}
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkSig(n.Type, n.Recv)
		case *ast.FuncLit:
			checkSig(n.Type, nil)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if !copiesExisting(rhs) {
					continue
				}
				tv, ok := pass.TypesInfo.Types[rhs]
				if !ok || !tv.IsValue() {
					continue
				}
				if p := lockPath(tv.Type, nil); p != "" {
					pass.Reportf(n.Pos(), "assignment copies lock value: %s", p)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			// A := range defines its value ident, so its type lives in
			// Defs; an = range assigns to an existing expression, whose
			// type lives in Types.
			var t types.Type
			if id, ok := n.Value.(*ast.Ident); ok {
				if id.Name == "_" {
					return true
				}
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					t = obj.Type()
				}
			}
			if t == nil {
				if tv, ok := pass.TypesInfo.Types[n.Value]; ok {
					t = tv.Type
				}
			}
			if p := lockPath(t, nil); p != "" {
				pass.Reportf(n.Value.Pos(), "range element copies lock value: %s; iterate by index", p)
			}
		}
		return true
	})
	return nil
}

// copiesExisting reports whether e reads an existing value (identifier,
// field, element, or dereference) rather than constructing a fresh one
// (composite literal, call, conversion), mirroring copylocks' notion of
// a copy.
func copiesExisting(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.UnaryExpr:
		return copiesExisting(e.X)
	}
	return false
}

// fieldRole names the position of a flagged signature field.
func fieldRole(fl *ast.FieldList, recv *ast.FieldList, ft *ast.FuncType) string {
	switch {
	case fl == recv:
		return "receiver"
	case fl == ft.Results:
		return "result"
	default:
		return "parameter"
	}
}
