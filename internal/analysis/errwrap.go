package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrap flags fmt.Errorf calls in internal/... packages that format an
// error argument without %w. Un-wrapped errors break errors.Is/As
// chains, which the pipeline's decoders rely on to distinguish
// truncation (io.ErrUnexpectedEOF) from corruption at every layer of a
// nested artifact decode.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf in internal packages must wrap error arguments with %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	if !isInternalPkg(pass.PkgPath) {
		return nil
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		if !isPkgFunc(funcObjOf(pass.TypesInfo, call), "fmt", "Errorf") {
			return true
		}
		ftv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || ftv.Value == nil {
			return true // non-constant format; nothing to prove
		}
		format := constStringValue(ftv)
		if strings.Contains(format, "%w") {
			return true
		}
		for _, arg := range call.Args[1:] {
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Type == nil {
				continue
			}
			if types.Implements(tv.Type, errType) && !isNilConst(tv) {
				pass.Reportf(arg.Pos(), "fmt.Errorf formats error argument without %%w; wrap it so errors.Is/As keep working")
				return true
			}
		}
		return true
	})
	return nil
}

// constStringValue extracts the string value of a constant expression.
func constStringValue(tv types.TypeAndValue) string {
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

func isNilConst(tv types.TypeAndValue) bool {
	_, ok := tv.Type.(*types.Basic)
	return ok && tv.IsNil()
}
