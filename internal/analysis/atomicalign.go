package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicAlign flags 64-bit sync/atomic operations on struct fields whose
// guaranteed alignment is less than 8 bytes on 32-bit platforms. The Go
// memory model only promises 64-bit alignment for the first word of an
// allocated struct; a uint64 placed after narrower fields faults (or
// silently tears) under atomic access on 386/ARM. The fix is mechanical:
// move the field first, or switch to the self-aligning atomic.Uint64 /
// atomic.Int64 wrapper types the obsv package uses.
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit sync/atomic operands must be 8-byte aligned on 32-bit targets",
	Run:  runAtomicAlign,
}

// atomic64Funcs are the sync/atomic functions that require an aligned
// 64-bit operand as their first argument.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

func runAtomicAlign(pass *Pass) error {
	// Offsets are computed under 32-bit sizes: that is the platform where
	// misalignment bites.
	sizes := types.SizesFor("gc", "386")
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := funcObjOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomic64Funcs[fn.Name()] {
			return true
		}
		addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return true
		}
		sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		off, known := fieldOffset32(sizes, selection)
		if known && off%8 != 0 {
			wrapper := "Int64"
			if strings.HasSuffix(fn.Name(), "Uint64") {
				wrapper = "Uint64"
			}
			pass.Reportf(sel.Pos(),
				"%s on field %s at 32-bit offset %d (not 8-byte aligned); move the field first in the struct or use atomic.%s",
				fn.Name(), sel.Sel.Name, off, wrapper)
		}
		return true
	})
	return nil
}

// fieldOffset32 computes the byte offset of the selected field within its
// outermost struct under 32-bit sizes, following the selection's
// (possibly promoted) field index path.
func fieldOffset32(sizes types.Sizes, sel *types.Selection) (int64, bool) {
	t := deref(sel.Recv())
	var off int64
	for _, idx := range sel.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes.Offsetsof(fields)[idx]
		t = deref(fields[idx].Type())
	}
	return off, true
}
