package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnlockLeak flags mutexes that are locked but not released on every
// return path: the classic early-return leak, where a function does
//
//	s.mu.Lock()
//	if cond { return err } // forgot s.mu.Unlock()
//	s.mu.Unlock()
//
// It models the lock discipline internal/serve uses for its session
// mutex: lock, conditionally unlock-and-return, fall through to a final
// unlock, or `defer mu.Unlock()` right after locking.
//
// The analysis walks each function body path-sensitively with a held-lock
// set: Lock/RLock adds the receiver, Unlock/RUnlock removes it, a
// deferred unlock satisfies the lock on every later path, and each
// return (explicit or the fall-off-the-end one) must see an empty held
// set. Branch statements analyze each arm separately; loops and arms
// that terminate (return/panic/break) do not rejoin.
//
// Functions that never unlock a given mutex at all are deliberately not
// flagged for it: locking without any local unlock is how ownership
// transfer looks (lock here, release in the caller), and flagging it
// would bury real leaks in noise. The leak this catches is the partial
// one — released on some paths, forgotten on others.
var UnlockLeak = &Analyzer{
	Name: "unlockleak",
	Doc:  "mutexes locked on some path must be unlocked on every return path",
	Run:  runUnlockLeak,
}

func runUnlockLeak(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		default:
			return true
		}
		if body != nil {
			checkFuncLocks(pass, body)
		}
		return true // nested function literals are checked independently
	})
	return nil
}

// lockOp classifies a call as a lock-discipline operation on a key.
type lockOp struct {
	key     string // receiver path + read/write class, e.g. "s.mu/w"
	acquire bool
}

// lockCall recognizes m.Lock()/m.Unlock()/m.RLock()/m.RUnlock() on a
// sync.Mutex or sync.RWMutex reachable through a stable ident/selector
// chain. Anything else (method values, locks in maps, wrapper methods)
// is not tracked.
func lockCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return lockOp{}, false
	}
	var class string
	var acquire bool
	switch sel.Sel.Name {
	case "Lock":
		class, acquire = "w", true
	case "Unlock":
		class, acquire = "w", false
	case "RLock":
		class, acquire = "r", true
	case "RUnlock":
		class, acquire = "r", false
	default:
		return lockOp{}, false
	}
	if !isSyncMutex(pass.TypesInfo.Types[sel.X].Type) {
		return lockOp{}, false
	}
	path, ok := exprPath(sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: path + "/" + class, acquire: acquire}, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprPath flattens an ident/selector chain ("s.state.mu") into a stable
// key; it fails on anything whose identity can change between
// statements (calls, index expressions).
func exprPath(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return exprPath(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprPath(e.X)
		}
	}
	return "", false
}

// lockChecker carries one function body's analysis state.
type lockChecker struct {
	pass *Pass
	// unlocked gates reporting: keys this function unlocks somewhere.
	unlocked map[string]bool
	// deferred keys are released at every return once registered.
	deferred map[string]bool
	// leaks maps the Lock() position to its key, deduplicating reports.
	leaks map[token.Pos]string
}

// held maps a lock key to the position of the Lock() that acquired it.
type heldLocks map[string]token.Pos

func (h heldLocks) clone() heldLocks {
	c := make(heldLocks, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func checkFuncLocks(pass *Pass, body *ast.BlockStmt) {
	c := &lockChecker{
		pass:     pass,
		unlocked: map[string]bool{},
		deferred: map[string]bool{},
		leaks:    map[token.Pos]string{},
	}
	// Pre-scan for the reporting gate: which keys does this function ever
	// unlock (including deferred unlocks inside nested literals — a
	// cleanup closure releasing the lock counts as local discipline).
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := lockCall(pass, call); ok && !op.acquire {
				c.unlocked[op.key] = true
			}
		}
		return true
	})
	final, terminated := c.stmts(body.List, heldLocks{})
	if !terminated {
		c.leakAll(final) // falling off the end is a return
	}
	for pos, key := range c.leaks {
		c.pass.Reportf(pos, "%s locked here is not unlocked on every return path", lockName(key))
	}
}

// lockName renders a key back to source-ish form for the message.
func lockName(key string) string {
	path := key[:len(key)-2]
	if key[len(key)-1] == 'r' {
		return path + ".RLock()"
	}
	return path + ".Lock()"
}

func (c *lockChecker) leakAll(held heldLocks) {
	for key, pos := range held {
		if c.unlocked[key] && !c.deferred[key] {
			c.leaks[pos] = key
		}
	}
}

// stmts walks a statement list with the given held set, returning the
// held set at its end and whether control definitely leaves the list
// (return, panic, branch) before reaching it.
func (c *lockChecker) stmts(list []ast.Stmt, held heldLocks) (heldLocks, bool) {
	for _, s := range list {
		var terminated bool
		held, terminated = c.stmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (c *lockChecker) stmt(s ast.Stmt, held heldLocks) (heldLocks, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, ok := lockCall(c.pass, call); ok {
				held = held.clone()
				if op.acquire {
					held[op.key] = call.Pos()
				} else {
					delete(held, op.key)
				}
				return held, false
			}
			if isTerminalCall(call) {
				return held, true
			}
		}
	case *ast.DeferStmt:
		if op, ok := lockCall(c.pass, s.Call); ok && !op.acquire {
			c.deferred[op.key] = true
			held = held.clone()
			delete(held, op.key)
		}
	case *ast.ReturnStmt:
		c.leakAll(held)
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto: conservative — the paths rejoin somewhere
		// we do not model, so stop tracking this one.
		return held, true
	case *ast.BlockStmt:
		return c.stmts(s.List, held)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	case *ast.IfStmt:
		thenHeld, thenTerm := c.stmts(s.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = c.stmt(s.Else, held.clone())
		}
		return joinBranches([]heldLocks{thenHeld, elseHeld}, []bool{thenTerm, elseTerm})
	case *ast.ForStmt:
		// One abstract iteration: a body that leaks per-iteration also
		// leaks across the loop; a balanced body leaves held unchanged.
		bodyHeld, bodyTerm := c.stmts(s.Body.List, held.clone())
		return joinBranches([]heldLocks{held, bodyHeld}, []bool{false, bodyTerm})
	case *ast.RangeStmt:
		bodyHeld, bodyTerm := c.stmts(s.Body.List, held.clone())
		return joinBranches([]heldLocks{held, bodyHeld}, []bool{false, bodyTerm})
	case *ast.SwitchStmt:
		return c.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		return c.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		var states []heldLocks
		var terms []bool
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			h, t := c.stmts(comm.Body, held.clone())
			states = append(states, h)
			terms = append(terms, t)
		}
		if len(states) == 0 {
			return held, true // empty select blocks forever
		}
		return joinBranches(states, terms)
	}
	return held, false
}

// caseClauses analyzes each case arm from the same pre-state. A switch
// with no default may execute no arm, so the pre-state joins in too.
func (c *lockChecker) caseClauses(body *ast.BlockStmt, held heldLocks) (heldLocks, bool) {
	states := []heldLocks{}
	terms := []bool{}
	hasDefault := false
	for _, cc := range body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		h, t := c.stmts(clause.Body, held.clone())
		states = append(states, h)
		terms = append(terms, t)
	}
	if !hasDefault {
		states = append(states, held)
		terms = append(terms, false)
	}
	if len(states) == 0 {
		return held, false
	}
	return joinBranches(states, terms)
}

// joinBranches merges the fall-through states of sibling branches into
// the union of their held sets; branches that terminated already checked
// their own paths and do not rejoin. All branches terminating terminates
// the join.
func joinBranches(states []heldLocks, terms []bool) (heldLocks, bool) {
	merged := heldLocks{}
	any := false
	for i, h := range states {
		if terms[i] {
			continue
		}
		any = true
		for k, v := range h {
			if _, ok := merged[k]; !ok {
				merged[k] = v
			}
		}
	}
	if !any {
		return heldLocks{}, true
	}
	return merged, false
}

// isTerminalCall recognizes calls that never return, so statements after
// them are not on any path: panic and the os.Exit family.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fun.Sel.Name == "Exit") ||
				(pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"))
		}
	}
	return false
}
