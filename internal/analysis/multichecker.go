package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// All returns the repository's analyzer suite in report order.
func All() []*Analyzer {
	return []*Analyzer{NilMetrics, AtomicAlign, LockCopy, UnlockLeak, ErrWrap, NoPrint}
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Finding is one diagnostic resolved to a printable position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Run loads the packages matching patterns in the module containing dir
// and applies every analyzer to every package, returning the findings
// sorted by position. It is the multichecker behind cmd/wppcheck.
func Run(dir string, analyzers []*Analyzer, patterns []string) ([]Finding, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.PkgPath,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
