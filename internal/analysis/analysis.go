// Package analysis is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library so the repository stays dependency-free. It supplies the
// Analyzer/Pass/Diagnostic model, a module-aware package loader
// (load.go), and the repository's custom analyzers encoding the
// invariants the whole-program-path pipeline relies on:
//
//   - nilmetrics: obsv metric handles honor the nil-safe method contract
//   - atomicalign: 64-bit sync/atomic fields are 8-byte aligned on 32-bit
//   - lockcopy: values containing locks (or atomics) are never copied
//   - unlockleak: locked mutexes are released on every return path
//   - errwrap: fmt.Errorf in internal/... wraps error args with %w
//   - noprint: library packages never print to the process's stdout
//
// cmd/wppcheck drives all of them over the module; the analysistest
// subpackage runs a single analyzer over want-comment fixtures.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string
}

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in reports and -only filters.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run inspects one package via the Pass and reports findings.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path (Pkg.Path()).
	PkgPath string
	// Report receives each diagnostic as it is found.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Category: p.Analyzer.Name})
}

// Inspect walks every file in the pass in depth-first order, calling fn
// for each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
