package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestNilMetrics(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NilMetrics,
		"nilmetrics/obsv", "nilmetrics/consumer", "nilmetrics/engine")
}

func TestAtomicAlign(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.AtomicAlign, "atomicalign/a")
}

func TestLockCopy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LockCopy, "lockcopy/a")
}

func TestUnlockLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.UnlockLeak, "unlockleak/a")
}

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.ErrWrap, "errwrap/internal/a")
}

func TestNoPrint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoPrint,
		"noprint/a", "noprint/main", "noprint/engine")
}

func TestByName(t *testing.T) {
	got, err := analysis.ByName([]string{"errwrap", "noprint"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "errwrap" || got[1].Name != "noprint" {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := analysis.ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}

func TestAllHaveDocs(t *testing.T) {
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
	}
}
