// Package mmapio provides read-only memory-mapped file access with a
// portable fallback. On linux, Open maps the file with mmap(2) so large
// artifacts can be indexed without copying their bytes through the heap;
// elsewhere (and for empty files, which mmap rejects) it falls back to
// os.ReadFile. Callers never branch on the platform: Bytes is valid
// either way, and Mapped reports which path was taken.
//
// The mapping is private and read-only. The bytes must not be written
// through, and Close invalidates them — callers must not retain slices
// of Bytes past Close. Decoders that materialize structures from mapped
// bytes copy what they keep, so releasing the mapping after
// materialization is always safe.
package mmapio

import "fmt"

// Data is one open file's contents: either a live mmap region or a heap
// copy, depending on platform and file size.
type Data struct {
	b      []byte
	mapped bool
	closed bool
}

// Bytes returns the file contents. The slice is read-only and valid
// only until Close.
func (d *Data) Bytes() []byte { return d.b }

// Len reports the content length in bytes.
func (d *Data) Len() int { return len(d.b) }

// Mapped reports whether the contents are a live memory mapping (true)
// or a heap copy (false).
func (d *Data) Mapped() bool { return d.mapped }

// Close releases the mapping (or drops the copy). Bytes from this Data
// must not be used afterwards. Close is idempotent.
func (d *Data) Close() error {
	if d == nil || d.closed {
		return nil
	}
	d.closed = true
	b := d.b
	d.b = nil
	if !d.mapped {
		return nil
	}
	if err := unmap(b); err != nil {
		return fmt.Errorf("mmapio: unmap: %w", err)
	}
	return nil
}

// Open opens path read-only: mmap where supported, a whole-file read
// otherwise. The caller owns the returned Data and must Close it.
func Open(path string) (*Data, error) {
	return open(path)
}
