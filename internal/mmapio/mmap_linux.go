//go:build linux

package mmapio

import (
	"fmt"
	"os"
	"syscall"
)

// open maps path read-only with a private mapping. Empty files cannot
// be mapped (mmap rejects zero length), so they yield an empty unmapped
// Data. The file descriptor is closed once the mapping exists; the
// mapping keeps the pages alive.
func open(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmapio: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mmapio: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		return &Data{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapio: %s: file too large to map (%d bytes)", path, size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Some filesystems refuse mmap; fall back to a plain read rather
		// than failing an open the caller cannot distinguish.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, fmt.Errorf("mmapio: mmap %s: %w", path, err)
		}
		return &Data{b: data}, nil
	}
	return &Data{b: b, mapped: true}, nil
}

func unmap(b []byte) error { return syscall.Munmap(b) }
