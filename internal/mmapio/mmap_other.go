//go:build !linux

package mmapio

import (
	"fmt"
	"os"
)

// open reads the whole file; platforms without the mmap fast path get
// identical semantics through a heap copy.
func open(path string) (*Data, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mmapio: %w", err)
	}
	return &Data{b: data}, nil
}

// unmap is unreachable in the fallback build (no Data is ever mapped)
// but must exist for Close.
func unmap([]byte) error { return nil }
