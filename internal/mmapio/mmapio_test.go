package mmapio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte("whole program paths "), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Bytes(), want) {
		t.Fatalf("Bytes mismatch: %d bytes, want %d", d.Len(), len(want))
	}
	if d.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(want))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if d.Bytes() != nil {
		t.Fatal("Bytes non-nil after Close")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
	if d.Mapped() {
		t.Fatal("empty file reported as mapped")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
}

func TestCloseNil(t *testing.T) {
	var d *Data
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
