package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sequitur"
)

// lenFold counts events per chunk — a minimal fold for source plumbing.
type lenFold struct{}

func (lenFold) Chunk(_ int, a *Analysis) uint64 { return a.Length() }
func (lenFold) Merge(acc, next uint64) uint64   { return acc + next }

// failSource serves real snapshots but fails on the marked indices.
type failSource struct {
	snaps []*sequitur.Snapshot
	bad   map[int]error
}

func (s failSource) NumChunks() int { return len(s.snaps) }
func (s failSource) Chunk(i int) (*sequitur.Snapshot, error) {
	if err := s.bad[i]; err != nil {
		return nil, err
	}
	return s.snaps[i], nil
}

func testSnaps(t *testing.T, n int) []*sequitur.Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	snaps := make([]*sequitur.Snapshot, n)
	for i := range snaps {
		snaps[i] = buildSnap(t, randSyms(rng, 50+10*i, 4))
	}
	return snaps
}

// TestRunSourceMatchesRun pins the refactor: the slice-backed source
// path computes exactly what the original Run did, at any worker count.
func TestRunSourceMatchesRun(t *testing.T) {
	snaps := testSnaps(t, 5)
	want := Run(snaps, 1, lenFold{})
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got, err := RunSource(SliceSource(snaps), workers, lenFold{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: RunSource = %d, Run = %d", workers, got, want)
		}
	}
}

// TestMapSourceOrder: results arrive in chunk order regardless of
// scheduling.
func TestMapSourceOrder(t *testing.T) {
	snaps := testSnaps(t, 8)
	want, err := MapSource(SliceSource(snaps), 1, func(i int, a *Analysis) uint64 { return a.Length() * uint64(i+1) })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := MapSource(SliceSource(snaps), workers, func(i int, a *Analysis) uint64 { return a.Length() * uint64(i+1) })
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: %v, want %v", workers, got, want)
		}
	}
}

// TestSourceErrorDeterministic: with several failing chunks, the
// lowest-index error wins at every worker count.
func TestSourceErrorDeterministic(t *testing.T) {
	snaps := testSnaps(t, 6)
	src := failSource{snaps: snaps, bad: map[int]error{
		2: fmt.Errorf("chunk two broke"),
		4: fmt.Errorf("chunk four broke"),
	}}
	for _, workers := range []int{1, 2, 4, 8} {
		_, err := RunSource(src, workers, lenFold{})
		if err == nil || err.Error() != "chunk two broke" {
			t.Fatalf("workers=%d: err = %v, want lowest-index chunk error", workers, err)
		}
	}
}

// TestRunSourceEmpty: an empty source folds to the zero value without
// error.
func TestRunSourceEmpty(t *testing.T) {
	got, err := RunSource(SliceSource(nil), 4, lenFold{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("empty source folded to %d", got)
	}
}

// TestSourceErrorIsWrappable: errors flow through unchanged so callers
// can errors.As/Is on them.
func TestSourceErrorIsWrappable(t *testing.T) {
	sentinel := errors.New("sentinel")
	src := failSource{snaps: testSnaps(t, 3), bad: map[int]error{1: fmt.Errorf("wrapped: %w", sentinel)}}
	_, err := RunSource(src, 2, lenFold{})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}
