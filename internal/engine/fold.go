package engine

import (
	"runtime"

	"repro/internal/sequitur"
)

// Fold is one analysis expressed over the engine: a per-chunk pass that
// reduces one grammar's Analysis to a partial result, and an associative
// merge that combines partial results in chunk order. Chunk must be a
// pure function of (i, a) — it runs concurrently across chunks — while
// Merge runs sequentially, left to right, so results are identical for
// every worker count.
type Fold[R any] interface {
	// Chunk reduces chunk i's analysis to a partial result.
	Chunk(i int, a *Analysis) R
	// Merge folds the next chunk's partial result into the accumulator
	// and returns the new accumulator. It is called in chunk order,
	// starting from Chunk(0)'s result.
	Merge(acc, next R) R
}

// Workers normalizes a worker-count option: non-positive means
// GOMAXPROCS.
func Workers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Map builds each snapshot's Analysis and applies fn to it on `workers`
// goroutines (normalized by Workers), returning results in chunk order.
// fn must only write state owned by index i. It is MapSource over an
// in-memory slice, whose chunk access cannot fail.
func Map[R any](snaps []*sequitur.Snapshot, workers int, fn func(i int, a *Analysis) R) []R {
	out, _ := MapSource(SliceSource(snaps), workers, fn)
	return out
}

// Run executes a Fold over the snapshot sequence: per-chunk passes in
// parallel via Map, then a sequential in-order merge. With a single
// snapshot the result is Chunk(0, ...) — the monolithic case is the
// one-chunk special case of the same engine. It is RunSource over an
// in-memory slice, whose chunk access cannot fail.
func Run[R any](snaps []*sequitur.Snapshot, workers int, f Fold[R]) R {
	out, _ := RunSource(SliceSource(snaps), workers, f)
	return out
}

// Boundary is one chunk's contribution to cross-seam window counting:
// its expanded length plus the materialized head and tail regions, each
// at most `width` events (fewer only when the chunk itself is shorter).
type Boundary struct {
	// Length is the chunk's expanded event count.
	Length uint64
	// Head holds the chunk's first min(Length, width) events.
	Head []uint64
	// Tail holds the chunk's last min(Length, width) events.
	Tail []uint64
}

// Boundary materializes the chunk's boundary regions of the given width.
// Width is the longest window length minus one: a window crossing a seam
// touches at most width events on either side.
func (a *Analysis) Boundary(width int) Boundary {
	b := Boundary{Length: a.Length()}
	k := uint64(width)
	if k > b.Length {
		k = b.Length
	}
	if k > 0 {
		b.Head = a.Collect(0, 0, k, nil)
		b.Tail = a.Collect(0, b.Length-k, k, nil)
	}
	return b
}

// CrossingWindows visits, for every chunk i, each occurrence of a
// length-l window that starts inside chunk i but extends past its end
// into later chunks. Each crossing occurrence's start position lies in
// exactly one chunk, so it is visited exactly once, with implicit weight
// 1 (boundary regions are raw positions, not grammar-weighted). The
// window slice is reused across calls; visitors must copy if they
// retain it. Boundaries must have been built with width >= l-1.
func CrossingWindows(bounds []Boundary, l int, visit func(window []uint64)) {
	if l < 2 {
		return // a 1-window cannot cross a boundary
	}
	stream := make([]uint64, 0, 2*l)
	for i, b := range bounds {
		if b.Length == 0 {
			continue
		}
		t := uint64(len(b.Tail)) // tail covers all crossing start positions: t >= min(Length, l-1)
		// stream = tail of chunk i ++ up to l-1 following events.
		stream = append(stream[:0], b.Tail...)
		need := l - 1
		for j := i + 1; j < len(bounds) && need > 0; j++ {
			h := bounds[j].Head
			if len(h) > need {
				h = h[:need]
			}
			stream = append(stream, h...)
			need -= len(h)
		}
		// Window starts at stream index s, crossing iff it extends past
		// the chunk end (s+l > t) while starting inside it (s < t).
		for s := uint64(0); s < t; s++ {
			if s+uint64(l) <= t {
				continue // fully inside chunk i: already grammar-counted
			}
			if s+uint64(l) > uint64(len(stream)) {
				break // runs past the end of the trace
			}
			visit(stream[s : s+uint64(l)])
		}
	}
}
