package engine

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/sequitur"
)

// buildSnap compresses the symbols with SEQUITUR and returns the
// snapshot.
func buildSnap(t *testing.T, syms []uint64) *sequitur.Snapshot {
	t.Helper()
	g := sequitur.New()
	for _, v := range syms {
		g.Append(v)
	}
	snap := g.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	return snap
}

func randSyms(rng *rand.Rand, n, alphabet int) []uint64 {
	syms := make([]uint64, n)
	for i := range syms {
		syms[i] = uint64(rng.Intn(alphabet))
	}
	return syms
}

func TestAnalysisLengthAndUses(t *testing.T) {
	syms := []uint64{1, 2, 1, 2, 1, 2, 3}
	a := NewAnalysis(buildSnap(t, syms))
	if a.Length() != uint64(len(syms)) {
		t.Fatalf("Length() = %d, want %d", a.Length(), len(syms))
	}
	// Summing terminal occurrences weighted by rule uses must equal the
	// trace length: every trace position is covered exactly once.
	var total uint64
	a.Terminals(func(_, uses uint64) { total += uses })
	if total != uint64(len(syms)) {
		t.Fatalf("weighted terminal count %d, want %d", total, len(syms))
	}
}

func TestCollectMatchesDirectSlicing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	syms := randSyms(rng, 300, 4)
	a := NewAnalysis(buildSnap(t, syms))
	for trial := 0; trial < 100; trial++ {
		start := uint64(rng.Intn(len(syms)))
		length := uint64(rng.Intn(len(syms)-int(start)) + 1)
		got := a.Collect(0, start, length, nil)
		want := syms[start : start+length]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Collect(0,%d,%d) = %v, want %v", start, length, got, want)
		}
	}
}

// scanWindows counts windows by brute force on the expanded sequence.
func scanWindows(syms []uint64, l int) map[string]uint64 {
	counts := make(map[string]uint64)
	for i := 0; i+l <= len(syms); i++ {
		counts[string(AppendKey(nil, syms[i:i+l]))]++
	}
	return counts
}

func TestCountWindowsMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 17, 250} {
		syms := randSyms(rng, n, 3)
		a := NewAnalysis(buildSnap(t, syms))
		for l := 1; l <= 6; l++ {
			got := make(map[string]uint64)
			a.CountWindows(l, got)
			want := scanWindows(syms, l)
			if len(want) == 0 {
				want = map[string]uint64{}
			}
			if len(got) == 0 {
				got = map[string]uint64{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d l=%d: CountWindows disagrees with scan: got %d keys, want %d", n, l, len(got), len(want))
			}
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	window := []uint64{0, 1, 1 << 40, 1<<61 - 1}
	key := AppendKey(nil, window)
	if len(key) != len(window)*8 {
		t.Fatalf("key length %d, want %d", len(key), len(window)*8)
	}
	if got := DecodeKey(string(key)); !reflect.DeepEqual(got, window) {
		t.Fatalf("DecodeKey round-trip = %v, want %v", got, window)
	}
}

// sumFold sums chunk lengths; used to check Run's ordering and the
// Map/Run worker invariance.
type sumFold struct{}

func (sumFold) Chunk(_ int, a *Analysis) []uint64 { return []uint64{a.Length()} }
func (sumFold) Merge(acc, next []uint64) []uint64 { return append(acc, next...) }

func TestRunMergesInChunkOrderAtAnyWorkerCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var snaps []*sequitur.Snapshot
	var want []uint64
	for i := 0; i < 9; i++ {
		n := rng.Intn(40) + 1
		snaps = append(snaps, buildSnap(t, randSyms(rng, n, 3)))
		want = append(want, uint64(n))
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got := Run(snaps, workers, sumFold{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Run merged %v, want %v", workers, got, want)
		}
	}
}

func TestRunEmptyReturnsZero(t *testing.T) {
	if got := Run(nil, 4, sumFold{}); got != nil {
		t.Fatalf("Run over zero chunks = %v, want zero value", got)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestBoundaryRegions(t *testing.T) {
	syms := randSyms(rand.New(rand.NewSource(5)), 50, 4)
	a := NewAnalysis(buildSnap(t, syms))
	b := a.Boundary(7)
	if b.Length != 50 {
		t.Fatalf("Boundary.Length = %d", b.Length)
	}
	if !reflect.DeepEqual(b.Head, syms[:7]) || !reflect.DeepEqual(b.Tail, syms[43:]) {
		t.Fatalf("Boundary regions wrong: head %v tail %v", b.Head, b.Tail)
	}
	// Width beyond the chunk clamps to the whole chunk.
	wide := a.Boundary(100)
	if !reflect.DeepEqual(wide.Head, syms) || !reflect.DeepEqual(wide.Tail, syms) {
		t.Fatal("oversized Boundary width must clamp to chunk length")
	}
}

// TestCrossingWindowsMatchesScan splits one sequence into chunks and
// checks that per-chunk CountWindows plus CrossingWindows reproduces the
// monolithic window counts exactly — the engine's chunk-seam invariant.
func TestCrossingWindowsMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	syms := randSyms(rng, 200, 3)
	cuts := [][]int{
		{100},
		{50, 120},
		{1, 2, 3, 199},
		{64, 128, 192},
	}
	for _, cut := range cuts {
		var snaps []*sequitur.Snapshot
		prev := 0
		for _, c := range append(cut, len(syms)) {
			snaps = append(snaps, buildSnap(t, syms[prev:c]))
			prev = c
		}
		for l := 2; l <= 6; l++ {
			counts := make(map[string]uint64)
			var bounds []Boundary
			for _, snap := range snaps {
				a := NewAnalysis(snap)
				a.CountWindows(l, counts)
				bounds = append(bounds, a.Boundary(l-1))
			}
			CrossingWindows(bounds, l, func(window []uint64) {
				counts[string(AppendKey(nil, window))]++
			})
			want := scanWindows(syms, l)
			if !reflect.DeepEqual(counts, want) {
				t.Fatalf("cuts=%v l=%d: chunked counts disagree with scan", cut, l)
			}
		}
	}
}
