// Package engine is the single grammar-fold analysis engine behind every
// compressed-trace analysis. A whole program path is a sequence of
// SEQUITUR grammars (one for a monolithic WPP, one per chunk for a
// chunked WPP); every analysis — hot-subpath search, path profiles,
// spectra — is a Fold: a bottom-up pass over each grammar DAG with
// per-rule memoization, plus an order-preserving merge across grammars,
// with boundary windows materialized for analyses whose windows slide
// across chunk seams.
//
// Expressing analyses this way (following how Kini et al. frame race
// detection as a generic pass over an SLP grammar) means a new analysis
// implements one Fold and inherits chunking, parallelism, and
// determinism; it does not re-implement traversal. The engine guarantees
// that for a fixed chunk sequence the result is identical for every
// worker count: per-chunk passes are pure functions of their snapshot,
// and merging is sequential in chunk order.
package engine

import (
	"encoding/binary"
	"sort"

	"repro/internal/sequitur"
)

// Analysis caches the per-grammar derived data every fold shares: the
// memoized bottom-up quantities of one snapshot's rule DAG.
type Analysis struct {
	// Snap is the grammar under analysis.
	Snap *sequitur.Snapshot
	// ExpLen[r] is the expansion length of rule r.
	ExpLen []uint64
	// Uses[r] is the number of occurrences of rule r in the derivation
	// tree (rule 0 occurs once).
	Uses []uint64
	// CumLens[r][j] is the cumulative expansion length of rule r's RHS
	// after symbol j (CumLens[r][0] == 0).
	CumLens [][]uint64
}

// NewAnalysis computes the memoized per-rule data for one snapshot in a
// single bottom-up pass.
func NewAnalysis(snap *sequitur.Snapshot) *Analysis {
	a := &Analysis{Snap: snap}
	n := len(a.Snap.Rules)
	a.ExpLen = a.Snap.ExpandedLen()
	a.Uses = make([]uint64, n)
	if n > 0 {
		a.Uses[0] = 1
		for _, r := range a.topoOrder() {
			for _, s := range a.Snap.Rules[r] {
				if s.IsRule() {
					a.Uses[s.Rule] += a.Uses[r]
				}
			}
		}
	}
	a.CumLens = make([][]uint64, n)
	for i, rhs := range a.Snap.Rules {
		cum := make([]uint64, len(rhs)+1)
		for j, s := range rhs {
			if s.IsRule() {
				cum[j+1] = cum[j] + a.ExpLen[s.Rule]
			} else {
				cum[j+1] = cum[j] + 1
			}
		}
		a.CumLens[i] = cum
	}
	return a
}

// Length is the expansion length of the start rule — the chunk's share
// of the trace. Zero for an empty grammar.
func (a *Analysis) Length() uint64 {
	if len(a.ExpLen) == 0 {
		return 0
	}
	return a.ExpLen[0]
}

// topoOrder returns rule indices with every parent before its children.
func (a *Analysis) topoOrder() []int32 {
	n := len(a.Snap.Rules)
	state := make([]int8, n)
	order := make([]int32, 0, n)
	var visit func(int32)
	visit = func(r int32) {
		if state[r] != 0 {
			return
		}
		state[r] = 1
		for _, s := range a.Snap.Rules[r] {
			if s.IsRule() {
				visit(s.Rule)
			}
		}
		order = append(order, r)
	}
	visit(0)
	// Reverse postorder = parents first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Terminals visits every terminal occurrence in every rule body together
// with the rule's derivation-tree use count — the weighted-terminal pass
// frequency folds are built on. Each distinct trace position is covered
// exactly once.
func (a *Analysis) Terminals(visit func(v uint64, uses uint64)) {
	for r, rhs := range a.Snap.Rules {
		uses := a.Uses[r]
		for _, s := range rhs {
			if !s.IsRule() {
				visit(s.Value, uses)
			}
		}
	}
}

// Collect appends the terminals of rule r's expansion in [start,
// start+length) to out, descending only the subtrees the range touches.
func (a *Analysis) Collect(r int32, start, length uint64, out []uint64) []uint64 {
	rhs := a.Snap.Rules[r]
	cum := a.CumLens[r]
	// Binary search for the first RHS symbol whose span contains start.
	j := sort.Search(len(rhs), func(j int) bool { return cum[j+1] > start })
	for ; length > 0 && j < len(rhs); j++ {
		s := rhs[j]
		if !s.IsRule() {
			out = append(out, s.Value)
			length--
			start = cum[j+1]
			continue
		}
		childStart := start - cum[j]
		avail := a.ExpLen[s.Rule] - childStart
		take := length
		if take > avail {
			take = avail
		}
		out = a.Collect(s.Rule, childStart, take, out)
		length -= take
		start = cum[j+1]
	}
	return out
}

// CountWindows accumulates, for every distinct window of length l in the
// grammar's expansion, its total occurrence count. Keys are the
// big-endian byte strings of the window's symbols (see AppendKey).
//
// Every window of the expansion either crosses a boundary between two
// RHS symbols of exactly one lowest rule, or lies entirely within one
// nonterminal's expansion and is attributed recursively; enumerating,
// for each rule, the windows that cross its RHS boundaries — weighted by
// the rule's use count — therefore counts every window exactly once
// without expanding the trace.
func (a *Analysis) CountWindows(l int, counts map[string]uint64) {
	if len(a.Snap.Rules) == 0 {
		return
	}
	if l == 1 {
		// Single-event windows never cross boundaries; count terminals
		// directly.
		var key [8]byte
		a.Terminals(func(v, uses uint64) {
			binary.BigEndian.PutUint64(key[:], v)
			counts[string(key[:])] += uses
		})
		return
	}
	L := uint64(l)
	var terms []uint64
	key := make([]byte, 0, l*8)
	for r := range a.Snap.Rules {
		if a.Uses[r] == 0 {
			continue
		}
		cum := a.CumLens[r]
		total := cum[len(cum)-1]
		if total < L {
			continue
		}
		ruleUses := a.Uses[r]
		maxStart := total - L
		// Enumerate window start offsets that cross at least one boundary
		// between RHS symbols, merged into maximal runs [lo, hi) so each
		// run's terminals are materialized once and the window slides.
		next := uint64(0)
		runLo, runHi := uint64(0), uint64(0)
		haveRun := false
		flush := func() {
			if !haveRun {
				return
			}
			terms = a.Collect(int32(r), runLo, runHi-1+L-runLo, terms[:0])
			for o := runLo; o < runHi; o++ {
				key = AppendKey(key[:0], terms[o-runLo:o-runLo+L])
				counts[string(key)] += ruleUses
			}
			haveRun = false
		}
		for b := 1; b < len(cum)-1; b++ {
			p := cum[b]
			lo := uint64(0)
			if p >= L {
				lo = p - L + 1
			}
			if lo < next {
				lo = next
			}
			hi := p // window must start strictly before the boundary
			if hi > maxStart+1 {
				hi = maxStart + 1
			}
			if lo >= hi {
				continue
			}
			if haveRun && lo <= runHi {
				runHi = hi
			} else {
				flush()
				runLo, runHi, haveRun = lo, hi, true
			}
			next = hi
		}
		flush()
	}
}

// AppendKey appends the canonical window key of the symbols to dst: each
// symbol as 8 big-endian bytes. All window-count maps share this form.
func AppendKey(dst []byte, window []uint64) []byte {
	for _, v := range window {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

// DecodeKey inverts AppendKey.
func DecodeKey(key string) []uint64 {
	out := make([]uint64, len(key)/8)
	for i := range out {
		out[i] = binary.BigEndian.Uint64([]byte(key[i*8 : (i+1)*8]))
	}
	return out
}
