package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/sequitur"
)

// Source is a sequence of chunk grammars an analysis can fold over
// without requiring them all in memory at once. The in-memory artifacts
// satisfy it trivially (SliceSource); lazy views materialize each chunk
// inside the Chunk call, so a corrupt or unreadable chunk surfaces as
// an error from the fold instead of failing the open.
//
// Chunk must be safe for concurrent calls on distinct indices and may
// be called more than once per index; implementations return a snapshot
// the caller may read freely.
type Source interface {
	// NumChunks reports the number of chunk grammars.
	NumChunks() int
	// Chunk returns chunk i's grammar.
	Chunk(i int) (*sequitur.Snapshot, error)
}

// SliceSource adapts an in-memory snapshot sequence to Source. Chunk
// never fails.
type SliceSource []*sequitur.Snapshot

// NumChunks implements Source.
func (s SliceSource) NumChunks() int { return len(s) }

// Chunk implements Source.
func (s SliceSource) Chunk(i int) (*sequitur.Snapshot, error) { return s[i], nil }

// MapSource builds each chunk's Analysis and applies fn to it on
// `workers` goroutines (normalized by Workers), returning results in
// chunk order. fn must only write state owned by index i. If any chunk
// fails to load, every chunk is still visited and the error for the
// lowest-indexed failing chunk is returned — deterministic at every
// worker count.
func MapSource[R any](src Source, workers int, fn func(i int, a *Analysis) R) ([]R, error) {
	n := src.NumChunks()
	out := make([]R, n)
	errs := make([]error, n)
	run := func(i int) {
		sn, err := src.Chunk(i)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = fn(i, NewAnalysis(sn))
	}
	if workers = Workers(workers); workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunSource executes a Fold over a Source: per-chunk passes in parallel
// via MapSource, then a sequential in-order merge. It is Run lifted to
// fallible chunk access; over a SliceSource the two are identical.
func RunSource[R any](src Source, workers int, f Fold[R]) (R, error) {
	parts, err := MapSource(src, workers, f.Chunk)
	if err != nil {
		var zero R
		return zero, err
	}
	if len(parts) == 0 {
		var zero R
		return zero, nil
	}
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = f.Merge(acc, p)
	}
	return acc, nil
}
