package wl

import (
	"reflect"
	"strings"
	"testing"
)

// stripPositions deep-copies the AST with all Pos fields zeroed, so
// structural comparison ignores layout.
func stripPositions(f *File) *File {
	out := &File{}
	for _, fn := range f.Funcs {
		out.Funcs = append(out.Funcs, &FuncDecl{
			Name:   fn.Name,
			Params: append([]string{}, fn.Params...),
			Body:   stripBlock(fn.Body),
		})
	}
	return out
}

func stripBlock(b *BlockStmt) *BlockStmt {
	out := &BlockStmt{}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, stripStmt(s))
	}
	return out
}

func stripStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *BlockStmt:
		return stripBlock(s)
	case *VarStmt:
		return &VarStmt{Name: s.Name, Init: stripExpr(s.Init)}
	case *AssignStmt:
		out := &AssignStmt{Name: s.Name, Value: stripExpr(s.Value)}
		if s.Index != nil {
			out.Index = stripExpr(s.Index)
		}
		return out
	case *IfStmt:
		out := &IfStmt{Cond: stripExpr(s.Cond), Then: stripBlock(s.Then)}
		if s.Else != nil {
			out.Else = stripStmt(s.Else)
		}
		return out
	case *WhileStmt:
		return &WhileStmt{Cond: stripExpr(s.Cond), Body: stripBlock(s.Body)}
	case *ForStmt:
		out := &ForStmt{Body: stripBlock(s.Body)}
		if s.Init != nil {
			out.Init = stripStmt(s.Init)
		}
		if s.Cond != nil {
			out.Cond = stripExpr(s.Cond)
		}
		if s.Post != nil {
			out.Post = stripStmt(s.Post)
		}
		return out
	case *ReturnStmt:
		out := &ReturnStmt{}
		if s.Value != nil {
			out.Value = stripExpr(s.Value)
		}
		return out
	case *BreakStmt:
		return &BreakStmt{}
	case *ContinueStmt:
		return &ContinueStmt{}
	case *PrintStmt:
		out := &PrintStmt{}
		for _, a := range s.Args {
			out.Args = append(out.Args, stripExpr(a))
		}
		return out
	case *ExprStmt:
		return &ExprStmt{X: stripExpr(s.X)}
	}
	return s
}

func stripExpr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit:
		return &IntLit{Val: e.Val}
	case *Ident:
		return &Ident{Name: e.Name}
	case *IndexExpr:
		return &IndexExpr{Name: e.Name, Index: stripExpr(e.Index)}
	case *CallExpr:
		out := &CallExpr{Name: e.Name}
		for _, a := range e.Args {
			out.Args = append(out.Args, stripExpr(a))
		}
		return out
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: stripExpr(e.X)}
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, X: stripExpr(e.X), Y: stripExpr(e.Y)}
	}
	return e
}

func checkFormatRoundTrip(t *testing.T, src string) {
	t.Helper()
	orig, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	formatted := Format(orig)
	back, err := Parse(formatted)
	if err != nil {
		t.Fatalf("reparse of formatted source: %v\nformatted:\n%s", err, formatted)
	}
	if !reflect.DeepEqual(stripPositions(orig), stripPositions(back)) {
		t.Fatalf("format round trip changed the AST\noriginal:\n%s\nformatted:\n%s", src, formatted)
	}
	// Formatting is idempotent.
	if again := Format(back); again != formatted {
		t.Fatalf("formatting not idempotent:\nfirst:\n%s\nsecond:\n%s", formatted, again)
	}
}

func TestFormatRoundTrips(t *testing.T) {
	sources := []string{
		goodProgram,
		"func main() { return 1 + 2 * 3 == 7; }",
		"func main() { return (1 + 2) * 3; }",
		"func main() { return 10 - 3 - 2; }",
		"func main() { return 10 - (3 - 2); }",
		"func main() { return -(1 + 2) * !0; }",
		"func main() { return 1 << 2 + 3; }",
		"func main() { return (1 && 0) || !(2 < 3); }",
		`func main(n) {
			for var i = 0; i < n; i = i + 1 { print i; }
			for ;; { break; }
			for ; n > 0; { n = n - 1; }
			return 0;
		}`,
		`func main(n) {
			if n < 0 { return 1; }
			else if n == 0 { return 2; }
			else if n == 1 { return 3; }
			else { return 4; }
		}`,
		`func f(a, b, c) { return a; }
		 func main() {
			var x = array(4);
			x[1 + 2] = f(1, 2, 3);
			{ var y = x[0]; print y, x[1]; }
			while x[0] < 5 { x[0] = x[0] + 1; continue; }
			return x[3];
		}`,
		"func main() { return 0 - 9223372036854775807; }",
	}
	for _, src := range sources {
		checkFormatRoundTrip(t, src)
	}
}

func TestFormatPrecedenceExamples(t *testing.T) {
	cases := map[string]string{
		"func main() { return (1 + 2) * 3; }":  "(1 + 2) * 3",
		"func main() { return 1 + 2 * 3; }":    "1 + 2 * 3",
		"func main() { return 10 - (3 - 2); }": "10 - (3 - 2)",
		"func main() { return 10 - 3 - 2; }":   "10 - 3 - 2",
	}
	for src, want := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		got := Format(f)
		if !strings.Contains(got, want) {
			t.Errorf("Format(%q) = %q, want it to contain %q", src, got, want)
		}
	}
}

func TestFormatStmtAndExpr(t *testing.T) {
	f := mustParse(t, "func main() { var x = 1 + 2; return x; }")
	vs := f.Funcs[0].Body.Stmts[0]
	if got := FormatStmt(vs); !strings.Contains(got, "var x = 1 + 2;") {
		t.Fatalf("FormatStmt = %q", got)
	}
	ret := f.Funcs[0].Body.Stmts[1].(*ReturnStmt)
	if got := FormatExpr(ret.Value); got != "x" {
		t.Fatalf("FormatExpr = %q", got)
	}
}
