package wl

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("func main() { var x = 1 + 23; } // comment\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwFunc, IDENT, LParen, RParen, LBrace, KwVar, IDENT, Assign, INT, Add, INT, Semi, RBrace, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[8].Val != 1 || toks[10].Val != 23 {
		t.Fatalf("integer values wrong: %v", toks)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("< <= > >= == != = ! && & || | ^ << >> + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Lt, Le, Gt, Ge, Eq, Ne, Assign, Not, AndAnd, And, OrOr, Or, Xor, Shl, Shr, Add, Sub, Mul, Div, Rem, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) {
		t.Fatalf("positions: %v %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := LexAll("@"); err == nil {
		t.Fatal("expected error for @")
	}
	if _, err := LexAll("99999999999999999999999999"); err == nil {
		t.Fatal("expected error for overflowing literal")
	}
}

const goodProgram = `
// Computes triangular numbers.
func main(n) {
    var total = 0;
    var i = 1;
    while i <= n {
        total = total + i;
        i = i + 1;
    }
    if total > 100 && n != 0 {
        return total;
    } else if total == 0 {
        return 0 - 1;
    }
    return total;
}

func helper(a, b) {
    var c = array(8);
    c[0] = a;
    c[1] = b;
    print c[0], c[1], len(c);
    return c[0] + c[1];
}
`

func TestParseGoodProgram(t *testing.T) {
	f, err := Parse(goodProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("got %d functions", len(f.Funcs))
	}
	if f.Funcs[0].Name != "main" || len(f.Funcs[0].Params) != 1 {
		t.Fatalf("main signature wrong: %+v", f.Funcs[0])
	}
	if f.Funcs[1].Name != "helper" || len(f.Funcs[1].Params) != 2 {
		t.Fatalf("helper signature wrong: %+v", f.Funcs[1])
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse("func main() { return 1 + 2 * 3 == 7; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	eq := ret.Value.(*BinaryExpr)
	if eq.Op != Eq {
		t.Fatalf("top operator = %v, want ==", eq.Op)
	}
	add := eq.X.(*BinaryExpr)
	if add.Op != Add {
		t.Fatalf("left of == is %v, want +", add.Op)
	}
	mul := add.Y.(*BinaryExpr)
	if mul.Op != Mul {
		t.Fatalf("right of + is %v, want *", mul.Op)
	}
}

func TestParseLeftAssociativity(t *testing.T) {
	f, err := Parse("func main() { return 10 - 3 - 2; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	outer := ret.Value.(*BinaryExpr)
	if outer.Op != Sub {
		t.Fatal("top not Sub")
	}
	if _, ok := outer.X.(*BinaryExpr); !ok {
		t.Fatal("10-3-2 must parse as (10-3)-2")
	}
	if lit, ok := outer.Y.(*IntLit); !ok || lit.Val != 2 {
		t.Fatal("rightmost operand must be 2")
	}
}

func TestParseUnaryAndParens(t *testing.T) {
	f, err := Parse("func main() { return -(1 + 2) * !0; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	mul := ret.Value.(*BinaryExpr)
	if mul.Op != Mul {
		t.Fatalf("top = %v", mul.Op)
	}
	if _, ok := mul.X.(*UnaryExpr); !ok {
		t.Fatal("left of * must be unary negation")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func",
		"func main( {",
		"func main() { var = 1; }",
		"func main() { x 1; }",
		"func main() { if { } }",
		"func main() { return 1 }",
		"func main() { a[1 = 2; }",
		"1 + 2",
		"func main() { while }",
		"func main() { var x = ; }",
		"func main() { print; }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no main", "func f() { return 0; }", "no main"},
		{"dup func", "func main() { return 0; } func main() { return 1; }", "redeclared"},
		{"shadow builtin", "func len(x) { return 0; } func main() { return 0; }", "shadows"},
		{"undeclared", "func main() { return x; }", "undeclared"},
		{"undeclared assign", "func main() { x = 1; return 0; }", "undeclared"},
		{"redeclared var", "func main() { var x = 1; var x = 2; return x; }", "redeclared"},
		{"dup param", "func main(a, a) { return a; }", "repeated"},
		{"bad arity", "func f(a) { return a; } func main() { return f(1, 2); }", "argument"},
		{"unknown func", "func main() { return g(); }", "undefined"},
		{"break outside", "func main() { break; }", "break outside"},
		{"continue outside", "func main() { continue; }", "continue outside"},
		{"len arity", "func main() { return len(1, 2); }", "1 argument"},
		{"use before decl", "func main() { var a = b; var b = 1; return a; }", "undeclared"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Check(mustParse(t, c.src))
			if err == nil {
				t.Fatalf("Check passed, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestCheckAllowsLaterFunctionUse(t *testing.T) {
	src := "func main() { return g(); } func g() { return 7; }"
	if err := Check(mustParse(t, src)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckVarVisibleAfterInnerBlock(t *testing.T) {
	src := "func main() { if 1 { var x = 3; } return 0; }"
	if err := Check(mustParse(t, src)); err != nil {
		t.Fatal(err)
	}
}

func TestParseFor(t *testing.T) {
	f := mustParse(t, `func main(n) {
		for var i = 0; i < n; i = i + 1 { print i; }
		for ;; { break; }
		for ; n > 0; { n = n - 1; }
		var j = 0;
		for j = 1; j < 3; j = j + 1 { }
		return 0;
	}`)
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
	first := f.Funcs[0].Body.Stmts[0].(*ForStmt)
	if _, ok := first.Init.(*VarStmt); !ok {
		t.Fatal("for init not a var declaration")
	}
	if first.Cond == nil || first.Post == nil {
		t.Fatal("for parts missing")
	}
	inf := f.Funcs[0].Body.Stmts[1].(*ForStmt)
	if inf.Init != nil || inf.Cond != nil || inf.Post != nil {
		t.Fatal("empty for parts not nil")
	}
}

func TestParseForErrors(t *testing.T) {
	bad := []string{
		"func main() { for var i = 0; i < 3; var j = 1 { } return 0; }", // decl in post
		"func main() { for i = 0 { } return 0; }",                       // missing parts
		"func main() { for ; ; i = }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestCheckForStmt(t *testing.T) {
	// Variables declared in for-init are function-scoped and checked.
	if err := Check(mustParse(t, "func main() { for var i = 0; i < 3; i = i + 1 { } return i; }")); err != nil {
		t.Fatal(err)
	}
	// break in for body is legal; continue too.
	if err := Check(mustParse(t, "func main() { for ;; { continue; } }")); err != nil {
		t.Fatal(err)
	}
	// Undeclared in cond.
	if err := Check(mustParse(t, "func main() { for ; q < 1; { } return 0; }")); err == nil {
		t.Fatal("undeclared cond variable accepted")
	}
}

func TestTokenAndErrorStrings(t *testing.T) {
	if (Token{Kind: IDENT, Text: "abc"}).String() != "abc" {
		t.Fatal("ident token string")
	}
	if (Token{Kind: INT, Val: 5}).String() != "5" {
		t.Fatal("int token string")
	}
	e := errf(Pos{3, 4}, "boom %d", 1)
	if e.Error() != "3:4: boom 1" {
		t.Fatalf("error string = %q", e.Error())
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}
