package wl

import (
	"strconv"
)

// Lexer turns WL source text into tokens. Comments run from "//" to end of
// line.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{l.line, l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an EOF token at the end of input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Pos: pos, Text: word}, nil
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseInt(l.src[start:l.off], 10, 64)
		if err != nil {
			return Token{}, errf(pos, "integer literal %q out of range", l.src[start:l.off])
		}
		return Token{Kind: INT, Pos: pos, Val: v}, nil
	}
	l.advance()
	two := func(next byte, ifTwo, ifOne Kind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: ifTwo, Pos: pos}, nil
		}
		return Token{Kind: ifOne, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: LBrack, Pos: pos}, nil
	case ']':
		return Token{Kind: RBrack, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case '+':
		return Token{Kind: Add, Pos: pos}, nil
	case '-':
		return Token{Kind: Sub, Pos: pos}, nil
	case '*':
		return Token{Kind: Mul, Pos: pos}, nil
	case '/':
		return Token{Kind: Div, Pos: pos}, nil
	case '%':
		return Token{Kind: Rem, Pos: pos}, nil
	case '^':
		return Token{Kind: Xor, Pos: pos}, nil
	case '=':
		return two('=', Eq, Assign)
	case '!':
		return two('=', Ne, Not)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: Shl, Pos: pos}, nil
		}
		return two('=', Le, Lt)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: Shr, Pos: pos}, nil
		}
		return two('=', Ge, Gt)
	case '&':
		return two('&', AndAnd, And)
	case '|':
		return two('|', OrOr, Or)
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// LexAll tokenizes the whole input, for tests.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
