package wl

import (
	"strings"
	"testing"
)

// FuzzParse asserts the front end never panics or hangs: any input either
// parses (and then formats + reparses to the same structure) or returns a
// positioned error.
func FuzzParse(f *testing.F) {
	f.Add("func main() { return 0; }")
	f.Add(goodProgram)
	f.Add("func f(a,b){var x=a*b; while x>0 { x=x-1; if x%2==0 { continue; } } return x;}func main(){return f(3,4);}")
	f.Add("func main() { for var i = 0; i < 3; i = i + 1 { print i; } return 0; }")
	f.Add("((((((((")
	f.Add("func main() { return " + strings.Repeat("(", 600) + "1" + strings.Repeat(")", 600) + "; }")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		// Anything that parses must format and reparse cleanly.
		formatted := Format(file)
		if _, err := Parse(formatted); err != nil {
			t.Fatalf("formatted output does not reparse: %v\ninput: %q\nformatted:\n%s", err, src, formatted)
		}
		// Check may reject (semantic errors are fine); it must not panic.
		_ = Check(file)
	})
}

func TestDeepNestingRejected(t *testing.T) {
	deep := "func main() { return " + strings.Repeat("(", 2000) + "1" + strings.Repeat(")", 2000) + "; }"
	if _, err := Parse(deep); err == nil {
		t.Fatal("2000-deep nesting accepted")
	}
	deepStmt := "func main() { " + strings.Repeat("if 1 { ", 2000) + strings.Repeat("} ", 2000) + "return 0; }"
	if _, err := Parse(deepStmt); err == nil {
		t.Fatal("2000-deep statements accepted")
	}
	// Moderate nesting still works.
	ok := "func main() { return " + strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100) + "; }"
	if _, err := Parse(ok); err != nil {
		t.Fatalf("100-deep nesting rejected: %v", err)
	}
}
