// Package wl implements the front end of WL, the small imperative
// "workload language" used to drive the whole-program-path pipeline. WL
// programs stand in for the paper's SPEC binaries: the compiler in package
// wlc lowers them to CFG-based IR, which package interp executes with
// Ball–Larus path instrumentation — the moral equivalent of the paper's
// binary rewriting.
//
// The language has int64 scalars, int64 arrays, functions, if/while
// control flow with short-circuit booleans, and a print statement:
//
//	func main(n) {
//	    var i = 0;
//	    var a = array(n);
//	    while i < n {
//	        a[i] = i * i;
//	        i = i + 1;
//	    }
//	    return sum(a);
//	}
//
//	func sum(a) {
//	    var s = 0;
//	    var i = 0;
//	    while i < len(a) { s = s + a[i]; i = i + 1; }
//	    return s;
//	}
package wl

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds. Operator kinds double as AST operator codes.
const (
	EOF Kind = iota
	IDENT
	INT

	// Keywords.
	KwFunc
	KwVar
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwPrint

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Comma
	Semi
	Assign

	// Operators.
	Add
	Sub
	Mul
	Div
	Rem
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	AndAnd
	OrOr
	Not
	And
	Or
	Xor
	Shl
	Shr
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer",
	KwFunc: "func", KwVar: "var", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue", KwPrint: "print",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBrack: "[", RBrack: "]", Comma: ",", Semi: ";", Assign: "=",
	Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "==", Ne: "!=",
	AndAnd: "&&", OrOr: "||", Not: "!",
	And: "&", Or: "|", Xor: "^", Shl: "<<", Shr: ">>",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"func": KwFunc, "var": KwVar, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue, "print": KwPrint,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // identifier name
	Val  int64  // integer value
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return t.Text
	case INT:
		return fmt.Sprintf("%d", t.Val)
	default:
		return t.Kind.String()
	}
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
