package wl

import "fmt"

// Builtin names; calls to these are compiled to dedicated instructions
// rather than function calls.
const (
	BuiltinArray = "array" // array(n): new zeroed array of length n
	BuiltinLen   = "len"   // len(a): array length
)

// Check performs semantic analysis on a parsed file:
//
//   - function names are unique and do not shadow builtins,
//   - a main function exists,
//   - every called function exists and is called with the right arity,
//   - variables are declared (as params or var) before use, and not
//     redeclared in the same function,
//   - break/continue appear only inside loops.
//
// WL is dynamically typed between scalars and arrays; type mismatches are
// runtime errors, as in the paper's machine-code substrate where the
// distinction does not exist statically.
func Check(f *File) error {
	funcs := map[string]*FuncDecl{}
	for _, fn := range f.Funcs {
		if fn.Name == BuiltinArray || fn.Name == BuiltinLen {
			return errf(fn.Pos, "function %s shadows a builtin", fn.Name)
		}
		if prev, dup := funcs[fn.Name]; dup {
			return errf(fn.Pos, "function %s redeclared (previous at %s)", fn.Name, prev.Pos)
		}
		funcs[fn.Name] = fn
	}
	if _, ok := funcs["main"]; !ok {
		return fmt.Errorf("wl: no main function")
	}
	for _, fn := range f.Funcs {
		c := &checker{funcs: funcs, vars: map[string]bool{}}
		for _, p := range fn.Params {
			if c.vars[p] {
				return errf(fn.Pos, "parameter %s repeated in %s", p, fn.Name)
			}
			c.vars[p] = true
		}
		if err := c.block(fn.Body, 0); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	funcs map[string]*FuncDecl
	vars  map[string]bool
}

func (c *checker) block(b *BlockStmt, loopDepth int) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s, loopDepth); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt, loopDepth int) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.block(s, loopDepth)
	case *VarStmt:
		if err := c.expr(s.Init); err != nil {
			return err
		}
		if c.vars[s.Name] {
			return errf(s.Pos, "variable %s redeclared", s.Name)
		}
		c.vars[s.Name] = true
		return nil
	case *AssignStmt:
		if !c.vars[s.Name] {
			return errf(s.Pos, "assignment to undeclared variable %s", s.Name)
		}
		if s.Index != nil {
			if err := c.expr(s.Index); err != nil {
				return err
			}
		}
		return c.expr(s.Value)
	case *IfStmt:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		if err := c.block(s.Then, loopDepth); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else, loopDepth)
		}
		return nil
	case *WhileStmt:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		return c.block(s.Body, loopDepth+1)
	case *ForStmt:
		if s.Init != nil {
			if err := c.stmt(s.Init, loopDepth); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.expr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.stmt(s.Post, loopDepth); err != nil {
				return err
			}
		}
		return c.block(s.Body, loopDepth+1)
	case *ReturnStmt:
		if s.Value != nil {
			return c.expr(s.Value)
		}
		return nil
	case *BreakStmt:
		if loopDepth == 0 {
			return errf(s.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if loopDepth == 0 {
			return errf(s.Pos, "continue outside loop")
		}
		return nil
	case *PrintStmt:
		for _, a := range s.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		return nil
	case *ExprStmt:
		return c.expr(s.X)
	}
	return fmt.Errorf("wl: unknown statement %T", s)
}

func (c *checker) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		return nil
	case *Ident:
		if !c.vars[e.Name] {
			return errf(e.Pos, "undeclared variable %s", e.Name)
		}
		return nil
	case *IndexExpr:
		if !c.vars[e.Name] {
			return errf(e.Pos, "undeclared variable %s", e.Name)
		}
		return c.expr(e.Index)
	case *CallExpr:
		switch e.Name {
		case BuiltinArray, BuiltinLen:
			if len(e.Args) != 1 {
				return errf(e.Pos, "%s takes 1 argument, got %d", e.Name, len(e.Args))
			}
		default:
			fn, ok := c.funcs[e.Name]
			if !ok {
				return errf(e.Pos, "call to undefined function %s", e.Name)
			}
			if len(e.Args) != len(fn.Params) {
				return errf(e.Pos, "%s takes %d argument(s), got %d", e.Name, len(fn.Params), len(e.Args))
			}
		}
		for _, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		return nil
	case *UnaryExpr:
		return c.expr(e.X)
	case *BinaryExpr:
		if err := c.expr(e.X); err != nil {
			return err
		}
		return c.expr(e.Y)
	}
	return fmt.Errorf("wl: unknown expression %T", e)
}
