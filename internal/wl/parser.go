package wl

// Parser is a recursive-descent parser for WL with precedence climbing for
// expressions.
type Parser struct {
	lex   *Lexer
	tok   Token
	err   error
	depth int
}

// maxDepth bounds statement/expression nesting so hostile input cannot
// exhaust the goroutine stack.
const maxDepth = 512

func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return errf(p.tok.Pos, "nesting deeper than %d levels", maxDepth)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// Parse parses a complete WL source file.
func Parse(src string) (*File, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	if p.err != nil {
		return nil, p.err
	}
	f := &File{}
	for p.tok.Kind != EOF {
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	return f, nil
}

func (p *Parser) next() {
	if p.err != nil {
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.tok = Token{Kind: EOF}
		return
	}
	p.tok = t
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.err != nil {
		return Token{}, p.err
	}
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.next()
	if p.err != nil {
		return Token{}, p.err
	}
	return t, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw, err := p.expect(KwFunc)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []string
	if p.tok.Kind != RParen {
		for {
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			params = append(params, id.Text)
			if p.tok.Kind != Comma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Pos: kw.Pos, Name: name.Text, Params: params, Body: body}, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for p.tok.Kind != RBrace {
		if p.tok.Kind == EOF {
			return nil, errf(p.tok.Pos, "unexpected EOF inside block opened at %s", lb.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // consume }
	if p.err != nil {
		return nil, p.err
	}
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.tok.Kind {
	case KwVar:
		pos := p.tok.Pos
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &VarStmt{Pos: pos, Name: name.Text, Init: init}, nil

	case KwIf:
		return p.parseIf()

	case KwWhile:
		pos := p.tok.Pos
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil

	case KwFor:
		return p.parseFor()

	case KwReturn:
		pos := p.tok.Pos
		p.next()
		if p.tok.Kind == Semi {
			p.next()
			return &ReturnStmt{Pos: pos}, nil
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: pos, Value: v}, nil

	case KwBreak:
		pos := p.tok.Pos
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil

	case KwContinue:
		pos := p.tok.Pos
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil

	case KwPrint:
		pos := p.tok.Pos
		p.next()
		var args []Expr
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.tok.Kind != Comma {
				break
			}
			p.next()
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &PrintStmt{Pos: pos, Args: args}, nil

	case LBrace:
		return p.parseBlock()

	case IDENT:
		// Assignment or expression statement; decide by lookahead.
		name := p.tok
		p.next()
		switch p.tok.Kind {
		case Assign:
			p.next()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: name.Pos, Name: name.Text, Value: v}, nil
		case LBrack:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			if p.tok.Kind == Assign {
				p.next()
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(Semi); err != nil {
					return nil, err
				}
				return &AssignStmt{Pos: name.Pos, Name: name.Text, Index: idx, Value: v}, nil
			}
			// It was an expression beginning with an index: continue
			// parsing it as an expression statement.
			lhs := Expr(&IndexExpr{Pos: name.Pos, Name: name.Text, Index: idx})
			x, err := p.parseBinaryFrom(lhs, 0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: name.Pos, X: x}, nil
		case LParen:
			call, err := p.parseCallAfterName(name)
			if err != nil {
				return nil, err
			}
			x, err := p.parseBinaryFrom(call, 0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: name.Pos, X: x}, nil
		default:
			lhs := Expr(&Ident{Pos: name.Pos, Name: name.Text})
			x, err := p.parseBinaryFrom(lhs, 0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: name.Pos, X: x}, nil
		}
	}
	return nil, errf(p.tok.Pos, "unexpected %s at start of statement", p.tok)
}

// parseFor parses `for init; cond; post { body }`. Each of the three
// header parts may be empty: `for ;; { ... }` is an infinite loop.
func (p *Parser) parseFor() (Stmt, error) {
	pos := p.tok.Pos
	p.next() // for
	st := &ForStmt{Pos: pos}

	// Init: empty, var declaration, or assignment; consumes its ';'.
	if p.tok.Kind == Semi {
		p.next()
	} else {
		init, err := p.parseForAssign()
		if err != nil {
			return nil, err
		}
		st.Init = init
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	// Cond: empty means true.
	if p.tok.Kind == Semi {
		p.next()
	} else {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	// Post: empty or assignment, no trailing ';'.
	if p.tok.Kind != LBrace {
		post, err := p.parseForAssign()
		if err != nil {
			return nil, err
		}
		if _, isVar := post.(*VarStmt); isVar {
			return nil, errf(pos, "for post-statement cannot be a declaration")
		}
		st.Post = post
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// parseForAssign parses a for-header clause: `var x = e`, `x = e`, or
// `x[i] = e`, without a trailing semicolon.
func (p *Parser) parseForAssign() (Stmt, error) {
	if p.tok.Kind == KwVar {
		pos := p.tok.Pos
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &VarStmt{Pos: pos, Name: name.Text, Init: init}, nil
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	var index Expr
	if p.tok.Kind == LBrack {
		p.next()
		index, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBrack); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Assign); err != nil {
		return nil, err
	}
	value, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Pos: name.Pos, Name: name.Text, Index: index, Value: value}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.tok.Pos
	p.next() // if
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.tok.Kind == KwElse {
		p.next()
		if p.tok.Kind == KwIf {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// Binding powers, loosest first. Index into this table is the precedence
// level passed to parseBinary.
var precedence = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Eq:     3, Ne: 3,
	Lt: 4, Le: 4, Gt: 4, Ge: 4,
	Or: 5, Xor: 5,
	And: 6,
	Shl: 7, Shr: 7,
	Add: 8, Sub: 8,
	Mul: 9, Div: 9, Rem: 9,
}

func (p *Parser) parseExpr() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseBinaryFrom(lhs, 0)
}

// parseBinaryFrom continues precedence climbing with an already-parsed
// left operand.
func (p *Parser) parseBinaryFrom(lhs Expr, minPrec int) (Expr, error) {
	for {
		prec, ok := precedence[p.tok.Kind]
		if !ok || prec <= minPrec {
			return lhs, nil
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		rhs, err = p.parseBinaryFrom(rhs, prec)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.tok.Kind {
	case Not, Sub:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case INT:
		t := p.tok
		p.next()
		return &IntLit{Pos: t.Pos, Val: t.Val}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case IDENT:
		name := p.tok
		p.next()
		switch p.tok.Kind {
		case LParen:
			return p.parseCallAfterName(name)
		case LBrack:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: name.Pos, Name: name.Text, Index: idx}, nil
		}
		return &Ident{Pos: name.Pos, Name: name.Text}, nil
	}
	return nil, errf(p.tok.Pos, "unexpected %s in expression", p.tok)
}

func (p *Parser) parseCallAfterName(name Token) (Expr, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var args []Expr
	if p.tok.Kind != RParen {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.tok.Kind != Comma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return &CallExpr{Pos: name.Pos, Name: name.Text, Args: args}, nil
}
