package wl

// File is a parsed WL source file.
type File struct {
	Funcs []*FuncDecl
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []string
	Body   *BlockStmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarStmt declares a local variable with an initializer.
type VarStmt struct {
	Pos  Pos
	Name string
	Init Expr
}

// AssignStmt assigns to a variable or an array element.
type AssignStmt struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
}

// IfStmt is if/else; Else is nil, a *BlockStmt, or another *IfStmt.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a C-style for loop. Init may be nil, a *VarStmt, or an
// *AssignStmt; Cond may be nil (always true); Post may be nil or an
// *AssignStmt. A continue inside Body transfers to Post.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// ReturnStmt returns from the enclosing function. Value may be nil.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Pos Pos }

// PrintStmt prints its arguments as integers separated by spaces.
type PrintStmt struct {
	Pos  Pos
	Args []Expr
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmt()    {}
func (*VarStmt) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*PrintStmt) stmt()    {}
func (*ExprStmt) stmt()     {}

// Expr is implemented by all expression nodes.
type Expr interface {
	expr()
	Position() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// Ident is a variable reference.
type Ident struct {
	Pos  Pos
	Name string
}

// IndexExpr is a[x], where a must name a variable.
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// CallExpr is a function or builtin call. Builtins are "array" and "len".
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// UnaryExpr is !x or -x; Op is Not or Sub.
type UnaryExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
}

// BinaryExpr is x op y; Op is an operator token kind. AndAnd and OrOr
// short-circuit.
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	X, Y Expr
}

func (*IntLit) expr()     {}
func (*Ident) expr()      {}
func (*IndexExpr) expr()  {}
func (*CallExpr) expr()   {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}

func (e *IntLit) Position() Pos     { return e.Pos }
func (e *Ident) Position() Pos      { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
