package wl

import (
	"fmt"
	"strings"
)

// Format renders a parsed file back to canonical WL source. Formatting
// then reparsing yields a structurally identical AST (positions aside),
// which the tests verify; tools use it to display rewritten programs
// (e.g. after the optimizer runs).
func Format(f *File) string {
	var p printer
	for i, fn := range f.Funcs {
		if i > 0 {
			p.sb.WriteByte('\n')
		}
		p.funcDecl(fn)
	}
	return p.sb.String()
}

// FormatStmt renders a single statement (at top-level indentation), for
// diagnostics.
func FormatStmt(s Stmt) string {
	var p printer
	p.stmt(s)
	return p.sb.String()
}

// FormatExpr renders an expression.
func FormatExpr(e Expr) string {
	var p printer
	p.expr(e, 0)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) funcDecl(fn *FuncDecl) {
	p.line("func %s(%s) {", fn.Name, strings.Join(fn.Params, ", "))
	p.indent++
	for _, s := range fn.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, st := range s.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *VarStmt:
		p.line("var %s = %s;", s.Name, FormatExpr(s.Init))
	case *AssignStmt:
		p.line("%s;", p.assignText(s))
	case *IfStmt:
		p.ifChain(s)
	case *WhileStmt:
		p.line("while %s {", FormatExpr(s.Cond))
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *ForStmt:
		init, cond, post := "", "", ""
		if s.Init != nil {
			switch in := s.Init.(type) {
			case *VarStmt:
				init = fmt.Sprintf("var %s = %s", in.Name, FormatExpr(in.Init))
			case *AssignStmt:
				init = p.assignText(in)
			}
		}
		if s.Cond != nil {
			cond = FormatExpr(s.Cond)
		}
		if s.Post != nil {
			if as, ok := s.Post.(*AssignStmt); ok {
				post = p.assignText(as)
			}
		}
		if post == "" {
			p.line("for %s; %s; {", init, cond)
		} else {
			p.line("for %s; %s; %s {", init, cond, post)
		}
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if s.Value == nil {
			p.line("return;")
		} else {
			p.line("return %s;", FormatExpr(s.Value))
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *PrintStmt:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			parts[i] = FormatExpr(a)
		}
		p.line("print %s;", strings.Join(parts, ", "))
	case *ExprStmt:
		p.line("%s;", FormatExpr(s.X))
	default:
		p.line("/* unknown statement %T */", s)
	}
}

func (p *printer) assignText(s *AssignStmt) string {
	if s.Index != nil {
		return fmt.Sprintf("%s[%s] = %s", s.Name, FormatExpr(s.Index), FormatExpr(s.Value))
	}
	return fmt.Sprintf("%s = %s", s.Name, FormatExpr(s.Value))
}

// ifChain renders if / else-if / else without extra nesting.
func (p *printer) ifChain(s *IfStmt) {
	p.line("if %s {", FormatExpr(s.Cond))
	p.indent++
	for _, st := range s.Then.Stmts {
		p.stmt(st)
	}
	p.indent--
	for s.Else != nil {
		if elif, ok := s.Else.(*IfStmt); ok {
			p.line("} else if %s {", FormatExpr(elif.Cond))
			p.indent++
			for _, st := range elif.Then.Stmts {
				p.stmt(st)
			}
			p.indent--
			s = elif
			continue
		}
		blk := s.Else.(*BlockStmt)
		p.line("} else {")
		p.indent++
		for _, st := range blk.Stmts {
			p.stmt(st)
		}
		p.indent--
		break
	}
	p.line("}")
}

// expr writes e, parenthesizing when the parent context binds tighter.
func (p *printer) expr(e Expr, parentPrec int) {
	switch e := e.(type) {
	case *IntLit:
		if e.Val < 0 {
			// WL has no negative literals; render via subtraction from 0,
			// matching what the parser can read back.
			fmt.Fprintf(&p.sb, "(0 - %d)", -e.Val)
			return
		}
		fmt.Fprintf(&p.sb, "%d", e.Val)
	case *Ident:
		p.sb.WriteString(e.Name)
	case *IndexExpr:
		p.sb.WriteString(e.Name)
		p.sb.WriteByte('[')
		p.expr(e.Index, 0)
		p.sb.WriteByte(']')
	case *CallExpr:
		p.sb.WriteString(e.Name)
		p.sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.sb.WriteByte(')')
	case *UnaryExpr:
		p.sb.WriteString(e.Op.String())
		// Unary binds tightest; parenthesize any non-primary operand.
		switch e.X.(type) {
		case *IntLit, *Ident, *IndexExpr, *CallExpr:
			p.expr(e.X, 0)
		default:
			p.sb.WriteByte('(')
			p.expr(e.X, 0)
			p.sb.WriteByte(')')
		}
	case *BinaryExpr:
		prec := precedence[e.Op]
		if prec <= parentPrec {
			p.sb.WriteByte('(')
		}
		p.expr(e.X, prec-1) // left-associative: equal precedence on the left needs no parens
		fmt.Fprintf(&p.sb, " %s ", e.Op)
		p.expr(e.Y, prec) // right operand of equal precedence must parenthesize
		if prec <= parentPrec {
			p.sb.WriteByte(')')
		}
	default:
		fmt.Fprintf(&p.sb, "/* unknown expr %T */", e)
	}
}
