package sequitur

// The behavioral oracle for the arena rewrite: a direct transliteration
// of the original pointer-chased, map-indexed SEQUITUR implementation
// this package shipped before symbols moved into slab arenas and the
// digram index became an open-addressing table. The arena layout is a
// pure memory-representation change, so on every input the two
// implementations must produce identical snapshots; the fuzzer and
// property tests below hold them to that, byte for byte.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

type oracleSymbol struct {
	next, prev *oracleSymbol
	value      uint64
	rule       *oracleRule
	guard      bool
}

func (s *oracleSymbol) isNonterminal() bool { return !s.guard && s.rule != nil }

type oracleRule struct {
	guardSym *oracleSymbol
	uses     int
	id       uint64
}

func newOracleRule(id uint64) *oracleRule {
	r := &oracleRule{id: id}
	g := &oracleSymbol{guard: true, rule: r}
	g.next, g.prev = g, g
	r.guardSym = g
	return r
}

func (r *oracleRule) first() *oracleSymbol { return r.guardSym.next }
func (r *oracleRule) last() *oracleSymbol  { return r.guardSym.prev }

func oracleKey(s *oracleSymbol) uint64 {
	if s.isNonterminal() {
		return ^s.rule.id
	}
	return s.value
}

func oracleDigramOf(s *oracleSymbol) digram { return digram{oracleKey(s), oracleKey(s.next)} }

type oracleGrammar struct {
	start  *oracleRule
	index  map[digram]*oracleSymbol
	nextID uint64
	opts   Options
}

func newOracle() *oracleGrammar { return newOracleWithOptions(Options{}) }

func newOracleWithOptions(opts Options) *oracleGrammar {
	g := &oracleGrammar{index: map[digram]*oracleSymbol{}, nextID: 1, opts: opts}
	g.start = newOracleRule(0)
	return g
}

func (g *oracleGrammar) Append(v uint64) {
	s := &oracleSymbol{value: v}
	g.link(g.start.last(), s)
	if !s.prev.guard {
		g.check(s.prev)
	}
}

func (g *oracleGrammar) link(p, n *oracleSymbol) {
	n.next = p.next
	n.prev = p
	p.next.prev = n
	p.next = n
	if n.isNonterminal() {
		n.rule.uses++
	}
}

func (g *oracleGrammar) unlink(s *oracleSymbol) {
	if !s.prev.guard {
		g.forgetDigram(s.prev)
	}
	if !s.next.guard {
		g.forgetDigram(s)
	}
	s.prev.next = s.next
	s.next.prev = s.prev
	if s.isNonterminal() {
		s.rule.uses--
	}
}

func (g *oracleGrammar) forgetDigram(s *oracleSymbol) {
	d := oracleDigramOf(s)
	if g.index[d] == s {
		delete(g.index, d)
	}
}

func (g *oracleGrammar) check(s *oracleSymbol) bool {
	if s.guard || s.next.guard {
		return false
	}
	d := oracleDigramOf(s)
	m, ok := g.index[d]
	if !ok {
		g.index[d] = s
		return false
	}
	if m == s {
		return false
	}
	if m.next == s || s.next == m {
		return false
	}
	g.match(s, m)
	return true
}

func (g *oracleGrammar) match(s, m *oracleSymbol) {
	var r *oracleRule
	if m.prev.guard && m.next.next.guard {
		r = m.prev.rule
		g.substitute(s, r)
	} else {
		r = newOracleRule(g.nextID)
		g.nextID++
		g.link(r.guardSym, g.copySym(s))
		g.link(r.first(), g.copySym(s.next))
		g.substitute(m, r)
		g.substitute(s, r)
		g.index[oracleDigramOf(r.first())] = r.first()
	}
	if f := r.first(); !g.opts.DisableRuleUtility && f.isNonterminal() && f.rule.uses == 1 {
		g.expand(f)
	}
}

func (g *oracleGrammar) copySym(s *oracleSymbol) *oracleSymbol {
	return &oracleSymbol{value: s.value, rule: s.rule}
}

func (g *oracleGrammar) substitute(s *oracleSymbol, r *oracleRule) {
	p := s.prev
	g.unlink(s.next)
	g.unlink(s)
	n := &oracleSymbol{rule: r}
	g.link(p, n)
	if !p.guard && g.check(p) {
		return
	}
	if !n.next.guard {
		g.check(n)
	}
}

func (g *oracleGrammar) expand(u *oracleSymbol) {
	r := u.rule
	left := u.prev
	right := u.next
	first := r.first()
	last := r.last()
	g.unlink(u)
	left.next = first
	first.prev = left
	last.next = right
	right.prev = last
	if !left.guard {
		if g.check(left) {
			return
		}
	}
	if !right.guard {
		g.check(last)
	}
}

// Snapshot mirrors Grammar.Snapshot on the oracle's pointer layout.
func (g *oracleGrammar) Snapshot() *Snapshot {
	indexOf := map[*oracleRule]int32{g.start: 0}
	order := []*oracleRule{g.start}
	for i := 0; i < len(order); i++ {
		for s := order[i].first(); !s.guard; s = s.next {
			if s.isNonterminal() {
				if _, ok := indexOf[s.rule]; !ok {
					indexOf[s.rule] = int32(len(order))
					order = append(order, s.rule)
				}
			}
		}
	}
	snap := &Snapshot{Rules: make([][]Sym, len(order))}
	for i, r := range order {
		var rhs []Sym
		for s := r.first(); !s.guard; s = s.next {
			if s.isNonterminal() {
				rhs = append(rhs, Sym{Rule: indexOf[s.rule]})
			} else {
				rhs = append(rhs, Sym{Rule: -1, Value: s.value})
			}
		}
		snap.Rules[i] = rhs
	}
	return snap
}

// compareToOracle feeds one input to both implementations and fails on
// any observable divergence: snapshots (and therefore encodings), the
// expansion, and the live-grammar invariants.
func compareToOracle(t *testing.T, input []uint64, opts Options) {
	t.Helper()
	g := NewWithOptions(opts)
	o := newOracleWithOptions(opts)
	for _, v := range input {
		g.Append(v)
		o.Append(v)
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("arena grammar invariants: %v (input %v)", err, input)
	}
	gs, os := g.Snapshot(), o.Snapshot()
	if !reflect.DeepEqual(gs, os) {
		t.Fatalf("arena snapshot diverges from oracle\n input: %v\n arena: %+v\noracle: %+v", input, gs.Rules, os.Rules)
	}
	slack := 2 + len(input)/50
	if d := g.DigramDuplicates(); d > slack {
		t.Fatalf("%d duplicate digrams over %d inputs, slack %d", d, len(input), slack)
	}
	if m := g.UnindexedDigrams(); m > slack {
		t.Fatalf("%d unindexed digrams over %d inputs, slack %d", m, len(input), slack)
	}
}

// FuzzArenaOracleParity drives arbitrary byte streams through the arena
// implementation and the pointer/map oracle and fails on any snapshot
// divergence. The alphabet is kept small so repeated digrams (rule
// creation, reuse, expansion) dominate; seeds include long runs of one
// symbol, which stress exactly the overlap handling and the table's
// backward-shift deletion path.
func FuzzArenaOracleParity(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{1, 2, 3, 1, 2, 3}, false)
	f.Add(bytes.Repeat([]byte{7}, 64), false)                      // one long run
	f.Add(bytes.Repeat([]byte{7}, 41), true)                       // odd-length run, utility off
	f.Add(bytes.Repeat([]byte{1, 1, 1, 1, 2}, 20), false)          // runs broken by a separator
	f.Add(bytes.Repeat([]byte{'a', 'b', 'c', 'd', 'b', 'c'}, 12), false) // the DCC'97 example, repeated
	f.Fuzz(func(t *testing.T, data []byte, disableUtility bool) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		in := make([]uint64, len(data))
		for i, b := range data {
			in[i] = uint64(b % 8)
		}
		compareToOracle(t, in, Options{DisableRuleUtility: disableUtility})
	})
}

// TestArenaOracleParityRandom is the always-on slice of the fuzz
// property: random tapes over several alphabet sizes, biased toward the
// run-heavy inputs that exercise overlapping digrams.
func TestArenaOracleParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		alpha := 1 + rng.Intn(6)
		n := rng.Intn(500)
		in := make([]uint64, 0, n)
		for len(in) < n {
			v := uint64(rng.Intn(alpha))
			run := 1
			if rng.Intn(4) == 0 { // a quarter of draws become runs
				run = 1 + rng.Intn(12)
			}
			for k := 0; k < run && len(in) < n; k++ {
				in = append(in, v)
			}
		}
		compareToOracle(t, in, Options{})
		compareToOracle(t, in, Options{DisableRuleUtility: true})
	}
}

// TestResetReuseMatchesOracleAcrossChunks pins the pooled-grammar
// contract end to end: one arena grammar, Reset between chunk
// compressions, must reproduce a fresh oracle's snapshot encoding for
// every chunk of a long stream — the exact reuse pattern of the parallel
// builder's workers.
func TestResetReuseMatchesOracleAcrossChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	stream := make([]uint64, 20000)
	for i := range stream {
		if i > 0 && rng.Intn(3) > 0 {
			stream[i] = stream[i-1] // run-heavy
		} else {
			stream[i] = uint64(rng.Intn(6))
		}
	}
	pooled := New()
	for _, chunkSize := range []int{1, 7, 256, 4096} {
		for lo := 0; lo < len(stream); lo += chunkSize {
			hi := min(lo+chunkSize, len(stream))
			pooled.Reset()
			o := newOracle()
			for _, v := range stream[lo:hi] {
				pooled.Append(v)
				o.Append(v)
			}
			var pb, ob bytes.Buffer
			if _, err := pooled.Snapshot().Encode(&pb); err != nil {
				t.Fatal(err)
			}
			if _, err := o.Snapshot().Encode(&ob); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pb.Bytes(), ob.Bytes()) {
				t.Fatalf("chunk [%d,%d): pooled grammar encoding diverges from fresh oracle (chunkSize %d)", lo, hi, chunkSize)
			}
			if err := pooled.Verify(); err != nil {
				t.Fatalf("chunk [%d,%d): %v", lo, hi, err)
			}
		}
	}
}
