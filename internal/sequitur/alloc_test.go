package sequitur

// Allocation regression guards for the arena layout. The contract the
// parallel builder's worker pool depends on: once a pooled grammar has
// grown its slabs, rule arena, and digram table to a stream's working
// set, replaying a stream of that size through Reset+Append touches the
// allocator zero times, and Snapshot stays at a constant handful of
// allocations regardless of rule count.

import (
	"math/rand"
	"testing"

	"repro/internal/obsv"
)

// testMetrics returns a fully populated hook set backed by a throwaway
// registry.
func testMetrics() Metrics {
	reg := obsv.NewRegistry()
	return Metrics{
		Terminals:    reg.Counter("terminals"),
		RulesCreated: reg.Counter("rules_created"),
		RulesReused:  reg.Counter("rules_reused"),
		DigramTable:  reg.Gauge("digram_table"),
	}
}

// allocStream is a WPP-shaped tape: hot patterns with occasional noise,
// large enough to force several slab and table growths on first contact.
func allocStream(n int) []uint64 {
	rng := rand.New(rand.NewSource(21))
	in := make([]uint64, n)
	for i := range in {
		switch {
		case rng.Intn(40) == 0:
			in[i] = uint64(100 + rng.Intn(20))
		default:
			in[i] = uint64([]uint64{1, 2, 1, 3}[i%4])
		}
	}
	return in
}

func TestSteadyStateAppendAllocatesNothing(t *testing.T) {
	in := allocStream(60000)
	g := New()
	replay := func() {
		g.Reset()
		for _, v := range in {
			g.Append(v)
		}
	}
	replay() // warm-up: grow slabs, rule arena, and table past the working set
	allocs := testing.AllocsPerRun(5, replay)
	if allocs != 0 {
		t.Errorf("steady-state Reset+Append allocated %.1f times per replay of %d events, want 0", allocs, len(in))
	}
}

func TestSteadyStateAppendAllocatesNothingWithMetrics(t *testing.T) {
	// The nil-guarded metrics fast path must not reintroduce allocation
	// when instrumentation is on: obsv metrics are atomics all the way.
	in := allocStream(30000)
	g := New()
	g.SetMetrics(testMetrics())
	replay := func() {
		g.Reset()
		for _, v := range in {
			g.Append(v)
		}
	}
	replay()
	if allocs := testing.AllocsPerRun(5, replay); allocs != 0 {
		t.Errorf("instrumented steady-state Append allocated %.1f times per replay, want 0", allocs)
	}
}

func TestSnapshotAllocsBounded(t *testing.T) {
	in := allocStream(60000)
	g := New()
	for _, v := range in {
		g.Append(v)
	}
	rules := g.Stats().Rules
	var sink *Snapshot
	allocs := testing.AllocsPerRun(10, func() { sink = g.Snapshot() })
	_ = sink
	// One allocation each for the snapshot, the Rules slice, the shared
	// Sym backing array, the dense rule-discovery index, and the
	// reference-order worklist — independent of the rule count.
	const bound = 8
	if allocs > bound {
		t.Errorf("Snapshot of %d rules allocated %.1f times, want <= %d (allocs must not scale with rules)", rules, allocs, bound)
	}
}

// BenchmarkSequiturAppend* are the headline compressor benchmarks (the
// CI smoke step runs every benchmark matching "Sequitur"). Loopy is the
// WPP regime: a hot path pattern with noise. Run is a single repeated
// symbol, the overlap-handling worst case. Random is the incompressible
// regime where the digram table dominates. Pooled replays chunks through
// one Reset grammar, the parallel builder's steady state.

func benchAppend(b *testing.B, next func(i int) uint64) {
	b.Helper()
	b.ReportAllocs()
	g := New()
	for i := 0; i < b.N; i++ {
		g.Append(next(i))
	}
}

func BenchmarkSequiturAppendLoopy(b *testing.B) {
	pattern := []uint64{1, 2, 1, 3}
	benchAppend(b, func(i int) uint64 {
		if i%97 == 0 {
			return uint64(100 + i%13)
		}
		return pattern[i%4]
	})
}

func BenchmarkSequiturAppendRun(b *testing.B) {
	benchAppend(b, func(int) uint64 { return 7 })
}

func BenchmarkSequiturAppendRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := make([]uint64, b.N)
	for i := range in {
		in[i] = uint64(rng.Intn(64))
	}
	b.ResetTimer()
	benchAppend(b, func(i int) uint64 { return in[i] })
}

func BenchmarkSequiturAppendPooled(b *testing.B) {
	const chunk = 4096
	in := allocStream(chunk)
	b.ReportAllocs()
	g := New()
	for i := 0; i < b.N; i += chunk {
		g.Reset()
		for _, v := range in {
			g.Append(v)
		}
	}
}

func BenchmarkSequiturSnapshot(b *testing.B) {
	in := allocStream(1 << 16)
	g := New()
	for _, v := range in {
		g.Append(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Snapshot()
	}
}
