package sequitur

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary layout of an encoded Snapshot (all integers unsigned varints):
//
//	magic "SQG1" (4 bytes)
//	numRules
//	for each rule: rhsLen, then rhsLen symbols
//
// A symbol is a single varint: terminals encode as value<<1, rule
// references as ruleIndex<<1|1. Terminal values are < MaxTerminal = 2^62,
// so the shift cannot overflow.

var magic = [4]byte{'S', 'Q', 'G', '1'}

// Encode writes the snapshot to w and returns the number of bytes written.
func (sn *Snapshot) Encode(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}
	if _, err := cw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := cw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(sn.Rules))); err != nil {
		return cw.n, err
	}
	for _, rhs := range sn.Rules {
		if err := putUvarint(uint64(len(rhs))); err != nil {
			return cw.n, err
		}
		for _, s := range rhs {
			var v uint64
			if s.IsRule() {
				v = uint64(s.Rule)<<1 | 1
			} else {
				v = s.Value << 1
			}
			if err := putUvarint(v); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// EncodedSize returns the number of bytes Encode would write.
func (sn *Snapshot) EncodedSize() int64 {
	n := int64(len(magic))
	n += int64(uvarintLen(uint64(len(sn.Rules))))
	for _, rhs := range sn.Rules {
		n += int64(uvarintLen(uint64(len(rhs))))
		for _, s := range rhs {
			if s.IsRule() {
				n += int64(uvarintLen(uint64(s.Rule)<<1 | 1))
			} else {
				n += int64(uvarintLen(s.Value << 1))
			}
		}
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Decode reads a snapshot written by Encode. When r is already a
// *bufio.Reader it is used directly (no read-ahead is lost), so multiple
// snapshots can be decoded back to back from one stream.
func Decode(r io.Reader) (*Snapshot, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("sequitur: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("sequitur: bad magic %q", m[:])
	}
	numRules, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("sequitur: reading rule count: %w", err)
	}
	const maxRules = 1 << 31
	if numRules > maxRules {
		return nil, fmt.Errorf("sequitur: implausible rule count %d", numRules)
	}
	sn := &Snapshot{Rules: make([][]Sym, 0, min(numRules, 1<<16))}
	for i := 0; i < int(numRules); i++ {
		rhsLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("sequitur: rule %d: reading length: %w", i, err)
		}
		if rhsLen > maxRules {
			return nil, fmt.Errorf("sequitur: rule %d: implausible length %d", i, rhsLen)
		}
		// Grow incrementally: every symbol costs at least one input byte,
		// so a corrupt length fails at EOF instead of allocating it all.
		rhs := make([]Sym, 0, min(rhsLen, 1<<16))
		for j := uint64(0); j < rhsLen; j++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("sequitur: rule %d sym %d: %w", i, j, err)
			}
			if v&1 == 1 {
				ri := v >> 1
				if ri >= numRules {
					return nil, fmt.Errorf("sequitur: rule %d sym %d: rule reference %d out of range", i, j, ri)
				}
				rhs = append(rhs, Sym{Rule: int32(ri)})
			} else {
				rhs = append(rhs, Sym{Rule: -1, Value: v >> 1})
			}
		}
		sn.Rules = append(sn.Rules, rhs)
	}
	return sn, nil
}

// Validate checks that the snapshot is well formed and acyclic: every rule
// reference is in range, no rule (except possibly the start rule) is
// empty, and the reference graph has no cycles (a cyclic grammar would
// expand forever).
func (sn *Snapshot) Validate() error {
	if len(sn.Rules) == 0 {
		return fmt.Errorf("sequitur: snapshot has no rules")
	}
	state := make([]int8, len(sn.Rules)) // 0 unvisited, 1 in progress, 2 done
	var visit func(int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("sequitur: rule %d participates in a cycle", i)
		case 2:
			return nil
		}
		state[i] = 1
		for _, s := range sn.Rules[i] {
			if s.IsRule() {
				if int(s.Rule) >= len(sn.Rules) {
					return fmt.Errorf("sequitur: rule %d references out-of-range rule %d", i, s.Rule)
				}
				if err := visit(int(s.Rule)); err != nil {
					return err
				}
			}
		}
		state[i] = 2
		return nil
	}
	for i := range sn.Rules {
		if i > 0 && len(sn.Rules[i]) < 2 {
			return fmt.Errorf("sequitur: rule %d has %d symbols (min 2)", i, len(sn.Rules[i]))
		}
		if err := visit(i); err != nil {
			return err
		}
	}
	return nil
}

// ExpandedLen returns the length of the full expansion of each rule.
func (sn *Snapshot) ExpandedLen() []uint64 {
	lens := make([]uint64, len(sn.Rules))
	done := make([]bool, len(sn.Rules))
	var visit func(int) uint64
	visit = func(i int) uint64 {
		if done[i] {
			return lens[i]
		}
		var n uint64
		for _, s := range sn.Rules[i] {
			if s.IsRule() {
				n += visit(int(s.Rule))
			} else {
				n++
			}
		}
		lens[i] = n
		done[i] = true
		return n
	}
	for i := range sn.Rules {
		visit(i)
	}
	return lens
}

// Dot renders the snapshot's rule DAG in Graphviz syntax. label renders
// terminal values; nil uses decimal.
func (sn *Snapshot) Dot(label func(uint64) string) string {
	if label == nil {
		label = func(v uint64) string { return fmt.Sprintf("%d", v) }
	}
	var sb bytes.Buffer
	sb.WriteString("digraph wpp_grammar {\n  rankdir=TB;\n")
	for i, rhs := range sn.Rules {
		var body bytes.Buffer
		for j, s := range rhs {
			if j > 0 {
				body.WriteByte(' ')
			}
			if s.IsRule() {
				fmt.Fprintf(&body, "R%d", s.Rule)
			} else {
				body.WriteString(label(s.Value))
			}
		}
		name := fmt.Sprintf("R%d", i)
		if i == 0 {
			name = "S"
		}
		fmt.Fprintf(&sb, "  r%d [shape=box label=%q];\n", i, fmt.Sprintf("%s -> %s", name, body.String()))
		seen := map[int32]bool{}
		for _, s := range rhs {
			if s.IsRule() && !seen[s.Rule] {
				seen[s.Rule] = true
				fmt.Fprintf(&sb, "  r%d -> r%d;\n", i, s.Rule)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// countWriter counts bytes written through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
