package sequitur

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// feed appends all values and returns the grammar.
func feed(t *testing.T, input []uint64) *Grammar {
	t.Helper()
	g := New()
	for _, v := range input {
		g.Append(v)
	}
	return g
}

// expandAll returns the full expansion of the start rule.
func expandAll(g *Grammar) []uint64 {
	var out []uint64
	g.Expand(func(v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

func checkRoundTrip(t *testing.T, input []uint64) {
	t.Helper()
	g := feed(t, input)
	got := expandAll(g)
	if len(got) == 0 && len(input) == 0 {
		return
	}
	if !reflect.DeepEqual(got, input) {
		t.Fatalf("expansion mismatch:\n input=%v\n   got=%v", input, got)
	}
	if err := g.Verify(); err != nil {
		t.Fatalf("invariants violated for input %v: %v", input, err)
	}
	if g.Len() != uint64(len(input)) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(input))
	}
}

func TestEmptyGrammar(t *testing.T) {
	g := New()
	if got := expandAll(g); len(got) != 0 {
		t.Fatalf("empty grammar expands to %v", got)
	}
	st := g.Stats()
	if st.Rules != 1 || st.RHSSymbols != 0 || st.Terminals != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSymbol(t *testing.T) {
	checkRoundTrip(t, []uint64{42})
}

func TestNoRepetition(t *testing.T) {
	checkRoundTrip(t, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	g := feed(t, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	if st := g.Stats(); st.Rules != 1 {
		t.Fatalf("no repetition should create no rules, got %d", st.Rules)
	}
}

func TestClassicAbcabc(t *testing.T) {
	// "abcabc" must produce S -> A A? No: S -> AcAc is wrong; SEQUITUR
	// yields S -> X X, X -> a b c via intermediate steps... we only check
	// semantics and invariants plus that at least one rule was formed.
	in := []uint64{1, 2, 3, 1, 2, 3}
	checkRoundTrip(t, in)
	g := feed(t, in)
	if st := g.Stats(); st.Rules < 2 {
		t.Fatalf("expected at least one derived rule, stats %+v", st)
	}
}

func TestPaperExample(t *testing.T) {
	// Nevill-Manning & Witten's running example: "abcdbcabcdbc".
	in := []uint64{'a', 'b', 'c', 'd', 'b', 'c', 'a', 'b', 'c', 'd', 'b', 'c'}
	checkRoundTrip(t, in)
	g := feed(t, in)
	st := g.Stats()
	// The published grammar is S -> AA, A -> aBdB, B -> bc: 3 rules and 8
	// RHS symbols. Our implementation must find an equally compact one.
	if st.Rules != 3 || st.RHSSymbols != 8 {
		t.Fatalf("expected 3 rules / 8 symbols as in the DCC'97 paper, got %+v", st)
	}
}

func TestRunsOfIdenticalSymbols(t *testing.T) {
	for n := 1; n <= 40; n++ {
		in := make([]uint64, n)
		for i := range in {
			in[i] = 7
		}
		checkRoundTrip(t, in)
	}
}

func TestPeriodicInput(t *testing.T) {
	var in []uint64
	for i := 0; i < 200; i++ {
		in = append(in, uint64(i%5))
	}
	checkRoundTrip(t, in)
	g := feed(t, in)
	st := g.Stats()
	if st.RHSSymbols >= 200/2 {
		t.Fatalf("periodic input should compress well, got %+v", st)
	}
}

func TestNestedRepetition(t *testing.T) {
	// (ab)^2 (cd)^2 repeated: hierarchical structure.
	unit := []uint64{1, 2, 1, 2, 3, 4, 3, 4}
	var in []uint64
	for i := 0; i < 16; i++ {
		in = append(in, unit...)
	}
	checkRoundTrip(t, in)
	g := feed(t, in)
	if st := g.Stats(); st.RHSSymbols > 64 {
		t.Fatalf("nested repetition compresses poorly: %+v", st)
	}
}

func TestFibonacciString(t *testing.T) {
	// Fibonacci strings stress overlapping digrams and deep hierarchy.
	a, b := []uint64{0}, []uint64{0, 1}
	for len(b) < 3000 {
		a, b = b, append(append([]uint64{}, b...), a...)
	}
	checkRoundTrip(t, b)
}

func TestInvariantsUnderRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		alpha := 1 + rng.Intn(6)
		n := 1 + rng.Intn(400)
		in := make([]uint64, n)
		for i := range in {
			in[i] = uint64(rng.Intn(alpha))
		}
		checkRoundTrip(t, in)
	}
}

func TestInvariantsAfterEveryAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := make([]uint64, 300)
	for i := range in {
		in[i] = uint64(rng.Intn(4))
	}
	g := New()
	for i, v := range in {
		g.Append(v)
		if err := g.Verify(); err != nil {
			t.Fatalf("after %d appends (input %v): %v", i+1, in[:i+1], err)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		in := make([]uint64, len(raw))
		for i, b := range raw {
			in[i] = uint64(b % 8)
		}
		g := New()
		for _, v := range in {
			g.Append(v)
		}
		got := expandAll(g)
		if len(in) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, in) && g.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompressionNeverExpandsAboveInput(t *testing.T) {
	// Grammar size (RHS symbols + 2 per rule as overhead proxy) should
	// never exceed a small multiple of the input length.
	f := func(raw []byte) bool {
		g := New()
		for _, b := range raw {
			g.Append(uint64(b))
		}
		st := g.Stats()
		return uint64(st.RHSSymbols) <= uint64(len(raw))+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeTerminalValues(t *testing.T) {
	in := []uint64{MaxTerminal - 1, 0, MaxTerminal - 1, 0, MaxTerminal - 1, 0}
	checkRoundTrip(t, in)
}

func TestAppendPanicsOnHugeTerminal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range terminal")
		}
	}()
	New().Append(MaxTerminal)
}

func TestSnapshotMatchesLiveExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := make([]uint64, 500)
	for i := range in {
		in[i] = uint64(rng.Intn(5))
	}
	g := feed(t, in)
	sn := g.Snapshot()
	if err := sn.Validate(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	sn.Expand(0, func(v uint64) bool {
		got = append(got, v)
		return true
	})
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("snapshot expansion mismatch")
	}
	lens := sn.ExpandedLen()
	if lens[0] != uint64(len(in)) {
		t.Fatalf("ExpandedLen[0] = %d, want %d", lens[0], len(in))
	}
}

func TestSnapshotStableAcrossEqualInputs(t *testing.T) {
	in := []uint64{1, 2, 1, 2, 3, 1, 2, 1, 2, 3}
	a := feed(t, in).Snapshot()
	b := feed(t, in).Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("snapshots differ for identical inputs")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(600)
		in := make([]uint64, n)
		for i := range in {
			in[i] = uint64(rng.Intn(6))
		}
		g := feed(t, in)
		sn := g.Snapshot()
		var buf bytes.Buffer
		written, err := sn.Encode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if written != int64(buf.Len()) {
			t.Fatalf("Encode reported %d bytes, wrote %d", written, buf.Len())
		}
		if got := sn.EncodedSize(); got != written {
			t.Fatalf("EncodedSize = %d, Encode wrote %d", got, written)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, sn) {
			t.Fatal("decode(encode(snapshot)) != snapshot")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
	// Valid magic, truncated body.
	if _, err := Decode(bytes.NewReader([]byte{'S', 'Q', 'G', '1', 5})); err == nil {
		t.Fatal("expected error for truncated body")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	sn := &Snapshot{Rules: [][]Sym{
		{{Rule: 1}, {Rule: 1}},
		{{Rule: 1}, {Rule: -1, Value: 3}},
	}}
	if err := sn.Validate(); err == nil {
		t.Fatal("expected cycle to be rejected")
	}
}

func TestValidateRejectsShortRule(t *testing.T) {
	sn := &Snapshot{Rules: [][]Sym{
		{{Rule: 1}, {Rule: 1}},
		{{Rule: -1, Value: 3}},
	}}
	if err := sn.Validate(); err == nil {
		t.Fatal("expected 1-symbol rule to be rejected")
	}
}

func TestExpandEarlyStop(t *testing.T) {
	g := feed(t, []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3})
	count := 0
	g.Expand(func(uint64) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("expected early stop after 4 yields, got %d", count)
	}
}

func TestCompressionOnRealisticTrace(t *testing.T) {
	// Simulate a loopy path-ID trace: a hot inner path repeated with
	// occasional cold detours, the regime the WPP paper targets.
	rng := rand.New(rand.NewSource(5))
	var in []uint64
	for i := 0; i < 2000; i++ {
		if rng.Intn(20) == 0 {
			in = append(in, uint64(100+rng.Intn(10)))
		} else {
			in = append(in, 1, 2, 1, 3)
		}
	}
	g := feed(t, in)
	checkRoundTrip(t, in)
	st := g.Stats()
	if ratio := float64(len(in)) / float64(st.RHSSymbols); ratio < 5 {
		t.Fatalf("expected >=5x structural compression on loopy trace, got %.2f (%+v)", ratio, st)
	}
}

func TestDisableRuleUtility(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := make([]uint64, 1500)
	for i := range in {
		in[i] = uint64(rng.Intn(5))
	}
	g := NewWithOptions(Options{DisableRuleUtility: true})
	for _, v := range in {
		g.Append(v)
	}
	got := expandAll(g)
	if !reflect.DeepEqual(got, in) {
		t.Fatal("expansion mismatch with utility disabled")
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	base := feed(t, in)
	// Without the utility invariant the grammar keeps once-used rules, so
	// it must have at least as many rules as the default.
	if g.Stats().Rules < base.Stats().Rules {
		t.Fatalf("utility-off rules %d < default rules %d", g.Stats().Rules, base.Stats().Rules)
	}
}

func TestDigramDuplicatesStaySmall(t *testing.T) {
	// Exact digram uniqueness is not guaranteed at seams (see Verify), but
	// violations must stay rare or compression quality degrades.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := New()
		n := 2000
		for i := 0; i < n; i++ {
			g.Append(uint64(rng.Intn(6)))
		}
		if dups := g.DigramDuplicates(); dups > n/50 {
			t.Fatalf("trial %d: %d duplicate digrams for %d inputs", trial, dups, n)
		}
	}
}

func TestLargeInputStress(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping stress test in -short mode")
	}
	// A million symbols with WPP-like structure: a few hot patterns,
	// occasional phase changes, rare noise. Checks that the grammar stays
	// consistent and compact at scale.
	rng := rand.New(rand.NewSource(9))
	g := New()
	const n = 1_000_000
	phasePattern := []uint64{1, 2, 1, 3}
	for i := 0; i < n; {
		switch {
		case rng.Intn(1000) == 0: // phase change
			for j := range phasePattern {
				phasePattern[j] = uint64(rng.Intn(50))
			}
			i++
			g.Append(uint64(900 + rng.Intn(10)))
		case rng.Intn(50) == 0: // noise
			g.Append(uint64(100 + rng.Intn(100)))
			i++
		default:
			for _, v := range phasePattern {
				g.Append(v)
			}
			i += len(phasePattern)
		}
	}
	st := g.Stats()
	if st.Terminals < n {
		t.Fatalf("only %d terminals consumed", st.Terminals)
	}
	if ratio := float64(st.Terminals) / float64(st.RHSSymbols); ratio < 10 {
		t.Fatalf("structural compression only %.1fx at 1M symbols (%+v)", ratio, st)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	// The expansion length must be exact without materializing it.
	sn := g.Snapshot()
	if lens := sn.ExpandedLen(); lens[0] != st.Terminals {
		t.Fatalf("expansion length %d != %d terminals", lens[0], st.Terminals)
	}
}

func TestWorstCaseAllDistinct(t *testing.T) {
	// All-distinct input cannot compress: the grammar must degrade to the
	// start rule holding the input, with zero derived rules.
	g := New()
	const n = 20000
	for i := 0; i < n; i++ {
		g.Append(uint64(i))
	}
	st := g.Stats()
	if st.Rules != 1 || st.RHSSymbols != n {
		t.Fatalf("all-distinct input produced %+v", st)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in := make([]uint64, b.N)
	for i := range in {
		in[i] = uint64(rng.Intn(64))
	}
	b.ResetTimer()
	g := New()
	for _, v := range in {
		g.Append(v)
	}
}

func BenchmarkAppendLoopy(b *testing.B) {
	b.ReportAllocs()
	g := New()
	for i := 0; i < b.N; i++ {
		g.Append(uint64(i % 7))
	}
}
