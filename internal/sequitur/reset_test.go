package sequitur

// White-box tests pinning down Reset's contract: every piece of builder
// state — rule IDs, the digram table, terminal and symbol counts — is
// cleared, so a pooled, Reset grammar is indistinguishable from a fresh
// New() one.

import (
	"bytes"
	"testing"

	"repro/internal/obsv"
)

// feed appends a repetitive stream that forces rule creation, so the
// digram table and rule IDs are exercised before Reset.
func feedRepetitive(g *Grammar, rounds int) {
	for i := 0; i < rounds; i++ {
		for _, v := range []uint64{1, 2, 3, 1, 2, 3, 4, 4} {
			g.Append(v)
		}
	}
}

func TestResetClearsAllState(t *testing.T) {
	g := New()
	feedRepetitive(g, 8)
	if g.table.live == 0 {
		t.Fatal("digram table empty after repetitive input; test input is too weak")
	}
	if g.nextID == 1 {
		t.Fatal("no rule IDs allocated after repetitive input")
	}
	if g.terminals == 0 || g.rhsSymbols == 0 || g.liveRules <= 1 {
		t.Fatalf("unexpected pre-Reset state: terminals=%d rhsSymbols=%d liveRules=%d",
			g.terminals, g.rhsSymbols, g.liveRules)
	}

	g.Reset()

	if got := g.table.live; got != 0 {
		t.Errorf("digram table has %d entries after Reset, want 0", got)
	}
	if cap(g.table.entries) < minTableCap {
		t.Errorf("digram table lost its capacity across Reset")
	}
	if g.nextID != 1 {
		t.Errorf("nextID = %d after Reset, want 1", g.nextID)
	}
	if g.terminals != 0 {
		t.Errorf("terminals = %d after Reset, want 0", g.terminals)
	}
	if g.rhsSymbols != 0 {
		t.Errorf("rhsSymbols = %d after Reset, want 0", g.rhsSymbols)
	}
	if g.liveRules != 1 {
		t.Errorf("liveRules = %d after Reset, want 1 (start rule)", g.liveRules)
	}
	if g.Len() != 0 {
		t.Errorf("Len() = %d after Reset, want 0", g.Len())
	}
	if st := g.Stats(); st != (Stats{Rules: 1}) {
		t.Errorf("Stats() = %+v after Reset, want zero except Rules=1", st)
	}
	// The start rule must be replaced, not merely truncated: symbols of
	// the old derivation must not leak into the new one.
	if s := g.sym(g.firstOf(g.start)); !s.guard {
		t.Errorf("start rule still has RHS symbols after Reset (first = %+v)", s)
	}
	// The arenas must be rewound, not released: Reset keeps the slabs.
	if g.symUsed != 1+1 { // nil sentinel skipped, one guard for the new start rule
		t.Errorf("symbol arena cursor = %d after Reset, want 2", g.symUsed)
	}
	if len(g.slabs) == 0 {
		t.Error("symbol slabs released by Reset; they must be retained for reuse")
	}
}

// TestResetEquivalentToFresh is the behavioral half of the contract: a
// Reset grammar compresses a stream into exactly the grammar a fresh one
// produces, byte for byte.
func TestResetEquivalentToFresh(t *testing.T) {
	reused := New()
	feedRepetitive(reused, 16) // pollute with an unrelated derivation
	reused.Reset()

	fresh := New()
	second := []uint64{7, 8, 7, 8, 9, 7, 8, 7, 8, 9, 10}
	for i := 0; i < 5; i++ {
		for _, v := range second {
			reused.Append(v)
			fresh.Append(v)
		}
	}

	if rs, fs := reused.Stats(), fresh.Stats(); rs != fs {
		t.Fatalf("stats diverge: reused %+v, fresh %+v", rs, fs)
	}
	var rb, fb bytes.Buffer
	if _, err := reused.Snapshot().Encode(&rb); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Snapshot().Encode(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb.Bytes(), fb.Bytes()) {
		t.Errorf("reused grammar encodes to %d bytes != fresh %d bytes", rb.Len(), fb.Len())
	}
}

// TestResetKeepsMetrics pins the pooled-grammar contract: hooks survive
// Reset (counters keep accumulating) while the digram-table gauge drops
// to zero with the cleared table.
func TestResetKeepsMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	g := New()
	g.SetMetrics(Metrics{
		Terminals:   reg.Counter("terms"),
		DigramTable: reg.Gauge("digrams"),
	})
	feedRepetitive(g, 4)
	before := reg.Counter("terms").Value()
	if before == 0 {
		t.Fatal("terminal counter not incremented")
	}
	if reg.Gauge("digrams").Value() == 0 {
		t.Fatal("digram gauge not set")
	}

	g.Reset()
	if got := reg.Gauge("digrams").Value(); got != 0 {
		t.Errorf("digram gauge = %d after Reset, want 0", got)
	}
	g.Append(1)
	if got := reg.Counter("terms").Value(); got != before+1 {
		t.Errorf("terminal counter = %d after Reset+Append, want %d (hooks must survive Reset)", got, before+1)
	}
}
