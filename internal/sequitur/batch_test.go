package sequitur

// The batch/scalar differential suite: AppendBatch is a second
// implementation of the SEQUITUR update, so every test here drives the
// same stream through both paths and requires structurally identical
// grammars. Verify outcomes are compared rather than required nil —
// the scalar reference itself has documented rule-utility seam slack
// on some streams, and the batch path must reproduce it exactly, not
// "fix" it.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// diffStreams feeds vs through scalar Append and through AppendBatch in
// the given splits, then asserts the two grammars are indistinguishable:
// same Verify outcome, same snapshot, same stats.
func diffStreams(t *testing.T, vs []uint64, splits []int) {
	t.Helper()
	gs := New()
	for _, v := range vs {
		gs.Append(v)
	}
	gb := New()
	lo := 0
	for _, w := range splits {
		gb.AppendBatch(vs[lo : lo+w])
		lo += w
	}
	if lo != len(vs) {
		t.Fatalf("splits cover %d of %d values", lo, len(vs))
	}
	if s, b := fmt.Sprint(gs.Verify()), fmt.Sprint(gb.Verify()); s != b {
		t.Fatalf("Verify outcomes differ: scalar=%v batch=%v", s, b)
	}
	if !reflect.DeepEqual(gs.Snapshot(), gb.Snapshot()) {
		t.Fatalf("snapshots differ (n=%d)", len(vs))
	}
	if gs.Stats() != gb.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", gs.Stats(), gb.Stats())
	}
}

// randomSplits cuts n into random batch widths in [1, maxW].
func randomSplits(rng *rand.Rand, n, maxW int) []int {
	var splits []int
	for rem := n; rem > 0; {
		w := min(1+rng.Intn(maxW), rem)
		splits = append(splits, w)
		rem -= w
	}
	return splits
}

// TestBatchDifferentialRandom: random streams over small alphabets
// (maximal digram collision pressure), random batch boundaries.
func TestBatchDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(2000)
		alpha := 1 + rng.Intn(12)
		vs := make([]uint64, n)
		for i := range vs {
			vs[i] = uint64(rng.Intn(alpha))
		}
		diffStreams(t, vs, randomSplits(rng, n, 64))
	}
}

// TestBatchDifferentialPatterns pins the structured shapes that stress
// specific engine paths: identical runs (overlap handling), period-2
// and period-4 repetition (deep rule nesting and rule reuse), and a
// stream long enough to grow slabs and rehash the digram table inside
// one batch.
func TestBatchDifferentialPatterns(t *testing.T) {
	patterns := map[string][]uint64{}
	run := make([]uint64, 500)
	for i := range run {
		run[i] = 7
	}
	patterns["identical-run"] = run
	ab := make([]uint64, 600)
	for i := range ab {
		ab[i] = uint64(i % 2)
	}
	patterns["period-2"] = ab
	abcd := make([]uint64, 800)
	for i := range abcd {
		abcd[i] = uint64(i % 4)
	}
	patterns["period-4"] = abcd
	big := make([]uint64, 40000)
	rng := rand.New(rand.NewSource(7))
	for i := range big {
		if rng.Intn(40) == 0 {
			big[i] = uint64(100 + rng.Intn(20))
		} else {
			big[i] = []uint64{1, 2, 1, 3}[i%4]
		}
	}
	patterns["grown"] = big
	for name, vs := range patterns {
		t.Run(name, func(t *testing.T) {
			// One whole-stream batch and a fine split both must match.
			diffStreams(t, vs, []int{len(vs)})
			diffStreams(t, vs, randomSplits(rand.New(rand.NewSource(3)), len(vs), 5))
		})
	}
}

// TestBatchMixedWithScalar interleaves Append and AppendBatch calls on
// one grammar against a pure-scalar reference.
func TestBatchMixedWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vs := make([]uint64, 3000)
	for i := range vs {
		vs[i] = uint64(rng.Intn(6))
	}
	gs := New()
	for _, v := range vs {
		gs.Append(v)
	}
	gm := New()
	for lo := 0; lo < len(vs); {
		if rng.Intn(2) == 0 {
			gm.Append(vs[lo])
			lo++
			continue
		}
		hi := min(lo+1+rng.Intn(40), len(vs))
		gm.AppendBatch(vs[lo:hi])
		lo = hi
	}
	if s, b := fmt.Sprint(gs.Verify()), fmt.Sprint(gm.Verify()); s != b {
		t.Fatalf("Verify outcomes differ: scalar=%v mixed=%v", s, b)
	}
	if !reflect.DeepEqual(gs.Snapshot(), gm.Snapshot()) {
		t.Fatal("snapshots differ")
	}
	if gs.Stats() != gm.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", gs.Stats(), gm.Stats())
	}
}

// TestBatchEdgeCases: the empty batch is a no-op; an out-of-range
// terminal panics before any element of the batch is appended.
func TestBatchEdgeCases(t *testing.T) {
	g := New()
	g.AppendBatch(nil)
	g.AppendBatch([]uint64{})
	if st := g.Stats(); st.Terminals != 0 {
		t.Fatalf("empty batches appended %d terminals", st.Terminals)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AppendBatch accepted a terminal >= MaxTerminal")
			}
		}()
		g.AppendBatch([]uint64{1, 2, MaxTerminal})
	}()
	// The batch was rejected whole: not even the valid prefix landed.
	if st := g.Stats(); st.Terminals != 0 {
		t.Fatalf("rejected batch still appended %d terminals", st.Terminals)
	}
}

// TestBatchMetricsParity: instrumented counters must agree between the
// paths after the stream completes (the batch path updates them per
// batch, not per event).
func TestBatchMetricsParity(t *testing.T) {
	vs := allocStream(5000)
	gs := New()
	gs.SetMetrics(testMetrics())
	for _, v := range vs {
		gs.Append(v)
	}
	gb := New()
	gb.SetMetrics(testMetrics())
	gb.AppendBatch(vs)
	for name, pair := range map[string][2]uint64{
		"terminals":     {gs.metrics.Terminals.Value(), gb.metrics.Terminals.Value()},
		"rules_created": {gs.metrics.RulesCreated.Value(), gb.metrics.RulesCreated.Value()},
		"rules_reused":  {gs.metrics.RulesReused.Value(), gb.metrics.RulesReused.Value()},
		"digram_table":  {uint64(gs.metrics.DigramTable.Value()), uint64(gb.metrics.DigramTable.Value())},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s diverges: scalar=%d batch=%d", name, pair[0], pair[1])
		}
	}
}

// TestSteadyStateAppendBatchAllocatesNothing is the batch twin of the
// scalar alloc guard: once warmed, Reset+AppendBatch is 0 B/event.
func TestSteadyStateAppendBatchAllocatesNothing(t *testing.T) {
	in := allocStream(60000)
	g := New()
	replay := func() {
		g.Reset()
		for lo := 0; lo < len(in); lo += 4096 {
			g.AppendBatch(in[lo:min(lo+4096, len(in))])
		}
	}
	replay() // warm-up: grow slabs, rule arena, and table past the working set
	allocs := testing.AllocsPerRun(5, replay)
	if allocs != 0 {
		t.Errorf("steady-state Reset+AppendBatch allocated %.1f times per replay of %d events, want 0", allocs, len(in))
	}
}

// FuzzBatchParity lets the fuzzer pick both the stream and the batch
// geometry; any structural divergence between the paths fails.
func FuzzBatchParity(f *testing.F) {
	f.Add([]byte{1, 1, 0, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 0, 1}, uint8(3))
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3}, uint8(1))
	f.Add([]byte{9, 9, 9, 9, 9, 9}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, width uint8) {
		if len(data) == 0 {
			return
		}
		vs := make([]uint64, len(data))
		for i, b := range data {
			vs[i] = uint64(b % 16)
		}
		w := int(width%64) + 1
		var splits []int
		for rem := len(vs); rem > 0; rem -= w {
			splits = append(splits, min(w, rem))
		}
		diffStreams(t, vs, splits)
	})
}
