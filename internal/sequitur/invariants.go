package sequitur

// This file holds the invariant probes used by the artifact verifier
// (internal/wpp) and the fuzz harnesses: digram-index cross-checks on the
// live grammar and digram/utility/reachability measures on snapshots.

// UnindexedDigrams counts distinct digrams that occur in the grammar's
// symbol chains but have no entry in the digram index — the "missing
// entries" direction of the index/chain cross-check (Verify covers the
// stale-entry direction). As with DigramDuplicates, seam handling around
// substitution and rule expansion legitimately leaves a few of these, so
// tests bound the count rather than demanding zero.
func (g *Grammar) UnindexedDigrams() int {
	seen := map[ruleRef]bool{g.start: true}
	queue := []ruleRef{g.start}
	chain := map[digram]bool{}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		prevOverlap := false
		for h := g.firstOf(r); !g.sym(h).guard; h = g.sym(h).next {
			s := g.sym(h)
			if s.isNonterminal() && !seen[s.rule] {
				seen[s.rule] = true
				queue = append(queue, s.rule)
			}
			if g.sym(s.next).guard {
				continue
			}
			d := g.digramAt(h)
			// Skip the second of two overlapping occurrences (aaa); the
			// index never holds those.
			if !g.sym(s.prev).guard && g.keyOf(s.prev) == d.a && d.a == d.b && !prevOverlap {
				prevOverlap = true
				continue
			}
			prevOverlap = false
			chain[d] = true
		}
	}
	missing := 0
	for d := range chain {
		if g.table.get(d.a, d.b) == nilSym {
			missing++
		}
	}
	return missing
}

// snapKey mirrors symKey for the array form: terminals by value, rule
// references by complemented index (terminals are < MaxTerminal, so the
// spaces cannot collide).
func snapKey(s Sym) uint64 {
	if s.IsRule() {
		return ^uint64(s.Rule)
	}
	return s.Value
}

// DigramDuplicates counts digrams occurring more than once across all of
// the snapshot's rule bodies, ignoring immediately overlapping
// occurrences within runs of identical symbols — the same measure
// Grammar.DigramDuplicates computes on the live structure, so decoded
// artifacts can be held to the same bound.
func (sn *Snapshot) DigramDuplicates() int {
	count := map[digram]int{}
	dups := 0
	for _, rhs := range sn.Rules {
		prevOverlap := false
		for i := 0; i+1 < len(rhs); i++ {
			d := digram{snapKey(rhs[i]), snapKey(rhs[i+1])}
			if i > 0 && snapKey(rhs[i-1]) == d.a && d.a == d.b && !prevOverlap {
				prevOverlap = true
				continue
			}
			prevOverlap = false
			count[d]++
			if count[d] > 1 {
				dups++
			}
		}
	}
	return dups
}

// RuleUses returns how many times each rule is referenced on the
// right-hand sides of the snapshot's rules. Rules[0] (the start rule) is
// used zero times in a well-formed grammar; every other rule must be used
// at least twice (rule utility).
func (sn *Snapshot) RuleUses() []int {
	uses := make([]int, len(sn.Rules))
	for _, rhs := range sn.Rules {
		for _, s := range rhs {
			if s.IsRule() && int(s.Rule) < len(uses) {
				uses[s.Rule]++
			}
		}
	}
	return uses
}

// UnreachableRules returns the indices of rules not reachable from the
// start rule. Snapshot always emits a fully reachable grammar; a decoded
// artifact carrying dead rules was not produced by this package.
func (sn *Snapshot) UnreachableRules() []int {
	if len(sn.Rules) == 0 {
		return nil
	}
	seen := make([]bool, len(sn.Rules))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range sn.Rules[i] {
			if s.IsRule() && int(s.Rule) < len(seen) && !seen[s.Rule] {
				seen[s.Rule] = true
				stack = append(stack, int(s.Rule))
			}
		}
	}
	var dead []int
	for i, ok := range seen {
		if !ok {
			dead = append(dead, i)
		}
	}
	return dead
}
