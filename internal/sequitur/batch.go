package sequitur

import "fmt"

// panicTerminal reports an out-of-range terminal, hoisted out of the
// batch loop so the loop body stays inlinable.
func panicTerminal(v uint64) {
	panic(fmt.Sprintf("sequitur: terminal %d out of range", v))
}

// The batch append engine: AppendBatch consumes a slice of terminals and
// produces a grammar structurally identical to feeding the same values
// through Append one at a time. It is a second, specialized implementation
// of the same algorithm, not a loop over Append — the differential tests
// in batch_test.go and the parity fuzzer pin the two paths together.
//
// Where the speed comes from, relative to the scalar path:
//
//   - the start rule's tail handle and its digram key are carried across
//     iterations instead of being re-derived from the guard every event,
//     so the common no-repetition append touches the symbol arena once;
//   - the digram probe uses getOrSet: one walk of the probe chain either
//     finds the repeated occurrence or indexes the new digram, where the
//     scalar path probes twice (get, then set);
//   - substitution passes the digram keys it already knows down the call
//     chain (substituteB, checkKeyed) instead of recomputing them from
//     the arena, and skips the two index probes the scalar unlink pair
//     issues that are provably no-ops (see substituteB);
//   - the replaced occurrence's arena slot is rewritten in place as the
//     new nonterminal instead of being freed and immediately re-allocated;
//   - instrumentation (terminal counter, table gauge) updates once per
//     batch instead of once per event.
//
// Equivalence rests on one observation: the grammar's evolution depends
// only on the digram table's *contents* (a key → occurrence map), never
// on its memory layout, and on the structural chain state — not on arena
// handle numbering. Every shortcut below preserves table contents and
// structure exactly; Verify cross-checks both after the fact.

// AppendBatch feeds a slice of terminals to the grammar, equivalent to
// calling Append for each element in order. It panics if any value is
// >= MaxTerminal — the whole batch is validated before any element is
// appended. The instrumentation hooks observe one update per batch
// rather than per event; counter totals still match the scalar path
// after the batch completes.
func (g *Grammar) AppendBatch(vs []uint64) { AppendBatchOf(g, vs) }

// AppendBatchOf is AppendBatch generalized over any uint64-shaped
// element type, so callers whose event types are defined as uint64
// (trace.Event) feed their slices directly instead of paying a
// conversion copy per batch.
func AppendBatchOf[T ~uint64](g *Grammar, vs []T) {
	if len(vs) == 0 {
		return
	}
	for _, v := range vs {
		if uint64(v) >= MaxTerminal {
			panicTerminal(uint64(v))
		}
	}
	guard := g.rules[g.start].guardSym
	gp := g.sym(guard)
	tail := gp.prev
	tp := g.sym(tail)
	tailGuard := tail == guard
	var tailKey uint64
	if !tailGuard {
		tailKey = g.keyOf(tail)
	}
	// Every iteration links exactly one symbol; substitutions adjust the
	// count down as they happen, so the net bookkeeping can be hoisted.
	g.rhsSymbols += len(vs)
	for _, tv := range vs {
		v := uint64(tv)
		// Inline symbol allocation (allocSym + newSym fused into one
		// slot write) and tail link. tp caches the tail's slot pointer —
		// slabs never move and the tail is live, so it stays valid across
		// iterations.
		h := g.symFree
		var s *symbol
		if h != nilSym {
			s = g.sym(h)
			g.symFree = s.next
		} else {
			h = symRef(g.symUsed)
			if int(h>>slabBits) == len(g.slabs) {
				g.slabs = append(g.slabs, new([slabSize]symbol))
			}
			g.symUsed++
			s = g.sym(h)
		}
		*s = symbol{value: v, next: guard, prev: tail}
		tp.next = h
		gp.prev = h
		if tailGuard {
			// First symbol of the start rule: no digram yet.
			tail, tp, tailKey, tailGuard = h, s, v, false
			continue
		}
		// Digram uniqueness for (tail, h), keys known: the scalar path's
		// check() with its get-then-set replaced by one fused probe. The
		// new digram cannot already be indexed at tail (tail was the last
		// symbol; its digram did not exist), so a found entry is always a
		// genuine other occurrence or an overlap.
		m := g.table.getOrSet(tailKey, v, tail)
		if m == nilSym || g.sym(m).next == tail {
			// Indexed it, or overlapping occurrence (run of identical
			// symbols) which the algorithm leaves unindexed.
			tail, tp, tailKey = h, s, v
			continue
		}
		g.matchB(tail, tp, m, tailKey, v)
		// The substitution rewrote the end of the start rule; re-derive
		// the tail state.
		tail = gp.prev
		tp = g.sym(tail)
		tailGuard = tail == guard
		if !tailGuard {
			if tp.rule != nilRule {
				tailKey = ^g.rules[tp.rule].id
			} else {
				tailKey = tp.value
			}
		}
	}
	g.terminals += uint64(len(vs))
	if g.instrumented {
		g.metrics.Terminals.Add(uint64(len(vs)))
		g.metrics.DigramTable.Set(int64(g.table.live))
	}
}

// matchB mirrors match with the digram keys (a, b) of the repeated
// digram already known: s is the newly formed occurrence, m the indexed
// one. sp is s resolved — callers always have the pointer in hand, and
// sym(h) is a pure function of the handle (slabs never move), so
// threading resolved pointers down the chain drops redundant arena
// resolutions without any aliasing hazard.
func (g *Grammar) matchB(s symRef, sp *symbol, m symRef, a, b uint64) {
	var r ruleRef
	ms := g.sym(m)
	mPrevS := g.sym(ms.prev)
	mNextNextS := g.sym(g.sym(ms.next).next)
	if mPrevS.guard && mNextNextS.guard {
		// The matched occurrence is the entire body of a rule: reuse it.
		// The index entry for (a, b) points at that body and stays.
		r = mPrevS.rule
		g.metrics.RulesReused.Inc()
		g.substituteB(s, sp, r, a, b, false)
	} else {
		r = g.allocRule(g.nextID)
		g.nextID++
		g.liveRules++
		g.metrics.RulesCreated.Inc()
		// Build the two-symbol body (copies of s and s.next) with direct
		// writes instead of the generic copySym+link pair: the body is
		// empty, so every neighbor is the fresh guard.
		gh := g.rules[r].guardSym
		c1 := g.allocSym()
		c2 := g.allocSym()
		xv := g.sym(sp.next)
		*g.sym(c1) = symbol{value: sp.value, rule: sp.rule, next: c2, prev: gh}
		*g.sym(c2) = symbol{value: xv.value, rule: xv.rule, next: gh, prev: c1}
		ghs := g.sym(gh)
		ghs.next, ghs.prev = c1, c2
		g.rhsSymbols += 2
		if sp.rule != nilRule {
			g.rules[sp.rule].uses++
		}
		if xv.rule != nilRule {
			g.rules[xv.rule].uses++
		}
		// Replace the older occurrence first so its index entry is
		// released before the newer one is rewritten.
		g.substituteB(m, ms, r, a, b, true)
		g.substituteB(s, sp, r, a, b, false)
		// Index the body digram. Its keys are exactly (a, b): the copies
		// are never touched by the recursive substitutions above (the
		// body is unreachable from the index until this insert), and a
		// rule a copy references cannot be dissolved while the copy
		// itself holds a use of it, so both keys are stable.
		g.table.set(a, b, c1)
	}
	// Rule utility, exactly as in match.
	if f := g.firstOf(r); !g.opts.DisableRuleUtility {
		fs := g.sym(f)
		if fs.isNonterminal() && g.rules[fs.rule].uses == 1 {
			g.expandB(f, fs)
		}
	}
}

// expandB mirrors expand for the batch chain: u (resolved as us) is the
// only remaining use of its rule rr and — by the matchB call discipline —
// the first body symbol of the rule being grown, so its left seam is that
// rule's guard. That lets this variant skip the left-seam forget probe,
// drop the unlink splice stores (both immediately overwritten by the body
// splice), skip the dead uses decrement on a rule about to be freed, and
// run the right-seam re-check on the fused getOrSet probe with both
// digram keys in hand. Table operation order matches expand exactly.
func (g *Grammar) expandB(u symRef, us *symbol) {
	rr := us.rule
	left := us.prev
	right := us.next
	gh := g.rules[rr].guardSym
	first := g.sym(gh).next
	last := g.sym(gh).prev
	if g.sym(first).guard {
		panic("sequitur: expanding empty rule")
	}
	rightS := g.sym(right)
	rightGuard := rightS.guard
	var bKey uint64
	if !rightGuard {
		// u's right digram may be indexed at u.
		if rightS.rule != nilRule {
			bKey = ^g.rules[rightS.rule].id
		} else {
			bKey = rightS.value
		}
		g.table.deleteIf(^g.rules[rr].id, bKey, u)
	}
	g.rhsSymbols--
	// Free u and splice the rule body in its place. The body symbols keep
	// their identity, so interior digram index entries remain valid; only
	// the guard and the rule's arena slot are released.
	*us = symbol{next: g.symFree}
	g.symFree = u
	leftS := g.sym(left)
	leftS.next = first
	g.sym(first).prev = left
	lastS := g.sym(last)
	lastS.next = right
	rightS.prev = last
	g.liveRules--
	g.freeSym(gh)
	g.freeRule(rr)
	if !leftS.guard {
		// Unreachable under the call discipline (left is the growing
		// rule's guard); kept for exact parity with expand.
		if g.check(left) {
			return
		}
	}
	if !rightGuard {
		var aKey uint64
		if lastS.rule != nilRule {
			aKey = ^g.rules[lastS.rule].id
		} else {
			aKey = lastS.value
		}
		m := g.table.getOrSet(aKey, bKey, last)
		if m == nilSym || m == last {
			return
		}
		if g.sym(m).next == last || m == right {
			// Overlapping occurrence: leave it, as check does.
			return
		}
		g.matchB(last, lastS, m, aKey, bKey)
	}
}

// substituteB replaces the digram (h, h.next) with a reference to rule
// r. The digram's keys (a, b) are passed in, and indexed says whether
// the table entry for (a, b) points at h itself (true for the older,
// indexed occurrence; false for the newly formed one, whose entry points
// at the other occurrence).
//
// Two probes from the scalar unlink pair are skipped as provably dead:
//
//   - unlink(h.next)'s forget of the digram *starting at h* probes
//     (a, b) — that entry points at the matched occurrence, so it is a
//     hit only when indexed (then it must be deleted) and a guaranteed
//     miss otherwise;
//   - unlink(h)'s forget of h's own digram after the first splice: any
//     entry pointing at h must carry h's current digram key (the unlink
//     discipline Verify enforces), which is (a, b) — already deleted or
//     pointing elsewhere — so the probe can never delete anything.
//
// The two replaced symbols are also not round-tripped through the
// freelist: the scalar path frees h and immediately re-allocates the
// same slot for the new nonterminal (LIFO freelist), so the slot is
// rewritten in place here and only h.next's slot is freed.
func (g *Grammar) substituteB(h symRef, hs *symbol, r ruleRef, a, b uint64, indexed bool) {
	p := hs.prev
	x := hs.next
	xs := g.sym(x)
	xNext := xs.next
	xNextS := g.sym(xNext)
	if indexed {
		g.table.deleteIf(a, b, h)
	}
	xnGuard := xNextS.guard
	var xnKey uint64
	if !xnGuard {
		// x's right digram may be indexed at x.
		if xNextS.rule != nilRule {
			xnKey = ^g.rules[xNextS.rule].id
		} else {
			xnKey = xNextS.value
		}
		g.table.deleteIf(b, xnKey, x)
	}
	if xs.rule != nilRule {
		g.rules[xs.rule].uses--
	}
	ps := g.sym(p)
	pGuard := ps.guard
	var pKey uint64
	if !pGuard {
		// The digram (p, h) may be indexed at p.
		if ps.rule != nilRule {
			pKey = ^g.rules[ps.rule].id
		} else {
			pKey = ps.value
		}
		g.table.deleteIf(pKey, a, p)
	}
	if hs.rule != nilRule {
		g.rules[hs.rule].uses--
	}
	// Free x; rewrite h's slot in place as the new nonterminal.
	*xs = symbol{next: g.symFree}
	g.symFree = x
	*hs = symbol{rule: r, next: xNext, prev: p}
	xNextS.prev = h
	g.rhsSymbols--
	g.rules[r].uses++
	// Re-check the seams with their keys in hand. If the left seam
	// substituted, the right seam was handled by the recursive work.
	rKey := ^g.rules[r].id
	if !pGuard && g.checkKeyed(p, ps, pKey, rKey) {
		return
	}
	if !xnGuard {
		g.checkKeyed(h, hs, rKey, xnKey)
	}
}

// checkKeyed is check with both digram keys known and the guard tests
// already done by the caller: it enforces digram uniqueness for the
// digram (h, h.next) whose keys are (a, b), and reports whether a
// substitution took place. hp is h resolved.
func (g *Grammar) checkKeyed(h symRef, hp *symbol, a, b uint64) bool {
	m := g.table.getOrSet(a, b, h)
	if m == nilSym || m == h {
		return false
	}
	if g.sym(m).next == h || hp.next == m {
		// Overlapping occurrence (run of identical symbols): leave it.
		return false
	}
	g.matchB(h, hp, m, a, b)
	return true
}
