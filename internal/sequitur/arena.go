package sequitur

// This file holds the grammar's memory layout: symbols live in chunked
// slabs addressed by dense uint32 handles, rules in one dense slice
// addressed by their arena index. Neither ever hands a pointer to the
// heap allocator on the hot path — Append recycles freed slots through
// intrusive freelists, and Reset rewinds the arenas without releasing
// their storage, so a pooled grammar compresses chunk after chunk with
// zero steady-state allocations.
//
// Handle 0 is reserved in both arenas as the nil sentinel (nilSym,
// nilRule): a terminal symbol's rule field is nilRule, and slot 0 of the
// digram table's value space means "empty", so no valid symbol may be
// handle 0.

// symRef is a handle into the symbol slabs; nilSym (0) is "no symbol".
type symRef uint32

// ruleRef is an index into the rule arena; nilRule (0) is "no rule",
// which is what a terminal symbol carries.
type ruleRef uint32

const (
	nilSym  symRef  = 0
	nilRule ruleRef = 0
)

// Symbol slabs hold 1<<slabBits symbols each (24 B/symbol, 192 KiB per
// slab): large enough that slab growth vanishes from steady state, small
// enough that a fresh grammar stays cheap.
const (
	slabBits = 13
	slabSize = 1 << slabBits
	slabMask = slabSize - 1
)

// symbol is a node in a doubly linked rule body. A rule body is circular
// around a guard node: guard.next is the first symbol, guard.prev the
// last. For a terminal, rule is nilRule and value holds the terminal.
// For a nonterminal, rule is the referenced rule. For a guard, guard is
// true and rule points back at the owning rule. On the symbol freelist,
// next links to the next free handle and every other field is zero.
type symbol struct {
	value      uint64
	next, prev symRef
	rule       ruleRef
	guard      bool
}

func (s *symbol) isNonterminal() bool { return !s.guard && s.rule != nilRule }

// rule is a grammar rule. uses counts the occurrences of the rule on the
// right-hand side of other rules; the start rule has uses == 0. id is
// the creation-ordered identity that keys nonterminals in the digram
// index; ids are never reused within one derivation, even when the rule
// slot is.
type rule struct {
	id       uint64
	guardSym symRef
	uses     int32
}

// sym resolves a handle to its slab slot. The pointer is stable (slabs
// are never reallocated), but must not be held across a call that may
// allocate a symbol: the allocation could recycle the very slot. Slabs
// are pointers to fixed-size arrays, so the low-bits index needs no
// bounds check and the resolution is two dependent loads.
func (g *Grammar) sym(h symRef) *symbol {
	return &g.slabs[h>>slabBits][h&slabMask]
}

// allocSym returns a zeroed symbol slot: the freelist head if one is
// free, otherwise the next never-used handle, growing the slab arena
// when it crosses into a fresh slab.
func (g *Grammar) allocSym() symRef {
	if h := g.symFree; h != nilSym {
		g.symFree = g.sym(h).next
		g.sym(h).next = nilSym
		return h
	}
	h := g.symUsed
	if int(h>>slabBits) == len(g.slabs) {
		g.slabs = append(g.slabs, new([slabSize]symbol))
	}
	g.symUsed++
	return symRef(h)
}

// newSym allocates and initializes a symbol.
func (g *Grammar) newSym(value uint64, r ruleRef, guard bool) symRef {
	h := g.allocSym()
	*g.sym(h) = symbol{value: value, rule: r, guard: guard}
	return h
}

// freeSym pushes a detached symbol onto the freelist, zeroing it so a
// stale rule reference can never leak into the slot's next life.
func (g *Grammar) freeSym(h symRef) {
	*g.sym(h) = symbol{next: g.symFree}
	g.symFree = h
}

// allocRule mints a rule with an empty circular body. Freed slots are
// recycled before the dense slice grows.
func (g *Grammar) allocRule(id uint64) ruleRef {
	var r ruleRef
	if n := len(g.freeRules); n > 0 {
		r = g.freeRules[n-1]
		g.freeRules = g.freeRules[:n-1]
	} else {
		g.rules = append(g.rules, rule{})
		r = ruleRef(len(g.rules) - 1)
	}
	gh := g.newSym(0, r, true)
	gs := g.sym(gh)
	gs.next, gs.prev = gh, gh
	g.rules[r] = rule{id: id, guardSym: gh}
	return r
}

// freeRule returns a deleted rule's slot to the recycle stack. The
// caller has already freed the guard symbol and unlinked the body.
func (g *Grammar) freeRule(r ruleRef) {
	g.rules[r] = rule{}
	g.freeRules = append(g.freeRules, r)
}

// firstOf and lastOf return the ends of a rule's body (the guard's
// neighbors; for an empty body they return the guard itself).
func (g *Grammar) firstOf(r ruleRef) symRef { return g.sym(g.rules[r].guardSym).next }
func (g *Grammar) lastOf(r ruleRef) symRef  { return g.sym(g.rules[r].guardSym).prev }
