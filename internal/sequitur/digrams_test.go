package sequitur

// White-box tests for the open-addressing digram table, checked against
// a plain map oracle under a randomized operation tape. The delicate
// part is tombstone-free deletion: backward shift must never strand a
// probe chain, whatever the interleaving of inserts, overwrites, and
// conditional deletes — including keys deliberately crowded into a few
// home slots so chains wrap and overlap.

import (
	"math/rand"
	"testing"
)

func TestDigramTableBasics(t *testing.T) {
	var tb digramTable
	tb.init(minTableCap)
	if got := tb.get(1, 2); got != nilSym {
		t.Fatalf("empty table returned %d", got)
	}
	tb.set(1, 2, 7)
	tb.set(2, 1, 8)
	if got := tb.get(1, 2); got != 7 {
		t.Fatalf("get(1,2) = %d, want 7", got)
	}
	if got := tb.get(2, 1); got != 8 {
		t.Fatalf("get(2,1) = %d, want 8 (argument order must matter)", got)
	}
	tb.set(1, 2, 9) // overwrite keeps live count
	if got := tb.get(1, 2); got != 9 {
		t.Fatalf("get after overwrite = %d, want 9", got)
	}
	if tb.live != 2 {
		t.Fatalf("live = %d, want 2", tb.live)
	}
	tb.deleteIf(1, 2, 5) // wrong occupant: must be a no-op
	if got := tb.get(1, 2); got != 9 {
		t.Fatalf("deleteIf with wrong symbol removed the entry")
	}
	tb.deleteIf(1, 2, 9)
	if got := tb.get(1, 2); got != nilSym {
		t.Fatalf("entry survived deleteIf")
	}
	if tb.live != 1 {
		t.Fatalf("live = %d after delete, want 1", tb.live)
	}
}

// TestDigramTableAgainstMapOracle drives a long random tape of the three
// operations the grammar issues and cross-checks every result against a
// map. Keys are drawn from a small space so the same key is repeatedly
// inserted, overwritten, and deleted, and probe chains constantly form
// and collapse; the table also grows several times mid-tape.
func TestDigramTableAgainstMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var tb digramTable
	tb.init(minTableCap)
	oracle := map[digram]symRef{}
	keys := make([]digram, 600)
	for i := range keys {
		keys[i] = digram{uint64(rng.Intn(40)), uint64(rng.Intn(40))}
	}
	for op := 0; op < 200000; op++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0: // set
			s := symRef(1 + rng.Intn(1000))
			tb.set(k.a, k.b, s)
			oracle[k] = s
		case 1: // conditional delete, half the time with the wrong occupant
			s := oracle[k]
			if rng.Intn(2) == 0 {
				s++
			}
			tb.deleteIf(k.a, k.b, s)
			if oracle[k] == s {
				delete(oracle, k)
			}
		case 2: // lookup
			want := oracle[k]
			if got := tb.get(k.a, k.b); got != want {
				t.Fatalf("op %d: get(%d,%d) = %d, want %d", op, k.a, k.b, got, want)
			}
		}
		if tb.live != len(oracle) {
			t.Fatalf("op %d: live = %d, oracle holds %d", op, tb.live, len(oracle))
		}
	}
	// Final sweep: every oracle entry must be retrievable, and the
	// table must hold nothing else.
	for k, want := range oracle {
		if got := tb.get(k.a, k.b); got != want {
			t.Fatalf("final: get(%d,%d) = %d, want %d", k.a, k.b, got, want)
		}
	}
	occupied := 0
	for _, e := range tb.entries {
		if e.sym != nilSym {
			occupied++
		}
	}
	if occupied != len(oracle) {
		t.Fatalf("table holds %d entries, oracle %d", occupied, len(oracle))
	}
}

func TestDigramTableGrowthPreservesEntries(t *testing.T) {
	var tb digramTable
	tb.init(minTableCap)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		tb.set(i, i*3+1, symRef(i+1))
	}
	if len(tb.entries) <= minTableCap {
		t.Fatalf("table did not grow past %d slots for %d entries", minTableCap, n)
	}
	for i := uint64(0); i < n; i++ {
		if got := tb.get(i, i*3+1); got != symRef(i+1) {
			t.Fatalf("entry %d lost across growth: got %d", i, got)
		}
	}
}

func TestDigramTableResetKeepsCapacity(t *testing.T) {
	var tb digramTable
	tb.init(minTableCap)
	for i := uint64(0); i < 10000; i++ {
		tb.set(i, i, symRef(i+1))
	}
	capBefore := len(tb.entries)
	tb.reset()
	if tb.live != 0 {
		t.Fatalf("live = %d after reset", tb.live)
	}
	if len(tb.entries) != capBefore {
		t.Fatalf("reset changed capacity %d -> %d; it must retain the backing array", capBefore, len(tb.entries))
	}
	for i := uint64(0); i < 10000; i++ {
		if got := tb.get(i, i); got != nilSym {
			t.Fatalf("entry %d survived reset", i)
		}
	}
}
