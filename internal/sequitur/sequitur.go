// Package sequitur implements the SEQUITUR online grammar-compression
// algorithm of Nevill-Manning and Witten ("Linear-time, incremental
// hierarchy inference for compression", DCC 1997), the compressor at the
// heart of the whole-program-path representation.
//
// SEQUITUR consumes a sequence of symbols one at a time and maintains a
// context-free grammar that generates exactly the sequence seen so far,
// enforcing two invariants:
//
//   - digram uniqueness: no pair of adjacent symbols appears more than
//     once in the grammar (overlapping repetitions excepted), and
//   - rule utility: every rule other than the start rule is used at least
//     twice.
//
// The grammar is a DAG whose shape exposes the repetition structure of the
// input, which is what lets whole-program-path analyses (such as the hot
// subpath search in package hotpath) run directly on the compressed form.
//
// Every trace event of a build funnels through Append, so the data layout
// is built for the allocator to stay out of the way: symbols live in slab
// arenas addressed by dense uint32 handles (arena.go) and the digram
// index is an open-addressing hash table (digrams.go). Steady-state
// Append allocates nothing, and Reset rewinds a grammar for reuse while
// keeping slabs and table capacity — the contract the pooled per-worker
// grammars in the parallel builder rely on.
//
// Terminal values must be below MaxTerminal; the trace-event encoding in
// package trace stays far below that bound.
package sequitur

import (
	"fmt"

	"repro/internal/obsv"
)

// MaxTerminal is the exclusive upper bound on terminal symbol values.
// Values at or above it are reserved to encode rule references inside the
// digram index.
const MaxTerminal = uint64(1) << 62

// digram is the index key for a pair of adjacent symbols. Terminals are
// keyed by value; nonterminals by ^(rule id), which cannot collide with a
// terminal because terminals are < MaxTerminal.
type digram struct {
	a, b uint64
}

// keyOf returns the digram key of one symbol.
func (g *Grammar) keyOf(h symRef) uint64 {
	s := g.sym(h)
	if s.isNonterminal() {
		return ^g.rules[s.rule].id
	}
	return s.value
}

// digramAt returns the key of the digram starting at h.
func (g *Grammar) digramAt(h symRef) digram {
	return digram{g.keyOf(h), g.keyOf(g.sym(h).next)}
}

// Options tunes the algorithm, for ablation experiments.
type Options struct {
	// DisableRuleUtility turns off the rule-utility invariant: rules used
	// only once are kept instead of being inlined. The grammar still
	// generates the same string but is larger; the whole-program-path
	// evaluation uses this to quantify what the invariant buys.
	DisableRuleUtility bool
}

// Metrics is the grammar's observability hook set. All fields may be nil
// (the zero value): obsv metrics are nil-safe no-ops, and the grammar
// additionally skips the per-Append gauge updates entirely when no hook
// is installed, so an uninstrumented Append pays one boolean test.
type Metrics struct {
	// Terminals counts input symbols appended.
	Terminals *obsv.Counter
	// RulesCreated counts new rules minted for repeated digrams;
	// RulesReused counts repeated digrams resolved by reusing an existing
	// whole-body rule (SEQUITUR's structure-sharing win).
	RulesCreated *obsv.Counter
	RulesReused  *obsv.Counter
	// DigramTable tracks the live size of the digram index, the
	// algorithm's dominant memory term.
	DigramTable *obsv.Gauge
}

// Grammar is an online SEQUITUR grammar. The zero value is not usable;
// call New.
type Grammar struct {
	// Symbol arena: chunked slabs, a bump cursor, and an intrusive
	// freelist threaded through the next fields of freed symbols.
	slabs   []*[slabSize]symbol
	symUsed uint32
	symFree symRef

	// Rule arena: dense slice (index 0 reserved as nilRule) plus a
	// recycle stack of freed slots.
	rules     []rule
	freeRules []ruleRef

	// table is the open-addressing digram index.
	table digramTable

	start  ruleRef
	nextID uint64
	opts   Options
	// terminals is the number of input symbols appended so far.
	terminals uint64
	// liveRules counts rules currently in the grammar, including start.
	liveRules int
	// rhsSymbols counts symbols currently on all right-hand sides.
	rhsSymbols int
	// metrics holds the observability hooks; instrumented caches whether
	// any hook is installed so the hot path can skip them in one test.
	metrics      Metrics
	instrumented bool
}

// SetMetrics installs observability hooks. The zero Metrics disables
// instrumentation. Reset keeps the hooks, so pooled grammars stay
// instrumented across reuse.
func (g *Grammar) SetMetrics(m Metrics) {
	g.metrics = m
	g.instrumented = m != Metrics{}
}

// New returns an empty grammar with default options.
func New() *Grammar { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty grammar with the given options.
func NewWithOptions(opts Options) *Grammar {
	g := &Grammar{
		nextID:  1,
		opts:    opts,
		symUsed: 1, // handle 0 is the nil sentinel
		rules:   make([]rule, 1, 64),
	}
	g.table.init(minTableCap)
	g.start = g.allocRule(0)
	g.liveRules = 1
	return g
}

// Reset returns the grammar to its freshly constructed state, keeping the
// symbol slabs, the rule arena's storage, and the digram table's
// capacity. A reset grammar is algorithmically indistinguishable from
// New(): feeding it the same terminals yields an identical Snapshot,
// because the index is only ever used for point lookups, never iterated.
// Worker pools reuse one grammar per worker across many chunk
// compressions, so steady-state chunk compression allocates nothing but
// the snapshots.
func (g *Grammar) Reset() {
	g.table.reset()
	g.symUsed = 1
	g.symFree = nilSym
	g.rules = g.rules[:1]
	g.freeRules = g.freeRules[:0]
	g.nextID = 1
	g.terminals = 0
	g.rhsSymbols = 0
	g.start = g.allocRule(0)
	g.liveRules = 1
	g.metrics.DigramTable.Set(0)
}

// Append feeds one terminal to the grammar. It panics if v >= MaxTerminal.
func (g *Grammar) Append(v uint64) {
	if v >= MaxTerminal {
		panic(fmt.Sprintf("sequitur: terminal %d out of range", v))
	}
	h := g.newSym(v, nilRule, false)
	g.link(g.lastOf(g.start), h)
	g.terminals++
	if p := g.sym(h).prev; !g.sym(p).guard {
		g.check(p)
	}
	if g.instrumented {
		g.metrics.Terminals.Inc()
		g.metrics.DigramTable.Set(int64(g.table.live))
	}
}

// Len reports the number of terminals appended so far.
func (g *Grammar) Len() uint64 { return g.terminals }

// link inserts n after p and bumps bookkeeping.
func (g *Grammar) link(p, n symRef) {
	ps, ns := g.sym(p), g.sym(n)
	ns.next = ps.next
	ns.prev = p
	g.sym(ns.next).prev = n
	ps.next = n
	g.rhsSymbols++
	if ns.isNonterminal() {
		g.rules[ns.rule].uses++
	}
}

// unlink removes s from its list, removing the digrams it participates in
// from the index when the index points at them, and decrements the use
// count of s's rule if s is a nonterminal. The caller frees the slot once
// done with it.
func (g *Grammar) unlink(h symRef) {
	s := g.sym(h)
	prev, next := s.prev, s.next
	if !g.sym(prev).guard {
		g.forgetDigram(prev)
	}
	if !g.sym(next).guard {
		g.forgetDigram(h)
	}
	g.sym(prev).next = next
	g.sym(next).prev = prev
	g.rhsSymbols--
	if s.isNonterminal() {
		g.rules[s.rule].uses--
	}
}

// forgetDigram removes the digram starting at h from the index if the
// index entry is h itself.
func (g *Grammar) forgetDigram(h symRef) {
	d := g.digramAt(h)
	g.table.deleteIf(d.a, d.b, h)
}

// check enforces digram uniqueness for the digram (s, s.next). It returns
// true if a substitution took place.
func (g *Grammar) check(h symRef) bool {
	s := g.sym(h)
	if s.guard || g.sym(s.next).guard {
		return false
	}
	a, b := g.keyOf(h), g.keyOf(s.next)
	m := g.table.get(a, b)
	if m == nilSym {
		g.table.set(a, b, h)
		return false
	}
	if m == h {
		return false
	}
	if g.sym(m).next == h || s.next == m {
		// Overlapping occurrence (run of identical symbols): leave it.
		return false
	}
	g.match(h, m)
	return true
}

// match handles a repeated digram: s is the newly formed occurrence, m the
// indexed one.
func (g *Grammar) match(s, m symRef) {
	var r ruleRef
	mPrev := g.sym(m).prev
	mNextNext := g.sym(g.sym(m).next).next
	if g.sym(mPrev).guard && g.sym(mNextNext).guard {
		// The matched occurrence is the entire body of a rule: reuse it.
		r = g.sym(mPrev).rule
		g.metrics.RulesReused.Inc()
		g.substitute(s, r)
	} else {
		// Create a new rule whose body is a copy of the digram.
		r = g.allocRule(g.nextID)
		g.nextID++
		g.liveRules++
		g.metrics.RulesCreated.Inc()
		g.link(g.rules[r].guardSym, g.copySym(s))
		g.link(g.firstOf(r), g.copySym(g.sym(s).next))
		// Replace the older occurrence first so its index entry is
		// released before the newer one is rewritten.
		g.substitute(m, r)
		g.substitute(s, r)
		f := g.firstOf(r)
		g.table.set(g.keyOf(f), g.keyOf(g.sym(f).next), f)
	}
	// Rule utility: if the body of r begins with a nonterminal that is now
	// used only once, inline that rule.
	if f := g.firstOf(r); !g.opts.DisableRuleUtility && g.sym(f).isNonterminal() && g.rules[g.sym(f).rule].uses == 1 {
		g.expand(f)
	}
}

// copySym returns a fresh symbol with the same content as s.
func (g *Grammar) copySym(h symRef) symRef {
	s := g.sym(h)
	return g.newSym(s.value, s.rule, false)
}

// substitute replaces the digram (s, s.next) with a reference to rule r,
// then re-checks the digrams formed at both seams. The two replaced
// symbols go back to the arena immediately: unlink has already evicted
// any index entry held by them, so no live reference remains.
func (g *Grammar) substitute(h symRef, r ruleRef) {
	p := g.sym(h).prev
	x := g.sym(h).next
	g.unlink(x)
	g.unlink(h)
	g.freeSym(x)
	g.freeSym(h)
	n := g.newSym(0, r, false)
	g.link(p, n)
	// Check the left seam; if it substituted, the right seam was handled
	// by the recursive work, and p.next may no longer be n.
	if !g.sym(p).guard && g.check(p) {
		return
	}
	if !g.sym(g.sym(n).next).guard {
		g.check(n)
	}
}

// expand inlines the single remaining use u of its rule, deleting the
// rule. u must be a nonterminal whose rule has uses == 1. In practice u is
// always the first symbol of a rule body (see match), so the left seam is
// a guard; the right seam is re-checked, which either indexes the new
// digram or folds it into an existing rule, keeping digram uniqueness
// strict.
func (g *Grammar) expand(u symRef) {
	us := g.sym(u)
	r := us.rule
	left := us.prev
	right := us.next
	first := g.firstOf(r)
	last := g.lastOf(r)
	if g.sym(first).guard {
		panic("sequitur: expanding empty rule")
	}
	g.unlink(u)
	g.freeSym(u)
	// Splice the rule body in place of u. The body symbols keep their
	// identity, so interior digram index entries remain valid; only the
	// guard and the rule's arena slot are released.
	g.sym(left).next = first
	g.sym(first).prev = left
	g.sym(last).next = right
	g.sym(right).prev = last
	g.liveRules--
	g.freeSym(g.rules[r].guardSym)
	g.freeRule(r)
	if !g.sym(left).guard {
		if g.check(left) {
			return
		}
	}
	if !g.sym(right).guard {
		g.check(last)
	}
}

// Expand invokes yield for every terminal of the full expansion of the
// start rule, in order. Iteration stops early if yield returns false.
func (g *Grammar) Expand(yield func(uint64) bool) {
	var walk func(r ruleRef) bool
	walk = func(r ruleRef) bool {
		for h := g.firstOf(r); !g.sym(h).guard; h = g.sym(h).next {
			s := g.sym(h)
			if s.isNonterminal() {
				if !walk(s.rule) {
					return false
				}
			} else if !yield(s.value) {
				return false
			}
		}
		return true
	}
	walk(g.start)
}

// Stats summarizes the size of a grammar.
type Stats struct {
	// Terminals is the number of input symbols consumed.
	Terminals uint64
	// Rules is the number of live rules, including the start rule.
	Rules int
	// RHSSymbols is the total number of symbols on all right-hand sides;
	// with Rules it is the natural measure of grammar size.
	RHSSymbols int
}

// Stats returns the current grammar size statistics.
func (g *Grammar) Stats() Stats {
	return Stats{Terminals: g.terminals, Rules: g.liveRules, RHSSymbols: g.rhsSymbols}
}

// Sym is one right-hand-side element in a Snapshot: either a terminal
// value or a reference to another rule by dense index.
type Sym struct {
	// Rule is the referenced rule's index in Snapshot.Rules, or -1 for a
	// terminal.
	Rule int32
	// Value is the terminal value when Rule < 0.
	Value uint64
}

// IsRule reports whether the symbol references a rule.
func (s Sym) IsRule() bool { return s.Rule >= 0 }

// Snapshot is an immutable array representation of a grammar, convenient
// for analysis and serialization. Rules[0] is the start rule.
type Snapshot struct {
	Rules [][]Sym
}

// Snapshot converts the grammar's current state into the array form. Rule
// indices are assigned in first-reference order from the start rule, so
// equal grammars snapshot identically. Rule discovery runs on a dense
// slice keyed by the arena index, and all right-hand sides share one
// backing array sized by the live symbol count, so a snapshot costs a
// handful of allocations however many rules it has.
func (g *Grammar) Snapshot() *Snapshot {
	indexOf := make([]int32, len(g.rules))
	for i := range indexOf {
		indexOf[i] = -1
	}
	indexOf[g.start] = 0
	order := make([]ruleRef, 1, g.liveRules)
	order[0] = g.start
	// Discover rules breadth-first in reference order.
	for i := 0; i < len(order); i++ {
		for h := g.firstOf(order[i]); !g.sym(h).guard; h = g.sym(h).next {
			s := g.sym(h)
			if s.isNonterminal() && indexOf[s.rule] < 0 {
				indexOf[s.rule] = int32(len(order))
				order = append(order, s.rule)
			}
		}
	}
	backing := make([]Sym, 0, g.rhsSymbols)
	snap := &Snapshot{Rules: make([][]Sym, len(order))}
	for i, r := range order {
		start := len(backing)
		for h := g.firstOf(r); !g.sym(h).guard; h = g.sym(h).next {
			s := g.sym(h)
			if s.isNonterminal() {
				backing = append(backing, Sym{Rule: indexOf[s.rule]})
			} else {
				backing = append(backing, Sym{Rule: -1, Value: s.value})
			}
		}
		if start < len(backing) {
			snap.Rules[i] = backing[start:len(backing):len(backing)]
		}
	}
	return snap
}

// Expand yields the full expansion of rule ri in the snapshot.
func (sn *Snapshot) Expand(ri int, yield func(uint64) bool) bool {
	for _, s := range sn.Rules[ri] {
		if s.IsRule() {
			if !sn.Expand(int(s.Rule), yield) {
				return false
			}
		} else if !yield(s.Value) {
			return false
		}
	}
	return true
}

// Verify checks the structural invariants of the grammar:
//
//   - linked-list integrity of every rule body,
//   - every live rule other than the start rule is referenced >= 2 times
//     and use counts match actual references (rule utility),
//   - size bookkeeping (liveRules, rhsSymbols) matches the structure,
//   - every digram-index entry points at a live symbol whose current
//     digram matches the entry's key.
//
// Digram uniqueness is deliberately NOT enforced exactly: as in
// Nevill-Manning and Witten's published implementation, seam handling
// around substitutions and rule expansion can leave rare duplicate or
// unindexed digrams. DigramDuplicates and UnindexedDigrams report how
// many exist in each direction of the index/chain cross-check; tests
// bound them rather than requiring zero. Verify is meant for tests; it
// walks the whole grammar.
//
// The index cross-check is also what makes arena recycling safe to
// trust: a prematurely freed symbol whose slot was reused would surface
// here as an entry whose key no longer matches the slot's digram.
func (g *Grammar) Verify() error {
	seen := map[ruleRef]bool{g.start: true}
	queue := []ruleRef{g.start}
	refCount := map[ruleRef]int{}
	symPos := map[symRef]digram{}
	totalRHS := 0
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		i := 0
		for h := g.firstOf(r); !g.sym(h).guard; h = g.sym(h).next {
			s := g.sym(h)
			if g.sym(s.next).prev != h || g.sym(s.prev).next != h {
				return fmt.Errorf("sequitur: rule %d: broken links at position %d", g.rules[r].id, i)
			}
			if s.guard {
				return fmt.Errorf("sequitur: rule %d: interior guard at position %d", g.rules[r].id, i)
			}
			if s.isNonterminal() {
				refCount[s.rule]++
				if !seen[s.rule] {
					seen[s.rule] = true
					queue = append(queue, s.rule)
				}
			}
			if !g.sym(s.next).guard {
				symPos[h] = g.digramAt(h)
			}
			i++
		}
		totalRHS += i
		if r != g.start && i < 2 {
			return fmt.Errorf("sequitur: rule %d has body of length %d", g.rules[r].id, i)
		}
	}
	if len(seen) != g.liveRules {
		return fmt.Errorf("sequitur: liveRules=%d but %d rules reachable", g.liveRules, len(seen))
	}
	if totalRHS != g.rhsSymbols {
		return fmt.Errorf("sequitur: rhsSymbols=%d but %d symbols present", g.rhsSymbols, totalRHS)
	}
	for r, n := range refCount {
		if int(g.rules[r].uses) != n {
			return fmt.Errorf("sequitur: rule %d uses=%d but referenced %d times", g.rules[r].id, g.rules[r].uses, n)
		}
		if n < 2 && !g.opts.DisableRuleUtility {
			return fmt.Errorf("sequitur: rule %d referenced only %d time(s)", g.rules[r].id, n)
		}
	}
	live := 0
	for _, e := range g.table.entries {
		if e.sym == nilSym {
			continue
		}
		live++
		cur, ok := symPos[e.sym]
		if !ok {
			return fmt.Errorf("sequitur: index entry (%d,%d) points at a dead or boundary symbol", e.a, e.b)
		}
		if cur != (digram{e.a, e.b}) {
			return fmt.Errorf("sequitur: index entry (%d,%d) points at a symbol whose digram is (%d,%d)", e.a, e.b, cur.a, cur.b)
		}
	}
	if live != g.table.live {
		return fmt.Errorf("sequitur: digram table live=%d but %d entries occupied", g.table.live, live)
	}
	return nil
}

// DigramDuplicates counts digrams that occur more than once in the
// grammar, ignoring immediately overlapping occurrences within runs of
// identical symbols. A well-behaved grammar keeps this near zero; it is
// exposed so tests can bound the known seam-handling slack instead of
// demanding exact uniqueness.
func (g *Grammar) DigramDuplicates() int {
	seen := map[ruleRef]bool{g.start: true}
	queue := []ruleRef{g.start}
	count := map[digram]int{}
	dups := 0
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		prevOverlap := false
		for h := g.firstOf(r); !g.sym(h).guard; h = g.sym(h).next {
			s := g.sym(h)
			if s.isNonterminal() && !seen[s.rule] {
				seen[s.rule] = true
				queue = append(queue, s.rule)
			}
			if g.sym(s.next).guard {
				continue
			}
			d := g.digramAt(h)
			// Skip the second of two overlapping occurrences (aaa).
			if !g.sym(s.prev).guard && g.keyOf(s.prev) == d.a && d.a == d.b && !prevOverlap {
				prevOverlap = true
				continue
			}
			prevOverlap = false
			count[d]++
			if count[d] > 1 {
				dups++
			}
		}
	}
	return dups
}
