// Package sequitur implements the SEQUITUR online grammar-compression
// algorithm of Nevill-Manning and Witten ("Linear-time, incremental
// hierarchy inference for compression", DCC 1997), the compressor at the
// heart of the whole-program-path representation.
//
// SEQUITUR consumes a sequence of symbols one at a time and maintains a
// context-free grammar that generates exactly the sequence seen so far,
// enforcing two invariants:
//
//   - digram uniqueness: no pair of adjacent symbols appears more than
//     once in the grammar (overlapping repetitions excepted), and
//   - rule utility: every rule other than the start rule is used at least
//     twice.
//
// The grammar is a DAG whose shape exposes the repetition structure of the
// input, which is what lets whole-program-path analyses (such as the hot
// subpath search in package hotpath) run directly on the compressed form.
//
// Terminal values must be below MaxTerminal; the trace-event encoding in
// package trace stays far below that bound.
package sequitur

import (
	"fmt"

	"repro/internal/obsv"
)

// MaxTerminal is the exclusive upper bound on terminal symbol values.
// Values at or above it are reserved to encode rule references inside the
// digram index.
const MaxTerminal = uint64(1) << 62

// symbol is a node in a doubly linked rule body. A rule body is circular
// around a guard node: guard.next is the first symbol, guard.prev the
// last. For a terminal, rule is nil and value holds the terminal. For a
// nonterminal, rule points at the referenced rule. For a guard, guard is
// true and rule points back at the owning rule.
type symbol struct {
	next, prev *symbol
	value      uint64
	rule       *rule
	guard      bool
}

func (s *symbol) isNonterminal() bool { return !s.guard && s.rule != nil }

// rule is a grammar rule. uses counts the occurrences of the rule on the
// right-hand side of other rules; the start rule has uses == 0.
type rule struct {
	guardSym *symbol
	uses     int
	id       uint64
}

func newRule(id uint64) *rule {
	r := &rule{id: id}
	g := &symbol{guard: true, rule: r}
	g.next, g.prev = g, g
	r.guardSym = g
	return r
}

func (r *rule) first() *symbol { return r.guardSym.next }
func (r *rule) last() *symbol  { return r.guardSym.prev }

// digram is the index key for a pair of adjacent symbols. Terminals are
// keyed by value; nonterminals by ^(rule id), which cannot collide with a
// terminal because terminals are < MaxTerminal.
type digram struct {
	a, b uint64
}

func symKey(s *symbol) uint64 {
	if s.isNonterminal() {
		return ^s.rule.id
	}
	return s.value
}

func digramOf(s *symbol) digram { return digram{symKey(s), symKey(s.next)} }

// Options tunes the algorithm, for ablation experiments.
type Options struct {
	// DisableRuleUtility turns off the rule-utility invariant: rules used
	// only once are kept instead of being inlined. The grammar still
	// generates the same string but is larger; the whole-program-path
	// evaluation uses this to quantify what the invariant buys.
	DisableRuleUtility bool
}

// Metrics is the grammar's observability hook set. All fields may be nil
// (the zero value): obsv metrics are nil-safe no-ops, so an instrumented
// Append costs a few nil checks when disabled and a few atomic adds when
// enabled — never an allocation.
type Metrics struct {
	// Terminals counts input symbols appended.
	Terminals *obsv.Counter
	// RulesCreated counts new rules minted for repeated digrams;
	// RulesReused counts repeated digrams resolved by reusing an existing
	// whole-body rule (SEQUITUR's structure-sharing win).
	RulesCreated *obsv.Counter
	RulesReused  *obsv.Counter
	// DigramTable tracks the live size of the digram index, the
	// algorithm's dominant memory term.
	DigramTable *obsv.Gauge
}

// Grammar is an online SEQUITUR grammar. The zero value is not usable;
// call New.
type Grammar struct {
	start  *rule
	index  map[digram]*symbol
	nextID uint64
	opts   Options
	// terminals is the number of input symbols appended so far.
	terminals uint64
	// liveRules counts rules currently in the grammar, including start.
	liveRules int
	// rhsSymbols counts symbols currently on all right-hand sides.
	rhsSymbols int
	// metrics holds the observability hooks; the zero value is disabled.
	metrics Metrics
}

// SetMetrics installs observability hooks. The zero Metrics disables
// instrumentation. Reset keeps the hooks, so pooled grammars stay
// instrumented across reuse.
func (g *Grammar) SetMetrics(m Metrics) { g.metrics = m }

// New returns an empty grammar with default options.
func New() *Grammar { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty grammar with the given options.
func NewWithOptions(opts Options) *Grammar {
	g := &Grammar{
		index:  make(map[digram]*symbol),
		nextID: 1,
		opts:   opts,
	}
	g.start = newRule(0)
	g.liveRules = 1
	return g
}

// Reset returns the grammar to its freshly constructed state, keeping the
// digram index's allocated capacity. A reset grammar is algorithmically
// indistinguishable from New(): feeding it the same terminals yields an
// identical Snapshot, because the index is only ever used for point
// lookups, never iterated. Worker pools reuse one grammar per worker
// across many chunk compressions to avoid re-growing the index map.
func (g *Grammar) Reset() {
	clear(g.index)
	g.nextID = 1
	g.start = newRule(0)
	g.liveRules = 1
	g.rhsSymbols = 0
	g.terminals = 0
	g.metrics.DigramTable.Set(0)
}

// Append feeds one terminal to the grammar. It panics if v >= MaxTerminal.
func (g *Grammar) Append(v uint64) {
	if v >= MaxTerminal {
		panic(fmt.Sprintf("sequitur: terminal %d out of range", v))
	}
	s := &symbol{value: v}
	g.link(g.start.last(), s)
	g.terminals++
	if !s.prev.guard {
		g.check(s.prev)
	}
	g.metrics.Terminals.Inc()
	g.metrics.DigramTable.Set(int64(len(g.index)))
}

// Len reports the number of terminals appended so far.
func (g *Grammar) Len() uint64 { return g.terminals }

// link inserts n after p and bumps bookkeeping.
func (g *Grammar) link(p, n *symbol) {
	n.next = p.next
	n.prev = p
	p.next.prev = n
	p.next = n
	g.rhsSymbols++
	if n.isNonterminal() {
		n.rule.uses++
	}
}

// unlink removes s from its list, removing the digrams it participates in
// from the index when the index points at them, and decrements the use
// count of s's rule if s is a nonterminal.
func (g *Grammar) unlink(s *symbol) {
	if !s.prev.guard {
		g.forgetDigram(s.prev)
	}
	if !s.next.guard {
		g.forgetDigram(s)
	}
	s.prev.next = s.next
	s.next.prev = s.prev
	g.rhsSymbols--
	if s.isNonterminal() {
		s.rule.uses--
	}
}

// forgetDigram removes the digram starting at s from the index if the
// index entry is s itself.
func (g *Grammar) forgetDigram(s *symbol) {
	d := digramOf(s)
	if g.index[d] == s {
		delete(g.index, d)
	}
}

// check enforces digram uniqueness for the digram (s, s.next). It returns
// true if a substitution took place.
func (g *Grammar) check(s *symbol) bool {
	if s.guard || s.next.guard {
		return false
	}
	d := digramOf(s)
	m, ok := g.index[d]
	if !ok {
		g.index[d] = s
		return false
	}
	if m == s {
		return false
	}
	if m.next == s || s.next == m {
		// Overlapping occurrence (run of identical symbols): leave it.
		return false
	}
	g.match(s, m)
	return true
}

// match handles a repeated digram: s is the newly formed occurrence, m the
// indexed one.
func (g *Grammar) match(s, m *symbol) {
	var r *rule
	if m.prev.guard && m.next.next.guard {
		// The matched occurrence is the entire body of a rule: reuse it.
		r = m.prev.rule
		g.metrics.RulesReused.Inc()
		g.substitute(s, r)
	} else {
		// Create a new rule whose body is a copy of the digram.
		r = newRule(g.nextID)
		g.nextID++
		g.liveRules++
		g.metrics.RulesCreated.Inc()
		g.link(r.guardSym, g.copySym(s))
		g.link(r.first(), g.copySym(s.next))
		// Replace the older occurrence first so its index entry is
		// released before the newer one is rewritten.
		g.substitute(m, r)
		g.substitute(s, r)
		g.index[digramOf(r.first())] = r.first()
	}
	// Rule utility: if the body of r begins with a nonterminal that is now
	// used only once, inline that rule.
	if f := r.first(); !g.opts.DisableRuleUtility && f.isNonterminal() && f.rule.uses == 1 {
		g.expand(f)
	}
}

// copySym returns a fresh symbol with the same content as s.
func (g *Grammar) copySym(s *symbol) *symbol {
	return &symbol{value: s.value, rule: s.rule}
}

// substitute replaces the digram (s, s.next) with a reference to rule r,
// then re-checks the digrams formed at both seams.
func (g *Grammar) substitute(s *symbol, r *rule) {
	p := s.prev
	g.unlink(s.next)
	g.unlink(s)
	n := &symbol{rule: r}
	g.link(p, n)
	// Check the left seam; if it substituted, the right seam was handled
	// by the recursive work, and p.next may no longer be n.
	if !p.guard && g.check(p) {
		return
	}
	if !n.next.guard {
		g.check(n)
	}
}

// expand inlines the single remaining use u of its rule, deleting the
// rule. u must be a nonterminal whose rule has uses == 1. In practice u is
// always the first symbol of a rule body (see match), so the left seam is
// a guard; the right seam is re-checked, which either indexes the new
// digram or folds it into an existing rule, keeping digram uniqueness
// strict.
func (g *Grammar) expand(u *symbol) {
	r := u.rule
	left := u.prev
	right := u.next
	first := r.first()
	last := r.last()
	if first.guard {
		panic("sequitur: expanding empty rule")
	}
	g.unlink(u)
	// Splice the rule body in place of u. The body symbols keep their
	// identity, so interior digram index entries remain valid.
	left.next = first
	first.prev = left
	last.next = right
	right.prev = last
	g.liveRules--
	if !left.guard {
		if g.check(left) {
			return
		}
	}
	if !right.guard {
		g.check(last)
	}
}

// Expand invokes yield for every terminal of the full expansion of the
// start rule, in order. Iteration stops early if yield returns false.
func (g *Grammar) Expand(yield func(uint64) bool) {
	var walk func(r *rule) bool
	walk = func(r *rule) bool {
		for s := r.first(); !s.guard; s = s.next {
			if s.isNonterminal() {
				if !walk(s.rule) {
					return false
				}
			} else if !yield(s.value) {
				return false
			}
		}
		return true
	}
	walk(g.start)
}

// Stats summarizes the size of a grammar.
type Stats struct {
	// Terminals is the number of input symbols consumed.
	Terminals uint64
	// Rules is the number of live rules, including the start rule.
	Rules int
	// RHSSymbols is the total number of symbols on all right-hand sides;
	// with Rules it is the natural measure of grammar size.
	RHSSymbols int
}

// Stats returns the current grammar size statistics.
func (g *Grammar) Stats() Stats {
	return Stats{Terminals: g.terminals, Rules: g.liveRules, RHSSymbols: g.rhsSymbols}
}

// Sym is one right-hand-side element in a Snapshot: either a terminal
// value or a reference to another rule by dense index.
type Sym struct {
	// Rule is the referenced rule's index in Snapshot.Rules, or -1 for a
	// terminal.
	Rule int32
	// Value is the terminal value when Rule < 0.
	Value uint64
}

// IsRule reports whether the symbol references a rule.
func (s Sym) IsRule() bool { return s.Rule >= 0 }

// Snapshot is an immutable array representation of a grammar, convenient
// for analysis and serialization. Rules[0] is the start rule.
type Snapshot struct {
	Rules [][]Sym
}

// Snapshot converts the grammar's current state into the array form. Rule
// indices are assigned in first-reference order from the start rule, so
// equal grammars snapshot identically.
func (g *Grammar) Snapshot() *Snapshot {
	indexOf := map[*rule]int32{g.start: 0}
	order := []*rule{g.start}
	// Discover rules breadth-first in reference order.
	for i := 0; i < len(order); i++ {
		for s := order[i].first(); !s.guard; s = s.next {
			if s.isNonterminal() {
				if _, ok := indexOf[s.rule]; !ok {
					indexOf[s.rule] = int32(len(order))
					order = append(order, s.rule)
				}
			}
		}
	}
	snap := &Snapshot{Rules: make([][]Sym, len(order))}
	for i, r := range order {
		var rhs []Sym
		for s := r.first(); !s.guard; s = s.next {
			if s.isNonterminal() {
				rhs = append(rhs, Sym{Rule: indexOf[s.rule]})
			} else {
				rhs = append(rhs, Sym{Rule: -1, Value: s.value})
			}
		}
		snap.Rules[i] = rhs
	}
	return snap
}

// Expand yields the full expansion of rule ri in the snapshot.
func (sn *Snapshot) Expand(ri int, yield func(uint64) bool) bool {
	for _, s := range sn.Rules[ri] {
		if s.IsRule() {
			if !sn.Expand(int(s.Rule), yield) {
				return false
			}
		} else if !yield(s.Value) {
			return false
		}
	}
	return true
}

// Verify checks the structural invariants of the grammar:
//
//   - linked-list integrity of every rule body,
//   - every live rule other than the start rule is referenced >= 2 times
//     and use counts match actual references (rule utility),
//   - size bookkeeping (liveRules, rhsSymbols) matches the structure,
//   - every digram-index entry points at a live symbol whose current
//     digram matches the entry's key.
//
// Digram uniqueness is deliberately NOT enforced exactly: as in
// Nevill-Manning and Witten's published implementation, seam handling
// around substitutions and rule expansion can leave rare duplicate or
// unindexed digrams. DigramDuplicates and UnindexedDigrams report how
// many exist in each direction of the index/chain cross-check; tests
// bound them rather than requiring zero. Verify is meant for tests; it
// walks the whole grammar.
func (g *Grammar) Verify() error {
	seen := map[*rule]bool{g.start: true}
	queue := []*rule{g.start}
	refCount := map[*rule]int{}
	symPos := map[*symbol]digram{}
	totalRHS := 0
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		i := 0
		for s := r.first(); !s.guard; s = s.next {
			if s.next.prev != s || s.prev.next != s {
				return fmt.Errorf("sequitur: rule %d: broken links at position %d", r.id, i)
			}
			if s.guard {
				return fmt.Errorf("sequitur: rule %d: interior guard at position %d", r.id, i)
			}
			if s.isNonterminal() {
				refCount[s.rule]++
				if !seen[s.rule] {
					seen[s.rule] = true
					queue = append(queue, s.rule)
				}
			}
			if !s.next.guard {
				symPos[s] = digramOf(s)
			}
			i++
		}
		totalRHS += i
		if r != g.start && i < 2 {
			return fmt.Errorf("sequitur: rule %d has body of length %d", r.id, i)
		}
	}
	if len(seen) != g.liveRules {
		return fmt.Errorf("sequitur: liveRules=%d but %d rules reachable", g.liveRules, len(seen))
	}
	if totalRHS != g.rhsSymbols {
		return fmt.Errorf("sequitur: rhsSymbols=%d but %d symbols present", g.rhsSymbols, totalRHS)
	}
	for r, n := range refCount {
		if r.uses != n {
			return fmt.Errorf("sequitur: rule %d uses=%d but referenced %d times", r.id, r.uses, n)
		}
		if n < 2 && !g.opts.DisableRuleUtility {
			return fmt.Errorf("sequitur: rule %d referenced only %d time(s)", r.id, n)
		}
	}
	for d, s := range g.index {
		cur, live := symPos[s]
		if !live {
			return fmt.Errorf("sequitur: index entry (%d,%d) points at a dead or boundary symbol", d.a, d.b)
		}
		if cur != d {
			return fmt.Errorf("sequitur: index entry (%d,%d) points at a symbol whose digram is (%d,%d)", d.a, d.b, cur.a, cur.b)
		}
	}
	return nil
}

// DigramDuplicates counts digrams that occur more than once in the
// grammar, ignoring immediately overlapping occurrences within runs of
// identical symbols. A well-behaved grammar keeps this near zero; it is
// exposed so tests can bound the known seam-handling slack instead of
// demanding exact uniqueness.
func (g *Grammar) DigramDuplicates() int {
	seen := map[*rule]bool{g.start: true}
	queue := []*rule{g.start}
	count := map[digram]int{}
	dups := 0
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		prevOverlap := false
		for s := r.first(); !s.guard; s = s.next {
			if s.isNonterminal() && !seen[s.rule] {
				seen[s.rule] = true
				queue = append(queue, s.rule)
			}
			if s.next.guard {
				continue
			}
			d := digramOf(s)
			// Skip the second of two overlapping occurrences (aaa).
			if !s.prev.guard && symKey(s.prev) == d.a && d.a == d.b && !prevOverlap {
				prevOverlap = true
				continue
			}
			prevOverlap = false
			count[d]++
			if count[d] > 1 {
				dups++
			}
		}
	}
	return dups
}
