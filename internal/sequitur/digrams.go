package sequitur

// The digram index as an open-addressing hash table: power-of-two
// capacity, linear probing, and tombstone-free deletion by backward
// shift. It replaces the map[digram]*symbol of the original layout —
// the algorithm only ever does point lookups, inserts, overwrites, and
// conditional deletes, so a flat probe array with inline keys beats the
// general map on every operation and allocates nothing in steady state
// (reset keeps capacity for pooled grammars).

// digramEntry is one slot: the two 64-bit symbol keys and the handle of
// the indexed occurrence. sym == nilSym marks an empty slot, which is
// why symbol handle 0 is reserved. h32 caches the low hash bits of
// (a, b) in what would otherwise be struct padding (the entry is 24
// bytes either way): the backward-shift delete and rehash derive an
// entry's home slot from it with a mask instead of re-running the
// multiply cascade per scanned entry.
type digramEntry struct {
	a, b uint64
	sym  symRef
	h32  uint32
}

// digramTable is the open-addressing index. live is the number of
// occupied slots; growAt the occupancy that triggers doubling (3/4
// load: linear probing degrades sharply beyond that).
type digramTable struct {
	entries []digramEntry
	mask    uint32
	live    int
	growAt  int
}

// minTableCap is the initial capacity; must be a power of two.
const minTableCap = 256

// digramHash mixes both keys through a murmur-style finalizer. Digram
// keys are near-dense small integers (terminal values and complemented
// rule ids), so the multiply-xor cascade is what spreads them across
// the table.
func digramHash(a, b uint64) uint64 {
	h := a*0x9e3779b97f4a7c15 + b
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func (t *digramTable) init(capacity int) {
	t.entries = make([]digramEntry, capacity)
	t.mask = uint32(capacity - 1)
	t.live = 0
	t.growAt = capacity - capacity/4
}

// reset empties the table, keeping its capacity for the next use.
func (t *digramTable) reset() {
	clear(t.entries)
	t.live = 0
}

// get returns the handle indexed under (a, b), or nilSym.
func (t *digramTable) get(a, b uint64) symRef {
	i := uint32(digramHash(a, b)) & t.mask
	for {
		e := &t.entries[i]
		if e.sym == nilSym {
			return nilSym
		}
		if e.a == a && e.b == b {
			return e.sym
		}
		i = (i + 1) & t.mask
	}
}

// set inserts (a, b) -> s, overwriting an existing entry for the key.
func (t *digramTable) set(a, b uint64, s symRef) {
	if t.live >= t.growAt {
		t.rehash(2 * len(t.entries))
	}
	h := uint32(digramHash(a, b))
	i := h & t.mask
	for {
		e := &t.entries[i]
		if e.sym == nilSym {
			*e = digramEntry{a: a, b: b, sym: s, h32: h}
			t.live++
			return
		}
		if e.a == a && e.b == b {
			e.sym = s
			return
		}
		i = (i + 1) & t.mask
	}
}

// getOrSet is the fused probe the batch append path uses in place of a
// get followed by a set: one walk of the probe chain either finds the
// existing entry for (a, b) and returns its handle, or claims the first
// empty slot for s and returns nilSym. The table contents after a miss
// are identical to get-then-set — growth triggers on the same live/growAt
// comparison an insert through set would have made — so the scalar and
// batch paths evolve equal index contents from equal inputs.
func (t *digramTable) getOrSet(a, b uint64, s symRef) symRef {
	h := uint32(digramHash(a, b))
	i := h & t.mask
	for {
		e := &t.entries[i]
		if e.sym == nilSym {
			if t.live >= t.growAt {
				t.rehash(2 * len(t.entries))
				// The key is absent (this chain just proved it); find an
				// empty slot in the grown table and claim it.
				i = h & t.mask
				for t.entries[i].sym != nilSym {
					i = (i + 1) & t.mask
				}
				e = &t.entries[i]
			}
			*e = digramEntry{a: a, b: b, sym: s, h32: h}
			t.live++
			return nilSym
		}
		if e.a == a && e.b == b {
			return e.sym
		}
		i = (i + 1) & t.mask
	}
}

// deleteIf removes the entry for (a, b) only when it points at s — the
// forgetDigram contract: an occurrence may only evict its own index
// entry, never another occurrence's. Deletion is by backward shift: the
// vacated slot is refilled with later probe-chain entries whose home
// slot lies at or before it, so no chain is ever broken and no
// tombstones accumulate.
func (t *digramTable) deleteIf(a, b uint64, s symRef) {
	mask := t.mask
	i := uint32(digramHash(a, b)) & mask
	for {
		e := &t.entries[i]
		if e.sym == nilSym {
			return
		}
		if e.a == a && e.b == b {
			if e.sym != s {
				return
			}
			break
		}
		i = (i + 1) & mask
	}
	t.live--
	j := i
	for {
		j = (j + 1) & mask
		e := t.entries[j]
		if e.sym == nilSym {
			break
		}
		// e's probe distance from its home slot, measured at j, tells
		// whether the hole at i is still on e's probe chain: if the
		// distance from the hole to j does not exceed e's own distance,
		// e may move back into the hole.
		home := e.h32 & mask
		if (j-home)&mask >= (j-i)&mask {
			t.entries[i] = e
			i = j
		}
	}
	t.entries[i] = digramEntry{}
}

// rehash doubles into a fresh array. Lookup behavior is layout
// independent, so reinsertion order does not matter; slot scan order
// keeps it deterministic anyway.
func (t *digramTable) rehash(capacity int) {
	old := t.entries
	t.init(capacity)
	for _, e := range old {
		if e.sym == nilSym {
			continue
		}
		i := e.h32 & t.mask
		for t.entries[i].sym != nilSym {
			i = (i + 1) & t.mask
		}
		t.entries[i] = e
		t.live++
	}
}
