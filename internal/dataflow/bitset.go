package dataflow

import "math/bits"

// Bitset is a fixed-size bit vector. It backs both the liveness facts
// (bits are register numbers) and the feasible-path sets (bits are
// Ball–Larus path IDs).
type Bitset struct {
	n     int
	words []uint64
}

// NewBitset returns an all-zero bitset of n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (s *Bitset) Len() int { return s.n }

// Set sets bit i.
func (s *Bitset) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s *Bitset) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports bit i.
func (s *Bitset) Get(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (s *Bitset) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of s.
func (s *Bitset) Clone() *Bitset {
	c := &Bitset{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// UnionWith ors other into s and reports whether s changed. The sets
// must have equal length.
func (s *Bitset) UnionWith(other *Bitset) bool {
	changed := false
	for i, w := range other.words {
		if nw := s.words[i] | w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Equal reports whether s and other hold the same bits.
func (s *Bitset) Equal(other *Bitset) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}
