// Package dataflow is a generic iterative dataflow framework over the
// repository's control-flow graphs (package cfg), with concrete analyses
// over the wlc register IR: constant/interval propagation with branch
// refinement, liveness, and reachability-under-facts. On top of the
// constant lattice it implements feasible-path analysis — classifying
// every Ball–Larus path ID of a function as statically feasible or
// infeasible — and an IR-level dead-branch/unreachable-block elimination
// pass.
//
// The solver is the classic worklist algorithm: blocks are visited in
// reverse postorder (forward problems) or postorder (backward problems)
// and re-queued whenever an input fact changes, until a fixpoint. The
// fact domain is supplied by the Problem; the solver only requires a
// bottom element, a join, and monotone transfer functions. A convergence
// guard bounds the visits per block, so a non-monotone or
// infinitely-ascending problem fails loudly instead of spinning.
package dataflow

import (
	"fmt"

	"repro/internal/cfg"
)

// Direction orients a dataflow problem.
type Direction int

// Directions.
const (
	// Forward propagates facts along edges from the entry.
	Forward Direction = iota
	// Backward propagates facts against edges from the exit.
	Backward
)

// Problem describes one dataflow analysis over a single graph. F is the
// fact attached to each block boundary.
type Problem[F any] struct {
	// Dir orients propagation.
	Dir Direction

	// Bottom returns the identity of Join: the fact of an unreached
	// block boundary.
	Bottom func() F

	// Boundary returns the fact at the graph's boundary: the entry's
	// input for Forward problems, the exit's output for Backward ones.
	Boundary func() F

	// IsBottom reports whether a fact is still the unreached bottom.
	// Transfer is skipped for bottom inputs (an unreached block
	// contributes nothing), keeping unreachable code invisible to the
	// analysis. Optional; nil means no fact is treated as bottom.
	IsBottom func(F) bool

	// Join merges src into dst and reports whether dst changed. dst may
	// be mutated and must be returned.
	Join func(dst, src F) (F, bool)

	// Transfer computes the fact at the far side of block b from the
	// fact at its near side (input for Forward, output for Backward).
	// The input fact must not be mutated; return a fresh or reused
	// value.
	Transfer func(b cfg.BlockID, in F) F

	// EdgeTransfer, if non-nil, refines the fact flowing along the
	// si-th successor edge of block from (Forward problems only). It
	// returns the refined fact and whether the edge is feasible at all;
	// infeasible edges contribute nothing to their target, which is how
	// constant branch conditions prune paths. The input must not be
	// mutated.
	EdgeTransfer func(from cfg.BlockID, si int, out F) (F, bool)

	// MaxVisits caps the number of times any one block is transferred;
	// exceeding it fails the solve. 0 means the default guard.
	MaxVisits int
}

// Result holds the fixpoint of one solve.
type Result[F any] struct {
	// In[b] is the fact entering block b (before its code for Forward,
	// after it for Backward — "in" is always in propagation order).
	In []F
	// Out[b] is the fact leaving block b in propagation order.
	Out []F
	// EdgeFeasible[b][si] reports whether the si-th successor edge of b
	// carried a feasible fact at the fixpoint. All-true unless the
	// problem has an EdgeTransfer.
	EdgeFeasible [][]bool
	// Visits[b] counts how many times b was transferred, a measure of
	// convergence behavior.
	Visits []int
}

// defaultMaxVisits bounds the per-block visit count. Lattices used here
// stabilize in a handful of passes (interval propagation widens); 64 is
// far above any legitimate convergence and far below a spin.
const defaultMaxVisits = 64

// Solve runs the worklist algorithm for p over g to a fixpoint. The
// graph must be frozen (predecessor lists computed).
func Solve[F any](g *cfg.Graph, p Problem[F]) (*Result[F], error) {
	if p.Dir == Backward && p.EdgeTransfer != nil {
		return nil, fmt.Errorf("dataflow: %s: EdgeTransfer is a forward-only refinement", g.Name)
	}
	maxVisits := p.MaxVisits
	if maxVisits == 0 {
		maxVisits = defaultMaxVisits
	}
	n := g.NumBlocks()
	res := &Result[F]{
		In:           make([]F, n),
		Out:          make([]F, n),
		EdgeFeasible: make([][]bool, n),
		Visits:       make([]int, n),
	}
	for _, b := range g.Blocks() {
		res.In[b.ID] = p.Bottom()
		res.Out[b.ID] = p.Bottom()
		res.EdgeFeasible[b.ID] = make([]bool, len(b.Succs))
		if p.EdgeTransfer == nil {
			for i := range res.EdgeFeasible[b.ID] {
				res.EdgeFeasible[b.ID][i] = true
			}
		}
	}

	// Visit order: reverse postorder for forward problems (predecessors
	// mostly before successors), its reverse for backward ones.
	order := g.ReversePostorder()
	if p.Dir == Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	pos := make([]int, n) // block -> index in order
	for i, b := range order {
		pos[b] = i
	}

	boundary := g.Entry
	if p.Dir == Backward {
		boundary = g.Exit
	}
	res.In[boundary] = p.Boundary()

	inQueue := make([]bool, n)
	queue := append([]cfg.BlockID(nil), order...)
	for i := range inQueue {
		inQueue[i] = true
	}
	// pop takes the queued block earliest in visit order, keeping the
	// iteration close to a priority worklist without a heap: scan cost
	// is fine at CFG sizes.
	pop := func() cfg.BlockID {
		best := -1
		for _, b := range queue {
			if inQueue[b] && (best == -1 || pos[b] < pos[cfg.BlockID(best)]) {
				best = int(b)
			}
		}
		inQueue[best] = false
		// Compact the queue lazily.
		nq := queue[:0]
		for _, b := range queue {
			if inQueue[b] {
				nq = append(nq, b)
			}
		}
		queue = nq
		return cfg.BlockID(best)
	}
	push := func(b cfg.BlockID) {
		if !inQueue[b] {
			inQueue[b] = true
			queue = append(queue, b)
		}
	}

	// succsOf/predsOf in propagation order.
	fwdTargets := func(b cfg.BlockID) []cfg.BlockID {
		if p.Dir == Forward {
			return g.Block(b).Succs
		}
		return g.Block(b).Preds
	}

	for len(queue) > 0 {
		b := pop()
		res.Visits[b]++
		if res.Visits[b] > maxVisits {
			return nil, fmt.Errorf("dataflow: %s: block %d transferred more than %d times without converging (non-monotone transfer or unbounded lattice?)",
				g.Name, b, maxVisits)
		}
		var out F
		if p.IsBottom != nil && p.IsBottom(res.In[b]) {
			out = p.Bottom()
		} else {
			out = p.Transfer(b, res.In[b])
		}
		res.Out[b] = out
		for si, t := range fwdTargets(b) {
			flow := out
			if p.Dir == Forward && p.EdgeTransfer != nil {
				if p.IsBottom != nil && p.IsBottom(out) {
					res.EdgeFeasible[b][si] = false
					continue
				}
				refined, ok := p.EdgeTransfer(b, si, out)
				res.EdgeFeasible[b][si] = ok
				if !ok {
					continue
				}
				flow = refined
			}
			joined, changed := p.Join(res.In[t], flow)
			res.In[t] = joined
			if changed {
				push(t)
			}
		}
	}
	return res, nil
}
