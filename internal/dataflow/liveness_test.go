package dataflow

import (
	"testing"

	"repro/internal/wlc"
	"repro/internal/workloads"
)

func TestLivenessReturnParam(t *testing.T) {
	f := compileFunc(t, `func main(n) { return n; }`, "main")
	l, err := Liveness(f)
	if err != nil {
		t.Fatal(err)
	}
	if !l.LiveIn(f.Graph.Entry).Get(1) {
		t.Error("parameter register r1 not live on entry despite being returned")
	}
}

func TestLivenessLoopCarried(t *testing.T) {
	// acc is read on every iteration and after the loop: it must be live
	// into the loop header. The header is the unique branch block.
	f := compileFunc(t, `
func main(n) {
    var acc = 1;
    while n {
        n = n - 1;
        acc = acc + acc;
    }
    return acc;
}`, "main")
	l, err := Liveness(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range f.Graph.Blocks() {
		if f.Terms[blk.ID].Kind != wlc.TermBranch {
			continue
		}
		// At the loop header both n (the condition) and acc (read later on
		// both sides) are live; that's at least two registers besides r0.
		live := l.LiveIn(blk.ID)
		if live.Count() < 2 {
			t.Errorf("loop header live-in has %d registers, want >= 2", live.Count())
		}
		if !live.Get(int(f.Terms[blk.ID].Cond)) {
			t.Error("branch condition register not live at its own block entry")
		}
	}
}

// TestLivenessInvariantsOnWorkloads checks two structural invariants over
// every bundled workload function:
//
//  1. live-in at the entry only contains parameter registers (and
//     possibly r0, for functions that can fall off the end returning the
//     zero-initialized slot) — WL initializes every variable at its
//     declaration, so nothing else is read before written;
//  2. a register no instruction ever reads is live nowhere.
func TestLivenessInvariantsOnWorkloads(t *testing.T) {
	for _, w := range workloads.All {
		p, err := wlc.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, f := range p.Funcs {
			l, err := Liveness(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, f.Name, err)
			}

			entry := l.LiveIn(f.Graph.Entry)
			for r := 0; r < f.NumRegs; r++ {
				if entry.Get(r) && r != 0 && r > f.Params {
					t.Errorf("%s/%s: non-parameter register r%d live on entry", w.Name, f.Name, r)
				}
			}

			used := NewBitset(f.NumRegs)
			used.Set(0) // returned at the exit
			for _, blk := range f.Graph.Blocks() {
				if tm := f.Terms[blk.ID]; tm.Kind == wlc.TermBranch {
					used.Set(int(tm.Cond))
				}
				for i := range f.Code[blk.ID] {
					instrUses(&f.Code[blk.ID][i], func(r int32) { used.Set(int(r)) })
				}
			}
			for r := 0; r < f.NumRegs; r++ {
				if used.Get(r) {
					continue
				}
				for _, blk := range f.Graph.Blocks() {
					if l.LiveIn(blk.ID).Get(r) || l.LiveOut(blk.ID).Get(r) {
						t.Errorf("%s/%s: never-read register r%d is live at block %d", w.Name, f.Name, r, blk.ID)
					}
				}
			}
		}
	}
}
