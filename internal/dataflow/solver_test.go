package dataflow

import (
	"strings"
	"testing"

	"repro/internal/cfg"
)

// buildGraph freezes a graph from an edge list.
func buildGraph(t *testing.T, n int, entry, exit cfg.BlockID, edges [][2]cfg.BlockID) *cfg.Graph {
	t.Helper()
	g := cfg.New("t")
	for i := 0; i < n; i++ {
		g.NewBlock("b")
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SetEntry(entry)
	g.SetExit(exit)
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSolveForwardReachability runs the simplest forward problem — a
// boolean "reached" fact — over a diamond with one edge statically
// severed by EdgeTransfer, and checks the pruned arm stays bottom.
func TestSolveForwardReachability(t *testing.T) {
	g := buildGraph(t, 4, 0, 3, [][2]cfg.BlockID{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	res, err := Solve(g, Problem[bool]{
		Dir:      Forward,
		Bottom:   func() bool { return false },
		Boundary: func() bool { return true },
		IsBottom: func(b bool) bool { return !b },
		Join:     func(dst, src bool) (bool, bool) { return dst || src, src && !dst },
		Transfer: func(b cfg.BlockID, in bool) bool { return in },
		EdgeTransfer: func(from cfg.BlockID, si int, out bool) (bool, bool) {
			if from == 0 && si == 1 { // sever 0 -> 2
				return false, false
			}
			return out, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, true}
	for b, w := range want {
		if res.In[b] != w {
			t.Errorf("reached[%d] = %v, want %v", b, res.In[b], w)
		}
	}
	if res.EdgeFeasible[0][1] || !res.EdgeFeasible[0][0] {
		t.Errorf("edge feasibility = %v, want [true false]", res.EdgeFeasible[0])
	}
	if !res.EdgeFeasible[1][0] {
		t.Error("surviving arm's out-edge marked infeasible")
	}
	if res.EdgeFeasible[2][0] {
		t.Error("severed arm's out-edge marked feasible")
	}
}

// TestSolveBackward checks propagation against the edges: a fact
// injected at the exit must reach every block.
func TestSolveBackward(t *testing.T) {
	g := buildGraph(t, 4, 0, 3, [][2]cfg.BlockID{{0, 1}, {1, 2}, {1, 3}, {2, 1}})
	res, err := Solve(g, Problem[int]{
		Dir:      Backward,
		Bottom:   func() int { return 0 },
		Boundary: func() int { return 7 },
		Join: func(dst, src int) (int, bool) {
			if src > dst {
				return src, true
			}
			return dst, false
		},
		Transfer: func(b cfg.BlockID, in int) int { return in },
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		if b != 3 && res.In[b] != 7 && res.Out[b] != 7 {
			t.Errorf("block %d never saw the exit fact (in=%d out=%d)", b, res.In[b], res.Out[b])
		}
	}
}

// TestSolveConvergenceGuard feeds the solver a non-converging problem
// (a strictly growing "lattice" with no top) and expects a loud error,
// not a spin.
func TestSolveConvergenceGuard(t *testing.T) {
	g := buildGraph(t, 4, 0, 3, [][2]cfg.BlockID{{0, 1}, {1, 2}, {1, 3}, {2, 1}})
	_, err := Solve(g, Problem[int]{
		Dir:      Forward,
		Bottom:   func() int { return 0 },
		Boundary: func() int { return 1 },
		Join:     func(dst, src int) (int, bool) { return dst + src, src != 0 },
		Transfer: func(b cfg.BlockID, in int) int { return in + 1 },
	})
	if err == nil || !strings.Contains(err.Error(), "without converging") {
		t.Fatalf("non-converging problem returned %v, want convergence-guard error", err)
	}
}

// TestSolveRejectsBackwardEdgeTransfer: edge refinement is a
// forward-only concept here.
func TestSolveRejectsBackwardEdgeTransfer(t *testing.T) {
	g := buildGraph(t, 2, 0, 1, [][2]cfg.BlockID{{0, 1}})
	_, err := Solve(g, Problem[int]{
		Dir:          Backward,
		Bottom:       func() int { return 0 },
		Boundary:     func() int { return 0 },
		Join:         func(dst, src int) (int, bool) { return dst, false },
		Transfer:     func(b cfg.BlockID, in int) int { return in },
		EdgeTransfer: func(from cfg.BlockID, si int, out int) (int, bool) { return out, true },
	})
	if err == nil {
		t.Fatal("backward EdgeTransfer accepted")
	}
}
