package dataflow

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/wlc"
	"repro/internal/workloads"
)

// runPlain executes the program's main(arg) without tracing, capturing
// print output and the return value.
func runPlain(t *testing.T, p *wlc.Program, arg int64) (int64, string) {
	t.Helper()
	var out bytes.Buffer
	m, err := interp.New(p, interp.Config{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := m.Run("main", arg)
	if err != nil {
		t.Fatal(err)
	}
	return ret, out.String()
}

func TestDeadBranchFoldsConstant(t *testing.T) {
	src := `
func main(n) {
    var debug = 0;
    if debug { print 999; }
    return n + 2;
}`
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EliminateDeadBranches(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BranchesFolded == 0 {
		t.Error("constant `if 0` not folded")
	}
	if rep.BlocksRemoved == 0 {
		t.Error("the dead print block not removed")
	}
	for _, f := range p.Funcs {
		for _, blk := range f.Graph.Blocks() {
			if f.Terms[blk.ID].Kind == wlc.TermBranch {
				t.Errorf("%s: branch survived at block %d", f.Name, blk.ID)
			}
		}
	}
	if ret, out := runPlain(t, p, 40); ret != 42 || out != "" {
		t.Errorf("pruned program returned (%d, %q), want (42, \"\")", ret, out)
	}
}

func TestDeadBranchSkipsInfiniteLoop(t *testing.T) {
	// Folding `while 1` would disconnect the exit; the function must be
	// left alone and reported, not broken.
	src := `
func spin(n) {
    while 1 { n = n + 1; }
    return n;
}
func main(n) {
    if n > 100 { return spin(n); }
    return n;
}`
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EliminateDeadBranches(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range rep.SkippedFuncs {
		if name == "spin" {
			found = true
		}
	}
	if !found {
		t.Fatalf("SkippedFuncs = %v, want to contain spin", rep.SkippedFuncs)
	}
	if !strings.Contains(rep.String(), "skipped") {
		t.Errorf("report string %q does not mention skips", rep.String())
	}
	// main still runs (and never calls spin for small n).
	if ret, _ := runPlain(t, p, 5); ret != 5 {
		t.Errorf("main(5) = %d, want 5", ret)
	}
}

// TestDeadBranchDifferentialOnWorkloads is the acceptance differential:
// on every bundled workload, the pruned program must produce output and
// return value identical to the unpruned one.
func TestDeadBranchDifferentialOnWorkloads(t *testing.T) {
	totalFolded := 0
	for _, w := range workloads.All {
		plain, err := wlc.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		pruned, err := wlc.CompileWithOptions(w.Source, wlc.Options{
			IRPasses: []func(*wlc.Program) error{Pass},
		})
		if err != nil {
			t.Fatalf("%s: compile with pass: %v", w.Name, err)
		}

		wantRet, wantOut := runPlain(t, plain, w.Small)
		gotRet, gotOut := runPlain(t, pruned, w.Small)
		if gotRet != wantRet {
			t.Errorf("%s: pruned return = %d, plain = %d", w.Name, gotRet, wantRet)
		}
		if gotOut != wantOut {
			t.Errorf("%s: pruned print output diverges from plain (%d vs %d bytes)", w.Name, len(gotOut), len(wantOut))
		}

		rep, err := EliminateDeadBranches(plain)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		totalFolded += rep.BranchesFolded
	}
	if totalFolded == 0 {
		t.Log("note: no workload branch folded; pass is exercised by unit tests only")
	}
}
