package dataflow

import (
	"fmt"
	"math"

	"repro/internal/wl"
	"repro/internal/wlc"
)

// AbsVal is the abstract value of one WL register: an element of the
// lattice
//
//	        Any
//	       /   \
//	  [lo,hi]  Arr
//	       \   /
//	        Bot
//
// where [lo,hi] is a signed-int64 interval (constants are degenerate
// intervals). Arr means "definitely an array" — arrays carry no further
// abstraction, but they are always truthy, which is what branch
// refinement needs. Any means "scalar or array, unknown". Bot is the
// value of an unreached definition; an instruction whose result is Bot
// makes the whole environment infeasible.
//
// Soundness contract: for every concrete execution reaching a program
// point, the concrete register value is described by the abstract one
// (a scalar n by any interval containing n or by Any; an array by Arr
// or Any). Transfer functions may assume the instruction does not fault
// — a faulting execution never completes its acyclic path, so it is
// outside the concretization the feasible-path analysis ranges over.
type AbsVal struct {
	kind   uint8
	lo, hi int64
}

// Lattice element kinds.
const (
	kBot uint8 = iota
	kInt
	kArr
	kAny
)

// Bot is the unreached value.
func Bot() AbsVal { return AbsVal{kind: kBot} }

// ConstVal abstracts the single scalar c.
func ConstVal(c int64) AbsVal { return AbsVal{kind: kInt, lo: c, hi: c} }

// Interval abstracts any scalar in [lo, hi].
func Interval(lo, hi int64) AbsVal {
	if lo > hi {
		return Bot()
	}
	return AbsVal{kind: kInt, lo: lo, hi: hi}
}

// AnyScalar is the full scalar interval.
func AnyScalar() AbsVal { return AbsVal{kind: kInt, lo: math.MinInt64, hi: math.MaxInt64} }

// ArrVal abstracts every array value.
func ArrVal() AbsVal { return AbsVal{kind: kArr} }

// Any is the top element: scalar or array.
func Any() AbsVal { return AbsVal{kind: kAny} }

// IsBot reports whether v is the unreached bottom.
func (v AbsVal) IsBot() bool { return v.kind == kBot }

// IsConst reports whether v is a single scalar, and which.
func (v AbsVal) IsConst() (int64, bool) {
	if v.kind == kInt && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

// Bounds reports the interval of a scalar-valued v (ok=false for Bot,
// Arr, and Any).
func (v AbsVal) Bounds() (lo, hi int64, ok bool) {
	if v.kind != kInt {
		return 0, 0, false
	}
	return v.lo, v.hi, true
}

func (v AbsVal) String() string {
	switch v.kind {
	case kBot:
		return "⊥"
	case kArr:
		return "arr"
	case kAny:
		return "⊤"
	}
	if v.lo == v.hi {
		return fmt.Sprint(v.lo)
	}
	l, h := "-inf", "+inf"
	if v.lo != math.MinInt64 {
		l = fmt.Sprint(v.lo)
	}
	if v.hi != math.MaxInt64 {
		h = fmt.Sprint(v.hi)
	}
	return fmt.Sprintf("[%s,%s]", l, h)
}

// Truthiness classification. WL's truthy is "array, or scalar != 0".

// mayBeTruthy reports whether some concretization of v is truthy.
func (v AbsVal) mayBeTruthy() bool {
	switch v.kind {
	case kBot:
		return false
	case kInt:
		return v.lo != 0 || v.hi != 0
	}
	return true // arrays are truthy; Any may be either
}

// mayBeFalsy reports whether some concretization of v is the scalar 0.
func (v AbsVal) mayBeFalsy() bool {
	switch v.kind {
	case kBot, kArr:
		return false
	case kInt:
		return v.lo <= 0 && 0 <= v.hi
	}
	return true
}

// join returns the least upper bound of a and b.
func join(a, b AbsVal) AbsVal {
	switch {
	case a.kind == kBot:
		return b
	case b.kind == kBot:
		return a
	case a.kind == kAny || b.kind == kAny:
		return Any()
	case a.kind == kArr && b.kind == kArr:
		return ArrVal()
	case a.kind == kArr || b.kind == kArr:
		return Any()
	}
	lo, hi := a.lo, a.hi
	if b.lo < lo {
		lo = b.lo
	}
	if b.hi > hi {
		hi = b.hi
	}
	return AbsVal{kind: kInt, lo: lo, hi: hi}
}

// Widening landing points: when a join keeps expanding an interval the
// growing bound jumps outward to the next point, so ascending chains
// stay short (the fixpoint solver's convergence depends on it). Chosen
// to preserve the relations WL programs actually branch on: small
// counters, byte and 31-bit masks.
var (
	widenHiSteps = []int64{0, 1, 16, 64, 256, 65536, 1 << 31, math.MaxInt64}
	widenLoSteps = []int64{0, -1, -16, -64, -256, -65536, -(1 << 31), math.MinInt64}
)

// widen returns prev ⊔ next with bound acceleration: any bound that
// strictly grew jumps outward to the next widening step.
func widen(prev, next AbsVal) AbsVal {
	j := join(prev, next)
	if j.kind != kInt || prev.kind != kInt {
		return j
	}
	if j.lo < prev.lo {
		lo := int64(math.MinInt64)
		for _, s := range widenLoSteps {
			if s <= j.lo {
				lo = s
				break
			}
		}
		j.lo = lo
	}
	if j.hi > prev.hi {
		hi := int64(math.MaxInt64)
		for _, s := range widenHiSteps {
			if s >= j.hi {
				hi = s
				break
			}
		}
		j.hi = hi
	}
	return j
}

// meetInterval intersects v with [lo, hi], treating Any as the full
// scalar interval (a value that just compared as a scalar cannot be an
// array). Returns Bot on empty intersection.
func meetInterval(v AbsVal, lo, hi int64) AbsVal {
	switch v.kind {
	case kBot:
		return Bot()
	case kArr:
		return Bot() // arrays never satisfy a scalar constraint
	case kAny:
		return Interval(lo, hi)
	}
	nlo, nhi := v.lo, v.hi
	if lo > nlo {
		nlo = lo
	}
	if hi < nhi {
		nhi = hi
	}
	return Interval(nlo, nhi)
}

// Interval arithmetic helpers: every operation falls back to the full
// scalar range when it cannot bound the result without risking signed
// overflow, matching the interpreter's wrapping semantics.

func addOK(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func subOK(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

func mulOK(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
		return 0, false
	}
	return p, true
}

// bitLen64 is the number of bits needed for nonnegative n.
func bitLen64(n int64) uint {
	var k uint
	for n > 0 {
		n >>= 1
		k++
	}
	return k
}

// binOp abstracts OpBin: the result of a BinOp over scalar operands.
// Operands of kind Arr or Any are treated as the full scalar interval —
// if the concrete operation ran without faulting, they were scalars.
// Returns Bot only when the operation must fault (constant division by
// zero), which makes the continuation infeasible.
func binOp(op wl.Kind, a, b AbsVal) AbsVal {
	if a.kind == kBot || b.kind == kBot {
		return Bot()
	}
	if a.kind != kInt {
		a = AnyScalar()
	}
	if b.kind != kInt {
		b = AnyScalar()
	}
	// Exact constant evaluation shares the compiler/interpreter
	// semantics (wrapping arithmetic, masked shifts, 0/1 comparisons).
	if ca, ok := a.IsConst(); ok {
		if cb, ok := b.IsConst(); ok {
			v, err := wlc.FoldConst(op, ca, cb)
			if err != nil {
				return Bot() // division by zero: the path faults here
			}
			return ConstVal(v)
		}
	}
	switch op {
	case wl.Add:
		lo, ok1 := addOK(a.lo, b.lo)
		hi, ok2 := addOK(a.hi, b.hi)
		if ok1 && ok2 {
			return Interval(lo, hi)
		}
	case wl.Sub:
		lo, ok1 := subOK(a.lo, b.hi)
		hi, ok2 := subOK(a.hi, b.lo)
		if ok1 && ok2 {
			return Interval(lo, hi)
		}
	case wl.Mul:
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		for _, x := range []int64{a.lo, a.hi} {
			for _, y := range []int64{b.lo, b.hi} {
				p, ok := mulOK(x, y)
				if !ok {
					return AnyScalar()
				}
				if p < lo {
					lo = p
				}
				if p > hi {
					hi = p
				}
			}
		}
		return Interval(lo, hi)
	case wl.Div:
		if c, ok := b.IsConst(); ok && c != 0 && c != -1 {
			// Truncated division by a constant is monotone (c > 0) or
			// anti-monotone (c < -1); c == -1 can overflow MinInt64.
			x, y := a.lo/c, a.hi/c
			if x > y {
				x, y = y, x
			}
			return Interval(x, y)
		}
	case wl.Rem:
		if c, ok := b.IsConst(); ok && c != 0 && c != math.MinInt64 {
			m := c
			if m < 0 {
				m = -m
			}
			if a.lo >= 0 {
				hi := m - 1
				if a.hi < hi {
					hi = a.hi
				}
				return Interval(0, hi)
			}
			return Interval(-(m - 1), m - 1)
		}
		if a.lo >= 0 && b.lo >= 1 {
			hi := b.hi - 1
			if a.hi < hi {
				hi = a.hi
			}
			return Interval(0, hi)
		}
	case wl.Lt:
		return cmpInterval(a.hi < b.lo, a.lo >= b.hi)
	case wl.Le:
		return cmpInterval(a.hi <= b.lo, a.lo > b.hi)
	case wl.Gt:
		return cmpInterval(a.lo > b.hi, a.hi <= b.lo)
	case wl.Ge:
		return cmpInterval(a.lo >= b.hi, a.hi < b.lo)
	case wl.Eq:
		if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
			return ConstVal(1)
		}
		return cmpInterval(false, a.hi < b.lo || b.hi < a.lo)
	case wl.Ne:
		if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
			return ConstVal(0)
		}
		return cmpInterval(a.hi < b.lo || b.hi < a.lo, false)
	case wl.And:
		if a.lo >= 0 && b.lo >= 0 {
			hi := a.hi
			if b.hi < hi {
				hi = b.hi
			}
			return Interval(0, hi)
		}
	case wl.Or, wl.Xor:
		if a.lo >= 0 && b.lo >= 0 {
			k := bitLen64(a.hi)
			if k2 := bitLen64(b.hi); k2 > k {
				k = k2
			}
			if k < 63 {
				return Interval(0, int64(1)<<k-1)
			}
		}
	case wl.Shl:
		if c, ok := b.IsConst(); ok && a.lo >= 0 {
			s := uint64(c) & 63
			lo, hi := a.lo<<s, a.hi<<s
			if s < 63 && lo>>s == a.lo && hi>>s == a.hi && hi >= lo {
				return Interval(lo, hi)
			}
		}
	case wl.Shr:
		if c, ok := b.IsConst(); ok && a.lo >= 0 {
			s := uint64(c) & 63
			return Interval(a.lo>>s, a.hi>>s)
		}
	}
	return AnyScalar()
}

// cmpInterval encodes a three-valued comparison outcome as an abstract
// 0/1 value.
func cmpInterval(alwaysTrue, alwaysFalse bool) AbsVal {
	switch {
	case alwaysTrue:
		return ConstVal(1)
	case alwaysFalse:
		return ConstVal(0)
	}
	return Interval(0, 1)
}

// notOp abstracts OpNot (!v under WL truthiness).
func notOp(v AbsVal) AbsVal {
	if v.kind == kBot {
		return Bot()
	}
	switch {
	case !v.mayBeFalsy():
		return ConstVal(0)
	case !v.mayBeTruthy():
		return ConstVal(1)
	}
	return Interval(0, 1)
}

// negOp abstracts OpNeg.
func negOp(v AbsVal) AbsVal {
	if v.kind == kBot {
		return Bot()
	}
	if v.kind != kInt {
		return AnyScalar()
	}
	if v.lo == math.MinInt64 {
		return AnyScalar() // -MinInt64 wraps
	}
	return Interval(-v.hi, -v.lo)
}

// constrainCmp refines the operand intervals of a comparison a OP b
// known to have held. Returned values are the refined operands; ok is
// false when the constraint is unsatisfiable, i.e. the branch edge is
// infeasible.
func constrainCmp(op wl.Kind, a, b AbsVal) (ra, rb AbsVal, ok bool) {
	if a.kind == kBot || b.kind == kBot {
		return a, b, false
	}
	// A comparison that executed had scalar operands.
	ia, ib := a, b
	if ia.kind != kInt {
		ia = AnyScalar()
	}
	if ib.kind != kInt {
		ib = AnyScalar()
	}
	switch op {
	case wl.Lt: // a < b
		if ib.hi == math.MinInt64 {
			return a, b, false
		}
		ra = meetInterval(ia, math.MinInt64, ib.hi-1)
		if ia.lo == math.MaxInt64 {
			return a, b, false
		}
		rb = meetInterval(ib, ia.lo+1, math.MaxInt64)
	case wl.Le: // a <= b
		ra = meetInterval(ia, math.MinInt64, ib.hi)
		rb = meetInterval(ib, ia.lo, math.MaxInt64)
	case wl.Gt: // a > b
		if ib.lo == math.MaxInt64 {
			return a, b, false
		}
		ra = meetInterval(ia, ib.lo+1, math.MaxInt64)
		if ia.hi == math.MinInt64 {
			return a, b, false
		}
		rb = meetInterval(ib, math.MinInt64, ia.hi-1)
	case wl.Ge: // a >= b
		ra = meetInterval(ia, ib.lo, math.MaxInt64)
		rb = meetInterval(ib, math.MinInt64, ia.hi)
	case wl.Eq: // a == b
		ra = meetInterval(ia, ib.lo, ib.hi)
		rb = meetInterval(ib, ia.lo, ia.hi)
	case wl.Ne: // a != b
		ra, rb = ia, ib
		if ca, isA := ia.IsConst(); isA {
			if cb, isB := ib.IsConst(); isB && ca == cb {
				return a, b, false
			}
		}
		// Trim a constant operand off the other's endpoint.
		if c, isC := ib.IsConst(); isC && ia.lo == c && ia.lo < ia.hi {
			ra = Interval(ia.lo+1, ia.hi)
		} else if isC && ia.hi == c && ia.lo < ia.hi {
			ra = Interval(ia.lo, ia.hi-1)
		}
		if c, isC := ia.IsConst(); isC && ib.lo == c && ib.lo < ib.hi {
			rb = Interval(ib.lo+1, ib.hi)
		} else if isC && ib.hi == c && ib.lo < ib.hi {
			rb = Interval(ib.lo, ib.hi-1)
		}
	default:
		return a, b, true
	}
	if ra.IsBot() || rb.IsBot() {
		return a, b, false
	}
	return ra, rb, true
}
