package dataflow

import (
	"errors"
	"fmt"

	"repro/internal/bl"
	"repro/internal/cfg"
	"repro/internal/wlc"
)

// DefaultFeasibleLimit bounds the per-function path enumeration, the
// same budget bl.Prove uses: feasibility classification walks the same
// acyclic-path space the exhaustive numbering proof does.
const DefaultFeasibleLimit = bl.DefaultProveLimit

// PathSet classifies every Ball–Larus path ID of one function.
type PathSet struct {
	// NumPaths is the function's total static path count
	// (bl.Numbering.NumPaths).
	NumPaths uint64
	// Feasible holds one bit per path ID; set means the path is
	// statically feasible. Nil when Skipped.
	Feasible *Bitset
	// FeasibleCount is the number of feasible path IDs.
	FeasibleCount uint64
	// Skipped reports that the function exceeded the enumeration limit
	// and every path is conservatively classified feasible.
	Skipped bool
}

// IsFeasible reports the classification of one path ID. Out-of-range
// IDs are infeasible; skipped functions report every in-range ID
// feasible.
func (ps *PathSet) IsFeasible(path uint64) bool {
	if path >= ps.NumPaths {
		return false
	}
	if ps.Skipped {
		return true
	}
	return ps.Feasible.Get(int(path))
}

// FeasiblePathsFunc classifies every acyclic path of one function as
// statically feasible or infeasible by propagating abstract register
// facts along each path of the Ball–Larus acyclic transform: starting
// from the entry with the interpreter's initial register file (zeros,
// unknown parameters) and from each loop header with an unknown file,
// it follows every non-back edge applying block transfer and branch
// refinement, and abandons a prefix as soon as its facts become
// contradictory. Every dynamically observable path is classified
// feasible (the facts over-approximate the interpreter); a path whose
// branch outcomes cannot all hold under any register file is classified
// infeasible — correlated branches and constant conditions are what the
// refinement actually catches.
//
// Functions with more than limit paths (0 means DefaultFeasibleLimit)
// are skipped: the result marks every path feasible, which keeps the
// classification sound.
func FeasiblePathsFunc(f *wlc.Func, num *bl.Numbering, limit uint64) (*PathSet, error) {
	if limit == 0 {
		limit = DefaultFeasibleLimit
	}
	ps := &PathSet{NumPaths: num.NumPaths}
	if num.NumPaths > limit {
		ps.Skipped = true
		ps.FeasibleCount = num.NumPaths
		return ps, nil
	}
	if num.Graph != f.Graph {
		return nil, fmt.Errorf("dataflow: %s: numbering does not belong to the function's graph", f.Name)
	}
	ps.Feasible = NewBitset(int(num.NumPaths))

	g := f.Graph
	var walk func(b cfg.BlockID, r uint64, e Env) error
	walk = func(b cfg.BlockID, r uint64, e Env) error {
		if b == g.Exit {
			if r >= num.NumPaths {
				return fmt.Errorf("dataflow: %s: enumerated path ID %d outside [0,%d)", f.Name, r, num.NumPaths)
			}
			ps.Feasible.Set(int(r))
			// The exit block's body still runs, but no branches remain
			// to refine; the path is complete.
			return nil
		}
		out := transferBlock(f, b, e)
		if out == nil {
			// The block's body must fault: nothing past it completes.
			return nil
		}
		blk := g.Block(b)
		for si, s := range blk.Succs {
			refined, ok := refineEdge(f, b, si, out)
			if !ok {
				continue
			}
			if num.IsBack[b][si] {
				// Pseudo edge b->EXIT: the acyclic path ends here.
				id := r + num.EdgeVal[b][si]
				if id >= num.NumPaths {
					return fmt.Errorf("dataflow: %s: enumerated path ID %d outside [0,%d)", f.Name, id, num.NumPaths)
				}
				ps.Feasible.Set(int(id))
				continue
			}
			if err := walk(s, r+num.EdgeVal[b][si], refined); err != nil {
				return err
			}
		}
		return nil
	}

	if err := walk(g.Entry, num.EntryValue(), entryEnv(f)); err != nil {
		return nil, err
	}
	for h := cfg.BlockID(0); int(h) < g.NumBlocks(); h++ {
		if !num.IsLoopHeader(h) {
			continue
		}
		if err := walk(h, num.HeaderReset(h), unknownEnv(f)); err != nil {
			return nil, err
		}
	}
	ps.FeasibleCount = uint64(ps.Feasible.Count())
	return ps, nil
}

// FeasiblePaths classifies the paths of every function of a compiled
// program, indexed by function ID. Each function needs a Ball–Larus
// numbering; irreducible functions fail, exactly as they do under path
// tracing.
func FeasiblePaths(p *wlc.Program, limit uint64) ([]*PathSet, error) {
	out := make([]*PathSet, len(p.Funcs))
	for i, f := range p.Funcs {
		num, err := bl.Number(f.Graph)
		if err != nil {
			return nil, err
		}
		ps, err := FeasiblePathsFunc(f, num, limit)
		if err != nil {
			return nil, err
		}
		out[i] = ps
	}
	return out, nil
}

// ErrInfeasibleObserved is wrapped by CheckObserved failures: a path
// that was dynamically observed but statically classified infeasible is
// an analysis soundness bug, never a property of the trace.
var ErrInfeasibleObserved = errors.New("observed path classified statically infeasible")

// CheckObserved verifies the soundness cross-check on one function:
// every observed path ID must be classified feasible.
func (ps *PathSet) CheckObserved(fn string, observed []uint64) error {
	for _, id := range observed {
		if !ps.IsFeasible(id) {
			return fmt.Errorf("dataflow: %s: path %d: %w", fn, id, ErrInfeasibleObserved)
		}
	}
	return nil
}
