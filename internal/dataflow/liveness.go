package dataflow

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/wlc"
)

// LiveFacts is the fixpoint of backward liveness over one function.
type LiveFacts struct {
	Func *wlc.Func
	// in[b] / out[b] are the registers live at block b's entry / exit.
	in, out []*Bitset
}

// LiveIn returns the set of registers live on entry to b. The returned
// set is shared; callers must not mutate it.
func (l *LiveFacts) LiveIn(b cfg.BlockID) *Bitset { return l.in[b] }

// LiveOut returns the set of registers live on exit from b.
func (l *LiveFacts) LiveOut(b cfg.BlockID) *Bitset { return l.out[b] }

// instrUses calls use for every register the instruction reads. Note
// that OpStore reads all three operands (Dst is the stored value) and
// writes none.
func instrUses(in *wlc.Instr, use func(int32)) {
	switch in.Op {
	case wlc.OpConst:
	case wlc.OpMov, wlc.OpNot, wlc.OpNeg, wlc.OpNewArr, wlc.OpLen:
		use(in.A)
	case wlc.OpBin, wlc.OpLoad:
		use(in.A)
		use(in.B)
	case wlc.OpStore:
		use(in.A)
		use(in.B)
		use(in.Dst)
	case wlc.OpCall, wlc.OpPrint:
		for _, r := range in.Args {
			use(r)
		}
	}
}

// Liveness computes per-block live-in/live-out register sets for f with
// the backward worklist solver. The return slot r0 is live at the exit
// (it carries the function result).
func Liveness(f *wlc.Func) (*LiveFacts, error) {
	n := f.NumRegs
	res, err := Solve(f.Graph, Problem[*Bitset]{
		Dir:    Backward,
		Bottom: func() *Bitset { return NewBitset(n) },
		Boundary: func() *Bitset {
			b := NewBitset(n)
			b.Set(0) // the exit block's terminator returns r0
			return b
		},
		Join: func(dst, src *Bitset) (*Bitset, bool) {
			return dst, dst.UnionWith(src)
		},
		Transfer: func(b cfg.BlockID, exitLive *Bitset) *Bitset {
			live := exitLive.Clone()
			if t := f.Terms[b]; t.Kind == wlc.TermBranch {
				live.Set(int(t.Cond))
			}
			code := f.Code[b]
			for i := len(code) - 1; i >= 0; i-- {
				in := &code[i]
				if writesReg(in, in.Dst) { // i.e. the op defines Dst
					live.Clear(int(in.Dst))
				}
				instrUses(in, func(r int32) { live.Set(int(r)) })
			}
			return live
		},
	})
	if err != nil {
		return nil, fmt.Errorf("dataflow: liveness %s: %w", f.Name, err)
	}
	// Backward problems store the exit-side fact in In and the
	// entry-side fact in Out; re-expose them under their usual names.
	return &LiveFacts{Func: f, in: res.Out, out: res.In}, nil
}
