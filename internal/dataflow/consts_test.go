package dataflow

import (
	"testing"

	"repro/internal/wlc"
	"repro/internal/workloads"
)

// compileFunc compiles src (no AST folding — the raw branches are the
// point) and returns the named function.
func compileFunc(t *testing.T, src, name string) *wlc.Func {
	t.Helper()
	p, err := wlc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// infeasibleEdges counts statically infeasible out-edges of reachable
// branch blocks.
func infeasibleEdges(f *wlc.Func, facts *ConstFacts) int {
	n := 0
	for _, blk := range f.Graph.Blocks() {
		if !facts.Reachable(blk.ID) || f.Terms[blk.ID].Kind != wlc.TermBranch {
			continue
		}
		for _, ok := range facts.EdgeFeasible[blk.ID] {
			if !ok {
				n++
			}
		}
	}
	return n
}

// unreachableBlocks counts blocks the facts prove unreachable.
func unreachableBlocks(f *wlc.Func, facts *ConstFacts) int {
	n := 0
	for _, blk := range f.Graph.Blocks() {
		if !facts.Reachable(blk.ID) {
			n++
		}
	}
	return n
}

func TestConstsConstantCondition(t *testing.T) {
	f := compileFunc(t, `
func main(n) {
    var x = 1;
    if x { return 1; }
    return 2;
}`, "main")
	facts, err := Consts(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := infeasibleEdges(f, facts); got != 1 {
		t.Errorf("infeasible edges = %d, want 1 (the false side of `if 1`)", got)
	}
	if got := unreachableBlocks(f, facts); got == 0 {
		t.Error("the `return 2` block should be unreachable")
	}
}

func TestConstsCorrelatedComparisons(t *testing.T) {
	// n > 5 refines n to [6, max]; n < 3 is then the constant 0, so the
	// inner true edge is infeasible and its block unreachable.
	f := compileFunc(t, `
func main(n) {
    if n > 5 {
        if n < 3 { return 9; }
        return 1;
    }
    return 0;
}`, "main")
	facts, err := Consts(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := infeasibleEdges(f, facts); got != 1 {
		t.Errorf("infeasible edges = %d, want 1 (the `n < 3` true side)", got)
	}
	if got := unreachableBlocks(f, facts); got == 0 {
		t.Error("the `return 9` block should be unreachable")
	}
}

func TestConstsUncorrelatedStaysFeasible(t *testing.T) {
	// Both branch outcomes are possible for an unknown parameter; nothing
	// may be pruned.
	f := compileFunc(t, `
func main(n) {
    if n > 5 { return 1; }
    return 0;
}`, "main")
	facts, err := Consts(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := infeasibleEdges(f, facts); got != 0 {
		t.Errorf("infeasible edges = %d, want 0", got)
	}
	if got := unreachableBlocks(f, facts); got != 0 {
		t.Errorf("unreachable blocks = %d, want 0", got)
	}
}

func TestConstsLoopWidens(t *testing.T) {
	// The loop counter grows each iteration; widening must still reach a
	// fixpoint, and the loop's exit block must stay reachable.
	f := compileFunc(t, `
func main(n) {
    var i = 0;
    var acc = 0;
    while i < n {
        acc = acc + i;
        i = i + 1;
    }
    return acc;
}`, "main")
	facts, err := Consts(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := unreachableBlocks(f, facts); got != 0 {
		t.Errorf("unreachable blocks = %d, want 0", got)
	}
	if !facts.Reachable(f.Graph.Exit) {
		t.Error("exit unreachable after widening")
	}
}

// TestConstsAndLivenessConvergeOnWorkloads is the broad smoke test: the
// fixpoint must terminate within the convergence guard on every function
// of every bundled workload, and the facts must keep the exits of these
// terminating programs reachable.
func TestConstsAndLivenessConvergeOnWorkloads(t *testing.T) {
	for _, w := range workloads.All {
		p, err := wlc.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, f := range p.Funcs {
			facts, err := Consts(f)
			if err != nil {
				t.Errorf("%s/%s: consts: %v", w.Name, f.Name, err)
				continue
			}
			if !facts.Reachable(f.Graph.Exit) {
				t.Errorf("%s/%s: exit proved unreachable (unsound)", w.Name, f.Name)
			}
			if _, err := Liveness(f); err != nil {
				t.Errorf("%s/%s: liveness: %v", w.Name, f.Name, err)
			}
		}
	}
}
