package dataflow

import (
	"errors"
	"io"
	"testing"

	"repro/internal/bl"
	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/workloads"
)

func feasibleFor(t *testing.T, src, name string) (*wlc.Func, *PathSet) {
	t.Helper()
	f := compileFunc(t, src, name)
	num, err := bl.Number(f.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := FeasiblePathsFunc(f, num, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f, ps
}

func TestFeasibleConstantBranch(t *testing.T) {
	_, ps := feasibleFor(t, `
func main(n) {
    var x = 0;
    if x { return 1; }
    return 2;
}`, "main")
	if ps.NumPaths != 2 {
		t.Fatalf("NumPaths = %d, want 2", ps.NumPaths)
	}
	if ps.FeasibleCount != 1 {
		t.Errorf("FeasibleCount = %d, want 1 (the `if 0` taken path is impossible)", ps.FeasibleCount)
	}
}

func TestFeasibleCorrelatedBranches(t *testing.T) {
	// Three static paths; the (n > 5, n < 3) one cannot execute.
	_, ps := feasibleFor(t, `
func main(n) {
    if n > 5 {
        if n < 3 { return 9; }
        return 1;
    }
    return 0;
}`, "main")
	if ps.NumPaths != 3 {
		t.Fatalf("NumPaths = %d, want 3", ps.NumPaths)
	}
	if ps.FeasibleCount != 2 {
		t.Errorf("FeasibleCount = %d, want 2", ps.FeasibleCount)
	}
}

func TestFeasibleAllReachable(t *testing.T) {
	_, ps := feasibleFor(t, `
func main(n) {
    if n > 5 { return 1; }
    return 0;
}`, "main")
	if ps.NumPaths != 2 || ps.FeasibleCount != 2 {
		t.Errorf("got %d/%d feasible, want 2/2", ps.FeasibleCount, ps.NumPaths)
	}
}

func TestFeasibleLoopHeaderStartsAreUnknown(t *testing.T) {
	// Ball–Larus paths split at the loop header. The entry-start path
	// that enters the loop runs the FIRST iteration, where i is provably
	// 0 — so the entry path through `i > 2` is genuinely infeasible.
	// Header-start paths model later iterations, where i is unknown, so
	// both arms stay feasible there. 5 of the 6 static paths survive.
	_, ps := feasibleFor(t, `
func main(n) {
    var i = 0;
    var acc = 0;
    while i < n {
        if i > 2 { acc = acc + 2; } else { acc = acc + 1; }
        i = i + 1;
    }
    return acc;
}`, "main")
	if ps.NumPaths != 6 {
		t.Fatalf("NumPaths = %d, want 6", ps.NumPaths)
	}
	if ps.FeasibleCount != 5 {
		t.Errorf("FeasibleCount = %d, want 5 (first-iteration i=0 kills the entry path through i > 2)", ps.FeasibleCount)
	}
}

func TestFeasibleSkipOverLimit(t *testing.T) {
	f := compileFunc(t, `
func main(n) {
    var a = 0;
    if n > 1 { a = 1; }
    if n > 2 { a = 2; }
    if n > 3 { a = 3; }
    return a;
}`, "main")
	num, err := bl.Number(f.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := FeasiblePathsFunc(f, num, 2) // 8 paths > 2
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Skipped {
		t.Fatal("function over the limit not skipped")
	}
	for id := uint64(0); id < ps.NumPaths; id++ {
		if !ps.IsFeasible(id) {
			t.Fatalf("skipped function classified path %d infeasible", id)
		}
	}
	if ps.IsFeasible(ps.NumPaths) {
		t.Error("out-of-range ID classified feasible")
	}
}

func TestCheckObserved(t *testing.T) {
	_, ps := feasibleFor(t, `
func main(n) {
    var x = 0;
    if x { return 1; }
    return 2;
}`, "main")
	var infeasible uint64
	for id := uint64(0); id < ps.NumPaths; id++ {
		if !ps.IsFeasible(id) {
			infeasible = id
		}
	}
	if err := ps.CheckObserved("main", []uint64{infeasible}); !errors.Is(err, ErrInfeasibleObserved) {
		t.Fatalf("CheckObserved(infeasible) = %v, want ErrInfeasibleObserved", err)
	}
	feasibleIDs := []uint64{}
	for id := uint64(0); id < ps.NumPaths; id++ {
		if ps.IsFeasible(id) {
			feasibleIDs = append(feasibleIDs, id)
		}
	}
	if err := ps.CheckObserved("main", feasibleIDs); err != nil {
		t.Fatalf("CheckObserved(feasible) = %v, want nil", err)
	}
}

// TestFeasibleDifferentialOnWorkloads is the soundness cross-check from
// the issue, on every bundled workload:
//
//   - observed ⊆ feasible: every path ID the interpreter actually emits
//     must be classified feasible;
//   - feasible ⊆ enumerated: every feasible ID must regenerate to a real
//     acyclic path of the numbering bl.Prove certified.
//
// It also asserts the analysis has teeth: at least one workload must
// show FeasibleCount < NumPaths in some function.
func TestFeasibleDifferentialOnWorkloads(t *testing.T) {
	anyPruned := false
	for _, w := range workloads.All {
		p, err := wlc.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		sets, err := FeasiblePaths(p, 0)
		if err != nil {
			t.Fatalf("%s: FeasiblePaths: %v", w.Name, err)
		}

		// Dynamic side: collect every distinct (func, path) event.
		observed := make([]map[uint64]bool, len(p.Funcs))
		for i := range observed {
			observed[i] = make(map[uint64]bool)
		}
		m, err := interp.New(p, interp.Config{
			Mode:   interp.PathTrace,
			Sink:   trace.SinkFunc(func(e trace.Event) { observed[e.Func()][e.Path()] = true }),
			Stdout: io.Discard,
		})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if _, err := m.Run("main", w.Small); err != nil {
			t.Fatalf("%s: run: %v", w.Name, err)
		}

		for fi, f := range p.Funcs {
			ps := sets[fi]

			// observed ⊆ feasible.
			for id := range observed[fi] {
				if !ps.IsFeasible(id) {
					t.Errorf("%s/%s: observed path %d classified infeasible (unsound)", w.Name, f.Name, id)
				}
			}

			if ps.Skipped {
				continue
			}
			if ps.FeasibleCount < ps.NumPaths {
				anyPruned = true
			}

			// feasible ⊆ enumerated: the numbering's path space is exactly
			// [0, NumPaths) (certified by Prove), and each feasible ID must
			// regenerate to a concrete block sequence.
			num := m.Numbering(uint32(fi))
			if _, err := bl.Prove(num, bl.DefaultProveLimit); err != nil {
				t.Fatalf("%s/%s: prove: %v", w.Name, f.Name, err)
			}
			for id := uint64(0); id < ps.NumPaths; id++ {
				if !ps.IsFeasible(id) {
					continue
				}
				if _, err := num.Regenerate(id); err != nil {
					t.Errorf("%s/%s: feasible path %d does not regenerate: %v", w.Name, f.Name, id, err)
				}
			}
		}
	}
	if !anyPruned {
		t.Error("no workload function has FeasibleCount < NumPaths; the analysis proved nothing")
	}
}
