package dataflow

import (
	"io"
	"testing"

	"repro/internal/interp"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/workloads"
)

// FuzzFeasiblePaths fuzzes the soundness invariant end to end: for any
// compilable source and argument, every path ID the interpreter emits
// must be classified feasible, and the pruned program must behave
// identically to the plain one.
func FuzzFeasiblePaths(f *testing.F) {
	f.Add("func main(n) { if n > 5 { if n < 3 { return 9; } } return 0; }", int64(7))
	f.Add("func main(n) { var x = 0; if x { return 1; } return 2; }", int64(0))
	f.Add("func main(n) { var i = 0; while i < n { i = i + 1; } return i; }", int64(9))
	f.Add("func main(n) { var a = [8]; a[n % 8] = n; return a[0]; }", int64(3))
	for _, w := range workloads.All {
		f.Add(w.Source, int64(5))
	}
	f.Fuzz(func(t *testing.T, src string, arg int64) {
		p, err := wlc.Compile(src)
		if err != nil {
			return
		}
		// Keep the enumeration and the run small: fuzz inputs are about
		// shapes, not scale.
		sets, err := FeasiblePaths(p, 1<<12)
		if err != nil {
			return // irreducible graphs etc. are out of scope
		}

		observed := make([]map[uint64]bool, len(p.Funcs))
		for i := range observed {
			observed[i] = make(map[uint64]bool)
		}
		m, err := interp.New(p, interp.Config{
			Mode:      interp.PathTrace,
			Sink:      trace.SinkFunc(func(e trace.Event) { observed[e.Func()][e.Path()] = true }),
			Stdout:    io.Discard,
			MaxInstrs: 1 << 16,
		})
		if err != nil {
			return
		}
		// Runtime faults and the instruction limit still leave a valid
		// partial trace: only completed paths were emitted.
		_, _ = m.Run("main", arg%1000)

		for fi, fn := range p.Funcs {
			for id := range observed[fi] {
				if !sets[fi].IsFeasible(id) {
					t.Fatalf("%s: observed path %d classified infeasible\nsource:\n%s", fn.Name, id, src)
				}
			}
		}

		// The dead-branch pass must never break a compilable program.
		if _, err := EliminateDeadBranches(p); err != nil {
			t.Fatalf("dead-branch pass failed: %v\nsource:\n%s", err, src)
		}
	})
}
