package dataflow

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/wl"
	"repro/internal/wlc"
)

// Env is the abstract register file at one program point: Env[r] is the
// abstract value of register r. A nil Env is the environment of an
// unreached point (the solver's bottom).
type Env []AbsVal

func (e Env) clone() Env {
	if e == nil {
		return nil
	}
	c := make(Env, len(e))
	copy(c, e)
	return c
}

// entryEnv is the abstract register file on function entry: parameters
// (registers 1..Params) are unknown, every other register — including
// the return slot r0 — is the scalar zero the interpreter initializes
// frames with.
func entryEnv(f *wlc.Func) Env {
	e := make(Env, f.NumRegs)
	for i := range e {
		e[i] = ConstVal(0)
	}
	for i := 1; i <= f.Params; i++ {
		e[i] = Any()
	}
	return e
}

// unknownEnv abstracts a register file about which nothing is known; it
// is the sound starting point for acyclic paths beginning at a loop
// header.
func unknownEnv(f *wlc.Func) Env {
	e := make(Env, f.NumRegs)
	for i := range e {
		e[i] = Any()
	}
	return e
}

// applyInstr abstracts one IR instruction over e in place. It reports
// false when the instruction must fault (constant division by zero), in
// which case execution cannot continue past it.
func applyInstr(e Env, in *wlc.Instr) bool {
	switch in.Op {
	case wlc.OpConst:
		e[in.Dst] = ConstVal(in.Imm)
	case wlc.OpMov:
		e[in.Dst] = e[in.A]
	case wlc.OpBin:
		v := binOp(in.BinOp, e[in.A], e[in.B])
		// x OP x over a non-constant interval is still decided for
		// comparisons: both operands are the same concrete value.
		if in.A == in.B {
			switch in.BinOp {
			case wl.Lt, wl.Gt, wl.Ne:
				v = ConstVal(0)
			case wl.Le, wl.Ge, wl.Eq:
				v = ConstVal(1)
			case wl.Sub, wl.Xor:
				v = ConstVal(0)
			}
		}
		if v.IsBot() {
			return false
		}
		e[in.Dst] = v
	case wlc.OpNot:
		e[in.Dst] = notOp(e[in.A])
	case wlc.OpNeg:
		e[in.Dst] = negOp(e[in.A])
	case wlc.OpNewArr:
		e[in.Dst] = ArrVal()
	case wlc.OpLen:
		// Array lengths are bounded by the interpreter's 2^30 guard.
		e[in.Dst] = Interval(0, 1<<30)
	case wlc.OpLoad:
		// Array elements are scalars; nothing more is tracked.
		e[in.Dst] = AnyScalar()
	case wlc.OpStore, wlc.OpPrint:
		// No register is written.
	case wlc.OpCall:
		// Intraprocedural: a call may return anything.
		e[in.Dst] = Any()
	}
	return true
}

// transferBlock abstracts the whole body of block b over in (without
// mutating it), returning the environment at the block's end. A nil
// result means execution cannot fall through the block.
func transferBlock(f *wlc.Func, b cfg.BlockID, in Env) Env {
	if in == nil {
		return nil
	}
	e := in.clone()
	for i := range f.Code[b] {
		if !applyInstr(e, &f.Code[b][i]) {
			return nil
		}
	}
	return e
}

// writesReg reports whether the instruction writes register r.
func writesReg(in *wlc.Instr, r int32) bool {
	switch in.Op {
	case wlc.OpStore, wlc.OpPrint:
		return false
	}
	return in.Dst == r
}

// condDef finds the instruction in block b that produced the branch
// condition register cond as seen by the terminator: the last write to
// cond within the block. It returns its index, or -1 when the condition
// flows in from outside the block.
func condDef(f *wlc.Func, b cfg.BlockID, cond int32) int {
	code := f.Code[b]
	for i := len(code) - 1; i >= 0; i-- {
		if writesReg(&code[i], cond) {
			return i
		}
	}
	return -1
}

// refineEdge refines the block-exit environment out along the si-th
// successor edge of block b, applying the branch facts the edge
// implies: the condition register's truthiness, and — when the
// condition was computed by a comparison in the same block whose
// operands are unmodified since — the relation between the operands.
// It reports ok=false when the facts are contradictory, i.e. the edge
// is statically infeasible. out is not mutated.
func refineEdge(f *wlc.Func, b cfg.BlockID, si int, out Env) (Env, bool) {
	if out == nil {
		return nil, false
	}
	term := f.Terms[b]
	if term.Kind != wlc.TermBranch {
		return out, true
	}
	cond := term.Cond
	taken := si == 0 // successor 0 is the truthy edge
	cv := out[cond]
	var refined AbsVal
	if taken {
		if !cv.mayBeTruthy() {
			return nil, false
		}
		refined = cv
		// Trim a zero endpoint: truthy scalars exclude 0.
		if lo, hi, ok := cv.Bounds(); ok {
			if lo == 0 {
				refined = Interval(1, hi)
			} else if hi == 0 {
				refined = Interval(lo, -1)
			}
		}
	} else {
		if !cv.mayBeFalsy() {
			return nil, false
		}
		refined = ConstVal(0)
	}
	e := out.clone()
	e[cond] = refined

	// Branch-fact propagation to the comparison operands: only valid
	// when the defining comparison is in this block and neither operand
	// has been rewritten between the comparison and the branch.
	di := condDef(f, b, cond)
	if di < 0 {
		return e, true
	}
	def := &f.Code[b][di]
	if def.Op != wlc.OpBin || def.BinOp < wl.Lt || def.BinOp > wl.Ne {
		return e, true
	}
	if def.A == def.B {
		return e, true // same-register comparison: nothing to refine
	}
	code := f.Code[b]
	for i := di + 1; i < len(code); i++ {
		if writesReg(&code[i], def.A) || writesReg(&code[i], def.B) {
			return e, true
		}
	}
	op := def.BinOp
	if !taken {
		op = negateCmp(op)
	}
	ra, rb, ok := constrainCmp(op, e[def.A], e[def.B])
	if !ok {
		return nil, false
	}
	// The comparison's destination may alias an operand; the operand's
	// pre-branch value is then gone and must not be constrained.
	if def.A != def.Dst {
		e[def.A] = ra
	}
	if def.B != def.Dst {
		e[def.B] = rb
	}
	return e, true
}

// negateCmp returns the comparison that holds when op does not.
func negateCmp(op wl.Kind) wl.Kind {
	switch op {
	case wl.Lt:
		return wl.Ge
	case wl.Le:
		return wl.Gt
	case wl.Gt:
		return wl.Le
	case wl.Ge:
		return wl.Lt
	case wl.Eq:
		return wl.Ne
	case wl.Ne:
		return wl.Eq
	}
	return op
}

// ConstFacts is the fixpoint of constant/interval propagation over one
// function: abstract register files at every block boundary, plus the
// static feasibility of every CFG edge under those facts.
type ConstFacts struct {
	Func *wlc.Func
	// In[b] and Out[b] are the environments entering and leaving block
	// b; nil means the block (or its exit) is unreachable.
	In, Out []Env
	// EdgeFeasible[b][si] reports whether the si-th successor edge of b
	// can be taken under the computed facts. Edges out of unreachable
	// blocks are infeasible.
	EdgeFeasible [][]bool
}

// Reachable reports whether block b is reachable under the facts.
func (c *ConstFacts) Reachable(b cfg.BlockID) bool { return c.In[b] != nil }

// Consts runs forward constant/interval propagation with branch
// refinement over f to a fixpoint: the reachability-under-facts
// analysis. Joins widen growing bounds, so termination is guaranteed;
// the result over-approximates every concrete execution of f.
func Consts(f *wlc.Func) (*ConstFacts, error) {
	res, err := Solve(f.Graph, Problem[Env]{
		Dir:      Forward,
		Bottom:   func() Env { return nil },
		Boundary: func() Env { return entryEnv(f) },
		IsBottom: func(e Env) bool { return e == nil },
		Join: func(dst, src Env) (Env, bool) {
			if src == nil {
				return dst, false
			}
			if dst == nil {
				return src.clone(), true
			}
			changed := false
			for i := range dst {
				w := widen(dst[i], src[i])
				if w != dst[i] {
					dst[i] = w
					changed = true
				}
			}
			return dst, changed
		},
		Transfer: func(b cfg.BlockID, in Env) Env {
			return transferBlock(f, b, in)
		},
		EdgeTransfer: func(b cfg.BlockID, si int, out Env) (Env, bool) {
			return refineEdge(f, b, si, out)
		},
		// Each register's widened bounds can step through the landing
		// points a few times; size the guard to the register file.
		MaxVisits: 64 + 16*f.NumRegs,
	})
	if err != nil {
		return nil, fmt.Errorf("dataflow: consts %s: %w", f.Name, err)
	}
	return &ConstFacts{Func: f, In: res.In, Out: res.Out, EdgeFeasible: res.EdgeFeasible}, nil
}
