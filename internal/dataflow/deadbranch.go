package dataflow

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/wlc"
)

// DeadBranchReport summarizes one EliminateDeadBranches run.
type DeadBranchReport struct {
	// BranchesFolded counts conditional terminators rewritten to jumps
	// because one side was statically infeasible.
	BranchesFolded int
	// BlocksRemoved counts blocks deleted as unreachable.
	BlocksRemoved int
	// SkippedFuncs lists functions left untouched because pruning would
	// have produced an invalid graph (e.g. an infinite loop whose only
	// exit edge is statically dead, leaving the exit unreachable).
	SkippedFuncs []string
}

func (r *DeadBranchReport) String() string {
	return fmt.Sprintf("dead-branch: %d branch(es) folded, %d block(s) removed, %d function(s) skipped",
		r.BranchesFolded, r.BlocksRemoved, len(r.SkippedFuncs))
}

// EliminateDeadBranches is the IR-level dead-branch and
// unreachable-block elimination pass: it runs reachability-under-facts
// (the constant/interval fixpoint with branch refinement) over every
// function, rewrites conditional branches with exactly one feasible
// side into jumps, deletes blocks no feasible edge reaches, and rebuilds
// each function's CFG. Unlike the AST-level folder it sees through
// lowered registers — correlated conditions, folded moves, and values
// the front end cannot prove constant.
//
// The pass preserves semantics exactly: a pruned edge is statically
// infeasible, so no execution ever takes it, and block bodies (and
// therefore instruction counts and print effects) are untouched. A
// function whose pruned graph would not validate is left unchanged and
// reported in SkippedFuncs. The rewritten program re-verifies before
// the pass returns.
func EliminateDeadBranches(p *wlc.Program) (*DeadBranchReport, error) {
	rep := &DeadBranchReport{}
	for _, f := range p.Funcs {
		if err := eliminateFunc(f, rep); err != nil {
			return nil, err
		}
	}
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("dataflow: dead-branch pass produced invalid IR: %w", err)
	}
	return rep, nil
}

func eliminateFunc(f *wlc.Func, rep *DeadBranchReport) error {
	facts, err := Consts(f)
	if err != nil {
		return err
	}
	g := f.Graph

	// Decide the surviving successor set of every block: a branch with
	// exactly one feasible side keeps only that side.
	type rewrite struct {
		term  wlc.Term
		succs []cfg.BlockID
	}
	plans := make([]rewrite, g.NumBlocks())
	folded := 0
	for _, blk := range g.Blocks() {
		t := f.Terms[blk.ID]
		plan := rewrite{term: t, succs: blk.Succs}
		if t.Kind == wlc.TermBranch && facts.Reachable(blk.ID) {
			feas := facts.EdgeFeasible[blk.ID]
			switch {
			case feas[0] && !feas[1]:
				plan = rewrite{term: wlc.Term{Kind: wlc.TermJump}, succs: blk.Succs[:1]}
				folded++
			case !feas[0] && feas[1]:
				plan = rewrite{term: wlc.Term{Kind: wlc.TermJump}, succs: blk.Succs[1:2]}
				folded++
			}
		}
		plans[blk.ID] = plan
	}
	if folded == 0 {
		return nil
	}

	// Blocks still reachable from the entry along surviving edges.
	alive := make([]bool, g.NumBlocks())
	stack := []cfg.BlockID{g.Entry}
	alive[g.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range plans[b].succs {
			if !alive[s] {
				alive[s] = true
				stack = append(stack, s)
			}
		}
	}
	if !alive[g.Exit] {
		// Pruning disconnected the exit (the feasible part of the
		// function never terminates); the graph would not validate.
		rep.SkippedFuncs = append(rep.SkippedFuncs, f.Name)
		return nil
	}

	// Rebuild the graph over the surviving blocks, preserving ID order.
	ng := cfg.New(g.Name)
	newID := make([]cfg.BlockID, g.NumBlocks())
	removed := 0
	for _, blk := range g.Blocks() {
		if !alive[blk.ID] {
			newID[blk.ID] = cfg.None
			removed++
			continue
		}
		nb := ng.NewBlock(blk.Name)
		nb.Weight = blk.Weight
		newID[blk.ID] = nb.ID
	}
	for _, blk := range g.Blocks() {
		if !alive[blk.ID] {
			continue
		}
		for _, s := range plans[blk.ID].succs {
			if err := ng.AddEdge(newID[blk.ID], newID[s]); err != nil {
				return fmt.Errorf("dataflow: dead-branch %s: %w", f.Name, err)
			}
		}
	}
	ng.SetEntry(newID[g.Entry])
	ng.SetExit(newID[g.Exit])
	if err := ng.Finish(); err != nil {
		// A surviving block no longer co-reaches the exit (its only
		// path out went through a pruned edge of an infinite loop);
		// keep the original function rather than ship a graph the rest
		// of the pipeline would reject.
		rep.SkippedFuncs = append(rep.SkippedFuncs, f.Name)
		return nil
	}

	code := make([][]wlc.Instr, ng.NumBlocks())
	terms := make([]wlc.Term, ng.NumBlocks())
	for _, blk := range g.Blocks() {
		if !alive[blk.ID] {
			continue
		}
		code[newID[blk.ID]] = f.Code[blk.ID]
		terms[newID[blk.ID]] = plans[blk.ID].term
	}
	f.Graph = ng
	f.Code = code
	f.Terms = terms
	rep.BranchesFolded += folded
	rep.BlocksRemoved += removed
	return nil
}

// Pass adapts EliminateDeadBranches to the wlc.Options.IRPasses hook,
// discarding the report.
func Pass(p *wlc.Program) error {
	_, err := EliminateDeadBranches(p)
	return err
}
