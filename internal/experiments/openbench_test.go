package experiments

import (
	"strings"
	"testing"
)

// TestOpenBenchInvariants runs the open-path bench on a small slice of
// the grid and checks the properties the committed trajectory relies
// on: one row per workload x format, every row parity-checked
// identical, and sane measurements.
func TestOpenBenchInvariants(t *testing.T) {
	names := []string{"compress", "expr"}
	res, tbl, err := OpenBench(Small, names, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != OpenBenchSchema {
		t.Fatalf("schema %q", res.Schema)
	}
	if want := len(names) * 4; len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		key := r.Name + "." + r.Format
		if seen[key] {
			t.Fatalf("duplicate row %s", key)
		}
		seen[key] = true
		if !r.Identical {
			t.Errorf("%s: view disagrees with eager decode", key)
		}
		if r.Bytes <= 0 || r.Events == 0 {
			t.Errorf("%s: empty measurement row: %+v", key, r)
		}
		if r.EagerStatsMS < 0 || r.ViewStatsMS < 0 || r.EagerHotMS < 0 || r.ViewHotMS < 0 {
			t.Errorf("%s: negative timing: %+v", key, r)
		}
	}
	if tbl.ID != "M1" {
		t.Fatalf("table ID %q, want M1", tbl.ID)
	}
	if !strings.Contains(tbl.String(), "identical") {
		t.Fatal("table misses the identical column")
	}

	// The diff table pairs rows across runs by workload and format.
	diff := CompareOpenBench(res, res)
	if len(diff.Rows) != len(res.Rows) {
		t.Fatalf("diff table has %d rows, want %d", len(diff.Rows), len(res.Rows))
	}
}
