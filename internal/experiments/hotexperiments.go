package experiments

import (
	"fmt"
	"time"

	"repro/internal/hotpath"
	"repro/internal/interp"
	"repro/internal/sequitur"
	"repro/internal/trace"
	"repro/internal/wlc"
	"repro/internal/workloads"
	iwpp "repro/internal/wpp"
)

// ---------------------------------------------------------------------
// E5: minimal hot subpaths (the paper's flagship analysis).

// E5Row reports the hot-subpath population for one (workload, minLen,
// threshold) cell.
type E5Row struct {
	Name      string
	MinLen    int
	Threshold float64
	// Count is the number of minimal hot subpaths found.
	Count int
	// MeanLen is their average length in acyclic paths.
	MeanLen float64
	// Coverage is the sum of cost fractions (can exceed 1 with overlap).
	Coverage float64
	// HottestFraction is the top subpath's cost fraction.
	HottestFraction float64
}

// E5 runs the hot-subpath analysis over a (minLen, threshold) grid. Each
// minLen uses MaxLen = 4*minLen, mirroring the paper's bounded search.
func E5(scale Scale, minLens []int, thresholds []float64) ([]E5Row, *Table, error) {
	arts, err := RunAll(scale)
	if err != nil {
		return nil, nil, err
	}
	var rows []E5Row
	tbl := &Table{
		ID:     "E5",
		Title:  "minimal hot subpaths (paper's hot-subpath tables)",
		Header: []string{"workload", "minLen", "threshold", "subpaths", "mean len", "coverage", "hottest"},
	}
	for _, a := range arts {
		for _, l := range minLens {
			for _, th := range thresholds {
				subs, err := hotpath.Find(a.wpp, hotpath.Options{MinLen: l, MaxLen: 4 * l, Threshold: th})
				if err != nil {
					return nil, nil, err
				}
				r := E5Row{Name: a.workload.Name, MinLen: l, Threshold: th, Count: len(subs)}
				if len(subs) > 0 {
					var lenSum int
					for _, s := range subs {
						lenSum += len(s.Events)
					}
					r.MeanLen = float64(lenSum) / float64(len(subs))
					r.Coverage = hotpath.Coverage(subs)
					r.HottestFraction = subs[0].Fraction
				}
				rows = append(rows, r)
				tbl.Rows = append(tbl.Rows, []string{
					r.Name, fmt.Sprint(l), fmt.Sprintf("%.3f", th), fmt.Sprint(r.Count),
					fmt.Sprintf("%.1f", r.MeanLen), fmt.Sprintf("%.2f", r.Coverage),
					fmt.Sprintf("%.3f", r.HottestFraction),
				})
			}
		}
	}
	return rows, tbl, nil
}

// ---------------------------------------------------------------------
// E6: analysis time, compressed vs decompressed.

// E6Row compares hot-subpath search time on the grammar against the
// decompress-and-scan baseline.
type E6Row struct {
	Name       string
	Events     uint64
	RHSSymbols int
	Grammar    time.Duration
	Scan       time.Duration
	Speedup    float64 // Scan / Grammar
	Agree      bool    // both produced identical results
}

// E6 times hotpath.Find against hotpath.FindByScan with the given options
// applied to every workload.
func E6(scale Scale, opts hotpath.Options, reps int) ([]E6Row, *Table, error) {
	arts, err := RunAll(scale)
	if err != nil {
		return nil, nil, err
	}
	if reps < 1 {
		reps = 1
	}
	var rows []E6Row
	tbl := &Table{
		ID:     "E6",
		Title:  "hot-subpath analysis time: compressed grammar vs decompress-and-scan",
		Header: []string{"workload", "events", "symbols", "grammar", "scan", "speedup", "agree"},
		Notes:  []string{fmt.Sprintf("options: minLen=%d maxLen=%d threshold=%.3f, best of %d", opts.MinLen, opts.MaxLen, opts.Threshold, reps)},
	}
	for _, a := range arts {
		var fast, slow []hotpath.Subpath
		gTime, err := timeBest(reps, func() error {
			var err error
			fast, err = hotpath.Find(a.wpp, opts)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		sTime, err := timeBest(reps, func() error {
			var err error
			slow, err = hotpath.FindByScan(a.wpp, opts)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		agree := len(fast) == len(slow)
		if agree {
			for i := range fast {
				if fast[i].Count != slow[i].Count || fast[i].Cost != slow[i].Cost {
					agree = false
					break
				}
			}
		}
		st := a.wpp.Stats()
		r := E6Row{
			Name: a.workload.Name, Events: st.Events, RHSSymbols: st.RHSSymbols,
			Grammar: gTime, Scan: sTime, Speedup: dratio(sTime, gTime), Agree: agree,
		}
		rows = append(rows, r)
		tbl.Rows = append(tbl.Rows, []string{
			r.Name, fmt.Sprint(r.Events), fmt.Sprint(r.RHSSymbols),
			r.Grammar.String(), r.Scan.String(), fmt.Sprintf("%.1f", r.Speedup), fmt.Sprint(r.Agree),
		})
	}
	return rows, tbl, nil
}

// ---------------------------------------------------------------------
// A1: ablation — path alphabet vs basic-block alphabet.

// A1Row compares tracing the same execution with basic-block events
// against Ball–Larus path events.
type A1Row struct {
	Name        string
	BlockEvents uint64
	PathEvents  uint64
	EventRatio  float64 // block / path
	BlockBytes  int64   // SEQUITUR-compressed block trace (grammar bytes)
	PathBytes   int64   // SEQUITUR-compressed path trace (grammar bytes)
	SizeRatio   float64 // block / path
}

// A1 quantifies why the WPP uses the acyclic-path alphabet: same
// executions, two alphabets, both SEQUITUR-compressed.
func A1(scale Scale, names []string) ([]A1Row, *Table, error) {
	var rows []A1Row
	tbl := &Table{
		ID:     "A1",
		Title:  "ablation: basic-block alphabet vs Ball-Larus path alphabet",
		Header: []string{"workload", "block events", "path events", "events b/p", "block grammar B", "path grammar B", "size b/p"},
	}
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		prog, err := wlc.Compile(w.Source)
		if err != nil {
			return nil, nil, err
		}
		arg := scale.Arg(w)

		gBlock := sequitur.New()
		var blockEvents uint64
		mb, err := interp.New(prog, interp.Config{Mode: interp.BlockTrace, Sink: trace.SinkFunc(func(e trace.Event) {
			blockEvents++
			gBlock.Append(uint64(e))
		})})
		if err != nil {
			return nil, nil, err
		}
		if _, err := mb.Run("main", arg); err != nil {
			return nil, nil, err
		}

		gPath := sequitur.New()
		var pathEvents uint64
		mp, err := interp.New(prog, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) {
			pathEvents++
			gPath.Append(uint64(e))
		})})
		if err != nil {
			return nil, nil, err
		}
		if _, err := mp.Run("main", arg); err != nil {
			return nil, nil, err
		}

		r := A1Row{
			Name:        w.Name,
			BlockEvents: blockEvents,
			PathEvents:  pathEvents,
			EventRatio:  float64(blockEvents) / float64(pathEvents),
			BlockBytes:  gBlock.Snapshot().EncodedSize(),
			PathBytes:   gPath.Snapshot().EncodedSize(),
		}
		r.SizeRatio = ratio(r.BlockBytes, r.PathBytes)
		rows = append(rows, r)
		tbl.Rows = append(tbl.Rows, []string{
			r.Name, fmt.Sprint(r.BlockEvents), fmt.Sprint(r.PathEvents), fmt.Sprintf("%.1f", r.EventRatio),
			fmt.Sprint(r.BlockBytes), fmt.Sprint(r.PathBytes), fmt.Sprintf("%.2f", r.SizeRatio),
		})
	}
	return rows, tbl, nil
}

// ---------------------------------------------------------------------
// A2: ablation — SEQUITUR rule utility.

// A2Row compares grammar sizes with the rule-utility invariant on and
// off.
type A2Row struct {
	Name                string
	RulesOn, RulesOff   int
	SymbolsOn, SymsOff  int
	BytesOn, BytesOff   int64
	SizePenaltyUtilOff  float64 // BytesOff / BytesOn
	RulesPenaltyUtilOff float64 // RulesOff / RulesOn
}

// A2 measures what the rule-utility invariant contributes.
func A2(scale Scale, names []string) ([]A2Row, *Table, error) {
	var rows []A2Row
	tbl := &Table{
		ID:     "A2",
		Title:  "ablation: SEQUITUR rule utility on vs off",
		Header: []string{"workload", "rules on", "rules off", "syms on", "syms off", "bytes on", "bytes off", "bytes off/on"},
	}
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		prog, err := wlc.Compile(w.Source)
		if err != nil {
			return nil, nil, err
		}
		arg := scale.Arg(w)
		var events []trace.Event
		m, err := interp.New(prog, interp.Config{Mode: interp.PathTrace, Sink: trace.SinkFunc(func(e trace.Event) {
			events = append(events, e)
		})})
		if err != nil {
			return nil, nil, err
		}
		if _, err := m.Run("main", arg); err != nil {
			return nil, nil, err
		}
		gOn := sequitur.New()
		gOff := sequitur.NewWithOptions(sequitur.Options{DisableRuleUtility: true})
		for _, e := range events {
			gOn.Append(uint64(e))
			gOff.Append(uint64(e))
		}
		on, off := gOn.Stats(), gOff.Stats()
		r := A2Row{
			Name:    w.Name,
			RulesOn: on.Rules, RulesOff: off.Rules,
			SymbolsOn: on.RHSSymbols, SymsOff: off.RHSSymbols,
			BytesOn: gOn.Snapshot().EncodedSize(), BytesOff: gOff.Snapshot().EncodedSize(),
		}
		r.SizePenaltyUtilOff = ratio(r.BytesOff, r.BytesOn)
		r.RulesPenaltyUtilOff = float64(r.RulesOff) / float64(max(1, r.RulesOn))
		rows = append(rows, r)
		tbl.Rows = append(tbl.Rows, []string{
			r.Name, fmt.Sprint(r.RulesOn), fmt.Sprint(r.RulesOff),
			fmt.Sprint(r.SymbolsOn), fmt.Sprint(r.SymsOff),
			fmt.Sprint(r.BytesOn), fmt.Sprint(r.BytesOff), fmt.Sprintf("%.2f", r.SizePenaltyUtilOff),
		})
	}
	return rows, tbl, nil
}

// WPPForWorkload builds the WPP of one workload at the given scale, for
// callers (examples, tools) that want a single artifact.
func WPPForWorkload(name string, scale Scale) (*iwpp.WPP, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	a, err := runTraced(w, scale)
	if err != nil {
		return nil, err
	}
	return a.wpp, nil
}
