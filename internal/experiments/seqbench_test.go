package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSeqBenchSmall(t *testing.T) {
	res, tbl, err := SeqBench(Small, []string{"compress", "sort"}, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != SeqBenchSchema {
		t.Fatalf("schema = %q, want %q", res.Schema, SeqBenchSchema)
	}
	if res.Scale != "small" || res.ChunkSize != 512 {
		t.Fatalf("config not recorded: scale=%q chunk=%d", res.Scale, res.ChunkSize)
	}
	if len(res.Workloads) != 2 {
		t.Fatalf("got %d workload rows, want 2", len(res.Workloads))
	}
	for _, w := range res.Workloads {
		if w.Events == 0 {
			t.Errorf("%s: zero events traced", w.Name)
		}
		if w.Mono.EventsPerSec <= 0 || w.Chunked.EventsPerSec <= 0 {
			t.Errorf("%s: non-positive throughput: mono %v, chunked %v", w.Name, w.Mono.EventsPerSec, w.Chunked.EventsPerSec)
		}
		if w.Mono.Rules <= 0 || w.Mono.RHSSymbols <= 0 {
			t.Errorf("%s: empty monolithic grammar: %+v", w.Name, w.Mono)
		}
		if w.Mono.Chunks != 1 {
			t.Errorf("%s: mono chunks = %d, want 1", w.Name, w.Mono.Chunks)
		}
		wantChunks := int((w.Events + 511) / 512)
		if w.Chunked.Chunks != wantChunks {
			t.Errorf("%s: chunked into %d grammars, want %d for %d events", w.Name, w.Chunked.Chunks, wantChunks, w.Events)
		}
		// Chunking forfeits cross-chunk repetition, so the summed chunk
		// grammars can only be at least as large as the monolithic one.
		if w.Chunked.RHSSymbols < w.Mono.RHSSymbols {
			t.Errorf("%s: chunked rhs %d < mono rhs %d", w.Name, w.Chunked.RHSSymbols, w.Mono.RHSSymbols)
		}
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("table has %d rows, want 2", len(tbl.Rows))
	}
}

func TestSeqBenchJSONRoundTrip(t *testing.T) {
	res, _, err := SeqBench(Small, []string{"sort"}, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back SeqBenchResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != res.Schema || len(back.Workloads) != len(res.Workloads) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Workloads[0].Mono.EventsPerSec != res.Workloads[0].Mono.EventsPerSec {
		t.Fatalf("throughput changed across round trip")
	}
}

func TestCompareSeqBench(t *testing.T) {
	old := &SeqBenchResult{
		Schema: SeqBenchSchema, Scale: "small", ChunkSize: 512,
		Workloads: []SeqBenchRow{
			{Name: "sort", Mono: SeqBenchMeasure{EventsPerSec: 1e6}, Chunked: SeqBenchMeasure{EventsPerSec: 2e6}},
			{Name: "gone", Mono: SeqBenchMeasure{EventsPerSec: 1e6}},
		},
	}
	cur := &SeqBenchResult{
		Schema: SeqBenchSchema, Scale: "small", ChunkSize: 512,
		Workloads: []SeqBenchRow{
			{Name: "sort", Mono: SeqBenchMeasure{EventsPerSec: 2e6}, Chunked: SeqBenchMeasure{EventsPerSec: 3e6}},
			{Name: "new", Mono: SeqBenchMeasure{EventsPerSec: 1e6}},
		},
	}
	tbl := CompareSeqBench(old, cur)
	if len(tbl.Rows) != 1 {
		t.Fatalf("comparison has %d rows, want 1 (only workloads on both sides)", len(tbl.Rows))
	}
	row := strings.Join(tbl.Rows[0], " ")
	if !strings.Contains(row, "+100.0%") || !strings.Contains(row, "+50.0%") {
		t.Fatalf("deltas wrong: %q", row)
	}
	if tbl = CompareSeqBench(nil, cur); len(tbl.Rows) != 0 {
		t.Fatalf("nil baseline must yield an empty comparison, got %d rows", len(tbl.Rows))
	}
	// A config mismatch is flagged, not hidden.
	old.ChunkSize = 4096
	if tbl = CompareSeqBench(old, cur); len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "configs differ") {
		t.Fatalf("config mismatch not flagged: %v", tbl.Notes)
	}
}
